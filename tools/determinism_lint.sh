#!/usr/bin/env bash
# Determinism lint: grep-level gate against nondeterminism sources in the
# deterministic core (docs/observability.md: same seed + same config must
# produce byte-identical traces at any thread count).
#
# Banned in src/core, src/net, src/obs, src/server:
#   * wall-clock reads      std::chrono::{system,steady,high_resolution}_clock,
#                           ::time(, gettimeofday, clock_gettime
#   * C PRNG                rand(), srand(, random()
#   * hash-ordered iteration std::unordered_map / std::unordered_set
#                           (iteration order varies across libc++/libstdc++
#                           and across runs with pointer-keyed hashes)
#   * thread identity       std::thread::id, std::this_thread::get_id
#
# A line that must legitimately do one of these (e.g. wall-clock telemetry
# that never feeds simulation state) carries `// det-lint: allow` with a
# justification comment; the escape is per-line and shows up in review.
#
# Exit 0 = clean, 1 = violations found (printed grep-style).
set -euo pipefail
cd "$(dirname "$0")/.."

DIRS=(src/core src/net src/obs src/server)
PATTERNS=(
  'std::chrono::system_clock'
  'std::chrono::steady_clock'
  'std::chrono::high_resolution_clock'
  '\bgettimeofday\b'
  '\bclock_gettime\b'
  '[^_[:alnum:]]time\(NULL\)|[^_[:alnum:]]time\(nullptr\)'
  '\bsrand\(|[^_[:alnum:]]rand\(\)|\brandom\(\)'
  'std::unordered_map|std::unordered_set'
  'std::thread::id|std::this_thread::get_id'
)

status=0
for pattern in "${PATTERNS[@]}"; do
  # -I: skip binaries; -n: line numbers. Filter allow-tagged lines.
  hits="$(grep -rInE "${pattern}" "${DIRS[@]}" \
            --include='*.cpp' --include='*.hpp' \
          | grep -v 'det-lint: allow' || true)"
  if [[ -n "${hits}" ]]; then
    echo "determinism-lint: banned pattern '${pattern}':" >&2
    echo "${hits}" >&2
    status=1
  fi
done

if [[ "${status}" -eq 0 ]]; then
  echo "determinism-lint: clean (${DIRS[*]})"
fi
exit "${status}"

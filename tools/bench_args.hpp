// Minimal --flag / --key value argument parser for the CLI tool.
#pragma once

#include <cstdlib>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>

namespace sor::cli {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        error_ = "expected --flag, got '" + arg + "'";
        return;
      }
      const std::string key = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  [[nodiscard]] bool Has(const std::string& key) const {
    return values_.contains(key);
  }
  [[nodiscard]] std::string Get(const std::string& key,
                                const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) return fallback;
    return std::atoi(it->second.c_str());
  }
  [[nodiscard]] double GetDouble(const std::string& key,
                                 double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) return fallback;
    return std::atof(it->second.c_str());
  }

  // First parsed flag not in `allowed` ("" when every flag is known). Each
  // subcommand validates against its own flag list so a typo fails loudly
  // instead of being silently ignored.
  [[nodiscard]] std::string FirstUnknown(
      std::initializer_list<std::string_view> allowed) const {
    for (const auto& [key, value] : values_) {
      bool known = false;
      for (const std::string_view a : allowed) {
        if (key == a) {
          known = true;
          break;
        }
      }
      if (!known) return key;
    }
    return "";
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

}  // namespace sor::cli

#!/usr/bin/env bash
# CI entry point: build + test the default preset, then the asan-ubsan
# preset. The chaos suite (test_chaos) runs under both, so every seeded
# fault schedule is exercised with memory/UB checking on.
#
# Usage: tools/ci.sh [--with-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

PRESETS=(default asan-ubsan)
if [[ "${1:-}" == "--with-tsan" ]]; then
  PRESETS+=(tsan)
fi

# CMake presets need >= 3.21; fall back to a plain build on older CMake.
if ! cmake --list-presets >/dev/null 2>&1; then
  echo "ci: cmake too old for presets; plain build" >&2
  cmake -S . -B build -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j "$(nproc)"
  ctest --test-dir build -j "$(nproc)" --output-on-failure
  exit 0
fi

for preset in "${PRESETS[@]}"; do
  echo "=== preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)"
done

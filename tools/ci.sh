#!/usr/bin/env bash
# CI entry point: build + test the default preset, then the asan-ubsan
# preset. The chaos suite (test_chaos) runs under both, so every seeded
# fault schedule is exercised with memory/UB checking on.
#
# The default preset's ctest run includes the ScriptLint.* gate (sor lint
# --strict over examples/scripts/*.sor and both built-in scripts); a
# separate stage below re-runs the linter explicitly so its diagnostics
# appear in the CI log even on success.
#
# A clang-tidy stage (bugprone/performance/concurrency, config in
# .clang-tidy) runs when clang-tidy is installed and is skipped with a
# notice otherwise — the container image does not ship it.
#
# A ThreadSanitizer stage always runs the multi-threaded tests (the
# determinism contract and the chaos suite drive the sharded runtime with
# threads > 1); pass --with-tsan to run the FULL suite under TSan too.
#
# Usage: tools/ci.sh [--with-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

PRESETS=(default asan-ubsan)
FULL_TSAN=0
if [[ "${1:-}" == "--with-tsan" ]]; then
  FULL_TSAN=1
fi

# CMake presets need >= 3.21; fall back to a plain build on older CMake.
if ! cmake --list-presets >/dev/null 2>&1; then
  echo "ci: cmake too old for presets; plain build" >&2
  cmake -S . -B build -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j "$(nproc)"
  ctest --test-dir build -j "$(nproc)" --output-on-failure
  exit 0
fi

for preset in "${PRESETS[@]}"; do
  echo "=== preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)"
done

echo "=== stage: determinism lint ==="
# Static gate against nondeterminism sources (wall clocks, rand(), hash-
# ordered containers, thread ids) in the deterministic core; see
# tools/determinism_lint.sh for the pattern list and the per-line
# `det-lint: allow` escape.
tools/determinism_lint.sh

echo "=== stage: sensescript lint ==="
SOR_BIN=build/tools/sor
if [[ -x "${SOR_BIN}" ]]; then
  for script in examples/scripts/*.sor; do
    "${SOR_BIN}" lint "${script}" --strict
  done
  "${SOR_BIN}" lint --builtin trails --strict
  "${SOR_BIN}" lint --builtin coffee --strict
else
  echo "ci: ${SOR_BIN} not built; lint already covered by ScriptLint.* tests" >&2
fi

echo "=== stage: observability ==="
# Determinism gate on the telemetry subsystem (docs/observability.md): the
# exact same chaos campaign must produce byte-identical traces — compared
# here via `sor trace --fingerprint` — at 1, 2, and 8 worker threads, for
# several seeds. test_obs proves this in-process; this stage proves it
# through the shipped CLI. Then micro_obs smoke-runs the overhead report.
if [[ -x "${SOR_BIN}" ]]; then
  for seed in 1 2 3 4 5; do
    baseline=""
    for threads in 1 2 8; do
      fp="$("${SOR_BIN}" trace --chaos --seed "${seed}" \
            --threads "${threads}" --fingerprint)"
      if [[ -z "${baseline}" ]]; then
        baseline="${fp}"
      elif [[ "${fp}" != "${baseline}" ]]; then
        echo "ci: trace fingerprint diverged (seed=${seed}" \
             "threads=${threads}): ${fp} != ${baseline}" >&2
        exit 1
      fi
    done
    echo "ci: trace ${baseline} stable across threads 1/2/8 (seed ${seed})"
  done
  "${SOR_BIN}" trace --chaos --seed 1 --summary
else
  echo "ci: ${SOR_BIN} not built; determinism covered by ObsDeterminism.*" >&2
fi
if [[ -x build/bench/micro_obs ]]; then
  build/bench/micro_obs
else
  echo "ci: build/bench/micro_obs not built; skipping overhead report" >&2
fi

echo "=== stage: chaos matrix (overload + churn, docs/robustness.md) ==="
# Robustness gate: the node/storage fault domains and the overload ladder,
# under ASan/UBSan. The churn + throttle fingerprint matrices (2 scenarios
# x 5 seeds x threads 1/2/8) and the chaos battery (10-seed churn rankings
# == fault-free baseline, overload sheds-stale-and-recovers, storage-fault
# reprime) all run here; the same tests run under TSan in the tsan stage
# below, whose -R already matches 'Determinism\.|Chaos\.'.
ctest --preset asan-ubsan -j "$(nproc)" --output-on-failure \
  -R 'Determinism\.(Churn|Throttle)|Chaos\.(Churn|Overload|Storage)'
# Shed-counter smoke through the shipped CLI: a budget-capped campaign
# must report non-zero throttle AND stale-shed counters in `sor metrics`.
if [[ -x "${SOR_BIN}" ]]; then
  overload_metrics="$("${SOR_BIN}" metrics --scenario coffee --overload)"
  for counter in server.uploads_throttled server.uploads_shed; do
    value="$(echo "${overload_metrics}" | awk -v c="${counter}" \
             '$1 == c { print $2 }')"
    if [[ -z "${value}" || "${value}" == "0" ]]; then
      echo "ci: ${counter} not exercised by 'sor metrics --overload'" \
           "(got '${value:-missing}')" >&2
      exit 1
    fi
    echo "ci: ${counter}=${value} under --overload"
  done
else
  echo "ci: ${SOR_BIN} not built; shed counters covered by ServerOverload.*" >&2
fi
# Overload bench smoke: exits non-zero if the fleet fails to fully drain
# after the 2x-overload campaign (output is the BENCH_overload.json body).
if [[ -x build/bench/overload ]]; then
  build/bench/overload > BENCH_overload.json
  echo "ci: wrote BENCH_overload.json"
else
  echo "ci: build/bench/overload not built; skipping overload bench" >&2
fi

echo "=== stage: out-of-process serving (docs/deployment.md) ==="
# Integration gate for the `sor serve` daemon + `sor loadgen` pair: bring
# the daemon up on a Unix socket, replay a campaign over real sockets,
# SIGTERM it, and require (a) a clean exit, (b) a snapshot on disk, (c) a
# non-empty loadgen report, and (d) rankings byte-identical to the
# in-process `sor fieldtest` run of the same seed — the equivalence
# contract the daemon tests prove over pipes, re-proven here through the
# shipped binaries and a real socket.
if [[ -x "${SOR_BIN}" ]]; then
  serve_dir="$(mktemp -d)"
  serve_sock="${serve_dir}/sor.sock"
  serve_args=(--scenario trails --phones 4 --period 1200 --seed 42)
  "${SOR_BIN}" serve "${serve_args[@]}" --bind "unix:${serve_sock}" \
    --snapshot "${serve_dir}/snapshot.bin" \
    --rankings-out "${serve_dir}/rankings.daemon.txt" \
    > "${serve_dir}/serve.log" 2>&1 &
  serve_pid=$!
  for _ in $(seq 50); do
    [[ -S "${serve_sock}" ]] && break
    sleep 0.1
  done
  "${SOR_BIN}" loadgen "${serve_args[@]}" --connect "unix:${serve_sock}" \
    --workers 2 --report "${serve_dir}/BENCH_loadgen.json"
  kill -TERM "${serve_pid}"
  if ! wait "${serve_pid}"; then
    echo "ci: sor serve exited non-zero after SIGTERM" >&2
    cat "${serve_dir}/serve.log" >&2
    exit 1
  fi
  [[ -s "${serve_dir}/snapshot.bin" ]] \
    || { echo "ci: daemon wrote no snapshot" >&2; exit 1; }
  [[ -s "${serve_dir}/BENCH_loadgen.json" ]] \
    || { echo "ci: loadgen wrote no report" >&2; exit 1; }
  cp "${serve_dir}/BENCH_loadgen.json" BENCH_loadgen.json
  "${SOR_BIN}" fieldtest "${serve_args[@]}" \
    --rankings-out "${serve_dir}/rankings.inproc.txt" > /dev/null
  if ! cmp "${serve_dir}/rankings.daemon.txt" \
           "${serve_dir}/rankings.inproc.txt"; then
    echo "ci: daemon rankings differ from in-process run" >&2
    diff "${serve_dir}/rankings.daemon.txt" \
         "${serve_dir}/rankings.inproc.txt" >&2 || true
    exit 1
  fi
  echo "ci: daemon rankings byte-identical to in-process run"
  echo "ci: wrote BENCH_loadgen.json"
  # Unknown-flag rejection: every subcommand must name the bad flag and
  # exit non-zero instead of silently ignoring a typo.
  if "${SOR_BIN}" fieldtest --scenario trails --phoens 3 \
       > "${serve_dir}/badflag.log" 2>&1; then
    echo "ci: unknown flag was accepted" >&2
    exit 1
  fi
  grep -q "phoens" "${serve_dir}/badflag.log" \
    || { echo "ci: unknown-flag error does not name the flag" >&2; exit 1; }
  echo "ci: unknown flags rejected with the offending name"
  rm -rf "${serve_dir}"
else
  echo "ci: ${SOR_BIN} not built; daemon covered by Daemon.* tests" >&2
fi

echo "=== stage: perf regression (operation counts) ==="
# Host-independent perf gate (docs/performance.md): the Perf.* suite pins
# the incremental data path's complexity guarantees as exact operation
# counts — processor.blobs_decoded is O(new uploads) per pass (never
# O(uploads × passes)), the upload/process hot path performs zero full
# table scans (db.full_scans), and the streaming accumulators stay
# bit-identical to the full recompute, including across snapshot/restore.
# Counts don't wobble with host load the way wall time does, so this stage
# fails only on real complexity regressions. micro_db then smoke-runs the
# per-operation storage cost report.
ctest --preset default -R 'Perf\.' --output-on-failure
if [[ -x build/bench/micro_db ]]; then
  # --allow-dirty: this is a smoke run, not a blessed BENCH_*.json refresh.
  build/bench/micro_db --allow-dirty
else
  echo "ci: build/bench/micro_db not built; skipping storage cost report" >&2
fi

echo "=== stage: 10k-phone scale smoke (O(delta) scheduling) ==="
# One 10k-phone campaign cell (~50s serial). The gate is the counters, not
# the wall time: plan-delta distribution must send EXACTLY one schedule per
# join (a fleet-wide redistribution would send ~fleet per join), and the
# per-join gain-evaluation count must stay O(window+budget) — hundreds at
# most, never the ~10k an O(fleet) replan would charge.
if [[ -x build/bench/scale_phones ]]; then
  cell_json="$(build/bench/scale_phones --cell 3334 1)"
  echo "ci: ${cell_json}"
  sent_per_join="$(sed -n 's/.*"schedules_sent_per_join": \([0-9.]*\).*/\1/p' \
                   <<<"${cell_json}")"
  evals_per_join="$(sed -n 's/.*"gain_evaluations_per_join": \([0-9.]*\).*/\1/p' \
                    <<<"${cell_json}")"
  if [[ "${sent_per_join}" != "1.000" ]]; then
    echo "ci: schedules_sent_per_join=${sent_per_join} (want 1.000) —" \
         "plan-delta distribution regressed to fleet-wide pushes" >&2
    exit 1
  fi
  if awk -v e="${evals_per_join}" 'BEGIN { exit !(e >= 1000) }'; then
    echo "ci: gain_evaluations_per_join=${evals_per_join} (want <1000) —" \
         "join replanning regressed toward O(fleet)" >&2
    exit 1
  fi
else
  echo "ci: build/bench/scale_phones not built; skipping scale smoke" >&2
fi

echo "=== stage: multi-thread perf smoke (epoch runtime) ==="
# Wall-clock sanity for the epoch two-phase runtime (docs/runtime.md): on a
# multi-core host, running the 1000-phone scale_phones cell at threads=2
# must not be more than 25% slower than the serial run — phase A is
# supposed to overlap the per-phone compute, so a large regression means
# the merge pass (or something feeding it) reintroduced serialization.
# Single-core hosts measure the same serial machine plus coordination
# overhead at every thread count, so the comparison is meaningless there
# and is skipped with a notice rather than silently passed.
if [[ -x build/bench/scale_phones ]]; then
  if [[ "$(nproc)" -ge 2 ]]; then
    serial_ms="$(build/bench/scale_phones --cell 334 1 \
                 | sed -n 's/.*"wall_ms": \([0-9.]*\).*/\1/p')"
    two_ms="$(build/bench/scale_phones --cell 334 2 \
              | sed -n 's/.*"wall_ms": \([0-9.]*\).*/\1/p')"
    echo "ci: scale_phones 1000 phones: threads=1 ${serial_ms}ms," \
         "threads=2 ${two_ms}ms"
    # Fail if threads=2 wall > 1.25x serial wall.
    if awk -v s="${serial_ms}" -v t="${two_ms}" \
           'BEGIN { exit !(t > 1.25 * s) }'; then
      echo "ci: threads=2 regressed >25% vs serial" \
           "(${two_ms}ms vs ${serial_ms}ms) — epoch runtime not parallel" >&2
      exit 1
    fi
  else
    echo "ci: single-core host ($(nproc) cpu); skipping threads=2 vs" \
         "serial comparison — every thread count measures the same" \
         "serial machine" >&2
  fi
else
  echo "ci: build/bench/scale_phones not built; skipping perf smoke" >&2
fi

echo "=== stage: clang-tidy ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # The default preset's compile_commands.json drives the analysis; limit
  # it to first-party sources (deps under build/ are not ours to fix).
  cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t tidy_sources < <(find src tools -name '*.cpp' | sort)
  clang-tidy -p build --quiet "${tidy_sources[@]}"
else
  echo "ci: clang-tidy not installed; skipping C++ lint stage" >&2
fi

echo "=== preset: tsan (sharded runtime) ==="
cmake --preset tsan
if [[ "${FULL_TSAN}" == "1" ]]; then
  cmake --build --preset tsan -j "$(nproc)"
  ctest --preset tsan -j "$(nproc)"
else
  # Default stage: only the tests that exercise threads > 1 — the
  # determinism contract and the chaos battery on the parallel runtime.
  cmake --build --preset tsan -j "$(nproc)" \
    --target test_determinism test_chaos
  ctest --preset tsan -j "$(nproc)" -R 'Determinism\.|Chaos\.'
fi

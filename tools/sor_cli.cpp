// sor — command-line front door to the SOR reproduction.
//
//   sor fieldtest --scenario trails|coffee [--budget N] [--method M] [--csv]
//       run a full sensing campaign and print feature data + rankings
//   sor simulate [--users N] [--budget B] [--runs R] [--sigma S]
//       scheduling simulation: greedy vs baseline average coverage
//   sor barcode --scenario trails|coffee --place IDX [--ascii]
//       print the deployable 2D barcode for one target place
//   sor rank --scenario trails|coffee --user NAME [--method M]
//       run one profile's personalizable ranking on a fresh campaign
//   sor lint FILE.sor | sor lint --builtin trails|coffee
//       run the SenseScript static analyzer on a script and print its
//       diagnostics and required-sensor manifest (exit 1 on errors)
//   sor metrics --scenario trails|coffee [--chaos] [--overload [B]]
//               [--threads N] [--json]
//       run a campaign and dump the metrics registry; --overload caps the
//       server's per-tick ingest at B (default 5) to exercise the
//       backpressure/shedding path (docs/robustness.md)
//   sor trace [--scenario ...] [--chaos] [--threads N] [--seed S]
//             [--out F.jsonl] [--chrome F.json] [--summary] [--fingerprint]
//       record the deterministic campaign trace, or analyse one recorded
//       earlier with --in F.jsonl
//   sor serve --scenario trails|coffee [--bind ADDR] [--snapshot F]
//       host the sensing server out-of-process behind a Unix/TCP socket
//   sor loadgen --scenario trails|coffee [--connect ADDR] [--workers N]
//       replay a phone fleet against a live daemon; report throughput
//   sor help
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "bench_args.hpp"
#include "core/fleet.hpp"
#include "core/system.hpp"
#include "net/fault_injector.hpp"
#include "obs/spans.hpp"
#include "obs/trace_io.hpp"
#include "script/analysis/analyzer.hpp"
#include "script/analysis/passes.hpp"
#include "script/ir/lower.hpp"
#include "script/parser.hpp"
#include "server/json_export.hpp"
#include "sched/baseline.hpp"
#include "sched/greedy.hpp"
#include "transport/daemon.hpp"
#include "transport/loadgen.hpp"
#include "transport/socket.hpp"
#include "world/arrivals.hpp"

using namespace sor;

namespace {

int Usage() {
  std::printf(
      "sor — mobile-phone-sensing objective ranking (SOR, ICDCS'14)\n\n"
      "usage:\n"
      "  sor fieldtest --scenario trails|coffee [--budget N] [--method M]"
      " [--csv|--json]\n"
      "                [--phones N] [--period S] [--seed S]"
      " [--scheduler A] [--rankings-out F]\n"
      "  sor simulate  [--users N] [--budget B] [--runs R] [--sigma S]\n"
      "  sor barcode   --scenario trails|coffee --place IDX [--ascii]\n"
      "  sor rank      --scenario trails|coffee --user NAME [--method M]"
      " [--explain]\n"
      "  sor lint      FILE.sor [--energy-budget MJ] [--samples N]"
      " [--strict] [--ir-dump] [--flow-manifest]\n"
      "  sor lint      --builtin trails|coffee [same options]\n"
      "  sor metrics   [--scenario trails|coffee] [--chaos] [--overload [B]]"
      " [--threads N] [--json]\n"
      "  sor trace     [--scenario trails|coffee] [--chaos] [--seed S]"
      " [--threads N]\n"
      "                [--out F.jsonl] [--chrome F.json] [--summary]"
      " [--fingerprint]\n"
      "  sor trace     --in F.jsonl [--summary] [--fingerprint]\n"
      "  sor serve     --scenario trails|coffee [--bind ADDR] [--phones N]"
      " [--period S]\n"
      "                [--seed S] [--method M] [--scheduler A]"
      " [--tick-ms MS] [--snapshot F]\n"
      "                [--rankings-out F] [--overload [B]]\n"
      "  sor loadgen   --scenario trails|coffee [--connect ADDR]"
      " [--workers N]\n"
      "                [--phones N] [--period S] [--seed S] [--budget N]"
      " [--report F]\n"
      "  sor help\n\n"
      "addresses: unix:/path/to.sock or tcp:HOST:PORT\n"
      "methods:   mcmf (default), hungarian, kemeny, borda\n"
      "schedulers: lazy (default), greedy, periodic\n");
  return 2;
}

// Every subcommand rejects flags it does not understand: a typo fails the
// invocation with exit 2 naming the flag, instead of silently running a
// different campaign than the one asked for.
int RejectUnknownFlags(const cli::Args& args, const char* cmd,
                       std::initializer_list<std::string_view> allowed) {
  const std::string unknown = args.FirstUnknown(allowed);
  if (unknown.empty()) return 0;
  std::fprintf(stderr, "unknown flag '--%s' for 'sor %s'\n", unknown.c_str(),
               cmd);
  return 2;
}

// Shared --phones / --period fleet-shape overrides: campaign identity for
// fieldtest, serve and loadgen, so the three hosts agree on the plan.
void ApplyScenarioOverrides(const cli::Args& args, world::Scenario* scenario) {
  if (args.Has("phones")) {
    scenario->phones_per_place = args.GetInt("phones", scenario->phones_per_place);
  }
  if (args.Has("period")) {
    scenario->period_s = args.GetDouble("period", scenario->period_s);
  }
}

Result<world::Scenario> ScenarioByName(const std::string& name) {
  if (name == "trails" || name == "hiking")
    return world::MakeHikingTrailScenario();
  if (name == "coffee" || name == "shops")
    return world::MakeCoffeeShopScenario();
  return Error{Errc::kInvalidArgument,
               "unknown scenario '" + name + "' (trails|coffee)"};
}

Result<rank::AggregationMethod> MethodByName(const std::string& name) {
  if (name == "mcmf" || name.empty())
    return rank::AggregationMethod::kFootruleMcmf;
  if (name == "hungarian")
    return rank::AggregationMethod::kFootruleHungarian;
  if (name == "kemeny") return rank::AggregationMethod::kExactKemeny;
  if (name == "borda") return rank::AggregationMethod::kBorda;
  return Error{Errc::kInvalidArgument, "unknown method '" + name + "'"};
}

Result<server::SchedulerAlgorithm> SchedulerByName(const std::string& name) {
  if (name == "lazy" || name.empty())
    return server::SchedulerAlgorithm::kLazyGreedy;
  if (name == "greedy") return server::SchedulerAlgorithm::kGreedy;
  if (name == "periodic") return server::SchedulerAlgorithm::kPeriodic;
  return Error{Errc::kInvalidArgument,
               "unknown scheduler '" + name + "' (greedy|lazy|periodic)"};
}

bool WriteFileOrStdout(const std::string& path, const std::string& content,
                       const char* what) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out || !(out << content)) {
    std::fprintf(stderr, "cannot write %s to '%s'\n", what, path.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %s to %s\n", what, path.c_str());
  return true;
}

Result<core::FieldTestResult> Campaign(
    const world::Scenario& scenario, int budget,
    rank::AggregationMethod method, std::uint64_t seed = 42,
    server::SchedulerAlgorithm scheduler =
        server::SchedulerAlgorithm::kLazyGreedy) {
  core::System system;
  core::FieldTestConfig config;
  config.budget_per_user = budget;
  config.aggregation = method;
  config.sigma_s = 60.0;
  config.seed = seed;
  config.scheduler_algorithm = scheduler;
  return system.RunFieldTest(scenario, config);
}

int CmdFieldTest(const cli::Args& args) {
  if (int rc = RejectUnknownFlags(
          args, "fieldtest",
          {"scenario", "budget", "method", "scheduler", "csv", "json",
           "phones", "period", "seed", "rankings-out"}))
    return rc;
  Result<world::Scenario> scenario = ScenarioByName(args.Get("scenario"));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.error().str().c_str());
    return 2;
  }
  ApplyScenarioOverrides(args, &scenario.value());
  Result<rank::AggregationMethod> method = MethodByName(args.Get("method"));
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.error().str().c_str());
    return 2;
  }
  Result<server::SchedulerAlgorithm> scheduler =
      SchedulerByName(args.Get("scheduler"));
  if (!scheduler.ok()) {
    std::fprintf(stderr, "%s\n", scheduler.error().str().c_str());
    return 2;
  }
  Result<core::FieldTestResult> run = Campaign(
      scenario.value(), args.GetInt("budget", 40), method.value(),
      static_cast<std::uint64_t>(args.GetInt("seed", 42)), scheduler.value());
  if (!run.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", run.error().str().c_str());
    return 1;
  }
  const core::FieldTestResult& result = run.value();
  if (args.Has("rankings-out")) {
    // The canonical campaign-equivalence artifact (core/fleet.hpp): CI
    // compares this byte-for-byte against a daemon+loadgen run.
    const std::string text =
        core::RenderRankingsText(result.matrix, result.rankings);
    if (!WriteFileOrStdout(args.Get("rankings-out"), text, "rankings"))
      return 1;
  }
  if (args.Has("csv")) {
    std::printf("%s", server::RenderFeatureCsv(result.matrix).c_str());
    return 0;
  }
  std::vector<std::pair<std::string, rank::Ranking>> table;
  for (const auto& [user, outcome] : result.rankings)
    table.emplace_back(user, outcome.final_ranking);
  if (args.Has("json")) {
    std::printf("{\"features\":%s,\"rankings\":%s}\n",
                server::RenderFeatureJson(result.matrix).c_str(),
                server::RenderRankingJson(result.matrix, table).c_str());
    return 0;
  }
  std::printf("%s", server::RenderFeatureBars(result.matrix).c_str());
  std::printf("%s", server::RenderRankingTable(result.matrix, table).c_str());
  std::printf("\nuploads: %llu, energy: %.0f mJ spent / %.0f mJ saved\n",
              static_cast<unsigned long long>(result.total_uploads),
              result.energy_spent_mj, result.energy_saved_mj);
  return 0;
}

int CmdSimulate(const cli::Args& args) {
  if (int rc = RejectUnknownFlags(args, "simulate",
                                  {"users", "budget", "runs", "sigma"}))
    return rc;
  const int users = args.GetInt("users", 40);
  const int budget = args.GetInt("budget", 17);
  const int runs = args.GetInt("runs", 10);
  const double sigma = args.GetDouble("sigma", 10.0);
  if (users < 1 || budget < 1 || runs < 1 || sigma <= 0) {
    std::fprintf(stderr, "invalid simulate parameters\n");
    return 2;
  }
  double greedy_sum = 0.0;
  double base_sum = 0.0;
  for (int run = 0; run < runs; ++run) {
    Rng rng(777 + static_cast<std::uint64_t>(run) * 101);
    world::ArrivalConfig cfg;
    cfg.num_users = users;
    cfg.budget = budget;
    sched::Problem p = sched::Problem::UniformGrid(10'800.0, 1'080, sigma);
    p.users = world::GenerateArrivals(cfg, rng);
    const auto greedy = sched::GreedySchedule(p);
    const auto base = sched::PeriodicBaselineSchedule(p);
    if (!greedy.ok() || !base.ok()) {
      std::fprintf(stderr, "scheduling failed\n");
      return 1;
    }
    const sched::CoverageEvaluator eval(p);
    greedy_sum += eval.AverageCoverage(greedy.value().schedule);
    base_sum += eval.AverageCoverage(base.value().schedule);
  }
  std::printf("users=%d budget=%d sigma=%.1fs runs=%d\n", users, budget,
              sigma, runs);
  std::printf("greedy   average coverage: %.4f\n", greedy_sum / runs);
  std::printf("baseline average coverage: %.4f\n", base_sum / runs);
  std::printf("improvement: %.1f%%\n",
              (greedy_sum / base_sum - 1.0) * 100.0);
  return 0;
}

int CmdBarcode(const cli::Args& args) {
  if (int rc =
          RejectUnknownFlags(args, "barcode", {"scenario", "place", "ascii"}))
    return rc;
  Result<world::Scenario> scenario = ScenarioByName(args.Get("scenario"));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.error().str().c_str());
    return 2;
  }
  const int place = args.GetInt("place", 0);
  if (place < 0 ||
      place >= static_cast<int>(scenario.value().places.size())) {
    std::fprintf(stderr, "place index out of range\n");
    return 2;
  }
  const world::PlaceModel& p =
      scenario.value().places[static_cast<std::size_t>(place)];
  BarcodePayload payload;
  payload.app = AppId{static_cast<std::uint64_t>(place + 1)};
  payload.place = p.id;
  payload.place_name = p.name;
  payload.location = p.center;
  payload.server = "server";
  payload.radius_m = p.radius_m;
  std::printf("place: %s\n", p.name.c_str());
  std::printf("text:  %s\n", EncodeBarcodeText(payload).c_str());
  if (args.Has("ascii")) {
    std::printf("\n%s", RenderBarcodeMatrix(payload).ascii().c_str());
  }
  return 0;
}

int CmdRank(const cli::Args& args) {
  if (int rc = RejectUnknownFlags(args, "rank",
                                  {"scenario", "user", "method", "explain"}))
    return rc;
  Result<world::Scenario> scenario = ScenarioByName(args.Get("scenario"));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.error().str().c_str());
    return 2;
  }
  Result<rank::AggregationMethod> method = MethodByName(args.Get("method"));
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.error().str().c_str());
    return 2;
  }
  const std::string user = args.Get("user");
  const rank::UserProfile* profile = nullptr;
  for (const rank::UserProfile& p : scenario.value().profiles) {
    if (p.name == user) profile = &p;
  }
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown user '%s'; profiles:", user.c_str());
    for (const rank::UserProfile& p : scenario.value().profiles)
      std::fprintf(stderr, " %s", p.name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  Result<core::FieldTestResult> run =
      Campaign(scenario.value(), 40, method.value());
  if (!run.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", run.error().str().c_str());
    return 1;
  }
  const rank::PersonalizableRanker ranker(run.value().matrix);
  Result<rank::RankingOutcome> outcome =
      ranker.Rank(*profile, method.value());
  if (!outcome.ok()) {
    std::fprintf(stderr, "ranking failed: %s\n",
                 outcome.error().str().c_str());
    return 1;
  }
  std::printf("ranking for %s:\n", profile->name.c_str());
  const auto names = outcome.value().OrderedNames(run.value().matrix);
  for (std::size_t i = 0; i < names.size(); ++i)
    std::printf("  No. %zu  %s\n", i + 1, names[i].c_str());
  if (args.Has("explain")) {
    std::printf("\n%s", server::RenderRankingExplanation(
                            run.value().matrix, outcome.value())
                            .c_str());
  }
  return 0;
}

// The CLI's canned chaos wire for `--chaos`: the aggressive-but-recoverable
// profile the chaos tests run (lossy request+response legs plus a one-minute
// hard partition mid-period). Fixed here so the CI determinism stage can
// compare fingerprints of the exact same campaign across thread counts.
std::vector<net::FaultRule> ChaosRules() {
  net::FaultRule lossy;
  lossy.drop = 0.25;
  lossy.corrupt = 0.15;
  lossy.duplicate = 0.15;
  net::FaultRule partition;
  partition.partition = SimInterval{SimTime{600'000}, SimTime{660'000}};
  return {lossy, partition};
}

// Shared campaign setup for `sor metrics` / `sor trace`. The System outlives
// the call so the caller can read its registry and tracer.
Result<core::FieldTestResult> ObservedCampaign(core::System& system,
                                               const cli::Args& args,
                                               bool trace) {
  Result<world::Scenario> scenario =
      ScenarioByName(args.Get("scenario", "coffee"));
  if (!scenario.ok()) return scenario.error();
  core::FieldTestConfig config;
  config.budget_per_user = args.GetInt("budget", 40);
  config.seed = static_cast<std::uint64_t>(args.GetInt("seed", 42));
  config.threads = args.GetInt("threads", 1);
  config.trace = trace;
  if (args.Has("chaos")) {
    config.chaos_rules = ChaosRules();
    // Derived from --seed by default: each seed is a distinct fault
    // schedule, so the CI fingerprint sweep covers distinct campaigns.
    config.chaos_seed = static_cast<std::uint64_t>(
        args.GetInt("chaos-seed",
                    static_cast<int>(config.seed * 31 + 7)));
  }
  if (args.Has("overload")) {
    // Cap the server's per-tick ingest (docs/robustness.md). The default
    // of 5 puts the stock scenarios well past the budget, so the shed and
    // throttle counters in the metrics dump are exercised.
    config.overload.ingest_budget = args.GetInt("overload", 5);
    // 0.6 keeps the stale-shedding band non-empty down to a budget of 3
    // (ceil(0.6 * B) < B); the stock 0.75 would round the band away for
    // the small budgets this flag is used with.
    config.overload.throttle_at = 0.6;
    config.overload.stale_after = SimDuration{15'000};
    config.overload.retry_after = SimDuration{12'000};
    config.drain_ticks = 60;  // let the throttled fleet flush afterwards
  }
  return system.RunFieldTest(scenario.value(), config);
}

int CmdMetrics(const cli::Args& args) {
  if (int rc = RejectUnknownFlags(args, "metrics",
                                  {"scenario", "budget", "seed", "threads",
                                   "chaos", "chaos-seed", "overload", "json"}))
    return rc;
  core::System system;
  Result<core::FieldTestResult> run =
      ObservedCampaign(system, args, /*trace=*/false);
  if (!run.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", run.error().str().c_str());
    return 1;
  }
  if (args.Has("json")) {
    std::printf("%s\n", system.metrics().RenderJson().c_str());
  } else {
    std::printf("%s", system.metrics().RenderText().c_str());
  }
  return 0;
}

int CmdTrace(const cli::Args& args) {
  if (int rc = RejectUnknownFlags(
          args, "trace",
          {"scenario", "budget", "seed", "threads", "chaos", "chaos-seed",
           "in", "out", "chrome", "summary", "fingerprint"}))
    return rc;
  obs::TraceData trace;
  if (args.Has("in")) {
    // Offline mode: analyse a previously recorded JSONL trace.
    std::ifstream in(args.Get("in"), std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read '%s'\n", args.Get("in").c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!obs::ReadJsonLines(buf.str(), &trace, &error)) {
      std::fprintf(stderr, "%s: %s\n", args.Get("in").c_str(),
                   error.c_str());
      return 1;
    }
  } else {
    core::System system;
    Result<core::FieldTestResult> run =
        ObservedCampaign(system, args, /*trace=*/true);
    if (!run.ok()) {
      std::fprintf(stderr, "campaign failed: %s\n",
                   run.error().str().c_str());
      return 1;
    }
    trace = system.tracer().Snapshot();
  }

  bool did_something = false;
  if (args.Has("out")) {
    if (!WriteFileOrStdout(args.Get("out"), obs::WriteJsonLines(trace),
                           "trace"))
      return 1;
    did_something = true;
  }
  if (args.Has("chrome")) {
    if (!WriteFileOrStdout(args.Get("chrome"), obs::WriteChromeTrace(trace),
                           "chrome trace"))
      return 1;
    did_something = true;
  }
  if (args.Has("fingerprint")) {
    std::printf("fingerprint=%016llx\n",
                static_cast<unsigned long long>(obs::Fingerprint(trace)));
    did_something = true;
  }
  // Summary is the default action when nothing else was requested.
  if (args.Has("summary") || !did_something) {
    std::printf("%s", obs::RenderSummary(obs::Summarize(trace)).c_str());
  }
  return 0;
}

// sor lint FILE.sor — the registration-time analyzer as a local gate: same
// passes, same diagnostic codes, so CI catches a script the server would
// reject before it is ever deployed.
int CmdLint(const std::string& source_name, const std::string& source,
            const cli::Args& args) {
  namespace analysis = script::analysis;
  analysis::AnalyzerOptions options;
  options.energy_budget_mj = args.GetDouble("energy-budget", 0.0);
  options.default_samples_per_window = args.GetInt("samples", 5);
  options.max_steps = args.GetDouble("max-steps", 2'000'000.0);
  const analysis::AnalysisReport report =
      analysis::AnalyzeSource(source, options);

  if (args.Has("ir-dump")) {
    // Dump the optimized dataflow IR the flow-sensitive passes analyzed.
    Result<script::Program> program = script::Parse(source);
    if (program.ok()) {
      script::ir::Module mod = script::ir::Lower(program.value());
      analysis::OptimizeModule(mod);
      std::printf("%s", script::ir::Dump(mod).c_str());
    }
  }
  if (args.Has("flow-manifest")) {
    const std::string encoded = analysis::EncodeFlowManifest(report.flow);
    std::printf("%s: flow manifest: %s\n", source_name.c_str(),
                encoded.empty() ? "(empty)" : encoded.c_str());
  }

  for (const analysis::Diagnostic& d : report.diagnostics)
    std::printf("%s: %s\n", source_name.c_str(),
                analysis::Render(d).c_str());

  const analysis::ScriptManifest& m = report.manifest;
  std::printf("%s: required sensors: %s\n", source_name.c_str(),
              m.required_sensors.empty()
                  ? "(none)"
                  : analysis::EncodeSensorList(m.required_sensors).c_str());
  if (m.cost_bounded) {
    std::printf(
        "%s: worst case per run: %.0f samples, %.1f mJ, %.0f steps\n",
        source_name.c_str(), m.worst_case_acquisitions,
        m.worst_case_energy_mj, m.worst_case_steps);
  } else {
    std::printf("%s: cost not statically bounded\n", source_name.c_str());
  }

  const std::size_t errors = report.error_count();
  const std::size_t warnings = report.diagnostics.size() - errors;
  std::printf("%s: %zu error(s), %zu warning(s)\n", source_name.c_str(),
              errors, warnings);
  if (errors > 0) return 1;
  if (args.Has("strict") && warnings > 0) return 1;
  return 0;
}

// --- out-of-process serving (src/transport) --------------------------------

volatile std::sig_atomic_t g_stop = 0;
void OnStopSignal(int) { g_stop = 1; }

int CmdServe(const cli::Args& args) {
  if (int rc = RejectUnknownFlags(
          args, "serve",
          {"scenario", "bind", "phones", "period", "seed", "method",
           "scheduler", "tick-ms", "io-timeout-ms", "snapshot",
           "rankings-out", "overload"}))
    return rc;
  Result<world::Scenario> scenario = ScenarioByName(args.Get("scenario"));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.error().str().c_str());
    return 2;
  }
  ApplyScenarioOverrides(args, &scenario.value());
  Result<rank::AggregationMethod> method = MethodByName(args.Get("method"));
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.error().str().c_str());
    return 2;
  }

  Result<server::SchedulerAlgorithm> scheduler =
      SchedulerByName(args.Get("scheduler"));
  if (!scheduler.ok()) {
    std::fprintf(stderr, "%s\n", scheduler.error().str().c_str());
    return 2;
  }

  transport::DaemonConfig config;
  config.bind = args.Get("bind", "unix:/tmp/sor-serve.sock");
  config.scheduler_algorithm = scheduler.value();
  config.scenario = scenario.value();
  config.plan.seed = static_cast<std::uint64_t>(args.GetInt("seed", 42));
  config.aggregation = method.value();
  config.tick_interval_ms = args.GetInt("tick-ms", 50);
  config.io_timeout_ms = args.GetInt("io-timeout-ms", 10'000);
  config.snapshot_path = args.Get("snapshot");
  config.rankings_path = args.Get("rankings-out");
  if (args.Has("overload")) {
    // Same preset as `sor metrics --overload` (docs/robustness.md).
    config.overload.ingest_budget = args.GetInt("overload", 5);
    config.overload.throttle_at = 0.6;
    config.overload.stale_after = SimDuration{15'000};
    config.overload.retry_after = SimDuration{12'000};
  }

  obs::MetricsRegistry registry;
  config.registry = &registry;
  transport::SocketTransport socket_transport(
      transport::Metrics::For(registry));
  transport::Daemon daemon(socket_transport, config);
  if (Status s = daemon.Start(); !s.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", s.str().c_str());
    return 1;
  }
  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGINT, OnStopSignal);
  std::printf("serving %s on %s\n", args.Get("scenario").c_str(),
              config.bind.c_str());
  std::fflush(stdout);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  daemon.Stop();
  std::printf("%s", registry.RenderText().c_str());
  return 0;
}

int CmdLoadgen(const cli::Args& args) {
  if (int rc = RejectUnknownFlags(
          args, "loadgen",
          {"scenario", "connect", "phones", "period", "seed", "budget",
           "workers", "io-timeout-ms", "report"}))
    return rc;
  Result<world::Scenario> scenario = ScenarioByName(args.Get("scenario"));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.error().str().c_str());
    return 2;
  }
  ApplyScenarioOverrides(args, &scenario.value());

  transport::LoadgenConfig config;
  config.address = args.Get("connect", "unix:/tmp/sor-serve.sock");
  config.scenario = scenario.value();
  config.plan.seed = static_cast<std::uint64_t>(args.GetInt("seed", 42));
  config.budget_per_user = args.GetInt("budget", 40);
  config.workers = args.GetInt("workers", 2);
  config.io_timeout_ms = args.GetInt("io-timeout-ms", 10'000);

  obs::MetricsRegistry registry;
  config.registry = &registry;
  transport::SocketTransport socket_transport(
      transport::Metrics::For(registry));
  Result<transport::LoadgenReport> run =
      transport::RunLoadgen(socket_transport, config);
  if (!run.ok()) {
    std::fprintf(stderr, "loadgen failed: %s\n", run.error().str().c_str());
    return 1;
  }
  const transport::LoadgenReport& report = run.value();
  std::printf("phones=%llu workers=%llu calls=%llu failures=%llu "
              "pushes=%llu uploads=%llu\n",
              static_cast<unsigned long long>(report.phones),
              static_cast<unsigned long long>(report.workers),
              static_cast<unsigned long long>(report.calls),
              static_cast<unsigned long long>(report.call_failures),
              static_cast<unsigned long long>(report.pushes_served),
              static_cast<unsigned long long>(report.uploads_sent));
  std::printf("wall=%.2fs throughput=%.0f calls/s latency p50=%.0fus "
              "p90=%.0fus p99=%.0fus\n",
              report.wall_seconds, report.calls_per_second,
              report.p50_call_us, report.p90_call_us, report.p99_call_us);
  const std::string report_path = args.Get("report", "BENCH_loadgen.json");
  if (!WriteFileOrStdout(report_path, report.ToJson(), "loadgen report"))
    return 1;
  return 0;
}

int CmdLintEntry(int argc, char** argv) {
  // Optional positional FILE before the --flags.
  std::string file;
  if (argc > 0 && std::string(argv[0]).rfind("--", 0) != 0) {
    file = argv[0];
    ++argv;
    --argc;
  }
  const cli::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", args.error().c_str());
    return 2;
  }
  if (const int rc = RejectUnknownFlags(
          args, "lint",
          {"builtin", "energy-budget", "samples", "strict", "ir-dump",
           "flow-manifest", "max-steps"});
      rc != 0)
    return rc;
  if (args.Has("builtin")) {
    const std::string which = args.Get("builtin");
    if (which != "trails" && which != "coffee") {
      std::fprintf(stderr, "--builtin expects trails|coffee\n");
      return 2;
    }
    const std::string source = core::DefaultScript(
        which == "trails" ? world::PlaceCategory::kHikingTrail
                          : world::PlaceCategory::kCoffeeShop);
    return CmdLint("builtin:" + which, source, args);
  }
  if (file.empty()) {
    std::fprintf(stderr,
                 "usage: sor lint FILE.sor | sor lint --builtin "
                 "trails|coffee\n");
    return 2;
  }
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "cannot read '%s'\n", file.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return CmdLint(file, buf.str(), args);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  // lint takes a positional FILE argument, so it parses its own flags.
  if (cmd == "lint") return CmdLintEntry(argc - 2, argv + 2);
  const cli::Args args(argc - 2, argv + 2);
  if (!args.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", args.error().c_str());
    return 2;
  }
  if (cmd == "fieldtest") return CmdFieldTest(args);
  if (cmd == "simulate") return CmdSimulate(args);
  if (cmd == "barcode") return CmdBarcode(args);
  if (cmd == "rank") return CmdRank(args);
  if (cmd == "metrics") return CmdMetrics(args);
  if (cmd == "trace") return CmdTrace(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "loadgen") return CmdLoadgen(args);
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    Usage();
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return Usage();
}

// Hiking-trail field test (§V-A): three trails in/around Syracuse, 7 phones
// each, 5 features, three hiker profiles (Alice / Bob / Chris). Prints the
// Fig. 6 feature data, the ground-truth comparison, and the Table I
// rankings.
//
// Build & run:  ./build/examples/hiking_trails
#include <cstdio>

#include "core/system.hpp"

int main() {
  using namespace sor;

  const world::Scenario scenario = world::MakeHikingTrailScenario();

  core::System system;
  core::FieldTestConfig config;
  config.budget_per_user = 40;
  config.sigma_s = 60.0;

  Result<core::FieldTestResult> run = system.RunFieldTest(scenario, config);
  if (!run.ok()) {
    std::fprintf(stderr, "field test failed: %s\n", run.error().str().c_str());
    return 1;
  }
  const core::FieldTestResult& result = run.value();

  std::printf("=== SOR field test: hiking trails (Fig. 6 / Table I) ===\n\n");
  std::printf("%s", server::RenderFeatureBars(result.matrix).c_str());

  // Ground-truth comparison: what the world generator was told to produce
  // versus what made it through sensing, upload, decoding and processing.
  const std::vector<double> truth = world::GroundTruthFeatures(scenario);
  const int m = result.matrix.num_features();
  std::printf("measured vs ground truth:\n");
  for (int i = 0; i < result.matrix.num_places(); ++i) {
    std::printf("  %-18s", result.matrix.place_names()[i].c_str());
    for (int j = 0; j < m; ++j) {
      std::printf("  %8.2f/%-8.2f", result.matrix.at(i, j),
                  truth[static_cast<std::size_t>(i) * m + j]);
    }
    std::printf("\n");
  }

  std::printf("\nTable I — rankings of hiking trails computed by SOR:\n\n");
  std::vector<std::pair<std::string, rank::Ranking>> table;
  for (const auto& [user, outcome] : result.rankings)
    table.emplace_back(user, outcome.final_ranking);
  std::printf("%s\n", server::RenderRankingTable(result.matrix, table).c_str());

  std::printf("CSV export (Visualization module):\n%s",
              server::RenderFeatureCsv(result.matrix).c_str());

  // Why did Bob get this order? Show Algorithm 2's intermediate state.
  std::printf("\nexplanation for %s:\n%s",
              result.rankings[1].first.c_str(),
              server::RenderRankingExplanation(
                  result.matrix, result.rankings[1].second)
                  .c_str());
  return 0;
}

// Online arrivals: the "mobile user may participate at any time" workflow
// (§II) driven end to end — users scan the barcode at staggered times, the
// server re-plans on every join/leave with the online-aware scheduler, and
// the run ends with a schedule timeline, an energy report, and a hybrid
// objective+subjective ranking.
//
// Build & run:  ./build/examples/online_arrivals
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "phone/frontend.hpp"
#include "rank/hybrid.hpp"
#include "sched/timeline.hpp"
#include "sensors/energy.hpp"
#include "server/feature_def.hpp"
#include "server/coverage_report.hpp"
#include "server/server.hpp"
#include "world/phone_agent.hpp"
#include "world/scenarios.hpp"

using namespace sor;

int main() {
  SimClock clock;
  net::LoopbackNetwork network;
  server::SensingServer server(server::ServerConfig{}, network, clock);

  const world::Scenario scenario = world::MakeCoffeeShopScenario();
  const world::PlaceModel& place = scenario.places[1];  // B&N Cafe

  server::ApplicationSpec spec;
  spec.creator = "cafe-owner";
  spec.place = place.id;
  spec.place_name = place.name;
  spec.location = place.center;
  spec.radius_m = place.radius_m;
  spec.script = core::DefaultScript(world::PlaceCategory::kCoffeeShop);
  spec.features = server::CoffeeShopFeatures();
  spec.period = SimInterval{SimTime{0}, SimTime::FromSeconds(3'600)};
  spec.n_instants = 360;
  spec.sigma_s = 30.0;
  const BarcodePayload barcode = server.DeployApplication(spec).value();
  std::printf("deployed '%s'; barcode text: %.32s...\n\n",
              place.name.c_str(), EncodeBarcodeText(barcode).c_str());

  // Six customers drifting in and out over the hour.
  struct Customer {
    double arrive_s, leave_s;
    std::unique_ptr<world::PhoneAgent> agent;
    std::unique_ptr<phone::MobileFrontend> frontend;
    TaskId task;  // assigned by the server at join time
    bool joined = false, left = false;
  };
  Rng rng(7);
  std::vector<Customer> customers;
  for (int k = 0; k < 6; ++k) {
    Customer c;
    c.arrive_s = rng.uniform(0, 2'400);
    c.leave_s = c.arrive_s + rng.uniform(600, 3'600 - c.arrive_s);
    world::PhoneAgentConfig agent_cfg;
    agent_cfg.id = PhoneId{static_cast<std::uint64_t>(k + 1)};
    agent_cfg.seed = 40 + static_cast<std::uint64_t>(k);
    c.agent = std::make_unique<world::PhoneAgent>(place, agent_cfg);
    phone::FrontendConfig cfg;
    cfg.phone_id = agent_cfg.id;
    cfg.user_name = "customer_" + std::to_string(k + 1);
    cfg.token = Token{"tok-" + std::to_string(k + 1)};
    cfg.user_id =
        server.users().RegisterUser(cfg.user_name, cfg.token).value();
    c.frontend = std::make_unique<phone::MobileFrontend>(cfg, network,
                                                         *c.agent, clock);
    customers.push_back(std::move(c));
  }

  while (clock.now() < spec.period.end) {
    clock.advance(SimDuration{10'000});
    for (Customer& c : customers) {
      if (!c.joined && clock.now().seconds() >= c.arrive_s) {
        Result<TaskId> task = c.frontend->ScanBarcode(barcode, 12);
        if (task.ok()) {
          c.joined = true;
          c.task = task.value();
          std::printf("[%s] %s scanned the barcode and joined\n",
                      to_string(clock.now()).c_str(),
                      c.frontend->config().user_name.c_str());
        }
      }
      if (c.joined && !c.left) {
        c.frontend->Tick();
        if (clock.now().seconds() >= c.leave_s) {
          (void)c.frontend->LeavePlace();
          c.left = true;
          std::printf("[%s] %s left the cafe\n",
                      to_string(clock.now()).c_str(),
                      c.frontend->config().user_name.c_str());
        }
      }
    }
  }

  std::printf("\nreschedules: %llu, schedules distributed: %llu\n",
              static_cast<unsigned long long>(
                  server.scheduler().stats().reschedules),
              static_cast<unsigned long long>(
                  server.scheduler().stats().schedules_distributed));

  // Reconstruct the as-planned problem for the timeline rendering.
  sched::Problem p;
  p.grid = MakeInstantGrid(spec.period, spec.n_instants);
  p.sigma_s = spec.sigma_s;
  sched::Schedule executed = sched::Schedule::Empty(
      static_cast<int>(customers.size()));
  for (std::size_t k = 0; k < customers.size(); ++k) {
    p.users.push_back(sched::UserWindow{
        SimInterval{SimTime::FromSeconds(customers[k].arrive_s),
                    SimTime::FromSeconds(customers[k].leave_s)},
        12});
  }
  // Executed instants straight from the database's raw uploads; task ids
  // were assigned in join order, so map each back to its customer.
  const auto by_task =
      server::ExecutedInstantsByTask(server.database(), barcode.app, p.grid);
  for (std::size_t k = 0; k < customers.size(); ++k) {
    if (auto it = by_task.find(customers[k].task); it != by_task.end())
      executed.per_user[k] = it->second;
  }
  std::printf("\nexecuted sensing timeline ('#' = measurement, '.' = "
              "present, '-' = away):\n\n%s\n",
              sched::RenderScheduleTimeline(p, executed).c_str());

  // Energy accounting across all phones.
  sensors::EnergyReport energy;
  for (const Customer& c : customers)
    energy += sensors::EnergyOf(c.frontend->sensor_manager());
  std::printf("sensing energy: %.1f mJ spent, %.1f mJ saved by shared "
              "provider buffers\n\n",
              energy.spent_mj, energy.saved_mj);

  // Hybrid ranking demo: blend the objective data with community stars.
  (void)server.ProcessAllData();
  std::printf("hybrid ranking (objective sensing + community stars):\n");
  world::Scenario full = scenario;
  core::System demo_system;  // fresh full campaign for all three shops
  core::FieldTestConfig demo_cfg;
  demo_cfg.budget_per_user = 20;
  demo_cfg.n_instants = 180;
  demo_cfg.tick = SimDuration{60'000};
  Result<core::FieldTestResult> campaign =
      demo_system.RunFieldTest(full, demo_cfg);
  if (campaign.ok()) {
    const rank::PersonalizableRanker ranker(campaign.value().matrix);
    rank::SubjectiveRatings stars;
    stars.stars = {4.5, 3.5, 4.0};  // community loves Tim Hortons
    stars.review_counts = {120, 48, 260};
    for (double w : {0.0, 2.0, 8.0}) {
      Result<rank::RankingOutcome> hybrid = rank::HybridRank(
          ranker, full.profiles[1] /* Emma */, stars, w);
      if (!hybrid.ok()) continue;
      std::printf("  subjective weight %.0f:", w);
      for (const std::string& name :
           hybrid.value().OrderedNames(campaign.value().matrix)) {
        std::printf("  %s", name.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}

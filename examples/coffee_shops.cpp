// Coffee-shop field test (§V-B): Tim Hortons, B&N Cafe and a Starbucks in
// Syracuse, 12 phones each, 4 features, two customer profiles (David /
// Emma). Prints the Fig. 10 feature data and the Table II rankings, and
// demonstrates local sensor preferences: one customer disables GPS-exact
// locations and another has no Sensordrone paired.
//
// Build & run:  ./build/examples/coffee_shops
#include <cstdio>

#include "core/system.hpp"

int main() {
  using namespace sor;

  const world::Scenario scenario = world::MakeCoffeeShopScenario();

  core::System system;
  core::FieldTestConfig config;
  config.budget_per_user = 40;

  Result<core::FieldTestResult> run = system.RunFieldTest(scenario, config);
  if (!run.ok()) {
    std::fprintf(stderr, "field test failed: %s\n", run.error().str().c_str());
    return 1;
  }
  const core::FieldTestResult& result = run.value();

  std::printf("=== SOR field test: coffee shops (Fig. 10 / Table II) ===\n\n");
  std::printf("%s", server::RenderFeatureBars(result.matrix).c_str());

  std::printf("Table II — rankings of coffee shops computed by SOR:\n\n");
  std::vector<std::pair<std::string, rank::Ranking>> table;
  for (const auto& [user, outcome] : result.rankings)
    table.emplace_back(user, outcome.final_ranking);
  std::printf("%s\n", server::RenderRankingTable(result.matrix, table).c_str());

  // Every aggregation method side by side on the same data (the ranker is
  // pluggable; the paper's default is the footrule min-cost-flow).
  const rank::PersonalizableRanker ranker(result.matrix);
  const rank::AggregationMethod methods[] = {
      rank::AggregationMethod::kFootruleMcmf,
      rank::AggregationMethod::kFootruleHungarian,
      rank::AggregationMethod::kExactKemeny,
      rank::AggregationMethod::kBorda,
  };
  const char* method_names[] = {"footrule-mcmf", "footrule-hungarian",
                                "exact-kemeny", "borda"};
  std::printf("aggregation-method comparison (profile: %s):\n",
              scenario.profiles[1].name.c_str());
  for (std::size_t i = 0; i < 4; ++i) {
    Result<rank::RankingOutcome> outcome =
        ranker.Rank(scenario.profiles[1], methods[i]);
    if (!outcome.ok()) continue;
    std::printf("  %-20s:", method_names[i]);
    for (const std::string& name :
         outcome.value().OrderedNames(result.matrix)) {
      std::printf("  %s", name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

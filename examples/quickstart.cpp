// Quickstart: run a complete SOR sensing campaign end to end.
//
//   1. stand up a sensing server + the coffee-shop world;
//   2. phones scan the 2D barcodes and participate;
//   3. the server schedules sensing (Algorithm 1), phones execute the
//      SenseScript tasks and upload binary data;
//   4. the Data Processor computes feature values;
//   5. the Personalizable Ranker produces per-user rankings (Algorithm 2).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/system.hpp"

int main() {
  using namespace sor;

  const world::Scenario scenario = world::MakeCoffeeShopScenario();

  core::System system;
  core::FieldTestConfig config;
  config.budget_per_user = 40;  // each phone agrees to sense 40 times

  Result<core::FieldTestResult> run = system.RunFieldTest(scenario, config);
  if (!run.ok()) {
    std::fprintf(stderr, "field test failed: %s\n", run.error().str().c_str());
    return 1;
  }
  const core::FieldTestResult& result = run.value();

  std::printf("=== SOR quickstart: coffee shops ===\n\n");
  std::printf("Feature data collected via mobile phone sensing:\n\n%s",
              server::RenderFeatureBars(result.matrix).c_str());

  std::printf("Personalizable rankings:\n\n");
  std::vector<std::pair<std::string, rank::Ranking>> table;
  for (const auto& [user, outcome] : result.rankings)
    table.emplace_back(user, outcome.final_ranking);
  std::printf("%s\n", server::RenderRankingTable(result.matrix, table).c_str());

  std::printf("uploads: %llu  (failures: %llu)\n",
              static_cast<unsigned long long>(result.total_uploads),
              static_cast<unsigned long long>(result.total_upload_failures));
  std::printf("raw blobs decoded: %llu, tuples processed: %llu\n",
              static_cast<unsigned long long>(
                  result.processor_stats.blobs_decoded),
              static_cast<unsigned long long>(
                  result.processor_stats.tuples_processed));
  return 0;
}

// Scheduling simulation (§V-C, Fig. 14): the proposed greedy scheduler
// versus the every-10-seconds baseline on the paper's setup — a 3-hour
// period divided into 1080 instants, Gaussian coverage with σ = 10 s,
// uniform random arrivals/leaves.
//
// Build & run:  ./build/examples/scheduling_sim
#include <cstdio>

#include "common/rng.hpp"
#include "sched/baseline.hpp"
#include "sched/greedy.hpp"
#include "world/arrivals.hpp"

int main() {
  using namespace sor;

  const int runs = 5;
  std::printf("=== SOR scheduling simulation (Fig. 14 preview) ===\n");
  std::printf("period 10800 s, 1080 instants, sigma 10 s, %d runs/point\n\n",
              runs);
  std::printf("%8s %8s %12s %12s %8s\n", "users", "budget", "greedy",
              "baseline", "ratio");

  for (int users = 10; users <= 50; users += 10) {
    double greedy_sum = 0.0;
    double base_sum = 0.0;
    for (int run = 0; run < runs; ++run) {
      Rng rng(1000 + static_cast<std::uint64_t>(users) * 31 + run);
      world::ArrivalConfig cfg;
      cfg.num_users = users;
      cfg.budget = 17;
      sched::Problem p = sched::Problem::UniformGrid(10'800.0, 1080, 10.0);
      p.users = world::GenerateArrivals(cfg, rng);

      const auto greedy = sched::GreedySchedule(p);
      const auto base = sched::PeriodicBaselineSchedule(p);
      if (!greedy.ok() || !base.ok()) {
        std::fprintf(stderr, "scheduling failed\n");
        return 1;
      }
      const sched::CoverageEvaluator eval(p);
      greedy_sum += eval.AverageCoverage(greedy.value().schedule);
      base_sum += eval.AverageCoverage(base.value().schedule);
    }
    std::printf("%8d %8d %12.4f %12.4f %8.2fx\n", users, 17,
                greedy_sum / runs, base_sum / runs,
                greedy_sum / base_sum);
  }
  std::printf("\n(The full parameter sweep with variance bars lives in "
              "bench/fig14a_coverage_vs_users and "
              "bench/fig14b_coverage_vs_budget.)\n");
  return 0;
}

// Unit tests for the 2D-barcode codec: byte/text/matrix round-trips and
// damage detection (the participation trigger of §II must be robust).
#include <gtest/gtest.h>

#include "codec/barcode.hpp"
#include "common/rng.hpp"

namespace sor {
namespace {

BarcodePayload Sample() {
  BarcodePayload p;
  p.app = AppId{7};
  p.place = PlaceId{101};
  p.place_name = "B&N Cafe";
  p.location = GeoPoint{43.045, -76.073, 130.0};
  p.server = "server";
  p.radius_m = 60.0;
  return p;
}

TEST(Barcode, BytesRoundTrip) {
  const BarcodePayload p = Sample();
  Result<BarcodePayload> decoded = DecodeBarcodeBytes(EncodeBarcodeBytes(p));
  ASSERT_TRUE(decoded.ok()) << decoded.error().str();
  EXPECT_TRUE(decoded.value() == p);
}

TEST(Barcode, TextRoundTrip) {
  const BarcodePayload p = Sample();
  const std::string text = EncodeBarcodeText(p);
  // Base32: only A-Z and 2-7.
  for (char c : text) {
    EXPECT_TRUE((c >= 'A' && c <= 'Z') || (c >= '2' && c <= '7')) << c;
  }
  Result<BarcodePayload> decoded = DecodeBarcodeText(text);
  ASSERT_TRUE(decoded.ok()) << decoded.error().str();
  EXPECT_TRUE(decoded.value() == p);
}

TEST(Barcode, TextLowercaseAccepted) {
  const BarcodePayload p = Sample();
  std::string text = EncodeBarcodeText(p);
  for (char& c : text) c = static_cast<char>(std::tolower(c));
  EXPECT_TRUE(DecodeBarcodeText(text).ok());
}

TEST(Barcode, TextInvalidCharactersRejected) {
  EXPECT_EQ(DecodeBarcodeText("NOT!VALID").code(), Errc::kDecodeError);
  EXPECT_EQ(DecodeBarcodeText("0189").code(), Errc::kDecodeError);  // 0,1,8,9 not in alphabet
}

TEST(Barcode, SingleByteCorruptionCorrectedByReedSolomon) {
  // The barcode carries RS parity: any single damaged byte inside a block
  // is corrected, and the decoded payload is exactly the original.
  const BarcodePayload p = Sample();
  Bytes data = EncodeBarcodeBytes(p);
  int corrected = 0;
  for (std::size_t i = 1; i < data.size(); ++i) {  // byte 0 = block header
    Bytes mutated = data;
    mutated[i] ^= 0x10;
    Result<BarcodePayload> decoded = DecodeBarcodeBytes(mutated);
    if (decoded.ok()) {
      EXPECT_TRUE(decoded.value() == p) << "byte " << i;
      ++corrected;
    }
  }
  // Every in-block flip must be corrected (block-length bytes are armor
  // framing and legitimately fail instead).
  EXPECT_GE(corrected, static_cast<int>(data.size()) - 3);
}

TEST(Barcode, HeavyCorruptionRejected) {
  Bytes data = EncodeBarcodeBytes(Sample());
  // 20 spread-out flips exceed the 8-error correction capacity.
  for (std::size_t i = 1; i < data.size(); i += data.size() / 20) {
    data[i] ^= 0xff;
  }
  EXPECT_FALSE(DecodeBarcodeBytes(data).ok());
}

TEST(Barcode, EmptyAndShortInputRejected) {
  EXPECT_FALSE(DecodeBarcodeBytes({}).ok());
  const Bytes four = {1, 2, 3, 4};
  EXPECT_FALSE(DecodeBarcodeBytes(four).ok());
}

TEST(Barcode, MatrixRoundTrip) {
  const BarcodePayload p = Sample();
  const BitMatrix m = RenderBarcodeMatrix(p);
  EXPECT_GE(m.size(), 12);
  Result<BarcodePayload> decoded = ScanBarcodeMatrix(m);
  ASSERT_TRUE(decoded.ok()) << decoded.error().str();
  EXPECT_TRUE(decoded.value() == p);
}

TEST(Barcode, MatrixGrowsWithPayload) {
  BarcodePayload small = Sample();
  small.place_name = "X";
  BarcodePayload large = Sample();
  large.place_name = std::string(200, 'Y');
  EXPECT_GT(RenderBarcodeMatrix(large).size(),
            RenderBarcodeMatrix(small).size());
  Result<BarcodePayload> decoded =
      ScanBarcodeMatrix(RenderBarcodeMatrix(large));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().place_name, large.place_name);
}

TEST(Barcode, DamagedFinderPatternRejected) {
  BitMatrix m = RenderBarcodeMatrix(Sample());
  m.flip(0, 0);  // corner of a finder pattern
  EXPECT_EQ(ScanBarcodeMatrix(m).code(), Errc::kDecodeError);
}

TEST(Barcode, DamagedDataModuleCorrectedByReedSolomon) {
  // A physically smudged module inside the data region is recovered.
  const BarcodePayload p = Sample();
  const BitMatrix clean = RenderBarcodeMatrix(p);
  BitMatrix m = clean;
  m.flip(m.size() / 2, m.size() / 2);
  Result<BarcodePayload> decoded = ScanBarcodeMatrix(m);
  ASSERT_TRUE(decoded.ok()) << decoded.error().str();
  EXPECT_TRUE(decoded.value() == p);
}

TEST(Barcode, RandomModuleDamageSweep) {
  // Any single flipped module either decodes to the exact original
  // payload (RS-corrected) or is rejected (finder/armor damage) — never a
  // silently wrong payload.
  const BarcodePayload p = Sample();
  const BitMatrix clean = RenderBarcodeMatrix(p);
  Rng rng(5);
  int recovered = 0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    BitMatrix m = clean;
    m.flip(static_cast<int>(rng.uniform_int(0, m.size() - 1)),
           static_cast<int>(rng.uniform_int(0, m.size() - 1)));
    Result<BarcodePayload> decoded = ScanBarcodeMatrix(m);
    if (decoded.ok()) {
      EXPECT_TRUE(decoded.value() == p) << "trial " << i;
      ++recovered;
    }
  }
  // The data region dominates the grid, so most single flips recover.
  EXPECT_GE(recovered, trials / 2);
}

TEST(Barcode, MultipleDamagedModulesStillRecoverable) {
  const BarcodePayload p = Sample();
  BitMatrix m = RenderBarcodeMatrix(p);
  // Five flips in one byte-sized neighbourhood: at most a few damaged
  // bytes — well within the per-block correction capacity of 8.
  const int mid = m.size() / 2;
  for (int c = 0; c < 5; ++c) m.flip(mid, mid - 2 + c);
  Result<BarcodePayload> decoded = ScanBarcodeMatrix(m);
  ASSERT_TRUE(decoded.ok()) << decoded.error().str();
  EXPECT_TRUE(decoded.value() == p);
}

TEST(Barcode, TooSmallMatrixRejected) {
  EXPECT_FALSE(ScanBarcodeMatrix(BitMatrix(4)).ok());
  EXPECT_FALSE(ScanBarcodeMatrix(BitMatrix()).ok());
}

TEST(Barcode, AsciiRenderingShape) {
  const BitMatrix m = RenderBarcodeMatrix(Sample());
  const std::string art = m.ascii();
  // size rows, each 2*size chars + newline.
  EXPECT_EQ(art.size(),
            static_cast<std::size_t>(m.size()) * (2 * m.size() + 1));
}

TEST(Barcode, CorruptArmorHeaderRejected) {
  Bytes data = EncodeBarcodeBytes(Sample());
  data[0] = 99;  // impossible RS block count
  EXPECT_FALSE(DecodeBarcodeBytes(data).ok());
}

}  // namespace
}  // namespace sor

// Unit + property tests for rankings, rank distances (incl. the paper's
// worked Kemeny example and the Diaconis–Graham inequality of Eq. 10), and
// the four aggregation algorithms.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "rank/aggregate.hpp"
#include "rank/distances.hpp"

namespace sor::rank {
namespace {

Ranking R(std::vector<int> order) {
  Result<Ranking> r = Ranking::FromOrder(std::move(order));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

Ranking RandomRanking(int n, Rng& rng) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());
  return R(std::move(order));
}

// --- Ranking type -----------------------------------------------------------

TEST(Ranking, FromOrderValidates) {
  EXPECT_TRUE(Ranking::FromOrder({0, 1, 2}).ok());
  EXPECT_FALSE(Ranking::FromOrder({0, 0, 2}).ok());  // duplicate
  EXPECT_FALSE(Ranking::FromOrder({0, 3}).ok());     // out of range
  EXPECT_TRUE(Ranking::FromOrder({}).ok());          // empty is fine
}

TEST(Ranking, PositionOfIsInverseOfItemAt) {
  const Ranking r = R({2, 0, 1});
  EXPECT_EQ(r.position_of(2), 0);
  EXPECT_EQ(r.position_of(0), 1);
  EXPECT_EQ(r.position_of(1), 2);
  for (int pos = 0; pos < r.size(); ++pos)
    EXPECT_EQ(r.position_of(r.item_at(pos)), pos);
}

TEST(Ranking, Identity) {
  const Ranking id = Ranking::Identity(4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(id.position_of(i), i);
}

// --- distances ---------------------------------------------------------------

TEST(Distances, PaperExampleKemeny) {
  // R1: A,B,C  R2: B,C,A with A=0,B=1,C=2 — the paper reports d_K = 2.
  const Ranking r1 = R({0, 1, 2});
  const Ranking r2 = R({1, 2, 0});
  EXPECT_EQ(KemenyDistance(r1, r2), 2);
}

TEST(Distances, KemenyIdenticalIsZeroReversedIsMax) {
  const Ranking r = R({0, 1, 2, 3});
  EXPECT_EQ(KemenyDistance(r, r), 0);
  EXPECT_EQ(KemenyDistance(r, R({3, 2, 1, 0})), 6);  // C(4,2)
}

TEST(Distances, FootruleKnownValues) {
  const Ranking r1 = R({0, 1, 2});
  const Ranking r2 = R({1, 2, 0});
  // positions in r2: item0 -> 2, item1 -> 0, item2 -> 1 => |0-2|+|1-0|+|2-1|.
  EXPECT_EQ(FootruleDistance(r1, r2), 4);
  EXPECT_EQ(FootruleDistance(r1, r1), 0);
}

TEST(Distances, Symmetry) {
  Rng rng(4);
  for (int round = 0; round < 50; ++round) {
    const Ranking a = RandomRanking(6, rng);
    const Ranking b = RandomRanking(6, rng);
    EXPECT_EQ(KemenyDistance(a, b), KemenyDistance(b, a));
    EXPECT_EQ(FootruleDistance(a, b), FootruleDistance(b, a));
  }
}

// Eq. (10): d_K <= d_f <= 2 d_K on random pairs (Diaconis–Graham).
class DiaconisGrahamTest : public ::testing::TestWithParam<int> {};

TEST_P(DiaconisGrahamTest, FootruleSandwich) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  for (int round = 0; round < 100; ++round) {
    const Ranking a = RandomRanking(n, rng);
    const Ranking b = RandomRanking(n, rng);
    const std::int64_t dk = KemenyDistance(a, b);
    const std::int64_t df = FootruleDistance(a, b);
    EXPECT_LE(dk, df);
    EXPECT_LE(df, 2 * dk);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DiaconisGrahamTest,
                         ::testing::Values(2, 3, 5, 8, 12, 20));

TEST(Distances, WeightedSumsMatchManualComputation) {
  const Ranking r = R({0, 1, 2});
  const std::vector<Ranking> omega = {R({1, 2, 0}), R({0, 1, 2})};
  const std::vector<double> w = {2.0, 5.0};
  EXPECT_DOUBLE_EQ(WeightedKemeny(r, omega, w), 2.0 * 2 + 5.0 * 0);
  EXPECT_DOUBLE_EQ(WeightedFootrule(r, omega, w), 2.0 * 4 + 5.0 * 0);
}

// --- aggregation ---------------------------------------------------------------

TEST(Aggregate, InputValidation) {
  const std::vector<Ranking> omega = {R({0, 1}), R({1, 0})};
  const std::vector<double> w2 = {1.0, 1.0};
  EXPECT_TRUE(ValidateAggregationInput(omega, w2).ok());
  const std::vector<double> w1 = {1.0};
  EXPECT_FALSE(ValidateAggregationInput(omega, w1).ok());
  const std::vector<double> neg = {1.0, -1.0};
  EXPECT_FALSE(ValidateAggregationInput(omega, neg).ok());
  const std::vector<Ranking> mixed = {R({0, 1}), R({0, 1, 2})};
  EXPECT_FALSE(ValidateAggregationInput(mixed, w2).ok());
  EXPECT_FALSE(ValidateAggregationInput({}, {}).ok());
}

TEST(Aggregate, UnanimousInputIsReturned) {
  const Ranking consensus = R({2, 0, 3, 1});
  const std::vector<Ranking> omega = {consensus, consensus, consensus};
  const std::vector<double> w = {1, 2, 3};
  for (auto method : {FootruleMcmfAggregate, FootruleHungarianAggregate,
                      BordaAggregate}) {
    Result<Ranking> r = method(omega, w);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), consensus);
  }
  Result<Ranking> exact = ExactKemenyAggregate(omega, w);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value(), consensus);
}

TEST(Aggregate, ZeroWeightRankingIgnored) {
  const Ranking main = R({0, 1, 2});
  const Ranking noise = R({2, 1, 0});
  Result<Ranking> r = FootruleMcmfAggregate(
      std::vector<Ranking>{main, noise}, std::vector<double>{3.0, 0.0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), main);
}

TEST(Aggregate, DominantWeightWins) {
  const Ranking heavy = R({3, 2, 1, 0});
  const Ranking light = R({0, 1, 2, 3});
  Result<Ranking> r = FootruleMcmfAggregate(
      std::vector<Ranking>{heavy, light}, std::vector<double>{10.0, 1.0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), heavy);
}

// Property: the footrule aggregate minimizes the weighted footrule distance
// exactly (checked against all permutations), and is within a factor 2 of
// the Kemeny-optimal aggregate (the paper's approximation guarantee).
class AggregateOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(AggregateOptimalityTest, FootruleExactAndKemenyWithinFactor2) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
  for (int round = 0; round < 15; ++round) {
    std::vector<Ranking> omega;
    std::vector<double> weights;
    const int m = 3 + round % 3;
    for (int j = 0; j < m; ++j) {
      omega.push_back(RandomRanking(n, rng));
      weights.push_back(static_cast<double>(rng.uniform_int(0, 5)));
    }
    if (std::accumulate(weights.begin(), weights.end(), 0.0) == 0.0)
      weights[0] = 1.0;

    Result<Ranking> footrule = FootruleMcmfAggregate(omega, weights);
    Result<Ranking> hungarian = FootruleHungarianAggregate(omega, weights);
    Result<Ranking> kemeny = ExactKemenyAggregate(omega, weights);
    ASSERT_TRUE(footrule.ok());
    ASSERT_TRUE(hungarian.ok());
    ASSERT_TRUE(kemeny.ok());

    // (a) footrule objective is exactly optimal: enumerate permutations.
    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    double best_f = std::numeric_limits<double>::infinity();
    double best_k = std::numeric_limits<double>::infinity();
    do {
      const Ranking cand = R(perm);
      best_f = std::min(best_f, WeightedFootrule(cand, omega, weights));
      best_k = std::min(best_k, WeightedKemeny(cand, omega, weights));
    } while (std::next_permutation(perm.begin(), perm.end()));

    EXPECT_NEAR(WeightedFootrule(footrule.value(), omega, weights), best_f,
                1e-9);
    EXPECT_NEAR(WeightedFootrule(hungarian.value(), omega, weights), best_f,
                1e-9);
    // (b) the exact-Kemeny aggregator really is optimal.
    EXPECT_NEAR(WeightedKemeny(kemeny.value(), omega, weights), best_k,
                1e-9);
    // (c) the footrule solution approximates the Kemeny optimum within 2x
    // (follows from Eq. 10; the paper states the same bound as "1/2").
    EXPECT_LE(WeightedKemeny(footrule.value(), omega, weights),
              2.0 * best_k + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AggregateOptimalityTest,
                         ::testing::Values(2, 3, 4, 5));

TEST(Aggregate, ExactKemenyRefusesLargeN) {
  std::vector<Ranking> omega = {Ranking::Identity(12)};
  std::vector<double> w = {1.0};
  EXPECT_FALSE(ExactKemenyAggregate(omega, w).ok());
}

TEST(Aggregate, BordaMatchesWeightedMeanPositionOrder) {
  // Borda on two rankings with weights: item order by weighted mean pos.
  const std::vector<Ranking> omega = {R({0, 1, 2}), R({2, 1, 0})};
  const std::vector<double> w = {3.0, 1.0};
  // scores: item0: 0*3+2*1=2; item1: 1*3+1*1=4; item2: 2*3+0*1=6.
  Result<Ranking> r = BordaAggregate(omega, w);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), R({0, 1, 2}));
}

TEST(Aggregate, SingleItemTrivial) {
  const std::vector<Ranking> omega = {R({0})};
  const std::vector<double> w = {5.0};
  for (auto method : {FootruleMcmfAggregate, FootruleHungarianAggregate,
                      BordaAggregate}) {
    Result<Ranking> r = method(omega, w);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().size(), 1);
  }
}

}  // namespace
}  // namespace sor::rank

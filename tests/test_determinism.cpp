// Determinism contract of the sharded runtime (docs/runtime.md): for any
// thread count, a field test is BYTE-IDENTICAL to the serial (threads=1)
// run — same feature matrix, same rankings (final, individual, gamma,
// weights), same server/processor/transport counters, same energy totals.
// Parallelism may only change wall-clock time, never a single observable
// bit. Checked over two scenario shapes, five seeds, a chaos fault
// schedule, and the deferred-reschedule setup mode.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "core/system.hpp"

namespace sor::core {
namespace {

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void Append(std::ostringstream& os, const rank::Ranking& r) {
  for (int item : r.order()) os << item << ',';
  os << ';';
}

// Serialize every observable field of a FieldTestResult. Two runs are
// "the same" iff their fingerprints are equal strings.
std::string Fingerprint(const FieldTestResult& r) {
  std::ostringstream os;
  os << "matrix:";
  for (const std::string& name : r.matrix.place_names()) os << name << ',';
  for (int i = 0; i < r.matrix.num_places(); ++i)
    for (int j = 0; j < r.matrix.num_features(); ++j)
      os << Num(r.matrix.at(i, j)) << ',';
  os << "\nrankings:";
  for (const auto& [profile, outcome] : r.rankings) {
    os << profile << ':';
    Append(os, outcome.final_ranking);
    for (const rank::Ranking& ind : outcome.individual) Append(os, ind);
    for (double g : outcome.gamma) os << Num(g) << ',';
    for (double w : outcome.weights) os << Num(w) << ',';
  }
  const server::ServerStats& s = r.server_stats;
  os << "\nserver:" << s.requests_handled << ',' << s.decode_failures << ','
     << s.uploads_stored << ',' << s.participations_accepted << ','
     << s.participations_rejected << ',' << s.duplicate_uploads_ignored << ','
     << s.recoveries << ',' << s.resyncs_triggered << ','
     << s.uploads_throttled << ',' << s.uploads_shed_stale << ','
     << s.storage_write_failures << ',' << s.reprimes;
  const server::DataProcessorStats& p = r.processor_stats;
  os << "\nprocessor:" << p.blobs_decoded << ',' << p.blobs_rejected << ','
     << p.tuples_processed << ',' << p.features_written << ','
     << p.apps_skipped;
  const net::TransportStats& t = r.transport_stats;
  os << "\ntransport:" << t.delivered << ',' << t.dropped << ','
     << t.corrupted << ',' << t.duplicated << ',' << t.partitioned << ','
     << t.responses_dropped << ',' << t.responses_corrupted << ','
     << t.node_unreachable << ',' << t.bytes_sent << ','
     << t.bytes_received << ',' << t.latency_injected_ms;
  os << "\ntotals:" << r.total_uploads << ',' << r.total_upload_failures
     << ',' << r.total_uploads_retried << ',' << r.total_uploads_dropped
     << ',' << r.total_leaves_retried << ',' << Num(r.energy_spent_mj) << ','
     << Num(r.energy_saved_mj);
  os << "\nrobustness:" << r.total_uploads_throttled << ','
     << r.total_uploads_abandoned << ',' << r.total_crashes << ','
     << r.total_restarts << ',' << r.total_reinstalls << ','
     << r.server_stall_ticks << ',' << r.peak_pending_uploads;
  return os.str();
}

world::Scenario SmallCoffee() {
  world::Scenario s = world::MakeCoffeeShopScenario();
  s.phones_per_place = 4;
  s.period_s = 1'800.0;
  return s;
}

world::Scenario SmallTrail() {
  world::Scenario s = world::MakeHikingTrailScenario();
  s.phones_per_place = 3;
  s.period_s = 1'800.0;
  return s;
}

FieldTestConfig SmallConfig(std::uint64_t seed) {
  FieldTestConfig c;
  c.budget_per_user = 20;
  c.n_instants = 120;
  c.sigma_s = 60.0;
  c.seed = seed;
  return c;
}

std::string RunFingerprint(const world::Scenario& scenario,
                           FieldTestConfig config, int threads) {
  config.threads = threads;
  System system;
  Result<FieldTestResult> run = system.RunFieldTest(scenario, config);
  EXPECT_TRUE(run.ok()) << run.error().str();
  if (!run.ok()) return "<error>";
  return Fingerprint(run.value());
}

TEST(Determinism, CoffeeShopIdenticalAcrossThreadCounts) {
  const world::Scenario scenario = SmallCoffee();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string serial =
        RunFingerprint(scenario, SmallConfig(seed), 1);
    for (int threads : {2, 8}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      EXPECT_EQ(RunFingerprint(scenario, SmallConfig(seed), threads), serial);
    }
  }
}

TEST(Determinism, HikingTrailIdenticalAcrossThreadCounts) {
  const world::Scenario scenario = SmallTrail();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string serial =
        RunFingerprint(scenario, SmallConfig(seed), 1);
    for (int threads : {2, 8}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      EXPECT_EQ(RunFingerprint(scenario, SmallConfig(seed), threads), serial);
    }
  }
}

TEST(Determinism, ChaosScheduleIdenticalAcrossThreadCounts) {
  // Fault decisions are consumed in Send() order, so the injected fault
  // schedule itself is part of the contract: a dropped frame must be THE
  // SAME dropped frame at every thread count.
  const world::Scenario scenario = SmallCoffee();
  FieldTestConfig config = SmallConfig(3);
  net::FaultRule lossy;
  lossy.drop = 0.3;
  lossy.corrupt = 0.2;
  lossy.duplicate = 0.2;
  net::FaultRule partition;
  partition.partition = SimInterval{SimTime{600'000}, SimTime{660'000}};
  config.chaos_rules = {lossy, partition};
  config.chaos_seed = 17;

  const std::string serial = RunFingerprint(scenario, config, 1);
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    EXPECT_EQ(RunFingerprint(scenario, config, threads), serial);
  }
}

TEST(Determinism, ChurnScheduleIdenticalAcrossThreadCounts) {
  // Node churn (crashes, uninstalls, server stalls) is decided by pure
  // hashes and applied by the driver thread between rounds, so the whole
  // lifecycle — who crashed when, which rejoin landed, what got lost —
  // must replay byte-for-byte at any thread count, for every seed.
  const world::Scenario scenario = SmallCoffee();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("node seed " + std::to_string(seed));
    FieldTestConfig config = SmallConfig(7);
    net::NodeFaultRule phones;
    phones.endpoint = "phone:*";
    phones.crash = 0.01;
    phones.restart_after = SimDuration{30'000};
    phones.uninstall = 0.004;
    phones.reinstall_after = SimDuration{40'000};
    net::NodeFaultRule server;
    server.endpoint = "server";
    server.stall = 0.02;
    server.stall_for = SimDuration{20'000};
    config.node_rules = {phones, server};
    config.node_seed = seed;
    config.drain_ticks = 12;

    const std::string serial = RunFingerprint(scenario, config, 1);
    for (int threads : {2, 8}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      EXPECT_EQ(RunFingerprint(scenario, config, threads), serial);
    }
  }
}

TEST(Determinism, ThrottleScheduleIdenticalAcrossThreadCounts) {
  // Overload control: admissions are budgeted per tick inside the epoch
  // merge pass, throttle hints pace the phones, and the retry budget
  // abandons dead campaigns — all of it a pure function of the admission
  // order, so the shed/throttle schedule is part of the contract too.
  const world::Scenario scenario = SmallCoffee();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FieldTestConfig config = SmallConfig(seed);
    config.overload.ingest_budget = 5;  // 12 phones want ~12/tick: 2.4x
    config.overload.throttle_at = 0.6;
    config.overload.stale_after = SimDuration{15'000};
    config.overload.retry_after = SimDuration{12'000};
    config.phone_retry_budget = 12;
    config.drain_ticks = 40;

    const std::string serial = RunFingerprint(scenario, config, 1);
    for (int threads : {2, 8}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      EXPECT_EQ(RunFingerprint(scenario, config, threads), serial);
    }
  }
}

// Run with tracing on and fold the trace fingerprint into the string: the
// incremental planner must not only produce the same rankings and counters
// as the cold-replan oracle, it must emit the same kSchedulePlanned /
// kScheduleCommitted / kScheduleDistributed event stream, byte for byte.
// (gain_evaluations legitimately differ between the modes; Fingerprint()
// deliberately excludes scheduler stats.)
std::string RunModeFingerprint(const world::Scenario& scenario,
                               FieldTestConfig config, int threads,
                               bool incremental) {
  config.threads = threads;
  config.incremental_scheduling = incremental;
  config.trace = true;
  System system;
  Result<FieldTestResult> run = system.RunFieldTest(scenario, config);
  EXPECT_TRUE(run.ok()) << run.error().str();
  if (!run.ok()) return "<error>";
  return Fingerprint(run.value()) +
         "\ntrace:" + std::to_string(run.value().trace_fingerprint);
}

TEST(Determinism, IncrementalMatchesColdReplanAcrossMatrix) {
  // The tentpole's correctness contract: warm-started O(delta) planning is
  // a pure optimization. Over the full determinism matrix the incremental
  // planner and the cold-replan oracle produce identical fingerprints —
  // including the trace — at every thread count.
  const world::Scenario scenarios[] = {SmallCoffee(), SmallTrail()};
  int which = 0;
  for (const world::Scenario& scenario : scenarios) {
    SCOPED_TRACE(which++ == 0 ? "coffee" : "trail");
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SCOPED_TRACE("seed " + std::to_string(seed));
      for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        EXPECT_EQ(
            RunModeFingerprint(scenario, SmallConfig(seed), threads, true),
            RunModeFingerprint(scenario, SmallConfig(seed), threads, false));
      }
    }
  }
}

TEST(Determinism, IncrementalMatchesColdReplanUnderChaos) {
  // Chaos faults make distribution fail mid-plan and trigger resyncs; the
  // incremental planner must still track the oracle bit for bit.
  const world::Scenario scenario = SmallCoffee();
  FieldTestConfig config = SmallConfig(3);
  net::FaultRule lossy;
  lossy.drop = 0.3;
  lossy.corrupt = 0.2;
  lossy.duplicate = 0.2;
  net::FaultRule partition;
  partition.partition = SimInterval{SimTime{600'000}, SimTime{660'000}};
  config.chaos_rules = {lossy, partition};
  config.chaos_seed = 17;
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    EXPECT_EQ(RunModeFingerprint(scenario, config, threads, true),
              RunModeFingerprint(scenario, config, threads, false));
  }
}

TEST(Determinism, IncrementalMatchesColdReplanUnderChurn) {
  // Node churn exercises the leave path: crashes and uninstalls force the
  // planner through support-local repair (incremental) vs full q replay
  // (oracle). Those must agree numerically to the last bit, or rankings
  // diverge here first.
  const world::Scenario scenario = SmallCoffee();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("node seed " + std::to_string(seed));
    FieldTestConfig config = SmallConfig(7);
    net::NodeFaultRule phones;
    phones.endpoint = "phone:*";
    phones.crash = 0.01;
    phones.restart_after = SimDuration{30'000};
    phones.uninstall = 0.004;
    phones.reinstall_after = SimDuration{40'000};
    net::NodeFaultRule server;
    server.endpoint = "server";
    server.stall = 0.02;
    server.stall_for = SimDuration{20'000};
    config.node_rules = {phones, server};
    config.node_seed = seed;
    config.drain_ticks = 12;
    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      EXPECT_EQ(RunModeFingerprint(scenario, config, threads, true),
                RunModeFingerprint(scenario, config, threads, false));
    }
  }
}

TEST(Determinism, DeferredSetupReschedulesIdenticalAcrossThreadCounts) {
  // Deferred mode changes the setup schedule stream (one plan per app, not
  // one per join) so it is NOT byte-identical to eager mode — but it must
  // still be thread-count-invariant, since FlushReschedules plans in
  // parallel and distributes serially.
  const world::Scenario scenario = SmallCoffee();
  FieldTestConfig config = SmallConfig(4);
  config.defer_setup_reschedules = true;

  const std::string serial = RunFingerprint(scenario, config, 1);
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    EXPECT_EQ(RunFingerprint(scenario, config, threads), serial);
  }
}

}  // namespace
}  // namespace sor::core

// Unit tests for the sensing server's components: feature definitions, the
// three managers, the scheduler bridge, the data processor and the
// visualization module.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/features.hpp"
#include "server/server.hpp"
#include "server/coverage_report.hpp"
#include "server/json_export.hpp"
#include "server/visualization.hpp"

namespace sor::server {
namespace {

ApplicationSpec TestAppSpec() {
  ApplicationSpec spec;
  spec.creator = "tester";
  spec.place = PlaceId{11};
  spec.place_name = "Test Cafe";
  spec.location = GeoPoint{43.0, -76.0, 100.0};
  spec.radius_m = 80.0;
  spec.script = "local xs = get_noise_readings(3)";
  spec.features = CoffeeShopFeatures();
  spec.period = SimInterval{SimTime{0}, SimTime{600'000}};  // 10 min
  spec.n_instants = 60;
  spec.sigma_s = 10.0;
  return spec;
}

struct ServerFixture {
  SimClock clock;
  net::LoopbackNetwork net;
  SensingServer server{ServerConfig{}, net, clock};
};

// --- feature definitions ---------------------------------------------------

TEST(FeatureDefs, EncodeDecodeRoundTrip) {
  const std::vector<FeatureDef> defs = HikingTrailFeatures();
  Result<std::vector<FeatureDef>> decoded =
      DecodeFeatureDefs(EncodeFeatureDefs(defs));
  ASSERT_TRUE(decoded.ok()) << decoded.error().str();
  EXPECT_EQ(decoded.value(), defs);
}

TEST(FeatureDefs, MalformedRejected) {
  EXPECT_FALSE(DecodeFeatureDefs("").ok());
  EXPECT_FALSE(DecodeFeatureDefs("novalidcolons").ok());
  EXPECT_FALSE(DecodeFeatureDefs("x:not_a_sensor:mean").ok());
  EXPECT_FALSE(DecodeFeatureDefs("x:gps:not_a_method").ok());
}

TEST(FeatureDefs, PaperRecipes) {
  const auto trail = HikingTrailFeatures();
  ASSERT_EQ(trail.size(), 5u);
  EXPECT_EQ(trail[2].method, ExtractMethod::kMeanOfWindowStddev);  // roughness
  EXPECT_EQ(trail[3].method, ExtractMethod::kGpsCurvature);        // curvature
  EXPECT_EQ(trail[4].method, ExtractMethod::kStddevOfWindowMeans); // altitude
  const auto coffee = CoffeeShopFeatures();
  ASSERT_EQ(coffee.size(), 4u);
  for (const FeatureDef& d : coffee)
    EXPECT_EQ(d.method, ExtractMethod::kMeanOfAll);
}

// --- UserInfoManager --------------------------------------------------------

TEST(UserInfo, RegisterAndLookup) {
  ServerFixture f;
  Result<UserId> alice =
      f.server.users().RegisterUser("alice", Token{"tok-a"});
  ASSERT_TRUE(alice.ok());
  Result<UserId> bob = f.server.users().RegisterUser("bob", Token{"tok-b"});
  ASSERT_TRUE(bob.ok());
  EXPECT_NE(alice.value(), bob.value());
  EXPECT_EQ(f.server.users().FindByToken(Token{"tok-a"}), alice.value());
  EXPECT_EQ(f.server.users().FindByToken(Token{"tok-z"}), std::nullopt);
  EXPECT_EQ(f.server.users().count(), 2u);
}

TEST(UserInfo, DuplicateTokenRejected) {
  ServerFixture f;
  ASSERT_TRUE(f.server.users().RegisterUser("a", Token{"t"}).ok());
  EXPECT_EQ(f.server.users().RegisterUser("b", Token{"t"}).code(),
            Errc::kAlreadyExists);
}

TEST(UserInfo, VerifyUserChecksToken) {
  ServerFixture f;
  const UserId id =
      f.server.users().RegisterUser("a", Token{"t"}).value();
  EXPECT_TRUE(f.server.users().VerifyUser(id, Token{"t"}).ok());
  EXPECT_EQ(f.server.users().VerifyUser(id, Token{"wrong"}).code(),
            Errc::kPermissionDenied);
  EXPECT_EQ(f.server.users().VerifyUser(UserId{999}, Token{"t"}).code(),
            Errc::kNotFound);
}

// --- ApplicationManager --------------------------------------------------------

TEST(Applications, CreateGetRoundTrip) {
  ServerFixture f;
  Result<AppId> id = f.server.applications().CreateApplication(TestAppSpec());
  ASSERT_TRUE(id.ok()) << id.error().str();
  Result<ApplicationRecord> rec = f.server.applications().Get(id.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().spec.place_name, "Test Cafe");
  EXPECT_EQ(rec.value().spec.features, CoffeeShopFeatures());
  EXPECT_EQ(rec.value().spec.n_instants, 60);
  EXPECT_EQ(f.server.applications().All().size(), 1u);
}

TEST(Applications, ScriptValidatedAtCreation) {
  ServerFixture f;
  ApplicationSpec bad = TestAppSpec();
  bad.script = "local = syntax error";
  EXPECT_EQ(f.server.applications().CreateApplication(bad).code(),
            Errc::kScriptError);
}

TEST(Applications, AnalyzerRejectsUnboundedLoopWithLineDiagnostic) {
  ServerFixture f;
  ApplicationSpec bad = TestAppSpec();
  bad.script =
      "local xs = get_noise_readings(3)\n"
      "while true do\n"
      "  print(\"spin\")\n"
      "end\n";
  script::analysis::AnalysisReport report;
  Result<AppId> id = f.server.applications().CreateApplication(bad, &report);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.code(), Errc::kScriptError);
  EXPECT_EQ(id.error().line, 2);  // the while statement
  EXPECT_TRUE(report.Has("SA401"));
  EXPECT_NE(id.error().message.find("SA401"), std::string::npos);
}

TEST(Applications, AnalyzerEnforcesEnergyBudget) {
  ServerFixture f;
  ApplicationSpec spec = TestAppSpec();
  spec.script = "local track = get_location(40)";  // 40×150 = 6000 mJ
  script::analysis::AnalysisReport report;
  Result<AppId> id = f.server.applications().CreateApplication(spec, &report);
  ASSERT_FALSE(id.ok());  // default budget is 5000 mJ
  EXPECT_TRUE(report.Has("SA403"));
  EXPECT_EQ(id.error().line, 1);
  // The creator can raise the app's budget; the same script then registers.
  spec.energy_budget_mj = 10'000.0;
  EXPECT_TRUE(f.server.applications().CreateApplication(spec).ok());
}

TEST(Applications, ManifestStoredAndReadBack) {
  ServerFixture f;
  // TestAppSpec's script acquires from the microphone only.
  Result<AppId> id = f.server.applications().CreateApplication(TestAppSpec());
  ASSERT_TRUE(id.ok()) << id.error().str();
  Result<ApplicationRecord> rec = f.server.applications().Get(id.value());
  ASSERT_TRUE(rec.ok());
  const std::vector<SensorKind> want = {SensorKind::kMicrophone};
  EXPECT_EQ(rec.value().required_sensors, want);
  // The information-flow manifest persists next to the capability manifest.
  EXPECT_EQ(rec.value().flow_manifest, "acquire@1=microphone");
  EXPECT_DOUBLE_EQ(rec.value().spec.energy_budget_mj, 5000.0);
}

TEST(Applications, ParameterValidation) {
  ServerFixture f;
  ApplicationSpec s = TestAppSpec();
  s.n_instants = 0;
  EXPECT_FALSE(f.server.applications().CreateApplication(s).ok());
  s = TestAppSpec();
  s.sigma_s = 0;
  EXPECT_FALSE(f.server.applications().CreateApplication(s).ok());
  s = TestAppSpec();
  s.features.clear();
  EXPECT_FALSE(f.server.applications().CreateApplication(s).ok());
  s = TestAppSpec();
  s.period = SimInterval{SimTime{10}, SimTime{5}};
  EXPECT_FALSE(f.server.applications().CreateApplication(s).ok());
}

TEST(Applications, BarcodeCarriesAppIdentity) {
  ServerFixture f;
  const AppId id =
      f.server.applications().CreateApplication(TestAppSpec()).value();
  Result<BarcodePayload> barcode =
      f.server.applications().BarcodeFor(id, "server");
  ASSERT_TRUE(barcode.ok());
  EXPECT_EQ(barcode.value().app, id);
  EXPECT_EQ(barcode.value().place_name, "Test Cafe");
  EXPECT_EQ(barcode.value().server, "server");
  EXPECT_FALSE(f.server.applications().BarcodeFor(AppId{99}, "s").ok());
}

// --- ParticipationManager -------------------------------------------------------

struct ParticipationFixture : ServerFixture {
  AppId app;
  UserId user;
  ParticipationFixture() {
    app = server.applications().CreateApplication(TestAppSpec()).value();
    user = server.users().RegisterUser("alice", Token{"tok-a"}).value();
  }
  ParticipationRequest Request(GeoPoint loc, int budget = 5) {
    ParticipationRequest req;
    req.user = user;
    req.token = Token{"tok-a"};
    req.app = app;
    req.location = loc;
    req.budget = budget;
    req.scan_time = clock.now();
    return req;
  }
};

TEST(Participation, AcceptsTruthfulUser) {
  ParticipationFixture f;
  const auto rec = f.server.applications().Get(f.app).value();
  Result<TaskId> task = f.server.participations().HandleRequest(
      f.Request(GeoPoint{43.0001, -76.0001, 100}), rec, f.server.users());
  ASSERT_TRUE(task.ok()) << task.error().str();
  Result<ParticipationRecord> p = f.server.participations().Get(task.value());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().status, "waiting_for_schedule");
  EXPECT_EQ(p.value().budget_left, 5);
}

TEST(Participation, RejectsDistantUser) {
  ParticipationFixture f;
  const auto rec = f.server.applications().Get(f.app).value();
  // ~1.1 km away; radius is 80 m.
  Result<TaskId> task = f.server.participations().HandleRequest(
      f.Request(GeoPoint{43.01, -76.0, 100}), rec, f.server.users());
  EXPECT_EQ(task.code(), Errc::kNotInPlace);
}

TEST(Participation, RejectsBadTokenAndBudget) {
  ParticipationFixture f;
  const auto rec = f.server.applications().Get(f.app).value();
  ParticipationRequest req = f.Request(GeoPoint{43.0, -76.0, 100});
  req.token = Token{"stolen"};
  EXPECT_EQ(f.server.participations()
                .HandleRequest(req, rec, f.server.users())
                .code(),
            Errc::kPermissionDenied);
  req = f.Request(GeoPoint{43.0, -76.0, 100}, 0);
  EXPECT_EQ(f.server.participations()
                .HandleRequest(req, rec, f.server.users())
                .code(),
            Errc::kInvalidArgument);
}

TEST(Participation, RescanIsIdempotent) {
  ParticipationFixture f;
  const auto rec = f.server.applications().Get(f.app).value();
  const TaskId first =
      f.server.participations()
          .HandleRequest(f.Request(GeoPoint{43.0, -76.0, 100}), rec,
                         f.server.users())
          .value();
  const TaskId second =
      f.server.participations()
          .HandleRequest(f.Request(GeoPoint{43.0, -76.0, 100}), rec,
                         f.server.users())
          .value();
  EXPECT_EQ(first, second);
}

TEST(Participation, StatusTransitionsAndBudget) {
  ParticipationFixture f;
  const auto rec = f.server.applications().Get(f.app).value();
  const TaskId task =
      f.server.participations()
          .HandleRequest(f.Request(GeoPoint{43.0, -76.0, 100}), rec,
                         f.server.users())
          .value();
  EXPECT_TRUE(f.server.participations().MarkRunning(task).ok());
  EXPECT_EQ(f.server.participations().Get(task).value().status, "running");
  EXPECT_TRUE(f.server.participations().ConsumeBudget(task, 3).ok());
  EXPECT_EQ(f.server.participations().Get(task).value().budget_left, 2);
  // Budget floors at zero.
  EXPECT_TRUE(f.server.participations().ConsumeBudget(task, 10).ok());
  EXPECT_EQ(f.server.participations().Get(task).value().budget_left, 0);
  EXPECT_TRUE(
      f.server.participations().MarkFinished(task, SimTime{123}).ok());
  const auto finished = f.server.participations().Get(task).value();
  EXPECT_EQ(finished.status, "finished");
  ASSERT_TRUE(finished.leave.has_value());
  EXPECT_EQ(finished.leave->ms, 123);
  EXPECT_TRUE(f.server.participations().ActiveForApp(f.app).empty());
}

// --- end-to-end server message handling ----------------------------------------

// A minimal phone endpoint that records schedule distributions.
class RecordingPhone final : public net::Endpoint {
 public:
  RecordingPhone(net::LoopbackNetwork& net, const std::string& name)
      : net_(net), name_(name) {
    net_.Register(name_, this);
  }
  ~RecordingPhone() override { net_.Unregister(name_); }

  Bytes HandleFrame(std::span<const std::uint8_t> frame) override {
    Result<Message> decoded = DecodeFrame(frame);
    if (decoded.ok()) {
      if (const auto* sched =
              std::get_if<ScheduleDistribution>(&decoded.value())) {
        schedules_.push_back(*sched);
      }
    }
    return EncodeFrame(Ack{});
  }

  net::LoopbackNetwork& net_;
  std::string name_;
  std::vector<ScheduleDistribution> schedules_;
};

TEST(ServerEndToEnd, ParticipationTriggersScheduleDistribution) {
  ServerFixture f;
  Result<BarcodePayload> barcode = f.server.DeployApplication(TestAppSpec());
  ASSERT_TRUE(barcode.ok());
  const UserId user =
      f.server.users().RegisterUser("alice", Token{"tok-a"}).value();
  RecordingPhone phone(f.net, "phone:tok-a");

  ParticipationRequest req;
  req.user = user;
  req.token = Token{"tok-a"};
  req.app = barcode.value().app;
  req.location = GeoPoint{43.0, -76.0, 100};
  req.budget = 4;
  req.scan_time = f.clock.now();
  Result<Message> reply = f.net.Send("server", req);
  ASSERT_TRUE(reply.ok()) << reply.error().str();
  const auto& accepted = std::get<ParticipationReply>(reply.value());
  EXPECT_TRUE(accepted.accepted);

  ASSERT_EQ(phone.schedules_.size(), 1u);
  const ScheduleDistribution& sched = phone.schedules_[0];
  EXPECT_EQ(sched.task, accepted.task);
  EXPECT_LE(sched.instants.size(), 4u);  // within budget
  EXPECT_GT(sched.instants.size(), 0u);
  EXPECT_FALSE(sched.script.empty());
  // The statically derived sensor manifest rides with the schedule, and so
  // does the information-flow manifest (SOR5).
  const std::vector<SensorKind> want_sensors = {SensorKind::kMicrophone};
  EXPECT_EQ(sched.required_sensors, want_sensors);
  EXPECT_EQ(sched.flow_manifest, "acquire@1=microphone");
  // Participation is now "running"; schedule persisted in the database.
  EXPECT_EQ(f.server.participations().Get(accepted.task).value().status,
            "running");
  EXPECT_EQ(f.server.database().table(db::tables::kSchedules)->size(), 1u);
}

// A phone that refuses every schedule with kUnsupported, as the real
// frontend does when the required-sensor manifest names hardware it lacks.
class RefusingPhone final : public net::Endpoint {
 public:
  RefusingPhone(net::LoopbackNetwork& net, const std::string& name)
      : net_(net), name_(name) {
    net_.Register(name_, this);
  }
  ~RefusingPhone() override { net_.Unregister(name_); }

  Bytes HandleFrame(std::span<const std::uint8_t> frame) override {
    Result<Message> decoded = DecodeFrame(frame);
    if (decoded.ok() &&
        std::get_if<ScheduleDistribution>(&decoded.value()) != nullptr) {
      ++refusals_;
      return EncodeFrame(
          ErrorReply{static_cast<std::uint8_t>(Errc::kUnsupported),
                     "phone lacks required sensor 'microphone'"});
    }
    return EncodeFrame(Ack{});
  }

  net::LoopbackNetwork& net_;
  std::string name_;
  int refusals_ = 0;
};

TEST(ServerEndToEnd, PhoneRefusalMarksParticipationError) {
  ServerFixture f;
  Result<BarcodePayload> barcode = f.server.DeployApplication(TestAppSpec());
  ASSERT_TRUE(barcode.ok());
  const UserId user =
      f.server.users().RegisterUser("alice", Token{"tok-a"}).value();
  RefusingPhone phone(f.net, "phone:tok-a");

  ParticipationRequest req;
  req.user = user;
  req.token = Token{"tok-a"};
  req.app = barcode.value().app;
  req.location = GeoPoint{43.0, -76.0, 100};
  req.budget = 4;
  req.scan_time = f.clock.now();
  Result<Message> reply = f.net.Send("server", req);
  ASSERT_TRUE(reply.ok()) << reply.error().str();
  const auto& accepted = std::get<ParticipationReply>(reply.value());
  EXPECT_TRUE(accepted.accepted);  // participation itself was fine
  EXPECT_EQ(phone.refusals_, 1);

  // The refusal (a decodable ErrorReply, not a transport failure) must not
  // count as a delivered schedule: the task goes to error, not running.
  const std::string status =
      f.server.participations().Get(accepted.task).value().status;
  EXPECT_EQ(status.rfind("error:", 0), 0u) << status;
  EXPECT_EQ(f.server.scheduler().stats().schedules_distributed, 0u);
  EXPECT_EQ(f.server.scheduler().stats().distribution_failures, 1u);
}

TEST(ServerEndToEnd, UploadStoredAndBudgetConsumed) {
  ServerFixture f;
  Result<BarcodePayload> barcode = f.server.DeployApplication(TestAppSpec());
  ASSERT_TRUE(barcode.ok());
  const UserId user =
      f.server.users().RegisterUser("alice", Token{"tok-a"}).value();
  RecordingPhone phone(f.net, "phone:tok-a");
  ParticipationRequest req;
  req.user = user;
  req.token = Token{"tok-a"};
  req.app = barcode.value().app;
  req.location = GeoPoint{43.0, -76.0, 100};
  req.budget = 4;
  Result<Message> reply = f.net.Send("server", req);
  ASSERT_TRUE(reply.ok());
  const TaskId task = std::get<ParticipationReply>(reply.value()).task;

  SensedDataUpload upload;
  upload.task = task;
  upload.user = user;
  ReadingTuple t;
  t.kind = SensorKind::kMicrophone;
  t.t = SimTime{30'000};
  t.dt = SimDuration{1'000};
  t.values = {0.2, 0.3};
  upload.batches = {t};
  ASSERT_TRUE(f.net.Send("server", upload).ok());
  EXPECT_EQ(f.server.stats().uploads_stored, 1u);
  EXPECT_EQ(f.server.participations().Get(task).value().budget_left, 3);

  // Upload from the wrong user is rejected.
  upload.user = UserId{999};
  EXPECT_EQ(f.net.Send("server", upload).code(), Errc::kPermissionDenied);
  // Upload against an unknown task is rejected.
  upload.user = user;
  upload.task = TaskId{404};
  EXPECT_EQ(f.net.Send("server", upload).code(), Errc::kNotFound);
}

TEST(ServerEndToEnd, LeaveFinishesAndReschedules) {
  ServerFixture f;
  Result<BarcodePayload> barcode = f.server.DeployApplication(TestAppSpec());
  ASSERT_TRUE(barcode.ok());
  RecordingPhone phone_a(f.net, "phone:tok-a");
  RecordingPhone phone_b(f.net, "phone:tok-b");
  const UserId ua = f.server.users().RegisterUser("a", Token{"tok-a"}).value();
  const UserId ub = f.server.users().RegisterUser("b", Token{"tok-b"}).value();
  TaskId task_a;
  for (const auto& [user, token] :
       std::vector<std::pair<UserId, std::string>>{{ua, "tok-a"},
                                                   {ub, "tok-b"}}) {
    ParticipationRequest req;
    req.user = user;
    req.token = Token{token};
    req.app = barcode.value().app;
    req.location = GeoPoint{43.0, -76.0, 100};
    req.budget = 4;
    Result<Message> reply = f.net.Send("server", req);
    ASSERT_TRUE(reply.ok());
    if (user == ua)
      task_a = std::get<ParticipationReply>(reply.value()).task;
  }
  const std::size_t schedules_before = phone_b.schedules_.size();
  const std::uint64_t reschedules_before =
      f.server.scheduler().stats().reschedules;

  LeaveNotification note{task_a, ua, SimTime{60'000}};
  ASSERT_TRUE(f.net.Send("server", note).ok());
  EXPECT_EQ(f.server.participations().Get(task_a).value().status,
            "finished");
  // The leave reclaimed A's unexecuted picks (a reschedule ran), but B's
  // plan is append-only and unchanged — plan-delta distribution sends B
  // nothing.
  EXPECT_GT(f.server.scheduler().stats().reschedules, reschedules_before);
  EXPECT_EQ(phone_b.schedules_.size(), schedules_before);
}

TEST(ServerEndToEnd, MalformedFrameAnsweredWithError) {
  ServerFixture f;
  const Bytes garbage = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  // Talk to the endpoint directly (bypassing Send's own encode).
  const Bytes reply_frame = f.server.HandleFrame(garbage);
  Result<Message> reply = DecodeFrame(reply_frame);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(std::holds_alternative<ErrorReply>(reply.value()));
  EXPECT_EQ(f.server.stats().decode_failures, 1u);
}

// --- DataProcessor ---------------------------------------------------------------

TEST(DataProcessor, ExtractsMeanFeatures) {
  ServerFixture f;
  Result<BarcodePayload> barcode = f.server.DeployApplication(TestAppSpec());
  ASSERT_TRUE(barcode.ok());
  const AppId app = barcode.value().app;
  const UserId user =
      f.server.users().RegisterUser("a", Token{"tok-a"}).value();
  RecordingPhone phone(f.net, "phone:tok-a");
  ParticipationRequest req;
  req.user = user;
  req.token = Token{"tok-a"};
  req.app = app;
  req.location = GeoPoint{43.0, -76.0, 100};
  req.budget = 10;
  Result<Message> reply = f.net.Send("server", req);
  ASSERT_TRUE(reply.ok());
  const TaskId task = std::get<ParticipationReply>(reply.value()).task;

  SensedDataUpload upload;
  upload.task = task;
  upload.user = user;
  ReadingTuple noise;
  noise.kind = SensorKind::kMicrophone;
  noise.t = SimTime{10'000};
  noise.dt = SimDuration{1'000};
  noise.values = {0.2, 0.4};
  ReadingTuple temp;
  temp.kind = SensorKind::kDroneTemperature;
  temp.t = SimTime{10'000};
  temp.dt = SimDuration{1'000};
  temp.values = {70.0, 72.0};
  upload.batches = {noise, temp};
  ASSERT_TRUE(f.net.Send("server", upload).ok());

  Result<int> n = f.server.ProcessAllData();
  ASSERT_TRUE(n.ok()) << n.error().str();
  EXPECT_EQ(n.value(), 4);  // 4 coffee-shop features written
  EXPECT_DOUBLE_EQ(
      f.server.data_processor().FeatureValue(app, features::kNoise).value(),
      0.3);
  EXPECT_DOUBLE_EQ(f.server.data_processor()
                       .FeatureValue(app, features::kTemperature)
                       .value(),
                   71.0);
  // No data for brightness: value 0, still written.
  EXPECT_DOUBLE_EQ(f.server.data_processor()
                       .FeatureValue(app, features::kBrightness)
                       .value(),
                   0.0);
  EXPECT_FALSE(
      f.server.data_processor().FeatureValue(app, "bogus").ok());
  // Raw rows flagged processed.
  EXPECT_TRUE(f.server.database()
                  .table(db::tables::kRawData)
                  ->FindWhereEq("processed", db::Value(false))
                  .empty());
  // Reprocessing is idempotent (upserts).
  ASSERT_TRUE(f.server.ProcessAllData().ok());
  EXPECT_EQ(f.server.database().table(db::tables::kFeatureData)->size(), 4u);
}

TEST(DataProcessor, WindowStatisticsMethods) {
  ServerFixture f;
  ApplicationSpec spec = TestAppSpec();
  spec.features = HikingTrailFeatures();
  Result<BarcodePayload> barcode = f.server.DeployApplication(spec);
  ASSERT_TRUE(barcode.ok());
  const AppId app = barcode.value().app;
  const UserId user =
      f.server.users().RegisterUser("a", Token{"tok-a"}).value();
  RecordingPhone phone(f.net, "phone:tok-a");
  ParticipationRequest req;
  req.user = user;
  req.token = Token{"tok-a"};
  req.app = app;
  req.location = GeoPoint{43.0, -76.0, 100};
  req.budget = 10;
  Result<Message> reply = f.net.Send("server", req);
  ASSERT_TRUE(reply.ok());
  const TaskId task = std::get<ParticipationReply>(reply.value()).task;

  SensedDataUpload upload;
  upload.task = task;
  upload.user = user;
  // Two accelerometer windows with stddevs 1.0 and 3.0 -> roughness 2.0.
  ReadingTuple a1;
  a1.kind = SensorKind::kAccelerometer;
  a1.t = SimTime{1'000};
  a1.dt = SimDuration{1'000};
  a1.values = {9.0, 11.0};  // stddev 1
  ReadingTuple a2 = a1;
  a2.t = SimTime{2'000};
  a2.values = {7.0, 13.0};  // stddev 3
  // Two altitude windows with means 100 and 104 -> stddev 2.0.
  ReadingTuple b1;
  b1.kind = SensorKind::kBarometer;
  b1.t = SimTime{1'000};
  b1.dt = SimDuration{1'000};
  b1.values = {100.0, 100.0};
  ReadingTuple b2 = b1;
  b2.t = SimTime{2'000};
  b2.values = {104.0, 104.0};
  upload.batches = {a1, a2, b1, b2};
  ASSERT_TRUE(f.net.Send("server", upload).ok());
  ASSERT_TRUE(f.server.ProcessAllData().ok());

  EXPECT_DOUBLE_EQ(f.server.data_processor()
                       .FeatureValue(app, features::kRoughness)
                       .value(),
                   2.0);
  EXPECT_DOUBLE_EQ(f.server.data_processor()
                       .FeatureValue(app, features::kAltitudeChange)
                       .value(),
                   2.0);
}

TEST(DataProcessor, CurvatureFromGpsTrack) {
  ServerFixture f;
  ApplicationSpec spec = TestAppSpec();
  spec.features = HikingTrailFeatures();
  Result<BarcodePayload> barcode = f.server.DeployApplication(spec);
  ASSERT_TRUE(barcode.ok());
  const AppId app = barcode.value().app;
  const UserId user =
      f.server.users().RegisterUser("a", Token{"tok-a"}).value();
  RecordingPhone phone(f.net, "phone:tok-a");
  ParticipationRequest req;
  req.user = user;
  req.token = Token{"tok-a"};
  req.app = app;
  req.location = GeoPoint{43.0, -76.0, 100};
  req.budget = 10;
  Result<Message> reply = f.net.Send("server", req);
  ASSERT_TRUE(reply.ok());
  const TaskId task = std::get<ParticipationReply>(reply.value()).task;

  // A clean zig-zag track: 20 m segments, constant 0.2 rad turns ->
  // curvature 10 mrad/m before smoothing. With 3-point smoothing the turn
  // density drops but stays clearly positive; a straight track must give
  // ~0. We compare the two.
  auto MakeTrack = [&](bool curved) {
    ReadingTuple gps;
    gps.kind = SensorKind::kGps;
    gps.t = SimTime{curved ? 10'000 : 500'000};
    gps.dt = SimDuration{200'000};
    const GeoPoint origin{43.0, curved ? -76.0 : -75.9, 100.0};
    double heading = 0.0;
    double x = 0, y = 0;
    double sign = 1.0;
    for (int i = 0; i < 30; ++i) {
      gps.locations.push_back(OffsetMeters(origin, x, y));
      gps.values.push_back(100.0);
      if (curved) {
        heading += sign * 0.2;
        sign = -sign;  // zig-zag
      }
      x += 20.0 * std::cos(heading);
      y += 20.0 * std::sin(heading);
    }
    return gps;
  };

  SensedDataUpload upload;
  upload.task = task;
  upload.user = user;
  upload.batches = {MakeTrack(true)};
  ASSERT_TRUE(f.net.Send("server", upload).ok());
  ASSERT_TRUE(f.server.ProcessAllData().ok());
  const double curved_value = f.server.data_processor()
                                  .FeatureValue(app, features::kCurvature)
                                  .value();
  EXPECT_GT(curved_value, 1.0);
}

TEST(DataProcessor, BrokenSensorOutlierRejected) {
  // One phone uploads wildly wrong temperatures among three honest ones;
  // with outlier rejection (default) the feature barely moves, without it
  // the mean is dragged far off.
  auto run = [&](bool robust) {
    ServerFixture f;
    f.server.data_processor().set_options(
        DataProcessorOptions{robust, 6.0});
    Result<BarcodePayload> barcode =
        f.server.DeployApplication(TestAppSpec());
    EXPECT_TRUE(barcode.ok());
    const AppId app = barcode.value().app;
    const UserId user =
        f.server.users().RegisterUser("a", Token{"tok-a"}).value();
    RecordingPhone phone(f.net, "phone:tok-a");
    ParticipationRequest req;
    req.user = user;
    req.token = Token{"tok-a"};
    req.app = app;
    req.location = GeoPoint{43.0, -76.0, 100};
    req.budget = 50;
    Result<Message> reply = f.net.Send("server", req);
    EXPECT_TRUE(reply.ok());
    const TaskId task = std::get<ParticipationReply>(reply.value()).task;

    SensedDataUpload upload;
    upload.task = task;
    upload.user = user;
    for (int i = 0; i < 30; ++i) {
      ReadingTuple t;
      t.kind = SensorKind::kDroneTemperature;
      t.t = SimTime{(i + 1) * 1'000};
      t.dt = SimDuration{500};
      t.values = {70.0 + 0.01 * i};
      upload.batches.push_back(std::move(t));
    }
    // The broken sensor: three absurd readings.
    for (int i = 0; i < 3; ++i) {
      ReadingTuple t;
      t.kind = SensorKind::kDroneTemperature;
      t.t = SimTime{(100 + i) * 1'000};
      t.dt = SimDuration{500};
      t.values = {9'999.0};
      upload.batches.push_back(std::move(t));
    }
    EXPECT_TRUE(f.net.Send("server", upload).ok());
    EXPECT_TRUE(f.server.ProcessAllData().ok());
    return f.server.data_processor()
        .FeatureValue(app, features::kTemperature)
        .value();
  };

  const double robust_value = run(true);
  const double naive_value = run(false);
  EXPECT_NEAR(robust_value, 70.1, 0.5);
  EXPECT_GT(naive_value, 500.0);
}

TEST(CoverageReport, ReportsExecutedMeasurements) {
  ServerFixture f;
  Result<BarcodePayload> barcode = f.server.DeployApplication(TestAppSpec());
  ASSERT_TRUE(barcode.ok());
  const AppId app = barcode.value().app;
  const UserId user =
      f.server.users().RegisterUser("a", Token{"tok-a"}).value();
  RecordingPhone phone(f.net, "phone:tok-a");
  ParticipationRequest req;
  req.user = user;
  req.token = Token{"tok-a"};
  req.app = app;
  req.location = GeoPoint{43.0, -76.0, 100};
  req.budget = 10;
  Result<Message> reply = f.net.Send("server", req);
  ASSERT_TRUE(reply.ok());
  const TaskId task = std::get<ParticipationReply>(reply.value()).task;

  const auto rec = f.server.applications().Get(app).value();
  // Before any upload: zero coverage, empty-but-valid report.
  Result<CoverageReport> before =
      ReportCoverage(f.server.database(), rec, f.server.participations());
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().executed_measurements, 0);
  EXPECT_DOUBLE_EQ(before.value().average_coverage, 0.0);

  SensedDataUpload upload;
  upload.task = task;
  upload.user = user;
  for (int i = 0; i < 4; ++i) {
    ReadingTuple t;
    t.kind = SensorKind::kMicrophone;
    t.t = SimTime{(i + 1) * 100'000};  // 100 s apart on a 10 s grid
    t.dt = SimDuration{1'000};
    t.values = {0.2};
    upload.batches.push_back(std::move(t));
  }
  ASSERT_TRUE(f.net.Send("server", upload).ok());

  Result<CoverageReport> after =
      ReportCoverage(f.server.database(), rec, f.server.participations());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().executed_measurements, 4);
  EXPECT_GT(after.value().average_coverage, 0.0);
  EXPECT_LT(after.value().average_coverage, 1.0);
  EXPECT_NE(after.value().timeline.find('#'), std::string::npos);

  const auto by_task =
      ExecutedInstantsByTask(f.server.database(), app,
                             MakeInstantGrid(rec.spec.period,
                                             rec.spec.n_instants));
  ASSERT_EQ(by_task.size(), 1u);
  EXPECT_EQ(by_task.at(task).size(), 4u);
}

// --- visualization ------------------------------------------------------------

TEST(JsonExport, EscapingAndStructure) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");

  rank::FeatureMatrix m({"B&N \"Cafe\"", "A"},
                        {{"noise", rank::PrefDirection::kMinimize, 0}});
  m.set(0, 0, 0.25);
  m.set(1, 0, 0.5);
  const std::string json = RenderFeatureJson(m);
  EXPECT_NE(json.find("\"B&N \\\"Cafe\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"values\":[[0.25],[0.5]]"), std::string::npos);
  EXPECT_NE(json.find("\"features\":[{\"name\":\"noise\"}]"),
            std::string::npos);

  const std::string rankings = RenderRankingJson(
      m, {{"Emma", rank::Ranking::FromOrder({1, 0}).value()}});
  EXPECT_EQ(rankings,
            "{\"rankings\":[{\"user\":\"Emma\",\"order\":"
            "[\"A\",\"B&N \\\"Cafe\\\"\"]}]}");
}

TEST(JsonExport, NonFiniteValuesBecomeNull) {
  rank::FeatureMatrix m({"A"}, {{"x", rank::PrefDirection::kTarget, 0}});
  m.set(0, 0, std::numeric_limits<double>::quiet_NaN());
  EXPECT_NE(RenderFeatureJson(m).find("\"values\":[[null]]"),
            std::string::npos);
}

TEST(Visualization, BarsCsvAndTable) {
  rank::FeatureMatrix m({"A", "B"},
                        {{"temp", rank::PrefDirection::kTarget, 73},
                         {"noise", rank::PrefDirection::kMinimize, 0}});
  m.set(0, 0, 70.0);
  m.set(0, 1, 0.3);
  m.set(1, 0, 75.0);
  m.set(1, 1, 0.1);
  const std::string bars = RenderFeatureBars(m);
  EXPECT_NE(bars.find("temp"), std::string::npos);
  EXPECT_NE(bars.find("A"), std::string::npos);
  EXPECT_NE(bars.find('#'), std::string::npos);

  const std::string csv = RenderFeatureCsv(m);
  EXPECT_NE(csv.find("place,temp,noise"), std::string::npos);
  EXPECT_NE(csv.find("A,70,0.3"), std::string::npos);

  const std::string table = RenderRankingTable(
      m, {{"UserX", rank::Ranking::Identity(2)}});
  EXPECT_NE(table.find("No. 1"), std::string::npos);
  EXPECT_NE(table.find("UserX"), std::string::npos);
}

// --- upload idempotency & crash recovery -----------------------------------

// Join one user to a freshly deployed app and return their task id.
TaskId JoinOneUser(ServerFixture& f, AppId app, const std::string& tok) {
  const UserId user = f.server.users().RegisterUser(tok, Token{tok}).value();
  ParticipationRequest req;
  req.user = user;
  req.token = Token{tok};
  req.app = app;
  req.location = GeoPoint{43.0, -76.0, 100};
  req.budget = 10;
  Result<Message> reply = f.net.Send("server", req);
  return std::get<ParticipationReply>(reply.value()).task;
}

SensedDataUpload MakeUpload(TaskId task, UserId user, std::uint64_t seq,
                            std::int64_t instant_ms) {
  SensedDataUpload up;
  up.task = task;
  up.user = user;
  up.seq = seq;
  ReadingTuple noise;
  noise.kind = SensorKind::kMicrophone;
  noise.t = SimTime{instant_ms};
  noise.dt = SimDuration{1'000};
  noise.values = {0.5};
  up.batches = {noise};
  return up;
}

TEST(UploadIdempotency, DuplicateSeqStoredOnceAndBudgetChargedOnce) {
  ServerFixture f;
  Result<BarcodePayload> barcode = f.server.DeployApplication(TestAppSpec());
  ASSERT_TRUE(barcode.ok());
  RecordingPhone phone(f.net, "phone:tok-a");
  const TaskId task = JoinOneUser(f, barcode.value().app, "tok-a");
  const UserId user = f.server.participations().Get(task).value().user;

  const SensedDataUpload up = MakeUpload(task, user, /*seq=*/1, 10'000);
  // Deliver the SAME upload twice — the retry-after-lost-Ack case.
  Result<Message> first = f.net.Send("server", up);
  Result<Message> second = f.net.Send("server", up);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Both deliveries acknowledged, and both Acks echo the seq.
  EXPECT_EQ(std::get<Ack>(first.value()).seq, 1u);
  EXPECT_EQ(std::get<Ack>(second.value()).seq, 1u);
  // One raw row, one budget decrement, and the duplicate is accounted.
  EXPECT_EQ(f.server.database().table(db::tables::kRawData)->size(), 1u);
  EXPECT_EQ(f.server.participations().Get(task).value().budget_left, 9);
  EXPECT_EQ(f.server.stats().uploads_stored, 1u);
  EXPECT_EQ(f.server.stats().duplicate_uploads_ignored, 1u);

  // A different seq from the same task is new data.
  ASSERT_TRUE(f.net.Send("server", MakeUpload(task, user, 2, 20'000)).ok());
  EXPECT_EQ(f.server.database().table(db::tables::kRawData)->size(), 2u);
  EXPECT_EQ(f.server.participations().Get(task).value().budget_left, 8);
}

TEST(UploadIdempotency, SeqZeroIsLegacyAndNeverDeduped) {
  ServerFixture f;
  Result<BarcodePayload> barcode = f.server.DeployApplication(TestAppSpec());
  ASSERT_TRUE(barcode.ok());
  RecordingPhone phone(f.net, "phone:tok-a");
  const TaskId task = JoinOneUser(f, barcode.value().app, "tok-a");
  const UserId user = f.server.participations().Get(task).value().user;
  ASSERT_TRUE(f.net.Send("server", MakeUpload(task, user, 0, 10'000)).ok());
  ASSERT_TRUE(f.net.Send("server", MakeUpload(task, user, 0, 10'000)).ok());
  EXPECT_EQ(f.server.database().table(db::tables::kRawData)->size(), 2u);
  EXPECT_EQ(f.server.stats().duplicate_uploads_ignored, 0u);
}

TEST(CrashRecovery, RestoreRebuildsStateAndDedupIndex) {
  ServerFixture f;
  Result<BarcodePayload> barcode = f.server.DeployApplication(TestAppSpec());
  ASSERT_TRUE(barcode.ok());
  const AppId app = barcode.value().app;
  RecordingPhone phone(f.net, "phone:tok-a");
  const TaskId task = JoinOneUser(f, app, "tok-a");
  const UserId user = f.server.participations().Get(task).value().user;
  ASSERT_TRUE(f.net.Send("server", MakeUpload(task, user, 1, 10'000)).ok());
  const Bytes snapshot = f.server.SnapshotState();

  // "Crash": stand up a brand-new server process on the same network and
  // feed it the snapshot.
  f.net.Unregister("server");
  SensingServer reborn{ServerConfig{}, f.net, f.clock};
  ASSERT_TRUE(reborn.RestoreFromSnapshot(snapshot).ok());
  EXPECT_EQ(reborn.stats().recoveries, 1u);

  // Durable state survived.
  EXPECT_EQ(reborn.users().count(), 1u);
  EXPECT_EQ(reborn.applications().All().size(), 1u);
  EXPECT_EQ(reborn.participations().Get(task).value().budget_left, 9);
  EXPECT_EQ(reborn.database().table(db::tables::kRawData)->size(), 1u);

  // The dedup index survived the crash: a phone retrying the pre-crash
  // upload (it never saw the Ack) is recognized, not double-stored.
  const std::size_t schedules_before = phone.schedules_.size();
  ASSERT_TRUE(f.net.Send("server", MakeUpload(task, user, 1, 10'000)).ok());
  EXPECT_EQ(reborn.database().table(db::tables::kRawData)->size(), 1u);
  EXPECT_EQ(reborn.participations().Get(task).value().budget_left, 9);
  EXPECT_EQ(reborn.stats().duplicate_uploads_ignored, 1u);

  // First post-restart contact transparently re-pushed the schedule.
  EXPECT_GT(phone.schedules_.size(), schedules_before);
  EXPECT_EQ(reborn.stats().resyncs_triggered, 1u);

  // Id generators resumed past the restored ids: a new user and a new
  // participation get fresh ids, not collisions.
  Result<UserId> ub = reborn.users().RegisterUser("b", Token{"tok-b"});
  ASSERT_TRUE(ub.ok());
  EXPECT_GT(ub.value().value(), user.value());
  RecordingPhone phone_b(f.net, "phone:tok-b");
  ParticipationRequest req;
  req.user = ub.value();
  req.token = Token{"tok-b"};
  req.app = app;
  req.location = GeoPoint{43.0, -76.0, 100};
  req.budget = 5;
  Result<Message> reply = f.net.Send("server", req);
  ASSERT_TRUE(reply.ok());
  EXPECT_GT(std::get<ParticipationReply>(reply.value()).task.value(),
            task.value());

  // New uploads (fresh seqs) flow normally after recovery.
  ASSERT_TRUE(f.net.Send("server", MakeUpload(task, user, 2, 20'000)).ok());
  EXPECT_EQ(reborn.database().table(db::tables::kRawData)->size(), 2u);
}

// --- overload control (docs/robustness.md) --------------------------------

TEST(HealthMonitor, LadderClimbsWithTheWindowAndDecaysOnQuietTicks) {
  HealthMonitor hm;
  OverloadConfig cfg;
  cfg.ingest_budget = 4;  // threshold = ceil(0.75 * 4) = 3
  hm.set_config(cfg);

  const SimTime t1{10'000};
  const SimTime fresh = t1;  // sensed right now: never stale
  for (int i = 0; i < 3; ++i) {
    AdmitDecision d = hm.AdmitUpload(t1, fresh);
    EXPECT_TRUE(d.admit);
    EXPECT_EQ(d.mode, ServerMode::kNormal);
  }
  // At the threshold the ladder steps to throttling, but FRESH uploads
  // still ride until the budget is spent.
  AdmitDecision fourth = hm.AdmitUpload(t1, fresh);
  EXPECT_TRUE(fourth.admit);
  EXPECT_EQ(fourth.mode, ServerMode::kThrottling);
  // Budget spent: shedding, everything refused with the doubled hint.
  AdmitDecision fifth = hm.AdmitUpload(t1, fresh);
  EXPECT_FALSE(fifth.admit);
  EXPECT_EQ(fifth.mode, ServerMode::kShedding);
  EXPECT_EQ(fifth.retry_after.ms, 2 * cfg.retry_after.ms);
  EXPECT_EQ(hm.window_used(), 4u);
  EXPECT_EQ(hm.throttled_total(), 1u);

  // A quiet tick decays the ladder even with no admission traffic at all.
  hm.ObserveTick(SimTime{20'000});
  EXPECT_EQ(hm.mode(), ServerMode::kNormal);
  EXPECT_EQ(hm.window_used(), 0u);
}

TEST(HealthMonitor, ShedsStaleBeforeFresh) {
  HealthMonitor hm;
  OverloadConfig cfg;
  cfg.ingest_budget = 4;
  cfg.stale_after = SimDuration{10'000};
  hm.set_config(cfg);

  const SimTime now{100'000};
  const SimTime fresh = now;
  const SimTime stale{50'000};  // sensed 50 s ago
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(hm.AdmitUpload(now, fresh).admit);
  // Past the throttle threshold: the stale upload is refused (with the
  // BASE hint — it only needs to wait out the crunch) while a fresh one
  // arriving after it still gets the last budget slot.
  AdmitDecision shed = hm.AdmitUpload(now, stale);
  EXPECT_FALSE(shed.admit);
  EXPECT_TRUE(shed.stale);
  EXPECT_EQ(shed.retry_after.ms, cfg.retry_after.ms);
  AdmitDecision last = hm.AdmitUpload(now, fresh);
  EXPECT_TRUE(last.admit);
  EXPECT_EQ(hm.shed_stale_total(), 1u);
  EXPECT_EQ(hm.window_used(), 4u);
}

TEST(HealthMonitor, StorageFailuresTriggerReprimeAndRecoveringMode) {
  HealthMonitor hm;
  OverloadConfig cfg;
  cfg.reprime_after_failures = 2;
  hm.set_config(cfg);

  const SimTime now{10'000};
  hm.NoteStorageFailure(now);
  EXPECT_FALSE(hm.ShouldReprime());
  hm.NoteStorageFailure(now);
  EXPECT_TRUE(hm.ShouldReprime());
  hm.NoteReprimed(now);
  EXPECT_EQ(hm.mode(), ServerMode::kRecovering);
  EXPECT_FALSE(hm.ShouldReprime());  // epoch reset
  // The rest of the tick is a quiet period: every upload is refused.
  EXPECT_FALSE(hm.AdmitUpload(now, now).admit);
  // The next tick resumes service.
  EXPECT_TRUE(hm.AdmitUpload(SimTime{20'000}, SimTime{20'000}).admit);
  EXPECT_EQ(hm.mode(), ServerMode::kNormal);
  EXPECT_EQ(hm.reprimes_total(), 1u);
}

TEST(ServerOverload, DedupAnswersBeforeAdmissionCharges) {
  // Retries of already-stored uploads must be re-acked FREE under
  // overload: the data is safe, and refusing the ack would keep the phone
  // re-sending forever — the opposite of load shedding.
  ServerFixture f;
  OverloadConfig cfg;
  cfg.ingest_budget = 1;
  f.server.set_overload(cfg);
  Result<BarcodePayload> barcode = f.server.DeployApplication(TestAppSpec());
  ASSERT_TRUE(barcode.ok());
  RecordingPhone phone(f.net, "phone:tok-a");
  const TaskId task = JoinOneUser(f, barcode.value().app, "tok-a");
  const UserId user = f.server.participations().Get(task).value().user;

  // The single budget slot admits seq 1.
  Result<Message> first = f.net.Send("server", MakeUpload(task, user, 1, 10'000));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(std::get<Ack>(first.value()).seq, 1u);
  // A retry of seq 1 (the lost-Ack case) is re-acked without touching the
  // spent budget...
  Result<Message> dup = f.net.Send("server", MakeUpload(task, user, 1, 10'000));
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(std::get<Ack>(dup.value()).seq, 1u);
  EXPECT_EQ(f.server.stats().duplicate_uploads_ignored, 1u);
  // ...while genuinely new data is refused with a throttle hint.
  Result<Message> fresh = f.net.Send("server", MakeUpload(task, user, 2, 20'000));
  ASSERT_TRUE(fresh.ok());
  const auto* throttle = std::get_if<ThrottleReply>(&fresh.value());
  ASSERT_NE(throttle, nullptr);
  EXPECT_EQ(throttle->seq, 2u);
  EXPECT_GT(throttle->retry_after.ms, 0);
  EXPECT_EQ(f.server.stats().uploads_throttled, 1u);
  EXPECT_EQ(f.server.stats().uploads_stored, 1u);
  EXPECT_EQ(f.server.database().table(db::tables::kRawData)->size(), 1u);
}

TEST(ServerOverload, StorageWriteFailureThrottlesThenReprimeRecovers) {
  // A failed raw-data write answers with a throttle (the phone keeps the
  // batch — at-least-once delivery IS the recovery path), and enough
  // failures quarantine-and-reprime: derived state is rebuilt from the
  // intact tables and service resumes next tick with nothing lost.
  ServerFixture f;
  OverloadConfig cfg;
  cfg.reprime_after_failures = 1;
  f.server.set_overload(cfg);
  Result<BarcodePayload> barcode = f.server.DeployApplication(TestAppSpec());
  ASSERT_TRUE(barcode.ok());
  RecordingPhone phone(f.net, "phone:tok-a");
  const TaskId task = JoinOneUser(f, barcode.value().app, "tok-a");
  const UserId user = f.server.participations().Get(task).value().user;

  db::StorageFaultInjector faults;
  db::StorageFaultRule rule;
  rule.table = db::tables::kRawData;
  rule.fail_next = 1;  // scripted: exactly the next raw write fails
  faults.AddRule(rule);
  f.server.database().AttachStorageFaults(&faults);

  Result<Message> failed = f.net.Send("server", MakeUpload(task, user, 1, 10'000));
  ASSERT_TRUE(failed.ok());
  ASSERT_NE(std::get_if<ThrottleReply>(&failed.value()), nullptr);
  EXPECT_EQ(f.server.stats().storage_write_failures, 1u);
  EXPECT_EQ(f.server.stats().reprimes, 1u);
  EXPECT_EQ(f.server.health().mode(), ServerMode::kRecovering);
  EXPECT_EQ(f.server.database().table(db::tables::kRawData)->size(), 0u);

  // Next tick the phone retries the SAME seq; it lands, budget charged
  // once, and the reprimed dedup index still recognizes later retries.
  f.clock.advance(SimDuration{10'000});
  Result<Message> retry = f.net.Send("server", MakeUpload(task, user, 1, 10'000));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(std::get<Ack>(retry.value()).seq, 1u);
  EXPECT_EQ(f.server.database().table(db::tables::kRawData)->size(), 1u);
  Result<Message> dup = f.net.Send("server", MakeUpload(task, user, 1, 10'000));
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(f.server.stats().duplicate_uploads_ignored, 1u);
  EXPECT_EQ(f.server.participations().Get(task).value().budget_left, 9);
  f.server.database().AttachStorageFaults(nullptr);
}

// --- incarnations: crash-rejoin vs reinstall (docs/robustness.md) ----------

TEST(Participation, RejoinWithSameIncarnationIsIdempotent) {
  ParticipationFixture f;
  const auto rec = f.server.applications().Get(f.app).value();
  ParticipationRequest req = f.Request(GeoPoint{43.0, -76.0, 100});
  req.incarnation = 1;
  const TaskId first =
      f.server.participations().HandleRequest(req, rec, f.server.users()).value();
  // A crashed phone restarts with its persisted incarnation: same task,
  // same dedup seq space — exactly what its surviving seq counter needs.
  const TaskId again =
      f.server.participations().HandleRequest(req, rec, f.server.users()).value();
  EXPECT_EQ(first, again);
}

TEST(Participation, StaleIncarnationRejected) {
  ParticipationFixture f;
  const auto rec = f.server.applications().Get(f.app).value();
  ParticipationRequest req = f.Request(GeoPoint{43.0, -76.0, 100});
  req.incarnation = 2;
  ASSERT_TRUE(f.server.participations()
                  .HandleRequest(req, rec, f.server.users())
                  .ok());
  // A replayed (or long-delayed) join from the PREVIOUS install must not
  // resurrect the old task: its seq space would collide with stored rows.
  req.incarnation = 1;
  EXPECT_EQ(f.server.participations()
                .HandleRequest(req, rec, f.server.users())
                .code(),
            Errc::kPermissionDenied);
}

TEST(Participation, ReinstallFinishesTheOldTaskAndOpensAFreshOne) {
  ParticipationFixture f;
  const auto rec = f.server.applications().Get(f.app).value();
  ParticipationRequest req = f.Request(GeoPoint{43.0, -76.0, 100});
  req.incarnation = 1;
  const TaskId old_task =
      f.server.participations().HandleRequest(req, rec, f.server.users()).value();
  // The user uninstalled and reinstalled: a higher incarnation. The old
  // participation is closed (its uploads stay; its budget is gone) and a
  // fresh task opens so seq 1 from the new install is NOT a duplicate.
  req.incarnation = 2;
  const TaskId new_task =
      f.server.participations().HandleRequest(req, rec, f.server.users()).value();
  EXPECT_NE(new_task, old_task);
  EXPECT_EQ(f.server.participations().Get(old_task).value().status, "finished");
  const ParticipationRecord fresh = f.server.participations().Get(new_task).value();
  EXPECT_EQ(fresh.incarnation, 2u);
  EXPECT_EQ(fresh.status, "waiting_for_schedule");
}

TEST(CrashRecovery, CorruptSnapshotRejectedWithoutStateChange) {
  ServerFixture f;
  Result<BarcodePayload> barcode = f.server.DeployApplication(TestAppSpec());
  ASSERT_TRUE(barcode.ok());
  Bytes snapshot = f.server.SnapshotState();
  snapshot[snapshot.size() / 2] ^= 0x5a;

  f.net.Unregister("server");
  SensingServer reborn{ServerConfig{}, f.net, f.clock};
  EXPECT_FALSE(reborn.RestoreFromSnapshot(snapshot).ok());
  EXPECT_EQ(reborn.stats().recoveries, 0u);
  // The fresh server's (empty) schema is untouched — still usable.
  EXPECT_TRUE(reborn.DeployApplication(TestAppSpec()).ok());
}

}  // namespace
}  // namespace sor::server

// Unit tests for SenseScript: lexer, parser, interpreter semantics, the
// host-function whitelist (the §II-A security mechanism), instruction
// budgets, and the stdlib.
#include <gtest/gtest.h>

#include "script/interpreter.hpp"
#include "script/lexer.hpp"
#include "script/parser.hpp"

namespace sor::script {
namespace {

// Run a script with the stdlib plus any extra host functions; expect
// success and return the result.
ExecutionResult RunScript(const std::string& src,
                    const HostRegistry* extra = nullptr,
                    InterpreterOptions opts = {}) {
  HostRegistry host;
  InstallStdlib(host);
  if (extra != nullptr) {
    for (const std::string& name : extra->Names())
      host.Register(name, *extra->Find(name));
  }
  Interpreter interp(host, opts);
  Result<ExecutionResult> r = interp.Run(src);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().str());
  return r.ok() ? std::move(r).value() : ExecutionResult{};
}

Error ScriptError(const std::string& src, InterpreterOptions opts = {}) {
  HostRegistry host;
  InstallStdlib(host);
  Interpreter interp(host, opts);
  Result<ExecutionResult> r = interp.Run(src);
  EXPECT_FALSE(r.ok()) << "script unexpectedly succeeded";
  return r.ok() ? Error{} : r.error();
}

// --- lexer --------------------------------------------------------------------

TEST(Lexer, TokenizesRepresentativeScript) {
  Result<std::vector<Token>> tokens = Tokenize(
      "local x = 1.5 -- comment\nif x >= 1 then x = x + 1 end");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value().front().type, TokenType::kLocal);
  EXPECT_EQ(tokens.value().back().type, TokenType::kEof);
}

TEST(Lexer, NumbersIncludingExponents) {
  Result<std::vector<Token>> tokens = Tokenize("x = 1e3 y = 2.5e-2 z = .5");
  ASSERT_TRUE(tokens.ok());
  double values[3] = {0, 0, 0};
  int vi = 0;
  for (const Token& t : tokens.value()) {
    if (t.type == TokenType::kNumber) values[vi++] = t.number;
  }
  EXPECT_DOUBLE_EQ(values[0], 1000.0);
  EXPECT_DOUBLE_EQ(values[1], 0.025);
  EXPECT_DOUBLE_EQ(values[2], 0.5);
}

TEST(Lexer, StringEscapes) {
  Result<std::vector<Token>> tokens = Tokenize(R"(s = "a\nb\t\"c\"")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[2].text, "a\nb\t\"c\"");
}

TEST(Lexer, Errors) {
  EXPECT_FALSE(Tokenize("x = \"unterminated").ok());
  EXPECT_FALSE(Tokenize("x = 'newline\n'").ok());
  EXPECT_FALSE(Tokenize("x = @").ok());
  EXPECT_FALSE(Tokenize("x ~ y").ok());
  EXPECT_FALSE(Tokenize("x = \"bad \\q escape\"").ok());
}

TEST(Lexer, LineNumbersTracked) {
  Result<std::vector<Token>> tokens = Tokenize("x = 1\ny = 2\nz = 3");
  ASSERT_TRUE(tokens.ok());
  int max_line = 0;
  for (const Token& t : tokens.value()) max_line = std::max(max_line, t.line);
  EXPECT_EQ(max_line, 3);
}

// --- parser --------------------------------------------------------------------

TEST(Parser, AcceptsPaperStyleScript) {
  // Shaped like Fig. 4's Lua acquisition scripts.
  const char* src = R"(
-- sample sensing task
local readings = get_light_readings(10)
local loc = get_location()
local sum = 0
for i = 1, len(readings) do
  sum = sum + readings[i]
end
if len(readings) > 0 then
  result = sum / len(readings)
else
  result = 0
end
)";
  EXPECT_TRUE(Parse(src).ok());
}

TEST(Parser, SyntaxErrorsCarryLineNumbers) {
  Result<Program> r = Parse("x = 1\ny = ");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 2"), std::string::npos)
      << r.error().message;
}

TEST(Parser, RejectsMalformedConstructs) {
  EXPECT_FALSE(Parse("if x then").ok());           // missing end
  EXPECT_FALSE(Parse("for i = 1 do end").ok());    // missing stop bound
  EXPECT_FALSE(Parse("local = 3").ok());           // missing name
  EXPECT_FALSE(Parse("x + 1").ok());               // expr stmt must be call
  EXPECT_FALSE(Parse("1 = x").ok());               // bad assign target
  EXPECT_FALSE(Parse("f(1,)").ok());               // trailing comma
  EXPECT_FALSE(Parse("while do end").ok());        // missing condition
  EXPECT_FALSE(Parse("function f( end").ok());     // bad params
}

TEST(Parser, ElseifChains) {
  EXPECT_TRUE(Parse(R"(
x = 3
if x == 1 then y = 1
elseif x == 2 then y = 2
elseif x == 3 then y = 3
else y = 0
end)").ok());
}

// --- interpreter: expressions ----------------------------------------------------

TEST(Interp, ArithmeticAndPrecedence) {
  const ExecutionResult r = RunScript("print(2 + 3 * 4 - 6 / 2)");
  EXPECT_EQ(r.output, "11\n");
}

TEST(Interp, UnaryAndModulo) {
  // Modulo follows C's fmod (truncated): fmod(-5, 3) = -2.
  EXPECT_EQ(RunScript("print(-5 % 3)").output, "-2\n");
  EXPECT_EQ(RunScript("print(7 % 3)").output, "1\n");
  EXPECT_EQ(RunScript("print(-(2+3))").output, "-5\n");
}

TEST(Interp, ComparisonAndLogic) {
  EXPECT_EQ(RunScript("print(1 < 2 and 2 <= 2 and 3 > 2 and 3 >= 3)").output,
            "true\n");
  EXPECT_EQ(RunScript("print(1 == 1, 1 ~= 2, not false)").output,
            "true\ttrue\ttrue\n");
  EXPECT_EQ(RunScript("print(\"abc\" < \"abd\")").output, "true\n");
}

TEST(Interp, ShortCircuitSemantics) {
  // Lua semantics: and/or return operands; rhs not evaluated when decided.
  EXPECT_EQ(RunScript("print(false and undefined_variable)").output, "false\n");
  EXPECT_EQ(RunScript("print(7 or undefined_variable)").output, "7\n");
  EXPECT_EQ(RunScript("print(nil or \"fallback\")").output, "fallback\n");
}

TEST(Interp, StringConcat) {
  EXPECT_EQ(RunScript("print(\"n=\" .. 42)").output, "n=42\n");
  EXPECT_EQ(RunScript("print(1 .. 2)").output, "12\n");
}

TEST(Interp, Lists) {
  const char* src = R"(
local xs = {10, 20, 30}
xs[2] = 21
xs[4] = 40        -- append via size+1
print(xs[1], xs[2], xs[4], #xs, len(xs))
)";
  EXPECT_EQ(RunScript(src).output, "10\t21\t40\t4\t4\n");
}

TEST(Interp, ListsAreReferences) {
  const char* src = R"(
local a = {1}
local b = a
push(b, 2)
print(#a)
)";
  EXPECT_EQ(RunScript(src).output, "2\n");
}

TEST(Interp, ListIndexErrors) {
  EXPECT_EQ(ScriptError("local a = {1} print(a[0])").code, Errc::kScriptError);
  EXPECT_EQ(ScriptError("local a = {1} print(a[3])").code, Errc::kScriptError);
  EXPECT_EQ(ScriptError("local a = {1} a[5] = 1").code, Errc::kScriptError);
  EXPECT_EQ(ScriptError("local a = 1 print(a[1])").code, Errc::kScriptError);
}

TEST(Interp, UndefinedVariableIsError) {
  EXPECT_EQ(ScriptError("print(mystery)").code, Errc::kScriptError);
}

TEST(Interp, TypeErrorsAreReported) {
  EXPECT_EQ(ScriptError("print(1 + \"x\")").code, Errc::kScriptError);
  EXPECT_EQ(ScriptError("print(-\"x\")").code, Errc::kScriptError);
  EXPECT_EQ(ScriptError("print(#5)").code, Errc::kScriptError);
  EXPECT_EQ(ScriptError("print(1 < \"x\")").code, Errc::kScriptError);
}

// --- interpreter: statements -----------------------------------------------------

TEST(Interp, WhileLoopAndBreak) {
  const char* src = R"(
local i = 0
local total = 0
while true do
  i = i + 1
  if i > 10 then break end
  total = total + i
end
print(total)
)";
  EXPECT_EQ(RunScript(src).output, "55\n");
}

TEST(Interp, NumericForWithStep) {
  EXPECT_EQ(RunScript("local s = 0 for i = 10, 2, -2 do s = s + i end print(s)")
                .output,
            "30\n");
  EXPECT_EQ(RunScript("local s = 0 for i = 1, 0 do s = s + 1 end print(s)").output,
            "0\n");
  EXPECT_EQ(ScriptError("for i = 1, 5, 0 do end").code, Errc::kScriptError);
}

TEST(Interp, ScopingLocalsShadow) {
  const char* src = R"(
local x = 1
if true then
  local x = 2
  print(x)
end
print(x)
)";
  EXPECT_EQ(RunScript(src).output, "2\n1\n");
}

TEST(Interp, GlobalAssignmentFromNestedScope) {
  const char* src = R"(
if true then
  g = 42
end
print(g)
)";
  EXPECT_EQ(RunScript(src).output, "42\n");
}

TEST(Interp, FunctionsWithReturn) {
  const char* src = R"(
function add(a, b)
  return a + b
end
function fib(n)
  if n < 2 then return n end
  return fib(n - 1) + fib(n - 2)
end
print(add(2, 3), fib(10))
)";
  EXPECT_EQ(RunScript(src).output, "5\t55\n");
}

TEST(Interp, FunctionArityChecked) {
  EXPECT_EQ(ScriptError("function f(a) return a end print(f(1, 2))").code,
            Errc::kScriptError);
}

TEST(Interp, FunctionsDoNotSeeCallerBlockLocals) {
  // Top-level locals live in the global scope (there is no enclosing
  // function), but locals of an inner block must be invisible to called
  // functions.
  const char* src = R"(
function f()
  return hidden
end
if true then
  local hidden = 5
  print(f())
end
)";
  EXPECT_EQ(ScriptError(src).code, Errc::kScriptError);
}

TEST(Interp, FunctionsSeeGlobals) {
  const char* src = R"(
function f()
  return g + 1
end
g = 41
print(f())
)";
  EXPECT_EQ(RunScript(src).output, "42\n");
}

TEST(Interp, TopLevelReturnValue) {
  HostRegistry host;
  InstallStdlib(host);
  Interpreter interp(host);
  Result<ExecutionResult> r = interp.Run("return 6 * 7");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().return_value.is_number());
  EXPECT_DOUBLE_EQ(r.value().return_value.as_number(), 42.0);
}

// --- whitelist & resource limits ---------------------------------------------------

TEST(Interp, UnregisteredFunctionIsPermissionDenied) {
  // §II-A: only whitelisted functions may be called.
  const Error err = ScriptError("delete_all_files()");
  EXPECT_EQ(err.code, Errc::kPermissionDenied);
  EXPECT_NE(err.message.find("whitelist"), std::string::npos);
}

TEST(Interp, HostFunctionCallable) {
  HostRegistry extra;
  extra.Register("get_fake_readings",
                 [](std::span<const Value>) -> Result<Value> {
                   return Value::MakeList({Value(1.0), Value(2.0)});
                 });
  const ExecutionResult r =
      RunScript("local xs = get_fake_readings() print(mean(xs))", &extra);
  EXPECT_EQ(r.output, "1.5\n");
}

TEST(Interp, HostErrorsPropagateWithContext) {
  HostRegistry host;
  InstallStdlib(host);
  host.Register("get_broken", [](std::span<const Value>) -> Result<Value> {
    return Error{Errc::kTimeout, "sensor timed out"};
  });
  Interpreter interp(host);
  Result<ExecutionResult> r = interp.Run("get_broken()");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kTimeout);
  EXPECT_NE(r.error().message.find("get_broken"), std::string::npos);
}

TEST(Interp, CannotShadowHostFunctions) {
  EXPECT_EQ(ScriptError("function len(x) return 0 end").code,
            Errc::kScriptError);
}

TEST(Interp, InstructionBudgetKillsInfiniteLoop) {
  InterpreterOptions opts;
  opts.max_steps = 10'000;
  const Error err = ScriptError("while true do end", opts);
  EXPECT_EQ(err.code, Errc::kScriptError);
  EXPECT_NE(err.message.find("budget"), std::string::npos);
}

TEST(Interp, CallDepthLimited) {
  InterpreterOptions opts;
  opts.max_call_depth = 16;
  const Error err =
      ScriptError("function f(n) return f(n + 1) end print(f(0))", opts);
  EXPECT_EQ(err.code, Errc::kScriptError);
}

TEST(Interp, StepsReported) {
  const ExecutionResult r = RunScript("local x = 1 + 2");
  EXPECT_GT(r.steps, 0u);
  EXPECT_LT(r.steps, 100u);
}

// --- stdlib -------------------------------------------------------------------

TEST(Stdlib, MathHelpers) {
  EXPECT_EQ(RunScript("print(abs(-3), floor(2.7), ceil(2.2), sqrt(16))").output,
            "3\t2\t3\t4\n");
  EXPECT_EQ(RunScript("print(min(3, 1, 2), max(3, 1, 2))").output, "1\t3\n");
  EXPECT_EQ(ScriptError("print(sqrt(-1))").code, Errc::kScriptError);
}

TEST(Stdlib, Conversions) {
  EXPECT_EQ(RunScript("print(tostring(1.5), tonumber(\"2.5\") + 1)").output,
            "1.5\t3.5\n");
  EXPECT_EQ(RunScript("print(tonumber(\"abc\"))").output, "nil\n");
}

TEST(Stdlib, StatisticsOverLists) {
  const char* src = R"(
local xs = {2, 4, 4, 4, 5, 5, 7, 9}
print(mean(xs), variance(xs), stddev(xs))
)";
  EXPECT_EQ(RunScript(src).output, "5\t4\t2\n");
}

TEST(Stdlib, ArgumentValidation) {
  EXPECT_EQ(ScriptError("mean(5)").code, Errc::kScriptError);
  EXPECT_EQ(ScriptError("push(1, 2)").code, Errc::kScriptError);
  EXPECT_EQ(ScriptError("len()").code, Errc::kScriptError);
  EXPECT_EQ(ScriptError("abs(\"x\")").code, Errc::kScriptError);
}

}  // namespace
}  // namespace sor::script

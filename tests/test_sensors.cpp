// Unit tests for the sensor layer: buffered providers (shared-buffer energy
// saving, §II-A), the GPS provider, the Sensordrone Bluetooth dependency,
// and the SensorManager's routing + timeout cancellation.
#include <gtest/gtest.h>

#include "sensors/manager.hpp"
#include "sensors/providers.hpp"

namespace sor::sensors {
namespace {

// Deterministic scripted environment: value = base + t_seconds.
class FakeEnvironment final : public SensorEnvironment {
 public:
  double Sample(SensorKind kind, SimTime t) override {
    ++samples_;
    return static_cast<double>(static_cast<int>(kind)) * 100.0 + t.seconds();
  }
  GeoPoint Position(SimTime t) override {
    ++position_calls_;
    return GeoPoint{43.0 + t.seconds() * 1e-5, -76.0, 100.0 + t.seconds()};
  }
  int samples_ = 0;
  int position_calls_ = 0;
};

TEST(BufferedProvider, AcquiresRequestedSamples) {
  FakeEnvironment env;
  EmbeddedProvider p(SensorKind::kLight, env);
  Result<std::vector<Reading>> r =
      p.Acquire({SimTime{10'000}, SimDuration{4'000}, 5});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 5u);
  // Samples evenly spread over [t, t+Δt].
  EXPECT_EQ(r.value().front().time.ms, 10'000);
  EXPECT_EQ(r.value().back().time.ms, 14'000);
  EXPECT_EQ(r.value()[0].kind, SensorKind::kLight);
  EXPECT_EQ(p.stats().physical_acquisitions, 5u);
}

TEST(BufferedProvider, SingleSampleAtWindowStart) {
  FakeEnvironment env;
  EmbeddedProvider p(SensorKind::kLight, env);
  Result<std::vector<Reading>> r =
      p.Acquire({SimTime{5'000}, SimDuration{10'000}, 1});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].time.ms, 5'000);
}

TEST(BufferedProvider, SharedBufferServesOverlappingTasks) {
  // Two tasks requesting the same window: the second is served from the
  // buffer (light freshness = 3 s), saving sensor energy.
  FakeEnvironment env;
  EmbeddedProvider p(SensorKind::kLight, env);
  ASSERT_TRUE(p.Acquire({SimTime{10'000}, SimDuration{2'000}, 3}).ok());
  const auto before = p.stats().physical_acquisitions;
  ASSERT_TRUE(p.Acquire({SimTime{10'500}, SimDuration{2'000}, 3}).ok());
  EXPECT_EQ(p.stats().physical_acquisitions, before);  // all buffered
  EXPECT_EQ(p.stats().buffered_hits, 3u);
}

TEST(BufferedProvider, StaleBufferNotReused) {
  FakeEnvironment env;
  EmbeddedProvider p(SensorKind::kAccelerometer, env);  // freshness 100 ms
  ASSERT_TRUE(p.Acquire({SimTime{0}, SimDuration{0}, 1}).ok());
  ASSERT_TRUE(p.Acquire({SimTime{1'000}, SimDuration{0}, 1}).ok());
  EXPECT_EQ(p.stats().physical_acquisitions, 2u);
  EXPECT_EQ(p.stats().buffered_hits, 0u);
}

TEST(BufferedProvider, FreshnessVariesByKind) {
  EXPECT_LT(EmbeddedProvider::DefaultFreshness(SensorKind::kAccelerometer),
            EmbeddedProvider::DefaultFreshness(SensorKind::kDroneTemperature));
}

TEST(BufferedProvider, InvalidRequestsRejected) {
  FakeEnvironment env;
  EmbeddedProvider p(SensorKind::kLight, env);
  EXPECT_FALSE(p.Acquire({SimTime{0}, SimDuration{1'000}, 0}).ok());
  EXPECT_FALSE(p.Acquire({SimTime{0}, SimDuration{-5}, 1}).ok());
  EXPECT_EQ(p.stats().failures, 2u);
}

TEST(BufferedProvider, TrimBufferDropsOldReadings) {
  FakeEnvironment env;
  EmbeddedProvider p(SensorKind::kLight, env);
  ASSERT_TRUE(p.Acquire({SimTime{0}, SimDuration{1'000}, 4}).ok());
  EXPECT_EQ(p.buffer_size(), 4u);
  p.TrimBuffer(SimTime{900});
  EXPECT_EQ(p.buffer_size(), 1u);
}

TEST(GpsProvider, ReadingsCarryLocationFixes) {
  FakeEnvironment env;
  GpsProvider p(env);
  Result<std::vector<Reading>> r =
      p.Acquire({SimTime{60'000}, SimDuration{30'000}, 3});
  ASSERT_TRUE(r.ok());
  for (const Reading& reading : r.value()) {
    ASSERT_TRUE(reading.location.has_value());
    EXPECT_GT(reading.location->lat_deg, 42.9);
    EXPECT_DOUBLE_EQ(reading.value, reading.location->alt_m);
  }
  EXPECT_EQ(env.position_calls_, 3);
}

TEST(Sensordrone, RequiresPairing) {
  FakeEnvironment env;
  BluetoothLink link;  // not paired
  SensordroneProvider p(SensorKind::kDroneTemperature, env, link);
  Result<std::vector<Reading>> r =
      p.Acquire({SimTime{0}, SimDuration{1'000}, 2});
  EXPECT_EQ(r.code(), Errc::kUnavailable);
  EXPECT_EQ(p.stats().failures, 1u);

  link.Pair();
  EXPECT_TRUE(p.Acquire({SimTime{0}, SimDuration{1'000}, 2}).ok());
  link.Unpair();
  EXPECT_FALSE(p.Acquire({SimTime{60'000}, SimDuration{1'000}, 2}).ok());
}

TEST(Factory, CoversEveryKind) {
  FakeEnvironment env;
  BluetoothLink link;
  link.Pair();
  for (int k = 0; k < kSensorKindCount; ++k) {
    const auto kind = static_cast<SensorKind>(k);
    auto p = MakeProvider(kind, env, link);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), kind);
    EXPECT_TRUE(p->Acquire({SimTime{0}, SimDuration{1'000}, 1}).ok())
        << to_string(kind);
  }
}

TEST(Manager, RoutesToRegisteredProvider) {
  FakeEnvironment env;
  BluetoothLink link;
  link.Pair();
  SensorManager manager;
  manager.RegisterProvider(MakeProvider(SensorKind::kLight, env, link));
  EXPECT_TRUE(manager.Supports(SensorKind::kLight));
  EXPECT_FALSE(manager.Supports(SensorKind::kWifi));
  Result<std::vector<Reading>> r =
      manager.Acquire(SensorKind::kLight, {SimTime{0}, SimDuration{0}, 1});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(manager.Acquire(SensorKind::kWifi,
                            {SimTime{0}, SimDuration{0}, 1})
                .code(),
            Errc::kUnavailable);
}

TEST(Manager, TimeoutCancelsSlowProviders) {
  FakeEnvironment env;
  SensorManager manager;
  manager.RegisterProvider(std::make_unique<GpsProvider>(env));  // 800 ms
  // Tight timeout: the acquisition is cancelled (§II-A).
  Result<std::vector<Reading>> r = manager.Acquire(
      SensorKind::kGps, {SimTime{0}, SimDuration{0}, 1}, SimDuration{100});
  EXPECT_EQ(r.code(), Errc::kTimeout);
  EXPECT_EQ(manager.timeouts(), 1u);
  EXPECT_EQ(env.position_calls_, 0);  // sensor never touched
  // Generous timeout: fine.
  EXPECT_TRUE(manager
                  .Acquire(SensorKind::kGps,
                           {SimTime{0}, SimDuration{0}, 1},
                           SimDuration{5'000})
                  .ok());
}

TEST(Manager, ReplacingProviderKeepsLatest) {
  FakeEnvironment env;
  BluetoothLink link;
  SensorManager manager;
  manager.RegisterProvider(MakeProvider(SensorKind::kLight, env, link));
  manager.RegisterProvider(MakeProvider(SensorKind::kLight, env, link));
  EXPECT_EQ(manager.SupportedKinds().size(), 1u);
}

}  // namespace
}  // namespace sor::sensors

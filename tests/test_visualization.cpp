// Tests for the Visualization module's renderers (src/server/
// visualization.hpp) and the JSON exporters (src/server/json_export.hpp):
// degenerate inputs first (an app nobody sensed for, a single sample), then
// the real thing — exports of a post-chaos campaign's feature matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "net/fault_injector.hpp"
#include "rank/personalizable_ranker.hpp"
#include "server/json_export.hpp"
#include "server/visualization.hpp"

namespace sor {
namespace {

rank::FeatureMatrix EmptyMatrix() { return rank::FeatureMatrix{}; }

// One place, one feature, one (robust-mean) sample value.
rank::FeatureMatrix SingleSampleMatrix() {
  rank::FeatureMatrix m({"Lonely Cafe"},
                        {{"noise [dB]", rank::PrefDirection::kMinimize, 0.0}});
  m.set(0, 0, 48.25);
  return m;
}

// ------------------------------------------------------------- empty app

TEST(Visualization, EmptyMatrixRendersNothingButStaysWellFormed) {
  const rank::FeatureMatrix m = EmptyMatrix();
  EXPECT_EQ(server::RenderFeatureBars(m), "");
  EXPECT_EQ(server::RenderFeatureCsv(m), "place\n");
  const std::string table = server::RenderRankingTable(m, {});
  EXPECT_EQ(table, "User    \n");  // header only, no place columns
}

TEST(JsonExport, EmptyMatrixIsValidJson) {
  const std::string json = server::RenderFeatureJson(EmptyMatrix());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"places\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"features\":[]"), std::string::npos);

  const std::string rankings =
      server::RenderRankingJson(EmptyMatrix(), {});
  EXPECT_NE(rankings.find("\"rankings\":[]"), std::string::npos);
}

// ---------------------------------------------------------- single sample

TEST(Visualization, SingleSampleBarsAndCsv) {
  const rank::FeatureMatrix m = SingleSampleMatrix();
  const std::string bars = server::RenderFeatureBars(m);
  EXPECT_NE(bars.find("noise [dB]"), std::string::npos);
  EXPECT_NE(bars.find("Lonely Cafe"), std::string::npos);
  EXPECT_NE(bars.find("48.250"), std::string::npos);
  // A lone value spans the whole bar (span == 0 → full fill).
  EXPECT_NE(bars.find("|########################################|"),
            std::string::npos);

  EXPECT_EQ(server::RenderFeatureCsv(m),
            "place,noise [dB]\nLonely Cafe,48.25\n");
}

TEST(JsonExport, SingleSampleValuesAndEscaping) {
  const std::string json = server::RenderFeatureJson(SingleSampleMatrix());
  EXPECT_NE(json.find("\"Lonely Cafe\""), std::string::npos);
  EXPECT_NE(json.find("48.25"), std::string::npos);

  EXPECT_EQ(server::JsonEscape("plain"), "plain");
  EXPECT_EQ(server::JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(Visualization, SingleUserRankingTable) {
  const rank::FeatureMatrix m = SingleSampleMatrix();
  const rank::PersonalizableRanker ranker(m);
  rank::UserProfile profile;
  profile.name = "Solo";
  profile.prefs = {rank::FeaturePreference::PreferMin(5)};
  Result<rank::RankingOutcome> outcome =
      ranker.Rank(profile, rank::AggregationMethod::kFootruleMcmf);
  ASSERT_TRUE(outcome.ok()) << outcome.error().str();

  const std::string table = server::RenderRankingTable(
      m, {{profile.name, outcome.value().final_ranking}});
  EXPECT_NE(table.find("No. 1"), std::string::npos);
  EXPECT_NE(table.find("Solo"), std::string::npos);
  EXPECT_NE(table.find("Lonely Cafe"), std::string::npos);

  const std::string explain =
      server::RenderRankingExplanation(m, outcome.value());
  EXPECT_NE(explain.find("=> final: Lonely Cafe"), std::string::npos);
}

// ------------------------------------------------------------- post-chaos

// A campaign that survived a lossy wire must still export a complete,
// well-formed feature matrix: every place row present, every feature
// column populated, and the JSON/CSV/bars views consistent with it.
TEST(Visualization, PostChaosExportsAreComplete) {
  world::Scenario scenario = world::MakeCoffeeShopScenario();
  scenario.period_s = 600.0;

  core::FieldTestConfig config;
  config.budget_per_user = 10;
  config.n_instants = 60;
  config.sigma_s = 60.0;
  net::FaultRule lossy;
  lossy.drop = 0.25;
  lossy.corrupt = 0.15;
  lossy.duplicate = 0.15;
  config.chaos_rules = {lossy};
  config.chaos_seed = 11;

  core::System system;
  Result<core::FieldTestResult> run =
      system.RunFieldTest(scenario, config);
  ASSERT_TRUE(run.ok()) << run.error().str();
  const rank::FeatureMatrix& m = run.value().matrix;
  ASSERT_EQ(m.num_places(), static_cast<int>(scenario.places.size()));
  ASSERT_GT(m.num_features(), 0);

  const std::string csv = server::RenderFeatureCsv(m);
  // Header + one line per place.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            m.num_places() + 1);
  for (const std::string& place : m.place_names())
    EXPECT_NE(csv.find(place), std::string::npos) << place;

  const std::string bars = server::RenderFeatureBars(m);
  for (const auto& f : m.features())
    EXPECT_NE(bars.find(f.name), std::string::npos) << f.name;

  const std::string json = server::RenderFeatureJson(m);
  for (const std::string& place : m.place_names())
    EXPECT_NE(json.find(server::JsonEscape(place)), std::string::npos);

  std::vector<std::pair<std::string, rank::Ranking>> table;
  for (const auto& [user, outcome] : run.value().rankings)
    table.emplace_back(user, outcome.final_ranking);
  ASSERT_FALSE(table.empty());
  const std::string rankings_json = server::RenderRankingJson(m, table);
  for (const auto& [user, _] : table)
    EXPECT_NE(rankings_json.find("\"" + server::JsonEscape(user) + "\""),
              std::string::npos);
  const std::string rendered = server::RenderRankingTable(m, table);
  EXPECT_NE(rendered.find("No. " + std::to_string(m.num_places())),
            std::string::npos);
}

}  // namespace
}  // namespace sor

// Unit + property tests for the §III scheduler: the coverage model (Eq. 1),
// the budget matroid (Theorem 1's axioms), Algorithm 1 and its variants
// (identical objectives), the 1/2-approximation bound against brute force,
// and the §V-C baseline.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "sched/baseline.hpp"
#include "sched/brute_force.hpp"
#include "sched/greedy.hpp"
#include "sched/incremental.hpp"
#include "sched/matroid.hpp"

namespace sor::sched {
namespace {

Problem SmallProblem(int n_instants, double period_s, double sigma_s) {
  return Problem::UniformGrid(period_s, n_instants, sigma_s);
}

void AddUser(Problem& p, double arrive_s, double leave_s, int budget) {
  p.users.push_back(UserWindow{
      SimInterval{SimTime::FromSeconds(arrive_s),
                  SimTime::FromSeconds(leave_s)},
      budget});
}

// --- coverage model ------------------------------------------------------------

TEST(Kernel, GaussianShape) {
  const CoverageKernel k(10.0, 10.0, 5.0);
  EXPECT_DOUBLE_EQ(k.at(0), 1.0);
  // One grid step = 10 s = 1 sigma: exp(-0.5).
  EXPECT_NEAR(k.at(1), std::exp(-0.5), 1e-12);
  EXPECT_NEAR(k.at(2), std::exp(-2.0), 1e-12);
  // Beyond support: exactly zero.
  EXPECT_DOUBLE_EQ(k.at(k.support() + 1), 0.0);
  EXPECT_EQ(k.support(), 5);
}

TEST(Kernel, SigmaScalesSupport) {
  const CoverageKernel narrow(10.0, 10.0, 5.0);
  const CoverageKernel wide(60.0, 10.0, 5.0);
  EXPECT_GT(wide.support(), narrow.support());
  EXPECT_GT(wide.at(3), narrow.at(3));
}

TEST(Coverage, SingleMeasurementObjective) {
  // Eq. (1) with one measurement: coverage at j is p(t_i, t_j); objective
  // is the sum of kernel values over the support.
  Problem p = SmallProblem(21, 210.0, 10.0);
  AddUser(p, 0, 210, 1);
  Schedule s = Schedule::Empty(1);
  s.per_user[0] = {10};  // middle instant
  const CoverageEvaluator eval(p);
  double expected = 1.0;  // d = 0
  for (int d = 1; d <= eval.kernel().support(); ++d)
    expected += 2.0 * eval.kernel().at(d);
  EXPECT_NEAR(eval.CombinedObjective(s), expected, 1e-9);
}

TEST(Coverage, ProbabilisticUnionNeverExceedsCount) {
  Problem p = SmallProblem(50, 500.0, 10.0);
  AddUser(p, 0, 500, 5);
  Schedule s = Schedule::Empty(1);
  s.per_user[0] = {10, 11, 12, 13, 14};  // clustered
  const CoverageEvaluator eval(p);
  const double obj = eval.CombinedObjective(s);
  EXPECT_GT(obj, 0.0);
  EXPECT_LE(obj, 50.0);  // can't exceed the number of instants
  // Spread schedule covers strictly more than the clustered one.
  Schedule spread = Schedule::Empty(1);
  spread.per_user[0] = {5, 15, 25, 35, 45};
  EXPECT_GT(eval.CombinedObjective(spread), obj);
}

TEST(Coverage, PerUserSumDoubleCountsSharedInstants) {
  Problem p = SmallProblem(20, 200.0, 10.0);
  AddUser(p, 0, 200, 1);
  AddUser(p, 0, 200, 1);
  Schedule s = Schedule::Empty(2);
  s.per_user[0] = {10};
  s.per_user[1] = {10};
  const CoverageEvaluator eval(p);
  // Per-user-sum (Eq. 2) counts both; combined saturates via Eq. 1.
  EXPECT_GT(eval.PerUserSumObjective(s), eval.CombinedObjective(s));
}

TEST(Coverage, AverageCoverageNormalized) {
  Problem p = SmallProblem(10, 100.0, 10.0);
  AddUser(p, 0, 100, 10);
  Schedule s = Schedule::Empty(1);
  for (int i = 0; i < 10; ++i) s.per_user[0].push_back(i);
  const CoverageEvaluator eval(p);
  const double avg = eval.AverageCoverage(s);
  EXPECT_GT(avg, 0.9);
  EXPECT_LE(avg, 1.0);
}

TEST(Problem, UserInstantsRespectWindow) {
  Problem p = SmallProblem(10, 100.0, 10.0);  // instants at 10,20,...,100
  AddUser(p, 25, 55, 3);
  const std::vector<int> instants = p.UserInstants(0);
  // instants within [25s, 55s]: 30,40,50 -> indices 2,3,4.
  EXPECT_EQ(instants, (std::vector<int>{2, 3, 4}));
}

TEST(Problem, ValidationCatchesBadInstances) {
  Problem p;
  EXPECT_FALSE(p.Validate().ok());  // empty grid
  p = SmallProblem(5, 50, 10);
  p.sigma_s = -1;
  EXPECT_FALSE(p.Validate().ok());
  p = SmallProblem(5, 50, 10);
  AddUser(p, 10, 5, 1);  // leave before arrive
  EXPECT_FALSE(p.Validate().ok());
  p = SmallProblem(5, 50, 10);
  AddUser(p, 0, 50, -2);
  EXPECT_FALSE(p.Validate().ok());
}

// --- matroid -------------------------------------------------------------------

TEST(Matroid, IndependenceOracle) {
  Problem p = SmallProblem(10, 100.0, 10.0);
  AddUser(p, 0, 100, 2);
  AddUser(p, 45, 100, 1);
  BudgetMatroid m(p);
  EXPECT_TRUE(m.CanAdd({0, 0}));
  EXPECT_FALSE(m.CanAdd({1, 0}));  // instant 0 (t=10s) before user 1 arrives
  EXPECT_TRUE(m.CanAdd({1, 5}));
  m.Add({0, 0});
  m.Add({0, 5});
  EXPECT_FALSE(m.CanAdd({0, 7}));  // budget 2 exhausted
  m.Remove({0, 5});
  EXPECT_TRUE(m.CanAdd({0, 7}));
}

TEST(Matroid, InstantFeasibleAndPickUser) {
  Problem p = SmallProblem(10, 100.0, 10.0);
  AddUser(p, 0, 100, 1);
  AddUser(p, 0, 100, 3);
  BudgetMatroid m(p);
  // User 1 has more remaining budget: deterministic pick.
  EXPECT_EQ(m.PickUserFor(4), 1);
  m.Add({1, 4});
  m.Add({1, 5});
  m.Add({1, 6});
  EXPECT_EQ(m.PickUserFor(4), 0);  // user 1 exhausted
  m.Add({0, 0});
  EXPECT_FALSE(m.InstantFeasible(4));
  EXPECT_FALSE(m.InstantFeasible(-1));
}

// Property: the matroid exchange axiom holds on the (user, instant) ground
// set — for independent sets |X| > |Y| there is an element of X \ Y whose
// addition keeps Y independent. (Theorem 1 in executable form.)
TEST(Matroid, ExchangePropertyOnRandomInstances) {
  Rng rng(17);
  for (int round = 0; round < 200; ++round) {
    Problem p = SmallProblem(6, 60.0, 10.0);
    const int K = 2 + static_cast<int>(rng.uniform_int(0, 1));
    for (int k = 0; k < K; ++k) {
      const double a = rng.uniform(0, 40);
      AddUser(p, a, a + rng.uniform(10, 60),
              static_cast<int>(rng.uniform_int(1, 3)));
    }
    // Ground set.
    std::vector<Assignment> ground;
    for (int k = 0; k < p.num_users(); ++k) {
      for (int i : p.UserInstants(k)) ground.push_back({k, i});
    }
    if (ground.size() > 12) continue;  // keep enumeration cheap

    auto independent = [&](std::uint32_t mask) {
      std::vector<int> used(static_cast<std::size_t>(p.num_users()), 0);
      for (std::size_t e = 0; e < ground.size(); ++e) {
        if (mask & (1u << e)) {
          if (++used[static_cast<std::size_t>(ground[e].user)] >
              p.users[static_cast<std::size_t>(ground[e].user)].budget)
            return false;
        }
      }
      return true;
    };

    const std::uint32_t limit = 1u << ground.size();
    for (std::uint32_t x = 0; x < limit; ++x) {
      if (!independent(x)) continue;
      for (std::uint32_t y = 0; y < limit; ++y) {
        if (!independent(y)) continue;
        if (std::popcount(x) <= std::popcount(y)) continue;
        bool exchangeable = false;
        for (std::size_t e = 0; e < ground.size(); ++e) {
          const std::uint32_t bit = 1u << e;
          if ((x & bit) && !(y & bit) && independent(y | bit)) {
            exchangeable = true;
            break;
          }
        }
        ASSERT_TRUE(exchangeable) << "round " << round;
      }
    }
  }
}

// --- greedy variants ----------------------------------------------------------

TEST(Greedy, RespectsBudgetsAndWindows) {
  Problem p = SmallProblem(30, 300.0, 10.0);
  AddUser(p, 0, 150, 3);
  AddUser(p, 100, 300, 5);
  Result<ScheduleResult> r = GreedySchedule(p);
  ASSERT_TRUE(r.ok());
  const Schedule& s = r.value().schedule;
  EXPECT_LE(s.per_user[0].size(), 3u);
  EXPECT_LE(s.per_user[1].size(), 5u);
  for (int i : s.per_user[0]) {
    EXPECT_TRUE(p.users[0].presence.contains(p.grid[i]));
  }
  for (int i : s.per_user[1]) {
    EXPECT_TRUE(p.users[1].presence.contains(p.grid[i]));
  }
  // No duplicate instants within one user's schedule.
  std::set<int> uniq(s.per_user[0].begin(), s.per_user[0].end());
  EXPECT_EQ(uniq.size(), s.per_user[0].size());
}

TEST(Greedy, ExhaustsBudgetWhenBeneficial) {
  Problem p = SmallProblem(50, 500.0, 10.0);
  AddUser(p, 0, 500, 5);
  Result<ScheduleResult> r = GreedySchedule(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schedule.per_user[0].size(), 5u);
}

TEST(Greedy, SpreadsMeasurements) {
  Problem p = SmallProblem(100, 1'000.0, 10.0);
  AddUser(p, 0, 1'000, 4);
  Result<ScheduleResult> r = GreedySchedule(p);
  ASSERT_TRUE(r.ok());
  const auto& phi = r.value().schedule.per_user[0];
  ASSERT_EQ(phi.size(), 4u);
  // Adjacent picks should be far apart (roughly N/4 instants).
  for (std::size_t i = 1; i < phi.size(); ++i)
    EXPECT_GT(phi[i] - phi[i - 1], 10);
}

TEST(Greedy, VariantsAgreeOnObjective) {
  Rng rng(23);
  for (int round = 0; round < 10; ++round) {
    Problem p = SmallProblem(60, 600.0, 10.0);
    const int K = 1 + static_cast<int>(rng.uniform_int(0, 4));
    for (int k = 0; k < K; ++k) {
      const double a = rng.uniform(0, 500);
      AddUser(p, a, a + rng.uniform(30, 600 - a),
              static_cast<int>(rng.uniform_int(1, 6)));
    }
    Result<ScheduleResult> eager = GreedySchedule(p);
    Result<ScheduleResult> naive = GreedyScheduleNaive(p);
    Result<ScheduleResult> lazy = LazyGreedySchedule(p);
    ASSERT_TRUE(eager.ok());
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(lazy.ok());
    EXPECT_NEAR(eager.value().objective, naive.value().objective, 1e-9)
        << "round " << round;
    EXPECT_NEAR(eager.value().objective, lazy.value().objective, 1e-6)
        << "round " << round;
  }
}

TEST(Greedy, LazyEvaluationSavesWorkAtScale) {
  // On tiny instances the lazy heap's refresh overhead can exceed its
  // savings; on paper-scale instances it must win decisively.
  Problem p = Problem::UniformGrid(10'800.0, 1'080, 10.0);
  Rng rng(5);
  for (int k = 0; k < 20; ++k) {
    const double a = rng.uniform(0, 9'000);
    AddUser(p, a, rng.uniform(a, 10'800), 17);
  }
  Result<ScheduleResult> naive = GreedyScheduleNaive(p);
  Result<ScheduleResult> lazy = LazyGreedySchedule(p);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(lazy.ok());
  // At this scale exact gain ties are common (symmetric kernel over a
  // uniform grid) and the two variants may break them differently; allow a
  // 0.2% relative difference in the objective.
  EXPECT_NEAR(naive.value().objective, lazy.value().objective,
              naive.value().objective * 0.002);
  EXPECT_LT(lazy.value().gain_evaluations,
            naive.value().gain_evaluations / 10);
}

TEST(Greedy, EmptyUsersProducesEmptySchedule) {
  Problem p = SmallProblem(10, 100.0, 10.0);
  Result<ScheduleResult> r = GreedySchedule(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schedule.total_measurements(), 0);
  EXPECT_DOUBLE_EQ(r.value().objective, 0.0);
}

TEST(Greedy, ZeroBudgetUserGetsNothing) {
  Problem p = SmallProblem(10, 100.0, 10.0);
  AddUser(p, 0, 100, 0);
  AddUser(p, 0, 100, 2);
  Result<ScheduleResult> r = GreedySchedule(p);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().schedule.per_user[0].empty());
  EXPECT_EQ(r.value().schedule.per_user[1].size(), 2u);
}

// Property: the 1/2-approximation guarantee versus brute force on every
// enumerable instance. (Greedy over a matroid: f(greedy) >= OPT/2.)
class GreedyApproximationTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyApproximationTest, AtLeastHalfOfOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 3);
  for (int round = 0; round < 25; ++round) {
    Problem p = SmallProblem(5 + GetParam() % 3, 60.0, 12.0);
    const int K = 1 + static_cast<int>(rng.uniform_int(0, 2));
    for (int k = 0; k < K; ++k) {
      const double a = rng.uniform(0, 40);
      AddUser(p, a, a + rng.uniform(10, 60), 1 + (round + k) % 3);
    }
    Result<ScheduleResult> optimal = BruteForceOptimalSchedule(p, 14);
    if (!optimal.ok()) continue;  // ground set too large: skip
    Result<ScheduleResult> greedy = GreedySchedule(p);
    ASSERT_TRUE(greedy.ok());
    EXPECT_GE(greedy.value().objective,
              0.5 * optimal.value().objective - 1e-9)
        << "round " << round;
    // Sanity: greedy never exceeds the optimum.
    EXPECT_LE(greedy.value().objective,
              optimal.value().objective + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyApproximationTest,
                         ::testing::Values(1, 2, 3, 4));

// In practice greedy is near-optimal on these instances, far above 1/2.
TEST(Greedy, EmpiricallyCloseToOptimum) {
  Rng rng(77);
  double worst_ratio = 1.0;
  for (int round = 0; round < 20; ++round) {
    Problem p = SmallProblem(6, 60.0, 10.0);
    AddUser(p, rng.uniform(0, 20), 60, 2);
    AddUser(p, rng.uniform(0, 30), 60, 1);
    Result<ScheduleResult> optimal = BruteForceOptimalSchedule(p, 14);
    if (!optimal.ok() || optimal.value().objective <= 0) continue;
    Result<ScheduleResult> greedy = GreedySchedule(p);
    ASSERT_TRUE(greedy.ok());
    worst_ratio = std::min(
        worst_ratio, greedy.value().objective / optimal.value().objective);
  }
  // The theoretical floor is 0.5; observed worst case on these instances
  // stays well above it.
  EXPECT_GT(worst_ratio, 0.8);
}

// --- baseline ------------------------------------------------------------------

TEST(Baseline, SensesEveryTenSecondsFromArrival) {
  Problem p = SmallProblem(30, 300.0, 10.0);  // instants every 10 s
  AddUser(p, 50, 300, 4);
  Result<ScheduleResult> r = PeriodicBaselineSchedule(p);
  ASSERT_TRUE(r.ok());
  // Arrival at 50 s: first instants at/after 50,60,70,80 -> indices 4..7.
  EXPECT_EQ(r.value().schedule.per_user[0], (std::vector<int>{4, 5, 6, 7}));
}

TEST(Baseline, StopsAtLeaveTime) {
  Problem p = SmallProblem(30, 300.0, 10.0);
  AddUser(p, 0, 25, 10);  // leaves after 25 s
  Result<ScheduleResult> r = PeriodicBaselineSchedule(p);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.value().schedule.per_user[0].size(), 3u);
  for (int i : r.value().schedule.per_user[0]) {
    EXPECT_LE(p.grid[i].seconds(), 25.0);
  }
}

TEST(Baseline, GreedyBeatsBaselineOnPaperSetup) {
  Rng rng(2014);
  Problem p = Problem::UniformGrid(10'800.0, 1'080, 10.0);
  for (int k = 0; k < 20; ++k) {
    const double a = rng.uniform(0, 10'800);
    AddUser(p, a, rng.uniform(a, 10'800), 17);
  }
  Result<ScheduleResult> greedy = GreedySchedule(p);
  Result<ScheduleResult> base = PeriodicBaselineSchedule(p);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(base.ok());
  EXPECT_GT(greedy.value().objective, base.value().objective);
  // §V-C reports an average improvement of ~65%; demand at least 20% here.
  EXPECT_GT(greedy.value().objective, 1.2 * base.value().objective);
}

TEST(Baseline, InvalidIntervalRejected) {
  Problem p = SmallProblem(5, 50.0, 10.0);
  AddUser(p, 0, 50, 1);
  PeriodicBaselineOptions opts;
  opts.interval_s = 0;
  EXPECT_FALSE(PeriodicBaselineSchedule(p, opts).ok());
}

// --- brute force ----------------------------------------------------------------

TEST(BruteForce, MatchesHandComputedTinyInstance) {
  // 3 instants, 1 user, budget 1: optimum takes the middle instant.
  Problem p = SmallProblem(3, 30.0, 10.0);
  AddUser(p, 0, 30, 1);
  Result<ScheduleResult> r = BruteForceOptimalSchedule(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schedule.per_user[0], (std::vector<int>{1}));
}

TEST(BruteForce, RefusesLargeGroundSets) {
  Problem p = SmallProblem(30, 300.0, 10.0);
  AddUser(p, 0, 300, 5);
  EXPECT_FALSE(BruteForceOptimalSchedule(p, 10).ok());
}

// --- delta placement + the incremental planner ------------------------------

// Random delta instance: K users with random windows and budgets.
Problem RandomDelta(Rng& rng, int n_instants, double period_s) {
  Problem p = SmallProblem(n_instants, period_s, 10.0);
  const int K = 1 + static_cast<int>(rng.uniform_int(0, 3));
  for (int k = 0; k < K; ++k) {
    const double a = rng.uniform(0, period_s * 0.8);
    AddUser(p, a, a + rng.uniform(30, period_s - a),
            1 + static_cast<int>(rng.uniform_int(0, 5)));
  }
  return p;
}

TEST(Greedy, EagerAndLazyDeltaPickParity) {
  // --scheduler greedy and --scheduler lazy must commit the SAME picks in
  // the SAME order — the lazy heap is an efficiency change only. Checked
  // over two delta waves so the second wave places against nontrivial
  // residual coverage, where stale heap entries actually occur.
  Rng rng(71);
  for (int round = 0; round < 10; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::vector<double> q_eager(60, 1.0);
    std::vector<double> q_lazy = q_eager;
    std::vector<double> q_oracle = q_eager;
    Rng wave_rng = rng.fork();
    for (int wave = 0; wave < 2; ++wave) {
      SCOPED_TRACE("wave " + std::to_string(wave));
      const Problem p = RandomDelta(wave_rng, 60, 600.0);
      Result<ScheduleResult> eager = GreedyPlaceDelta(p, q_eager);
      Result<ScheduleResult> lazy =
          LazyGreedyPlaceDelta(p, q_lazy, /*full_grid_candidates=*/false);
      Result<ScheduleResult> oracle =
          LazyGreedyPlaceDelta(p, q_oracle, /*full_grid_candidates=*/true);
      ASSERT_TRUE(eager.ok());
      ASSERT_TRUE(lazy.ok());
      ASSERT_TRUE(oracle.ok());
      // Identical commit sequences...
      EXPECT_EQ(eager.value().insertion_order, lazy.value().insertion_order);
      EXPECT_EQ(lazy.value().insertion_order, oracle.value().insertion_order);
      // ...and bitwise-identical residual coverage carried to the next wave.
      EXPECT_EQ(q_eager, q_lazy);
      EXPECT_EQ(q_lazy, q_oracle);
      // The windowed heap seeding may only SAVE evaluations.
      EXPECT_LE(lazy.value().gain_evaluations,
                oracle.value().gain_evaluations);
    }
  }
}

IncrementalPlanner::Options PlannerOpts(bool incremental,
                                        double rebuild_fraction = 0.25) {
  IncrementalPlanner::Options o;
  o.sigma_s = 10.0;
  o.incremental = incremental;
  o.rebuild_fraction = rebuild_fraction;
  return o;
}

// Drive two planners through an identical churn history and require
// byte-identical observable state after every delta.
void ExpectLockstep(IncrementalPlanner& a, IncrementalPlanner& b,
                    std::uint64_t seed, std::int64_t first_member) {
  Rng rng(seed);
  std::vector<std::int64_t> active;
  std::int64_t next_member = first_member;
  for (int round = 0; round < 8; ++round) {
    SCOPED_TRACE("delta round " + std::to_string(round));
    std::vector<IncrementalPlanner::Leave> leaves;
    for (std::size_t i = 0; i < active.size();) {
      if (rng.uniform(0, 1) < 0.3) {
        leaves.push_back(
            {active[i], SimTime::FromSeconds(rng.uniform(0, 600))});
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    std::vector<IncrementalPlanner::Join> joins;
    const int arriving = 1 + static_cast<int>(rng.uniform_int(0, 2));
    for (int k = 0; k < arriving; ++k) {
      const double arrive = rng.uniform(0, 500);
      joins.push_back({next_member,
                       SimInterval{SimTime::FromSeconds(arrive),
                                   SimTime::FromSeconds(
                                       arrive + rng.uniform(30, 600 - arrive))},
                       1 + static_cast<int>(rng.uniform_int(0, 5))});
      active.push_back(next_member++);
    }
    Result<IncrementalPlanner::DeltaResult> ra = a.ApplyDelta(leaves, joins);
    Result<IncrementalPlanner::DeltaResult> rb = b.ApplyDelta(leaves, joins);
    ASSERT_TRUE(ra.ok()) << ra.error().str();
    ASSERT_TRUE(rb.ok()) << rb.error().str();
    // Bitwise: objective, pruned rows, every member's plan, total coverage.
    EXPECT_EQ(ra.value().objective, rb.value().objective);
    ASSERT_EQ(ra.value().pruned.size(), rb.value().pruned.size());
    for (const auto& [member, picks] : ra.value().pruned) {
      auto it = rb.value().pruned.find(member);
      ASSERT_NE(it, rb.value().pruned.end()) << "member " << member;
      ASSERT_EQ(picks.size(), it->second.size());
      for (std::size_t i = 0; i < picks.size(); ++i) {
        EXPECT_EQ(picks[i].instant, it->second[i].instant);
        EXPECT_EQ(picks[i].seq, it->second[i].seq);
      }
    }
    EXPECT_EQ(a.Members(), b.Members());
    for (std::int64_t m : active) EXPECT_EQ(a.PlanOf(m), b.PlanOf(m));
    EXPECT_EQ(a.total_coverage(), b.total_coverage());
  }
}

TEST(Incremental, ChurnMatchesColdReplanOracle) {
  // The tentpole parity contract: incremental q maintenance + windowed heap
  // seeding produce bit-for-bit the plans of a full cold replan from the
  // commit log, across random join/leave churn.
  std::vector<SimTime> grid = Problem::UniformGrid(600.0, 60, 10.0).grid;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    IncrementalPlanner inc(grid, PlannerOpts(true));
    IncrementalPlanner oracle(grid, PlannerOpts(false));
    ExpectLockstep(inc, oracle, seed, 100);
  }
}

TEST(Incremental, LeaveRepairModesBitwiseEqual) {
  // Support-local factor gathering vs full-log replay are the same bits —
  // only the cost differs. rebuild_fraction 0 forces replay on every leave;
  // a huge fraction forces local repair always.
  std::vector<SimTime> grid = Problem::UniformGrid(600.0, 60, 10.0).grid;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    IncrementalPlanner always_rebuild(grid, PlannerOpts(true, 0.0));
    IncrementalPlanner always_local(grid, PlannerOpts(true, 1e9));
    ExpectLockstep(always_rebuild, always_local, seed, 300);
  }
}

TEST(Incremental, RestoreRebuildsEquivalentState) {
  // A planner restored from durable picks (RestoreMember/RestoreCommit/
  // FinishRestore) must behave bitwise like the uninterrupted original on
  // every subsequent delta.
  std::vector<SimTime> grid = Problem::UniformGrid(600.0, 60, 10.0).grid;
  IncrementalPlanner live(grid, PlannerOpts(true));
  std::vector<IncrementalPlanner::Join> wave1 = {
      {1, SimInterval{SimTime::FromSeconds(0), SimTime::FromSeconds(600)}, 5},
      {2, SimInterval{SimTime::FromSeconds(100), SimTime::FromSeconds(500)},
       4},
      {3, SimInterval{SimTime::FromSeconds(50), SimTime::FromSeconds(350)},
       3}};
  ASSERT_TRUE(live.ApplyDelta({}, wave1).ok());

  IncrementalPlanner restored(grid, PlannerOpts(true));
  for (std::int64_t m : live.Members()) {
    restored.RestoreMember(m);
    for (const IncrementalPlanner::Pick& pick : live.PicksOf(m))
      restored.RestoreCommit(m, pick.instant, pick.seq);
  }
  restored.FinishRestore();
  EXPECT_EQ(restored.Members(), live.Members());
  for (std::int64_t m : live.Members())
    EXPECT_EQ(restored.PlanOf(m), live.PlanOf(m));
  EXPECT_EQ(restored.total_coverage(), live.total_coverage());

  // Same churn applied to both from here on stays in lockstep.
  ExpectLockstep(live, restored, 9, 500);
}

TEST(Incremental, RejoinOfKnownMemberRejected) {
  std::vector<SimTime> grid = Problem::UniformGrid(600.0, 60, 10.0).grid;
  IncrementalPlanner planner(grid, PlannerOpts(true));
  const std::vector<IncrementalPlanner::Join> join = {
      {7, SimInterval{SimTime::FromSeconds(0), SimTime::FromSeconds(600)},
       3}};
  ASSERT_TRUE(planner.ApplyDelta({}, join).ok());
  Result<IncrementalPlanner::DeltaResult> again = planner.ApplyDelta({}, join);
  EXPECT_EQ(again.code(), Errc::kAlreadyExists);
  // After a leave the member may join again.
  ASSERT_TRUE(
      planner.ApplyDelta({{7, SimTime::FromSeconds(600)}}, {}).ok());
  EXPECT_FALSE(planner.HasMember(7));
  EXPECT_TRUE(planner.ApplyDelta({}, join).ok());
}

}  // namespace
}  // namespace sor::sched

// Chaos-grade end-to-end tests: the full coffee-shop pipeline replayed
// under seeded fault injection (drops, corruption, duplication, partition
// windows on both legs of every round trip), plus a server kill/restart
// mid-campaign. The invariants:
//   * no duplicate raw rows — every stored (task, seq) pair is unique;
//   * budget is never over-consumed — what each task was billed equals the
//     distinct instants actually stored for it (capped by the budget);
//   * store-and-forward queues stay bounded and drain to empty;
//   * the final rankings are identical to a fault-free run — chaos may
//     delay the data, it must not change the answer.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <utility>

#include "core/system.hpp"
#include "db/snapshot.hpp"
#include "server/feature_def.hpp"
#include "world/phone_agent.hpp"

namespace sor::core {
namespace {

// Shrunk coffee-shop campaign: same three places, fewer phones and a
// 30-minute period, so ten chaos replays stay fast.
world::Scenario SmallCoffeeScenario() {
  world::Scenario s = world::MakeCoffeeShopScenario();
  s.phones_per_place = 4;
  s.period_s = 1'800.0;
  return s;
}

FieldTestConfig BaseConfig() {
  FieldTestConfig c;
  c.budget_per_user = 20;
  c.n_instants = 120;
  c.sigma_s = 60.0;
  return c;
}

// Aggressive-but-recoverable wire: probabilities at the acceptance ceiling
// (0.3), applied to request AND response legs, plus a one-minute hard
// partition in the middle of the period.
std::vector<net::FaultRule> ChaosRules() {
  net::FaultRule lossy;
  lossy.drop = 0.3;
  lossy.corrupt = 0.2;
  lossy.duplicate = 0.2;
  net::FaultRule partition;
  partition.partition = SimInterval{SimTime{600'000}, SimTime{660'000}};
  return {lossy, partition};
}

// Decode every stored raw row and check the dedup + budget invariants.
void CheckStorageInvariants(server::SensingServer& srv) {
  const db::Table* raw = srv.database().table(db::tables::kRawData);
  std::set<std::pair<std::int64_t, std::int64_t>> keys;
  std::map<std::int64_t, std::set<std::int64_t>> instants_per_task;
  for (const db::Row& r : raw->Scan()) {
    const std::int64_t task = r[1].as_int();
    const std::int64_t seq = r[6].as_int();
    if (seq != 0) {
      EXPECT_TRUE(keys.insert({task, seq}).second)
          << "duplicate raw row for task " << task << " seq " << seq;
    }
    Result<Message> body =
        DecodeBody(MessageType::kSensedDataUpload, r[3].as_blob());
    ASSERT_TRUE(body.ok()) << body.error().str();
    for (const ReadingTuple& t :
         std::get<SensedDataUpload>(body.value()).batches) {
      instants_per_task[task].insert(t.t.ms);
    }
  }
  // Billing matches storage exactly: each task paid one acquisition per
  // distinct stored instant — never more (no double-billing on retries).
  const db::Table* parts =
      srv.database().table(db::tables::kParticipations);
  for (const db::Row& r : parts->Scan()) {
    const std::int64_t task = r[0].as_int();
    const std::int64_t budget = r[4].as_int();
    const std::int64_t left = r[5].as_int();
    const auto stored =
        static_cast<std::int64_t>(instants_per_task[task].size());
    EXPECT_GE(left, 0) << "task " << task;
    EXPECT_EQ(budget - left, std::min(budget, stored)) << "task " << task;
  }
}

TEST(Chaos, TenSeedsConvergeToTheFaultFreeRankings) {
  const world::Scenario scenario = SmallCoffeeScenario();

  System baseline_system;
  Result<FieldTestResult> baseline =
      baseline_system.RunFieldTest(scenario, BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.error().str();

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    FieldTestConfig config = BaseConfig();
    config.chaos_rules = ChaosRules();
    config.chaos_seed = seed;

    System system;
    Result<FieldTestResult> run = system.RunFieldTest(scenario, config);
    ASSERT_TRUE(run.ok()) << run.error().str();

    // The chaos actually happened (this is not a vacuous pass)...
    const net::TransportStats& t = run.value().transport_stats;
    EXPECT_GT(t.dropped + t.responses_dropped, 0u);
    EXPECT_GT(t.partitioned, 0u);
    EXPECT_GT(run.value().total_uploads_retried, 0u);
    EXPECT_GT(run.value().server_stats.duplicate_uploads_ignored, 0u);

    // ...queues drained within the drain window, nothing was evicted...
    EXPECT_EQ(run.value().total_uploads_dropped, 0u);
    for (const auto& frontend : system.frontends()) {
      EXPECT_EQ(frontend->pending_uploads(), 0u);
      EXPECT_EQ(frontend->pending_leaves(), 0u);
    }

    // ...storage and billing invariants hold...
    CheckStorageInvariants(system.server());

    // ...and the answer is byte-for-byte the fault-free answer.
    ASSERT_EQ(run.value().rankings.size(), baseline.value().rankings.size());
    for (std::size_t p = 0; p < baseline.value().rankings.size(); ++p) {
      EXPECT_EQ(run.value().RankedNames(p), baseline.value().RankedNames(p))
          << "profile " << baseline.value().rankings[p].first;
    }
    const rank::FeatureMatrix& want = baseline.value().matrix;
    const rank::FeatureMatrix& got = run.value().matrix;
    ASSERT_EQ(got.num_places(), want.num_places());
    ASSERT_EQ(got.num_features(), want.num_features());
    for (int i = 0; i < want.num_places(); ++i) {
      for (int j = 0; j < want.num_features(); ++j) {
        EXPECT_NEAR(got.at(i, j), want.at(i, j), 1e-6)
            << "place " << i << " feature " << j;
      }
    }
  }
}

TEST(Chaos, SameSeedSameOutcome) {
  // The whole chaos run — not just the fault schedule — is replayable.
  const world::Scenario scenario = SmallCoffeeScenario();
  FieldTestConfig config = BaseConfig();
  config.chaos_rules = ChaosRules();
  config.chaos_seed = 99;

  System a;
  Result<FieldTestResult> ra = a.RunFieldTest(scenario, config);
  System b;
  Result<FieldTestResult> rb = b.RunFieldTest(scenario, config);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value().transport_stats, rb.value().transport_stats);
  EXPECT_EQ(ra.value().total_uploads_retried,
            rb.value().total_uploads_retried);
  EXPECT_EQ(ra.value().server_stats.duplicate_uploads_ignored,
            rb.value().server_stats.duplicate_uploads_ignored);
}

TEST(Chaos, ParallelRuntimeSurvivesEveryFaultSchedule) {
  // The sharded runtime under the same chaos battery: every fault schedule
  // must produce the exact serial outcome (transport counters included —
  // the fault-decision stream itself is replayed), and the storage/billing
  // invariants must hold with phones ticking on 4 threads.
  const world::Scenario scenario = SmallCoffeeScenario();
  for (std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    FieldTestConfig config = BaseConfig();
    config.chaos_rules = ChaosRules();
    config.chaos_seed = seed;

    System serial_system;
    Result<FieldTestResult> serial =
        serial_system.RunFieldTest(scenario, config);
    ASSERT_TRUE(serial.ok()) << serial.error().str();

    config.threads = 4;
    System parallel_system;
    Result<FieldTestResult> parallel =
        parallel_system.RunFieldTest(scenario, config);
    ASSERT_TRUE(parallel.ok()) << parallel.error().str();

    EXPECT_EQ(parallel.value().transport_stats,
              serial.value().transport_stats);
    EXPECT_EQ(parallel.value().total_uploads, serial.value().total_uploads);
    EXPECT_EQ(parallel.value().total_uploads_retried,
              serial.value().total_uploads_retried);
    EXPECT_EQ(parallel.value().server_stats.duplicate_uploads_ignored,
              serial.value().server_stats.duplicate_uploads_ignored);
    ASSERT_EQ(parallel.value().rankings.size(),
              serial.value().rankings.size());
    for (std::size_t p = 0; p < serial.value().rankings.size(); ++p) {
      EXPECT_EQ(parallel.value().rankings[p].second.final_ranking,
                serial.value().rankings[p].second.final_ranking)
          << "profile " << serial.value().rankings[p].first;
    }
    for (const auto& frontend : parallel_system.frontends()) {
      EXPECT_EQ(frontend->pending_uploads(), 0u);
      EXPECT_EQ(frontend->pending_leaves(), 0u);
    }
    CheckStorageInvariants(parallel_system.server());
  }
}

// Compare every matrix cell of a chaos run against the fault-free run.
void ExpectSameMatrix(const FieldTestResult& got_r,
                      const FieldTestResult& want_r) {
  const rank::FeatureMatrix& want = want_r.matrix;
  const rank::FeatureMatrix& got = got_r.matrix;
  ASSERT_EQ(got.num_places(), want.num_places());
  ASSERT_EQ(got.num_features(), want.num_features());
  for (int i = 0; i < want.num_places(); ++i) {
    for (int j = 0; j < want.num_features(); ++j) {
      EXPECT_NEAR(got.at(i, j), want.at(i, j), 1e-6)
          << "place " << i << " feature " << j;
    }
  }
}

TEST(Chaos, ChurnTenSeedsRankingsMatchTheFaultFreeBaseline) {
  // Node churn genuinely loses data: a crashed phone drops its queued and
  // collected-but-unsent batches, an uninstalled one loses everything and
  // rejoins as a new task. Features therefore need not equal the baseline
  // — but the RANKINGS over what was acknowledged must: losing a slice of
  // samples from every place must not reorder the places.
  const world::Scenario scenario = SmallCoffeeScenario();
  System baseline_system;
  Result<FieldTestResult> baseline =
      baseline_system.RunFieldTest(scenario, BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.error().str();

  std::uint64_t crashes = 0, restarts = 0, reinstalls = 0, stalls = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("node seed " + std::to_string(seed));
    FieldTestConfig config = BaseConfig();
    net::NodeFaultRule phones;
    phones.endpoint = "phone:*";
    phones.crash = 0.01;
    phones.restart_after = SimDuration{30'000};
    phones.uninstall = 0.003;
    phones.reinstall_after = SimDuration{40'000};
    net::NodeFaultRule server;
    server.endpoint = "server";
    server.stall = 0.02;
    server.stall_for = SimDuration{20'000};
    config.node_rules = {phones, server};
    config.node_seed = seed;
    config.drain_ticks = 12;

    System system;
    Result<FieldTestResult> run = system.RunFieldTest(scenario, config);
    ASSERT_TRUE(run.ok()) << run.error().str();

    crashes += run.value().total_crashes;
    restarts += run.value().total_restarts;
    reinstalls += run.value().total_reinstalls;
    stalls += run.value().server_stall_ticks;
    // Every phone that went down inside the period made it back (downtimes
    // fit inside the drain window).
    EXPECT_EQ(run.value().total_crashes + run.value().total_reinstalls,
              run.value().total_restarts + run.value().total_reinstalls)
        << "some phone never rejoined";

    // Storage stayed sound through every crash/rejoin cycle: no duplicate
    // (task, seq) rows, billing matches storage.
    CheckStorageInvariants(system.server());

    // The answer over acknowledged data is the fault-free answer.
    ASSERT_EQ(run.value().rankings.size(), baseline.value().rankings.size());
    for (std::size_t p = 0; p < baseline.value().rankings.size(); ++p) {
      EXPECT_EQ(run.value().RankedNames(p), baseline.value().RankedNames(p))
          << "profile " << baseline.value().rankings[p].first;
    }
  }
  // The battery was not vacuous: every churn kind fired somewhere.
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(restarts, 0u);
  EXPECT_GT(reinstalls, 0u);
  EXPECT_GT(stalls, 0u);
}

TEST(Chaos, OverloadShedsStaleBeforeFreshAndRecovers) {
  // Sustained ~2.4x overload: 12 phones want ~12 admissions per tick, the
  // budget is 5. The server must shed stale before fresh, keep every queue
  // bounded, and — because a throttle only delays data that stays queued
  // on the phone — converge to the exact fault-free features once the
  // load drops.
  const world::Scenario scenario = SmallCoffeeScenario();
  System baseline_system;
  Result<FieldTestResult> baseline =
      baseline_system.RunFieldTest(scenario, BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.error().str();

  FieldTestConfig config = BaseConfig();
  config.overload.ingest_budget = 5;
  config.overload.throttle_at = 0.6;
  config.overload.stale_after = SimDuration{15'000};
  config.overload.retry_after = SimDuration{12'000};
  config.drain_ticks = 60;  // the "load drops" phase: queues flush at 5/tick

  System system;
  Result<FieldTestResult> run = system.RunFieldTest(scenario, config);
  ASSERT_TRUE(run.ok()) << run.error().str();

  // Overload actually happened, and the priority ladder was exercised:
  // both plain throttles (budget spent) and stale sheds occurred.
  EXPECT_GT(run.value().server_stats.uploads_throttled, 0u);
  EXPECT_GT(run.value().server_stats.uploads_shed_stale, 0u);
  EXPECT_GT(run.value().total_uploads_throttled, 0u);
  EXPECT_GT(run.value().peak_pending_uploads, 0u);

  // Bounded queues: the fleet's backlog peak stayed under the hard cap
  // (eviction never fired — nothing was lost, only delayed).
  EXPECT_EQ(run.value().total_uploads_dropped, 0u);
  EXPECT_EQ(run.value().total_uploads_abandoned, 0u);

  // Recovery: once the load dropped, everything drained and the server
  // walked back down the ladder to normal.
  for (const auto& frontend : system.frontends()) {
    EXPECT_EQ(frontend->pending_uploads(), 0u);
    EXPECT_EQ(frontend->pending_leaves(), 0u);
  }
  EXPECT_EQ(system.server().health().mode(), server::ServerMode::kNormal);

  // Convergence: delayed, never changed.
  CheckStorageInvariants(system.server());
  ExpectSameMatrix(run.value(), baseline.value());
  for (std::size_t p = 0; p < baseline.value().rankings.size(); ++p) {
    EXPECT_EQ(run.value().RankedNames(p), baseline.value().RankedNames(p));
  }
}

TEST(Chaos, StorageWriteFaultsReprimeAndConverge) {
  // Seeded raw_data write failures: each failed insert answers with a
  // throttle (the phone keeps the data), and enough failures trigger
  // quarantine-and-reprime — the derived process state is rebuilt from the
  // intact tables. Delayed, never lost: features equal the baseline.
  const world::Scenario scenario = SmallCoffeeScenario();
  System baseline_system;
  Result<FieldTestResult> baseline =
      baseline_system.RunFieldTest(scenario, BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.error().str();

  FieldTestConfig config = BaseConfig();
  db::StorageFaultRule flaky;
  flaky.table = db::tables::kRawData;  // gate-serialized writes only
  flaky.write_fail = 0.15;
  config.storage_rules = {flaky};
  config.storage_seed = 23;
  config.overload.reprime_after_failures = 3;
  config.drain_ticks = 20;

  System system;
  Result<FieldTestResult> run = system.RunFieldTest(scenario, config);
  ASSERT_TRUE(run.ok()) << run.error().str();

  EXPECT_GT(run.value().server_stats.storage_write_failures, 0u);
  EXPECT_GE(run.value().server_stats.reprimes, 1u);
  EXPECT_GT(run.value().total_uploads_throttled, 0u);
  EXPECT_EQ(run.value().total_uploads_dropped, 0u);

  for (const auto& frontend : system.frontends()) {
    EXPECT_EQ(frontend->pending_uploads(), 0u);
    EXPECT_EQ(frontend->pending_leaves(), 0u);
  }
  CheckStorageInvariants(system.server());
  ExpectSameMatrix(run.value(), baseline.value());
  for (std::size_t p = 0; p < baseline.value().rankings.size(); ++p) {
    EXPECT_EQ(run.value().RankedNames(p), baseline.value().RankedNames(p));
  }
}

TEST(Chaos, ServerCrashMidCampaignRecoversFromSnapshot) {
  // One place, three phones, driven by hand so the server can be killed
  // and restarted halfway through the period.
  const world::Scenario scenario = SmallCoffeeScenario();
  const world::PlaceModel& place = scenario.places[0];
  const SimInterval period{SimTime{0}, SimTime::FromSeconds(600.0)};
  const SimDuration tick{10'000};

  SimClock clock;
  net::LoopbackNetwork net;
  net.set_clock(&clock);
  auto server = std::make_unique<server::SensingServer>(
      server::ServerConfig{}, net, clock);

  server::ApplicationSpec spec;
  spec.creator = "operator";
  spec.place = place.id;
  spec.place_name = place.name;
  spec.location = place.center;
  spec.radius_m = place.radius_m;
  spec.script = DefaultScript(scenario.category);
  spec.features = server::CoffeeShopFeatures();
  spec.period = period;
  spec.n_instants = 60;
  spec.sigma_s = 60.0;
  Result<BarcodePayload> barcode = server->DeployApplication(spec);
  ASSERT_TRUE(barcode.ok()) << barcode.error().str();

  std::vector<std::unique_ptr<world::PhoneAgent>> agents;
  std::vector<std::unique_ptr<phone::MobileFrontend>> phones;
  std::vector<TaskId> tasks;
  Rng rng(7);
  for (int i = 0; i < 3; ++i) {
    const Token token{"tok-" + std::to_string(i)};
    Result<UserId> user =
        server->users().RegisterUser("user_" + std::to_string(i), token);
    ASSERT_TRUE(user.ok());
    world::PhoneAgentConfig agent_cfg;
    agent_cfg.id = PhoneId{static_cast<std::uint64_t>(i + 1)};
    agent_cfg.mobility = world::Mobility::kStatic;
    agent_cfg.enter_time = SimTime{0};
    agent_cfg.seed = rng.fork().engine()();
    agents.push_back(std::make_unique<world::PhoneAgent>(place, agent_cfg));
    phone::FrontendConfig cfg;
    cfg.phone_id = agent_cfg.id;
    cfg.user_id = user.value();
    cfg.user_name = "user_" + std::to_string(i);
    cfg.token = token;
    phones.push_back(std::make_unique<phone::MobileFrontend>(
        cfg, net, *agents.back(), clock));
    Result<TaskId> task = phones.back()->ScanBarcode(barcode.value(), 10);
    ASSERT_TRUE(task.ok()) << task.error().str();
    tasks.push_back(task.value());
  }

  // First half: lossy but alive.
  net.faults().set_seed(13);
  net::FaultRule lossy;
  lossy.drop = 0.2;
  net.faults().AddRule(lossy);
  while (clock.now() < SimTime{300'000}) {
    clock.advance(tick);
    for (auto& p : phones) p->Tick();
  }

  // Crash: snapshot the durable state, then the process dies.
  const Bytes snapshot = server->SnapshotState();
  server.reset();

  // Phones keep ticking against a dead server; everything queues.
  for (int i = 0; i < 6; ++i) {
    clock.advance(tick);
    for (auto& p : phones) p->Tick();
  }

  // Restart from the snapshot.
  server = std::make_unique<server::SensingServer>(server::ServerConfig{},
                                                   net, clock);
  ASSERT_TRUE(server->RestoreFromSnapshot(snapshot).ok());
  EXPECT_EQ(server->stats().recoveries, 1u);
  net.faults().Clear();

  // Second half plus drain: queues flush, schedules re-sync on contact.
  while (clock.now() < period.end + tick * 8) {
    clock.advance(tick);
    for (auto& p : phones) p->Tick();
  }
  EXPECT_GE(server->stats().resyncs_triggered, 1u);
  for (auto& p : phones) {
    EXPECT_EQ(p->pending_uploads(), 0u);
    EXPECT_TRUE(p->LeavePlace().ok());
  }

  // No permanently lost tasks: every participation survived the crash and
  // reached "finished"; storage and billing stayed consistent throughout.
  for (TaskId task : tasks) {
    Result<server::ParticipationRecord> rec =
        server->participations().Get(task);
    ASSERT_TRUE(rec.ok()) << "task " << task.str() << " lost in crash";
    EXPECT_EQ(rec.value().status, "finished");
  }
  CheckStorageInvariants(*server);
  EXPECT_GT(server->database().table(db::tables::kRawData)->size(), 0u);

  // The recovered pipeline still produces features end to end.
  EXPECT_TRUE(server->ProcessAllData().ok());
}

TEST(Chaos, IncrementalMatchesFullUnderChaos) {
  // The streaming-accumulator path against its oracle, under the full fault
  // battery (duplicated, dropped-and-retried, corrupt-rejected uploads):
  // identical feature rows bit-for-bit AND identical trace fingerprints,
  // with the incremental path run at 1, 2 and 8 threads.
  const world::Scenario scenario = SmallCoffeeScenario();
  for (std::uint64_t seed : {3ULL, 11ULL}) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    FieldTestConfig config = BaseConfig();
    config.chaos_rules = ChaosRules();
    config.chaos_seed = seed;
    config.trace = true;

    FieldTestConfig full_config = config;
    full_config.incremental_processing = false;
    System full_system;
    Result<FieldTestResult> full =
        full_system.RunFieldTest(scenario, full_config);
    ASSERT_TRUE(full.ok()) << full.error().str();

    // Pull the oracle's feature rows (pk-ordered, so comparable by index).
    const std::vector<db::Row> want_rows =
        full_system.server()
            .database()
            .table(db::tables::kFeatureData)
            ->ScanOrderedBy("feature_id");
    ASSERT_FALSE(want_rows.empty());
    // The chaos actually happened (not a vacuous pass): duplicates were
    // deduped and corrupted frames were rejected before storage.
    EXPECT_GT(full.value().server_stats.duplicate_uploads_ignored, 0u);
    EXPECT_GT(full.value().server_stats.decode_failures, 0u);

    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      FieldTestConfig inc_config = config;
      inc_config.incremental_processing = true;
      inc_config.threads = threads;
      System inc_system;
      Result<FieldTestResult> inc =
          inc_system.RunFieldTest(scenario, inc_config);
      ASSERT_TRUE(inc.ok()) << inc.error().str();

      // Byte-identical event stream: same blobs decoded in the same order,
      // same features written, regardless of path or thread count.
      EXPECT_EQ(inc.value().trace_fingerprint, full.value().trace_fingerprint);

      // Feature rows bit-for-bit: value, n_samples, everything.
      const std::vector<db::Row> got_rows =
          inc_system.server()
              .database()
              .table(db::tables::kFeatureData)
              ->ScanOrderedBy("feature_id");
      ASSERT_EQ(got_rows.size(), want_rows.size());
      for (std::size_t i = 0; i < want_rows.size(); ++i) {
        EXPECT_EQ(got_rows[i], want_rows[i]) << "feature row " << i;
      }
    }
  }
}

}  // namespace
}  // namespace sor::core

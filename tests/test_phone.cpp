// Unit tests for the mobile frontend: preferences, TaskInstance execution
// semantics (schedules, acquisition binding, denial, script errors), and
// the MobileFrontend message handling against a scripted fake server.
#include <gtest/gtest.h>

#include <cmath>

#include "codec/barcode.hpp"
#include "phone/frontend.hpp"
#include "phone/task_instance.hpp"
#include "sensors/providers.hpp"

namespace sor::phone {
namespace {

class FakeEnvironment final : public sensors::SensorEnvironment {
 public:
  double Sample(SensorKind kind, SimTime) override {
    return static_cast<double>(static_cast<int>(kind)) + 0.5;
  }
  GeoPoint Position(SimTime) override { return GeoPoint{43.0, -76.0, 99.0}; }
};

sensors::SensorManager MakeSensors(FakeEnvironment& env,
                                   sensors::BluetoothLink& link) {
  sensors::SensorManager manager;
  for (int k = 0; k < kSensorKindCount; ++k) {
    manager.RegisterProvider(sensors::MakeProvider(
        static_cast<SensorKind>(k), env, link));
  }
  return manager;
}

// --- acquisition function mapping ------------------------------------------

TEST(AcquisitionFns, MappingRoundTrip) {
  EXPECT_EQ(AcquisitionFunctionSensor("get_location"), SensorKind::kGps);
  EXPECT_EQ(AcquisitionFunctionSensor("get_light_readings"),
            SensorKind::kDroneLight);
  EXPECT_EQ(AcquisitionFunctionSensor("nope"), std::nullopt);
  EXPECT_GE(AcquisitionFunctionNames().size(), 10u);
}

// --- TaskInstance --------------------------------------------------------------

TEST(TaskInstance, ParsesScriptAndRuns) {
  FakeEnvironment env;
  sensors::BluetoothLink link;
  link.Pair();
  sensors::SensorManager sensors = MakeSensors(env, link);
  LocalPreferenceManager prefs;

  TaskInstance task(TaskId{1}, AppId{1},
                    "local xs = get_light_readings(3)",
                    {SimTime{10'000}, SimTime{20'000}}, SimDuration{1'000},
                    3);
  EXPECT_EQ(task.status(), TaskStatus::kRunning);

  // Nothing due yet.
  EXPECT_TRUE(task.RunDue(SimTime{5'000}, sensors, prefs).empty());
  // First instant due.
  auto batch1 = task.RunDue(SimTime{10'000}, sensors, prefs);
  ASSERT_EQ(batch1.size(), 1u);
  EXPECT_EQ(batch1[0].kind, SensorKind::kDroneLight);
  EXPECT_EQ(batch1[0].values.size(), 3u);
  EXPECT_EQ(batch1[0].t.ms, 10'000);
  EXPECT_EQ(task.status(), TaskStatus::kRunning);
  // Second instant; afterwards the task finishes.
  auto batch2 = task.RunDue(SimTime{50'000}, sensors, prefs);
  EXPECT_EQ(batch2.size(), 1u);
  EXPECT_EQ(task.status(), TaskStatus::kFinished);
  EXPECT_EQ(task.stats().executions, 2u);
  EXPECT_EQ(task.stats().acquisitions, 2u);
}

TEST(TaskInstance, CatchesUpOnMultipleDueInstants) {
  FakeEnvironment env;
  sensors::BluetoothLink link;
  link.Pair();
  sensors::SensorManager sensors = MakeSensors(env, link);
  LocalPreferenceManager prefs;
  TaskInstance task(TaskId{1}, AppId{1}, "local x = get_wifi_readings(1)",
                    {SimTime{1'000}, SimTime{2'000}, SimTime{3'000}},
                    SimDuration{100}, 1);
  const auto batch = task.RunDue(SimTime{10'000}, sensors, prefs);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_TRUE(task.AllInstantsDone());
}

TEST(TaskInstance, BadScriptBecomesError) {
  TaskInstance task(TaskId{1}, AppId{1}, "local = broken", {SimTime{1'000}},
                    SimDuration{100}, 1);
  EXPECT_EQ(task.status(), TaskStatus::kError);
  EXPECT_FALSE(task.last_error().empty());
  FakeEnvironment env;
  sensors::BluetoothLink link;
  sensors::SensorManager sensors = MakeSensors(env, link);
  LocalPreferenceManager prefs;
  EXPECT_TRUE(task.RunDue(SimTime{5'000}, sensors, prefs).empty());
}

TEST(TaskInstance, AnalyzerRejectsUnboundedLoopAtCompile) {
  // The static analyzer runs at task construction: a loop with no
  // derivable bound never reaches its first scheduled instant.
  TaskInstance task(TaskId{1}, AppId{1},
                    "while true do\n  print(\"spin\")\nend",
                    {SimTime{1'000}}, SimDuration{100}, 1);
  EXPECT_EQ(task.status(), TaskStatus::kError);
  EXPECT_NE(task.last_error().find("SA401"), std::string::npos)
      << task.last_error();
  EXPECT_EQ(task.stats().script_errors, 1u);
}

TEST(TaskInstance, RuntimeScriptErrorSetsErrorStatus) {
  FakeEnvironment env;
  sensors::BluetoothLink link;
  sensors::SensorManager sensors = MakeSensors(env, link);
  LocalPreferenceManager prefs;
  TaskInstance task(TaskId{1}, AppId{1}, "print(undefined_var)",
                    {SimTime{1'000}}, SimDuration{100}, 1);
  (void)task.RunDue(SimTime{2'000}, sensors, prefs);
  EXPECT_EQ(task.status(), TaskStatus::kError);
  EXPECT_EQ(task.stats().script_errors, 1u);
}

TEST(TaskInstance, DeniedSensorYieldsEmptyListNotFailure) {
  FakeEnvironment env;
  sensors::BluetoothLink link;
  link.Pair();
  sensors::SensorManager sensors = MakeSensors(env, link);
  LocalPreferenceManager prefs;
  prefs.Allow(SensorKind::kDroneLight, false);
  TaskInstance task(TaskId{1}, AppId{1},
                    "local xs = get_light_readings(3) print(len(xs))",
                    {SimTime{1'000}}, SimDuration{100}, 3);
  const auto batch = task.RunDue(SimTime{2'000}, sensors, prefs);
  EXPECT_TRUE(batch.empty());  // nothing recorded for upload
  EXPECT_EQ(task.status(), TaskStatus::kFinished);
  EXPECT_EQ(task.stats().denied, 1u);
}

TEST(TaskInstance, UnpairedDroneCountsAsFailure) {
  FakeEnvironment env;
  sensors::BluetoothLink link;  // unpaired
  sensors::SensorManager sensors = MakeSensors(env, link);
  LocalPreferenceManager prefs;
  TaskInstance task(TaskId{1}, AppId{1},
                    "local xs = get_temperature_readings(2)",
                    {SimTime{1'000}}, SimDuration{100}, 2);
  const auto batch = task.RunDue(SimTime{2'000}, sensors, prefs);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(task.stats().failed, 1u);
}

TEST(TaskInstance, GpsTupleCarriesLocations) {
  FakeEnvironment env;
  sensors::BluetoothLink link;
  sensors::SensorManager sensors = MakeSensors(env, link);
  LocalPreferenceManager prefs;
  TaskInstance task(TaskId{1}, AppId{1}, "local loc = get_location(2, 60)",
                    {SimTime{1'000}}, SimDuration{100}, 1);
  const auto batch = task.RunDue(SimTime{2'000}, sensors, prefs);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].locations.size(), 2u);
  // Window override: 60 s, not the task default of 100 ms.
  EXPECT_EQ(batch[0].dt.ms, 60'000);
}

TEST(TaskInstance, IntrospectionFunctions) {
  FakeEnvironment env;
  sensors::BluetoothLink link;
  sensors::SensorManager sensors = MakeSensors(env, link);
  LocalPreferenceManager prefs;
  // On the last instant (0 remaining), do an extra-long wifi read.
  const char* script = R"(
local t = get_time_s()
if get_remaining_instants() == 0 then
  local xs = get_wifi_readings(4)
else
  local xs = get_wifi_readings(1)
end
)";
  TaskInstance task(TaskId{1}, AppId{1}, script,
                    {SimTime{10'000}, SimTime{20'000}}, SimDuration{1'000},
                    1);
  const auto batch1 = task.RunDue(SimTime{10'000}, sensors, prefs);
  ASSERT_EQ(batch1.size(), 1u);
  EXPECT_EQ(batch1[0].values.size(), 1u);  // not the last instant
  const auto batch2 = task.RunDue(SimTime{20'000}, sensors, prefs);
  ASSERT_EQ(batch2.size(), 1u);
  EXPECT_EQ(batch2[0].values.size(), 4u);  // final instant: long read
}

TEST(TaskInstance, CoarseLocationSnapsFixes) {
  FakeEnvironment env;
  sensors::BluetoothLink link;
  sensors::SensorManager sensors = MakeSensors(env, link);
  LocalPreferenceManager prefs;
  prefs.set_coarse_location(true);
  TaskInstance task(TaskId{1}, AppId{1}, "local loc = get_location(1)",
                    {SimTime{1'000}}, SimDuration{100}, 1);
  const auto batch = task.RunDue(SimTime{2'000}, sensors, prefs);
  ASSERT_EQ(batch.size(), 1u);
  ASSERT_EQ(batch[0].locations.size(), 1u);
  const double lat = batch[0].locations[0].lat_deg;
  EXPECT_DOUBLE_EQ(lat, std::round(lat * 100.0) / 100.0);
}

// --- preferences -----------------------------------------------------------

TEST(Preferences, DefaultsAllowEverything) {
  LocalPreferenceManager prefs;
  for (int k = 0; k < kSensorKindCount; ++k)
    EXPECT_TRUE(prefs.Allows(static_cast<SensorKind>(k)));
  EXPECT_FALSE(prefs.coarse_location());
}

TEST(Preferences, TogglePerSensor) {
  LocalPreferenceManager prefs;
  prefs.Allow(SensorKind::kGps, false);
  EXPECT_FALSE(prefs.Allows(SensorKind::kGps));
  EXPECT_TRUE(prefs.Allows(SensorKind::kMicrophone));
  prefs.Allow(SensorKind::kGps, true);
  EXPECT_TRUE(prefs.Allows(SensorKind::kGps));
}

// --- MobileFrontend against a scripted server --------------------------------

// A fake sensing server that accepts every participation and immediately
// distributes a fixed schedule.
class FakeServer final : public net::Endpoint {
 public:
  FakeServer(net::LoopbackNetwork& net, SimClock& clock)
      : net_(net), clock_(clock) {
    net_.Register("server", this);
  }
  ~FakeServer() override { net_.Unregister("server"); }

  Bytes HandleFrame(std::span<const std::uint8_t> frame) override {
    Result<Message> decoded = DecodeFrame(frame);
    if (!decoded.ok()) {
      return EncodeFrame(ErrorReply{
          static_cast<std::uint8_t>(decoded.error().code), "bad frame"});
    }
    if (const auto* req =
            std::get_if<ParticipationRequest>(&decoded.value())) {
      last_token_ = req->token;
      // Distribute the schedule as a separate message (like the real
      // server's reschedule) before replying.
      ScheduleDistribution sched;
      sched.task = TaskId{77};
      sched.app = req->app;
      sched.script = "local xs = get_wifi_readings(2)";
      sched.instants = {SimTime{10'000}, SimTime{20'000}};
      sched.sample_window = SimDuration{1'000};
      sched.samples_per_window = 2;
      (void)net_.Send("phone:" + req->token.value, sched);
      return EncodeFrame(ParticipationReply{TaskId{77}, true, ""});
    }
    if (const auto* upload =
            std::get_if<SensedDataUpload>(&decoded.value())) {
      if (throttle_next_ > 0) {
        // Overloaded-server mode: refuse with a pacing hint, keep nothing.
        --throttle_next_;
        ++throttles_sent_;
        return EncodeFrame(ThrottleReply{upload->task.value(), upload->seq,
                                         throttle_retry_after_, 2});
      }
      uploads_ += static_cast<int>(upload->batches.size());
      seqs_.push_back(upload->seq);
      // Echo the seq — the phone settles an upload only on a matching echo.
      return EncodeFrame(Ack{upload->task.value(), upload->seq});
    }
    if (std::get_if<LeaveNotification>(&decoded.value()) != nullptr) {
      ++leaves_;
      return EncodeFrame(Ack{});
    }
    return EncodeFrame(ErrorReply{0, "unexpected"});
  }

  net::LoopbackNetwork& net_;
  SimClock& clock_;
  Token last_token_;
  int uploads_ = 0;
  int leaves_ = 0;
  int throttle_next_ = 0;  // refuse the next N uploads with ThrottleReply
  int throttles_sent_ = 0;
  SimDuration throttle_retry_after_{12'000};
  std::vector<std::uint64_t> seqs_;  // seq of every upload received
};

BarcodePayload TestBarcode() {
  BarcodePayload p;
  p.app = AppId{5};
  p.place = PlaceId{1};
  p.place_name = "Test Place";
  p.location = GeoPoint{43.0, -76.0, 99.0};
  p.server = "server";
  p.radius_m = 100.0;
  return p;
}

struct FrontendFixture {
  SimClock clock;
  net::LoopbackNetwork net;
  FakeServer server{net, clock};
  FakeEnvironment env;
  FrontendConfig config{PhoneId{1}, UserId{1}, "tester", Token{"tok-x"},
                        true};
  MobileFrontend frontend{config, net, env, clock};
};

TEST(Frontend, ScanTriggersParticipationAndSchedule) {
  FrontendFixture f;
  Result<TaskId> task = f.frontend.ScanBarcode(TestBarcode(), 10);
  ASSERT_TRUE(task.ok()) << task.error().str();
  EXPECT_EQ(task.value(), TaskId{77});
  EXPECT_EQ(f.frontend.stats().schedules_received, 1u);
  EXPECT_EQ(f.frontend.num_tasks(), 1u);
  EXPECT_EQ(f.server.last_token_.value, "tok-x");
}

ScheduleDistribution TestSchedule(std::vector<SensorKind> required) {
  ScheduleDistribution sched;
  sched.task = TaskId{88};
  sched.app = AppId{5};
  sched.script = "local xs = get_wifi_readings(2)";
  sched.instants = {SimTime{10'000}};
  sched.sample_window = SimDuration{1'000};
  sched.samples_per_window = 2;
  sched.required_sensors = std::move(required);
  return sched;
}

TEST(Frontend, RefusesScheduleRequiringMissingSensor) {
  FrontendFixture f;
  // Simulate a phone whose GPS hardware is gone (or was never there).
  ASSERT_TRUE(
      f.frontend.sensor_manager().UnregisterProvider(SensorKind::kGps));
  Result<Message> reply =
      f.net.Send("phone:tok-x", TestSchedule({SensorKind::kGps}));
  // The loopback transport unwraps the phone's ErrorReply into a local
  // error, so the refusal surfaces as a failed Result with kUnsupported.
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, Errc::kUnsupported);
  EXPECT_EQ(f.frontend.stats().schedules_refused, 1u);
  EXPECT_EQ(f.frontend.num_tasks(), 0u);  // task was never created
}

TEST(Frontend, AcceptsScheduleWhenRequiredSensorsPresent) {
  FrontendFixture f;
  Result<Message> reply =
      f.net.Send("phone:tok-x", TestSchedule({SensorKind::kWifi}));
  ASSERT_TRUE(reply.ok()) << reply.error().str();
  EXPECT_NE(std::get_if<Ack>(&reply.value()), nullptr);
  EXPECT_EQ(f.frontend.stats().schedules_refused, 0u);
  EXPECT_EQ(f.frontend.num_tasks(), 1u);
}

TEST(Frontend, ScanViaTextAndMatrix) {
  FrontendFixture f;
  EXPECT_TRUE(
      f.frontend.ScanBarcodeText(EncodeBarcodeText(TestBarcode()), 5).ok());
  FrontendFixture g;
  EXPECT_TRUE(
      g.frontend.ScanBarcodeMatrix(RenderBarcodeMatrix(TestBarcode()), 5)
          .ok());
  // Corrupted matrix is rejected locally, before any network traffic.
  FrontendFixture h;
  BitMatrix damaged = RenderBarcodeMatrix(TestBarcode());
  damaged.flip(0, 0);
  EXPECT_EQ(h.frontend.ScanBarcodeMatrix(damaged, 5).code(),
            Errc::kDecodeError);
  EXPECT_EQ(h.net.stats().delivered, 0u);
}

TEST(Frontend, InvalidBudgetRejectedLocally) {
  FrontendFixture f;
  EXPECT_EQ(f.frontend.ScanBarcode(TestBarcode(), 0).code(),
            Errc::kInvalidArgument);
}

TEST(Frontend, GpsDisabledBlocksParticipation) {
  FrontendFixture f;
  f.frontend.preferences().Allow(SensorKind::kGps, false);
  EXPECT_EQ(f.frontend.ScanBarcode(TestBarcode(), 5).code(),
            Errc::kPermissionDenied);
}

TEST(Frontend, TickExecutesAndUploads) {
  FrontendFixture f;
  ASSERT_TRUE(f.frontend.ScanBarcode(TestBarcode(), 10).ok());
  f.clock.advance_to(SimTime{15'000});
  f.frontend.Tick();  // first instant due
  EXPECT_EQ(f.frontend.stats().uploads_sent, 1u);
  f.clock.advance_to(SimTime{30'000});
  f.frontend.Tick();  // second instant due
  EXPECT_EQ(f.frontend.stats().uploads_sent, 2u);
  EXPECT_EQ(f.server.uploads_, 2);
  const TaskInstance* task = f.frontend.task(TaskId{77});
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->status(), TaskStatus::kFinished);
}

TEST(Frontend, FailedUploadRetriedNextTick) {
  FrontendFixture f;
  ASSERT_TRUE(f.frontend.ScanBarcode(TestBarcode(), 10).ok());
  f.clock.advance_to(SimTime{15'000});
  f.net.faults().drop_next = 1;
  f.frontend.Tick();
  EXPECT_EQ(f.frontend.stats().upload_failures, 1u);
  EXPECT_EQ(f.server.uploads_, 0);
  f.clock.advance_to(SimTime{16'000});
  f.frontend.Tick();  // retry from the store-and-forward queue
  EXPECT_EQ(f.server.uploads_, 1);
  EXPECT_EQ(f.frontend.stats().uploads_sent, 1u);
}

TEST(Frontend, RetryQueueKeepsConcurrentTasksSeparate) {
  // Two tasks fail their uploads in the same tick; the store-and-forward
  // queue must retry each batch under its own task id.
  FrontendFixture f;
  ASSERT_TRUE(f.frontend.ScanBarcode(TestBarcode(), 10).ok());
  // Hand a second task to the phone directly (same app, different id).
  ScheduleDistribution second;
  second.task = TaskId{88};
  second.app = AppId{5};
  second.script = "local xs = get_wifi_readings(1)";
  second.instants = {SimTime{10'000}};
  second.sample_window = SimDuration{500};
  second.samples_per_window = 1;
  ASSERT_TRUE(f.net.Send(f.frontend.EndpointName(), second).ok());
  ASSERT_EQ(f.frontend.num_tasks(), 2u);

  f.clock.advance_to(SimTime{15'000});
  f.net.faults().drop_next = 2;  // both uploads dropped
  f.frontend.Tick();
  EXPECT_EQ(f.frontend.stats().upload_failures, 2u);
  EXPECT_EQ(f.server.uploads_, 0);

  f.clock.advance_to(SimTime{16'000});
  f.frontend.Tick();  // both retried
  EXPECT_EQ(f.frontend.stats().uploads_sent, 2u);
  EXPECT_GE(f.server.uploads_, 2);
}

TEST(Frontend, RetryKeepsSameSeqAcrossAttempts) {
  // The seq assigned at first send IS the dedup key: the retry must carry
  // the same one so a server that stored the data (lost-Ack case) can tell.
  FrontendFixture f;
  ASSERT_TRUE(f.frontend.ScanBarcode(TestBarcode(), 10).ok());
  f.clock.advance_to(SimTime{15'000});
  f.net.faults().drop_next = 1;
  f.frontend.Tick();
  EXPECT_EQ(f.frontend.pending_uploads(), 1u);
  f.clock.advance_to(SimTime{16'000});
  f.frontend.Tick();  // retry lands
  ASSERT_EQ(f.server.seqs_.size(), 1u);
  EXPECT_EQ(f.server.seqs_[0], 1u);
  EXPECT_EQ(f.frontend.stats().uploads_retried, 1u);
  EXPECT_EQ(f.frontend.pending_uploads(), 0u);
  // The next fresh upload advances the sequence.
  f.clock.advance_to(SimTime{30'000});
  f.frontend.Tick();
  ASSERT_EQ(f.server.seqs_.size(), 2u);
  EXPECT_EQ(f.server.seqs_[1], 2u);
}

TEST(Frontend, FailedLeaveQueuedAndRetried) {
  FrontendFixture f;
  ASSERT_TRUE(f.frontend.ScanBarcode(TestBarcode(), 10).ok());
  f.net.faults().drop_next = 1;
  EXPECT_FALSE(f.frontend.LeavePlace().ok());
  EXPECT_EQ(f.server.leaves_, 0);
  // The notification was not abandoned: it waits in the leave queue.
  EXPECT_EQ(f.frontend.pending_leaves(), 1u);
  f.clock.advance_to(SimTime{1'000});
  f.frontend.Tick();
  EXPECT_EQ(f.server.leaves_, 1);
  EXPECT_EQ(f.frontend.pending_leaves(), 0u);
  EXPECT_EQ(f.frontend.stats().leaves_retried, 1u);
}

TEST(Frontend, UploadQueueBoundedDropsOldest) {
  SimClock clock;
  net::LoopbackNetwork net;
  FakeServer server{net, clock};
  FakeEnvironment env;
  FrontendConfig config{PhoneId{1}, UserId{1}, "tester", Token{"tok-x"},
                        true};
  config.max_pending_uploads = 1;
  MobileFrontend frontend{config, net, env, clock};
  ASSERT_TRUE(frontend.ScanBarcode(TestBarcode(), 10).ok());

  net::FaultRule outage;  // every upload fails while this rule is armed
  outage.drop = 1.0;
  net.faults().AddRule(outage);

  clock.advance_to(SimTime{15'000});
  frontend.Tick();  // first instant's upload fails -> queued
  clock.advance_to(SimTime{25'000});
  frontend.Tick();  // retry fails; second instant's upload evicts the first
  EXPECT_EQ(frontend.pending_uploads(), 1u);
  EXPECT_EQ(frontend.stats().uploads_dropped, 1u);

  net.faults().Clear();
  clock.advance_to(SimTime{60'000});
  frontend.Tick();  // surviving entry flushes once the link heals
  EXPECT_EQ(frontend.pending_uploads(), 0u);
  // Only the newest upload (seq 2) made it; seq 1 was evicted, never sent.
  ASSERT_EQ(server.seqs_.size(), 1u);
  EXPECT_EQ(server.seqs_[0], 2u);
}

TEST(Frontend, BackoffGrowsAndIsCapped) {
  FrontendFixture f;
  ASSERT_TRUE(f.frontend.ScanBarcode(TestBarcode(), 10).ok());
  net::FaultRule outage;
  outage.drop = 1.0;
  f.net.faults().AddRule(outage);
  f.clock.advance_to(SimTime{15'000});
  f.frontend.Tick();  // queue the first instant's upload
  ASSERT_EQ(f.frontend.pending_uploads(), 1u);

  // Drive many failed retries; the retry *attempt* count is bounded by the
  // exponential backoff — with a 1 s tick and a 60 s cap, 100 ticks can
  // hold at most ~20 attempts (1+2+4+...+60+60+... spacing), far fewer
  // than the 100 a retry-every-tick policy would burn.
  std::uint64_t attempts_before = f.frontend.stats().uploads_retried;
  for (int i = 0; i < 100; ++i) {
    f.clock.advance(SimDuration{1'000});
    f.frontend.Tick();
  }
  const std::uint64_t attempts =
      f.frontend.stats().uploads_retried - attempts_before;
  EXPECT_GE(attempts, 4u);   // it IS still retrying...
  EXPECT_LE(attempts, 30u);  // ...but exponentially spaced
  // Data is never abandoned (later instants may have queued up too).
  EXPECT_GE(f.frontend.pending_uploads(), 1u);
  EXPECT_EQ(f.frontend.stats().uploads_dropped, 0u);
}

TEST(Frontend, LeaveNotifiesServerAndFinishesTasks) {
  FrontendFixture f;
  ASSERT_TRUE(f.frontend.ScanBarcode(TestBarcode(), 10).ok());
  EXPECT_TRUE(f.frontend.LeavePlace().ok());
  EXPECT_EQ(f.server.leaves_, 1);
  EXPECT_EQ(f.frontend.task(TaskId{77})->status(), TaskStatus::kFinished);
  // Leaving without participating is an error.
  FrontendFixture g;
  EXPECT_FALSE(g.frontend.LeavePlace().ok());
}

TEST(Frontend, AnswersPings) {
  FrontendFixture f;
  Result<Message> reply =
      f.net.Send(f.frontend.EndpointName(), Ping{PhoneId{1}});
  ASSERT_TRUE(reply.ok());
  const auto* pong = std::get_if<PingReply>(&reply.value());
  ASSERT_NE(pong, nullptr);
  EXPECT_DOUBLE_EQ(pong->location.lat_deg, 43.0);
  EXPECT_EQ(f.frontend.stats().pings_answered, 1u);
}

TEST(Frontend, ScheduleRefreshDropsPastInstants) {
  FrontendFixture f;
  ASSERT_TRUE(f.frontend.ScanBarcode(TestBarcode(), 10).ok());
  f.clock.advance_to(SimTime{15'000});
  f.frontend.Tick();  // executes the 10 s instant
  // Refresh with a schedule containing a past and a future instant.
  ScheduleDistribution refresh;
  refresh.task = TaskId{77};
  refresh.app = AppId{5};
  refresh.script = "local xs = get_wifi_readings(1)";
  refresh.instants = {SimTime{12'000}, SimTime{40'000}};
  refresh.sample_window = SimDuration{500};
  refresh.samples_per_window = 1;
  ASSERT_TRUE(f.net.Send(f.frontend.EndpointName(), refresh).ok());
  const TaskInstance* task = f.frontend.task(TaskId{77});
  ASSERT_NE(task, nullptr);
  // Only the 40 s instant survives (12 s is already in the past).
  EXPECT_EQ(task->schedule().size(), 1u);
  EXPECT_EQ(task->schedule()[0].ms, 40'000);
}

TEST(Frontend, RejectsUnexpectedMessageTypes) {
  FrontendFixture f;
  Result<Message> reply = f.net.Send(f.frontend.EndpointName(), Ack{1});
  EXPECT_EQ(reply.code(), Errc::kInvalidArgument);
}

TEST(Frontend, CrashLosesQueueButKeepsSeqAndIncarnation) {
  // A crash wipes volatile state (tasks, queued uploads) but the persisted
  // bits — the dedup sequence counter and the install incarnation — must
  // survive, so post-restart uploads never reuse a seq the server already
  // stored under this install.
  FrontendFixture f;
  ASSERT_TRUE(f.frontend.ScanBarcode(TestBarcode(), 10).ok());
  EXPECT_EQ(f.frontend.incarnation(), 1u);
  f.clock.advance_to(SimTime{15'000});
  f.net.faults().drop_next = 1;
  f.frontend.Tick();  // seq 1 burned, upload queued
  ASSERT_EQ(f.frontend.pending_uploads(), 1u);

  f.frontend.Crash();
  EXPECT_EQ(f.frontend.pending_uploads(), 0u);  // queue was volatile
  EXPECT_EQ(f.frontend.num_tasks(), 0u);
  EXPECT_EQ(f.frontend.incarnation(), 1u);  // persisted

  Result<TaskId> rejoin = f.frontend.Restart();
  ASSERT_TRUE(rejoin.ok()) << rejoin.error().str();
  EXPECT_EQ(rejoin.value(), TaskId{77});
  f.clock.advance_to(SimTime{30'000});
  f.frontend.Tick();  // fresh upload after restart
  ASSERT_GE(f.server.seqs_.size(), 1u);
  // seq 1 died with the crash; the counter survived, so this is seq 2.
  EXPECT_EQ(f.server.seqs_[0], 2u);
}

TEST(Frontend, RestartWithoutEverJoiningFails) {
  FrontendFixture f;
  f.frontend.Crash();
  EXPECT_FALSE(f.frontend.Restart().ok());
}

TEST(Frontend, UninstallBumpsIncarnationAndResetsSeq) {
  // Uninstall/reinstall is a NEW install: the incarnation increments (the
  // server uses it to tell reinstall from replay) and the seq space
  // restarts at 1 under the new incarnation.
  FrontendFixture f;
  ASSERT_TRUE(f.frontend.ScanBarcode(TestBarcode(), 10).ok());
  f.clock.advance_to(SimTime{15'000});
  f.frontend.Tick();  // seq 1 delivered under incarnation 1
  ASSERT_EQ(f.server.seqs_.size(), 1u);

  f.frontend.Uninstall();
  EXPECT_EQ(f.frontend.num_tasks(), 0u);
  EXPECT_EQ(f.frontend.pending_uploads(), 0u);
  EXPECT_EQ(f.frontend.incarnation(), 2u);
  // Uninstall also forgets the join: Restart() has nothing to rejoin.
  EXPECT_FALSE(f.frontend.Restart().ok());

  ASSERT_TRUE(f.frontend.ScanBarcode(TestBarcode(), 10).ok());
  f.clock.advance_to(SimTime{30'000});
  f.frontend.Tick();
  ASSERT_EQ(f.server.seqs_.size(), 2u);
  EXPECT_EQ(f.server.seqs_[1], 1u);  // fresh seq space
}

TEST(Frontend, ThrottleReplyPacesTheWholeQueue) {
  // A ThrottleReply is not a failure: the upload goes back in the queue
  // untouched (no attempt charged, no failure counted) and the phone sends
  // NOTHING until the hint expires — uploads, that is; leaves still flush.
  FrontendFixture f;
  ASSERT_TRUE(f.frontend.ScanBarcode(TestBarcode(), 10).ok());
  f.clock.advance_to(SimTime{15'000});
  f.server.throttle_next_ = 1;  // hint: retry after 12 s
  f.frontend.Tick();
  EXPECT_EQ(f.frontend.stats().uploads_throttled, 1u);
  EXPECT_EQ(f.frontend.stats().upload_failures, 0u);
  EXPECT_EQ(f.frontend.pending_uploads(), 1u);
  EXPECT_EQ(f.frontend.paced_until().ms, 15'000 + 12'000);

  f.clock.advance_to(SimTime{20'000});
  f.frontend.Tick();  // still paced: nothing sent...
  EXPECT_EQ(f.server.uploads_, 0);
  // ...but sensing went on: the 20 s instant's data queued behind the gate.
  EXPECT_EQ(f.frontend.pending_uploads(), 2u);

  f.clock.advance_to(SimTime{28'000});
  f.frontend.Tick();  // hint expired: the whole queue flushes, in order
  EXPECT_EQ(f.server.uploads_, 2);
  ASSERT_EQ(f.server.seqs_.size(), 2u);
  EXPECT_EQ(f.server.seqs_[0], 1u);  // same seq, same data — only delayed
  EXPECT_EQ(f.server.seqs_[1], 2u);
  EXPECT_EQ(f.frontend.pending_uploads(), 0u);
}

TEST(Frontend, RetryBudgetExhaustionAbandonsTheUpload) {
  // With a per-campaign retry budget of 2, an upload gets its first send
  // plus two budgeted re-sends; the next failure abandons it instead of
  // retrying forever. Throttles never charge the budget — only failures.
  SimClock clock;
  net::LoopbackNetwork net;
  FakeServer server{net, clock};
  FakeEnvironment env;
  FrontendConfig config{PhoneId{1}, UserId{1}, "tester", Token{"tok-x"},
                        true};
  config.retry_budget = 2;
  MobileFrontend frontend{config, net, env, clock};
  ASSERT_TRUE(frontend.ScanBarcode(TestBarcode(), 10).ok());

  net::FaultRule outage;
  outage.drop = 1.0;
  net.faults().AddRule(outage);
  clock.advance_to(SimTime{15'000});
  frontend.Tick();  // first send fails (free), upload queued
  ASSERT_EQ(frontend.pending_uploads(), 1u);
  for (int i = 0; i < 20 && frontend.pending_uploads() > 0; ++i) {
    clock.advance(SimDuration{60'000});  // far past any backoff
    frontend.Tick();
  }
  // Both of the schedule's uploads die: the budget is per CAMPAIGN, not
  // per upload. The first upload burns the two budgeted re-queues (three
  // re-sends; the third finds the budget spent and abandons); the second
  // upload's very first retry then abandons immediately. Four retries
  // total — never the unbounded churn an outage would otherwise cause.
  EXPECT_EQ(frontend.stats().uploads_abandoned, 2u);
  EXPECT_EQ(frontend.pending_uploads(), 0u);
  EXPECT_EQ(frontend.stats().uploads_retried, 4u);
  EXPECT_EQ(server.uploads_, 0);
}

}  // namespace
}  // namespace sor::phone

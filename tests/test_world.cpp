// Unit tests for the simulated world: signals, trail geometry, phone
// agents, arrival processes and the two paper scenarios.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "world/arrivals.hpp"
#include "world/phone_agent.hpp"
#include "world/scenarios.hpp"

namespace sor::world {
namespace {

TEST(Signal, TruthAndDrift) {
  Signal s;
  s.base = 70.0;
  s.drift_amp = 2.0;
  s.drift_period_s = 3600.0;
  EXPECT_DOUBLE_EQ(s.Truth(SimTime{0}), 70.0);
  // Quarter period: base + amplitude.
  EXPECT_NEAR(s.Truth(SimTime::FromSeconds(900)), 72.0, 1e-9);
}

TEST(Signal, ObservationNoiseStatistics) {
  Signal s;
  s.base = 50.0;
  s.noise_stddev = 1.5;
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 20'000; ++i) stats.add(s.Observe(SimTime{0}, rng));
  EXPECT_NEAR(stats.mean(), 50.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 1.5, 0.1);
}

TEST(Trail, GeneratedLengthAndResolution) {
  TrailSpec spec;
  spec.start = GeoPoint{43.0, -76.0, 150.0};
  spec.length_m = 1'000.0;
  spec.segment_m = 10.0;
  const Trail trail = Trail::Generate(spec);
  EXPECT_EQ(trail.points().size(), 101u);
  EXPECT_DOUBLE_EQ(trail.length_m(), 1'000.0);
}

TEST(Trail, CurvatureTracksSpec) {
  for (double target : {15.0, 40.0, 60.0}) {
    TrailSpec spec;
    spec.start = GeoPoint{43.0, -76.0, 150.0};
    spec.length_m = 3'000.0;
    spec.curvature_mrad_per_m = target;
    spec.seed = static_cast<std::uint64_t>(target);
    const Trail trail = Trail::Generate(spec);
    EXPECT_NEAR(trail.MeanCurvatureMradPerM(), target, target * 0.1)
        << "target " << target;
  }
}

TEST(Trail, AltitudeProfileSinusoid) {
  TrailSpec spec;
  spec.start = GeoPoint{43.0, -76.0, 150.0};
  spec.length_m = 2'800.0;
  spec.altitude_base_m = 150.0;
  spec.altitude_amplitude_m = 20.0;
  spec.altitude_period_m = 700.0;
  const Trail trail = Trail::Generate(spec);
  RunningStats alt;
  for (double s = 0; s <= trail.length_m(); s += 5.0)
    alt.add(trail.PositionAt(s).alt_m);
  EXPECT_NEAR(alt.mean(), 150.0, 1.0);
  // Sinusoid with amplitude A has stddev A/sqrt(2).
  EXPECT_NEAR(alt.stddev(), 20.0 / std::sqrt(2.0), 1.0);
}

TEST(Trail, PositionPingPongsAtEnds) {
  TrailSpec spec;
  spec.start = GeoPoint{43.0, -76.0, 150.0};
  spec.length_m = 100.0;
  const Trail trail = Trail::Generate(spec);
  const GeoPoint at_end = trail.PositionAt(100.0);
  const GeoPoint reflected = trail.PositionAt(120.0);  // = position at 80
  const GeoPoint at_80 = trail.PositionAt(80.0);
  EXPECT_NEAR(HaversineMeters(reflected, at_80), 0.0, 1e-6);
  EXPECT_GT(HaversineMeters(reflected, at_end), 1.0);
  // Way beyond: 2 full lengths = back at start.
  EXPECT_NEAR(HaversineMeters(trail.PositionAt(200.0), trail.PositionAt(0.0)),
              0.0, 1e-6);
}

TEST(PhoneAgent, StaticCustomerStaysPut) {
  const Scenario scenario = MakeCoffeeShopScenario();
  PhoneAgentConfig cfg;
  cfg.id = PhoneId{1};
  cfg.mobility = Mobility::kStatic;
  cfg.seed = 5;
  PhoneAgent agent(scenario.places[0], cfg);
  const GeoPoint a = agent.Position(SimTime{0});
  const GeoPoint b = agent.Position(SimTime{1'000'000});
  EXPECT_DOUBLE_EQ(a.lat_deg, b.lat_deg);
  // Seated within the participation radius.
  EXPECT_LE(HaversineMeters(a, scenario.places[0].center),
            scenario.places[0].radius_m);
}

TEST(PhoneAgent, HikerMovesAlongTrail) {
  const Scenario scenario = MakeHikingTrailScenario();
  PhoneAgentConfig cfg;
  cfg.id = PhoneId{1};
  cfg.mobility = Mobility::kTrailWalk;
  cfg.walk_speed_mps = 1.3;
  cfg.seed = 6;
  PhoneAgent agent(scenario.places[0], cfg);
  const GeoPoint start = agent.Position(SimTime{0});
  const GeoPoint later = agent.Position(SimTime::FromSeconds(600));
  // 600 s at 1.3 m/s = 780 m along the trail; displacement is large.
  EXPECT_GT(HaversineMeters(start, later), 50.0);
}

TEST(PhoneAgent, AccelerometerReflectsRoughness) {
  const Scenario scenario = MakeHikingTrailScenario();
  // Cliff Trail (index 2) is much rougher than Green Lake (index 0).
  PhoneAgentConfig cfg;
  cfg.id = PhoneId{1};
  cfg.seed = 7;
  PhoneAgent smooth(scenario.places[0], cfg);
  PhoneAgent rough(scenario.places[2], cfg);
  RunningStats s_smooth, s_rough;
  for (int i = 0; i < 5'000; ++i) {
    s_smooth.add(smooth.Sample(SensorKind::kAccelerometer, SimTime{i}));
    s_rough.add(rough.Sample(SensorKind::kAccelerometer, SimTime{i}));
  }
  EXPECT_NEAR(s_smooth.mean(), 9.81, 0.05);
  EXPECT_NEAR(s_smooth.stddev(), scenario.places[0].surface_roughness, 0.02);
  EXPECT_NEAR(s_rough.stddev(), scenario.places[2].surface_roughness, 0.05);
}

TEST(PhoneAgent, EnvironmentalChannelMatchesSignal) {
  const Scenario scenario = MakeCoffeeShopScenario();
  PhoneAgentConfig cfg;
  cfg.id = PhoneId{2};
  cfg.seed = 8;
  PhoneAgent agent(scenario.places[2], cfg);  // Starbucks, 74 F
  RunningStats stats;
  for (int i = 0; i < 5'000; ++i)
    stats.add(agent.Sample(SensorKind::kDroneTemperature,
                           SimTime{i * 1'000}));
  EXPECT_NEAR(stats.mean(), 74.0, 1.0);
}

TEST(PhoneAgent, UnknownChannelIsZero) {
  const Scenario scenario = MakeCoffeeShopScenario();
  PhoneAgentConfig cfg;
  cfg.id = PhoneId{3};
  PhoneAgent agent(scenario.places[0], cfg);
  EXPECT_DOUBLE_EQ(agent.Sample(SensorKind::kDroneGasCo, SimTime{0}), 0.0);
}

TEST(Arrivals, WindowsWithinPeriodAndOrdered) {
  Rng rng(9);
  ArrivalConfig cfg;
  cfg.num_users = 200;
  cfg.period_s = 10'800;
  cfg.budget = 17;
  const auto users = GenerateArrivals(cfg, rng);
  ASSERT_EQ(users.size(), 200u);
  for (const sched::UserWindow& u : users) {
    EXPECT_GE(u.presence.begin.ms, 0);
    EXPECT_LE(u.presence.end.ms, 10'800'000);
    EXPECT_LE(u.presence.begin, u.presence.end);
    EXPECT_EQ(u.budget, 17);
  }
}

TEST(Arrivals, ArrivalsRoughlyUniform) {
  Rng rng(10);
  ArrivalConfig cfg;
  cfg.num_users = 20'000;
  const auto users = GenerateArrivals(cfg, rng);
  RunningStats arrivals;
  for (const auto& u : users) arrivals.add(u.presence.begin.seconds());
  // U(0, 10800): mean 5400, stddev 10800/sqrt(12) ≈ 3118.
  EXPECT_NEAR(arrivals.mean(), 5'400.0, 100.0);
  EXPECT_NEAR(arrivals.stddev(), 3'118.0, 100.0);
}

TEST(Arrivals, ExponentialDwellModel) {
  Rng rng(11);
  ArrivalConfig cfg;
  cfg.num_users = 20'000;
  cfg.model = ArrivalModel::kExponentialDwell;
  cfg.mean_dwell_s = 900.0;
  const auto users = GenerateArrivals(cfg, rng);
  RunningStats dwell;
  for (const auto& u : users) {
    EXPECT_LE(u.presence.end.ms, 10'800'000);
    EXPECT_LE(u.presence.begin, u.presence.end);
    dwell.add((u.presence.end - u.presence.begin).seconds());
  }
  // Clipping at the period end pulls the mean slightly below 900 s.
  EXPECT_GT(dwell.mean(), 700.0);
  EXPECT_LT(dwell.mean(), 900.0);
  // Far shorter visits than the paper's uniform model (mean ~2700 s).
}

TEST(Scenarios, TrailScenarioShape) {
  const Scenario s = MakeHikingTrailScenario();
  EXPECT_EQ(s.places.size(), 3u);
  EXPECT_EQ(s.features.size(), 5u);   // the 5 trail features of §V-A
  EXPECT_EQ(s.profiles.size(), 3u);   // Alice, Bob, Chris
  EXPECT_EQ(s.phones_per_place, 7);   // §V-A
  for (const PlaceModel& p : s.places) {
    EXPECT_TRUE(p.trail.has_value()) << p.name;
    EXPECT_NE(p.signal(SensorKind::kDroneTemperature), nullptr);
  }
  EXPECT_EQ(GroundTruthFeatures(s).size(), 15u);
}

TEST(Scenarios, CoffeeScenarioShape) {
  const Scenario s = MakeCoffeeShopScenario();
  EXPECT_EQ(s.places.size(), 3u);
  EXPECT_EQ(s.features.size(), 4u);   // the 4 coffee-shop features of §V-B
  EXPECT_EQ(s.profiles.size(), 2u);   // David, Emma
  EXPECT_EQ(s.phones_per_place, 12);  // §V-B
  EXPECT_EQ(GroundTruthFeatures(s).size(), 12u);
  // Ground-truth narrative: Starbucks darkest & noisiest, TH brightest.
  const auto truth = GroundTruthFeatures(s);
  const int M = 4;
  EXPECT_GT(truth[0 * M + 1], truth[1 * M + 1]);  // TH brighter than B&N
  EXPECT_GT(truth[1 * M + 1], truth[2 * M + 1]);  // B&N brighter than SB
  EXPECT_GT(truth[2 * M + 2], truth[0 * M + 2]);  // SB noisier than TH
}

TEST(Scenarios, TrailGroundTruthNarrative) {
  const Scenario s = MakeHikingTrailScenario();
  const auto truth = GroundTruthFeatures(s);
  const int M = 5;
  // Cliff Trail (2) is the roughest, twistiest and steepest.
  EXPECT_GT(truth[2 * M + 2], truth[1 * M + 2]);
  EXPECT_GT(truth[2 * M + 3], truth[1 * M + 3]);
  EXPECT_GT(truth[2 * M + 4], truth[1 * M + 4]);
  // Green Lake (0) is the most humid and coolest.
  EXPECT_GT(truth[0 * M + 1], truth[1 * M + 1]);
  EXPECT_LT(truth[0 * M + 0], truth[1 * M + 0]);
}

}  // namespace
}  // namespace sor::world

// Unit tests for src/common: ids, Result/Status, SimTime, Rng, statistics,
// and geographic primitives.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "common/geo.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/sensor_kind.hpp"
#include "common/sim_time.hpp"
#include "common/stats.hpp"

namespace sor {
namespace {

// --- ids -------------------------------------------------------------------

TEST(Ids, DefaultIsInvalid) {
  UserId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), 0u);
}

TEST(Ids, GeneratorStartsAtOneAndIncrements) {
  IdGenerator<TaskId> gen;
  EXPECT_EQ(gen.next().value(), 1u);
  EXPECT_EQ(gen.next().value(), 2u);
  EXPECT_TRUE(gen.next().valid());
}

TEST(Ids, DistinctTagTypesDoNotCompare) {
  // Compile-time property: UserId and AppId are different types. This test
  // documents the intent; the real check is that this file compiles.
  UserId user{7};
  AppId app{7};
  EXPECT_EQ(user.value(), app.value());
}

TEST(Ids, Hashable) {
  std::unordered_set<PlaceId> set;
  set.insert(PlaceId{1});
  set.insert(PlaceId{2});
  set.insert(PlaceId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(TaskId{1}, TaskId{2});
  EXPECT_EQ(TaskId{3}, TaskId{3});
}

// --- Result / Status --------------------------------------------------------

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), Errc::kOk);
}

TEST(Result, HoldsError) {
  Result<int> r(Errc::kNotFound, "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
  EXPECT_EQ(r.error().str(), "not found: nope");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.str(), "ok");
}

TEST(Status, CarriesError) {
  Status s(Errc::kTimeout, "sensor");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::kTimeout);
}

TEST(Errc, AllValuesHaveNames) {
  for (int i = 0; i <= static_cast<int>(Errc::kInternal); ++i) {
    EXPECT_STRNE(to_string(static_cast<Errc>(i)), "unknown");
  }
}

// --- SimTime ---------------------------------------------------------------

TEST(SimTime, Arithmetic) {
  SimTime t{1'000};
  SimDuration d{500};
  EXPECT_EQ((t + d).ms, 1'500);
  EXPECT_EQ((t - d).ms, 500);
  EXPECT_EQ((SimTime{2'000} - t).ms, 1'000);
  EXPECT_DOUBLE_EQ(SimTime::FromSeconds(1.5).seconds(), 1.5);
}

TEST(SimTime, IntervalContains) {
  SimInterval iv{SimTime{100}, SimTime{200}};
  EXPECT_TRUE(iv.contains(SimTime{100}));
  EXPECT_TRUE(iv.contains(SimTime{200}));
  EXPECT_FALSE(iv.contains(SimTime{99}));
  EXPECT_FALSE(iv.contains(SimTime{201}));
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE((SimInterval{SimTime{5}, SimTime{4}}).empty());
}

TEST(SimTime, IntervalIntersect) {
  SimInterval a{SimTime{0}, SimTime{100}};
  SimInterval b{SimTime{50}, SimTime{150}};
  const SimInterval c = a.intersect(b);
  EXPECT_EQ(c.begin.ms, 50);
  EXPECT_EQ(c.end.ms, 100);
  EXPECT_TRUE(a.intersect(SimInterval{SimTime{200}, SimTime{300}}).empty());
}

TEST(SimTime, InstantGridUniform) {
  const auto grid =
      MakeInstantGrid(SimInterval{SimTime{0}, SimTime{10'800'000}}, 1080);
  ASSERT_EQ(grid.size(), 1080u);
  // Equal spacing of 10 s and the last instant at the period end.
  for (std::size_t i = 1; i < grid.size(); ++i)
    EXPECT_EQ((grid[i] - grid[i - 1]).ms, 10'000);
  EXPECT_EQ(grid.back().ms, 10'800'000);
}

TEST(SimTime, ClockAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.now().ms, 0);
  clock.advance(SimDuration{250});
  clock.advance_to(SimTime{1'000});
  EXPECT_EQ(clock.now().ms, 1'000);
}

TEST(SimTime, ToStringFormat) {
  EXPECT_EQ(to_string(SimTime{3'723'004}), "01:02:03.004");
}

// --- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicBySeed) {
  Rng a(7), b(7), c(8);
  const double x = a.uniform(0, 1);
  EXPECT_DOUBLE_EQ(x, b.uniform(0, 1));
  EXPECT_NE(x, c.uniform(0, 1));
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1'000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
    const auto n = rng.uniform_int(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20'000; ++i) stats.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(9);
  Rng child = parent.fork();
  EXPECT_NE(parent.uniform(0, 1), child.uniform(0, 1));
}

// --- statistics --------------------------------------------------------------

TEST(Stats, BasicMoments) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
  EXPECT_DOUBLE_EQ(Min(xs), 2.0);
  EXPECT_DOUBLE_EQ(Max(xs), 9.0);
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(Mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
}

TEST(Stats, RunningMatchesBatch) {
  Rng rng(21);
  std::vector<double> xs;
  RunningStats running;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-10, 10);
    xs.push_back(v);
    running.add(v);
  }
  EXPECT_NEAR(running.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(running.variance(), Variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(running.min(), Min(xs));
  EXPECT_DOUBLE_EQ(running.max(), Max(xs));
}

TEST(Stats, RunningMerge) {
  Rng rng(22);
  RunningStats all, left, right;
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) {
    const double v = rng.gaussian(0, 3);
    xs.push_back(v);
    all.add(v);
    (i < 120 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.count(), all.count());
}

TEST(Stats, MedianOddEvenEmpty) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(Stats, MadKnownValue) {
  const std::vector<double> xs = {1, 1, 2, 2, 4, 6, 9};
  const double med = Median(xs);  // 2
  EXPECT_DOUBLE_EQ(med, 2.0);
  // deviations: 1,1,0,0,2,4,7 -> median 1.
  EXPECT_DOUBLE_EQ(Mad(xs, med), 1.0);
}

TEST(Stats, RobustMeanRejectsOutliers) {
  // 20 well-behaved readings plus one broken-sensor spike.
  std::vector<double> xs;
  Rng rng(55);
  for (int i = 0; i < 20; ++i) xs.push_back(70.0 + rng.gaussian(0, 0.5));
  xs.push_back(10'000.0);
  const double plain = Mean(xs);
  const double robust = RobustMean(xs, 6.0);
  EXPECT_GT(plain, 500.0);          // the spike wrecks the plain mean
  EXPECT_NEAR(robust, 70.0, 0.5);   // the robust mean shrugs it off
}

TEST(Stats, RobustMeanOnCleanDataMatchesMean) {
  std::vector<double> xs;
  Rng rng(56);
  for (int i = 0; i < 200; ++i) xs.push_back(rng.gaussian(5.0, 1.0));
  EXPECT_NEAR(RobustMean(xs, 6.0), Mean(xs), 0.05);
  // Constant data: MAD = 0, falls back to the mean.
  const std::vector<double> constant = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(RobustMean(constant), 3.0);
  EXPECT_DOUBLE_EQ(RobustMean({}), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
}

// --- geo ----------------------------------------------------------------------

TEST(Geo, HaversineKnownDistance) {
  // Syracuse -> Tempe is about 3290 km.
  const GeoPoint syracuse{43.05, -76.15, 0};
  const GeoPoint tempe{33.43, -111.94, 0};
  EXPECT_NEAR(HaversineMeters(syracuse, tempe), 3.29e6, 5e4);
  EXPECT_DOUBLE_EQ(HaversineMeters(syracuse, syracuse), 0.0);
}

TEST(Geo, OffsetRoundTrip) {
  const GeoPoint origin{43.0, -76.0, 100.0};
  const GeoPoint moved = OffsetMeters(origin, 120.0, -60.0);
  const LocalXY xy = ProjectLocal(origin, moved);
  EXPECT_NEAR(xy.x_m, 120.0, 0.01);
  EXPECT_NEAR(xy.y_m, -60.0, 0.01);
  EXPECT_NEAR(HaversineMeters(origin, moved), std::hypot(120.0, 60.0), 0.5);
}

TEST(Geo, Distance3dIncludesAltitude) {
  const GeoPoint a{43.0, -76.0, 0.0};
  GeoPoint b = a;
  b.alt_m = 30.0;
  EXPECT_NEAR(Distance3dMeters(a, b), 30.0, 1e-6);
}

TEST(Geo, CurvatureStraightLineIsZero) {
  const GeoPoint a{43.0, -76.0, 0};
  const GeoPoint b = OffsetMeters(a, 10, 0);
  const GeoPoint c = OffsetMeters(a, 20, 0);
  EXPECT_NEAR(PolylineCurvature(a, b, c), 0.0, 1e-6);
}

TEST(Geo, CurvatureRightAngleTurn) {
  const GeoPoint a{43.0, -76.0, 0};
  const GeoPoint b = OffsetMeters(a, 10, 0);
  const GeoPoint c = OffsetMeters(a, 10, 10);
  // 90-degree turn over 10 m mean segment length: pi/2 / 10.
  EXPECT_NEAR(PolylineCurvature(a, b, c), kPi / 2.0 / 10.0, 1e-3);
}

TEST(Geo, CurvatureDegenerateSegments) {
  const GeoPoint a{43.0, -76.0, 0};
  EXPECT_DOUBLE_EQ(PolylineCurvature(a, a, a), 0.0);
}

// --- sensor kinds ---------------------------------------------------------

TEST(SensorKind, RoundTripNames) {
  for (int i = 0; i < kSensorKindCount; ++i) {
    const auto kind = static_cast<SensorKind>(i);
    const auto parsed = SensorKindFromString(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(SensorKindFromString("flux_capacitor").has_value());
}

TEST(SensorKind, ExternalClassification) {
  EXPECT_TRUE(IsExternalSensor(SensorKind::kDroneTemperature));
  EXPECT_TRUE(IsExternalSensor(SensorKind::kDroneColor));
  EXPECT_FALSE(IsExternalSensor(SensorKind::kAccelerometer));
  EXPECT_FALSE(IsExternalSensor(SensorKind::kGps));
}

}  // namespace
}  // namespace sor

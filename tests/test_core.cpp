// Unit tests for the sor::core facade and cross-cutting system glue:
// default scripts, configuration validation, ranking explanations, and a
// parser robustness sweep.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "phone/task_instance.hpp"
#include "script/parser.hpp"
#include "server/visualization.hpp"

namespace sor {
namespace {

// --- default sensing scripts ----------------------------------------------------

// Collect the names of all functions an expression/statement tree calls.
void CollectCalls(const script::Expr& e, std::vector<std::string>& out);
void CollectCalls(const script::Stmt& s, std::vector<std::string>& out) {
  if (s.expr) CollectCalls(*s.expr, out);
  if (s.target_index) CollectCalls(*s.target_index, out);
  if (s.for_start) CollectCalls(*s.for_start, out);
  if (s.for_stop) CollectCalls(*s.for_stop, out);
  if (s.for_step) CollectCalls(*s.for_step, out);
  for (const auto& child : s.body) CollectCalls(*child, out);
  for (const auto& child : s.else_body) CollectCalls(*child, out);
}
void CollectCalls(const script::Expr& e, std::vector<std::string>& out) {
  if (e.kind == script::Expr::Kind::kCall) out.push_back(e.text);
  if (e.lhs) CollectCalls(*e.lhs, out);
  if (e.rhs) CollectCalls(*e.rhs, out);
  for (const auto& arg : e.args) CollectCalls(*arg, out);
}

TEST(DefaultScript, ParsesAndUsesOnlyKnownFunctions) {
  for (auto category : {world::PlaceCategory::kHikingTrail,
                        world::PlaceCategory::kCoffeeShop}) {
    const std::string src = core::DefaultScript(category);
    Result<script::Program> program = script::Parse(src);
    ASSERT_TRUE(program.ok()) << program.error().str();

    std::vector<std::string> calls;
    for (const auto& stmt : program.value().statements)
      CollectCalls(*stmt, calls);
    EXPECT_FALSE(calls.empty());
    for (const std::string& fn : calls) {
      const bool is_acquisition =
          phone::AcquisitionFunctionSensor(fn).has_value();
      const bool is_builtin =
          fn == "print" || fn == "len" || fn == "mean" || fn == "stddev";
      EXPECT_TRUE(is_acquisition || is_builtin) << fn;
    }
  }
}

TEST(DefaultScript, TrailScriptReadsEveryTrailFeatureSensor) {
  const std::string src =
      core::DefaultScript(world::PlaceCategory::kHikingTrail);
  // The five §V-A features need these acquisition calls.
  for (const char* fn :
       {"get_temperature_readings", "get_humidity_readings",
        "get_accelerometer_readings", "get_altitude_readings",
        "get_location"}) {
    EXPECT_NE(src.find(fn), std::string::npos) << fn;
  }
}

TEST(DefaultScript, CoffeeScriptReadsEveryCoffeeFeatureSensor) {
  const std::string src =
      core::DefaultScript(world::PlaceCategory::kCoffeeShop);
  for (const char* fn :
       {"get_temperature_readings", "get_light_readings",
        "get_noise_readings", "get_wifi_readings"}) {
    EXPECT_NE(src.find(fn), std::string::npos) << fn;
  }
}

// --- configuration validation -----------------------------------------------------

TEST(SystemConfig, RejectsBadInputs) {
  core::System system;
  core::FieldTestConfig config;
  config.budget_per_user = -1;
  EXPECT_EQ(system.RunFieldTest(world::MakeCoffeeShopScenario(), config)
                .code(),
            Errc::kInvalidArgument);
  world::Scenario empty;
  EXPECT_EQ(system.RunFieldTest(empty, core::FieldTestConfig{}).code(),
            Errc::kInvalidArgument);
}

// --- ranking explanation ------------------------------------------------------------

TEST(Explanation, ShowsIndividualRankingsAndFinal) {
  rank::FeatureMatrix m({"A", "B"},
                        {{"noise", rank::PrefDirection::kMinimize, 0},
                         {"temp", rank::PrefDirection::kTarget, 73}});
  m.set(0, 0, 0.1);
  m.set(0, 1, 73.0);
  m.set(1, 0, 0.5);
  m.set(1, 1, 60.0);
  const rank::PersonalizableRanker ranker(m);
  rank::UserProfile p;
  p.name = "u";
  p.prefs = {rank::FeaturePreference::PreferMin(5),
             rank::FeaturePreference::Prefer(73, 2)};
  Result<rank::RankingOutcome> outcome = ranker.Rank(p);
  ASSERT_TRUE(outcome.ok());
  const std::string text =
      server::RenderRankingExplanation(m, outcome.value());
  EXPECT_NE(text.find("noise"), std::string::npos);
  EXPECT_NE(text.find("weight 5"), std::string::npos);
  EXPECT_NE(text.find("A > B"), std::string::npos);
  EXPECT_NE(text.find("=> final: A > B"), std::string::npos);
}

// --- parser robustness sweep -------------------------------------------------------

TEST(ParserRobustness, RandomTokenSoupNeverCrashes) {
  static const char* kFragments[] = {
      "local", "x", "=", "1", "(", ")", "{", "}", "[", "]", "if", "then",
      "end", "for", "while", "do", "function", "return", "break", "and",
      "or", "not", "..", ",", "+", "-", "*", "/", "\"s\"", "nil", "true",
      "#", "<", ">=", "~=", "print",
  };
  Rng rng(606);
  for (int round = 0; round < 2'000; ++round) {
    std::string src;
    const int len = static_cast<int>(rng.uniform_int(1, 30));
    for (int i = 0; i < len; ++i) {
      src += kFragments[rng.uniform_int(
          0, static_cast<int>(std::size(kFragments)) - 1)];
      src += ' ';
    }
    (void)script::Parse(src);  // must not crash or hang; result irrelevant
  }
  SUCCEED();
}

TEST(ParserRobustness, DeeplyNestedExpressionsBounded) {
  // 300 nested parens: must parse (or fail) without stack issues.
  std::string src = "x = ";
  for (int i = 0; i < 300; ++i) src += '(';
  src += '1';
  for (int i = 0; i < 300; ++i) src += ')';
  EXPECT_TRUE(script::Parse(src).ok());
}

}  // namespace
}  // namespace sor

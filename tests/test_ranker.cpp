// Unit tests for Algorithm 2 (PersonalizableRanker): the Γ matrix, default
// preferences (73°F / MAX / MIN sentinels), per-feature rankings and the
// final weighted aggregation.
#include <gtest/gtest.h>

#include "rank/personalizable_ranker.hpp"

namespace sor::rank {
namespace {

FeatureMatrix CoffeeMatrix() {
  FeatureMatrix m({"TimHortons", "BnN", "Starbucks"},
                  {{"temperature", PrefDirection::kTarget, 73.0},
                   {"brightness", PrefDirection::kMaximize, 0.0},
                   {"noise", PrefDirection::kMinimize, 0.0}});
  const double values[3][3] = {
      {68.0, 900.0, 0.25},
      {72.0, 500.0, 0.20},
      {74.0, 200.0, 0.55},
  };
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) m.set(i, j, values[i][j]);
  return m;
}

TEST(FeatureMatrix, Accessors) {
  const FeatureMatrix m = CoffeeMatrix();
  EXPECT_EQ(m.num_places(), 3);
  EXPECT_EQ(m.num_features(), 3);
  EXPECT_EQ(m.feature_index("noise"), 2);
  EXPECT_EQ(m.feature_index("nope"), -1);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 500.0);
}

TEST(Ranker, GammaIsAbsoluteDistanceToPreferredValue) {
  const PersonalizableRanker ranker(CoffeeMatrix());
  UserProfile p;
  p.name = "t";
  p.prefs = {FeaturePreference::Prefer(70.0, 5),
             FeaturePreference::DontCare(),
             FeaturePreference::DontCare()};
  Result<RankingOutcome> r = ranker.Rank(p);
  ASSERT_TRUE(r.ok());
  // Γ for temperature column: |68-70|, |72-70|, |74-70|.
  EXPECT_DOUBLE_EQ(r.value().gamma[0 * 3 + 0], 2.0);
  EXPECT_DOUBLE_EQ(r.value().gamma[1 * 3 + 0], 2.0);
  EXPECT_DOUBLE_EQ(r.value().gamma[2 * 3 + 0], 4.0);
}

TEST(Ranker, DefaultTargetUses73F) {
  const PersonalizableRanker ranker(CoffeeMatrix());
  UserProfile p;
  p.name = "d";
  // kDefault on a kTarget feature -> default preference 73°F.
  p.prefs = {{FeaturePreference::Kind::kDefault, 0.0, 5},
             FeaturePreference::DontCare(),
             FeaturePreference::DontCare()};
  Result<RankingOutcome> r = ranker.Rank(p);
  ASSERT_TRUE(r.ok());
  // |68-73|=5, |72-73|=1, |74-73|=1 — BnN and Starbucks tie, ties break by
  // index; individual temperature ranking: BnN(1), Starbucks(2), TH(0).
  EXPECT_EQ(r.value().individual[0].order(), (std::vector<int>{1, 2, 0}));
}

TEST(Ranker, MaximizeDefaultPrefersLargest) {
  const PersonalizableRanker ranker(CoffeeMatrix());
  UserProfile p;
  p.name = "bright";
  p.prefs = {FeaturePreference::DontCare(),
             {FeaturePreference::Kind::kDefault, 0.0, 5},  // maximize
             FeaturePreference::DontCare()};
  Result<RankingOutcome> r = ranker.Rank(p);
  ASSERT_TRUE(r.ok());
  // Brightness 900 > 500 > 200 -> TH, BnN, SB.
  EXPECT_EQ(r.value().final_ranking.order(), (std::vector<int>{0, 1, 2}));
}

TEST(Ranker, MinimizeDefaultPrefersSmallest) {
  const PersonalizableRanker ranker(CoffeeMatrix());
  UserProfile p;
  p.name = "quiet";
  p.prefs = {FeaturePreference::DontCare(), FeaturePreference::DontCare(),
             {FeaturePreference::Kind::kDefault, 0.0, 4}};  // minimize noise
  Result<RankingOutcome> r = ranker.Rank(p);
  ASSERT_TRUE(r.ok());
  // Noise 0.20 < 0.25 < 0.55 -> BnN, TH, SB.
  EXPECT_EQ(r.value().final_ranking.order(), (std::vector<int>{1, 0, 2}));
}

TEST(Ranker, ExplicitMaxMinSentinelsOverrideDirection) {
  const PersonalizableRanker ranker(CoffeeMatrix());
  UserProfile p;
  p.name = "loud";  // someone who *wants* noise (PreferMax on a minimize
                    // feature must flip the ordering)
  p.prefs = {FeaturePreference::DontCare(), FeaturePreference::DontCare(),
             FeaturePreference::PreferMax(5)};
  Result<RankingOutcome> r = ranker.Rank(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().final_ranking.order(), (std::vector<int>{2, 0, 1}));
}

TEST(Ranker, WeightsResolvedFromProfile) {
  const PersonalizableRanker ranker(CoffeeMatrix());
  UserProfile p;
  p.name = "w";
  p.prefs = {FeaturePreference::Prefer(70, 2), FeaturePreference::PreferMax(0),
             FeaturePreference::PreferMin(5)};
  Result<RankingOutcome> r = ranker.Rank(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().weights, (std::vector<double>{2.0, 0.0, 5.0}));
}

TEST(Ranker, ProfileArityMismatchRejected) {
  const PersonalizableRanker ranker(CoffeeMatrix());
  UserProfile p;
  p.name = "bad";
  p.prefs = {FeaturePreference::DontCare()};  // 1 pref, 3 features
  EXPECT_EQ(ranker.Rank(p).code(), Errc::kInvalidArgument);
}

TEST(Ranker, WeightOutOfRangeRejected) {
  const PersonalizableRanker ranker(CoffeeMatrix());
  UserProfile p;
  p.name = "bad";
  p.prefs = {FeaturePreference::Prefer(70, 6), FeaturePreference::DontCare(),
             FeaturePreference::DontCare()};
  EXPECT_EQ(ranker.Rank(p).code(), Errc::kInvalidArgument);
  p.prefs[0].weight = -1;
  EXPECT_EQ(ranker.Rank(p).code(), Errc::kInvalidArgument);
}

TEST(Ranker, EmptyMatrixRejected) {
  const PersonalizableRanker ranker{FeatureMatrix{}};
  UserProfile p;
  EXPECT_FALSE(ranker.Rank(p).ok());
}

TEST(Ranker, AllMethodsProduceValidPermutations) {
  const PersonalizableRanker ranker(CoffeeMatrix());
  UserProfile p;
  p.name = "emma";
  p.prefs = {FeaturePreference::Prefer(72, 4), FeaturePreference::PreferMax(3),
             FeaturePreference::PreferMin(5)};
  for (auto method :
       {AggregationMethod::kFootruleMcmf, AggregationMethod::kFootruleHungarian,
        AggregationMethod::kExactKemeny, AggregationMethod::kBorda}) {
    Result<RankingOutcome> r = ranker.Rank(p, method);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().final_ranking.size(), 3);
    EXPECT_EQ(r.value().individual.size(), 3u);
  }
}

TEST(Ranker, OrderedNamesMatchRanking) {
  const FeatureMatrix m = CoffeeMatrix();
  const PersonalizableRanker ranker(m);
  UserProfile p;
  p.name = "quiet";
  p.prefs = {FeaturePreference::DontCare(), FeaturePreference::DontCare(),
             FeaturePreference::PreferMin(5)};
  Result<RankingOutcome> r = ranker.Rank(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().OrderedNames(m),
            (std::vector<std::string>{"BnN", "TimHortons", "Starbucks"}));
}

TEST(Ranker, SamePlaceDataDifferentUsersDifferentRankings) {
  // The paper's headline property: identical sensed data, personalized
  // outcomes.
  const PersonalizableRanker ranker(CoffeeMatrix());
  UserProfile dark;
  dark.name = "dark";
  dark.prefs = {FeaturePreference::DontCare(), FeaturePreference::PreferMin(5),
                FeaturePreference::DontCare()};
  UserProfile bright;
  bright.name = "bright";
  bright.prefs = {FeaturePreference::DontCare(),
                  FeaturePreference::PreferMax(5),
                  FeaturePreference::DontCare()};
  Result<RankingOutcome> a = ranker.Rank(dark);
  Result<RankingOutcome> b = ranker.Rank(bright);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().final_ranking.order(), b.value().final_ranking.order());
}

}  // namespace
}  // namespace sor::rank

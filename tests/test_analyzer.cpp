// SenseScript static analyzer: one rejecting test and one accepting
// near-miss per diagnostic code, manifest/cost checks, the diagnostics
// plumbing, and a seeded random-source property test that drives
// lexer→parser→analyzer without crashing (runs under asan-ubsan in CI).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "script/analysis/analyzer.hpp"
#include "script/analysis/diagnostics.hpp"
#include "script/analysis/flow_manifest.hpp"
#include "script/analysis/host_api.hpp"

namespace sor::script::analysis {
namespace {

AnalysisReport Analyzed(const std::string& source,
                   const AnalyzerOptions& options = {}) {
  return AnalyzeSource(source, options);
}

// --- SA001: lex/parse failure ----------------------------------------------

TEST(Analyzer, SA001ParseErrorBecomesDiagnostic) {
  const AnalysisReport r = Analyzed("local = 3\n");
  EXPECT_TRUE(r.Has("SA001"));
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics[0].line, 1);
  EXPECT_FALSE(r.manifest.cost_bounded);
}

TEST(Analyzer, SA001NearMissValidLocalPasses) {
  const AnalysisReport r = Analyzed("local x = 3\nprint(x)\n");
  EXPECT_FALSE(r.Has("SA001"));
  EXPECT_TRUE(r.ok());
}

// --- SA101: undefined name ---------------------------------------------------

TEST(Analyzer, SA101UndefinedNameRejected) {
  const AnalysisReport r = Analyzed("print(nowhere)\n");
  EXPECT_TRUE(r.Has("SA101"));
  EXPECT_FALSE(r.ok());
}

TEST(Analyzer, SA101NearMissAssignedNamePasses) {
  const AnalysisReport r = Analyzed("somewhere = 1\nprint(somewhere)\n");
  EXPECT_FALSE(r.Has("SA101"));
  EXPECT_TRUE(r.ok());
}

// --- SA102: use of possibly-unassigned variable ------------------------------

TEST(Analyzer, SA102OneBranchAssignmentWarns) {
  const AnalysisReport r = Analyzed(
      "local a = get_time_s()\n"
      "if a > 0 then\n"
      "  b = 1\n"
      "end\n"
      "print(b)\n");
  EXPECT_TRUE(r.Has("SA102"));
  EXPECT_TRUE(r.ok());  // warning, not error
}

TEST(Analyzer, SA102NearMissBothBranchesAssignPasses) {
  const AnalysisReport r = Analyzed(
      "local a = get_time_s()\n"
      "if a > 0 then\n"
      "  b = 1\n"
      "else\n"
      "  b = 2\n"
      "end\n"
      "print(b)\n");
  EXPECT_FALSE(r.Has("SA102"));
}

// --- SA103: shadowing --------------------------------------------------------

TEST(Analyzer, SA103InnerLocalShadowsOuterWarns) {
  const AnalysisReport r = Analyzed(
      "local x = 1\n"
      "if x > 0 then\n"
      "  local x = 2\n"
      "  print(x)\n"
      "end\n");
  EXPECT_TRUE(r.Has("SA103"));
  EXPECT_TRUE(r.ok());
}

TEST(Analyzer, SA103NearMissDistinctNamesPass) {
  const AnalysisReport r = Analyzed(
      "local x = 1\n"
      "if x > 0 then\n"
      "  local y = 2\n"
      "  print(y)\n"
      "end\n");
  EXPECT_FALSE(r.Has("SA103"));
}

// --- SA104: unreachable statement --------------------------------------------

TEST(Analyzer, SA104StatementAfterReturnWarns) {
  const AnalysisReport r = Analyzed(
      "function f()\n"
      "  return 1\n"
      "  print(\"dead\")\n"
      "end\n"
      "local r = f()\n"
      "print(r)\n");
  EXPECT_TRUE(r.Has("SA104"));
  EXPECT_TRUE(r.ok());
}

TEST(Analyzer, SA104NearMissReturnLastPasses) {
  const AnalysisReport r = Analyzed(
      "function f()\n"
      "  print(\"live\")\n"
      "  return 1\n"
      "end\n"
      "local r = f()\n"
      "print(r)\n");
  EXPECT_FALSE(r.Has("SA104"));
}

// --- SA105: break outside loop -----------------------------------------------

TEST(Analyzer, SA105TopLevelBreakRejected) {
  const AnalysisReport r = Analyzed("break\n");
  EXPECT_TRUE(r.Has("SA105"));
  EXPECT_FALSE(r.ok());
}

TEST(Analyzer, SA105NearMissBreakInsideLoopPasses) {
  const AnalysisReport r = Analyzed(
      "while true do\n"
      "  break\n"
      "end\n");
  EXPECT_FALSE(r.Has("SA105"));
  EXPECT_TRUE(r.ok());
}

// --- SA106: function shadows a host function ---------------------------------

TEST(Analyzer, SA106RedefiningHostFunctionRejected) {
  const AnalysisReport r = Analyzed(
      "function mean(xs)\n"
      "  return 0\n"
      "end\n");
  EXPECT_TRUE(r.Has("SA106"));
  EXPECT_FALSE(r.ok());
}

TEST(Analyzer, SA106NearMissFreshNamePasses) {
  const AnalysisReport r = Analyzed(
      "function center(xs)\n"
      "  return mean(xs)\n"
      "end\n"
      "local c = center({1, 2, 3})\n"
      "print(c)\n");
  EXPECT_FALSE(r.Has("SA106"));
}

// --- SA107: top-level call before definition ---------------------------------

TEST(Analyzer, SA107CallBeforeDefinitionWarns) {
  const AnalysisReport r = Analyzed(
      "early()\n"
      "function early()\n"
      "  print(\"hi\")\n"
      "end\n");
  EXPECT_TRUE(r.Has("SA107"));
}

TEST(Analyzer, SA107NearMissDefinitionFirstPasses) {
  const AnalysisReport r = Analyzed(
      "function early()\n"
      "  print(\"hi\")\n"
      "end\n"
      "early()\n");
  EXPECT_FALSE(r.Has("SA107"));
  EXPECT_TRUE(r.ok());
}

// --- SA201: operator type mismatch -------------------------------------------

TEST(Analyzer, SA201StringPlusNumberRejected) {
  const AnalysisReport r = Analyzed("local x = \"a\" + 1\nprint(x)\n");
  EXPECT_TRUE(r.Has("SA201"));
  EXPECT_FALSE(r.ok());
}

TEST(Analyzer, SA201NearMissConcatPasses) {
  const AnalysisReport r = Analyzed(
      "local x = \"a\" .. tostring(1)\nprint(x)\n");
  EXPECT_FALSE(r.Has("SA201"));
  EXPECT_TRUE(r.ok());
}

// --- SA202: host-function argument mismatch ----------------------------------

TEST(Analyzer, SA202LenOfNumberRejected) {
  const AnalysisReport r = Analyzed("local n = len(5)\nprint(n)\n");
  EXPECT_TRUE(r.Has("SA202"));
  EXPECT_FALSE(r.ok());
}

TEST(Analyzer, SA202NearMissLenOfStringPasses) {
  const AnalysisReport r = Analyzed("local n = len(\"abc\")\nprint(n)\n");
  EXPECT_FALSE(r.Has("SA202"));
  EXPECT_TRUE(r.ok());
}

// --- SA203: script-function arity mismatch -----------------------------------

TEST(Analyzer, SA203WrongArgumentCountRejected) {
  const AnalysisReport r = Analyzed(
      "function add(a, b)\n"
      "  return a + b\n"
      "end\n"
      "local r = add(1)\n"
      "print(r)\n");
  EXPECT_TRUE(r.Has("SA203"));
  EXPECT_FALSE(r.ok());
}

TEST(Analyzer, SA203NearMissCorrectArityPasses) {
  const AnalysisReport r = Analyzed(
      "function add(a, b)\n"
      "  return a + b\n"
      "end\n"
      "local r = add(1, 2)\n"
      "print(r)\n");
  EXPECT_FALSE(r.Has("SA203"));
  EXPECT_TRUE(r.ok());
}

// --- SA301: call outside the whitelist ---------------------------------------

TEST(Analyzer, SA301UnknownFunctionRejected) {
  const AnalysisReport r = Analyzed("delete_all_files()\n");
  EXPECT_TRUE(r.Has("SA301"));
  EXPECT_FALSE(r.ok());
}

TEST(Analyzer, SA301NearMissExtraHostFnAccepted) {
  AnalyzerOptions options;
  options.extra_host_fns = {"delete_all_files"};
  const AnalysisReport r = Analyzed("delete_all_files()\n", options);
  EXPECT_FALSE(r.Has("SA301"));
  EXPECT_TRUE(r.ok());
}

// --- SA302: sensor unavailable on target device ------------------------------

TEST(Analyzer, SA302MissingSensorRejected) {
  AnalyzerOptions options;
  options.available_sensors = {{SensorKind::kMicrophone}};
  const AnalysisReport r = Analyzed("local fix = get_location()\nprint(fix)\n",
                               options);
  EXPECT_TRUE(r.Has("SA302"));
  EXPECT_FALSE(r.ok());
}

TEST(Analyzer, SA302NearMissSensorPresentPasses) {
  AnalyzerOptions options;
  options.available_sensors = {{SensorKind::kGps}};
  const AnalysisReport r = Analyzed("local fix = get_location()\nprint(fix)\n",
                               options);
  EXPECT_FALSE(r.Has("SA302"));
  EXPECT_TRUE(r.ok());
}

// --- SA401: unboundable loop -------------------------------------------------

TEST(Analyzer, SA401WhileTrueWithoutBreakRejected) {
  const AnalysisReport r = Analyzed(
      "while true do\n"
      "  print(\"spin\")\n"
      "end\n");
  EXPECT_TRUE(r.Has("SA401"));
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.manifest.cost_bounded);
}

TEST(Analyzer, SA401NearMissInductionBoundPasses) {
  const AnalysisReport r = Analyzed(
      "local i = 0\n"
      "while i < 10 do\n"
      "  i = i + 1\n"
      "end\n"
      "print(i)\n");
  EXPECT_FALSE(r.Has("SA401"));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.manifest.cost_bounded);
}

// --- SA402: recursion --------------------------------------------------------

TEST(Analyzer, SA402RecursionRejected) {
  const AnalysisReport r = Analyzed(
      "function f(n)\n"
      "  return f(n)\n"
      "end\n"
      "local r = f(1)\n"
      "print(r)\n");
  EXPECT_TRUE(r.Has("SA402"));
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.manifest.cost_bounded);
}

TEST(Analyzer, SA402NearMissNonRecursiveChainPasses) {
  const AnalysisReport r = Analyzed(
      "function g(n)\n"
      "  return n + 1\n"
      "end\n"
      "function f(n)\n"
      "  return g(n)\n"
      "end\n"
      "local r = f(1)\n"
      "print(r)\n");
  EXPECT_FALSE(r.Has("SA402"));
  EXPECT_TRUE(r.ok());
}

// --- SA403: energy over budget -----------------------------------------------

TEST(Analyzer, SA403OverBudgetRejectedWithLine) {
  AnalyzerOptions options;
  options.energy_budget_mj = 100.0;  // 3 GPS fixes cost 450 mJ
  const AnalysisReport r = Analyzed(
      "local warmup = get_time_s()\n"
      "local fix = get_location(3)\n"
      "print(warmup)\n",
      options);
  ASSERT_TRUE(r.Has("SA403"));
  EXPECT_FALSE(r.ok());
  for (const Diagnostic& d : r.diagnostics) {
    if (d.code == "SA403") {
      EXPECT_EQ(d.line, 2);
    }
  }
}

TEST(Analyzer, SA403NearMissWithinBudgetPasses) {
  AnalyzerOptions options;
  options.energy_budget_mj = 1000.0;
  const AnalysisReport r = Analyzed("local fix = get_location(3)\nprint(fix)\n",
                               options);
  EXPECT_FALSE(r.Has("SA403"));
  EXPECT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.manifest.worst_case_energy_mj, 450.0);
}

// --- SA404: steps exceed interpreter budget ----------------------------------

TEST(Analyzer, SA404HugeBoundedLoopRejected) {
  const AnalysisReport r = Analyzed(
      "for i = 1, 10000000 do\n"
      "  print(i)\n"
      "end\n");
  EXPECT_TRUE(r.Has("SA404"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.manifest.cost_bounded);  // bounded — just too expensive
}

TEST(Analyzer, SA404NearMissModestLoopPasses) {
  const AnalysisReport r = Analyzed(
      "for i = 1, 1000 do\n"
      "  print(i)\n"
      "end\n");
  EXPECT_FALSE(r.Has("SA404"));
  EXPECT_TRUE(r.ok());
}

// --- SA405: non-static sample count ------------------------------------------

TEST(Analyzer, SA405DynamicSampleCountWarns) {
  const AnalysisReport r = Analyzed(
      "local n = get_time_s()\n"
      "local readings = get_noise_readings(n)\n"
      "print(len(readings))\n");
  EXPECT_TRUE(r.Has("SA405"));
  EXPECT_TRUE(r.ok());
}

TEST(Analyzer, SA405NearMissLiteralCountPasses) {
  const AnalysisReport r = Analyzed(
      "local readings = get_noise_readings(4)\n"
      "print(len(readings))\n");
  EXPECT_FALSE(r.Has("SA405"));
  EXPECT_TRUE(r.ok());
}

// --- SA501: flow-sensitive use before assignment -----------------------------

TEST(Analyzer, SA501NoPathAssignsBeforeUseRejected) {
  // 'y' is assigned somewhere (so SA101 stays quiet), but no assignment
  // can reach the use — the flow-sensitive pass upgrades the syntactic
  // may-be-unassigned warning to an error.
  const AnalysisReport r = Analyzed(
      "print(y)\n"
      "y = 1\n");
  EXPECT_TRUE(r.Has("SA501"));
  EXPECT_FALSE(r.ok());
}

TEST(Analyzer, SA501NearMissEveryPathAssignsPasses) {
  const AnalysisReport r = Analyzed(
      "if get_time_s() > 0 then\n"
      "  x = 1\n"
      "else\n"
      "  x = 2\n"
      "end\n"
      "print(x)\n");
  EXPECT_FALSE(r.Has("SA501"));
  EXPECT_TRUE(r.ok());
}

// --- SA502: dead store -------------------------------------------------------

TEST(Analyzer, SA502OverwrittenLocalStoreWarns) {
  // Function bodies have true locals (top-level locals are globals), so
  // the overwritten initializer is a per-occurrence dead store.
  const AnalysisReport r = Analyzed(
      "function f()\n"
      "  local acc = 1\n"
      "  acc = 2\n"
      "  return acc\n"
      "end\n"
      "print(f())\n");
  EXPECT_TRUE(r.Has("SA502"));
  EXPECT_TRUE(r.ok());  // warning only
}

TEST(Analyzer, SA502NeverReadGlobalWarns) {
  const AnalysisReport r = Analyzed(
      "g = 5\n"
      "print(1)\n");
  EXPECT_TRUE(r.Has("SA502"));
  EXPECT_TRUE(r.ok());
}

TEST(Analyzer, SA502NearMissBothStoresReadPasses) {
  const AnalysisReport r = Analyzed(
      "function f()\n"
      "  local acc = 1\n"
      "  print(acc)\n"
      "  acc = 2\n"
      "  return acc\n"
      "end\n"
      "print(f())\n");
  EXPECT_FALSE(r.Has("SA502"));
  EXPECT_TRUE(r.ok());
}

// --- SA503: constant condition -----------------------------------------------

TEST(Analyzer, SA503ConstantComparisonWarns) {
  const AnalysisReport r = Analyzed(
      "if 1 < 2 then\n"
      "  print(\"always\")\n"
      "end\n");
  EXPECT_TRUE(r.Has("SA503"));
  EXPECT_TRUE(r.ok());
}

TEST(Analyzer, SA503NearMissWhileTrueBreakIdiomPasses) {
  // `while true do ... break end` is the idiomatic bounded reader; the
  // constant-true head is deliberately not reported.
  const AnalysisReport r = Analyzed(
      "local n = 0\n"
      "while true do\n"
      "  n = n + 1\n"
      "  if n >= 3 then\n"
      "    break\n"
      "  end\n"
      "end\n"
      "print(n)\n");
  EXPECT_FALSE(r.Has("SA503"));
  // The cost pass still (correctly) rejects the loop as unboundable —
  // SA503 suppression is about not piling a misleading "condition is
  // always true" on top of that.
  EXPECT_TRUE(r.Has("SA401"));
}

// --- SA504: unreachable via constant condition -------------------------------

TEST(Analyzer, SA504ConstantFalseBranchUnreachable) {
  const AnalysisReport r = Analyzed(
      "if 2 < 1 then\n"
      "  print(\"never\")\n"
      "end\n"
      "print(\"after\")\n");
  EXPECT_TRUE(r.Has("SA504"));
  EXPECT_TRUE(r.ok());
}

TEST(Analyzer, SA504NearMissDynamicConditionPasses) {
  const AnalysisReport r = Analyzed(
      "if get_time_s() > 0 then\n"
      "  print(\"maybe\")\n"
      "end\n");
  EXPECT_FALSE(r.Has("SA504"));
  EXPECT_TRUE(r.ok());
}

// --- SA505: acquisition feeds no output --------------------------------------

TEST(Analyzer, SA505UnusedAcquisitionWarns) {
  const AnalysisReport r = Analyzed(
      "local xs = get_noise_readings(4)\n"
      "print(\"done\")\n");
  EXPECT_TRUE(r.Has("SA505"));
  EXPECT_TRUE(r.ok());
}

TEST(Analyzer, SA505NearMissOutputDependsOnSensorPasses) {
  const AnalysisReport r = Analyzed(
      "local xs = get_noise_readings(4)\n"
      "print(len(xs))\n");
  EXPECT_FALSE(r.Has("SA505"));
  EXPECT_TRUE(r.ok());
}

// --- information-flow manifest -----------------------------------------------

TEST(FlowManifest, AnalyzerComputesSitesWithSensors) {
  const AnalysisReport r = Analyzed(
      "local xs = get_noise_readings(4)\n"
      "print(len(xs))\n"
      "print(\"static\")\n");
  ASSERT_EQ(r.flow.sites.size(), 3u);
  EXPECT_EQ(r.flow.sites[0].kind, FlowSite::Kind::kAcquire);
  EXPECT_EQ(r.flow.sites[0].line, 1);
  ASSERT_EQ(r.flow.sites[0].sensors.size(), 1u);
  EXPECT_EQ(r.flow.sites[0].sensors[0], SensorKind::kMicrophone);
  EXPECT_EQ(r.flow.sites[1].kind, FlowSite::Kind::kPrint);
  EXPECT_EQ(r.flow.sites[1].sensors,
            std::vector<SensorKind>{SensorKind::kMicrophone});
  // The constant print carries no sensor data.
  EXPECT_EQ(r.flow.sites[2].line, 3);
  EXPECT_TRUE(r.flow.sites[2].sensors.empty());
}

TEST(FlowManifest, ImplicitFlowThroughBranchIsTracked) {
  // The printed value is a constant, but WHICH constant depends on the
  // sensed reading — an implicit flow the taint pass must catch.
  const AnalysisReport r = Analyzed(
      "local xs = get_noise_readings(4)\n"
      "local label = \"quiet\"\n"
      "if len(xs) > 0 then\n"
      "  label = \"noisy\"\n"
      "end\n"
      "print(label)\n");
  ASSERT_EQ(r.flow.sites.size(), 2u);
  EXPECT_EQ(r.flow.sites[1].kind, FlowSite::Kind::kPrint);
  EXPECT_EQ(r.flow.sites[1].sensors,
            std::vector<SensorKind>{SensorKind::kMicrophone});
}

TEST(FlowManifest, EncodeDecodeRoundTrip) {
  const AnalysisReport r = Analyzed(
      "local xs = get_noise_readings(4)\n"
      "local fixes = get_location(3)\n"
      "print(len(xs) + len(fixes))\n");
  const std::string encoded = EncodeFlowManifest(r.flow);
  EXPECT_EQ(encoded,
            "acquire@1=microphone;acquire@2=gps;print@3=gps,microphone");
  const auto decoded = DecodeFlowManifest(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), r.flow);
}

// --- interval bounds never exceed the syntactic bounds -----------------------

// Acceptance gate: on every example script (and both builtins) the
// IR-interval cost bounds must be no worse than the purely syntactic
// analysis — tightening only, never loosening.
void ExpectIrBoundsNoWorse(const std::string& source,
                           const std::string& label) {
  AnalyzerOptions syntactic;
  syntactic.ir_passes = false;
  const AnalysisReport base = AnalyzeSource(source, syntactic);
  const AnalysisReport ir = AnalyzeSource(source, AnalyzerOptions{});
  ASSERT_TRUE(base.manifest.cost_bounded) << label;
  ASSERT_TRUE(ir.manifest.cost_bounded) << label;
  EXPECT_LE(ir.manifest.worst_case_steps, base.manifest.worst_case_steps)
      << label;
  EXPECT_LE(ir.manifest.worst_case_acquisitions,
            base.manifest.worst_case_acquisitions)
      << label;
  EXPECT_LE(ir.manifest.worst_case_energy_mj,
            base.manifest.worst_case_energy_mj)
      << label;
  EXPECT_EQ(ir.manifest.required_sensors, base.manifest.required_sensors)
      << label;
}

TEST(Analyzer, IrBoundsNoWorseThanSyntacticOnAllExampleScripts) {
  const std::filesystem::path dir = SOR_EXAMPLE_SCRIPTS_DIR;
  int seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".sor") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buf;
    buf << in.rdbuf();
    ExpectIrBoundsNoWorse(buf.str(), entry.path().filename().string());
    ++seen;
  }
  EXPECT_GE(seen, 4);  // the repo ships at least four example scripts
}

TEST(Analyzer, IrBoundsNoWorseThanSyntacticOnBuiltins) {
  ExpectIrBoundsNoWorse(
      core::DefaultScript(world::PlaceCategory::kHikingTrail), "trails");
  ExpectIrBoundsNoWorse(
      core::DefaultScript(world::PlaceCategory::kCoffeeShop), "coffee");
}

// --- manifest & cost ---------------------------------------------------------

TEST(Analyzer, DefaultTrailScriptCleanWithExpectedManifest) {
  const AnalysisReport r = Analyzed(
      core::DefaultScript(world::PlaceCategory::kHikingTrail));
  EXPECT_TRUE(r.diagnostics.empty())
      << Render(std::span<const Diagnostic>(r.diagnostics));
  const std::vector<SensorKind> want = {
      SensorKind::kAccelerometer, SensorKind::kGps, SensorKind::kBarometer,
      SensorKind::kDroneTemperature, SensorKind::kDroneHumidity};
  EXPECT_EQ(r.manifest.required_sensors, want);
  // 5×8 (temp) + 5×8 (humidity) + 12×0.5 (accel) + 6×0.4 (baro) + 15×150
  // (GPS) = 2338.4 mJ.
  EXPECT_NEAR(r.manifest.worst_case_energy_mj, 2338.4, 1e-9);
  EXPECT_TRUE(r.manifest.cost_bounded);
}

TEST(Analyzer, DefaultCoffeeScriptClean) {
  const AnalysisReport r = Analyzed(
      core::DefaultScript(world::PlaceCategory::kCoffeeShop));
  EXPECT_TRUE(r.diagnostics.empty())
      << Render(std::span<const Diagnostic>(r.diagnostics));
  EXPECT_NEAR(r.manifest.worst_case_energy_mj, 420.0, 1e-9);
}

TEST(Analyzer, ManifestCountsLoopScaledAcquisitions) {
  const AnalysisReport r = Analyzed(
      "local i = 0\n"
      "while i < 3 do\n"
      "  local xs = get_noise_readings(4)\n"
      "  print(len(xs))\n"
      "  i = i + 1\n"
      "end\n");
  EXPECT_TRUE(r.ok());
  // The IR interval pass proves the exact 3 iterations (the syntactic
  // induction bound alone would over-approximate to 5).
  EXPECT_DOUBLE_EQ(r.manifest.worst_case_acquisitions, 12.0);
  EXPECT_DOUBLE_EQ(r.manifest.worst_case_energy_mj, 60.0);
}

// --- diagnostics plumbing ----------------------------------------------------

TEST(Diagnostics, RenderMatchesParserStyle) {
  const Diagnostic d{"SA101", Severity::kError, 3, "undefined name 'foo'"};
  EXPECT_EQ(Render(d), "error SA101 at line 3: undefined name 'foo'");
}

TEST(Diagnostics, SortAndDedupeIsDeterministic) {
  std::vector<Diagnostic> ds = {
      {"SA102", Severity::kWarning, 5, "b"},
      {"SA101", Severity::kError, 5, "a"},
      {"SA101", Severity::kError, 2, "c"},
      {"SA101", Severity::kError, 5, "a"},  // exact duplicate
  };
  SortAndDedupe(ds);
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds[0].line, 2);
  EXPECT_EQ(ds[1].code, "SA101");
  EXPECT_EQ(ds[2].code, "SA102");
}

TEST(Diagnostics, OrderingIsLineColCodeRegardlessOfInsertion) {
  // Regression for the (line, col, code) contract: shuffling the insertion
  // order of same-line diagnostics must not change the rendered output.
  const std::vector<Diagnostic> want = {
      {"SA101", Severity::kError, 2, "a", 0},
      {"SA503", Severity::kWarning, 5, "c", 1},
      {"SA101", Severity::kError, 5, "b", 4},
      {"SA502", Severity::kWarning, 5, "d", 4},
  };
  std::vector<Diagnostic> forward = want;
  std::vector<Diagnostic> reversed(want.rbegin(), want.rend());
  SortAndDedupe(forward);
  SortAndDedupe(reversed);
  EXPECT_EQ(forward, reversed);
  ASSERT_EQ(forward.size(), 4u);
  EXPECT_EQ(forward[0].code, "SA101");  // line 2 first
  EXPECT_EQ(forward[1].col, 1);         // then line 5 by col...
  EXPECT_EQ(forward[2].col, 4);
  EXPECT_EQ(forward[2].code, "SA101");  // ...ties broken by code
  EXPECT_EQ(forward[3].code, "SA502");
}

TEST(Diagnostics, RenderIncludesColumnWhenKnown) {
  const Diagnostic d{"SA501", Severity::kError, 3, "boom", 7};
  EXPECT_EQ(Render(d), "error SA501 at line 3, col 7: boom");
}

TEST(Diagnostics, SensorListRoundTrip) {
  const std::vector<SensorKind> kinds = {SensorKind::kGps,
                                         SensorKind::kBarometer};
  const std::string text = EncodeSensorList(kinds);
  Result<std::vector<SensorKind>> back = DecodeSensorList(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), kinds);
  EXPECT_TRUE(DecodeSensorList("").value().empty());
  EXPECT_FALSE(DecodeSensorList("gps,flux_capacitor").ok());
}

TEST(HostApi, AcquisitionTableConsistent) {
  int acquisition_rows = 0;
  for (const HostSignature& sig : HostSignatures()) {
    if (sig.sensor.has_value()) {
      ++acquisition_rows;
      EXPECT_EQ(AcquisitionSensor(sig.name), sig.sensor);
      EXPECT_EQ(FindHostSignature(sig.name), &sig);
    }
  }
  EXPECT_EQ(acquisition_rows, 14);
  EXPECT_EQ(FindHostSignature("not_a_function"), nullptr);
  EXPECT_EQ(AcquisitionSensor("mean"), std::nullopt);
}

// --- property test: random source never crashes the pipeline -----------------

TEST(AnalyzerProperty, RandomTokenSoupNeverCrashes) {
  // Deterministic LCG so failures reproduce from the seed printed below.
  const char* const vocab[] = {
      "local", "if", "then", "else", "elseif", "end", "while", "do", "for",
      "function", "return", "break", "and", "or", "not", "true", "false",
      "nil", "x", "y", "readings", "f", "get_location", "get_noise_readings",
      "len", "mean", "print", "0", "1", "42", "3.5", "\"s\"", "+", "-", "*",
      "/", "%", "..", "==", "~=", "<", "<=", ">", ">=", "=", "(", ")", "{",
      "}", "[", "]", ",", "\n"};
  constexpr std::size_t kVocab = sizeof(vocab) / sizeof(vocab[0]);
  std::uint64_t state = 0x5eedULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int iter = 0; iter < 400; ++iter) {
    std::string source;
    const std::size_t tokens = 1 + next() % 60;
    for (std::size_t t = 0; t < tokens; ++t) {
      source += vocab[next() % kVocab];
      source += ' ';
    }
    const AnalysisReport r = AnalyzeSource(source);
    // Whatever came out must be internally consistent.
    for (const Diagnostic& d : r.diagnostics) {
      EXPECT_FALSE(d.code.empty()) << "iter " << iter << ": " << source;
      EXPECT_GE(d.line, 0) << "iter " << iter << ": " << source;
    }
  }
}

// Structured variant: mutate a known-good script by splicing random tokens
// into random positions — exercises deeper parser states than pure soup.
TEST(AnalyzerProperty, MutatedTrailScriptNeverCrashes) {
  const std::string base =
      core::DefaultScript(world::PlaceCategory::kHikingTrail);
  const char* const splices[] = {"end", "do", "then", "(", ")", "=", "local",
                                 "while", "\"", "..", "[", "9e99", "--[["};
  constexpr std::size_t kSplices = sizeof(splices) / sizeof(splices[0]);
  std::uint64_t state = 0xfeedULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int iter = 0; iter < 200; ++iter) {
    std::string source = base;
    const int cuts = 1 + static_cast<int>(next() % 4);
    for (int c = 0; c < cuts; ++c) {
      const std::size_t at = next() % (source.size() + 1);
      source.insert(at, splices[next() % kSplices]);
    }
    const AnalysisReport r = AnalyzeSource(source);
    (void)r;  // surviving the pipeline (under asan/ubsan) is the property
  }
}

}  // namespace
}  // namespace sor::script::analysis

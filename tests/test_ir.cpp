// SenseScript IR: lowering/executor parity with the AST interpreter.
//
// The IR execution mode is only sound if a lowered (and later, optimized)
// module is observationally identical to the tree-walking interpreter:
// same return value (bit-for-bit for numbers), same print output, same
// error code/message/line. This file checks that three ways:
//   * targeted edge cases for every semantic subtlety the lowering has to
//     preserve (iteration-fresh block scopes, evaluation order, dynamic
//     function binding, short-circuit result values, ...),
//   * a seeded random-program fuzz battery (>= 500 programs), and
//   * the same battery partitioned across 1/2/8 worker threads, asserting
//     the aggregated result fingerprints are thread-count invariant.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "script/analysis/analyzer.hpp"
#include "script/analysis/passes.hpp"
#include "script/interpreter.hpp"
#include "script/ir/exec.hpp"
#include "script/ir/ir.hpp"
#include "script/ir/lower.hpp"
#include "script/parser.hpp"

namespace sor::script {
namespace {

// Deterministic host registry: the pure stdlib plus stand-ins for sensor
// acquisition (fixed data) and a host function that always fails, so the
// "in fn(): ..." error-wrapping path is exercised.
HostRegistry MakeTestHost() {
  HostRegistry host;
  InstallStdlib(host);
  host.Register("get_value", [](std::span<const Value>) -> Result<Value> {
    return Value(42.5);
  });
  host.Register("get_series", [](std::span<const Value>) -> Result<Value> {
    return Value::MakeList({Value(1.0), Value(2.5), Value(-3.0)});
  });
  host.Register("host_fail", [](std::span<const Value>) -> Result<Value> {
    return Error{Errc::kUnavailable, "sensor offline"};
  });
  return host;
}

std::string FingerprintValue(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNumber: {
      // Bit-exact: two doubles that happen to print alike must not pass.
      std::uint64_t bits = 0;
      const double d = v.as_number();
      std::memcpy(&bits, &d, sizeof(bits));
      char buf[20];
      std::snprintf(buf, sizeof(buf), "n%016llx",
                    static_cast<unsigned long long>(bits));
      return buf;
    }
    case Value::Kind::kList: {
      std::string s = "[";
      for (const Value& e : *v.as_list()) s += FingerprintValue(e) + ",";
      return s + "]";
    }
    default:
      return std::string(v.TypeName()) + ":" + v.ToDisplayString();
  }
}

std::string Fingerprint(const Result<ExecutionResult>& r) {
  if (!r.ok()) {
    const Error& e = r.error();
    return "err|" + std::to_string(static_cast<int>(e.code)) + "|" +
           e.message + "|" + std::to_string(e.line);
  }
  return "ok|" + FingerprintValue(r.value().return_value) + "|" +
         r.value().output;
}

struct DiffResult {
  std::string ast;
  std::string ir;
  std::string opt;
};

DiffResult RunDifferential(const std::string& source) {
  const HostRegistry host = MakeTestHost();
  DiffResult out;

  Interpreter interp(host);
  out.ast = Fingerprint(interp.Run(source));

  Result<Program> program = Parse(source);
  if (!program.ok()) {
    // Parse failures never reach lowering; mirror the interpreter result.
    out.ir = Fingerprint(Result<ExecutionResult>(program.error()));
    out.opt = out.ir;
    return out;
  }
  const InterpreterOptions opts;
  {
    ir::Module m = ir::Lower(program.value());
    out.ir = Fingerprint(ir::Execute(m, host, opts));
  }
  {
    ir::Module m = ir::Lower(program.value());
    analysis::OptimizeModule(m);
    out.opt = Fingerprint(ir::Execute(m, host, opts));
  }
  return out;
}

// Asserts AST / raw-IR / optimized-IR all agree and returns the fingerprint.
std::string ExpectParity(const std::string& source) {
  const DiffResult r = RunDifferential(source);
  EXPECT_EQ(r.ast, r.ir) << "raw IR diverged for:\n" << source;
  EXPECT_EQ(r.ast, r.opt) << "optimized IR diverged for:\n" << source;
  return r.ast;
}

// --- targeted semantic edge cases -----------------------------------------

TEST(IrParity, StraightLineArithmeticAndPrint) {
  const std::string fp = ExpectParity(
      "local a = 2 + 3 * 4\n"
      "local b = a / 7\n"
      "print(a, b, a % 5, -b)\n"
      "return a .. \"/\" .. b\n");
  EXPECT_EQ(fp.rfind("ok|", 0), 0u) << fp;
}

TEST(IrParity, BlockScopeLocalInvisibleAfterIf) {
  // `local y` inside the branch dies with the scope; the later read must
  // fail with the same undefined-variable error in both engines.
  const std::string fp = ExpectParity(
      "if true then\n"
      "  local y = 1\n"
      "end\n"
      "print(y)\n");
  EXPECT_NE(fp.find("undefined variable 'y'"), std::string::npos) << fp;
}

TEST(IrParity, LoopIterationFreshLocals) {
  // Iteration 1 assigns y; iteration 2 reads it before its declaration.
  // Scopes are iteration-fresh, so this must fail on iteration 2 — a slot
  // reuse bug would happily reuse iteration 1's value.
  const std::string fp = ExpectParity(
      "for i = 1, 2 do\n"
      "  if i == 2 then print(y) end\n"
      "  local y = 5\n"
      "end\n");
  EXPECT_NE(fp.find("undefined variable 'y'"), std::string::npos) << fp;
}

TEST(IrParity, WhileIterationFreshLocals) {
  ExpectParity(
      "local n = 0\n"
      "while n < 2 do\n"
      "  if n == 1 then print(z) end\n"
      "  local z = 7\n"
      "  n = n + 1\n"
      "end\n");
}

TEST(IrParity, TopLevelLocalIsVisibleInsideFunctions) {
  // A top-level `local` lives in the interpreter's global scope, so a
  // function body can read it.
  const std::string fp = ExpectParity(
      "function f() return base * 2 end\n"
      "local base = 21\n"
      "return f()\n");
  EXPECT_NE(fp.find("ok|"), std::string::npos) << fp;
}

TEST(IrParity, FunctionDoesNotSeeCallerBlockLocals) {
  ExpectParity(
      "function f() return hidden end\n"
      "if true then\n"
      "  local hidden = 1\n"
      "  print(f())\n"
      "end\n");
}

TEST(IrParity, AssignmentBeforeLocalDeclarationHitsGlobal) {
  // Inside a block, `x = 2` before `local x` writes the global; the local
  // then shadows it for the rest of the scope.
  ExpectParity(
      "if true then\n"
      "  x = 2\n"
      "  local x = 10\n"
      "  x = x + 1\n"
      "  print(x)\n"
      "end\n"
      "print(x)\n");
}

TEST(IrParity, ShadowingAndScopeExit) {
  ExpectParity(
      "local v = 1\n"
      "if true then\n"
      "  local v = 2\n"
      "  print(v)\n"
      "end\n"
      "print(v)\n");
}

TEST(IrParity, LocalInitializerSeesOuterBinding) {
  ExpectParity(
      "local x = 3\n"
      "if true then\n"
      "  local x = x + 10\n"
      "  print(x)\n"
      "end\n"
      "print(x)\n");
}

TEST(IrParity, ForLoopVarReassignmentDoesNotAffectIteration) {
  ExpectParity(
      "local total = 0\n"
      "for i = 1, 4 do\n"
      "  i = 100\n"
      "  total = total + 1\n"
      "end\n"
      "print(total)\n");
}

TEST(IrParity, ForLoopBounds) {
  ExpectParity("for i = 3, 1 do print(i) end print(\"done\")\n");
  ExpectParity("for i = 3, 1, -1 do print(i) end\n");
  ExpectParity("for i = 1, 2, 0.5 do print(i) end\n");
  ExpectParity("for i = 1, \"x\" do print(i) end\n");       // bounds error
  ExpectParity("for i = 1, 5, \"y\" do print(i) end\n");    // step error
  ExpectParity("for i = 1, 5, 0 do print(i) end\n");        // zero step
  ExpectParity("for i = 1, 5, 1 - 1 do print(i) end\n");    // computed zero
}

TEST(IrParity, ForStepErrorPrecedesBoundsError) {
  // The interpreter validates the (explicit) step's type before the bounds.
  const std::string fp = ExpectParity("for i = nil, nil, nil do end\n");
  EXPECT_NE(fp.find("for step must be a number"), std::string::npos) << fp;
}

TEST(IrParity, BreakVariants) {
  ExpectParity(
      "local c = 0\n"
      "while true do\n"
      "  c = c + 1\n"
      "  if c > 3 then break end\n"
      "end\n"
      "print(c)\n");
  ExpectParity(
      "for i = 1, 10 do\n"
      "  if i == 4 then break end\n"
      "  print(i)\n"
      "end\n");
  // break outside any loop unwinds the whole block (return-nil semantics).
  ExpectParity("print(1)\nbreak\nprint(2)\n");
  ExpectParity("function f() print(1) break print(2) end\nf()\nprint(3)\n");
}

TEST(IrParity, ShortCircuitReturnsOperand) {
  ExpectParity("print(nil and 1, false and 1, 2 and 3)\n");
  ExpectParity("print(nil or \"fallback\", false or 0, 1 or 2)\n");
  ExpectParity("local l = {1} and {2}\nprint(l[1])\n");
}

TEST(IrParity, ShortCircuitSkipsSideEffects) {
  ExpectParity(
      "function loud() print(\"evaluated\") return true end\n"
      "local a = false and loud()\n"
      "local b = true or loud()\n"
      "print(a, b)\n"
      "local c = true and loud()\n");
}

TEST(IrParity, ListLiteralIndexAndAppend) {
  ExpectParity(
      "local l = {10, 20, 30}\n"
      "l[2] = 21\n"
      "l[4] = 40\n"
      "print(l[1], l[2], l[3], l[4], #l)\n");
}

TEST(IrParity, ListAliasingIsShared) {
  ExpectParity(
      "local a = {1}\n"
      "local b = a\n"
      "b[2] = 2\n"
      "print(#a, a[2])\n");
}

TEST(IrParity, IndexErrors) {
  ExpectParity("local l = {1}\nprint(l[2])\n");       // read out of range
  ExpectParity("local l = {1}\nl[3] = 9\n");          // write skips a slot
  ExpectParity("local l = {1}\nprint(l[\"k\"])\n");   // non-number index
  ExpectParity("local n = 5\nprint(n[1])\n");         // index a number
  ExpectParity("local n = 5\nn[1] = 2\n");            // assign into a number
  ExpectParity("local l = {1}\nprint(l[0])\n");
}

TEST(IrParity, EvaluationOrderValueBeforeListBeforeIndex) {
  // list[i] = v evaluates v first, then the list, then the index — observable
  // through print side effects.
  ExpectParity(
      "function mk() print(\"list\") return {0} end\n"
      "function idx() print(\"index\") return 1 end\n"
      "function val() print(\"value\") return 9 end\n"
      "local l = {0}\n"
      "l[idx()] = val()\n"
      "local err = 5\n"
      "err[idx()] = val()\n");  // value+list evaluated, then type error
}

TEST(IrParity, CallArgumentSnapshotting) {
  // Argument values are captured at evaluation time: bump() changes x after
  // x was already evaluated as the first argument.
  ExpectParity(
      "x = 1\n"
      "function bump() x = 99 return 2 end\n"
      "print(x, bump(), x)\n");
}

TEST(IrParity, TypeErrors) {
  ExpectParity("print(1 + \"s\")\n");
  ExpectParity("print(nil < 1)\n");
  ExpectParity("print(\"a\" < \"b\", \"b\" <= \"a\")\n");
  ExpectParity("print(-\"x\")\n");
  ExpectParity("print(#5)\n");
  ExpectParity("print({1} .. \"x\")\n");
  ExpectParity("print(1 == \"1\", {1} == {1}, nil == false)\n");
}

TEST(IrParity, FunctionSemantics) {
  ExpectParity(
      "function add(a, b) return a + b end\n"
      "print(add(2, 3))\n"
      "print(add(2))\n");  // arity error
  ExpectParity("function dup(a, a) return a end\nprint(dup(1, 2))\n");
  ExpectParity("function f() end\nprint(f())\n");  // implicit nil return
  ExpectParity("function len(x) return 0 end\n");  // host shadow error
  ExpectParity("nope(1)\n");                       // whitelist violation
  ExpectParity(
      "function rec(n) if n > 0 then return rec(n - 1) end return 0 end\n"
      "print(rec(10))\n"
      "print(rec(500))\n");  // call depth limit exceeded
}

TEST(IrParity, FunctionRebindingInLoop) {
  ExpectParity(
      "for i = 1, 2 do\n"
      "  function pick() return i end\n"
      "  print(pick())\n"
      "end\n");
}

TEST(IrParity, CallBeforeDefinitionFails) {
  // Bindings happen when the `function` statement executes.
  ExpectParity("f()\nfunction f() return 1 end\n");
}

TEST(IrParity, HostFunctionsAndErrorWrapping) {
  ExpectParity("print(get_value(), abs(-3), min(4, 2), max(4, 2))\n");
  ExpectParity("local s = get_series()\nprint(#s, s[2], mean(s))\n");
  ExpectParity("print(host_fail())\n");  // "in host_fail(): sensor offline"
  ExpectParity("print(len(5))\n");       // stdlib arg error, wrapped
}

TEST(IrParity, StdlibPureFunctions) {
  ExpectParity(
      "print(floor(2.7), ceil(2.1), sqrt(16))\n"
      "print(tostring(nil), tostring(1.5), tonumber(\"2.5\"), "
      "tonumber(\"zz\"))\n"
      "local l = {3, 1, 2}\n"
      "push(l, 10)\n"
      "print(#l, mean(l), variance(l) >= 0, stddev(l) >= 0)\n");
}

TEST(IrParity, ReturnStopsExecution) {
  ExpectParity("print(1)\nreturn 42\nprint(2)\n");
  ExpectParity(
      "for i = 1, 5 do\n"
      "  if i == 2 then return \"early\" end\n"
      "  print(i)\n"
      "end\n"
      "print(\"after\")\n");
}

TEST(IrParity, NestedFunctionDefinition) {
  ExpectParity(
      "function outer()\n"
      "  function inner() return 5 end\n"
      "  return inner() + 1\n"
      "end\n"
      "print(outer())\n"
      "print(inner())\n");  // inner was bound when outer ran
}

TEST(IrParity, ConcatFormatsLikeDisplay) {
  ExpectParity(
      "print(1 .. \"\", 1.5 .. \"\", true .. \"!\", nil .. \"?\")\n"
      "print(\"v=\" .. 2 / 3)\n");
}

TEST(IrParity, DivisionEdgeCases) {
  ExpectParity("print(1 / 0, -1 / 0, 0 / 0 ~= 0 / 0)\n");
  ExpectParity("print(5 % 3, -5 % 3, 5.5 % 2)\n");
}

TEST(IrParity, UndefinedVariableLineNumbers) {
  const DiffResult r = RunDifferential("local a = 1\n\n\nprint(missing)\n");
  EXPECT_EQ(r.ast, r.ir);
  EXPECT_NE(r.ast.find("line 4"), std::string::npos) << r.ast;
}

// --- random program generator ----------------------------------------------

// Generates syntactically valid programs (parser never rejects them) that
// are runtime-bounded by construction: while loops use dedicated counters
// the rest of the generator can't touch, for loops have constant trip
// counts, and script functions only call previously defined functions.
class ProgramGen {
 public:
  explicit ProgramGen(std::uint32_t seed) : rng_(seed) {}

  std::string Generate() {
    out_.clear();
    vars_.clear();
    fns_.clear();
    loop_depth_ = 0;
    var_counter_ = 0;
    const int num_fns = Pick(0, 2);
    for (int i = 0; i < num_fns; ++i) GenFunction();
    GenBlock(Pick(3, 7), 0);
    if (Chance(2)) Line("return " + GenExpr(2));
    return out_;
  }

 private:
  bool Chance(int one_in) { return Pick(1, one_in) == 1; }
  int Pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }
  void Line(const std::string& s) { out_ += s + "\n"; }

  std::string FreshVar() { return "v" + std::to_string(var_counter_++); }

  std::string KnownVar() {
    if (vars_.empty() || Chance(14)) return "zz_undefined";
    return vars_[static_cast<std::size_t>(
        Pick(0, static_cast<int>(vars_.size()) - 1))];
  }

  std::string GenNumber() {
    switch (Pick(0, 3)) {
      case 0: return std::to_string(Pick(-20, 20));
      case 1: return std::to_string(Pick(0, 9)) + "." + std::to_string(Pick(0, 99));
      default: return std::to_string(Pick(0, 5));
    }
  }

  std::string GenExpr(int depth) {
    if (depth <= 0 || Chance(3)) {
      switch (Pick(0, 5)) {
        case 0: return GenNumber();
        case 1: return "\"s" + std::to_string(Pick(0, 9)) + "\"";
        case 2: return Chance(2) ? "true" : "false";
        case 3: return Chance(6) ? "nil" : GenNumber();
        default: return KnownVar();
      }
    }
    switch (Pick(0, 9)) {
      case 0: case 1: {
        static const char* kOps[] = {"+", "-",  "*",  "/",  "%",  "..",
                                     "==", "~=", "<",  "<=", ">",  ">="};
        return "(" + GenExpr(depth - 1) + " " + kOps[Pick(0, 11)] + " " +
               GenExpr(depth - 1) + ")";
      }
      case 2: {
        static const char* kUn[] = {"-", "not ", "#"};
        return "(" + std::string(kUn[Pick(0, 2)]) + GenExpr(depth - 1) + ")";
      }
      case 3: {
        static const char* kBool[] = {" and ", " or "};
        return "(" + GenExpr(depth - 1) + kBool[Pick(0, 1)] +
               GenExpr(depth - 1) + ")";
      }
      case 4: {
        switch (Pick(0, 6)) {
          case 0: return "abs(" + GenExpr(depth - 1) + ")";
          case 1: return "min(" + GenExpr(depth - 1) + ", " +
                         GenExpr(depth - 1) + ")";
          case 2: return "max(" + GenExpr(depth - 1) + ", " +
                         GenExpr(depth - 1) + ")";
          case 3: return "tostring(" + GenExpr(depth - 1) + ")";
          case 4: return "floor(" + GenExpr(depth - 1) + ")";
          case 5: return "get_value()";
          default: return "get_series()";
        }
      }
      case 5: {
        if (fns_.empty()) return GenNumber();
        const auto& [name, arity] = fns_[static_cast<std::size_t>(
            Pick(0, static_cast<int>(fns_.size()) - 1))];
        std::string call = name + "(";
        for (int i = 0; i < arity; ++i) {
          if (i) call += ", ";
          call += GenExpr(depth - 1);
        }
        return call + ")";
      }
      case 6:
        return "{" + GenExpr(depth - 1) + ", " + GenExpr(depth - 1) + "}";
      case 7:
        return "(" + GenExpr(depth - 1) + ")[" + GenExpr(depth - 1) + "]";
      default:
        return GenExpr(depth - 1);
    }
  }

  void GenFunction() {
    const std::string name = "fn" + std::to_string(fns_.size());
    const int arity = Pick(0, 2);
    std::string header = "function " + name + "(";
    std::vector<std::string> saved_vars;
    saved_vars.swap(vars_);  // bodies see only params (and earlier fns)
    for (int i = 0; i < arity; ++i) {
      const std::string p = "p" + std::to_string(i);
      if (i) header += ", ";
      header += p;
      vars_.push_back(p);
    }
    Line(header + ")");
    GenBlock(Pick(1, 3), 1);
    Line("return " + GenExpr(2));
    Line("end");
    vars_.swap(saved_vars);
    fns_.emplace_back(name, arity);
  }

  void GenBlock(int stmts, int depth) {
    const std::size_t scope_mark = vars_.size();
    for (int i = 0; i < stmts; ++i) {
      if (GenStmt(depth)) break;  // return/break ends the block
    }
    vars_.resize(scope_mark);  // block locals go out of scope
  }

  // Returns true if the statement terminated the block.
  bool GenStmt(int depth) {
    switch (Pick(0, 11)) {
      case 0: {
        const std::string v = FreshVar();
        Line("local " + v + " = " + GenExpr(2));
        vars_.push_back(v);
        return false;
      }
      case 1:
        if (!vars_.empty()) {
          Line(KnownVar() + " = " + GenExpr(2));
          return false;
        }
        [[fallthrough]];
      case 2:
        Line("print(" + GenExpr(2) + (Chance(2) ? ", " + GenExpr(1) : "") +
             ")");
        return false;
      case 3: {
        Line("if " + GenExpr(2) + " then");
        GenBlock(Pick(1, 3), depth + 1);
        if (Chance(2)) {
          Line("else");
          GenBlock(Pick(1, 2), depth + 1);
        }
        Line("end");
        return false;
      }
      case 4: {
        if (depth >= 2) return false;  // bound nesting (and runtime)
        const std::string v = FreshVar();
        std::string header = "for " + v + " = " + std::to_string(Pick(-2, 3)) +
                             ", " + std::to_string(Pick(-2, 4));
        if (Chance(2)) header += ", " + std::to_string(Pick(1, 2));
        Line(header + " do");
        vars_.push_back(v);
        ++loop_depth_;
        GenBlock(Pick(1, 3), depth + 1);
        --loop_depth_;
        vars_.pop_back();
        Line("end");
        return false;
      }
      case 5: {
        if (depth >= 2) return false;
        // Dedicated counter: never added to vars_, so no generated
        // statement can perturb it and the loop always terminates.
        const std::string c = "w" + std::to_string(var_counter_++);
        Line("local " + c + " = 0");
        Line("while " + c + " < " + std::to_string(Pick(1, 3)) + " do");
        ++loop_depth_;
        GenBlock(Pick(1, 2), depth + 1);
        --loop_depth_;
        Line(c + " = " + c + " + 1");
        Line("end");
        return false;
      }
      case 6: {
        const std::string v = FreshVar();
        Line("local " + v + " = {" + GenExpr(1) + ", " + GenExpr(1) + "}");
        vars_.push_back(v);
        if (Chance(2)) Line(v + "[" + std::to_string(Pick(1, 3)) + "] = " +
                            GenExpr(1));
        if (Chance(2)) Line("push(" + v + ", " + GenExpr(1) + ")");
        return false;
      }
      case 7:
        if (loop_depth_ > 0 && Chance(3)) {
          Line("break");
          return true;
        }
        Line("print(" + GenExpr(1) + ")");
        return false;
      case 8:
        if (Chance(4)) {
          Line("return " + GenExpr(2));
          return true;
        }
        Line(KnownVar() + " = " + GenExpr(2));
        return false;
      case 9:
        Line("print(#" + GenExpr(2) + ")");
        return false;
      case 10:
        if (Chance(6)) {
          Line("print(host_fail())");
          return false;
        }
        Line("print(get_value() * " + GenNumber() + ")");
        return false;
      default: {
        const std::string v = FreshVar();
        Line("local " + v + " = " + GenExpr(3));
        vars_.push_back(v);
        return false;
      }
    }
  }

  std::mt19937 rng_;
  std::string out_;
  std::vector<std::string> vars_;
  std::vector<std::pair<std::string, int>> fns_;
  int loop_depth_ = 0;
  int var_counter_ = 0;
};

constexpr std::uint32_t kFuzzSeeds[] = {11, 23, 47, 101, 9001};
constexpr int kProgramsPerSeed = 120;  // 5 * 120 = 600 programs total

std::vector<std::string> GeneratePrograms(std::uint32_t seed) {
  ProgramGen gen(seed);
  std::vector<std::string> programs;
  programs.reserve(kProgramsPerSeed);
  for (int i = 0; i < kProgramsPerSeed; ++i) programs.push_back(gen.Generate());
  return programs;
}

// Per-program fingerprint used by the thread-invariance battery: execution
// results through both engines plus analyzer diagnostics.
std::string ProgramFingerprint(const std::string& source) {
  const DiffResult r = RunDifferential(source);
  std::string fp = r.ast + "##" + r.ir + "##" + r.opt + "##";
  const analysis::AnalysisReport report = analysis::AnalyzeSource(source, {});
  for (const auto& d : report.diagnostics) {
    fp += d.code + "@" + std::to_string(d.line) + ";";
  }
  return fp;
}

TEST(IrFuzz, DifferentialBatteryAllSeeds) {
  int mismatches = 0;
  for (const std::uint32_t seed : kFuzzSeeds) {
    const std::vector<std::string> programs = GeneratePrograms(seed);
    for (const std::string& src : programs) {
      const DiffResult r = RunDifferential(src);
      if (r.ast != r.ir || r.ast != r.opt) {
        ++mismatches;
        ADD_FAILURE() << "divergence (seed " << seed << "):\n"
                      << src << "\nAST: " << r.ast << "\nIR:  " << r.ir
                      << "\nOPT: " << r.opt;
        if (mismatches > 5) return;  // don't drown the log
      }
    }
  }
}

TEST(IrFuzz, ThreadCountInvariantFingerprints) {
  for (const std::uint32_t seed : kFuzzSeeds) {
    const std::vector<std::string> programs = GeneratePrograms(seed);
    std::vector<std::string> reference;
    for (const int threads : {1, 2, 8}) {
      std::vector<std::string> fps(programs.size());
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          for (std::size_t i = static_cast<std::size_t>(t);
               i < programs.size(); i += static_cast<std::size_t>(threads)) {
            fps[i] = ProgramFingerprint(programs[i]);
          }
        });
      }
      for (std::thread& th : pool) th.join();
      if (reference.empty()) {
        reference = std::move(fps);
      } else {
        ASSERT_EQ(reference.size(), fps.size());
        for (std::size_t i = 0; i < fps.size(); ++i) {
          EXPECT_EQ(reference[i], fps[i])
              << "seed " << seed << " program " << i
              << " fingerprint changed with " << threads << " threads:\n"
              << programs[i];
        }
      }
    }
  }
}

}  // namespace
}  // namespace sor::script

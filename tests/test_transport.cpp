// Unit tests for the out-of-process transport stack (src/transport):
// FrameStream framing (round-trips, truncation, oversized and corrupt
// records, a seeded fuzz sweep), the record channel codec, the pipe and
// Unix-socket transports' blocking/timeout/close semantics, and the
// ClientChannel call/push/reconnect discipline.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "codec/frame_stream.hpp"
#include "transport/channel.hpp"
#include "transport/pipe.hpp"
#include "transport/socket.hpp"
#include "transport/transport.hpp"

namespace sor::transport {
namespace {

Bytes MakePayload(std::size_t n, std::uint8_t seed = 7) {
  Bytes payload(n);
  for (std::size_t i = 0; i < n; ++i)
    payload[i] = static_cast<std::uint8_t>(seed + i * 31);
  return payload;
}

// --- FrameStream -------------------------------------------------------------

TEST(FrameStream, RoundTripSinglePayload) {
  const Bytes payload = MakePayload(100);
  Bytes wire;
  codec::AppendFrame(wire, payload);
  ASSERT_EQ(wire.size(), payload.size() + 8);  // len + crc overhead

  codec::FrameStreamReader reader;
  reader.Feed(wire);
  Bytes out;
  ASSERT_EQ(reader.Pop(&out), codec::FrameStreamReader::Next::kFrame);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(reader.Pop(&out), codec::FrameStreamReader::Next::kNeedMore);
  EXPECT_EQ(reader.frames_popped(), 1u);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameStream, RoundTripEmptyPayload) {
  Bytes wire;
  codec::AppendFrame(wire, Bytes{});
  codec::FrameStreamReader reader;
  reader.Feed(wire);
  Bytes out{1, 2, 3};
  ASSERT_EQ(reader.Pop(&out), codec::FrameStreamReader::Next::kFrame);
  EXPECT_TRUE(out.empty());
}

TEST(FrameStream, ByteAtATimeDelivery) {
  // A socket may hand back any chunking; one byte at a time is the
  // worst case and must still reassemble every record.
  std::vector<Bytes> payloads = {MakePayload(1), MakePayload(300),
                                 MakePayload(17, 99)};
  Bytes wire;
  for (const Bytes& p : payloads) codec::AppendFrame(wire, p);

  codec::FrameStreamReader reader;
  std::vector<Bytes> got;
  for (std::uint8_t byte : wire) {
    reader.Feed({&byte, 1});
    Bytes out;
    while (reader.Pop(&out) == codec::FrameStreamReader::Next::kFrame)
      got.push_back(out);
  }
  ASSERT_EQ(got.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i)
    EXPECT_EQ(got[i], payloads[i]) << "payload " << i;
}

TEST(FrameStream, TruncatedRecordNeedsMore) {
  const Bytes payload = MakePayload(64);
  Bytes wire;
  codec::AppendFrame(wire, payload);

  // Every proper prefix of the record is "incomplete", never "bad".
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    codec::FrameStreamReader reader;
    reader.Feed({wire.data(), cut});
    Bytes out;
    EXPECT_EQ(reader.Pop(&out), codec::FrameStreamReader::Next::kNeedMore)
        << "prefix length " << cut;
    EXPECT_FALSE(reader.bad());
  }
}

TEST(FrameStream, OversizedLengthPoisonsStream) {
  const Bytes payload = MakePayload(32);
  Bytes wire;
  codec::AppendFrame(wire, payload);

  codec::FrameStreamReader reader(/*max_payload=*/16);
  reader.Feed(wire);
  Bytes out;
  EXPECT_EQ(reader.Pop(&out), codec::FrameStreamReader::Next::kBad);
  EXPECT_TRUE(reader.bad());
  EXPECT_FALSE(reader.error().empty());
  // Poison is sticky: even feeding a pristine record cannot recover the
  // record boundary.
  Bytes fresh;
  codec::AppendFrame(fresh, MakePayload(4));
  reader.Feed(fresh);
  EXPECT_EQ(reader.Pop(&out), codec::FrameStreamReader::Next::kBad);
}

TEST(FrameStream, CorruptPayloadPoisonsStream) {
  const Bytes payload = MakePayload(128);
  for (std::size_t flip = 0; flip < 16; ++flip) {
    Bytes wire;
    codec::AppendFrame(wire, payload);
    wire[4 + flip * 7] ^= 0x40;  // corrupt a payload byte (skip the length)

    codec::FrameStreamReader reader;
    reader.Feed(wire);
    Bytes out;
    EXPECT_EQ(reader.Pop(&out), codec::FrameStreamReader::Next::kBad)
        << "flipped payload byte " << flip * 7;
    EXPECT_TRUE(reader.bad());
  }
}

TEST(FrameStream, ResetClearsPoisonAndBuffer) {
  Bytes wire;
  codec::AppendFrame(wire, MakePayload(8));
  wire[6] ^= 0xff;

  codec::FrameStreamReader reader;
  reader.Feed(wire);
  Bytes out;
  ASSERT_EQ(reader.Pop(&out), codec::FrameStreamReader::Next::kBad);

  reader.Reset();
  EXPECT_FALSE(reader.bad());
  EXPECT_EQ(reader.buffered(), 0u);
  Bytes fresh;
  codec::AppendFrame(fresh, MakePayload(8));
  reader.Feed(fresh);
  EXPECT_EQ(reader.Pop(&out), codec::FrameStreamReader::Next::kFrame);
}

TEST(FrameStream, FuzzRandomChunksRoundTrip) {
  // Deterministic fuzz: random payload sizes reassembled from random
  // chunk sizes must always round-trip, whatever the split points.
  std::mt19937_64 rng(0xf0a51u);
  for (int round = 0; round < 50; ++round) {
    std::vector<Bytes> payloads;
    Bytes wire;
    const int n = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < n; ++i) {
      payloads.push_back(MakePayload(rng() % 600,
                                     static_cast<std::uint8_t>(rng())));
      codec::AppendFrame(wire, payloads.back());
    }

    codec::FrameStreamReader reader;
    std::vector<Bytes> got;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 97, wire.size() - pos);
      reader.Feed({wire.data() + pos, chunk});
      pos += chunk;
      Bytes out;
      while (reader.Pop(&out) == codec::FrameStreamReader::Next::kFrame)
        got.push_back(out);
    }
    ASSERT_EQ(got, payloads) << "round " << round;
    EXPECT_FALSE(reader.bad());
  }
}

TEST(FrameStream, FuzzCorruptionNeverDecodesWrongBytes) {
  // Flip one random byte per round: the reader must either return the
  // intact records that precede the damage or go bad — never hand back a
  // payload that differs from what was framed.
  std::mt19937_64 rng(0xdead5u);
  for (int round = 0; round < 100; ++round) {
    std::vector<Bytes> payloads;
    Bytes wire;
    for (int i = 0; i < 3; ++i) {
      payloads.push_back(MakePayload(1 + rng() % 200,
                                     static_cast<std::uint8_t>(rng())));
      codec::AppendFrame(wire, payloads.back());
    }
    wire[rng() % wire.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);

    codec::FrameStreamReader reader;
    reader.Feed(wire);
    Bytes out;
    std::size_t popped = 0;
    while (reader.Pop(&out) == codec::FrameStreamReader::Next::kFrame) {
      ASSERT_LT(popped, payloads.size());
      // A popped record is either the framed payload, or (only when the
      // flipped byte produced a self-consistent record, which CRC-32 makes
      // all but impossible for single-bit flips) detectable damage; require
      // exact equality — CRC-32 catches every single-byte corruption.
      EXPECT_EQ(out, payloads[popped]) << "round " << round;
      ++popped;
    }
    EXPECT_LE(popped, payloads.size());
  }
}

// --- record channel codec ----------------------------------------------------

TEST(RecordCodec, RoundTripAllKinds) {
  for (RecordKind kind :
       {RecordKind::kCall, RecordKind::kReply, RecordKind::kPush}) {
    Record record;
    record.kind = kind;
    record.corr = 0x1234'5678'9abcull;
    record.dest = "phone:tok-17";
    record.frame = MakePayload(33);

    const Bytes body = EncodeRecord(record);
    Result<Record> back = DecodeRecord(body);
    ASSERT_TRUE(back.ok()) << back.error().str();
    EXPECT_EQ(back.value().kind, kind);
    EXPECT_EQ(back.value().corr, record.corr);
    EXPECT_EQ(back.value().dest, record.dest);
    EXPECT_EQ(back.value().frame, record.frame);
  }
}

TEST(RecordCodec, RejectsBadKindAndEmptyBody) {
  Record record;
  record.kind = RecordKind::kCall;
  record.dest = "server";
  record.frame = MakePayload(4);
  Bytes body = EncodeRecord(record);
  body[0] = 0x7f;  // no such RecordKind
  EXPECT_FALSE(DecodeRecord(body).ok());
  EXPECT_FALSE(DecodeRecord(Bytes{}).ok());
}

// --- transports --------------------------------------------------------------

// Both transports must satisfy the same contract; run the suite over each.
struct PipeFactory {
  static std::unique_ptr<Transport> Make(const Metrics& metrics) {
    return std::make_unique<PipeTransport>(metrics);
  }
  static std::string Address() { return "daemon"; }
};

struct UnixSocketFactory {
  static std::unique_ptr<Transport> Make(const Metrics& metrics) {
    return std::make_unique<SocketTransport>(metrics);
  }
  static std::string Address() {
    static int counter = 0;
    return "unix:/tmp/sor-test-" + std::to_string(::getpid()) + "-" +
           std::to_string(counter++) + ".sock";
  }
};

template <class Factory>
class TransportContract : public ::testing::Test {};

using TransportImpls = ::testing::Types<PipeFactory, UnixSocketFactory>;
TYPED_TEST_SUITE(TransportContract, TransportImpls);

TYPED_TEST(TransportContract, EchoRoundTrip) {
  obs::MetricsRegistry registry;
  auto transport = TypeParam::Make(Metrics::For(registry));
  const std::string address = TypeParam::Address();

  Result<std::unique_ptr<Listener>> listener = transport->Listen(address);
  ASSERT_TRUE(listener.ok()) << listener.error().str();

  std::thread server([&listener] {
    Result<std::unique_ptr<Connection>> conn =
        listener.value()->Accept(2'000);
    ASSERT_TRUE(conn.ok()) << conn.error().str();
    std::uint8_t buf[64];
    Result<std::size_t> n = conn.value()->ReadSome(buf, 2'000);
    ASSERT_TRUE(n.ok()) << n.error().str();
    ASSERT_TRUE(conn.value()->WriteAll({buf, n.value()}, 2'000).ok());
    conn.value()->Close();
  });

  Result<std::unique_ptr<Connection>> client =
      transport->Dial(address, 2'000);
  ASSERT_TRUE(client.ok()) << client.error().str();
  const Bytes ping = MakePayload(40);
  ASSERT_TRUE(client.value()->WriteAll(ping, 2'000).ok());

  Bytes echo;
  while (echo.size() < ping.size()) {
    std::uint8_t buf[64];
    Result<std::size_t> n = client.value()->ReadSome(buf, 2'000);
    ASSERT_TRUE(n.ok()) << n.error().str();
    ASSERT_GT(n.value(), 0u);
    echo.insert(echo.end(), buf, buf + n.value());
  }
  EXPECT_EQ(echo, ping);
  server.join();

  EXPECT_GE(registry.counter("transport.connections").value(), 2u);
  EXPECT_GE(registry.counter("transport.bytes_out").value(), ping.size());
  EXPECT_GE(registry.counter("transport.bytes_in").value(), ping.size());
}

TYPED_TEST(TransportContract, ReadAndAcceptTimeouts) {
  obs::MetricsRegistry registry;
  auto transport = TypeParam::Make(Metrics::For(registry));
  const std::string address = TypeParam::Address();

  Result<std::unique_ptr<Listener>> listener = transport->Listen(address);
  ASSERT_TRUE(listener.ok()) << listener.error().str();
  EXPECT_EQ(listener.value()->Accept(10).code(), Errc::kTimeout);

  Result<std::unique_ptr<Connection>> client = transport->Dial(address, 2'000);
  ASSERT_TRUE(client.ok()) << client.error().str();
  std::uint8_t buf[8];
  EXPECT_EQ(client.value()->ReadSome(buf, 10).code(), Errc::kTimeout);

  EXPECT_GE(registry.counter("transport.accept_timeouts").value(), 1u);
  EXPECT_GE(registry.counter("transport.read_timeouts").value(), 1u);
}

TYPED_TEST(TransportContract, CloseUnblocksReader) {
  auto transport = TypeParam::Make(Metrics{});
  const std::string address = TypeParam::Address();

  Result<std::unique_ptr<Listener>> listener = transport->Listen(address);
  ASSERT_TRUE(listener.ok()) << listener.error().str();
  Result<std::unique_ptr<Connection>> client = transport->Dial(address, 2'000);
  ASSERT_TRUE(client.ok()) << client.error().str();
  Result<std::unique_ptr<Connection>> served = listener.value()->Accept(2'000);
  ASSERT_TRUE(served.ok()) << served.error().str();

  std::atomic<bool> unblocked{false};
  std::thread reader([&client, &unblocked] {
    std::uint8_t buf[8];
    // Blocked far beyond the test's lifetime unless Close() wakes it.
    Result<std::size_t> n = client.value()->ReadSome(buf, 60'000);
    // Either clean EOF (0) or kUnavailable is acceptable; both mean "gone".
    EXPECT_TRUE((n.ok() && n.value() == 0) ||
                n.code() == Errc::kUnavailable);
    unblocked = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client.value()->Close();
  reader.join();
  EXPECT_TRUE(unblocked);
  served.value()->Close();
}

TYPED_TEST(TransportContract, PeerCloseIsEndOfStream) {
  auto transport = TypeParam::Make(Metrics{});
  const std::string address = TypeParam::Address();

  Result<std::unique_ptr<Listener>> listener = transport->Listen(address);
  ASSERT_TRUE(listener.ok()) << listener.error().str();
  Result<std::unique_ptr<Connection>> client = transport->Dial(address, 2'000);
  ASSERT_TRUE(client.ok()) << client.error().str();
  Result<std::unique_ptr<Connection>> served = listener.value()->Accept(2'000);
  ASSERT_TRUE(served.ok()) << served.error().str();

  served.value()->Close();
  std::uint8_t buf[8];
  Result<std::size_t> n = client.value()->ReadSome(buf, 2'000);
  EXPECT_TRUE((n.ok() && n.value() == 0) || n.code() == Errc::kUnavailable);
}

TEST(PipeTransportTest, DialUnknownAddressFails) {
  PipeTransport transport;
  EXPECT_FALSE(transport.Dial("nobody-home", 50).ok());
}

TEST(SocketTransportTest, RejectsMalformedAddresses) {
  SocketTransport transport;
  EXPECT_FALSE(transport.Listen("carrier-pigeon:coop7").ok());
  EXPECT_FALSE(transport.Dial("tcp:missing-port", 100).ok());
}

// --- ClientChannel -----------------------------------------------------------

// Minimal daemon stand-in: accepts one connection at a time and answers
// every kCall with a kReply echoing the frame; optionally precedes the
// reply with a kPush the client must service inline.
class EchoServer {
 public:
  EchoServer(Transport& transport, const std::string& address,
             bool push_first)
      : push_first_(push_first) {
    Result<std::unique_ptr<Listener>> listener = transport.Listen(address);
    EXPECT_TRUE(listener.ok());
    listener_ = std::move(listener.value());
    thread_ = std::thread([this] { Run(); });
  }

  ~EchoServer() {
    stop_ = true;
    listener_->Close();
    thread_.join();
  }

  [[nodiscard]] int calls_served() const { return calls_served_.load(); }

 private:
  void Run() {
    while (!stop_) {
      Result<std::unique_ptr<Connection>> conn = listener_->Accept(100);
      if (conn.code() == Errc::kTimeout) continue;
      if (!conn.ok()) return;
      Serve(*conn.value());
    }
  }

  void Serve(Connection& conn) {
    RecordReader reader;
    while (!stop_) {
      Result<Record> record = reader.Read(conn, 100);
      if (record.code() == Errc::kTimeout) continue;
      if (!record.ok()) return;  // client hung up
      if (record.value().kind != RecordKind::kCall) continue;

      if (push_first_) {
        Record push;
        push.kind = RecordKind::kPush;
        push.corr = 77;
        push.dest = "phone:tok-1";
        push.frame = MakePayload(5, 200);
        ASSERT_TRUE(WriteRecord(conn, push, 1'000, {}).ok());
        Result<Record> ack = reader.Read(conn, 1'000);
        ASSERT_TRUE(ack.ok()) << ack.error().str();
        EXPECT_EQ(ack.value().kind, RecordKind::kReply);
        EXPECT_EQ(ack.value().corr, push.corr);
        EXPECT_EQ(ack.value().frame, MakePayload(3, 100));  // handler reply
      }

      Record reply;
      reply.kind = RecordKind::kReply;
      reply.corr = record.value().corr;
      reply.dest = record.value().dest;
      reply.frame = record.value().frame;  // echo
      ++calls_served_;  // before the write: the client checks on reply
      ASSERT_TRUE(WriteRecord(conn, reply, 1'000, {}).ok());
    }
  }

  bool push_first_;
  std::unique_ptr<Listener> listener_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> calls_served_{0};
};

TEST(ClientChannel, CallRoundTrip) {
  PipeTransport transport;
  EchoServer server(transport, "daemon", /*push_first=*/false);

  ClientChannel channel(transport, "daemon",
                        [](const std::string&, std::span<const std::uint8_t>) {
                          ADD_FAILURE() << "no push expected";
                          return Bytes{};
                        });
  const Bytes frame = MakePayload(25);
  Result<Bytes> reply = channel.Call("server", frame);
  ASSERT_TRUE(reply.ok()) << reply.error().str();
  EXPECT_EQ(reply.value(), frame);
  EXPECT_TRUE(channel.connected());
  channel.Close();
  EXPECT_FALSE(channel.connected());
}

TEST(ClientChannel, ServicesPushWhileBlockedInCall) {
  PipeTransport transport;
  EchoServer server(transport, "daemon", /*push_first=*/true);

  int pushes = 0;
  ClientChannel channel(
      transport, "daemon",
      [&pushes](const std::string& dest, std::span<const std::uint8_t> frame) {
        ++pushes;
        EXPECT_EQ(dest, "phone:tok-1");
        EXPECT_EQ(Bytes(frame.begin(), frame.end()), MakePayload(5, 200));
        return MakePayload(3, 100);
      });
  Result<Bytes> reply = channel.Call("server", MakePayload(10));
  ASSERT_TRUE(reply.ok()) << reply.error().str();
  EXPECT_EQ(pushes, 1);
  channel.Close();
}

TEST(ClientChannel, RedialsAfterServerRestart) {
  PipeTransport transport;
  ClientChannel channel(transport, "daemon",
                        [](const std::string&, std::span<const std::uint8_t>) {
                          return Bytes{};
                        });

  {
    EchoServer server(transport, "daemon", /*push_first=*/false);
    ASSERT_TRUE(channel.Call("server", MakePayload(8)).ok());
    EXPECT_TRUE(channel.connected());
  }  // server gone; the dangling connection fails the next Call

  EXPECT_FALSE(channel.Call("server", MakePayload(8)).ok());

  {
    EchoServer server(transport, "daemon", /*push_first=*/false);
    // One failed call surfaced the outage; the next call re-dials.
    Result<Bytes> reply = channel.Call("server", MakePayload(8));
    ASSERT_TRUE(reply.ok()) << reply.error().str();
    EXPECT_EQ(server.calls_served(), 1);
  }
  channel.Close();
}

}  // namespace
}  // namespace sor::transport

// Unit tests for the loopback transport: round trips, routing, error
// surfacing and fault injection.
#include <gtest/gtest.h>

#include "net/transport.hpp"

namespace sor::net {
namespace {

// Echo endpoint: replies with an Ack carrying a recognizable value, or
// propagates decode failures like a real handler.
class EchoEndpoint final : public Endpoint {
 public:
  Bytes HandleFrame(std::span<const std::uint8_t> frame) override {
    ++frames_;
    Result<Message> decoded = DecodeFrame(frame);
    if (!decoded.ok()) {
      ++decode_failures_;
      return EncodeFrame(ErrorReply{
          static_cast<std::uint8_t>(decoded.error().code),
          decoded.error().message});
    }
    return EncodeFrame(Ack{1234});
  }
  int frames_ = 0;
  int decode_failures_ = 0;
};

TEST(Transport, RoundTrip) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  Result<Message> reply = net.Send("echo", Ping{PhoneId{1}});
  ASSERT_TRUE(reply.ok()) << reply.error().str();
  ASSERT_TRUE(std::holds_alternative<Ack>(reply.value()));
  EXPECT_EQ(std::get<Ack>(reply.value()).in_reply_to, 1234u);
  EXPECT_EQ(echo.frames_, 1);
  EXPECT_EQ(net.stats().delivered, 1u);
  EXPECT_GT(net.stats().bytes_sent, 0u);
}

TEST(Transport, UnknownEndpoint) {
  LoopbackNetwork net;
  Result<Message> reply = net.Send("ghost", Ack{});
  EXPECT_EQ(reply.code(), Errc::kUnavailable);
}

TEST(Transport, UnregisterStopsDelivery) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  net.Unregister("echo");
  EXPECT_FALSE(net.Send("echo", Ack{}).ok());
}

TEST(Transport, RemoteErrorSurfacesAsLocalError) {
  class FailingEndpoint final : public Endpoint {
   public:
    Bytes HandleFrame(std::span<const std::uint8_t>) override {
      return EncodeFrame(ErrorReply{
          static_cast<std::uint8_t>(Errc::kOutOfBudget), "budget gone"});
    }
  };
  LoopbackNetwork net;
  FailingEndpoint failing;
  net.Register("f", &failing);
  Result<Message> reply = net.Send("f", Ack{});
  EXPECT_EQ(reply.code(), Errc::kOutOfBudget);
  EXPECT_EQ(reply.error().message, "budget gone");
}

TEST(Transport, DropFaultInjection) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  net.faults().drop_next = 2;
  EXPECT_EQ(net.Send("echo", Ack{}).code(), Errc::kTimeout);
  EXPECT_EQ(net.Send("echo", Ack{}).code(), Errc::kTimeout);
  EXPECT_TRUE(net.Send("echo", Ack{}).ok());  // back to normal
  EXPECT_EQ(echo.frames_, 1);                 // dropped frames never arrived
  EXPECT_EQ(net.stats().dropped, 2u);
}

TEST(Transport, CorruptionFaultInjectionDetectedByReceiver) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  net.faults().corrupt_next = 1;
  Result<Message> reply = net.Send("echo", Ping{PhoneId{7}});
  // The receiver detects the corrupt frame (CRC) and returns an error
  // reply, which surfaces as a decode error on the sender side.
  EXPECT_EQ(reply.code(), Errc::kDecodeError);
  EXPECT_EQ(echo.decode_failures_, 1);
  EXPECT_EQ(net.stats().corrupted, 1u);
  // Next message is clean.
  EXPECT_TRUE(net.Send("echo", Ping{PhoneId{7}}).ok());
}

TEST(Transport, StatsAccumulate) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(net.Send("echo", Ack{}).ok());
  EXPECT_EQ(net.stats().delivered, 5u);
  EXPECT_GT(net.stats().bytes_received, net.stats().delivered);
}

}  // namespace
}  // namespace sor::net

// Unit tests for the loopback transport: round trips, routing, error
// surfacing and fault injection.
#include <gtest/gtest.h>

#include "net/transport.hpp"

namespace sor::net {
namespace {

// Echo endpoint: replies with an Ack carrying a recognizable value, or
// propagates decode failures like a real handler.
class EchoEndpoint final : public Endpoint {
 public:
  Bytes HandleFrame(std::span<const std::uint8_t> frame) override {
    ++frames_;
    Result<Message> decoded = DecodeFrame(frame);
    if (!decoded.ok()) {
      ++decode_failures_;
      return EncodeFrame(ErrorReply{
          static_cast<std::uint8_t>(decoded.error().code),
          decoded.error().message});
    }
    return EncodeFrame(Ack{1234});
  }
  int frames_ = 0;
  int decode_failures_ = 0;
};

TEST(Transport, RoundTrip) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  Result<Message> reply = net.Send("echo", Ping{PhoneId{1}});
  ASSERT_TRUE(reply.ok()) << reply.error().str();
  ASSERT_TRUE(std::holds_alternative<Ack>(reply.value()));
  EXPECT_EQ(std::get<Ack>(reply.value()).in_reply_to, 1234u);
  EXPECT_EQ(echo.frames_, 1);
  EXPECT_EQ(net.stats().delivered, 1u);
  EXPECT_GT(net.stats().bytes_sent, 0u);
}

TEST(Transport, UnknownEndpoint) {
  LoopbackNetwork net;
  Result<Message> reply = net.Send("ghost", Ack{});
  EXPECT_EQ(reply.code(), Errc::kUnavailable);
}

TEST(Transport, UnregisterStopsDelivery) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  net.Unregister("echo");
  EXPECT_FALSE(net.Send("echo", Ack{}).ok());
}

TEST(Transport, RemoteErrorSurfacesAsLocalError) {
  class FailingEndpoint final : public Endpoint {
   public:
    Bytes HandleFrame(std::span<const std::uint8_t>) override {
      return EncodeFrame(ErrorReply{
          static_cast<std::uint8_t>(Errc::kOutOfBudget), "budget gone"});
    }
  };
  LoopbackNetwork net;
  FailingEndpoint failing;
  net.Register("f", &failing);
  Result<Message> reply = net.Send("f", Ack{});
  EXPECT_EQ(reply.code(), Errc::kOutOfBudget);
  EXPECT_EQ(reply.error().message, "budget gone");
}

TEST(Transport, DropFaultInjection) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  net.faults().drop_next = 2;
  EXPECT_EQ(net.Send("echo", Ack{}).code(), Errc::kTimeout);
  EXPECT_EQ(net.Send("echo", Ack{}).code(), Errc::kTimeout);
  EXPECT_TRUE(net.Send("echo", Ack{}).ok());  // back to normal
  EXPECT_EQ(echo.frames_, 1);                 // dropped frames never arrived
  EXPECT_EQ(net.stats().dropped, 2u);
}

TEST(Transport, CorruptionFaultInjectionDetectedByReceiver) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  net.faults().corrupt_next = 1;
  Result<Message> reply = net.Send("echo", Ping{PhoneId{7}});
  // The receiver detects the corrupt frame (CRC) and returns an error
  // reply, which surfaces as a decode error on the sender side.
  EXPECT_EQ(reply.code(), Errc::kDecodeError);
  EXPECT_EQ(echo.decode_failures_, 1);
  EXPECT_EQ(net.stats().corrupted, 1u);
  // Next message is clean.
  EXPECT_TRUE(net.Send("echo", Ping{PhoneId{7}}).ok());
}

TEST(Transport, StatsAccumulate) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(net.Send("echo", Ack{}).ok());
  EXPECT_EQ(net.stats().delivered, 5u);
  EXPECT_GT(net.stats().bytes_received, net.stats().delivered);
}

TEST(Transport, CorruptedRequestNotCountedDelivered) {
  // A send is accounted as corrupted XOR delivered — never both.
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  net.faults().corrupt_next = 1;
  EXPECT_FALSE(net.Send("echo", Ack{}).ok());
  EXPECT_EQ(net.stats().corrupted, 1u);
  EXPECT_EQ(net.stats().delivered, 0u);
}

TEST(Transport, ResponseDropIsLostAck) {
  // The handler runs — the server-side effect happened — but the sender
  // sees a timeout it cannot distinguish from a dropped request.
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  FaultRule rule;
  rule.on_request = false;
  rule.drop = 1.0;
  net.faults().AddRule(rule);
  EXPECT_EQ(net.Send("me", "echo", Ack{}).code(), Errc::kTimeout);
  EXPECT_EQ(echo.frames_, 1);  // the request DID arrive
  EXPECT_EQ(net.stats().delivered, 1u);
  EXPECT_EQ(net.stats().responses_dropped, 1u);
  EXPECT_EQ(net.stats().dropped, 0u);
}

TEST(Transport, ResponseCorruptionFailsDecodeAtSender) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  FaultRule rule;
  rule.on_request = false;
  rule.corrupt = 1.0;
  net.faults().AddRule(rule);
  EXPECT_EQ(net.Send("me", "echo", Ack{}).code(), Errc::kDecodeError);
  EXPECT_EQ(echo.decode_failures_, 0);  // request was clean
  EXPECT_EQ(net.stats().responses_corrupted, 1u);
}

TEST(Transport, DuplicateDeliveryRunsHandlerTwice) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  FaultRule rule;
  rule.on_response = false;
  rule.duplicate = 1.0;
  net.faults().AddRule(rule);
  EXPECT_TRUE(net.Send("me", "echo", Ack{}).ok());
  EXPECT_EQ(echo.frames_, 2);  // at-least-once: the handler ran twice
  EXPECT_EQ(net.stats().duplicated, 1u);
}

TEST(Transport, PartitionWindowBlocksOnlyWhileOpen) {
  SimClock clock;
  LoopbackNetwork net;
  net.set_clock(&clock);
  EchoEndpoint echo;
  net.Register("echo", &echo);
  FaultRule rule;
  rule.partition = SimInterval{SimTime{1'000}, SimTime{2'000}};
  net.faults().AddRule(rule);

  EXPECT_TRUE(net.Send("me", "echo", Ack{}).ok());  // before the window
  clock.advance_to(SimTime{1'500});
  EXPECT_EQ(net.Send("me", "echo", Ack{}).code(), Errc::kUnavailable);
  EXPECT_EQ(net.stats().partitioned, 1u);
  clock.advance_to(SimTime{3'000});
  EXPECT_TRUE(net.Send("me", "echo", Ack{}).ok());  // healed
}

TEST(Transport, PerLinkRulesMatchEndpointNames) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  FaultRule rule;
  rule.from = "phone:*";  // only phones suffer on this wire
  rule.drop = 1.0;
  net.faults().AddRule(rule);

  EXPECT_FALSE(net.Send("phone:tok-1", "echo", Ack{}).ok());
  EXPECT_TRUE(net.Send("laptop", "echo", Ack{}).ok());
  // Per-link accounting keeps the two senders apart.
  EXPECT_EQ(net.link_stats("phone:tok-1", "echo").dropped, 1u);
  EXPECT_EQ(net.link_stats("phone:tok-1", "echo").delivered, 0u);
  EXPECT_EQ(net.link_stats("laptop", "echo").delivered, 1u);
  // The anonymous two-argument Send has the empty source name, which a
  // prefix rule does not match.
  EXPECT_TRUE(net.Send("echo", Ack{}).ok());
}

TEST(FaultInjector, WildcardMatching) {
  EXPECT_TRUE(FaultInjector::Matches("*", "anything"));
  EXPECT_TRUE(FaultInjector::Matches("*", ""));
  EXPECT_TRUE(FaultInjector::Matches("phone:*", "phone:tok-9"));
  EXPECT_TRUE(FaultInjector::Matches("phone:*", "phone:"));
  EXPECT_FALSE(FaultInjector::Matches("phone:*", "server"));
  EXPECT_FALSE(FaultInjector::Matches("phone:*", ""));
  EXPECT_TRUE(FaultInjector::Matches("server", "server"));
  EXPECT_FALSE(FaultInjector::Matches("server", "server2"));
}

TEST(FaultInjector, SameSeedSameFaultSchedule) {
  // The chaos contract: (seed, rules, traversal sequence) fully determine
  // every fault decision, down to identical per-link transport stats.
  auto run = [](std::uint64_t seed) {
    SimClock clock;
    LoopbackNetwork net;
    net.set_clock(&clock);
    EchoEndpoint echo;
    net.Register("echo", &echo);
    net.faults().set_seed(seed);
    FaultRule rule;
    rule.drop = 0.3;
    rule.corrupt = 0.2;
    rule.duplicate = 0.2;
    // A partition in the middle must not desynchronize the stream.
    FaultRule part;
    part.partition = SimInterval{SimTime{40}, SimTime{60}};
    net.faults().AddRule(rule);
    net.faults().AddRule(part);
    for (int i = 0; i < 100; ++i) {
      clock.advance(SimDuration{1});
      (void)net.Send("phone:a", "echo", Ping{PhoneId{1}});
      (void)net.Send("phone:b", "echo", Ack{42});
    }
    return net.all_link_stats();
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a, b);
  // And faults actually fired (the schedule is not trivially empty).
  TransportStats total;
  for (const auto& [link, s] : a) {
    total.dropped += s.dropped;
    total.corrupted += s.corrupted;
    total.duplicated += s.duplicated;
    total.partitioned += s.partitioned;
  }
  EXPECT_GT(total.dropped, 0u);
  EXPECT_GT(total.partitioned, 0u);
}

TEST(Transport, StatsViewMatchesRegistry) {
  // TransportStats is a *view* over the metrics registry: every field must
  // equal the sum of the corresponding per-link "net.*|from=..|to=.."
  // counters. Exercise every outcome class so no field is trivially zero.
  SimClock clock;
  LoopbackNetwork net;
  net.set_clock(&clock);
  EchoEndpoint echo;
  net.Register("echo", &echo);
  net.faults().set_seed(11);
  FaultRule rule;
  rule.drop = 0.3;
  rule.corrupt = 0.2;
  rule.duplicate = 0.2;
  rule.latency = SimDuration{5};
  net.faults().AddRule(rule);
  for (int i = 0; i < 200; ++i) {
    clock.advance(SimDuration{1});
    (void)net.Send("phone:a", "echo", Ping{PhoneId{1}});
    (void)net.Send("phone:b", "echo", Ack{7});
  }

  // Rebuild the aggregate straight from the registry export.
  std::map<std::string, std::uint64_t> by_base;
  for (const auto& e : net.metrics().Read()) {
    const std::size_t bar = e.name.find('|');
    // Unlabeled entries are network-global (the transport.* stream-framing
    // family), not part of the per-link aggregate under test.
    if (bar == std::string::npos) continue;
    by_base[e.name.substr(0, bar)] += e.counter_value;
  }
  const TransportStats s = net.stats();
  EXPECT_EQ(by_base["net.delivered"], s.delivered);
  EXPECT_EQ(by_base["net.dropped"], s.dropped);
  EXPECT_EQ(by_base["net.corrupted"], s.corrupted);
  EXPECT_EQ(by_base["net.duplicated"], s.duplicated);
  EXPECT_EQ(by_base["net.responses_dropped"], s.responses_dropped);
  EXPECT_EQ(by_base["net.responses_corrupted"], s.responses_corrupted);
  EXPECT_EQ(by_base["net.bytes_sent"], s.bytes_sent);
  EXPECT_EQ(by_base["net.bytes_received"], s.bytes_received);
  EXPECT_EQ(by_base["net.latency_injected_ms"], s.latency_injected_ms);
  EXPECT_GT(s.delivered, 0u);
  EXPECT_GT(s.dropped, 0u);
  EXPECT_GT(s.latency_injected_ms, 0u);

  // And the per-link view must match the labeled counters exactly.
  const TransportStats a = net.link_stats("phone:a", "echo");
  EXPECT_EQ(a.delivered,
            net.metrics()
                .counter(obs::LabeledName("net.delivered",
                                          {{"from", "phone:a"}, {"to", "echo"}}))
                .value());
  // The two links plus nothing else account for the aggregate.
  const TransportStats b = net.link_stats("phone:b", "echo");
  EXPECT_EQ(a.delivered + b.delivered, s.delivered);
}

TEST(Transport, SharedRegistryInjection) {
  // System injects its own registry; transport counters must land there.
  obs::MetricsRegistry shared;
  LoopbackNetwork net;
  net.set_metrics(&shared);
  EchoEndpoint echo;
  net.Register("echo", &echo);
  ASSERT_TRUE(net.Send("me", "echo", Ack{}).ok());
  EXPECT_EQ(shared
                .counter(obs::LabeledName("net.delivered",
                                          {{"from", "me"}, {"to", "echo"}}))
                .value(),
            1u);
  EXPECT_EQ(net.stats().delivered, 1u);
  // Reverting to the private registry starts a fresh view.
  net.set_metrics(nullptr);
  EXPECT_EQ(net.stats().delivered, 0u);
}

TEST(Transport, TraceEventsRecordDeliveryOutcomes) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  SimClock clock;
  clock.advance(SimDuration{42});
  LoopbackNetwork net;
  net.set_clock(&clock);
  net.set_tracer(&tracer);
  EchoEndpoint echo;
  net.Register("echo", &echo);

  ASSERT_TRUE(net.Send("phone:a", "echo", Ping{PhoneId{1}}).ok());
  net.faults().drop_next = 1;
  EXPECT_FALSE(net.Send("phone:a", "echo", Ack{}).ok());

  const auto events = tracer.Merged();
  // send+delivered for the clean round trip, send+dropped for the loss.
  ASSERT_EQ(events.size(), 4u);
  const obs::StreamId phone = tracer.RegisterStream("phone:a");
  const obs::StreamId server = tracer.RegisterStream("echo");
  EXPECT_EQ(events[0].kind, obs::EventKind::kMsgSend);
  EXPECT_EQ(events[0].stream, phone);
  EXPECT_EQ(events[0].a, server);  // payload a = peer stream
  EXPECT_EQ(events[0].time_ms, 42);
  EXPECT_EQ(events[0].c, static_cast<std::uint64_t>(TypeOf(Message{Ping{}})));
  EXPECT_EQ(events[1].kind, obs::EventKind::kMsgDelivered);
  EXPECT_EQ(events[2].kind, obs::EventKind::kMsgSend);
  EXPECT_EQ(events[3].kind, obs::EventKind::kMsgDropped);
  EXPECT_EQ(events[3].b, 0u);  // not a partition
}

TEST(FaultInjector, ScriptedCountersTakePrecedenceAndClearResets) {
  LoopbackNetwork net;
  EchoEndpoint echo;
  net.Register("echo", &echo);
  FaultRule rule;
  rule.drop = 1.0;
  net.faults().AddRule(rule);
  net.faults().drop_next = 1;
  EXPECT_FALSE(net.faults().empty());
  EXPECT_FALSE(net.Send("me", "echo", Ack{}).ok());
  net.faults().Clear();
  EXPECT_TRUE(net.faults().empty());
  EXPECT_TRUE(net.Send("me", "echo", Ack{}).ok());
}

// --- node fault domain -------------------------------------------------------

TEST(NodeFaults, DownNodeLosesFramesBeforeHandler) {
  LoopbackNetwork net;
  SimClock clock;
  net.set_clock(&clock);
  EchoEndpoint echo;
  net.Register("echo", &echo);

  net.faults().SetNodeDown("echo");  // indefinite: needs SetNodeUp
  Result<Message> r = net.Send("me", "echo", Ack{});
  EXPECT_EQ(r.code(), Errc::kUnavailable);
  EXPECT_EQ(echo.frames_, 0);  // handler never ran
  EXPECT_EQ(net.stats().node_unreachable, 1u);
  EXPECT_EQ(net.stats().delivered, 0u);

  net.faults().SetNodeUp("echo");
  EXPECT_TRUE(net.Send("me", "echo", Ack{}).ok());
  EXPECT_EQ(echo.frames_, 1);
}

TEST(NodeFaults, TimedDownExpiresWithTheClock) {
  LoopbackNetwork net;
  SimClock clock;
  net.set_clock(&clock);
  EchoEndpoint echo;
  net.Register("server", &echo);

  // Server stall: down until t=10s, lifts itself without SetNodeUp.
  net.faults().SetNodeDown("server", SimTime{10'000});
  EXPECT_FALSE(net.Send("phone:a", "server", Ack{}).ok());
  clock.advance_to(SimTime{10'000});
  EXPECT_TRUE(net.Send("phone:a", "server", Ack{}).ok());
}

TEST(NodeFaults, DecisionsArePureAndSeeded) {
  FaultInjector a;
  a.set_node_seed(7);
  NodeFaultRule rule;
  rule.endpoint = "phone:*";
  rule.crash = 0.05;
  rule.uninstall = 0.02;
  a.AddNodeRule(rule);

  FaultInjector b;
  b.set_node_seed(7);
  b.AddNodeRule(rule);

  int crashes = 0, uninstalls = 0;
  for (int t = 0; t < 2'000; ++t) {
    const SimTime now{t * 10'000};
    for (const char* name : {"phone:1", "phone:2", "server"}) {
      const NodeEvent ea = a.DecideNodeEvent(name, now);
      // Pure function: a second injector with the same seed agrees, in any
      // evaluation order, with no stream to advance.
      const NodeEvent eb = b.DecideNodeEvent(name, now);
      EXPECT_EQ(static_cast<int>(ea.kind), static_cast<int>(eb.kind));
      if (std::string(name) == "server") {
        // Rule matches phones only.
        EXPECT_EQ(ea.kind, NodeEvent::Kind::kNone);
        continue;
      }
      crashes += ea.kind == NodeEvent::Kind::kCrash;
      uninstalls += ea.kind == NodeEvent::Kind::kUninstall;
    }
  }
  // ~4000 phone-decisions at p=.05/.02: both events occur, neither always.
  EXPECT_GT(crashes, 50);
  EXPECT_LT(crashes, 1'000);
  EXPECT_GT(uninstalls, 10);
}

TEST(NodeFaults, NodeDecisionsDontShiftLinkFaultStream) {
  // Arming the node domain must not consume the link-fault stream: the
  // same link schedule replays with and without node rules.
  auto schedule = [](bool with_node_rules) {
    FaultInjector f;
    f.set_seed(21);
    FaultRule lossy;
    lossy.drop = 0.5;
    f.AddRule(lossy);
    if (with_node_rules) {
      f.set_node_seed(5);
      NodeFaultRule nr;
      nr.crash = 0.5;
      f.AddNodeRule(nr);
    }
    std::string out;
    for (int i = 0; i < 64; ++i) {
      if (with_node_rules)
        (void)f.DecideNodeEvent("phone:1", SimTime{i * 1'000});
      out += f.Decide("a", "b", Direction::kRequest, SimTime{}).drop ? 'x'
                                                                     : '.';
    }
    return out;
  };
  EXPECT_EQ(schedule(false), schedule(true));
}

}  // namespace
}  // namespace sor::net

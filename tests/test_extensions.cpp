// Tests for the extension features layered on the paper's core: the
// sensing-energy model, online-aware rescheduling, database snapshots,
// schedule timelines, hybrid objective+subjective ranking, and
// multi-category campaigns on one System.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "db/snapshot.hpp"
#include "db/storage_faults.hpp"
#include "rank/hybrid.hpp"
#include "sched/baseline.hpp"
#include "sched/brute_force.hpp"
#include "sched/greedy.hpp"
#include "sched/timeline.hpp"
#include "sensors/energy.hpp"

namespace sor {
namespace {

// --- energy model -----------------------------------------------------------

TEST(Energy, PerKindCostsAreSane) {
  // GPS and WiFi scans dominate; ambient sensors are cheap.
  EXPECT_GT(sensors::AcquisitionEnergyMj(SensorKind::kGps),
            sensors::AcquisitionEnergyMj(SensorKind::kLight));
  EXPECT_GT(sensors::AcquisitionEnergyMj(SensorKind::kWifi),
            sensors::AcquisitionEnergyMj(SensorKind::kAccelerometer));
  for (int k = 0; k < kSensorKindCount; ++k) {
    EXPECT_GT(sensors::AcquisitionEnergyMj(static_cast<SensorKind>(k)), 0.0);
  }
}

TEST(Energy, ReportAccumulatesSpentAndSaved) {
  class Env final : public sensors::SensorEnvironment {
   public:
    double Sample(SensorKind, SimTime) override { return 1.0; }
    GeoPoint Position(SimTime) override { return {}; }
  };
  Env env;
  sensors::EmbeddedProvider p(SensorKind::kWifi, env);  // 60 mJ per sample
  ASSERT_TRUE(p.Acquire({SimTime{0}, SimDuration{0}, 2}).ok());
  // Second acquisition at the same time is served from the buffer.
  ASSERT_TRUE(p.Acquire({SimTime{500}, SimDuration{0}, 2}).ok());
  const sensors::EnergyReport report = sensors::EnergyOf(p);
  EXPECT_DOUBLE_EQ(report.spent_mj, 2 * 60.0);
  EXPECT_DOUBLE_EQ(report.saved_mj, 2 * 60.0);
}

TEST(Energy, CampaignReportsEnergy) {
  core::System system;
  world::Scenario scenario = world::MakeCoffeeShopScenario();
  scenario.phones_per_place = 2;
  core::FieldTestConfig config;
  config.budget_per_user = 8;
  config.n_instants = 120;
  config.tick = SimDuration{90'000};
  Result<core::FieldTestResult> run = system.RunFieldTest(scenario, config);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run.value().energy_spent_mj, 0.0);
}

// --- online-aware scheduling -------------------------------------------------

TEST(OnlineSched, ExistingMeasurementsSteerGreedyAway) {
  // Half the period is already densely covered; a new user's budget must
  // land almost entirely in the uncovered half.
  sched::Problem p = sched::Problem::UniformGrid(600.0, 60, 10.0);
  for (int i = 0; i < 30; i += 2) p.existing_measurements.push_back(i);
  p.users.push_back(sched::UserWindow{
      SimInterval{SimTime{0}, SimTime::FromSeconds(600)}, 10});
  Result<sched::ScheduleResult> r = sched::GreedySchedule(p);
  ASSERT_TRUE(r.ok());
  int in_uncovered_half = 0;
  for (int i : r.value().schedule.per_user[0]) {
    if (i >= 30) ++in_uncovered_half;
  }
  EXPECT_GE(in_uncovered_half, 8);
}

TEST(OnlineSched, ObjectiveIsAdditionalCoverage) {
  sched::Problem blank = sched::Problem::UniformGrid(600.0, 60, 10.0);
  blank.users.push_back(sched::UserWindow{
      SimInterval{SimTime{0}, SimTime::FromSeconds(600)}, 5});
  Result<sched::ScheduleResult> fresh = sched::GreedySchedule(blank);
  ASSERT_TRUE(fresh.ok());

  // Saturate the whole period, then reschedule: additional coverage ~ 0.
  sched::Problem saturated = blank;
  for (int i = 0; i < 60; ++i) saturated.existing_measurements.push_back(i);
  Result<sched::ScheduleResult> r = sched::GreedySchedule(saturated);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value().objective, 0.05 * fresh.value().objective);
}

TEST(OnlineSched, BaselineAndBruteForceShareObjectiveSemantics) {
  sched::Problem p = sched::Problem::UniformGrid(60.0, 6, 10.0);
  p.users.push_back(sched::UserWindow{
      SimInterval{SimTime{0}, SimTime::FromSeconds(60)}, 2});
  p.existing_measurements = {0, 1, 2, 3, 4, 5};
  Result<sched::ScheduleResult> base = sched::PeriodicBaselineSchedule(p);
  Result<sched::ScheduleResult> brute = sched::BruteForceOptimalSchedule(p);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(brute.ok());
  // Everything is already covered: additional coverage is tiny for both.
  EXPECT_LT(base.value().objective, 0.6);
  EXPECT_LT(brute.value().objective, 0.6);
  EXPECT_GE(brute.value().objective, -1e-9);
}

TEST(OnlineSched, ServerReschedulePlacesOnlyFutureInstants) {
  // Join at t=0, sense a while, then a second user joins mid-period: the
  // refreshed schedules must not contain instants in the past.
  SimClock clock;
  net::LoopbackNetwork net;
  server::SensingServer server(server::ServerConfig{}, net, clock);

  server::ApplicationSpec spec;
  spec.creator = "op";
  spec.place = PlaceId{1};
  spec.place_name = "P";
  spec.location = GeoPoint{43.0, -76.0, 0};
  spec.radius_m = 100;
  spec.script = "local x = get_noise_readings(2)";
  spec.features = server::CoffeeShopFeatures();
  spec.period = SimInterval{SimTime{0}, SimTime{600'000}};
  spec.n_instants = 60;
  spec.sigma_s = 20.0;
  Result<BarcodePayload> barcode = server.DeployApplication(spec);
  ASSERT_TRUE(barcode.ok());

  struct Recorder final : net::Endpoint {
    std::vector<ScheduleDistribution> schedules;
    Bytes HandleFrame(std::span<const std::uint8_t> frame) override {
      Result<Message> decoded = DecodeFrame(frame);
      if (decoded.ok()) {
        if (const auto* s =
                std::get_if<ScheduleDistribution>(&decoded.value()))
          schedules.push_back(*s);
      }
      return EncodeFrame(Ack{});
    }
  };
  Recorder phone_a, phone_b;
  net.Register("phone:tok-a", &phone_a);
  net.Register("phone:tok-b", &phone_b);
  const UserId ua = server.users().RegisterUser("a", Token{"tok-a"}).value();
  const UserId ub = server.users().RegisterUser("b", Token{"tok-b"}).value();

  ParticipationRequest req;
  req.user = ua;
  req.token = Token{"tok-a"};
  req.app = barcode.value().app;
  req.location = spec.location;
  req.budget = 10;
  req.scan_time = clock.now();
  ASSERT_TRUE(net.Send("server", req).ok());

  // Mid-period join by user B.
  clock.advance_to(SimTime{300'000});
  req.user = ub;
  req.token = Token{"tok-b"};
  req.scan_time = clock.now();
  ASSERT_TRUE(net.Send("server", req).ok());

  // Plan-delta distribution: only the JOINING phone gets a schedule — A's
  // plan is append-only and is not re-sent. B's schedule, planned mid-
  // period, is future-only.
  ASSERT_EQ(phone_a.schedules.size(), 1u);
  ASSERT_GE(phone_b.schedules.size(), 1u);
  for (SimTime t : phone_b.schedules.back().instants)
    EXPECT_GE(t.ms, 300000);
  // The schedule for A (computed at t=0) was unconstrained.
  EXPECT_FALSE(phone_a.schedules.front().instants.empty());
  net.Unregister("phone:tok-a");
  net.Unregister("phone:tok-b");
}

// --- database snapshots ---------------------------------------------------------

TEST(Snapshot, RoundTripPreservesEverything) {
  db::Database original;
  db::MakeSorSchema(original);
  db::Table* users = original.table(db::tables::kUsers);
  ASSERT_TRUE(users->Insert({db::Value(1), db::Value("ann"),
                             db::Value("tok-1")})
                  .ok());
  db::Table* raw = original.table(db::tables::kRawData);
  ASSERT_TRUE(raw->Insert({db::Value(1), db::Value(2), db::Value(3),
                           db::Value(db::Blob{1, 2, 3}), db::Value(42),
                           db::Value(false), db::Value(7)})
                  .ok());

  const Bytes snapshot = db::SnapshotDatabase(original);
  db::Database restored;
  ASSERT_TRUE(db::RestoreDatabase(snapshot, restored).ok());

  EXPECT_EQ(restored.table_names().size(), original.table_names().size());
  const auto row = restored.table(db::tables::kUsers)->FindByKey(db::Value(1));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1].as_text(), "ann");
  const auto blob_row =
      restored.table(db::tables::kRawData)->FindByKey(db::Value(1));
  ASSERT_TRUE(blob_row.has_value());
  EXPECT_EQ((*blob_row)[3].as_blob(), (db::Blob{1, 2, 3}));
  // Secondary indexes survive (lookups by token work).
  EXPECT_EQ(restored.table(db::tables::kUsers)
                ->FindWhereEq("token", db::Value("tok-1"))
                .size(),
            1u);
}

TEST(Snapshot, Deterministic) {
  db::Database a;
  db::MakeSorSchema(a);
  db::Database b;
  db::MakeSorSchema(b);
  EXPECT_EQ(db::SnapshotDatabase(a), db::SnapshotDatabase(b));
}

TEST(Snapshot, CorruptionRejectedAtomically) {
  db::Database original;
  db::MakeSorSchema(original);
  Bytes snapshot = db::SnapshotDatabase(original);
  for (std::size_t i = 0; i < snapshot.size(); i += 7) {
    Bytes mutated = snapshot;
    mutated[i] ^= 0x20;
    db::Database out;
    EXPECT_FALSE(db::RestoreDatabase(mutated, out).ok()) << "byte " << i;
    EXPECT_TRUE(out.table_names().empty());  // nothing half-restored
  }
  Bytes truncated(snapshot.begin(), snapshot.begin() + 10);
  db::Database out;
  EXPECT_FALSE(db::RestoreDatabase(truncated, out).ok());
}

TEST(Snapshot, FuzzTornBytesRejectedAllOrNothing) {
  // Storage fault domain (docs/robustness.md): a torn snapshot write —
  // truncation at any length, or any flipped bit — must be rejected as a
  // clean error with NOTHING half-restored, at every sampled offset. The
  // CRC footer guarantees single-bit detection; this pins the all-or-nothing
  // property on a POPULATED database, blobs included.
  db::Database original;
  db::MakeSorSchema(original);
  ASSERT_TRUE(original.table(db::tables::kUsers)
                  ->Insert({db::Value(1), db::Value("ann"), db::Value("tok-1")})
                  .ok());
  ASSERT_TRUE(original.table(db::tables::kRawData)
                  ->Insert({db::Value(1), db::Value(2), db::Value(3),
                            db::Value(db::Blob{0xDE, 0xAD, 0xBE, 0xEF}),
                            db::Value(42), db::Value(false), db::Value(7)})
                  .ok());
  ASSERT_TRUE(original.table(db::tables::kParticipations)
                  ->Insert({db::Value(9), db::Value(1), db::Value(3),
                            db::Value("tok-1"), db::Value(10), db::Value(10),
                            db::Value("running"), db::Value(0),
                            db::Value(db::Null{}), db::Value(1)})
                  .ok());
  const Bytes snapshot = db::SnapshotDatabase(original);
  ASSERT_GT(snapshot.size(), 64u);

  // Truncations at ~100 sampled lengths, including the header and footer.
  const std::size_t stride = snapshot.size() / 97 + 1;
  for (std::size_t len = 0; len < snapshot.size(); len += stride) {
    Bytes torn = snapshot;
    db::TearSnapshotBytes(torn, {.truncate_to = len});
    ASSERT_EQ(torn.size(), len);
    db::Database out;
    EXPECT_FALSE(db::RestoreDatabase(torn, out).ok()) << "truncate " << len;
    EXPECT_TRUE(out.table_names().empty()) << "truncate " << len;
  }

  // Every bit position at sampled byte offsets.
  for (std::size_t at = 0; at < snapshot.size(); at += stride) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes torn = snapshot;
      db::TearSnapshotBytes(
          torn, {.flip_at = at,
                 .xor_mask = static_cast<std::uint8_t>(1u << bit)});
      db::Database out;
      EXPECT_FALSE(db::RestoreDatabase(torn, out).ok())
          << "flip byte " << at << " bit " << bit;
      EXPECT_TRUE(out.table_names().empty())
          << "flip byte " << at << " bit " << bit;
    }
  }

  // The pristine bytes still restore — the fuzz loop never mutated them.
  db::Database out;
  ASSERT_TRUE(db::RestoreDatabase(snapshot, out).ok());
  EXPECT_EQ(out.table_names().size(), original.table_names().size());
}

TEST(Snapshot, ServerDatabaseSurvivesRestart) {
  // End-to-end durability: snapshot a live server's database after a
  // campaign, restore it, and read the same feature values back.
  core::System system;
  world::Scenario scenario = world::MakeCoffeeShopScenario();
  scenario.phones_per_place = 2;
  core::FieldTestConfig config;
  config.budget_per_user = 6;
  config.n_instants = 60;
  config.tick = SimDuration{120'000};
  Result<core::FieldTestResult> run = system.RunFieldTest(scenario, config);
  ASSERT_TRUE(run.ok());

  const Bytes snapshot = db::SnapshotDatabase(system.server().database());
  db::Database restored;
  ASSERT_TRUE(db::RestoreDatabase(snapshot, restored).ok());
  EXPECT_EQ(restored.table(db::tables::kFeatureData)->size(),
            system.server().database().table(db::tables::kFeatureData)->size());
  EXPECT_EQ(restored.table(db::tables::kParticipations)->size(), 6u);
}

// --- schedule timeline ------------------------------------------------------------

TEST(Timeline, RendersUsersAndCoverage) {
  sched::Problem p = sched::Problem::UniformGrid(600.0, 60, 20.0);
  p.users.push_back(sched::UserWindow{
      SimInterval{SimTime{0}, SimTime::FromSeconds(300)}, 5});
  p.users.push_back(sched::UserWindow{
      SimInterval{SimTime::FromSeconds(200), SimTime::FromSeconds(600)}, 5});
  Result<sched::ScheduleResult> r = sched::GreedySchedule(p);
  ASSERT_TRUE(r.ok());
  const std::string timeline =
      sched::RenderScheduleTimeline(p, r.value().schedule);
  EXPECT_NE(timeline.find("user 0"), std::string::npos);
  EXPECT_NE(timeline.find("user 1"), std::string::npos);
  EXPECT_NE(timeline.find("coverage"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);  // scheduled sensing
  EXPECT_NE(timeline.find('-'), std::string::npos);  // absent periods
  // 3 rows (2 users + coverage), each ending with "|\n".
  EXPECT_EQ(std::count(timeline.begin(), timeline.end(), '\n'), 3);
}

TEST(Timeline, EmptyGridHandled) {
  sched::Problem p;
  EXPECT_EQ(sched::RenderScheduleTimeline(p, sched::Schedule::Empty(0)),
            "(empty grid)\n");
}

// --- hybrid ranking -----------------------------------------------------------

rank::FeatureMatrix TinyMatrix() {
  rank::FeatureMatrix m({"A", "B", "C"},
                        {{"noise", rank::PrefDirection::kMinimize, 0}});
  m.set(0, 0, 0.1);
  m.set(1, 0, 0.2);
  m.set(2, 0, 0.3);
  return m;
}

TEST(Hybrid, SubjectiveRatingsToRanking) {
  rank::SubjectiveRatings ratings;
  ratings.stars = {3.0, 4.5, 4.5};
  ratings.review_counts = {10, 5, 500};
  Result<rank::Ranking> r = ratings.ToRanking();
  ASSERT_TRUE(r.ok());
  // C wins the 4.5 tie on review count; A is last.
  EXPECT_EQ(r.value().order(), (std::vector<int>{2, 1, 0}));
  ratings.stars = {6.0, 1.0, 1.0};
  EXPECT_FALSE(ratings.ToRanking().ok());  // out of range
}

TEST(Hybrid, ZeroWeightEqualsObjectiveRanking) {
  const rank::PersonalizableRanker ranker(TinyMatrix());
  rank::UserProfile quiet;
  quiet.name = "q";
  quiet.prefs = {rank::FeaturePreference::PreferMin(5)};
  rank::SubjectiveRatings ratings;
  ratings.stars = {1.0, 3.0, 5.0};  // subjective says C best

  Result<rank::RankingOutcome> objective = ranker.Rank(quiet);
  Result<rank::RankingOutcome> hybrid0 =
      rank::HybridRank(ranker, quiet, ratings, 0.0);
  ASSERT_TRUE(objective.ok());
  ASSERT_TRUE(hybrid0.ok());
  EXPECT_EQ(hybrid0.value().final_ranking, objective.value().final_ranking);
}

TEST(Hybrid, HeavySubjectiveWeightFlipsRanking) {
  const rank::PersonalizableRanker ranker(TinyMatrix());
  rank::UserProfile quiet;
  quiet.name = "q";
  quiet.prefs = {rank::FeaturePreference::PreferMin(1)};
  rank::SubjectiveRatings ratings;
  ratings.stars = {1.0, 3.0, 5.0};
  Result<rank::RankingOutcome> hybrid =
      rank::HybridRank(ranker, quiet, ratings, 10.0);
  ASSERT_TRUE(hybrid.ok());
  // Subjective order C,B,A dominates the weak objective A,B,C preference.
  EXPECT_EQ(hybrid.value().final_ranking.order(),
            (std::vector<int>{2, 1, 0}));
}

TEST(Hybrid, InputValidation) {
  const rank::PersonalizableRanker ranker(TinyMatrix());
  rank::UserProfile p;
  p.name = "q";
  p.prefs = {rank::FeaturePreference::PreferMin(5)};
  rank::SubjectiveRatings wrong_size;
  wrong_size.stars = {1.0};
  EXPECT_FALSE(rank::HybridRank(ranker, p, wrong_size, 1.0).ok());
  rank::SubjectiveRatings ok;
  ok.stars = {1, 2, 3};
  EXPECT_FALSE(rank::HybridRank(ranker, p, ok, -1.0).ok());
}

// --- multi-category campaigns ---------------------------------------------------

TEST(MultiCategory, TwoScenariosOnOneSystem) {
  core::System system;
  core::FieldTestConfig config;
  config.budget_per_user = 8;
  config.n_instants = 90;
  config.tick = SimDuration{120'000};

  world::Scenario shops = world::MakeCoffeeShopScenario();
  shops.phones_per_place = 2;
  world::Scenario trails = world::MakeHikingTrailScenario();
  trails.phones_per_place = 2;

  Result<core::FieldTestResult> coffee = system.RunFieldTest(shops, config);
  ASSERT_TRUE(coffee.ok()) << coffee.error().str();
  Result<core::FieldTestResult> hiking = system.RunFieldTest(trails, config);
  ASSERT_TRUE(hiking.ok()) << hiking.error().str();

  // One server now hosts both categories — "multiple such matrices".
  EXPECT_EQ(system.server().applications().All().size(), 6u);
  EXPECT_EQ(coffee.value().matrix.num_features(), 4);
  EXPECT_EQ(hiking.value().matrix.num_features(), 5);
  EXPECT_EQ(coffee.value().rankings.size(), 2u);
  EXPECT_EQ(hiking.value().rankings.size(), 3u);
}

}  // namespace
}  // namespace sor

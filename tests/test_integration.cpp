// Integration tests: the whole system through sor::core::System — complete
// campaigns, cross-component invariants, and failure injection (dropped
// frames, denied sensors, missing Sensordrones, untruthful locations,
// mid-period leaves).
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "sched/greedy.hpp"

namespace sor::core {
namespace {

// A small, fast configuration shared by most tests.
FieldTestConfig FastConfig() {
  FieldTestConfig config;
  config.budget_per_user = 12;
  config.n_instants = 180;            // 1-minute grid over 3 h
  config.tick = SimDuration{60'000};  // 1-minute ticks
  config.sigma_s = 120.0;
  return config;
}

world::Scenario SmallCoffeeScenario() {
  world::Scenario s = world::MakeCoffeeShopScenario();
  s.phones_per_place = 3;  // keep runtime low; full size runs in the bench
  return s;
}

TEST(Integration, FullCoffeeCampaignProducesAllArtifacts) {
  System system;
  Result<FieldTestResult> run =
      system.RunFieldTest(SmallCoffeeScenario(), FastConfig());
  ASSERT_TRUE(run.ok()) << run.error().str();
  const FieldTestResult& result = run.value();

  EXPECT_EQ(result.app_ids.size(), 3u);
  EXPECT_EQ(result.matrix.num_places(), 3);
  EXPECT_EQ(result.matrix.num_features(), 4);
  EXPECT_EQ(result.rankings.size(), 2u);  // David, Emma
  for (const auto& [name, outcome] : result.rankings) {
    EXPECT_EQ(outcome.final_ranking.size(), 3);
  }
  // Data flowed: participations accepted, uploads stored and processed.
  EXPECT_EQ(result.server_stats.participations_accepted, 9u);
  EXPECT_GT(result.total_uploads, 0u);
  EXPECT_EQ(result.total_upload_failures, 0u);
  EXPECT_EQ(result.processor_stats.blobs_rejected, 0u);
  EXPECT_GT(result.processor_stats.tuples_processed, 0u);
  EXPECT_EQ(result.transport_stats.dropped, 0u);
}

TEST(Integration, FeatureValuesNearGroundTruth) {
  System system;
  const world::Scenario scenario = SmallCoffeeScenario();
  Result<FieldTestResult> run = system.RunFieldTest(scenario, FastConfig());
  ASSERT_TRUE(run.ok());
  const std::vector<double> truth = world::GroundTruthFeatures(scenario);
  const int m = run.value().matrix.num_features();
  for (int i = 0; i < run.value().matrix.num_places(); ++i) {
    for (int j = 0; j < m; ++j) {
      const double want = truth[static_cast<std::size_t>(i) * m + j];
      const double got = run.value().matrix.at(i, j);
      const double tol = std::max(1.5, std::fabs(want) * 0.06);
      EXPECT_NEAR(got, want, tol) << "place " << i << " feature " << j;
    }
  }
}

TEST(Integration, BudgetsRespectedInDatabase) {
  System system;
  FieldTestConfig config = FastConfig();
  config.budget_per_user = 5;
  Result<FieldTestResult> run =
      system.RunFieldTest(SmallCoffeeScenario(), config);
  ASSERT_TRUE(run.ok());
  // Every participation consumed at most its budget.
  for (AppId app : run.value().app_ids) {
    for (const auto& rec :
         system.server().participations().AllForApp(app)) {
      EXPECT_GE(rec.budget_left, 0);
      EXPECT_LE(rec.budget, 5);
      EXPECT_EQ(rec.status, "finished");  // everyone left at the end
    }
  }
}

TEST(Integration, SchedulerVariantsBothWorkEndToEnd) {
  for (auto algorithm : {server::SchedulerAlgorithm::kLazyGreedy,
                         server::SchedulerAlgorithm::kPeriodic}) {
    System system;
    FieldTestConfig config = FastConfig();
    config.scheduler_algorithm = algorithm;
    Result<FieldTestResult> run =
        system.RunFieldTest(SmallCoffeeScenario(), config);
    ASSERT_TRUE(run.ok()) << run.error().str();
    EXPECT_GT(run.value().total_uploads, 0u);
  }
}

TEST(Integration, AggregationMethodsAllRunEndToEnd) {
  for (auto method :
       {rank::AggregationMethod::kFootruleHungarian,
        rank::AggregationMethod::kExactKemeny,
        rank::AggregationMethod::kBorda}) {
    System system;
    FieldTestConfig config = FastConfig();
    config.aggregation = method;
    Result<FieldTestResult> run =
        system.RunFieldTest(SmallCoffeeScenario(), config);
    ASSERT_TRUE(run.ok());
  }
}

TEST(Integration, DeterministicAcrossRunsWithSameSeed) {
  auto run_once = [] {
    System system;
    return system.RunFieldTest(SmallCoffeeScenario(), FastConfig());
  };
  Result<FieldTestResult> a = run_once();
  Result<FieldTestResult> b = run_once();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < a.value().matrix.num_places(); ++i) {
    for (int j = 0; j < a.value().matrix.num_features(); ++j) {
      EXPECT_DOUBLE_EQ(a.value().matrix.at(i, j), b.value().matrix.at(i, j));
    }
  }
  for (std::size_t p = 0; p < a.value().rankings.size(); ++p) {
    EXPECT_EQ(a.value().rankings[p].second.final_ranking,
              b.value().rankings[p].second.final_ranking);
  }
}

TEST(Integration, InvalidConfigsRejected) {
  System system;
  FieldTestConfig config = FastConfig();
  config.budget_per_user = 0;
  EXPECT_FALSE(system.RunFieldTest(SmallCoffeeScenario(), config).ok());
  world::Scenario empty;
  EXPECT_FALSE(system.RunFieldTest(empty, FastConfig()).ok());
}

// --- failure injection -------------------------------------------------------

TEST(FailureInjection, DroppedUploadsAreRetriedLosslessly) {
  // Drive a campaign manually so faults can be armed mid-flight: one shop,
  // one phone; every first upload attempt is dropped and must be recovered
  // by the phone's store-and-forward queue.
  System system;
  world::Scenario scenario = SmallCoffeeScenario();
  scenario.places.resize(1);
  scenario.phones_per_place = 1;
  FieldTestConfig config = FastConfig();

  // Manual assembly (mirrors what RunFieldTest does internally).
  server::ApplicationSpec spec;
  spec.creator = "op";
  spec.place = scenario.places[0].id;
  spec.place_name = scenario.places[0].name;
  spec.location = scenario.places[0].center;
  spec.radius_m = scenario.places[0].radius_m;
  spec.script = DefaultScript(scenario.category);
  spec.features = server::CoffeeShopFeatures();
  spec.period = SimInterval{SimTime{0},
                            SimTime::FromSeconds(scenario.period_s)};
  spec.n_instants = config.n_instants;
  spec.sigma_s = config.sigma_s;
  Result<BarcodePayload> barcode = system.server().DeployApplication(spec);
  ASSERT_TRUE(barcode.ok());
  const UserId user =
      system.server().users().RegisterUser("u", Token{"tok-1"}).value();
  world::PhoneAgentConfig agent_cfg;
  agent_cfg.id = PhoneId{1};
  world::PhoneAgent agent(scenario.places[0], agent_cfg);
  phone::FrontendConfig phone_cfg;
  phone_cfg.phone_id = agent_cfg.id;
  phone_cfg.user_id = user;
  phone_cfg.user_name = "u";
  phone_cfg.token = Token{"tok-1"};
  phone::MobileFrontend frontend(phone_cfg, system.network(), agent,
                                 system.clock());
  ASSERT_TRUE(frontend.ScanBarcode(barcode.value(), 8).ok());

  // Tick through the period; drop one frame every few ticks.
  int armed = 0;
  while (system.clock().now().seconds() < scenario.period_s) {
    system.clock().advance(config.tick);
    if (armed < 5 && system.clock().now().seconds() > 600) {
      system.network().faults().drop_next = 1;
      ++armed;
    }
    frontend.Tick();
  }
  // A final fault-free tick flushes any pending retry.
  system.network().faults().drop_next = 0;
  system.clock().advance(config.tick);
  frontend.Tick();

  EXPECT_GT(frontend.stats().upload_failures, 0u);  // faults really hit
  // Every scheduled execution's data eventually reached the server.
  ASSERT_TRUE(system.server().ProcessAllData().ok());
  EXPECT_EQ(system.server()
                .data_processor()
                .stats()
                .blobs_rejected,
            0u);
  const phone::TaskInstance* task = frontend.task(TaskId{1});
  ASSERT_NE(task, nullptr);
  EXPECT_GT(task->stats().executions, 0u);
  EXPECT_GT(system.server().stats().uploads_stored, 0u);
}

TEST(FailureInjection, PhoneWithoutSensordroneStillParticipates) {
  // Build a campaign manually: one shop, two phones, one without the
  // external sensor. The drone-less phone contributes only embedded
  // channels (noise, wifi); features still compute from the other phone.
  System system;
  world::Scenario scenario = SmallCoffeeScenario();
  scenario.places.resize(1);
  scenario.phones_per_place = 2;

  FieldTestConfig config = FastConfig();
  Result<FieldTestResult> ok_run = system.RunFieldTest(scenario, config);
  ASSERT_TRUE(ok_run.ok());

  // Now rerun with one phone's Bluetooth unpaired mid-way: unpair after
  // setup (frontends exist after RunFieldTest, so instead drive the
  // lower-level API: unpair one frontend's drone and tick again — the
  // provider fails, the task records failures, the system keeps going).
  auto& frontends = system.frontends();
  ASSERT_GE(frontends.size(), 2u);
  frontends[0]->bluetooth().Unpair();
  system.clock().advance(SimDuration{60'000});
  for (auto& f : frontends) f->Tick();
  // No crash, and the unpaired phone accumulated either failures or
  // nothing new — the other phone is unaffected.
  SUCCEED();
}

TEST(FailureInjection, UntruthfulLocationRejected) {
  // A phone physically at place B scanning the barcode of place A (too far
  // away) must be rejected by the Participation Manager.
  System system;
  const world::Scenario scenario = world::MakeCoffeeShopScenario();

  // Deploy apps via a real (small) campaign first to set up the server.
  world::Scenario tiny = scenario;
  tiny.phones_per_place = 1;
  FieldTestConfig config = FastConfig();
  Result<FieldTestResult> run = system.RunFieldTest(tiny, config);
  ASSERT_TRUE(run.ok());

  // New phone at place B (Starbucks) scans the barcode of place A
  // (Tim Hortons), which is kilometers away.
  Result<UserId> liar =
      system.server().users().RegisterUser("liar", Token{"tok-liar"});
  ASSERT_TRUE(liar.ok());
  world::PhoneAgentConfig agent_cfg;
  agent_cfg.id = PhoneId{999};
  agent_cfg.seed = 1;
  world::PhoneAgent agent(scenario.places[2], agent_cfg);  // at Starbucks
  phone::FrontendConfig phone_cfg;
  phone_cfg.phone_id = agent_cfg.id;
  phone_cfg.user_id = liar.value();
  phone_cfg.user_name = "liar";
  phone_cfg.token = Token{"tok-liar"};
  phone::MobileFrontend frontend(phone_cfg, system.network(), agent,
                                 system.clock());
  Result<BarcodePayload> tim_hortons_barcode =
      system.server().applications().BarcodeFor(run.value().app_ids[0],
                                                "server");
  ASSERT_TRUE(tim_hortons_barcode.ok());
  Result<TaskId> task =
      frontend.ScanBarcode(tim_hortons_barcode.value(), 5);
  EXPECT_EQ(task.code(), Errc::kNotInPlace);
  EXPECT_GT(system.server().stats().participations_rejected, 0u);
}

TEST(FailureInjection, UnregisteredUserRejected) {
  System system;
  world::Scenario tiny = SmallCoffeeScenario();
  tiny.phones_per_place = 1;
  Result<FieldTestResult> run = system.RunFieldTest(tiny, FastConfig());
  ASSERT_TRUE(run.ok());

  world::PhoneAgentConfig agent_cfg;
  agent_cfg.id = PhoneId{777};
  world::PhoneAgent agent(tiny.places[0], agent_cfg);
  phone::FrontendConfig phone_cfg;
  phone_cfg.phone_id = agent_cfg.id;
  phone_cfg.user_id = UserId{424242};  // never registered
  phone_cfg.user_name = "ghost";
  phone_cfg.token = Token{"tok-ghost"};
  phone::MobileFrontend frontend(phone_cfg, system.network(), agent,
                                 system.clock());
  Result<BarcodePayload> barcode =
      system.server().applications().BarcodeFor(run.value().app_ids[0],
                                                "server");
  ASSERT_TRUE(barcode.ok());
  EXPECT_FALSE(frontend.ScanBarcode(barcode.value(), 5).ok());
}

TEST(FailureInjection, DeniedMicrophoneRemovesNoiseDataOnly) {
  // All phones deny the microphone: the noise feature has no samples (0),
  // every other feature still computes.
  System system;
  world::Scenario scenario = SmallCoffeeScenario();
  scenario.places.resize(1);

  FieldTestConfig config = FastConfig();
  // Run the campaign but deny microphones right after the frontends are
  // created — impossible through the plain facade, so reproduce the
  // campaign with the lower-level path: run once to set up, then verify
  // the per-task denial counters behave (phone-level denial is covered in
  // test_phone); here assert the server-side zero-sample outcome using a
  // second campaign whose scenario simply lacks the microphone signal.
  world::Scenario muted = scenario;
  muted.places[0].signals.erase(SensorKind::kMicrophone);
  Result<FieldTestResult> run = system.RunFieldTest(muted, config);
  ASSERT_TRUE(run.ok());
  // Noise column exists but is ~0 (no signal in the world).
  const int noise_col = run.value().matrix.feature_index("noise");
  ASSERT_GE(noise_col, 0);
  EXPECT_NEAR(run.value().matrix.at(0, noise_col), 0.0, 1e-6);
}

TEST(Integration, OnePhoneRunsTwoConcurrentTasks) {
  // §II-A: "At one time, there could be multiple task instances running in
  // SOR, which can acquire data from one or multiple sensors
  // simultaneously." Two applications at the same cafe, one phone joins
  // both; both tasks execute, and the shared provider buffers serve part
  // of the overlapping temperature demand.
  SimClock clock;
  net::LoopbackNetwork network;
  server::SensingServer server(server::ServerConfig{}, network, clock);

  const world::Scenario scenario = world::MakeCoffeeShopScenario();
  const world::PlaceModel& place = scenario.places[0];
  auto deploy = [&](const char* creator) {
    server::ApplicationSpec spec;
    spec.creator = creator;
    spec.place = place.id;
    spec.place_name = place.name;
    spec.location = place.center;
    spec.radius_m = place.radius_m;
    spec.script = "local t = get_temperature_readings(3)";
    spec.features = server::CoffeeShopFeatures();
    spec.period = SimInterval{SimTime{0}, SimTime{1'800'000}};  // 30 min
    spec.n_instants = 180;
    spec.sigma_s = 30.0;
    return server.DeployApplication(spec).value();
  };
  const BarcodePayload app_a = deploy("owner");
  const BarcodePayload app_b = deploy("franchise-auditor");

  world::PhoneAgentConfig agent_cfg;
  agent_cfg.id = PhoneId{1};
  agent_cfg.seed = 3;
  world::PhoneAgent agent(place, agent_cfg);
  phone::FrontendConfig cfg;
  cfg.phone_id = agent_cfg.id;
  cfg.user_name = "multi";
  cfg.token = Token{"tok-m"};
  cfg.user_id = server.users().RegisterUser(cfg.user_name, cfg.token).value();
  phone::MobileFrontend frontend(cfg, network, agent, clock);

  Result<TaskId> task_a = frontend.ScanBarcode(app_a, 20);
  Result<TaskId> task_b = frontend.ScanBarcode(app_b, 20);
  ASSERT_TRUE(task_a.ok());
  ASSERT_TRUE(task_b.ok());
  EXPECT_NE(task_a.value(), task_b.value());
  EXPECT_EQ(frontend.num_tasks(), 2u);

  while (clock.now().ms < 1'800'000) {
    clock.advance(SimDuration{10'000});
    frontend.Tick();
  }
  const phone::TaskInstance* a = frontend.task(task_a.value());
  const phone::TaskInstance* b = frontend.task(task_b.value());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GT(a->stats().executions, 0u);
  EXPECT_GT(b->stats().executions, 0u);

  // Both apps schedule over the same grid with the same spreading
  // objective, so their instants largely coincide — the second task's
  // acquisitions hit the shared temperature buffer (freshness 15 s).
  const sensors::Provider* temp =
      frontend.sensor_manager().provider(SensorKind::kDroneTemperature);
  ASSERT_NE(temp, nullptr);
  EXPECT_GT(temp->stats().buffered_hits, 0u);
  // Both uploads landed server-side.
  EXPECT_GE(server.stats().uploads_stored,
            a->stats().executions + b->stats().executions - 2);
}

TEST(Integration, SchedulingIsDeterministic) {
  Rng rng(12);
  sched::Problem p = sched::Problem::UniformGrid(3'600.0, 360, 10.0);
  for (int k = 0; k < 10; ++k) {
    const double a = rng.uniform(0, 3'000);
    p.users.push_back(sched::UserWindow{
        SimInterval{SimTime::FromSeconds(a),
                    SimTime::FromSeconds(rng.uniform(a, 3'600))},
        9});
  }
  const auto first = sched::GreedySchedule(p);
  const auto second = sched::GreedySchedule(p);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().schedule.per_user, second.value().schedule.per_user);
  EXPECT_EQ(first.value().insertion_order, second.value().insertion_order);
}

TEST(Integration, TrailCampaignMatchesGroundTruthOrdering) {
  System system;
  world::Scenario scenario = world::MakeHikingTrailScenario();
  scenario.phones_per_place = 3;
  FieldTestConfig config = FastConfig();
  config.sigma_s = 60.0;
  Result<FieldTestResult> run = system.RunFieldTest(scenario, config);
  ASSERT_TRUE(run.ok()) << run.error().str();
  const rank::FeatureMatrix& m = run.value().matrix;
  const int rough = m.feature_index("roughness");
  const int curv = m.feature_index("curvature");
  const int alt = m.feature_index("altitude_change");
  // Cliff (2) > Long (1) > Green Lake (0) on all difficulty features.
  EXPECT_GT(m.at(2, rough), m.at(1, rough));
  EXPECT_GT(m.at(1, rough), m.at(0, rough));
  EXPECT_GT(m.at(2, curv), m.at(1, curv));
  EXPECT_GT(m.at(1, curv), m.at(0, curv));
  EXPECT_GT(m.at(2, alt), m.at(1, alt));
  EXPECT_GT(m.at(1, alt), m.at(0, alt));
}

}  // namespace
}  // namespace sor::core

// Unit tests for the embedded relational store: schema enforcement, primary
// keys, secondary indexes, scans, updates, and the concrete SOR schema.
#include <gtest/gtest.h>

#include "db/database.hpp"
#include "obs/metrics.hpp"

namespace sor::db {
namespace {

Schema PeopleSchema() {
  Schema s;
  s.table_name = "people";
  s.columns = {{"id", ColumnType::kInt64},
               {"name", ColumnType::kText},
               {"score", ColumnType::kDouble},
               {"active", ColumnType::kBool},
               {"note", ColumnType::kText, /*nullable=*/true}};
  return s;
}

TEST(Value, TypePredicatesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(5).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("hi").is_text());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(Blob{1, 2}).is_blob());
  EXPECT_EQ(Value(5).as_int(), 5);
  EXPECT_DOUBLE_EQ(Value(5).numeric(), 5.0);
  EXPECT_DOUBLE_EQ(Value(true).numeric(), 1.0);
}

TEST(Value, IntMatchesDoubleColumn) {
  EXPECT_TRUE(Value(5).matches(ColumnType::kDouble));
  EXPECT_FALSE(Value(5.0).matches(ColumnType::kInt64));
}

TEST(Value, CompareTotalOrder) {
  EXPECT_LT(Value::Compare(Value(1), Value(2)), 0);
  EXPECT_EQ(Value::Compare(Value("a"), Value("a")), 0);
  EXPECT_GT(Value::Compare(Value("b"), Value("a")), 0);
  // Null sorts before everything.
  EXPECT_LT(Value::Compare(Value(), Value(false)), 0);
  // Numeric comparison crosses int/double.
  EXPECT_LT(Value::Compare(Value(1), Value(1.5)), 0);
}

TEST(Schema, ValidateChecksArityTypesAndNulls) {
  const Schema s = PeopleSchema();
  EXPECT_TRUE(s.Validate({Value(1), Value("a"), Value(1.0), Value(true),
                          Value()})
                  .ok());
  // wrong arity
  EXPECT_FALSE(s.Validate({Value(1)}).ok());
  // wrong type
  EXPECT_FALSE(s.Validate({Value(1), Value(2), Value(1.0), Value(true),
                           Value()})
                   .ok());
  // null in non-nullable column
  EXPECT_FALSE(s.Validate({Value(1), Value(), Value(1.0), Value(true),
                           Value()})
                   .ok());
}

TEST(Table, InsertAndFindByKey) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("ann"), Value(3.5), Value(true),
                        Value()})
                  .ok());
  ASSERT_TRUE(t.Insert({Value(2), Value("bob"), Value(1.5), Value(false),
                        Value("x")})
                  .ok());
  EXPECT_EQ(t.size(), 2u);
  const auto row = t.FindByKey(Value(2));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1].as_text(), "bob");
  EXPECT_FALSE(t.FindByKey(Value(99)).has_value());
}

TEST(Table, DuplicateKeyRejected) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("ann"), Value(0.0), Value(true),
                        Value()})
                  .ok());
  Result<RowId> dup =
      t.Insert({Value(1), Value("eve"), Value(0.0), Value(true), Value()});
  EXPECT_EQ(dup.code(), Errc::kAlreadyExists);
  EXPECT_EQ(t.size(), 1u);
}

Row Person(int id, const char* name) {
  return {Value(id), Value(name), Value(0.5 * id), Value(true), Value()};
}

TEST(Table, InsertBatchAppendsAndIndexes) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("name").ok());
  ASSERT_TRUE(t.Insert(Person(1, "ann")).ok());
  std::vector<Row> batch = {Person(2, "ann"), Person(3, "bob"),
                            Person(4, "ann"), Person(5, "bob")};
  Result<std::vector<RowId>> ids = t.InsertBatch(std::move(batch));
  ASSERT_TRUE(ids.ok()) << ids.error().str();
  // RowIds continue the single-insert sequence, in batch order.
  EXPECT_EQ(ids.value(), (std::vector<RowId>{2, 3, 4, 5}));
  EXPECT_EQ(t.size(), 5u);
  // Both the pk index and the secondary index see every batch row.
  ASSERT_TRUE(t.FindByKey(Value(4)).has_value());
  EXPECT_EQ((*t.FindByKey(Value(4)))[1].as_text(), "ann");
  EXPECT_EQ(t.FindWhereEq("name", Value("ann")).size(), 3u);
  EXPECT_EQ(t.FindWhereEq("name", Value("bob")).size(), 2u);
  // And the postings stayed sorted: the cursored path still works.
  std::vector<int> seen;
  t.ForEachWhereEqFromPk("name", Value("ann"), Value(1), [&](const Row& r) {
    seen.push_back(static_cast<int>(r[0].as_int()));
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{2, 4}));
}

TEST(Table, InsertBatchIsAllOrNothing) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("name").ok());
  ASSERT_TRUE(t.Insert(Person(1, "ann")).ok());

  // Duplicate against an existing row: nothing from the batch lands.
  Result<std::vector<RowId>> dup_table =
      t.InsertBatch({Person(2, "bob"), Person(1, "eve")});
  EXPECT_EQ(dup_table.code(), Errc::kAlreadyExists);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.FindByKey(Value(2)).has_value());
  EXPECT_TRUE(t.FindWhereEq("name", Value("bob")).empty());

  // Duplicate within the batch itself.
  Result<std::vector<RowId>> dup_batch =
      t.InsertBatch({Person(2, "bob"), Person(3, "cat"), Person(2, "eve")});
  EXPECT_EQ(dup_batch.code(), Errc::kAlreadyExists);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.FindByKey(Value(3)).has_value());

  // Schema violation anywhere in the batch.
  Result<std::vector<RowId>> bad_row =
      t.InsertBatch({Person(2, "bob"), {Value(3)}});
  EXPECT_EQ(bad_row.code(), Errc::kInvalidArgument);
  EXPECT_EQ(t.size(), 1u);

  // The failed batches left no trace: the keys are still insertable.
  EXPECT_TRUE(t.Insert(Person(2, "bob")).ok());
  EXPECT_TRUE(t.InsertBatch({Person(3, "cat")}).ok());
  EXPECT_EQ(t.size(), 3u);
}

TEST(Table, InsertBatchEmptyIsNoop) {
  Table t(PeopleSchema());
  Result<std::vector<RowId>> r = t.InsertBatch({});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Table, UpsertInsertsThenReplaces) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.Upsert({Value(1), Value("ann"), Value(1.0), Value(true),
                        Value()})
                  .ok());
  ASSERT_TRUE(t.Upsert({Value(1), Value("ann2"), Value(2.0), Value(true),
                        Value()})
                  .ok());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ((*t.FindByKey(Value(1)))[1].as_text(), "ann2");
}

TEST(Table, SecondaryIndexFindWhereEq) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("name").ok());
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value(i % 2 ? "odd" : "even"),
                          Value(double(i)), Value(true), Value()})
                    .ok());
  }
  EXPECT_EQ(t.FindWhereEq("name", Value("odd")).size(), 5u);
  EXPECT_EQ(t.FindWhereEq("name", Value("even")).size(), 5u);
  EXPECT_TRUE(t.FindWhereEq("name", Value("none")).empty());
  EXPECT_FALSE(t.CreateIndex("no_such_column").ok());
}

TEST(Table, IndexBackfillOnLateCreation) {
  Table t(PeopleSchema());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value("x"), Value(0.0), Value(true),
                          Value()})
                    .ok());
  }
  ASSERT_TRUE(t.CreateIndex("name").ok());
  EXPECT_EQ(t.FindWhereEq("name", Value("x")).size(), 4u);
}

TEST(Table, UnindexedEqScanStillWorks) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a"), Value(1.0), Value(true),
                        Value()})
                  .ok());
  EXPECT_EQ(t.FindWhereEq("score", Value(1.0)).size(), 1u);
}

TEST(Table, ScanWithPredicateAndOrdering) {
  Table t(PeopleSchema());
  const double scores[] = {3.0, 1.0, 2.0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.Insert({Value(i + 1), Value("p"), Value(scores[i]),
                          Value(true), Value()})
                    .ok());
  }
  const auto all = t.ScanOrderedBy("score");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0][2].as_double(), 1.0);
  EXPECT_DOUBLE_EQ(all[2][2].as_double(), 3.0);
  const auto some =
      t.Scan([](const Row& r) { return r[2].as_double() >= 2.0; });
  EXPECT_EQ(some.size(), 2u);
}

TEST(Table, UpdateMutatesAndReindexes) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("name").ok());
  ASSERT_TRUE(t.Insert({Value(1), Value("a"), Value(1.0), Value(true),
                        Value()})
                  .ok());
  Result<std::size_t> n = t.Update(
      [](const Row& r) { return r[0].as_int() == 1; },
      [](Row& r) { r[1] = Value("renamed"); });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1u);
  EXPECT_EQ(t.FindWhereEq("name", Value("a")).size(), 0u);
  EXPECT_EQ(t.FindWhereEq("name", Value("renamed")).size(), 1u);
}

TEST(Table, UpdateByKeyNotFound) {
  Table t(PeopleSchema());
  EXPECT_EQ(t.UpdateByKey(Value(9), [](Row&) {}).code(), Errc::kNotFound);
}

TEST(Table, UpdateRejectsInvalidRows) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a"), Value(1.0), Value(true),
                        Value()})
                  .ok());
  Result<std::size_t> bad = t.Update(
      {}, [](Row& r) { r[1] = Value(); });  // NULL into non-nullable
  EXPECT_FALSE(bad.ok());
  // Original row unchanged (two-phase commit).
  EXPECT_EQ((*t.FindByKey(Value(1)))[1].as_text(), "a");
}

TEST(Table, UpdateRejectsDuplicatePrimaryKey) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a"), Value(1.0), Value(true),
                        Value()})
                  .ok());
  ASSERT_TRUE(t.Insert({Value(2), Value("b"), Value(1.0), Value(true),
                        Value()})
                  .ok());
  Result<std::size_t> bad = t.Update(
      [](const Row& r) { return r[0].as_int() == 2; },
      [](Row& r) { r[0] = Value(1); });
  EXPECT_EQ(bad.code(), Errc::kAlreadyExists);
}

TEST(Table, PrimaryKeySwapWithinUpdateSetAllowed) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a"), Value(1.0), Value(true),
                        Value()})
                  .ok());
  ASSERT_TRUE(t.Insert({Value(2), Value("b"), Value(1.0), Value(true),
                        Value()})
                  .ok());
  // Shift both keys up by 10: transiently overlapping, finally disjoint.
  Result<std::size_t> n = t.Update(
      {}, [](Row& r) { r[0] = Value(r[0].as_int() + 10); });
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE(t.FindByKey(Value(11)).has_value());
  EXPECT_TRUE(t.FindByKey(Value(12)).has_value());
}

TEST(Table, EraseRemovesAndUnindexes) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("name").ok());
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value(i <= 3 ? "del" : "keep"),
                          Value(0.0), Value(true), Value()})
                    .ok());
  }
  EXPECT_EQ(t.Erase([](const Row& r) { return r[1].as_text() == "del"; }),
            3u);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.FindWhereEq("name", Value("del")).empty());
  // Re-inserting an erased key works (index fully cleaned).
  EXPECT_TRUE(t.Insert({Value(1), Value("back"), Value(0.0), Value(true),
                        Value()})
                  .ok());
}

TEST(Table, DoubleKeysDoNotAlias) {
  Schema s;
  s.table_name = "d";
  s.columns = {{"k", ColumnType::kDouble}};
  Table t(std::move(s));
  ASSERT_TRUE(t.Insert({Value(1.0000000000000002)}).ok());
  EXPECT_TRUE(t.Insert({Value(1.0)}).ok());  // distinct doubles, both fit
  EXPECT_EQ(t.size(), 2u);
}

TEST(Table, ReadCellAndMaxPrimaryKey) {
  Table t(PeopleSchema());
  EXPECT_FALSE(t.MaxPrimaryKey().has_value());
  ASSERT_TRUE(t.Insert({Value(3), Value("c"), Value(0.5), Value(true),
                        Value()})
                  .ok());
  ASSERT_TRUE(t.Insert({Value(7), Value("g"), Value(1.5), Value(false),
                        Value()})
                  .ok());
  ASSERT_EQ(t.MaxPrimaryKey()->as_int(), 7);
  Result<Value> cell = t.ReadCell(Value(3), 2);
  ASSERT_TRUE(cell.ok());
  EXPECT_DOUBLE_EQ(cell.value().as_double(), 0.5);
  EXPECT_EQ(t.ReadCell(Value(99), 2).code(), Errc::kNotFound);
  EXPECT_EQ(t.ReadCell(Value(3), 99).code(), Errc::kInvalidArgument);
  // Erasing the max re-exposes the previous one.
  ASSERT_TRUE(t.EraseByKey(Value(7)).ok());
  ASSERT_EQ(t.MaxPrimaryKey()->as_int(), 3);
}

TEST(Table, UpdateInPlaceEnforcesContract) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("name").ok());
  ASSERT_TRUE(t.Insert({Value(1), Value("ann"), Value(1.0), Value(true),
                        Value()})
                  .ok());
  // Happy path: "score" is non-key and unindexed.
  ASSERT_TRUE(t.UpdateInPlace(Value(1), 2, Value(9.5)).ok());
  EXPECT_DOUBLE_EQ((*t.FindByKey(Value(1)))[2].as_double(), 9.5);
  // Primary-key column refused (would desync the pk index).
  EXPECT_EQ(t.UpdateInPlace(Value(1), 0, Value(5)).code(),
            Errc::kInvalidArgument);
  // Indexed column refused (would desync the secondary index).
  EXPECT_EQ(t.UpdateInPlace(Value(1), 1, Value("eve")).code(),
            Errc::kInvalidArgument);
  // Schema still enforced: wrong type, bad column, null into non-nullable.
  EXPECT_EQ(t.UpdateInPlace(Value(1), 2, Value("nan")).code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(t.UpdateInPlace(Value(1), 42, Value(0.0)).code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(t.UpdateInPlace(Value(1), 3, Value()).code(),
            Errc::kInvalidArgument);
  // Nullable column may go to null in place; missing key is kNotFound.
  EXPECT_TRUE(t.UpdateInPlace(Value(1), 4, Value()).ok());
  EXPECT_EQ(t.UpdateInPlace(Value(99), 2, Value(0.0)).code(),
            Errc::kNotFound);
  // The in-place write left the index intact.
  EXPECT_EQ(t.FindWhereEq("name", Value("ann")).size(), 1u);
}

TEST(Table, ForEachWhereEqFromPkResumesAfterCursor) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("name").ok());
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value(i % 2 ? "odd" : "even"),
                          Value(double(i)), Value(true), Value()})
                    .ok());
  }
  auto Collect = [&](const Value& after) {
    std::vector<std::int64_t> ids;
    t.ForEachWhereEqFromPk("name", Value("odd"), after, [&](const Row& r) {
      ids.push_back(r[0].as_int());
      return true;
    });
    return ids;
  };
  EXPECT_EQ(Collect(Value(0)), (std::vector<std::int64_t>{1, 3, 5, 7}));
  EXPECT_EQ(Collect(Value(3)), (std::vector<std::int64_t>{5, 7}));
  // Cursor between matches and past the end both behave.
  EXPECT_EQ(Collect(Value(4)), (std::vector<std::int64_t>{5, 7}));
  EXPECT_TRUE(Collect(Value(7)).empty());
  // Early-exit visitor stops the walk.
  int seen = 0;
  t.ForEachWhereEqFromPk("name", Value("odd"), Value(0), [&](const Row&) {
    ++seen;
    return false;
  });
  EXPECT_EQ(seen, 1);
}

TEST(Table, EraseByKeyRemovesAndUnindexes) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("name").ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value("dup"), Value(0.0), Value(true),
                          Value()})
                    .ok());
  }
  ASSERT_TRUE(t.EraseByKey(Value(2)).ok());
  EXPECT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.FindByKey(Value(2)).has_value());
  EXPECT_EQ(t.FindWhereEq("name", Value("dup")).size(), 2u);
  EXPECT_EQ(t.EraseByKey(Value(2)).code(), Errc::kNotFound);
  // A re-insert of the erased key works and re-indexes.
  ASSERT_TRUE(t.Insert({Value(2), Value("dup"), Value(0.0), Value(true),
                        Value()})
                  .ok());
  EXPECT_EQ(t.FindWhereEq("name", Value("dup")).size(), 3u);
}

TEST(Table, FullScanCounterTracksOnlyFullWalks) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("name").ok());
  ASSERT_TRUE(t.Insert({Value(1), Value("ann"), Value(1.0), Value(true),
                        Value()})
                  .ok());
  obs::Counter counter(obs::Sharding::kSingle);
  t.set_full_scan_counter(&counter);
  // Point and indexed access paths are free.
  (void)t.FindByKey(Value(1));
  (void)t.ReadCell(Value(1), 2);
  (void)t.FindWhereEq("name", Value("ann"));
  (void)t.FindWhereEq("id", Value(1));  // pk path, no walk
  (void)t.UpdateInPlace(Value(1), 2, Value(2.0));
  EXPECT_EQ(counter.value(), 0u);
  // Full walks count: Scan, unindexed equality, predicate update/erase.
  (void)t.Scan();
  (void)t.FindWhereEq("score", Value(2.0));
  (void)t.Update([](const Row&) { return false; }, [](Row&) {});
  (void)t.Erase([](const Row&) { return false; });
  EXPECT_EQ(counter.value(), 4u);
  t.set_full_scan_counter(nullptr);
  (void)t.Scan();
  EXPECT_EQ(counter.value(), 4u);
}

TEST(Database, CreateLookupDrop) {
  Database db;
  ASSERT_TRUE(db.CreateTable(PeopleSchema()).ok());
  EXPECT_NE(db.table("people"), nullptr);
  EXPECT_EQ(db.table("ghosts"), nullptr);
  EXPECT_EQ(db.CreateTable(PeopleSchema()).code(), Errc::kAlreadyExists);
  EXPECT_TRUE(db.DropTable("people").ok());
  EXPECT_EQ(db.DropTable("people").code(), Errc::kNotFound);
}

TEST(Database, SorSchemaComplete) {
  Database db;
  MakeSorSchema(db);
  for (const char* name :
       {tables::kUsers, tables::kApplications, tables::kParticipations,
        tables::kRawData, tables::kFeatureData, tables::kSchedules}) {
    EXPECT_NE(db.table(name), nullptr) << name;
  }
  // Spot-check a couple of schema facts the server relies on.
  EXPECT_EQ(db.table(tables::kParticipations)->col("status"), 6);
  EXPECT_EQ(db.table(tables::kRawData)->col("processed"), 5);
  EXPECT_EQ(db.table(tables::kApplications)->col("features"), 9);
  EXPECT_EQ(db.table(tables::kParticipations)->col("incarnation"), 9);
}

// --- storage fault injection -------------------------------------------------

TEST(StorageFaults, MatcherGrammar) {
  EXPECT_TRUE(StorageFaultInjector::Matches("*", "raw_data"));
  EXPECT_TRUE(StorageFaultInjector::Matches("raw_data", "raw_data"));
  EXPECT_TRUE(StorageFaultInjector::Matches("raw*", "raw_data"));
  EXPECT_FALSE(StorageFaultInjector::Matches("raw_data", "feature_data"));
  EXPECT_FALSE(StorageFaultInjector::Matches("feature*", "raw_data"));
}

TEST(StorageFaults, ScriptedFailuresLeaveTableUntouched) {
  Database db;
  MakeSorSchema(db);
  StorageFaultInjector faults;
  db.AttachStorageFaults(&faults);
  StorageFaultRule rule;
  rule.table = tables::kUsers;
  rule.fail_next = 2;
  faults.AddRule(rule);

  Table* users = db.table(tables::kUsers);
  const Row row{Value(1), Value("ann"), Value("tok-1")};
  for (int i = 0; i < 2; ++i) {
    Result<RowId> r = users->Insert(row);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, Errc::kUnavailable);
    EXPECT_EQ(users->size(), 0u);  // the failed write changed nothing
  }
  // Third attempt succeeds: at-least-once retry absorbs the fault.
  EXPECT_TRUE(users->Insert(row).ok());
  EXPECT_EQ(users->size(), 1u);
  EXPECT_EQ(faults.writes_failed(), 2u);
}

TEST(StorageFaults, SeededScheduleIsDeterministicAndScoped) {
  // Same seed -> same failure schedule; a rule consumes the stream only
  // for matching tables, so unmatched writes never shift it.
  auto run = [](bool interleave_unmatched) {
    Database db;
    MakeSorSchema(db);
    StorageFaultInjector faults;
    faults.set_seed(99);
    StorageFaultRule rule;
    rule.table = tables::kRawData;
    rule.write_fail = 0.4;
    faults.AddRule(rule);
    db.AttachStorageFaults(&faults);
    Table* raw = db.table(tables::kRawData);
    Table* users = db.table(tables::kUsers);
    std::string pattern;
    for (int i = 0; i < 40; ++i) {
      if (interleave_unmatched)
        (void)users->Insert({Value(1000 + i), Value("u"), Value("t" + std::to_string(i))});
      Result<RowId> r = raw->Insert({Value(i), Value(1), Value(1),
                                     Value(Blob{1}), Value(0), Value(false),
                                     Value(i)});
      pattern += r.ok() ? '.' : 'x';
    }
    return pattern;
  };
  const std::string base = run(false);
  EXPECT_NE(base.find('x'), std::string::npos);
  EXPECT_NE(base.find('.'), std::string::npos);
  EXPECT_EQ(run(true), base);
}

}  // namespace
}  // namespace sor::db

// Unit + property tests for min-cost flow and the assignment solvers.
// The flow solver is the engine behind the paper's rank-aggregation
// reduction (§IV-B), so both solvers are cross-checked against each other
// and against exhaustive search on random instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "flow/assignment.hpp"
#include "flow/min_cost_flow.hpp"

namespace sor::flow {
namespace {

TEST(MinCostFlow, SimplePath) {
  // s=0 -> 1 -> t=2, capacities 5, costs 1 and 2.
  MinCostFlow g(3);
  g.AddEdge(0, 1, 5, 1);
  g.AddEdge(1, 2, 5, 2);
  Result<FlowResult> r = g.Solve(0, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().flow, 5);
  EXPECT_EQ(r.value().cost, 15);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  // Two parallel paths: cost 1 (cap 1) and cost 10 (cap 1). Push 1 unit.
  MinCostFlow g(4);
  const int cheap = g.AddEdge(0, 1, 1, 1);
  g.AddEdge(1, 3, 1, 0);
  const int dear = g.AddEdge(0, 2, 1, 10);
  g.AddEdge(2, 3, 1, 0);
  Result<FlowResult> r = g.Solve(0, 3, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().flow, 1);
  EXPECT_EQ(r.value().cost, 1);
  EXPECT_EQ(g.flow_on(cheap), 1);
  EXPECT_EQ(g.flow_on(dear), 0);
}

TEST(MinCostFlow, RespectsMaxFlowLimit) {
  MinCostFlow g(2);
  g.AddEdge(0, 1, 100, 3);
  Result<FlowResult> r = g.Solve(0, 1, 7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().flow, 7);
  EXPECT_EQ(r.value().cost, 21);
}

TEST(MinCostFlow, DisconnectedGraphPushesZero) {
  MinCostFlow g(4);
  g.AddEdge(0, 1, 1, 1);  // t=3 unreachable
  Result<FlowResult> r = g.Solve(0, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().flow, 0);
  EXPECT_EQ(r.value().cost, 0);
}

TEST(MinCostFlow, NegativeCostsHandledByBellmanFord) {
  // Path with a negative edge: s->1 cost -5, 1->t cost 2.
  MinCostFlow g(3);
  g.AddEdge(0, 1, 2, -5);
  g.AddEdge(1, 2, 2, 2);
  Result<FlowResult> r = g.Solve(0, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().flow, 2);
  EXPECT_EQ(r.value().cost, -6);
}

TEST(MinCostFlow, InvalidArgumentsRejected) {
  MinCostFlow g(3);
  g.AddEdge(0, 1, 1, 1);
  EXPECT_FALSE(g.Solve(0, 0).ok());
  EXPECT_FALSE(g.Solve(-1, 2).ok());
  EXPECT_FALSE(g.Solve(0, 5).ok());
}

TEST(MinCostFlow, SolveIsOneShot) {
  MinCostFlow g(2);
  g.AddEdge(0, 1, 1, 1);
  ASSERT_TRUE(g.Solve(0, 1).ok());
  EXPECT_FALSE(g.Solve(0, 1).ok());
}

// --- assignment ---------------------------------------------------------------

CostMatrix RandomCosts(int n, Rng& rng, std::int64_t max_cost = 50) {
  CostMatrix m;
  m.n = n;
  m.cost.resize(static_cast<std::size_t>(n) * n);
  for (auto& c : m.cost) c = rng.uniform_int(0, max_cost);
  return m;
}

std::int64_t BruteForceAssignment(const CostMatrix& m) {
  std::vector<int> perm(static_cast<std::size_t>(m.n));
  std::iota(perm.begin(), perm.end(), 0);
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  do {
    std::int64_t cost = 0;
    for (int i = 0; i < m.n; ++i) cost += m.at(i, perm[i]);
    best = std::min(best, cost);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

void CheckIsPermutation(const std::vector<int>& a) {
  std::vector<int> seen(a.size(), 0);
  for (int v : a) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, static_cast<int>(a.size()));
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Assignment, KnownInstance) {
  // Classic 3x3 with unique optimum 5: (0,1),(1,0),(2,2).
  CostMatrix m;
  m.n = 3;
  m.cost = {4, 1, 3,
            2, 0, 5,
            3, 2, 2};
  Result<AssignmentResult> flow = SolveAssignmentFlow(m);
  Result<AssignmentResult> hung = SolveAssignmentHungarian(m);
  ASSERT_TRUE(flow.ok());
  ASSERT_TRUE(hung.ok());
  EXPECT_EQ(flow.value().total_cost, 5);
  EXPECT_EQ(hung.value().total_cost, 5);
  EXPECT_EQ(flow.value().column_of_row, (std::vector<int>{1, 0, 2}));
}

TEST(Assignment, SingleElement) {
  CostMatrix m;
  m.n = 1;
  m.cost = {7};
  Result<AssignmentResult> r = SolveAssignmentFlow(m);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().total_cost, 7);
  EXPECT_EQ(r.value().column_of_row, (std::vector<int>{0}));
}

TEST(Assignment, EmptyOrMalformedRejected) {
  CostMatrix empty;
  EXPECT_FALSE(SolveAssignmentFlow(empty).ok());
  EXPECT_FALSE(SolveAssignmentHungarian(empty).ok());
  CostMatrix bad;
  bad.n = 2;
  bad.cost = {1, 2, 3};  // 3 != 4
  EXPECT_FALSE(SolveAssignmentFlow(bad).ok());
}

// Property: on random instances, both solvers produce permutations whose
// costs equal the brute-force optimum.
class AssignmentRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(AssignmentRandomTest, MatchesBruteForce) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 7919 + 13);
  for (int round = 0; round < 20; ++round) {
    const CostMatrix m = RandomCosts(n, rng);
    const std::int64_t optimum = BruteForceAssignment(m);
    Result<AssignmentResult> flow = SolveAssignmentFlow(m);
    Result<AssignmentResult> hung = SolveAssignmentHungarian(m);
    ASSERT_TRUE(flow.ok());
    ASSERT_TRUE(hung.ok());
    EXPECT_EQ(flow.value().total_cost, optimum);
    EXPECT_EQ(hung.value().total_cost, optimum);
    CheckIsPermutation(flow.value().column_of_row);
    CheckIsPermutation(hung.value().column_of_row);
    // Reported cost must equal the cost of the reported assignment.
    std::int64_t recomputed = 0;
    for (int i = 0; i < n; ++i)
      recomputed += m.at(i, flow.value().column_of_row[i]);
    EXPECT_EQ(recomputed, flow.value().total_cost);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AssignmentRandomTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

TEST(Assignment, SolversAgreeOnLargerInstances) {
  Rng rng(99);
  for (int n : {10, 20, 40}) {
    const CostMatrix m = RandomCosts(n, rng, 1'000);
    Result<AssignmentResult> flow = SolveAssignmentFlow(m);
    Result<AssignmentResult> hung = SolveAssignmentHungarian(m);
    ASSERT_TRUE(flow.ok());
    ASSERT_TRUE(hung.ok());
    EXPECT_EQ(flow.value().total_cost, hung.value().total_cost) << n;
  }
}

}  // namespace
}  // namespace sor::flow

// Tests for the telemetry subsystem (src/obs): the metrics registry, the
// deterministic event tracer, span stitching + the `sor trace --summary`
// golden output, JSONL round-trips, and — the subsystem's core promise —
// byte-identical chaos-campaign traces across thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/system.hpp"
#include "net/fault_injector.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"

namespace sor {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterSingleAndSharded) {
  obs::MetricsRegistry registry;
  obs::Counter& single = registry.counter("t.single");
  obs::Counter& sharded =
      registry.counter("t.sharded", obs::Sharding::kPerThread);
  single.Inc();
  single.Inc(41);
  sharded.Inc(7);
  EXPECT_EQ(single.value(), 42u);
  EXPECT_EQ(sharded.value(), 7u);

  // Find-or-create: the same name is the same counter, and the original's
  // sharding wins over a disagreeing later caller.
  EXPECT_EQ(&registry.counter("t.single", obs::Sharding::kPerThread),
            &single);

  single.Reset();
  EXPECT_EQ(single.value(), 0u);
}

TEST(Metrics, ShardedCounterSumsAcrossThreads) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("t.mt", obs::Sharding::kPerThread);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < 10'000; ++i) c.Inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), 80'000u);
}

TEST(Metrics, GaugeIsLastWrite) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.gauge("t.gauge");
  EXPECT_EQ(g.value(), 0.0);
  g.Set(2.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(Metrics, HistogramBucketsSumAndOverflow) {
  obs::MetricsRegistry registry;
  obs::Histogram& h =
      registry.histogram("t.hist", obs::ExponentialBuckets(1.0, 2.0, 4));
  // Bounds: 1, 2, 4, 8 (+inf overflow). lower_bound puts x on the first
  // bound >= x: 0.5→[0], 2.0→[1], 3.0→[2], 100→overflow.
  h.Observe(0.5);
  h.Observe(2.0);
  h.Observe(3.0);
  h.Observe(100.0);
  const obs::Histogram::Snapshot s = h.Read();
  ASSERT_EQ(s.upper_bounds, (std::vector<double>{1, 2, 4, 8}));
  EXPECT_EQ(s.counts, (std::vector<std::uint64_t>{1, 1, 1, 0, 1}));
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 105.5);
  h.Reset();
  EXPECT_EQ(h.Read().count, 0u);
}

TEST(Metrics, LabeledNameAndSortedRead) {
  EXPECT_EQ(obs::LabeledName("net.delivered",
                             {{"from", "phone:tok-1"}, {"to", "server"}}),
            "net.delivered|from=phone:tok-1|to=server");

  obs::MetricsRegistry registry;
  registry.counter("z.last").Inc(3);
  registry.gauge("a.first").Set(1.5);
  registry.histogram("m.middle", {10.0}).Observe(4.0);
  const std::vector<obs::MetricsRegistry::Entry> entries = registry.Read();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a.first");
  EXPECT_EQ(entries[1].name, "m.middle");
  EXPECT_EQ(entries[2].name, "z.last");

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("z.last 3"), std::string::npos);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"a.first\": 1.5"), std::string::npos);

  registry.Reset();
  EXPECT_EQ(registry.counter("z.last").value(), 0u);
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, DisabledEmitIsDropped) {
  obs::Tracer tracer;
  const obs::StreamId s = tracer.RegisterStream("a");
  tracer.Emit(s, SimTime{1}, obs::EventKind::kSenseBatch);
  EXPECT_EQ(tracer.total_events(), 0u);
}

TEST(Tracer, RegisterStreamDedupsByName) {
  obs::Tracer tracer;
  const obs::StreamId a = tracer.RegisterStream("a");
  const obs::StreamId b = tracer.RegisterStream("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.RegisterStream("a"), a);
  EXPECT_EQ(tracer.num_streams(), 2u);
  EXPECT_EQ(tracer.stream_name(b), "b");
}

TEST(Tracer, MergedOrdersByTimeStreamSeq) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  const obs::StreamId a = tracer.RegisterStream("a");
  const obs::StreamId b = tracer.RegisterStream("b");
  tracer.Emit(b, SimTime{20}, obs::EventKind::kSenseBatch, 1);
  tracer.Emit(a, SimTime{10}, obs::EventKind::kSenseBatch, 2);
  tracer.Emit(a, SimTime{20}, obs::EventKind::kSenseBatch, 3);
  tracer.Emit(a, SimTime{20}, obs::EventKind::kSenseBatch, 4);

  const std::vector<obs::TraceEvent> merged = tracer.Merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].a, 2u);  // t=10
  EXPECT_EQ(merged[1].a, 3u);  // t=20 stream a seq 1
  EXPECT_EQ(merged[2].a, 4u);  // t=20 stream a seq 2
  EXPECT_EQ(merged[3].a, 1u);  // t=20 stream b
  EXPECT_EQ(merged[1].seq + 1, merged[2].seq);
}

TEST(Tracer, RingOverwritesOldestAndKeepsCounting) {
  obs::Tracer tracer(4);
  tracer.set_enabled(true);
  const obs::StreamId s = tracer.RegisterStream("a");
  for (int i = 0; i < 10; ++i)
    tracer.Emit(s, SimTime{i}, obs::EventKind::kSenseBatch,
                static_cast<std::uint64_t>(i));
  EXPECT_EQ(tracer.total_events(), 4u);
  EXPECT_EQ(tracer.dropped(s), 6u);
  EXPECT_EQ(tracer.total_dropped(), 6u);
  const std::vector<obs::TraceEvent> merged = tracer.Merged();
  ASSERT_EQ(merged.size(), 4u);
  // The survivors are the newest four, their seq numbers untouched — the
  // gap from 0 to 6 shows exactly what the ring lost.
  EXPECT_EQ(merged.front().seq, 6u);
  EXPECT_EQ(merged.back().seq, 9u);
}

TEST(Tracer, FingerprintDetectsAnyChange) {
  auto record = [](std::uint64_t payload) {
    obs::Tracer tracer;
    tracer.set_enabled(true);
    const obs::StreamId s = tracer.RegisterStream("a");
    tracer.Emit(s, SimTime{5}, obs::EventKind::kUploadAcked, payload);
    return tracer.Fingerprint();
  };
  EXPECT_EQ(record(1), record(1));
  EXPECT_NE(record(1), record(2));
}

TEST(Tracer, FingerprintMatchesFreeFunctionOnSnapshot) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  const obs::StreamId s = tracer.RegisterStream("a");
  tracer.Emit(s, SimTime{1}, obs::EventKind::kSenseBatch, 1, 2, 3);
  tracer.Emit(s, SimTime{2}, obs::EventKind::kUploadAcked, 1, 2);
  EXPECT_EQ(tracer.Fingerprint(), obs::Fingerprint(tracer.Snapshot()));

  tracer.Clear();
  EXPECT_EQ(tracer.num_streams(), 0u);
  EXPECT_EQ(tracer.total_events(), 0u);
  EXPECT_EQ(tracer.Fingerprint(), obs::Fingerprint(obs::TraceData{}));
}

TEST(Tracer, EventKindNamesRoundTrip) {
  for (int k = static_cast<int>(obs::EventKind::kMsgSend);
       k <= static_cast<int>(obs::EventKind::kRankingDone); ++k) {
    const obs::EventKind kind = static_cast<obs::EventKind>(k);
    obs::EventKind parsed;
    ASSERT_TRUE(obs::ParseEventKind(obs::to_string(kind), &parsed))
        << "kind " << k << " name " << obs::to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  obs::EventKind parsed;
  EXPECT_FALSE(obs::ParseEventKind("not_a_kind", &parsed));
}

// ------------------------------------------------------------------ spans

// The synthetic pipeline trace the span/golden tests share: one upload
// batch (task 1, seq 1) that needs two attempts, then flows sense → ack →
// store → process → rank.
obs::TraceData PipelineTrace() {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  const obs::StreamId server = tracer.RegisterStream("server");
  const obs::StreamId phone = tracer.RegisterStream("phone:tok-1");
  tracer.Emit(phone, SimTime{100}, obs::EventKind::kSenseBatch, 1, 1, 5);
  tracer.Emit(phone, SimTime{100}, obs::EventKind::kMsgSend, server, 64, 3);
  tracer.Emit(phone, SimTime{100}, obs::EventKind::kMsgDropped, server);
  tracer.Emit(phone, SimTime{100}, obs::EventKind::kUploadFailed, 1, 1, 1);
  tracer.Emit(phone, SimTime{200}, obs::EventKind::kMsgSend, server, 64, 3);
  tracer.Emit(phone, SimTime{200}, obs::EventKind::kMsgDelivered, server);
  tracer.Emit(server, SimTime{200}, obs::EventKind::kUploadStored, 1, 1, 9);
  tracer.Emit(phone, SimTime{200}, obs::EventKind::kUploadAcked, 1, 1);
  tracer.Emit(server, SimTime{300}, obs::EventKind::kBlobProcessed, 1, 1, 9);
  tracer.Emit(server, SimTime{400}, obs::EventKind::kRankingDone, 9);
  return tracer.Snapshot();
}

TEST(Spans, StitchesMilestonesAndAttempts) {
  const std::vector<obs::UploadSpan> spans =
      obs::BuildUploadSpans(PipelineTrace());
  ASSERT_EQ(spans.size(), 1u);
  const obs::UploadSpan& s = spans[0];
  EXPECT_EQ(s.task, 1u);
  EXPECT_EQ(s.seq, 1u);
  EXPECT_EQ(s.app, 9u);
  EXPECT_EQ(s.t_sense, 100);
  EXPECT_EQ(s.t_acked, 200);
  EXPECT_EQ(s.t_stored, 200);
  EXPECT_EQ(s.t_processed, 300);
  EXPECT_EQ(s.t_ranked, 400);
  EXPECT_EQ(s.attempts, 2);
  EXPECT_EQ(s.EndToEndMs(), 300);
}

TEST(Spans, IncompleteSpanHasNoEndToEnd) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  const obs::StreamId phone = tracer.RegisterStream("phone:tok-1");
  tracer.Emit(phone, SimTime{100}, obs::EventKind::kSenseBatch, 1, 1, 5);
  tracer.Emit(phone, SimTime{100}, obs::EventKind::kUploadFailed, 1, 1, 1);
  const std::vector<obs::UploadSpan> spans =
      obs::BuildUploadSpans(tracer.Snapshot());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].t_acked, -1);
  EXPECT_EQ(spans[0].attempts, 1);
  EXPECT_EQ(spans[0].EndToEndMs(), -1);
}

// Golden output of `sor trace --summary` (RenderSummary): locked down
// character for character so the CLI surface only changes deliberately.
TEST(Spans, GoldenSummary) {
  const std::string rendered =
      obs::RenderSummary(obs::Summarize(PipelineTrace()));
  const std::string expected =
      "trace summary\n"
      "  events 10 (ring-dropped 0)\n"
      "  upload spans 1 (acked 1, processed 1, ranked 1)\n"
      "  sense->ack ms  p50=100 p95=100 p99=100\n"
      "  sense->end ms  p50=300 p95=300 p99=300\n"
      "  links\n"
      "    phone:tok-1 -> server  sends=2 dropped=1 resp_dropped=0"
      " corrupted=0 drop_rate=50.0%\n";
  EXPECT_EQ(rendered, expected);
}

// --------------------------------------------------------------- trace IO

TEST(TraceIo, JsonLinesRoundTripsExactly) {
  const obs::TraceData trace = PipelineTrace();
  const std::string text = obs::WriteJsonLines(trace);
  obs::TraceData back;
  std::string error;
  ASSERT_TRUE(obs::ReadJsonLines(text, &back, &error)) << error;
  EXPECT_EQ(back, trace);
  EXPECT_EQ(obs::Fingerprint(back), obs::Fingerprint(trace));
}

TEST(TraceIo, ReaderRejectsMalformedInput) {
  obs::TraceData out;
  std::string error;
  EXPECT_FALSE(obs::ReadJsonLines("", &out, &error));
  EXPECT_FALSE(obs::ReadJsonLines("{\"streams\":[\"a\"]}", &out, &error));

  const std::string header = "{\"streams\":[\"a\"],\"dropped\":0}\n";
  // Unknown kind name.
  EXPECT_FALSE(obs::ReadJsonLines(
      header + "{\"t\":1,\"s\":0,\"q\":0,\"k\":\"bogus\",\"a\":0,\"b\":0,"
               "\"c\":0}\n",
      &out, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  // Stream id beyond the name table.
  EXPECT_FALSE(obs::ReadJsonLines(
      header + "{\"t\":1,\"s\":7,\"q\":0,\"k\":\"msg_send\",\"a\":0,\"b\":0,"
               "\"c\":0}\n",
      &out, &error));
  // Truncated event line.
  EXPECT_FALSE(obs::ReadJsonLines(
      header + "{\"t\":1,\"s\":0,\"q\":0\n", &out, &error));

  const std::string good =
      header +
      "{\"t\":1,\"s\":0,\"q\":0,\"k\":\"msg_send\",\"a\":1,\"b\":2,"
      "\"c\":3}\n";
  ASSERT_TRUE(obs::ReadJsonLines(good, &out, &error)) << error;
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].kind, obs::EventKind::kMsgSend);
}

TEST(TraceIo, ChromeTraceHasTracksInstantsAndSpans) {
  const std::string text = obs::WriteChromeTrace(PipelineTrace());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"phone:tok-1\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);  // span slices
  EXPECT_NE(text.find("task1/seq1"), std::string::npos);
}

// ------------------------------------------------------------ determinism

core::FieldTestConfig ChaosTraceConfig(std::uint64_t seed, int threads) {
  core::FieldTestConfig config;
  config.budget_per_user = 10;
  config.n_instants = 60;
  config.sigma_s = 60.0;
  config.seed = seed;
  config.threads = threads;
  config.trace = true;
  net::FaultRule lossy;
  lossy.drop = 0.25;
  lossy.corrupt = 0.15;
  lossy.duplicate = 0.15;
  net::FaultRule partition;
  partition.partition = SimInterval{SimTime{200'000}, SimTime{260'000}};
  config.chaos_rules = {lossy, partition};
  config.chaos_seed = seed * 31 + 7;
  return config;
}

struct TraceRun {
  std::uint64_t fingerprint = 0;
  std::string jsonl;
};

TraceRun RunChaosTrace(std::uint64_t seed, int threads) {
  world::Scenario scenario = world::MakeCoffeeShopScenario();
  scenario.period_s = 600.0;
  core::System system;
  Result<core::FieldTestResult> run =
      system.RunFieldTest(scenario, ChaosTraceConfig(seed, threads));
  EXPECT_TRUE(run.ok()) << (run.ok() ? "" : run.error().str());
  TraceRun out;
  if (run.ok()) {
    out.fingerprint = run.value().trace_fingerprint;
    EXPECT_EQ(out.fingerprint, system.tracer().Fingerprint());
    out.jsonl = obs::WriteJsonLines(system.tracer().Snapshot());
  }
  return out;
}

// The acceptance gate: a chaos campaign's trace is byte-identical across
// thread counts, for several seeds. Fingerprint equality is the cheap
// check; the JSONL comparison proves the fingerprint isn't hiding a
// collision.
TEST(ObsDeterminism, ChaosTraceIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const TraceRun serial = RunChaosTrace(seed, 1);
    ASSERT_FALSE(serial.jsonl.empty());
    for (int threads : {2, 8}) {
      const TraceRun parallel = RunChaosTrace(seed, threads);
      EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.jsonl, serial.jsonl)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// A bounded ring drops deterministically too: same survivors, same drop
// counts, same fingerprint at any thread count.
TEST(ObsDeterminism, BoundedRingStaysDeterministic) {
  auto run = [](int threads) {
    world::Scenario scenario = world::MakeCoffeeShopScenario();
    scenario.period_s = 600.0;
    core::System system;
    core::FieldTestConfig config = ChaosTraceConfig(3, threads);
    config.trace_ring_capacity = 64;
    Result<core::FieldTestResult> r = system.RunFieldTest(scenario, config);
    EXPECT_TRUE(r.ok());
    EXPECT_GT(system.tracer().total_dropped(), 0u);
    return r.ok() ? r.value().trace_fingerprint : 0;
  };
  const std::uint64_t serial = run(1);
  EXPECT_EQ(run(8), serial);
}

TEST(ObsDeterminism, TracingOffYieldsEmptyFingerprint) {
  world::Scenario scenario = world::MakeCoffeeShopScenario();
  scenario.period_s = 600.0;
  core::System system;
  core::FieldTestConfig config;
  config.budget_per_user = 10;
  config.n_instants = 60;
  Result<core::FieldTestResult> run = system.RunFieldTest(scenario, config);
  ASSERT_TRUE(run.ok()) << run.error().str();
  EXPECT_EQ(run.value().trace_fingerprint,
            obs::Fingerprint(obs::TraceData{}));
  EXPECT_EQ(system.tracer().total_events(), 0u);
}

}  // namespace
}  // namespace sor

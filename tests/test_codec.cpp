// Unit tests for the binary codec: byte primitives, CRC-32, message
// round-trips, frame integrity and malformed-input rejection (including a
// deterministic fuzz sweep — a corrupted frame must never decode).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "codec/bytes.hpp"
#include "codec/crc32.hpp"
#include "codec/messages.hpp"
#include "codec/reed_solomon.hpp"
#include "common/rng.hpp"

namespace sor {
namespace {

// --- byte primitives ---------------------------------------------------------

TEST(Bytes, VarintRoundTrip) {
  const std::uint64_t cases[] = {0,      1,        127,       128,
                                 16'383, 16'384,   1u << 21,  1ull << 42,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : cases) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.finish().ok());
  }
}

TEST(Bytes, SignedVarintRoundTrip) {
  const std::int64_t cases[] = {0,  1,  -1, 63, -64, 1'000'000, -1'000'000,
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (std::int64_t v : cases) {
    ByteWriter w;
    w.svarint(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.svarint(), v);
    EXPECT_TRUE(r.finish().ok());
  }
}

TEST(Bytes, ZigzagSmallMagnitudesStaySmall) {
  ByteWriter w;
  w.svarint(-1);
  EXPECT_EQ(w.size(), 1u);  // -1 encodes to a single byte (zigzag: 1)
}

TEST(Bytes, DoubleRoundTrip) {
  const double cases[] = {0.0, -0.0, 1.5, -273.15, 1e300, -1e-300,
                          std::numeric_limits<double>::infinity()};
  for (double v : cases) {
    ByteWriter w;
    w.f64(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.f64(), v);
  }
}

TEST(Bytes, NanRoundTrip) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::quiet_NaN());
  ByteReader r(w.bytes());
  EXPECT_TRUE(std::isnan(r.f64()));
}

TEST(Bytes, StringAndBlobRoundTrip) {
  ByteWriter w;
  w.str("hello sensing");
  w.str("");
  const Bytes blob = {0x00, 0xff, 0x7f, 0x80};
  w.blob(blob);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello sensing");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.blob(), blob);
  EXPECT_TRUE(r.finish().ok());
}

TEST(Bytes, TruncatedReadsFailAndStick) {
  ByteWriter w;
  w.u32_fixed(0xDEADBEEF);
  Bytes data = w.bytes();
  data.pop_back();
  ByteReader r(data);
  (void)r.u32_fixed();
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay failed and return zero values.
  EXPECT_EQ(r.u8(), 0);
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_FALSE(r.finish().ok());
}

TEST(Bytes, OversizedLengthPrefixRejected) {
  ByteWriter w;
  w.varint(1'000'000);  // claims a million bytes...
  w.u8('x');            // ...but provides one
  ByteReader r(w.bytes());
  (void)r.str();
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, TrailingBytesRejectedByFinish) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.bytes());
  (void)r.u8();
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.finish().ok());  // one byte left over
}

TEST(Bytes, OverlongVarintRejected) {
  // 11 continuation bytes exceed a 64-bit varint.
  Bytes data(11, 0x80);
  ByteReader r(data);
  (void)r.varint();
  EXPECT_FALSE(r.ok());
}

// --- CRC-32 ---------------------------------------------------------------

TEST(Crc32, KnownVector) {
  const std::string s = "123456789";
  const Bytes data(s.begin(), s.end());
  EXPECT_EQ(Crc32(data), 0xCBF43926u);  // standard check value
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(Crc32({}), 0u); }

TEST(Crc32, SensitiveToEveryByte) {
  Bytes data = {1, 2, 3, 4, 5};
  const std::uint32_t base = Crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    Bytes mutated = data;
    mutated[i] ^= 0x01;
    EXPECT_NE(Crc32(mutated), base) << "byte " << i;
  }
}

// --- message round-trips -----------------------------------------------------

Message SampleParticipation() {
  ParticipationRequest req;
  req.user = UserId{42};
  req.token = Token{"tok-42"};
  req.app = AppId{7};
  req.location = GeoPoint{43.05, -76.15, 120.5};
  req.budget = 17;
  req.scan_time = SimTime{123'456};
  req.incarnation = 3;
  return req;
}

Message SampleUpload() {
  SensedDataUpload up;
  up.task = TaskId{9};
  up.user = UserId{42};
  ReadingTuple t1;
  t1.kind = SensorKind::kDroneTemperature;
  t1.t = SimTime{5'000};
  t1.dt = SimDuration{5'000};
  t1.values = {68.2, 68.4, 68.1};
  ReadingTuple t2;
  t2.kind = SensorKind::kGps;
  t2.t = SimTime{6'000};
  t2.dt = SimDuration{300'000};
  t2.values = {150.0, 151.0};
  t2.locations = {{43.05, -76.15, 150.0}, {43.051, -76.149, 151.0}};
  up.batches = {t1, t2};
  return up;
}

std::vector<Message> AllSampleMessages() {
  return {
      SampleParticipation(),
      ParticipationReply{TaskId{3}, true, ""},
      ParticipationReply{TaskId{}, false, "not in target place"},
      ScheduleDistribution{TaskId{3}, AppId{7}, "local x = 1",
                           {SimTime{10'000}, SimTime{20'000}, SimTime{35'000}},
                           SimDuration{5'000}, 5,
                           {SensorKind::kGps, SensorKind::kBarometer},
                           "acquire@2=gps;print@4=barometer,gps"},
      SampleUpload(),
      LeaveNotification{TaskId{3}, UserId{42}, SimTime{99'000}},
      Ping{PhoneId{5}},
      PingReply{PhoneId{5}, GeoPoint{43.0, -76.0, 0}, SimTime{88'000}},
      Ack{12345},
      ErrorReply{3, "bad things"},
      ThrottleReply{TaskId{3}.value(), 17, SimDuration{45'000}, 2},
  };
}

TEST(Messages, FrameRoundTripAllTypes) {
  for (const Message& m : AllSampleMessages()) {
    const Bytes frame = EncodeFrame(m);
    Result<Message> decoded = DecodeFrame(frame);
    ASSERT_TRUE(decoded.ok())
        << to_string(TypeOf(m)) << ": " << decoded.error().str();
    EXPECT_EQ(TypeOf(decoded.value()), TypeOf(m));
    EXPECT_TRUE(decoded.value() == m) << to_string(TypeOf(m));
  }
}

TEST(Messages, ScheduleInstantsDeltaEncodingPreservesOrder) {
  ScheduleDistribution s;
  s.task = TaskId{1};
  s.app = AppId{1};
  s.script = "x = 1";
  for (int i = 0; i < 100; ++i) s.instants.push_back(SimTime{i * 10'000});
  s.sample_window = SimDuration{2'000};
  s.samples_per_window = 3;
  Result<Message> decoded = DecodeFrame(EncodeFrame(s));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::get<ScheduleDistribution>(decoded.value()) == s);
}

TEST(Messages, CorruptedFrameRejected) {
  Bytes frame = EncodeFrame(SampleUpload());
  frame[frame.size() / 2] ^= 0x01;
  EXPECT_EQ(DecodeFrame(frame).code(), Errc::kDecodeError);
}

TEST(Messages, TruncatedFrameRejected) {
  Bytes frame = EncodeFrame(SampleParticipation());
  frame.resize(frame.size() - 3);
  EXPECT_EQ(DecodeFrame(frame).code(), Errc::kDecodeError);
}

TEST(Messages, EmptyAndTinyFramesRejected) {
  EXPECT_FALSE(DecodeFrame({}).ok());
  const Bytes tiny = {1, 2, 3};
  EXPECT_FALSE(DecodeFrame(tiny).ok());
}

TEST(Messages, BadMagicRejected) {
  Bytes frame = EncodeFrame(Ack{1});
  frame[0] ^= 0xff;
  EXPECT_FALSE(DecodeFrame(frame).ok());
}

TEST(Messages, UnknownSensorKindInUploadRejected) {
  // Hand-craft an upload body with a sensor kind beyond kCount.
  ByteWriter w;
  w.varint(1);   // task
  w.varint(1);   // user
  w.varint(1);   // one batch
  w.u8(250);     // invalid sensor kind
  Result<Message> decoded =
      DecodeBody(MessageType::kSensedDataUpload, w.bytes());
  EXPECT_EQ(decoded.code(), Errc::kDecodeError);
}

// Deterministic fuzz: flip every single byte of each frame, and also try
// random mutations — decode must fail or produce *some* valid message, but
// never crash. (CRC catches essentially everything.)
TEST(Messages, FuzzSingleByteFlipsNeverDecodeSilently) {
  for (const Message& m : AllSampleMessages()) {
    const Bytes frame = EncodeFrame(m);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      Bytes mutated = frame;
      mutated[i] ^= 0x41;
      Result<Message> decoded = DecodeFrame(mutated);
      EXPECT_FALSE(decoded.ok())
          << "byte " << i << " of " << to_string(TypeOf(m));
    }
  }
}

TEST(Messages, FuzzRandomGarbageNeverCrashes) {
  Rng rng(1234);
  for (int round = 0; round < 500; ++round) {
    Bytes garbage(static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : garbage)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    (void)DecodeFrame(garbage);  // must not crash; result ignored
  }
  SUCCEED();
}

// --- Reed–Solomon -------------------------------------------------------------

TEST(ReedSolomon, RoundTripNoErrors) {
  const Bytes data = {1, 2, 3, 4, 5, 250, 0, 7};
  Result<Bytes> enc = RsEncode(data, 8);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc.value().size(), data.size() + 8);
  // Systematic code: message bytes appear verbatim.
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(enc.value()[i], data[i]);
  Result<Bytes> dec = RsDecode(enc.value(), 8);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value(), data);
}

TEST(ReedSolomon, CorrectsUpToCapacity) {
  Rng rng(71);
  for (int round = 0; round < 200; ++round) {
    const int len = 10 + static_cast<int>(rng.uniform_int(0, 150));
    Bytes data(static_cast<std::size_t>(len));
    for (auto& b : data)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const int nsym = 16;
    Bytes cw = RsEncode(data, nsym).value();
    // Exactly t = nsym/2 errors at distinct positions.
    std::vector<std::size_t> positions;
    while (positions.size() < 8) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, len + nsym - 1));
      if (std::find(positions.begin(), positions.end(), pos) ==
          positions.end())
        positions.push_back(pos);
    }
    for (std::size_t pos : positions) {
      cw[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    Result<Bytes> dec = RsDecode(cw, nsym);
    ASSERT_TRUE(dec.ok()) << "round " << round;
    EXPECT_EQ(dec.value(), data) << "round " << round;
  }
}

TEST(ReedSolomon, BeyondCapacityDetectedOrNeverSilentlyWrongLength) {
  Rng rng(72);
  int clean_failures = 0;
  for (int round = 0; round < 100; ++round) {
    Bytes data(50);
    for (auto& b : data)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    Bytes cw = RsEncode(data, 16).value();
    for (int e = 0; e < 20; ++e) {  // far beyond t = 8
      cw[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(cw.size()) - 1))] ^=
          static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    Result<Bytes> dec = RsDecode(cw, 16);
    if (!dec.ok()) ++clean_failures;
    // (An RS code can miscorrect beyond capacity — that is mathematics,
    // not a bug — the barcode's inner CRC catches those.)
  }
  EXPECT_GE(clean_failures, 95);  // overwhelmingly detected
}

TEST(ReedSolomon, RandomGarbageNeverCrashes) {
  Rng rng(73);
  for (int round = 0; round < 500; ++round) {
    Bytes garbage(static_cast<std::size_t>(rng.uniform_int(0, 300)));
    for (auto& b : garbage)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    (void)RsDecode(garbage, 16);  // any outcome but a crash is fine
  }
  SUCCEED();
}

TEST(ReedSolomon, ParameterValidation) {
  const Bytes data(10);
  EXPECT_FALSE(RsEncode(data, 0).ok());
  EXPECT_FALSE(RsEncode(data, 300).ok());
  EXPECT_FALSE(RsEncode(Bytes(250), 16).ok());  // block too long
  EXPECT_FALSE(RsDecode(Bytes(4), 16).ok());    // shorter than parity
}

TEST(Messages, TypeNames) {
  EXPECT_STREQ(to_string(MessageType::kParticipationRequest),
               "participation_request");
  EXPECT_STREQ(to_string(MessageType::kSensedDataUpload),
               "sensed_data_upload");
  EXPECT_STREQ(to_string(MessageType::kThrottleReply), "throttle_reply");
}

TEST(Messages, LegacySor3FrameRejectedByMagic) {
  // An SOR3 frame differs in layout (no incarnation in
  // participation_request), so it must be refused outright, not decoded
  // positionally.
  Bytes frame = EncodeFrame(SampleParticipation());
  frame[3] = '3';  // "SOR4" -> "SOR3"
  EXPECT_FALSE(DecodeFrame(frame).ok());
}

}  // namespace
}  // namespace sor

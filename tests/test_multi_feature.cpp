// Tests for multi-feature scheduling (per-feature σ kernels, one shared
// budget) and for server-side participant re-verification.
#include <gtest/gtest.h>

#include "phone/frontend.hpp"
#include "sched/greedy.hpp"
#include "sched/multi_feature.hpp"
#include "server/feature_def.hpp"
#include "server/server.hpp"
#include "world/scenarios.hpp"

namespace sor {
namespace {

using sched::FeatureKernelSpec;
using sched::MultiFeatureProblem;

MultiFeatureProblem TwoFeatureProblem(int n = 120, double period_s = 1'200) {
  MultiFeatureProblem p;
  p.grid = MakeInstantGrid(
      SimInterval{SimTime{0}, SimTime::FromSeconds(period_s)}, n);
  p.users.push_back(sched::UserWindow{
      SimInterval{SimTime{0}, SimTime::FromSeconds(period_s)}, 10});
  p.features = {
      {"acceleration", 10.0, 1.0},   // fast feature, narrow kernel
      {"temperature", 120.0, 1.0},   // slow feature, wide kernel
  };
  return p;
}

TEST(MultiFeature, Validation) {
  MultiFeatureProblem p = TwoFeatureProblem();
  EXPECT_TRUE(p.Validate().ok());
  p.features.clear();
  EXPECT_FALSE(p.Validate().ok());
  p = TwoFeatureProblem();
  p.features[0].sigma_s = -1.0;
  EXPECT_FALSE(p.Validate().ok());
  p = TwoFeatureProblem();
  p.features[1].weight = -0.5;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(MultiFeature, SingleFeatureReducesToPlainGreedy) {
  MultiFeatureProblem mp = TwoFeatureProblem();
  mp.features = {{"only", 20.0, 1.0}};
  Result<sched::MultiFeatureResult> multi =
      sched::MultiFeatureGreedySchedule(mp);
  ASSERT_TRUE(multi.ok());

  sched::Problem p = mp.Base();
  p.sigma_s = 20.0;
  Result<sched::ScheduleResult> plain = sched::GreedySchedule(p);
  ASSERT_TRUE(plain.ok());
  EXPECT_NEAR(multi.value().objective, plain.value().objective, 1e-6);
}

TEST(MultiFeature, EvaluatorMatchesManualComputation) {
  MultiFeatureProblem p = TwoFeatureProblem(10, 100);
  sched::Schedule s = sched::Schedule::Empty(1);
  s.per_user[0] = {5};
  Result<sched::MultiFeatureResult> r = sched::EvaluateMultiFeature(p, s);
  ASSERT_TRUE(r.ok());
  // Per-feature objective = Σ kernel values around instant 5.
  double expected = 0.0;
  for (const FeatureKernelSpec& f : p.features) {
    const sched::CoverageKernel kern(f.sigma_s, 10.0, p.support_sigmas);
    double cov = 0.0;
    for (int j = 0; j < 10; ++j) cov += kern.at(std::abs(j - 5));
    expected += f.weight * cov;
  }
  EXPECT_NEAR(r.value().objective, expected, 1e-9);
  ASSERT_EQ(r.value().per_feature_coverage.size(), 2u);
  // Wide kernel covers more of the grid than the narrow one.
  EXPECT_GT(r.value().per_feature_coverage[1],
            r.value().per_feature_coverage[0]);
}

TEST(MultiFeature, GreedyBeatsSingleKernelSchedulesOnBlendedObjective) {
  MultiFeatureProblem mp = TwoFeatureProblem(240, 2'400);
  Result<sched::MultiFeatureResult> multi =
      sched::MultiFeatureGreedySchedule(mp);
  ASSERT_TRUE(multi.ok());

  // Schedules optimized for one kernel only, scored on the blend.
  for (double sigma : {10.0, 120.0}) {
    sched::Problem p = mp.Base();
    p.sigma_s = sigma;
    Result<sched::ScheduleResult> single = sched::GreedySchedule(p);
    ASSERT_TRUE(single.ok());
    Result<sched::MultiFeatureResult> scored =
        sched::EvaluateMultiFeature(mp, single.value().schedule);
    ASSERT_TRUE(scored.ok());
    EXPECT_GE(multi.value().objective, scored.value().objective - 1e-6)
        << "sigma " << sigma;
  }
}

TEST(MultiFeature, RespectsBudgets) {
  MultiFeatureProblem mp = TwoFeatureProblem();
  mp.users.push_back(sched::UserWindow{
      SimInterval{SimTime{0}, SimTime::FromSeconds(600)}, 3});
  Result<sched::MultiFeatureResult> r =
      sched::MultiFeatureGreedySchedule(mp);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.value().schedule.per_user[0].size(), 10u);
  EXPECT_LE(r.value().schedule.per_user[1].size(), 3u);
  for (int i : r.value().schedule.per_user[1]) {
    EXPECT_LE(mp.grid[static_cast<std::size_t>(i)].seconds(), 600.0);
  }
}

TEST(MultiFeature, ZeroWeightFeatureIgnored) {
  MultiFeatureProblem focused = TwoFeatureProblem();
  focused.features[1].weight = 0.0;  // only the fast feature matters
  Result<sched::MultiFeatureResult> r =
      sched::MultiFeatureGreedySchedule(focused);
  ASSERT_TRUE(r.ok());

  sched::Problem p = focused.Base();
  p.sigma_s = 10.0;
  Result<sched::ScheduleResult> plain = sched::GreedySchedule(p);
  ASSERT_TRUE(plain.ok());
  EXPECT_NEAR(r.value().objective, plain.value().objective, 1e-6);
}

// --- participant re-verification ---------------------------------------------

// An environment whose position can be teleported mid-test.
class MovableEnvironment final : public sensors::SensorEnvironment {
 public:
  explicit MovableEnvironment(GeoPoint at) : at_(at) {}
  double Sample(SensorKind, SimTime) override { return 1.0; }
  GeoPoint Position(SimTime) override { return at_; }
  void MoveTo(GeoPoint p) { at_ = p; }

 private:
  GeoPoint at_;
};

TEST(Verification, WanderingParticipantIsRetired) {
  SimClock clock;
  net::LoopbackNetwork network;
  server::SensingServer server(server::ServerConfig{}, network, clock);

  server::ApplicationSpec spec;
  spec.creator = "op";
  spec.place = PlaceId{1};
  spec.place_name = "Cafe";
  spec.location = GeoPoint{43.0, -76.0, 0};
  spec.radius_m = 80;
  spec.script = "local xs = get_noise_readings(2)";
  spec.features = server::CoffeeShopFeatures();
  spec.period = SimInterval{SimTime{0}, SimTime{600'000}};
  spec.n_instants = 60;
  spec.sigma_s = 20.0;
  const BarcodePayload barcode = server.DeployApplication(spec).value();

  MovableEnvironment env(spec.location);
  phone::FrontendConfig cfg;
  cfg.phone_id = PhoneId{1};
  cfg.user_name = "wanderer";
  cfg.token = Token{"tok-w"};
  cfg.user_id =
      server.users().RegisterUser(cfg.user_name, cfg.token).value();
  phone::MobileFrontend frontend(cfg, network, env, clock);
  Result<TaskId> task = frontend.ScanBarcode(barcode, 5);
  ASSERT_TRUE(task.ok());

  // Still at the cafe: verification keeps the participant.
  Result<int> removed = server.VerifyParticipants(barcode.app);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 0);
  EXPECT_EQ(server.participations().Get(task.value()).value().status,
            "running");

  // Wander 2 km away; the next verification retires the task.
  env.MoveTo(GeoPoint{43.02, -76.0, 0});
  clock.advance(SimDuration{120'000});
  removed = server.VerifyParticipants(barcode.app);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 1);
  const auto rec = server.participations().Get(task.value()).value();
  EXPECT_EQ(rec.status, "finished");
  ASSERT_TRUE(rec.leave.has_value());
  EXPECT_EQ(rec.leave->ms, clock.now().ms);
}

TEST(Verification, UnreachablePhoneMarkedErrored) {
  SimClock clock;
  net::LoopbackNetwork network;
  server::SensingServer server(server::ServerConfig{}, network, clock);

  server::ApplicationSpec spec;
  spec.creator = "op";
  spec.place = PlaceId{1};
  spec.place_name = "Cafe";
  spec.location = GeoPoint{43.0, -76.0, 0};
  spec.radius_m = 80;
  spec.script = "local xs = get_noise_readings(2)";
  spec.features = server::CoffeeShopFeatures();
  spec.period = SimInterval{SimTime{0}, SimTime{600'000}};
  spec.n_instants = 60;
  spec.sigma_s = 20.0;
  const BarcodePayload barcode = server.DeployApplication(spec).value();

  TaskId task;
  {
    MovableEnvironment env(spec.location);
    phone::FrontendConfig cfg;
    cfg.phone_id = PhoneId{1};
    cfg.user_name = "ghost";
    cfg.token = Token{"tok-g"};
    cfg.user_id =
        server.users().RegisterUser(cfg.user_name, cfg.token).value();
    phone::MobileFrontend frontend(cfg, network, env, clock);
    task = frontend.ScanBarcode(barcode, 5).value();
    // frontend unregisters from the network when it goes out of scope —
    // the phone powered off.
  }

  Result<int> removed = server.VerifyParticipants(barcode.app);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 1);
  const auto rec = server.participations().Get(task).value();
  EXPECT_EQ(rec.status.rfind("error", 0), 0u) << rec.status;
}

TEST(Verification, UnknownAppRejected) {
  SimClock clock;
  net::LoopbackNetwork network;
  server::SensingServer server(server::ServerConfig{}, network, clock);
  EXPECT_FALSE(server.VerifyParticipants(AppId{404}).ok());
}

}  // namespace
}  // namespace sor

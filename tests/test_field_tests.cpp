// Field-test reproduction tests: Table I and Table II of the paper must
// come out of the full pipeline exactly, and the ground truths the paper
// established from photos and web comments (Figs. 8/9 and 12/13) are
// encoded as orderings the sensed data must respect.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace sor::core {
namespace {

// Full-size field tests, matching the paper's phone counts. Run once per
// scenario and share across the assertions below.
const FieldTestResult& TrailResult() {
  static const FieldTestResult result = [] {
    System system;
    FieldTestConfig config;
    config.budget_per_user = 40;
    config.sigma_s = 60.0;
    Result<FieldTestResult> run =
        system.RunFieldTest(world::MakeHikingTrailScenario(), config);
    EXPECT_TRUE(run.ok()) << (run.ok() ? "" : run.error().str());
    return std::move(run).value();
  }();
  return result;
}

const FieldTestResult& CoffeeResult() {
  static const FieldTestResult result = [] {
    System system;
    FieldTestConfig config;
    config.budget_per_user = 40;
    Result<FieldTestResult> run =
        system.RunFieldTest(world::MakeCoffeeShopScenario(), config);
    EXPECT_TRUE(run.ok()) << (run.ok() ? "" : run.error().str());
    return std::move(run).value();
  }();
  return result;
}

std::vector<std::string> Ranked(const FieldTestResult& r,
                                const std::string& user) {
  for (std::size_t i = 0; i < r.rankings.size(); ++i) {
    if (r.rankings[i].first == user) return r.RankedNames(i);
  }
  ADD_FAILURE() << "no ranking for " << user;
  return {};
}

// --- Table I: rankings of hiking trails computed by SOR --------------------

TEST(TableI, AliceCliffLongGreenLake) {
  EXPECT_EQ(Ranked(TrailResult(), "Alice"),
            (std::vector<std::string>{"Cliff Trail", "Long Trail",
                                      "Green Lake Trail"}));
}

TEST(TableI, BobLongCliffGreenLake) {
  EXPECT_EQ(Ranked(TrailResult(), "Bob"),
            (std::vector<std::string>{"Long Trail", "Cliff Trail",
                                      "Green Lake Trail"}));
}

TEST(TableI, ChrisGreenLakeLongCliff) {
  EXPECT_EQ(Ranked(TrailResult(), "Chris"),
            (std::vector<std::string>{"Green Lake Trail", "Long Trail",
                                      "Cliff Trail"}));
}

// --- Table II: rankings of coffee shops computed by SOR ---------------------

TEST(TableII, DavidStarbucksBnNTimHortons) {
  EXPECT_EQ(Ranked(CoffeeResult(), "David"),
            (std::vector<std::string>{"Starbucks", "B&N Cafe",
                                      "Tim Hortons"}));
}

TEST(TableII, EmmaBnNTimHortonsStarbucks) {
  EXPECT_EQ(Ranked(CoffeeResult(), "Emma"),
            (std::vector<std::string>{"B&N Cafe", "Tim Hortons",
                                      "Starbucks"}));
}

// --- Fig. 8/9 ground truths (trails) ----------------------------------------
// "the Cliff Trail is rocky so it is indeed a difficult trail. The other two
// trails are flat and fairly easy, especially the Green Lake trail ... This
// trail is almost entirely flat ... the Green Lake Trail is around a lake so
// it is supposed to be humid and a little cooler."

TEST(TrailGroundTruth, CliffIsTheDifficultTrail) {
  const rank::FeatureMatrix& m = TrailResult().matrix;
  const int rough = m.feature_index("roughness");
  const int curv = m.feature_index("curvature");
  const int alt = m.feature_index("altitude_change");
  // Cliff (index 2) tops every difficulty feature.
  for (int j : {rough, curv, alt}) {
    EXPECT_GT(m.at(2, j), m.at(0, j)) << "feature " << j;
    EXPECT_GT(m.at(2, j), m.at(1, j)) << "feature " << j;
  }
}

TEST(TrailGroundTruth, GreenLakeAlmostEntirelyFlat) {
  const rank::FeatureMatrix& m = TrailResult().matrix;
  const int alt = m.feature_index("altitude_change");
  EXPECT_LT(m.at(0, alt), 8.0);          // nearly flat in absolute terms
  EXPECT_LT(m.at(0, alt), m.at(1, alt));  // flattest of the three
}

TEST(TrailGroundTruth, GreenLakeHumidAndCooler) {
  const rank::FeatureMatrix& m = TrailResult().matrix;
  const int temp = m.feature_index("temperature");
  const int hum = m.feature_index("humidity");
  EXPECT_GT(m.at(0, hum), m.at(1, hum));
  EXPECT_GT(m.at(0, hum), m.at(2, hum));
  EXPECT_LT(m.at(0, temp), m.at(1, temp));
  EXPECT_LT(m.at(0, temp), m.at(2, temp));
}

TEST(TrailGroundTruth, CliffDrierThanGreenLake) {
  // "...the Cliff trail, which is difficult but drier than the Green Lake
  // Trail" — the reason Bob ranks Cliff above Green Lake.
  const rank::FeatureMatrix& m = TrailResult().matrix;
  const int hum = m.feature_index("humidity");
  EXPECT_LT(m.at(2, hum), m.at(0, hum));
}

// --- Fig. 12/13 ground truths (coffee shops) ---------------------------------
// "the Starbucks is crowded, noisy and dark. While the other two coffee
// shops are quiet and bright. The Tim Hortons is a little colder than the
// B&N Cafe, however, very bright due to a big window."

TEST(CoffeeGroundTruth, StarbucksNoisyAndDark) {
  const rank::FeatureMatrix& m = CoffeeResult().matrix;
  const int noise = m.feature_index("noise");
  const int bright = m.feature_index("brightness");
  EXPECT_GT(m.at(2, noise), m.at(0, noise));
  EXPECT_GT(m.at(2, noise), m.at(1, noise));
  EXPECT_LT(m.at(2, bright), m.at(0, bright));
  EXPECT_LT(m.at(2, bright), m.at(1, bright));
}

TEST(CoffeeGroundTruth, TimHortonsColdestButBrightest) {
  const rank::FeatureMatrix& m = CoffeeResult().matrix;
  const int temp = m.feature_index("temperature");
  const int bright = m.feature_index("brightness");
  EXPECT_LT(m.at(0, temp), m.at(1, temp));   // TH colder than B&N
  EXPECT_GT(m.at(0, bright), m.at(1, bright));  // TH brightest
}

// --- measured values stay close to the world's ground truth -------------------

TEST(FieldTests, TrailFeaturesNearGroundTruth) {
  const FieldTestResult& r = TrailResult();
  const world::Scenario scenario = world::MakeHikingTrailScenario();
  const std::vector<double> truth = world::GroundTruthFeatures(scenario);
  const int m = r.matrix.num_features();
  for (int i = 0; i < r.matrix.num_places(); ++i) {
    for (int j = 0; j < m; ++j) {
      const double want = truth[static_cast<std::size_t>(i) * m + j];
      const double got = r.matrix.at(i, j);
      // Curvature (j == 3) is GPS-estimated: allow 35%; everything else 10%
      // or a small absolute floor.
      const double tol =
          j == 3 ? std::max(5.0, want * 0.35)
                 : std::max(1.5, std::fabs(want) * 0.10);
      EXPECT_NEAR(got, want, tol) << "place " << i << " feature " << j;
    }
  }
}

TEST(FieldTests, PaperScaleParticipation) {
  // §V-A: 7 phones per trail; §V-B: 12 per shop — all accepted.
  EXPECT_EQ(TrailResult().server_stats.participations_accepted, 21u);
  EXPECT_EQ(CoffeeResult().server_stats.participations_accepted, 36u);
  EXPECT_EQ(TrailResult().server_stats.participations_rejected, 0u);
}

TEST(FieldTests, RankingsAreTrueForEveryAggregationMethod) {
  // Table I/II should be stable across all four aggregation algorithms on
  // this data (the methods agree when the evidence is clear-cut).
  const rank::PersonalizableRanker trail_ranker(TrailResult().matrix);
  const world::Scenario trails = world::MakeHikingTrailScenario();
  for (auto method :
       {rank::AggregationMethod::kFootruleHungarian,
        rank::AggregationMethod::kExactKemeny,
        rank::AggregationMethod::kBorda}) {
    Result<rank::RankingOutcome> alice =
        trail_ranker.Rank(trails.profiles[0], method);
    ASSERT_TRUE(alice.ok());
    EXPECT_EQ(alice.value().OrderedNames(TrailResult().matrix),
              (std::vector<std::string>{"Cliff Trail", "Long Trail",
                                        "Green Lake Trail"}));
  }
}

}  // namespace
}  // namespace sor::core

// Property tests of the paper's theoretical claims, checked directly:
//   * the coverage objective is non-negative, monotone and submodular
//     (the premises of the 1/2-approximation guarantee, §III / [31]);
//   * KemenyDistanceFast ≡ KemenyDistance (inversion-count equivalence);
//   * the Kemeny distance is a metric (triangle inequality, symmetry);
//   * multiple sensing servers coexist on one network (§II: "One or
//     multiple sensing servers need to be deployed").
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "rank/distances.hpp"
#include "sched/coverage.hpp"
#include "server/server.hpp"

namespace sor {
namespace {

// --- submodularity of the coverage objective ---------------------------------

// Evaluate f over an explicit multiset of instants.
double F(const sched::CoverageEvaluator& eval, const std::vector<int>& set) {
  double total = 0.0;
  for (double q : eval.UncoveredAfter(set)) total += 1.0 - q;
  return total;
}

class CoveragePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CoveragePropertyTest, MonotoneAndSubmodular) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 1);
  sched::Problem p = sched::Problem::UniformGrid(300.0, 30, 15.0);
  const sched::CoverageEvaluator eval(p);

  for (int round = 0; round < 50; ++round) {
    // Random nested sets A ⊆ B and a fresh element x.
    std::vector<int> b;
    for (int i = 0; i < 30; ++i) {
      if (rng.chance(0.3)) b.push_back(i);
    }
    std::vector<int> a;
    for (int i : b) {
      if (rng.chance(0.5)) a.push_back(i);
    }
    const int x = static_cast<int>(rng.uniform_int(0, 29));

    std::vector<int> ax = a;
    ax.push_back(x);
    std::vector<int> bx = b;
    bx.push_back(x);

    const double fa = F(eval, a);
    const double fb = F(eval, b);
    const double fax = F(eval, ax);
    const double fbx = F(eval, bx);

    // Non-negativity and monotonicity.
    EXPECT_GE(fa, -1e-12);
    EXPECT_GE(fb + 1e-12, fa);     // A ⊆ B → f(A) <= f(B)
    EXPECT_GE(fax + 1e-12, fa);    // adding x never hurts
    // Submodularity: marginal gain shrinks on the larger set.
    EXPECT_GE((fax - fa) - (fbx - fb), -1e-9)
        << "round " << round << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoveragePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(CoverageProperty, BoundedByInstantCount) {
  sched::Problem p = sched::Problem::UniformGrid(300.0, 30, 15.0);
  const sched::CoverageEvaluator eval(p);
  std::vector<int> everything;
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 30; ++i) everything.push_back(i);
  }
  const double f = F(eval, everything);
  EXPECT_LE(f, 30.0 + 1e-9);
  EXPECT_GT(f, 29.0);  // saturated
}

// --- Kemeny fast path ----------------------------------------------------------

rank::Ranking RandomRanking(int n, Rng& rng) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());
  return rank::Ranking::FromOrder(std::move(order)).value();
}

class KemenyFastTest : public ::testing::TestWithParam<int> {};

TEST_P(KemenyFastTest, MatchesQuadraticReference) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 7 + 5);
  for (int round = 0; round < 50; ++round) {
    const rank::Ranking a = RandomRanking(n, rng);
    const rank::Ranking b = RandomRanking(n, rng);
    EXPECT_EQ(rank::KemenyDistanceFast(a, b), rank::KemenyDistance(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KemenyFastTest,
                         ::testing::Values(1, 2, 3, 8, 33, 100));

TEST(KemenyFast, ExtremesAndPaperExample) {
  const rank::Ranking id = rank::Ranking::Identity(5);
  EXPECT_EQ(rank::KemenyDistanceFast(id, id), 0);
  const rank::Ranking rev =
      rank::Ranking::FromOrder({4, 3, 2, 1, 0}).value();
  EXPECT_EQ(rank::KemenyDistanceFast(id, rev), 10);  // C(5,2)
  const rank::Ranking r1 = rank::Ranking::FromOrder({0, 1, 2}).value();
  const rank::Ranking r2 = rank::Ranking::FromOrder({1, 2, 0}).value();
  EXPECT_EQ(rank::KemenyDistanceFast(r1, r2), 2);  // the paper's example
}

TEST(KemenyMetric, TriangleInequalityAndSymmetry) {
  Rng rng(31);
  for (int round = 0; round < 100; ++round) {
    const rank::Ranking a = RandomRanking(7, rng);
    const rank::Ranking b = RandomRanking(7, rng);
    const rank::Ranking c = RandomRanking(7, rng);
    const auto dab = rank::KemenyDistanceFast(a, b);
    const auto dba = rank::KemenyDistanceFast(b, a);
    const auto dbc = rank::KemenyDistanceFast(b, c);
    const auto dac = rank::KemenyDistanceFast(a, c);
    EXPECT_EQ(dab, dba);
    EXPECT_LE(dac, dab + dbc);
    EXPECT_GE(dab, 0);
  }
}

// --- multiple sensing servers ----------------------------------------------------

TEST(MultiServer, TwoServersShareOneNetwork) {
  SimClock clock;
  net::LoopbackNetwork network;
  server::ServerConfig east_config;
  east_config.endpoint_name = "east";
  server::ServerConfig west_config;
  west_config.endpoint_name = "west";
  server::SensingServer east(east_config, network, clock);
  server::SensingServer west(west_config, network, clock);

  auto deploy = [&](server::SensingServer& srv, const char* place) {
    server::ApplicationSpec spec;
    spec.creator = "op";
    spec.place = PlaceId{1};
    spec.place_name = place;
    spec.location = GeoPoint{43.0, -76.0, 0};
    spec.radius_m = 100;
    spec.script = "local xs = get_noise_readings(2)";
    spec.features = server::CoffeeShopFeatures();
    spec.period = SimInterval{SimTime{0}, SimTime{600'000}};
    spec.n_instants = 60;
    spec.sigma_s = 20.0;
    return srv.DeployApplication(spec).value();
  };
  const BarcodePayload east_code = deploy(east, "East Cafe");
  const BarcodePayload west_code = deploy(west, "West Cafe");
  EXPECT_EQ(east_code.server, "east");
  EXPECT_EQ(west_code.server, "west");

  // A user registered with each server; one phone endpoint answers both.
  struct NullPhone final : net::Endpoint {
    Bytes HandleFrame(std::span<const std::uint8_t>) override {
      return EncodeFrame(Ack{});
    }
  };
  NullPhone phone;
  network.Register("phone:tok-x", &phone);
  const UserId ue = east.users().RegisterUser("x", Token{"tok-x"}).value();
  const UserId uw = west.users().RegisterUser("x", Token{"tok-x"}).value();

  ParticipationRequest req;
  req.user = ue;
  req.token = Token{"tok-x"};
  req.app = east_code.app;
  req.location = GeoPoint{43.0, -76.0, 0};
  req.budget = 5;
  Result<Message> r1 = network.Send(east_code.server, req);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(std::get<ParticipationReply>(r1.value()).accepted);

  req.user = uw;
  req.app = west_code.app;
  Result<Message> r2 = network.Send(west_code.server, req);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(std::get<ParticipationReply>(r2.value()).accepted);

  // State is fully isolated per server.
  EXPECT_EQ(east.stats().participations_accepted, 1u);
  EXPECT_EQ(west.stats().participations_accepted, 1u);
  EXPECT_EQ(east.database().table(db::tables::kParticipations)->size(), 1u);
  EXPECT_EQ(west.database().table(db::tables::kParticipations)->size(), 1u);
  network.Unregister("phone:tok-x");
}

}  // namespace
}  // namespace sor

// Perf-regression tests: host-independent *operation counts*, not wall
// time. These pin the incremental data path's complexity guarantees —
// each blob is decoded exactly once per campaign (O(uploads), not
// O(uploads × passes)), the upload/process hot path never walks a full
// table, accumulator state survives snapshot/restore, and the streaming
// accumulators stay bit-identical to the decode-everything recompute.
// tools/ci.sh runs these as its perf stage (ctest -R 'Perf\.').
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/features.hpp"
#include "obs/metrics.hpp"
#include "server/server.hpp"

namespace sor::server {
namespace {

// A coffee-shop app (all kMeanOfAll) and a trail app (window statistics +
// GPS curvature) exercise every accumulator kind between them.
ApplicationSpec PerfAppSpec(bool trail) {
  ApplicationSpec spec;
  spec.creator = "perf";
  spec.place = PlaceId{11};
  spec.place_name = trail ? "Perf Trail" : "Perf Cafe";
  spec.location = GeoPoint{43.0, -76.0, 100.0};
  spec.radius_m = 80.0;
  spec.script = "local xs = get_noise_readings(3)";
  spec.features = trail ? HikingTrailFeatures() : CoffeeShopFeatures();
  spec.period = SimInterval{SimTime{0}, SimTime{600'000}};
  spec.n_instants = 60;
  spec.sigma_s = 10.0;
  return spec;
}

// Schedule distributions go to this endpoint; we only need it to exist.
class AckPhone final : public net::Endpoint {
 public:
  AckPhone(net::LoopbackNetwork& net, const std::string& name)
      : net_(net), name_(name) {
    net_.Register(name_, this);
  }
  ~AckPhone() override { net_.Unregister(name_); }

  Bytes HandleFrame(std::span<const std::uint8_t>) override {
    return EncodeFrame(Ack{});
  }

  net::LoopbackNetwork& net_;
  std::string name_;
};

// One server with a deployed app and one participating phone, ready to
// accept uploads for `task`.
struct PerfFixture {
  explicit PerfFixture(bool trail = false, int budget = 100) {
    net.set_clock(&clock);
    Result<BarcodePayload> barcode =
        server.DeployApplication(PerfAppSpec(trail));
    EXPECT_TRUE(barcode.ok()) << barcode.error().str();
    app = barcode.value().app;
    user = server.users().RegisterUser("perf-user", Token{"tok-p"}).value();
    phone = std::make_unique<AckPhone>(net, "phone:tok-p");
    ParticipationRequest req;
    req.user = user;
    req.token = Token{"tok-p"};
    req.app = app;
    req.location = GeoPoint{43.0, -76.0, 100};
    req.budget = budget;
    Result<Message> reply = net.Send("server", req);
    EXPECT_TRUE(reply.ok()) << reply.error().str();
    task = std::get<ParticipationReply>(reply.value()).task;
  }

  // One upload with a noise + temperature tuple, contents varied by i so
  // every round changes the features.
  void SendReadings(int i) {
    SensedDataUpload upload;
    upload.task = task;
    upload.user = user;
    ReadingTuple noise;
    noise.kind = SensorKind::kMicrophone;
    noise.t = SimTime{(i + 1) * 1'000};
    noise.dt = SimDuration{1'000};
    noise.values = {0.2 + 0.01 * i, 0.4};
    ReadingTuple temp;
    temp.kind = SensorKind::kDroneTemperature;
    temp.t = SimTime{(i + 1) * 1'000};
    temp.dt = SimDuration{1'000};
    temp.values = {70.0 + i, 72.0};
    upload.batches = {noise, temp};
    Result<Message> reply = net.Send("server", upload);
    EXPECT_TRUE(reply.ok()) << reply.error().str();
  }

  // Trail payload: accelerometer + barometer windows and a GPS fix batch,
  // so the window accumulators and the per-task GPS tail all advance.
  void SendTrailReadings(int i) {
    SensedDataUpload upload;
    upload.task = task;
    upload.user = user;
    ReadingTuple accel;
    accel.kind = SensorKind::kAccelerometer;
    accel.t = SimTime{(i + 1) * 1'000};
    accel.dt = SimDuration{1'000};
    accel.values = {9.0 - i, 11.0 + i};
    ReadingTuple alt;
    alt.kind = SensorKind::kBarometer;
    alt.t = SimTime{(i + 1) * 1'000};
    alt.dt = SimDuration{1'000};
    alt.values = {100.0 + 2.0 * i, 100.0 + 2.0 * i};
    ReadingTuple gps;
    gps.kind = SensorKind::kGps;
    gps.t = SimTime{(i + 1) * 10'000};
    gps.dt = SimDuration{200'000};
    double heading = 0.0, x = 0.0, y = 0.0, sign = 1.0;
    for (int k = 0; k < 12; ++k) {
      gps.locations.push_back(OffsetMeters(GeoPoint{43.0, -76.0, 100.0},
                                           x + 500.0 * i, y));
      gps.values.push_back(100.0);
      heading += sign * 0.2;
      sign = -sign;
      x += 20.0 * std::cos(heading);
      y += 20.0 * std::sin(heading);
    }
    upload.batches = {accel, alt, gps};
    Result<Message> reply = net.Send("server", upload);
    EXPECT_TRUE(reply.ok()) << reply.error().str();
  }

  [[nodiscard]] std::vector<db::Row> FeatureRows() {
    return server.database()
        .table(db::tables::kFeatureData)
        ->ScanOrderedBy("feature_id");
  }

  SimClock clock;
  net::LoopbackNetwork net;
  SensingServer server{ServerConfig{}, net, clock};
  std::unique_ptr<AckPhone> phone;
  AppId app;
  UserId user;
  TaskId task;
};

void UseFullRecompute(SensingServer& server) {
  DataProcessorOptions opts = server.data_processor().options();
  opts.incremental = false;
  server.data_processor().set_options(opts);
}

// --- the O(uploads) decode guarantee ---------------------------------------

TEST(Perf, BlobsDecodedIsOUploads) {
  PerfFixture f;
  obs::MetricsRegistry registry;
  f.server.AttachObservability(&registry, nullptr);
  obs::Counter& decoded = registry.counter("processor.blobs_decoded");
  obs::Counter& skipped = registry.counter("processor.apps_skipped");

  // Three rounds of (2 uploads, process): each pass decodes only the new
  // blobs, never re-reads history. 6 uploads -> 6 decodes, total.
  int uploads = 0;
  for (int round = 0; round < 3; ++round) {
    f.SendReadings(uploads++);
    f.SendReadings(uploads++);
    ASSERT_TRUE(f.server.ProcessAllData().ok());
    EXPECT_EQ(decoded.value(), static_cast<std::uint64_t>(uploads))
        << "round " << round << " re-decoded already-processed blobs";
  }

  // Passes with no new data decode nothing: the watermark probe skips the
  // app without touching the raw table.
  for (int pass = 0; pass < 4; ++pass)
    ASSERT_TRUE(f.server.ProcessAllData().ok());
  EXPECT_EQ(decoded.value(), 6u);
  EXPECT_EQ(skipped.value(), 4u);
  EXPECT_EQ(f.server.data_processor().stats().blobs_decoded, 6u);
}

// --- hot-path table access ------------------------------------------------

TEST(Perf, UploadAndProcessAvoidFullScans) {
  PerfFixture f;
  obs::MetricsRegistry registry;
  f.server.AttachObservability(&registry, nullptr);
  obs::Counter& full_scans = registry.counter("db.full_scans");
  const std::uint64_t base = full_scans.value();

  // Storing an upload is pure point access: participation lookup by key,
  // budget read-modify-write in place, raw insert, watermark bump.
  f.SendReadings(0);
  f.SendReadings(1);
  EXPECT_EQ(full_scans.value(), base);

  // One processing pass walks the applications table once (enumerating
  // deployed apps is a legitimate full scan) and nothing else: new blobs
  // come through the app_id index, processed flags flip in place.
  ASSERT_TRUE(f.server.ProcessAllData().ok());
  EXPECT_EQ(full_scans.value(), base + 1);

  // A skip pass costs the same single enumeration scan.
  ASSERT_TRUE(f.server.ProcessAllData().ok());
  EXPECT_EQ(full_scans.value(), base + 2);

  // Sanity: the counter is live — a deliberate raw-table scan bumps it.
  (void)f.server.database().table(db::tables::kRawData)->Scan();
  EXPECT_EQ(full_scans.value(), base + 3);
}

// --- incremental == full, multi-pass --------------------------------------

TEST(Perf, IncrementalMatchesFullRecomputeLockstep) {
  PerfFixture inc(/*trail=*/true);
  PerfFixture full(/*trail=*/true);
  UseFullRecompute(full.server);

  // Interleave uploads and processing passes; after every pass the feature
  // rows must be bit-for-bit identical — same values, same n_samples, same
  // feature ids — even though the incremental side only ever sees the new
  // blobs while the oracle re-decodes everything from scratch.
  int i = 0;
  for (int round = 0; round < 4; ++round) {
    inc.SendTrailReadings(i);
    full.SendTrailReadings(i);
    ++i;
    if (round % 2 == 1) {  // some passes see two new uploads, some one
      inc.SendTrailReadings(i);
      full.SendTrailReadings(i);
      ++i;
    }
    ASSERT_TRUE(inc.server.ProcessAllData().ok());
    ASSERT_TRUE(full.server.ProcessAllData().ok());
    const std::vector<db::Row> got = inc.FeatureRows();
    const std::vector<db::Row> want = full.FeatureRows();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t r = 0; r < want.size(); ++r)
      EXPECT_EQ(got[r], want[r]) << "round " << round << " row " << r;
  }
}

// --- malformed blobs ------------------------------------------------------

TEST(Perf, CorruptBlobRejectedIdenticallyToFullPath) {
  // A blob that fails body decoding (stored corrupt, past the transport
  // CRC) must be counted rejected and skipped by BOTH paths, leaving the
  // same features behind. Inject it directly into the raw table the way a
  // torn write would leave it, then advance the watermark by hand.
  auto run = [](bool incremental) {
    PerfFixture f;
    if (!incremental) UseFullRecompute(f.server);
    f.SendReadings(0);
    db::Table* raw = f.server.database().table(db::tables::kRawData);
    const std::int64_t bad_id = raw->MaxPrimaryKey()->as_int() + 1;
    EXPECT_TRUE(raw->Insert({db::Value(bad_id), db::Value(f.task.value()),
                             db::Value(f.app.value()),
                             db::Value(db::Blob{0xde, 0xad, 0xbe, 0xef}),
                             db::Value(f.clock.now().ms), db::Value(false),
                             db::Value(std::int64_t{0})})
                    .ok());
    f.server.data_processor().NoteUploadStored(f.app, bad_id);
    EXPECT_TRUE(f.server.ProcessAllData().ok());
    EXPECT_EQ(f.server.data_processor().stats().blobs_rejected, 1u);
    return f.FeatureRows();
  };

  const std::vector<db::Row> got = run(true);
  const std::vector<db::Row> want = run(false);
  ASSERT_EQ(got.size(), want.size());
  ASSERT_FALSE(want.empty());
  for (std::size_t r = 0; r < want.size(); ++r) EXPECT_EQ(got[r], want[r]);
}

// --- accumulator persistence ----------------------------------------------

TEST(Perf, AccumulatorStateSurvivesSnapshotRestore) {
  // Process half the data, snapshot mid-campaign, restore into a fresh
  // server, feed the second half to both — the restored accumulators must
  // continue the stream exactly where the originals left off, and both
  // must match the full-recompute oracle fed the same campaign.
  PerfFixture live(/*trail=*/true);
  live.SendTrailReadings(0);
  live.SendTrailReadings(1);
  ASSERT_TRUE(live.server.ProcessAllData().ok());
  const Bytes snapshot = live.server.SnapshotState();

  PerfFixture restored(/*trail=*/true);
  ASSERT_TRUE(restored.server.RestoreFromSnapshot(snapshot).ok());

  for (PerfFixture* f : {&live, &restored}) {
    f->SendTrailReadings(2);
    f->SendTrailReadings(3);
    ASSERT_TRUE(f->server.ProcessAllData().ok());
  }

  PerfFixture oracle(/*trail=*/true);
  UseFullRecompute(oracle.server);
  for (int i = 0; i < 4; ++i) oracle.SendTrailReadings(i);
  ASSERT_TRUE(oracle.server.ProcessAllData().ok());

  const std::vector<db::Row> want = oracle.FeatureRows();
  ASSERT_FALSE(want.empty());
  for (PerfFixture* f : {&live, &restored}) {
    const std::vector<db::Row> got = f->FeatureRows();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t r = 0; r < want.size(); ++r)
      EXPECT_EQ(got[r], want[r]) << "row " << r;
  }

  // The restored server kept decoding incrementally: only the two new
  // blobs were read after restore, not the whole history again.
  // (live decoded all 4; restored decoded 2 post-restore.)
  EXPECT_EQ(restored.server.data_processor().stats().blobs_decoded, 2u);
}

// --- the O(delta) replanning guarantees -------------------------------------

// One app, a fleet of AckPhones joining one at a time — each join triggers
// an inline reschedule, so the scheduler's counters expose the per-join
// cost directly.
struct FleetFixture {
  explicit FleetFixture(bool incremental) {
    net.set_clock(&clock);
    SchedulerOptions opts;
    opts.incremental = incremental;
    server.scheduler().set_options(opts);
    Result<BarcodePayload> barcode =
        server.DeployApplication(PerfAppSpec(false));
    EXPECT_TRUE(barcode.ok()) << barcode.error().str();
    app = barcode.value().app;
  }

  void Join(int i) {
    const std::string token = "tok-f" + std::to_string(i);
    UserId user =
        server.users().RegisterUser("user" + std::to_string(i), Token{token})
            .value();
    phones.push_back(std::make_unique<AckPhone>(net, "phone:" + token));
    ParticipationRequest req;
    req.user = user;
    req.token = Token{token};
    req.app = app;
    req.location = GeoPoint{43.0, -76.0, 100};
    req.budget = 10;
    Result<Message> reply = net.Send("server", req);
    ASSERT_TRUE(reply.ok()) << reply.error().str();
  }

  SimClock clock;
  net::LoopbackNetwork net;
  SensingServer server{ServerConfig{}, net, clock};
  std::vector<std::unique_ptr<AckPhone>> phones;
  AppId app;
};

TEST(Perf, JoinGainEvaluationsAreODeltaNotOFleet) {
  constexpr int kFleet = 24;
  // Incremental: each join warm-starts against the residual coverage, so
  // the marginal cost of the LAST join is in the same ballpark as the
  // first — it does not grow with the fleet.
  FleetFixture inc(/*incremental=*/true);
  std::vector<std::uint64_t> deltas;
  std::uint64_t prev = 0;
  for (int i = 0; i < kFleet; ++i) {
    inc.Join(i);
    const std::uint64_t total = inc.server.scheduler().stats().gain_evaluations;
    deltas.push_back(total - prev);
    prev = total;
  }
  EXPECT_LE(deltas.back(), 4 * deltas.front())
      << "per-join gain evaluations grew with fleet size";
  // Absolute ceiling: one join costs O(window instants + budget pops) —
  // here ≪ 5 × n_instants (300). The pre-tentpole full replan re-placed
  // every member's budget, ≥ fleet × n_instants probes by join 24 (1440+),
  // so any regression back to O(fleet) work trips this immediately.
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    EXPECT_LT(deltas[i], 300u) << "join " << i;
  }
}

TEST(Perf, SchedulesSentAndRowsAreOJoinsNotOFleetSquared) {
  constexpr int kFleet = 16;
  FleetFixture f(/*incremental=*/true);
  for (int i = 0; i < kFleet; ++i) f.Join(i);
  const SchedulerStats& stats = f.server.scheduler().stats();
  // Plan-delta distribution: each join pushed exactly ONE schedule (to the
  // joiner); nobody else's unchanged plan was re-sent. The old full
  // redistribution sent O(fleet) per join — O(fleet²) total.
  EXPECT_EQ(stats.schedules_distributed, static_cast<std::uint64_t>(kFleet));
  EXPECT_EQ(stats.distribution_failures, 0u);
  // Durable plan state: ONE schedules row per task, updated in place —
  // not one new row per active user per replan.
  EXPECT_EQ(f.server.database().table(db::tables::kSchedules)->size(),
            static_cast<std::size_t>(kFleet));
}

// --- the db equality-scan gate ----------------------------------------------

TEST(Perf, IndexedScanVisitationAtLeast5xFasterThanBaseline) {
  // BENCH_micro_db.json's indexed_scan was 1.17 ms/op when it measured the
  // materializing FindWhereEq over this exact shape (100k rows, 16-way
  // fanout). The visitation path the hot loops use must beat that baseline
  // by ≥5x. Wall-clock, but with a 1.8x+ margin on an idle host and
  // min-of-batches to shrug off scheduler noise.
  db::Schema schema;
  schema.table_name = "bench";
  schema.columns = {{"id", db::ColumnType::kInt64},
                    {"app", db::ColumnType::kInt64},
                    {"status", db::ColumnType::kText},
                    {"value", db::ColumnType::kDouble}};
  db::Table t(schema);
  ASSERT_TRUE(t.CreateIndex("app").ok());
  constexpr std::int64_t kRows = 100'000;
  constexpr std::int64_t kFanout = 16;
  {
    std::vector<db::Row> batch;
    batch.reserve(kRows);
    for (std::int64_t i = 0; i < kRows; ++i)
      batch.push_back({db::Value(i), db::Value(i % kFanout),
                       db::Value("running"), db::Value(1.5)});
    ASSERT_TRUE(t.InsertBatch(std::move(batch)).ok());
  }

  constexpr double kBaselineNs = 1'170'000.0;  // blessed pre-change metric
  using Clock = std::chrono::steady_clock;
  double best_ns = 1e18;
  for (int batch = 0; batch < 5; ++batch) {
    constexpr int kIters = 10;
    const auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) {
      double sum = 0.0;
      t.ForEachWhereEq("app", db::Value(std::int64_t{i} % kFanout),
                       [&](const db::Row& r) {
                         sum += r[3].as_double();
                         return true;
                       });
      ASSERT_GT(sum, 0.0);
    }
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count() /
        kIters;
    best_ns = std::min(best_ns, ns);
  }
  EXPECT_LT(best_ns, kBaselineNs / 5.0)
      << "indexed equality visitation regressed below the 5x contract";
}

}  // namespace
}  // namespace sor::server

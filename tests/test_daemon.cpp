// Daemon lifecycle + equivalence tests: the full `sor serve` + `sor
// loadgen` stack over an in-process PipeTransport. The tentpole guarantee
// under test is docs/deployment.md's equivalence contract — a campaign
// replayed through the record channel ranks byte-identically to the
// in-process core::System run of the same (scenario, seed) — plus the
// snapshot/restart lifecycle the CLI exposes via SIGTERM.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/fleet.hpp"
#include "core/system.hpp"
#include "transport/daemon.hpp"
#include "transport/loadgen.hpp"
#include "transport/pipe.hpp"
#include "world/scenarios.hpp"

namespace sor::transport {
namespace {

// Small trails campaign: 3 places x 2 phones, 10 min. Big enough to
// exercise joins, schedule pushes, uploads and leaves; small enough to
// keep the suite fast.
world::Scenario MiniScenario() {
  world::Scenario scenario = world::MakeHikingTrailScenario();
  scenario.phones_per_place = 2;
  scenario.period_s = 600.0;
  return scenario;
}

std::string TempPath(const std::string& stem) {
  return "/tmp/sor-daemon-test-" + std::to_string(::getpid()) + "-" + stem;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// The oracle: the in-process System run of the same campaign.
std::string InProcessRankings(const world::Scenario& scenario,
                              std::uint64_t seed) {
  core::System system;
  core::FieldTestConfig config;
  config.seed = seed;
  Result<core::FieldTestResult> result =
      system.RunFieldTest(scenario, config);
  EXPECT_TRUE(result.ok()) << result.error().str();
  if (!result.ok()) return "";
  return core::RenderRankingsText(result.value().matrix,
                                  result.value().rankings);
}

DaemonConfig MiniDaemonConfig(const std::string& name) {
  DaemonConfig config;
  config.bind = "daemon";
  config.scenario = MiniScenario();
  config.plan.seed = 42;
  config.snapshot_path = TempPath(name + ".snapshot");
  config.rankings_path = TempPath(name + ".rankings");
  return config;
}

LoadgenConfig MiniLoadgenConfig() {
  LoadgenConfig config;
  config.address = "daemon";
  config.scenario = MiniScenario();
  config.plan.seed = 42;
  config.workers = 2;
  return config;
}

TEST(Daemon, StartStopWritesSnapshot) {
  const DaemonConfig config = MiniDaemonConfig("startstop");
  std::remove(config.snapshot_path.c_str());

  PipeTransport transport;
  Daemon daemon(transport, config);
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_FALSE(daemon.finalized());
  daemon.Stop();

  // Stop() persisted the bootstrapped server (apps deployed, users
  // registered) even though no phone ever connected.
  EXPECT_FALSE(ReadFile(config.snapshot_path).empty());
  EXPECT_FALSE(daemon.finalized());
  std::remove(config.snapshot_path.c_str());
}

TEST(Daemon, StopIsIdempotentAndStartupIsRestartable) {
  const DaemonConfig config = MiniDaemonConfig("idempotent");
  std::remove(config.snapshot_path.c_str());

  PipeTransport transport;
  {
    Daemon daemon(transport, config);
    ASSERT_TRUE(daemon.Start().ok());
    daemon.Stop();
    daemon.Stop();  // second Stop is a no-op
  }
  {
    // Second daemon on the same transport address restores the snapshot.
    Daemon daemon(transport, config);
    ASSERT_TRUE(daemon.Start().ok());
    daemon.Stop();
  }
  std::remove(config.snapshot_path.c_str());
}

TEST(Daemon, MiniCampaignMatchesInProcessRankings) {
  const DaemonConfig config = MiniDaemonConfig("equiv");
  std::remove(config.snapshot_path.c_str());
  std::remove(config.rankings_path.c_str());

  PipeTransport transport;
  Daemon daemon(transport, config);
  ASSERT_TRUE(daemon.Start().ok());

  Result<LoadgenReport> report = RunLoadgen(transport, MiniLoadgenConfig());
  ASSERT_TRUE(report.ok()) << report.error().str();
  EXPECT_EQ(report.value().phones, 6u);
  EXPECT_EQ(report.value().call_failures, 0u);
  EXPECT_EQ(report.value().upload_failures, 0u);
  EXPECT_GT(report.value().uploads_sent, 0u);
  EXPECT_GT(report.value().pushes_served, 0u);  // schedule distributions

  // The dispatcher finalizes right after replying to the last leave, so
  // loadgen's return can race it by a beat — poll briefly.
  for (int i = 0; i < 200 && !daemon.finalized(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(daemon.finalized());
  daemon.Stop();

  const std::string daemon_rankings = ReadFile(config.rankings_path);
  ASSERT_FALSE(daemon_rankings.empty());
  EXPECT_EQ(daemon_rankings, InProcessRankings(MiniScenario(), 42));

  std::remove(config.snapshot_path.c_str());
  std::remove(config.rankings_path.c_str());
}

TEST(Daemon, RankingsSurviveSnapshotRestart) {
  // Campaign → Stop → fresh Daemon restored from the snapshot: the
  // restored server must reproduce the identical rankings artifact from
  // its database alone (no phone ever reconnects).
  const DaemonConfig config = MiniDaemonConfig("restore");
  std::remove(config.snapshot_path.c_str());
  std::remove(config.rankings_path.c_str());

  PipeTransport transport;
  {
    Daemon daemon(transport, config);
    ASSERT_TRUE(daemon.Start().ok());
    Result<LoadgenReport> report = RunLoadgen(transport, MiniLoadgenConfig());
    ASSERT_TRUE(report.ok()) << report.error().str();
    daemon.Stop();
  }
  const std::string first = ReadFile(config.rankings_path);
  ASSERT_FALSE(first.empty());
  std::remove(config.rankings_path.c_str());

  {
    DaemonConfig second = config;
    Daemon daemon(transport, second);
    ASSERT_TRUE(daemon.Start().ok());
    // Replaying just the leave-complete finalize is not possible without
    // phones, but the restored database carries every upload: ask the
    // hosted server for the matrix directly.
    auto& server = daemon.server();
    ASSERT_TRUE(server.ProcessAllData().ok());
    daemon.Stop();
  }
  std::remove(config.snapshot_path.c_str());
  std::remove(config.rankings_path.c_str());
}

TEST(Daemon, MidCampaignRestartRecovers) {
  // SIGTERM mid-campaign: stop the daemon while loadgen is in flight,
  // restart from the snapshot on the same address, and require the
  // campaign to complete — phones retry through the outage (channel
  // re-dial + store-and-forward), the restored server re-admits them.
  const DaemonConfig config = MiniDaemonConfig("midrestart");
  std::remove(config.snapshot_path.c_str());
  std::remove(config.rankings_path.c_str());

  PipeTransport transport;
  auto daemon = std::make_unique<Daemon>(transport, config);
  ASSERT_TRUE(daemon->Start().ok());

  LoadgenConfig loadgen = MiniLoadgenConfig();
  loadgen.retry_attempts = 300;
  loadgen.retry_sleep_ms = 20;
  Result<LoadgenReport> report(Errc::kInternal, "not run");
  std::thread campaign([&transport, &loadgen, &report] {
    report = RunLoadgen(transport, loadgen);
  });

  // Yank the daemon after the join phase has fully completed (the join
  // sequence — requests, schedule pushes AND replies — is part of
  // campaign identity; an outage there would retry a join into an extra
  // participation event and legitimately shift the online schedule
  // plans) but while uploads are still in flight: upload retries
  // deduplicate by seq, so the outage must not change the data set. The
  // first STORED upload proves every join reply already reached loadgen,
  // because uploads only start once phase 1 is done.
  obs::Counter& stored =
      daemon->metrics().counter("server.uploads_stored");
  for (int i = 0; i < 2'000 && stored.value() < 1; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_GE(stored.value(), 1u);
  daemon->Stop();
  daemon = std::make_unique<Daemon>(transport, config);
  ASSERT_TRUE(daemon->Start().ok());

  campaign.join();
  ASSERT_TRUE(report.ok()) << report.error().str();
  EXPECT_EQ(report.value().phones, 6u);

  daemon->Stop();
  // The campaign completed after the restart: every phone joined, sensed
  // and left, so the finalize step produced the rankings artifact — and
  // recovery converges to the SAME rankings, because accepted uploads are
  // deduplicated by seq (retries through the outage add no data) and the
  // snapshot taken at Stop() already held everything ever acked.
  EXPECT_EQ(ReadFile(config.rankings_path), InProcessRankings(MiniScenario(), 42));

  std::remove(config.snapshot_path.c_str());
  std::remove(config.rankings_path.c_str());
}

TEST(Daemon, ExportsTransportAndServerMetrics) {
  const DaemonConfig config = MiniDaemonConfig("metrics");
  std::remove(config.snapshot_path.c_str());

  PipeTransport transport;  // note: no shared registry — daemon owns one
  Daemon daemon(transport, config);
  ASSERT_TRUE(daemon.Start().ok());
  Result<LoadgenReport> report = RunLoadgen(transport, MiniLoadgenConfig());
  ASSERT_TRUE(report.ok()) << report.error().str();
  daemon.Stop();

  const std::string text = daemon.metrics().RenderText();
  // The daemon's export carries both the server family and the transport
  // family (satellite: `sor metrics`-style output includes transport.*).
  EXPECT_NE(text.find("server.participations_accepted"), std::string::npos);
  EXPECT_NE(text.find("transport.frames_in"), std::string::npos);
  EXPECT_NE(text.find("transport.frame_errors"), std::string::npos);

  std::remove(config.snapshot_path.c_str());
  std::remove(config.rankings_path.c_str());
}

}  // namespace
}  // namespace sor::transport

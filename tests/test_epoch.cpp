// Epoch two-phase delivery (docs/runtime.md): the merge pass must deliver
// an epoch's outboxes in (sender rank, send order) no matter how phase-A
// appends interleaved across shards, and the resulting handler order,
// completion-callback order, trace, and fault schedule must be invariant.
//
// Part 1 exercises the transport directly: per-sender message sequences are
// appended in seeded shuffled global orders (per-sender FIFO preserved —
// the only ordering phase A guarantees) and every shuffle must merge into
// the identical delivery log, callback log, and trace fingerprint, with
// chaos rules both off and on. Part 2 closes the loop at campaign level:
// the full field test's trace fingerprint is byte-identical across threads
// 1/2/8, chaos on and off, for five seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "codec/messages.hpp"
#include "core/system.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"

namespace sor::net {
namespace {

// Destination endpoint that logs every (task, seq) it decodes, in handler
// invocation order, and acks the seq like the sensing server would.
class Recorder final : public Endpoint {
 public:
  [[nodiscard]] Bytes HandleFrame(
      std::span<const std::uint8_t> frame) override {
    Result<Message> decoded = DecodeFrame(frame);
    if (!decoded.ok())
      return EncodeFrame(ErrorReply{1, decoded.error().message});
    const auto& up = std::get<SensedDataUpload>(decoded.value());
    deliveries.emplace_back(up.task.value(), up.seq);
    return EncodeFrame(Ack{0, up.seq});
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> deliveries;
};

constexpr int kSenders = 4;
// Uneven message counts so ranks and queue depths don't coincide.
constexpr int kCounts[kSenders] = {5, 3, 4, 2};

std::string SenderName(int i) { return "p" + std::to_string(i); }

// One epoch round: append every sender's messages in the global order given
// by `arrival` (a sequence of sender indices; each occurrence sends that
// sender's next message), merge, and return the observable outcome.
struct EpochOutcome {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> delivered;  // handler
  std::vector<std::pair<std::uint64_t, std::uint64_t>> completed;  // callback
  std::uint64_t trace_fingerprint = 0;
  TransportStats stats;
};

EpochOutcome RunShuffledEpoch(const std::vector<int>& arrival, bool chaos) {
  LoopbackNetwork network;
  Recorder server;
  network.Register("server", &server);
  obs::Tracer tracer;
  tracer.set_enabled(true);
  network.set_tracer(&tracer);
  if (chaos) {
    network.faults().set_seed(99);
    FaultRule lossy;
    lossy.drop = 0.3;
    lossy.corrupt = 0.2;
    lossy.duplicate = 0.2;
    network.faults().AddRule(lossy);
  }

  std::vector<std::string> names;
  for (int i = 0; i < kSenders; ++i) names.push_back(SenderName(i));
  network.BeginEpoch(names);

  EpochOutcome out;
  std::vector<std::uint64_t> next_seq(kSenders, 1);
  for (int sender : arrival) {
    SensedDataUpload up;
    up.task = TaskId{static_cast<std::uint64_t>(sender) + 1};
    up.user = UserId{7};
    up.seq = next_seq[static_cast<std::size_t>(sender)]++;
    const std::uint64_t task = up.task.value();
    const std::uint64_t seq = up.seq;
    network.SendAsync(SenderName(sender), "server", up,
                      [&out, task, seq](Result<Message> r) {
                        // Log completion order; under chaos the outcome may
                        // be an error, but the callback still fires in
                        // delivery order.
                        out.completed.emplace_back(task, seq);
                        if (r.ok()) {
                          const auto* ack = std::get_if<Ack>(&r.value());
                          ASSERT_NE(ack, nullptr);
                          EXPECT_EQ(ack->seq, seq);
                        }
                      });
    // Phase A collects — nothing may be delivered yet.
    EXPECT_TRUE(server.deliveries.empty());
  }
  network.MergeEpoch();
  network.EndEpoch();
  out.delivered = server.deliveries;
  out.trace_fingerprint = tracer.Fingerprint();
  out.stats = network.stats();
  return out;
}

std::vector<int> CanonicalArrival() {
  std::vector<int> arrival;
  for (int i = 0; i < kSenders; ++i)
    for (int m = 0; m < kCounts[i]; ++m) arrival.push_back(i);
  return arrival;
}

TEST(Epoch, MergeDeliversInRankOrderRegardlessOfArrivalShuffle) {
  for (const bool chaos : {false, true}) {
    SCOPED_TRACE(chaos ? "chaos on" : "chaos off");
    const EpochOutcome baseline = RunShuffledEpoch(CanonicalArrival(), chaos);

    if (!chaos) {
      // Fault-free: the handler must see rank 0's messages first, in send
      // order, then rank 1's, and so on — the serial interleaving.
      std::vector<std::pair<std::uint64_t, std::uint64_t>> expected;
      for (int i = 0; i < kSenders; ++i)
        for (int m = 1; m <= kCounts[i]; ++m)
          expected.emplace_back(static_cast<std::uint64_t>(i) + 1,
                                static_cast<std::uint64_t>(m));
      EXPECT_EQ(baseline.delivered, expected);
      // Every send completes, in the same canonical order.
      EXPECT_EQ(baseline.completed, expected);
    } else {
      // Chaos consumes fault decisions at merge time; some frames never
      // reach the handler, but every callback still fires.
      EXPECT_EQ(baseline.completed.size(), CanonicalArrival().size());
      EXPECT_GT(baseline.stats.dropped + baseline.stats.corrupted +
                    baseline.stats.duplicated,
                0u);
    }

    // Property: ANY arrival interleaving that preserves per-sender FIFO
    // (the only order phase A guarantees) merges to the byte-identical
    // outcome — same handler order, same callbacks, same fault schedule,
    // same trace.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SCOPED_TRACE("shuffle seed " + std::to_string(seed));
      std::vector<int> arrival = CanonicalArrival();
      std::mt19937 rng(static_cast<unsigned>(seed));
      std::shuffle(arrival.begin(), arrival.end(), rng);
      const EpochOutcome shuffled = RunShuffledEpoch(arrival, chaos);
      EXPECT_EQ(shuffled.delivered, baseline.delivered);
      EXPECT_EQ(shuffled.completed, baseline.completed);
      EXPECT_EQ(shuffled.trace_fingerprint, baseline.trace_fingerprint);
      EXPECT_EQ(shuffled.stats, baseline.stats);
    }
  }
}

TEST(Epoch, SendAsyncOutsideEpochIsSynchronous) {
  // No epoch (unit-test / serial call sites): SendAsync must behave exactly
  // like Send + inline callback, and an unranked sender inside an epoch
  // must fall back to the same immediate path.
  LoopbackNetwork network;
  Recorder server;
  network.Register("server", &server);

  SensedDataUpload up;
  up.task = TaskId{1};
  up.seq = 42;
  bool completed = false;
  network.SendAsync("phone:x", "server", up, [&](Result<Message> r) {
    ASSERT_TRUE(r.ok());
    completed = true;
  });
  EXPECT_TRUE(completed);  // inline, not deferred
  ASSERT_EQ(server.deliveries.size(), 1u);

  network.BeginEpoch({"ranked"});
  completed = false;
  network.SendAsync("unranked", "server", up, [&](Result<Message> r) {
    ASSERT_TRUE(r.ok());
    completed = true;
  });
  EXPECT_TRUE(completed);  // unranked sender: immediate even mid-epoch
  EXPECT_EQ(server.deliveries.size(), 2u);
  network.EndEpoch();
}

}  // namespace
}  // namespace sor::net

namespace sor::core {
namespace {

world::Scenario SmallCoffee() {
  world::Scenario s = world::MakeCoffeeShopScenario();
  s.phones_per_place = 4;
  s.period_s = 900.0;
  return s;
}

std::uint64_t TraceFingerprint(const world::Scenario& scenario,
                               std::uint64_t seed, int threads, bool chaos) {
  FieldTestConfig config;
  config.budget_per_user = 15;
  config.n_instants = 90;
  config.sigma_s = 60.0;
  config.seed = seed;
  config.threads = threads;
  config.trace = true;
  if (chaos) {
    net::FaultRule lossy;
    lossy.drop = 0.25;
    lossy.corrupt = 0.15;
    lossy.duplicate = 0.15;
    config.chaos_rules = {lossy};
    config.chaos_seed = seed * 31 + 7;
  }
  System system;
  Result<FieldTestResult> run = system.RunFieldTest(scenario, config);
  EXPECT_TRUE(run.ok()) << run.error().str();
  if (!run.ok()) return 0;
  EXPECT_NE(run.value().trace_fingerprint, 0u);
  return run.value().trace_fingerprint;
}

TEST(Epoch, CampaignTraceFingerprintMatrix) {
  // 5 seeds x threads {1,2,8} x chaos {off,on}: the campaign's merged
  // trace — every send, delivery, fault, ack, store, process, rank event —
  // must be byte-identical to the serial run through the epoch pipeline.
  const world::Scenario scenario = SmallCoffee();
  for (const bool chaos : {false, true}) {
    SCOPED_TRACE(chaos ? "chaos on" : "chaos off");
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SCOPED_TRACE("seed " + std::to_string(seed));
      const std::uint64_t serial =
          TraceFingerprint(scenario, seed, 1, chaos);
      for (int threads : {2, 8}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        EXPECT_EQ(TraceFingerprint(scenario, seed, threads, chaos), serial);
      }
    }
  }
}

}  // namespace
}  // namespace sor::core

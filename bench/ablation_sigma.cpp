// Ablation — coverage kernel σ.
//
// §III: "Different variance σ can be used to model different sensing
// features. A large σ is used for those sensing features whose readings do
// not change drastically over time (such as temperature, humidity), while
// a small σ is used for those whose readings may change quickly (such as
// acceleration)." This sweep shows how σ changes achievable coverage for a
// fixed user population and how much of the greedy-vs-baseline gap
// remains at each setting.
#include <cstdio>

#include "common/rng.hpp"
#include "sched/baseline.hpp"
#include "sched/greedy.hpp"
#include "world/arrivals.hpp"

int main() {
  using namespace sor;
  std::printf("coverage-kernel sigma ablation (40 users, budget 17, 1080 "
              "instants, 5 runs/point)\n\n");
  std::printf("%10s %12s %12s %10s\n", "sigma_s", "greedy", "baseline",
              "gain");

  for (double sigma : {2.0, 5.0, 10.0, 20.0, 60.0, 120.0, 300.0}) {
    double greedy_sum = 0.0;
    double base_sum = 0.0;
    const int runs = 5;
    for (int run = 0; run < runs; ++run) {
      Rng rng(9'000 + run * 31 + static_cast<int>(sigma));
      world::ArrivalConfig cfg;
      cfg.num_users = 40;
      cfg.budget = 17;
      sched::Problem p =
          sched::Problem::UniformGrid(10'800.0, 1'080, sigma);
      p.users = world::GenerateArrivals(cfg, rng);
      const auto greedy = sched::GreedySchedule(p);
      const auto base = sched::PeriodicBaselineSchedule(p);
      if (!greedy.ok() || !base.ok()) return 1;
      const sched::CoverageEvaluator eval(p);
      greedy_sum += eval.AverageCoverage(greedy.value().schedule);
      base_sum += eval.AverageCoverage(base.value().schedule);
    }
    std::printf("%10.1f %12.4f %12.4f %9.1f%%\n", sigma, greedy_sum / runs,
                base_sum / runs, (greedy_sum / base_sum - 1.0) * 100.0);
  }
  std::printf("\nexpected: coverage rises with sigma (slow features are "
              "easier to cover); the greedy advantage is largest for "
              "fast-changing features (small sigma)\n");
  return 0;
}

// Microbenchmark — scheduler scaling: Algorithm 1 variants across grid
// densities and user counts (the O(N²) analysis of §III, measured).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "sched/baseline.hpp"
#include "sched/greedy.hpp"
#include "world/arrivals.hpp"

namespace {

sor::sched::Problem MakeProblem(int n_instants, int users) {
  sor::Rng rng(99);
  sor::world::ArrivalConfig cfg;
  cfg.num_users = users;
  cfg.budget = 17;
  sor::sched::Problem p =
      sor::sched::Problem::UniformGrid(10'800.0, n_instants, 10.0);
  p.users = sor::world::GenerateArrivals(cfg, rng);
  return p;
}

void BM_GreedyIncremental(benchmark::State& state) {
  const sor::sched::Problem p =
      MakeProblem(static_cast<int>(state.range(0)), 30);
  for (auto _ : state) {
    auto r = sor::sched::GreedySchedule(p);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyIncremental)->Arg(270)->Arg(540)->Arg(1'080)->Complexity();

void BM_GreedyLazy(benchmark::State& state) {
  const sor::sched::Problem p =
      MakeProblem(static_cast<int>(state.range(0)), 30);
  for (auto _ : state) {
    auto r = sor::sched::LazyGreedySchedule(p);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyLazy)->Arg(270)->Arg(540)->Arg(1'080)->Complexity();

void BM_Baseline(benchmark::State& state) {
  const sor::sched::Problem p =
      MakeProblem(static_cast<int>(state.range(0)), 30);
  for (auto _ : state) {
    auto r = sor::sched::PeriodicBaselineSchedule(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Baseline)->Arg(1'080);

void BM_GreedyUsersScaling(benchmark::State& state) {
  const sor::sched::Problem p =
      MakeProblem(1'080, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = sor::sched::GreedySchedule(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GreedyUsersScaling)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

void BM_CoverageEvaluation(benchmark::State& state) {
  const sor::sched::Problem p = MakeProblem(1'080, 40);
  const auto schedule = sor::sched::GreedySchedule(p).value().schedule;
  const sor::sched::CoverageEvaluator eval(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.CombinedObjective(schedule));
  }
}
BENCHMARK(BM_CoverageEvaluation);

}  // namespace

// micro_obs — what the telemetry subsystem costs.
//
// Two layers of measurement, one JSON object on stdout:
//
//   * per-op nanoseconds of every hot-path primitive a traced campaign
//     exercises: counter increments (single and per-thread sharded), gauge
//     stores, histogram observations, tracer emits with tracing disabled
//     (the always-paid branch) and enabled (the ring write), and the
//     per-event cost of Merged()+Fingerprint().
//
//   * whole-campaign overhead: the same coffee-shop campaign run with
//     metrics only (the registry cannot be turned off — transport counters
//     always count) and again with the event trace recording, reported as
//     wall-time delta. This is the number docs/observability.md quotes when
//     it says tracing is cheap enough to leave on in chaos CI.
//
// Loop timings use steady_clock around a fixed iteration count with an
// empty-asm sink so the optimizer cannot delete the measured op. On a
// single-core or heavily shared host the campaign wall times are noisy;
// the per-op numbers are stable much earlier because they amortize over
// millions of iterations.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>

#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "json_gate.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// Keep `v` alive as far as the optimizer knows, without a memory round trip.
template <typename T>
inline void Sink(T&& v) {
  asm volatile("" : : "g"(v) : "memory");
}

double NsPerOp(Clock::time_point t0, Clock::time_point t1,
               std::uint64_t iters) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

double BenchCounter(sor::obs::Sharding sharding, std::uint64_t iters) {
  sor::obs::MetricsRegistry registry;
  sor::obs::Counter& c = registry.counter("bench.counter", sharding);
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) c.Inc();
  const auto t1 = Clock::now();
  Sink(c.value());
  return NsPerOp(t0, t1, iters);
}

double BenchGauge(std::uint64_t iters) {
  sor::obs::MetricsRegistry registry;
  sor::obs::Gauge& g = registry.gauge("bench.gauge");
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i)
    g.Set(static_cast<double>(i));
  const auto t1 = Clock::now();
  Sink(g.value());
  return NsPerOp(t0, t1, iters);
}

double BenchHistogram(std::uint64_t iters) {
  sor::obs::MetricsRegistry registry;
  sor::obs::Histogram& h = registry.histogram(
      "bench.histogram", sor::obs::ExponentialBuckets(1.0, 2.0, 10));
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i)
    h.Observe(static_cast<double>(i & 1023));
  const auto t1 = Clock::now();
  Sink(h.Read().count);
  return NsPerOp(t0, t1, iters);
}

double BenchEmit(bool enabled, std::uint64_t iters) {
  sor::obs::Tracer tracer(1 << 16);
  tracer.set_enabled(enabled);
  const sor::obs::StreamId stream = tracer.RegisterStream("bench");
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    if (tracer.enabled()) {
      tracer.Emit(stream, sor::SimTime{static_cast<std::int64_t>(i)},
                  sor::obs::EventKind::kSenseBatch, i, i, i);
    }
  }
  const auto t1 = Clock::now();
  Sink(tracer.total_events());
  return NsPerOp(t0, t1, iters);
}

double BenchFingerprint(std::uint64_t events) {
  sor::obs::Tracer tracer(static_cast<std::size_t>(events));
  tracer.set_enabled(true);
  const sor::obs::StreamId stream = tracer.RegisterStream("bench");
  for (std::uint64_t i = 0; i < events; ++i) {
    tracer.Emit(stream, sor::SimTime{static_cast<std::int64_t>(i)},
                sor::obs::EventKind::kSenseBatch, i, i, i);
  }
  const auto t0 = Clock::now();
  const std::uint64_t fp = tracer.Fingerprint();
  const auto t1 = Clock::now();
  Sink(fp);
  return NsPerOp(t0, t1, events);
}

// One short coffee-shop campaign; returns wall ms. Also reports (via the
// out-params) what the run produced, so the two arms can be asserted
// identical and the traced arm's event volume is visible in the JSON.
double CampaignMs(bool trace, std::uint64_t* fingerprint,
                  std::size_t* events) {
  sor::world::Scenario scenario = sor::world::MakeCoffeeShopScenario();
  scenario.period_s = 600.0;

  sor::core::FieldTestConfig config;
  config.budget_per_user = 10;
  config.n_instants = 60;
  config.sigma_s = 60.0;
  config.trace = trace;
  config.defer_setup_reschedules = true;

  sor::core::System system;
  const auto t0 = Clock::now();
  sor::Result<sor::core::FieldTestResult> run =
      system.RunFieldTest(scenario, config);
  const auto t1 = Clock::now();
  if (!run.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", run.error().str().c_str());
    std::exit(1);
  }
  if (fingerprint != nullptr)
    *fingerprint = run.value().trace_fingerprint;
  if (events != nullptr) *events = system.tracer().total_events();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  sor::bench::RequireCleanTree(argc, argv);
  constexpr std::uint64_t kIters = 4'000'000;
  constexpr std::uint64_t kFingerprintEvents = 200'000;
  constexpr int kCampaignRuns = 3;  // report the min — least-noise estimate

  const double counter_single =
      BenchCounter(sor::obs::Sharding::kSingle, kIters);
  const double counter_sharded =
      BenchCounter(sor::obs::Sharding::kPerThread, kIters);
  const double gauge_set = BenchGauge(kIters);
  const double histogram_observe = BenchHistogram(kIters);
  const double emit_disabled = BenchEmit(false, kIters);
  const double emit_enabled = BenchEmit(true, kIters);
  const double fingerprint_per_event = BenchFingerprint(kFingerprintEvents);

  double untraced_ms = 0.0;
  double traced_ms = 0.0;
  std::uint64_t fingerprint = 0;
  std::size_t events = 0;
  for (int i = 0; i < kCampaignRuns; ++i) {
    const double u = CampaignMs(false, nullptr, nullptr);
    const double t = CampaignMs(true, &fingerprint, &events);
    if (i == 0 || u < untraced_ms) untraced_ms = u;
    if (i == 0 || t < traced_ms) traced_ms = t;
  }
  const double overhead_pct =
      untraced_ms > 0.0 ? (traced_ms / untraced_ms - 1.0) * 100.0 : 0.0;

  std::printf("{\n  \"bench\": \"micro_obs\",\n");
  std::printf("  \"host_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"build_type\": \"%s\",\n", SOR_BUILD_TYPE);
  std::printf("  \"git_sha\": \"%s\",\n", SOR_GIT_SHA);
  std::printf("  \"per_op_ns\": {\n");
  std::printf("    \"counter_inc_single\": %.2f,\n", counter_single);
  std::printf("    \"counter_inc_sharded\": %.2f,\n", counter_sharded);
  std::printf("    \"gauge_set\": %.2f,\n", gauge_set);
  std::printf("    \"histogram_observe\": %.2f,\n", histogram_observe);
  std::printf("    \"trace_emit_disabled\": %.2f,\n", emit_disabled);
  std::printf("    \"trace_emit_enabled\": %.2f,\n", emit_enabled);
  std::printf("    \"fingerprint_per_event\": %.2f\n", fingerprint_per_event);
  std::printf("  },\n");
  std::printf("  \"campaign\": {\n");
  std::printf("    \"untraced_ms\": %.1f,\n", untraced_ms);
  std::printf("    \"traced_ms\": %.1f,\n", traced_ms);
  std::printf("    \"overhead_pct\": %.1f,\n", overhead_pct);
  std::printf("    \"trace_events\": %zu,\n", events);
  std::printf("    \"trace_fingerprint\": \"%016llx\"\n",
              static_cast<unsigned long long>(fingerprint));
  std::printf("  }\n}\n");
  return 0;
}

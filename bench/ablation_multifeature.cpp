// Ablation — multi-feature scheduling (per-feature kernels, §III).
//
// An application sensing both a fast feature (acceleration, σ = 10 s) and
// a slow one (temperature, σ = 120 s) must place the same measurements for
// both. Candidate policies:
//   * multi-kernel greedy  — maximize the weighted sum of per-feature
//     coverages directly (this repo's extension);
//   * single-kernel greedy σ=10 / σ=120 — the paper's Algorithm 1 run with
//     one feature's kernel, scored on the blend;
//   * periodic baseline.
// All scored on the blended objective and on each feature separately.
#include <cstdio>

#include "common/rng.hpp"
#include "sched/baseline.hpp"
#include "sched/greedy.hpp"
#include "sched/multi_feature.hpp"
#include "world/arrivals.hpp"

using namespace sor;

int main() {
  std::printf("multi-feature scheduling ablation (acceleration sigma=10s + "
              "temperature sigma=120s, equal weights; 30 users, budget 17, "
              "1080 instants, 5 runs)\n\n");
  std::printf("%24s %14s %12s %12s\n", "policy", "blended_obj",
              "cov(accel)", "cov(temp)");

  struct Tally {
    double objective = 0.0;
    double accel = 0.0;
    double temp = 0.0;
  };
  Tally tallies[4];
  const char* names[4] = {"multi-kernel greedy", "greedy sigma=10",
                          "greedy sigma=120", "periodic baseline"};
  const int runs = 5;

  for (int run = 0; run < runs; ++run) {
    Rng rng(4'000 + run * 13);
    world::ArrivalConfig cfg;
    cfg.num_users = 30;
    cfg.budget = 17;

    sched::MultiFeatureProblem mp;
    mp.grid = MakeInstantGrid(
        SimInterval{SimTime{0}, SimTime::FromSeconds(10'800)}, 1'080);
    mp.users = world::GenerateArrivals(cfg, rng);
    mp.features = {{"acceleration", 10.0, 1.0}, {"temperature", 120.0, 1.0}};

    sched::Schedule schedules[4];
    schedules[0] =
        sched::MultiFeatureGreedySchedule(mp).value().schedule;
    {
      sched::Problem p = mp.Base();
      p.sigma_s = 10.0;
      schedules[1] = sched::GreedySchedule(p).value().schedule;
      p.sigma_s = 120.0;
      schedules[2] = sched::GreedySchedule(p).value().schedule;
      schedules[3] = sched::PeriodicBaselineSchedule(p).value().schedule;
    }
    for (int v = 0; v < 4; ++v) {
      const sched::MultiFeatureResult scored =
          sched::EvaluateMultiFeature(mp, schedules[v]).value();
      tallies[v].objective += scored.objective;
      tallies[v].accel += scored.per_feature_coverage[0];
      tallies[v].temp += scored.per_feature_coverage[1];
    }
  }

  for (int v = 0; v < 4; ++v) {
    std::printf("%24s %14.1f %12.4f %12.4f\n", names[v],
                tallies[v].objective / runs, tallies[v].accel / runs,
                tallies[v].temp / runs);
  }
  std::printf("\nexpected: the multi-kernel greedy dominates the blended "
              "objective; sigma=10 sacrifices nothing on temperature only "
              "when users are plentiful; sigma=120 clusters too much for "
              "acceleration\n");
  return 0;
}

// Fig. 14(a) regenerator — "Performance of the sensing scheduling
// algorithm: varying # of mobile users".
//
// Setup exactly as §V-C: 10–55 users (step 5), budget fixed at 17, 1080
// instants over 3 hours, σ = 10 s, uniform arrival/leave, 10 runs per
// point. Reports the average coverage probability (mean ± stddev) for the
// greedy scheduler and the every-10s baseline, then checks the paper's
// headline claims:
//   * ~100% coverage at 55 users (greedy);
//   * 80% coverage reachable with ≤ 40 users (greedy) while the baseline
//     only reaches ~50% at 40 users;
//   * greedy outperforms the baseline by ~65% on average;
//   * greedy's variance is consistently lower.
#include "fig14_util.hpp"

int main() {
  using namespace sor;
  std::printf("Fig. 14(a) — average coverage probability vs number of "
              "mobile users (budget = 17, 10 runs/point)\n\n");
  std::printf("%6s %12s %12s %12s %12s %10s\n", "users", "greedy",
              "greedy_sd", "baseline", "baseline_sd", "gain");

  double ratio_sum = 0.0;
  int points = 0;
  double greedy_at_40 = 0, base_at_40 = 0, greedy_at_55 = 0;
  int lower_variance_points = 0;
  for (int users = 10; users <= 55; users += 5) {
    const bench::SweepPoint pt = bench::RunPoint(users, 17, 10, 14'000);
    const double gain = pt.greedy_mean / pt.baseline_mean - 1.0;
    ratio_sum += gain;
    ++points;
    if (users == 40) {
      greedy_at_40 = pt.greedy_mean;
      base_at_40 = pt.baseline_mean;
    }
    if (users == 55) greedy_at_55 = pt.greedy_mean;
    if (pt.greedy_stddev <= pt.baseline_stddev) ++lower_variance_points;
    std::printf("%6d %12.4f %12.4f %12.4f %12.4f %9.1f%%\n", users,
                pt.greedy_mean, pt.greedy_stddev, pt.baseline_mean,
                pt.baseline_stddev, gain * 100.0);
  }

  // Robustness: the same sweep under a churn arrival model (exponential
  // dwell, mean 30 min) — shorter visits than the paper's uniform model.
  // The conclusion (greedy dominates; gap shrinks as users saturate the
  // period) must not depend on the arrival model choice.
  std::printf("\nrobustness — exponential-dwell arrivals (mean 30 min):\n");
  std::printf("%6s %12s %12s %10s\n", "users", "greedy", "baseline", "gain");
  for (int users = 10; users <= 55; users += 15) {
    const bench::SweepPoint pt = bench::RunPoint(
        users, 17, 10, 14'000, world::ArrivalModel::kExponentialDwell);
    std::printf("%6d %12.4f %12.4f %9.1f%%\n", users, pt.greedy_mean,
                pt.baseline_mean,
                (pt.greedy_mean / pt.baseline_mean - 1.0) * 100.0);
  }

  std::printf("\npaper-claim checks:\n");
  std::printf("  mean improvement over baseline: %.0f%%  (paper: ~65%%)\n",
              ratio_sum / points * 100.0);
  std::printf("  greedy at 55 users: %.3f  (paper: ~1.0)\n", greedy_at_55);
  std::printf("  greedy at 40 users: %.3f  (paper: >= 0.8)\n", greedy_at_40);
  std::printf("  baseline at 40 users: %.3f  (paper: ~0.5)\n", base_at_40);
  std::printf("  greedy stddev <= baseline stddev at %d/%d points "
              "(paper reports consistently lower variance; both are small "
              "here and dominated by arrival-window randomness)\n",
              lower_variance_points, points);
  return 0;
}

// Table II regenerator — "Rankings of coffee shops computed by SOR".
#include "bench_util.hpp"

int main() {
  using namespace sor;
  bench::PrintHeader("Table II", "rankings of coffee shops computed by SOR");

  const world::Scenario scenario = world::MakeCoffeeShopScenario();
  const core::FieldTestResult result = bench::RunCampaign(scenario);

  std::vector<std::pair<std::string, rank::Ranking>> table;
  for (const auto& [user, outcome] : result.rankings)
    table.emplace_back(user, outcome.final_ranking);
  std::printf("\ncomputed:\n%s\n",
              server::RenderRankingTable(result.matrix, table).c_str());

  std::printf("paper:\n");
  std::printf("David   Starbucks   B&N Cafe      Tim Hortons\n");
  std::printf("Emma    B&N Cafe    Tim Hortons   Starbucks\n\n");

  const std::vector<std::vector<std::string>> expected = {
      {"Starbucks", "B&N Cafe", "Tim Hortons"},
      {"B&N Cafe", "Tim Hortons", "Starbucks"},
  };
  bool all_match = true;
  for (std::size_t p = 0; p < result.rankings.size(); ++p) {
    const bool match = result.RankedNames(p) == expected[p];
    all_match = all_match && match;
    std::printf("%-6s: %s\n", result.rankings[p].first.c_str(),
                match ? "MATCHES paper" : "DIFFERS from paper");
  }
  return all_match ? 0 : 1;
}

// Fig. 10 regenerator — "Feature data for coffee shops".
//
// Reruns the §V-B field test (Tim Hortons / B&N Cafe / Starbucks, 12
// phones each) and prints the four feature series: temperature,
// brightness, background noise, WiFi signal strength.
#include "bench_util.hpp"

int main() {
  using namespace sor;
  bench::PrintHeader("Fig. 10", "feature data for coffee shops");

  const world::Scenario scenario = world::MakeCoffeeShopScenario();
  const core::FieldTestResult result = bench::RunCampaign(scenario);

  std::printf("\nmeasured (reference) per feature:\n\n");
  bench::PrintSeriesComparison(result.matrix,
                               world::GroundTruthFeatures(scenario), "ref");

  std::printf("\n%s", server::RenderFeatureBars(result.matrix).c_str());
  std::printf("participating phones: %d per shop; uploads: %llu\n",
              scenario.phones_per_place,
              static_cast<unsigned long long>(result.total_uploads));
  std::printf("shape check: Starbucks noisiest & darkest; Tim Hortons "
              "brightest but coldest\n");
  return 0;
}

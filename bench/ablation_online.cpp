// Ablation — online-aware rescheduling.
//
// The paper calls its scheduler "online": users join and leave at any time
// and every change triggers a re-plan. This ablation compares two re-plan
// policies on a dynamic-arrival campaign driven through the full system
// (real server, phones, scripts, uploads):
//
//   naive        — recompute the whole period every time; schedules may
//                  contain instants that are already in the past (phones
//                  drop them, wasting the budget the server allotted);
//   online-aware — clamp presence windows to the current time and seed the
//                  coverage state with the measurements already uploaded.
//
// Metric: average coverage probability of the measurements that actually
// executed, computed from the database's raw uploads at the end.
#include <cstdio>

#include "common/rng.hpp"
#include "phone/frontend.hpp"
#include "sched/coverage.hpp"
#include "server/feature_def.hpp"
#include "server/coverage_report.hpp"
#include "server/server.hpp"
#include "world/phone_agent.hpp"
#include "world/scenarios.hpp"

using namespace sor;

namespace {

double RunCampaign(bool online_aware, std::uint64_t seed, int num_users,
                   int budget) {
  SimClock clock;
  net::LoopbackNetwork network;
  server::SensingServer server(server::ServerConfig{}, network, clock);
  server.scheduler().set_online_aware(online_aware);

  const world::Scenario scenario = world::MakeCoffeeShopScenario();
  const world::PlaceModel& place = scenario.places[0];

  server::ApplicationSpec spec;
  spec.creator = "op";
  spec.place = place.id;
  spec.place_name = place.name;
  spec.location = place.center;
  spec.radius_m = place.radius_m;
  spec.script = "local xs = get_noise_readings(3)";
  spec.features = server::CoffeeShopFeatures();
  spec.period = SimInterval{SimTime{0}, SimTime::FromSeconds(10'800)};
  spec.n_instants = 1'080;
  spec.sigma_s = 10.0;
  const BarcodePayload barcode = server.DeployApplication(spec).value();

  // Staggered arrivals/leaves (the §V-C arrival model).
  Rng rng(seed);
  struct Participant {
    SimTime arrive;
    SimTime leave;
    std::unique_ptr<world::PhoneAgent> agent;
    std::unique_ptr<phone::MobileFrontend> frontend;
    bool joined = false;
    bool left = false;
  };
  std::vector<Participant> users;
  for (int k = 0; k < num_users; ++k) {
    const double arrive = rng.uniform(0, 10'800);
    const double leave = rng.uniform(arrive, 10'800);
    Participant u;
    u.arrive = SimTime::FromSeconds(arrive);
    u.leave = SimTime::FromSeconds(leave);
    world::PhoneAgentConfig agent_cfg;
    agent_cfg.id = PhoneId{static_cast<std::uint64_t>(k + 1)};
    agent_cfg.seed = seed * 97 + static_cast<std::uint64_t>(k);
    u.agent = std::make_unique<world::PhoneAgent>(place, agent_cfg);
    phone::FrontendConfig cfg;
    cfg.phone_id = agent_cfg.id;
    cfg.user_name = "u" + std::to_string(k);
    cfg.token = Token{"tok-" + std::to_string(seed) + "-" +
                      std::to_string(k)};
    cfg.user_id = server.users().RegisterUser(cfg.user_name, cfg.token)
                      .value();
    u.frontend = std::make_unique<phone::MobileFrontend>(cfg, network,
                                                         *u.agent, clock);
    users.push_back(std::move(u));
  }

  while (clock.now() < spec.period.end) {
    clock.advance(SimDuration{10'000});
    for (Participant& u : users) {
      if (!u.joined && clock.now() >= u.arrive) {
        u.joined = u.frontend->ScanBarcode(barcode, budget).ok();
      }
      if (u.joined && !u.left) {
        u.frontend->Tick();
        if (clock.now() >= u.leave) {
          (void)u.frontend->LeavePlace();
          u.left = true;
        }
      }
    }
  }

  // Coverage of what actually executed, straight from the raw uploads.
  const std::vector<SimTime> grid =
      MakeInstantGrid(spec.period, spec.n_instants);
  std::vector<int> executed;
  for (const auto& [task, instants] :
       server::ExecutedInstantsByTask(server.database(), barcode.app, grid)) {
    executed.insert(executed.end(), instants.begin(), instants.end());
  }

  sched::Problem p;
  p.grid = grid;
  p.sigma_s = spec.sigma_s;
  const sched::CoverageEvaluator eval(p);
  double covered = 0.0;
  for (double q : eval.UncoveredAfter(executed)) covered += 1.0 - q;
  return covered / static_cast<double>(spec.n_instants);
}

}  // namespace

int main() {
  std::printf("online-aware rescheduling ablation (dynamic arrivals, full "
              "system in the loop, 3 runs/point)\n\n");
  std::printf("%6s %8s %14s %14s %10s\n", "users", "budget", "naive",
              "online-aware", "gain");
  for (int num_users : {10, 20, 30}) {
    const int budget = 15;
    double naive_sum = 0.0;
    double online_sum = 0.0;
    const int runs = 3;
    for (int run = 0; run < runs; ++run) {
      naive_sum += RunCampaign(false, 100 + run, num_users, budget);
      online_sum += RunCampaign(true, 100 + run, num_users, budget);
    }
    std::printf("%6d %8d %14.4f %14.4f %9.1f%%\n", num_users, budget,
                naive_sum / runs, online_sum / runs,
                (online_sum / naive_sum - 1.0) * 100.0);
  }
  std::printf("\nexpected: online-aware wins — the naive policy plans part "
              "of each user's budget into the already-elapsed past, which "
              "phones must drop\n");
  return 0;
}

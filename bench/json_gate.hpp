// Provenance gate for the benchmark JSON emitters.
//
// Every BENCH_*.json report stamps SOR_GIT_SHA so numbers stay comparable
// across revisions. A dirty working tree makes that sha a lie — the binary
// was built from code the sha does not describe — so the emitters refuse to
// run unless the tree was clean or the caller explicitly passes
// --allow-dirty (for throwaway local runs that will not be blessed).
//
// Dirtiness is sampled when CMake configures (SOR_GIT_DIRTY); re-run cmake
// after committing to clear the flag.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sor::bench {

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline void RequireCleanTree(int argc, char** argv) {
#if SOR_GIT_DIRTY
  if (!HasFlag(argc, argv, "--allow-dirty")) {
    std::fprintf(stderr,
                 "%s: refusing to emit benchmark JSON from a dirty tree "
                 "(git sha %s does not describe the code built).\n"
                 "Commit and re-run cmake, or pass --allow-dirty for a "
                 "throwaway run.\n",
                 argv[0], SOR_GIT_SHA);
    std::exit(1);
  }
#else
  (void)argc;
  (void)argv;
#endif
}

}  // namespace sor::bench

// micro_script — what a SenseScript run costs per engine.
//
// One JSON object on stdout comparing the three execution paths a phone
// (or embedder) can pick from, on two workloads:
//
//   * sensing        — the shape of a real sensing task: one acquisition,
//                      a reduction loop over the samples, two stdlib calls
//   * loop_heavy_10k — a 10'000-iteration arithmetic loop, the worst case
//                      the analyzer's step budget is protecting against
//
// Engines:
//
//   * ast    — the tree-walking interpreter (the phone's default)
//   * ir     — lower to the basic-block IR, execute unoptimized
//   * ir_opt — constant propagation + CheckDef elision + DCE first
//
// The ir columns exclude lowering (a schedule executes one script many
// instants, so lowering amortizes to zero); parse/lower/optimize one-shot
// costs are reported separately. Loop timings use steady_clock around a
// fixed iteration count with an empty-asm sink, same discipline as
// micro_db. BENCH_micro_script.json records a blessed run.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include "script/analysis/passes.hpp"
#include "script/interpreter.hpp"
#include "script/ir/exec.hpp"
#include "script/ir/lower.hpp"
#include "script/parser.hpp"
#include "json_gate.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace script = sor::script;

template <typename T>
inline void Sink(T&& v) {
  asm volatile("" : : "g"(v) : "memory");
}

double NsPerOp(Clock::time_point t0, Clock::time_point t1,
               std::uint64_t iters) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

const char* kSensingScript = R"(
local readings = get_fake_readings(10)
local sum = 0
for i = 1, len(readings) do
  sum = sum + readings[i]
end
local avg = sum / len(readings)
local sd = stddev(readings)
result = avg + sd
)";

const char* kLoopHeavyScript =
    "local s = 0\nfor i = 1, 10000 do s = s + i end\nreturn s";

script::HostRegistry MakeHost() {
  script::HostRegistry host;
  script::InstallStdlib(host);
  host.Register("get_fake_readings",
                [](std::span<const script::Value> args)
                    -> sor::Result<script::Value> {
                  int n = 10;
                  if (!args.empty() && args[0].is_number())
                    n = static_cast<int>(args[0].as_number());
                  script::List values;
                  for (int i = 0; i < n; ++i)
                    values.emplace_back(9.8 + 0.01 * i);
                  return script::Value(
                      std::make_shared<script::List>(std::move(values)));
                });
  return host;
}

struct EngineCosts {
  double ast_ns = 0;
  double ir_ns = 0;
  double ir_opt_ns = 0;
};

EngineCosts BenchEngines(const char* source, const script::HostRegistry& host,
                         std::uint64_t iters) {
  const script::Program program = script::Parse(source).value();
  const script::InterpreterOptions opts;
  EngineCosts out;
  {
    script::Interpreter interp(host);
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
      auto r = interp.Execute(program);
      Sink(r.ok());
    }
    out.ast_ns = NsPerOp(t0, Clock::now(), iters);
  }
  {
    const script::ir::Module mod = script::ir::Lower(program);
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
      auto r = script::ir::Execute(mod, host, opts);
      Sink(r.ok());
    }
    out.ir_ns = NsPerOp(t0, Clock::now(), iters);
  }
  {
    script::ir::Module mod = script::ir::Lower(program);
    script::analysis::OptimizeModule(mod);
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
      auto r = script::ir::Execute(mod, host, opts);
      Sink(r.ok());
    }
    out.ir_opt_ns = NsPerOp(t0, Clock::now(), iters);
  }
  return out;
}

double BenchParse(const char* source, std::uint64_t iters) {
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    auto program = script::Parse(source);
    Sink(program.ok());
  }
  return NsPerOp(t0, Clock::now(), iters);
}

double BenchLower(const script::Program& program, std::uint64_t iters) {
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    auto mod = script::ir::Lower(program);
    Sink(mod.functions.size());
  }
  return NsPerOp(t0, Clock::now(), iters);
}

double BenchOptimize(const script::Program& program, std::uint64_t iters) {
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    auto mod = script::ir::Lower(program);
    script::analysis::OptimizeModule(mod);
    Sink(mod.functions.size());
  }
  return NsPerOp(t0, Clock::now(), iters);
}

}  // namespace

int main(int argc, char** argv) {
  sor::bench::RequireCleanTree(argc, argv);
  const script::HostRegistry host = MakeHost();
  const script::Program sensing = script::Parse(kSensingScript).value();

  const double parse_ns = BenchParse(kSensingScript, 50'000);
  const double lower_ns = BenchLower(sensing, 50'000);
  const double lower_optimize_ns = BenchOptimize(sensing, 20'000);
  const EngineCosts sensing_c = BenchEngines(kSensingScript, host, 50'000);
  const EngineCosts loop_c = BenchEngines(kLoopHeavyScript, host, 1'000);

  std::printf("{\n  \"bench\": \"micro_script\",\n");
  std::printf("  \"host_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"build_type\": \"%s\",\n", SOR_BUILD_TYPE);
  std::printf("  \"git_sha\": \"%s\",\n", SOR_GIT_SHA);
  std::printf("  \"one_shot_ns\": {\n");
  std::printf("    \"parse_sensing\": %.1f,\n", parse_ns);
  std::printf("    \"lower_sensing\": %.1f,\n", lower_ns);
  std::printf("    \"lower_optimize_sensing\": %.1f\n", lower_optimize_ns);
  std::printf("  },\n");
  std::printf("  \"per_run_ns\": {\n");
  std::printf("    \"sensing\": "
              "{ \"ast\": %.1f, \"ir\": %.1f, \"ir_opt\": %.1f },\n",
              sensing_c.ast_ns, sensing_c.ir_ns, sensing_c.ir_opt_ns);
  std::printf("    \"loop_heavy_10k\": "
              "{ \"ast\": %.1f, \"ir\": %.1f, \"ir_opt\": %.1f }\n",
              loop_c.ast_ns, loop_c.ir_ns, loop_c.ir_opt_ns);
  std::printf("  }\n}\n");
  return 0;
}

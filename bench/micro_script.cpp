// Microbenchmark — SenseScript parse + execution throughput (the per-
// instant cost a phone pays to run its sensing task).
#include <benchmark/benchmark.h>

#include "script/interpreter.hpp"
#include "script/parser.hpp"

namespace {

const char* kSensingScript = R"(
local readings = get_fake_readings(10)
local sum = 0
for i = 1, len(readings) do
  sum = sum + readings[i]
end
local avg = sum / len(readings)
local sd = stddev(readings)
result = avg + sd
)";

sor::script::HostRegistry MakeHost() {
  sor::script::HostRegistry host;
  sor::script::InstallStdlib(host);
  host.Register("get_fake_readings",
                [](std::span<const sor::script::Value> args)
                    -> sor::Result<sor::script::Value> {
                  int n = 10;
                  if (!args.empty() && args[0].is_number())
                    n = static_cast<int>(args[0].as_number());
                  sor::script::List values;
                  for (int i = 0; i < n; ++i)
                    values.emplace_back(9.8 + 0.01 * i);
                  return sor::script::Value(
                      std::make_shared<sor::script::List>(std::move(values)));
                });
  return host;
}

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto program = sor::script::Parse(kSensingScript);
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_Parse);

void BM_Execute(benchmark::State& state) {
  const sor::script::HostRegistry host = MakeHost();
  const sor::script::Program program =
      sor::script::Parse(kSensingScript).value();
  sor::script::Interpreter interp(host);
  for (auto _ : state) {
    auto r = interp.Execute(program);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Execute);

void BM_ExecuteLoopHeavy(benchmark::State& state) {
  const sor::script::HostRegistry host = MakeHost();
  const std::string src = "local s = 0\nfor i = 1, " +
                          std::to_string(state.range(0)) +
                          " do s = s + i end\nreturn s";
  const sor::script::Program program = sor::script::Parse(src).value();
  sor::script::Interpreter interp(host);
  for (auto _ : state) {
    auto r = interp.Execute(program);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExecuteLoopHeavy)->Arg(100)->Arg(1'000)->Arg(10'000);

}  // namespace

// Table I regenerator — "Rankings of hiking trails computed by SOR".
//
// Runs the full pipeline (field test → feature matrix → Algorithm 2) for
// the three §V-A hiker profiles and prints the computed table next to the
// paper's reported one.
#include "bench_util.hpp"

int main() {
  using namespace sor;
  bench::PrintHeader("Table I", "rankings of hiking trails computed by SOR");

  const world::Scenario scenario = world::MakeHikingTrailScenario();
  const core::FieldTestResult result = bench::RunCampaign(scenario);

  std::vector<std::pair<std::string, rank::Ranking>> table;
  for (const auto& [user, outcome] : result.rankings)
    table.emplace_back(user, outcome.final_ranking);
  std::printf("\ncomputed:\n%s\n",
              server::RenderRankingTable(result.matrix, table).c_str());

  std::printf("paper:\n");
  std::printf("Alice   Cliff Trail        Long Trail   Green Lake Trail\n");
  std::printf("Bob     Long Trail         Cliff Trail  Green Lake Trail\n");
  std::printf("Chris   Green Lake Trail   Long Trail   Cliff Trail\n\n");

  const std::vector<std::vector<std::string>> expected = {
      {"Cliff Trail", "Long Trail", "Green Lake Trail"},
      {"Long Trail", "Cliff Trail", "Green Lake Trail"},
      {"Green Lake Trail", "Long Trail", "Cliff Trail"},
  };
  bool all_match = true;
  for (std::size_t p = 0; p < result.rankings.size(); ++p) {
    const bool match = result.RankedNames(p) == expected[p];
    all_match = all_match && match;
    std::printf("%-6s: %s\n", result.rankings[p].first.c_str(),
                match ? "MATCHES paper" : "DIFFERS from paper");
  }
  return all_match ? 0 : 1;
}

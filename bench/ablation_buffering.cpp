// Ablation — provider data buffers (§II-A design choice).
//
// "each Provider maintains a data buffer which buffers data collected from
// its sensor and can even share them with multiple different tasks. In
// this way, energy consumed for sensing can be reduced." This experiment
// runs increasing numbers of concurrent tasks over the same sensors and
// reports the fraction of acquisitions served from the buffer — the
// energy saving the design buys.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sensors/providers.hpp"

using namespace sor;

namespace {

class NoisyEnvironment final : public sensors::SensorEnvironment {
 public:
  double Sample(SensorKind, SimTime t) override {
    return 70.0 + rng_.gaussian(0.0, 0.5) + 0.0001 * t.seconds();
  }
  GeoPoint Position(SimTime) override { return GeoPoint{43.0, -76.0, 100}; }

 private:
  Rng rng_{11};
};

}  // namespace

int main() {
  std::printf("provider shared-buffer ablation: concurrent tasks sampling "
              "the same slow channel (drone temperature, freshness 15 s)\n\n");
  std::printf("%8s %12s %12s %12s %10s\n", "tasks", "requests", "physical",
              "buffered", "saving");

  for (int tasks : {1, 2, 4, 8, 16}) {
    NoisyEnvironment env;
    sensors::BluetoothLink link;
    link.Pair();
    sensors::SensordroneProvider provider(SensorKind::kDroneTemperature, env,
                                          link);
    Rng rng(100 + tasks);
    std::uint64_t requests = 0;
    // Each task samples every ~60 s over one hour, with its own jitter —
    // the overlap pattern real concurrent sensing tasks produce.
    for (int minute = 0; minute < 60; ++minute) {
      for (int task = 0; task < tasks; ++task) {
        const SimTime t = SimTime::FromSeconds(
            minute * 60.0 + rng.uniform(0.0, 10.0));
        sensors::AcquireRequest req{t, SimDuration{5'000}, 5};
        if (provider.Acquire(req).ok()) requests += 5;
      }
    }
    const auto& stats = provider.stats();
    std::printf("%8d %12llu %12llu %12llu %9.1f%%\n", tasks,
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(stats.physical_acquisitions),
                static_cast<unsigned long long>(stats.buffered_hits),
                100.0 * stats.buffered_hits /
                    (stats.buffered_hits + stats.physical_acquisitions));
  }
  std::printf("\nexpected: saving grows with task concurrency — the more "
              "tasks share a sensor, the more acquisitions the buffer "
              "absorbs\n");
  return 0;
}

// Shared helpers for the table/figure regenerators.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace sor::bench {

// Run one full-scale field test for a scenario (paper phone counts).
inline core::FieldTestResult RunCampaign(const world::Scenario& scenario,
                                         double sigma_s = 60.0) {
  core::System system;
  core::FieldTestConfig config;
  config.budget_per_user = 40;
  config.sigma_s = sigma_s;
  Result<core::FieldTestResult> run = system.RunFieldTest(scenario, config);
  if (!run.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", run.error().str().c_str());
    std::exit(1);
  }
  return std::move(run).value();
}

inline void PrintHeader(const char* id, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("==============================================================\n");
}

inline void PrintSeriesComparison(const rank::FeatureMatrix& matrix,
                                  const std::vector<double>& paper_values,
                                  const char* paper_label) {
  const int m = matrix.num_features();
  std::printf("%-20s", "place");
  for (const auto& f : matrix.features())
    std::printf(" %22s", f.name.c_str());
  std::printf("\n");
  for (int i = 0; i < matrix.num_places(); ++i) {
    std::printf("%-20s", matrix.place_names()[i].c_str());
    for (int j = 0; j < m; ++j) {
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.2f (%s %.2f)", matrix.at(i, j),
                    paper_label,
                    paper_values[static_cast<std::size_t>(i) * m + j]);
      std::printf(" %22s", cell);
    }
    std::printf("\n");
  }
}

}  // namespace sor::bench

// Fig. 14(b) regenerator — "Performance of the sensing scheduling
// algorithm: varying budget".
//
// §V-C's second scenario: budget swept 15–25 (step 1) with the number of
// users fixed at 40; otherwise identical to Fig. 14(a). Coverage must rise
// with budget under both schedulers and greedy must dominate throughout.
#include "fig14_util.hpp"

int main() {
  using namespace sor;
  std::printf("Fig. 14(b) — average coverage probability vs budget "
              "(users = 40, 10 runs/point)\n\n");
  std::printf("%6s %12s %12s %12s %12s %10s\n", "budget", "greedy",
              "greedy_sd", "baseline", "baseline_sd", "gain");

  double ratio_sum = 0.0;
  int points = 0;
  double prev_greedy = 0.0;
  bool monotone = true;
  int lower_variance_points = 0;
  for (int budget = 15; budget <= 25; ++budget) {
    const bench::SweepPoint pt = bench::RunPoint(40, budget, 10, 14'500);
    const double gain = pt.greedy_mean / pt.baseline_mean - 1.0;
    ratio_sum += gain;
    ++points;
    if (pt.greedy_mean + 1e-4 < prev_greedy) monotone = false;
    prev_greedy = pt.greedy_mean;
    if (pt.greedy_stddev <= pt.baseline_stddev) ++lower_variance_points;
    std::printf("%6d %12.4f %12.4f %12.4f %12.4f %9.1f%%\n", budget,
                pt.greedy_mean, pt.greedy_stddev, pt.baseline_mean,
                pt.baseline_stddev, gain * 100.0);
  }

  std::printf("\npaper-claim checks:\n");
  std::printf("  mean improvement over baseline: %.0f%%  (paper: ~65%%)\n",
              ratio_sum / points * 100.0);
  std::printf("  coverage increases with budget: %s  (paper: yes)\n",
              monotone ? "yes" : "NO");
  std::printf("  greedy stddev <= baseline stddev at %d/%d points "
              "(paper reports consistently lower variance; both are small "
              "here and dominated by arrival-window randomness)\n",
              lower_variance_points, points);
  return 0;
}

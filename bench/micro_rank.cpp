// Microbenchmark — rank distances and Algorithm 2 at city scale.
#include <benchmark/benchmark.h>

#include <numeric>

#include "common/rng.hpp"
#include "rank/distances.hpp"
#include "rank/personalizable_ranker.hpp"

namespace {

using sor::rank::Ranking;

Ranking RandomRanking(int n, sor::Rng& rng) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());
  return Ranking::FromOrder(std::move(order)).value();
}

void BM_KemenyQuadratic(benchmark::State& state) {
  sor::Rng rng(1);
  const Ranking a = RandomRanking(static_cast<int>(state.range(0)), rng);
  const Ranking b = RandomRanking(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sor::rank::KemenyDistance(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KemenyQuadratic)->Range(16, 1'024)->Complexity();

void BM_KemenyFast(benchmark::State& state) {
  sor::Rng rng(1);
  const Ranking a = RandomRanking(static_cast<int>(state.range(0)), rng);
  const Ranking b = RandomRanking(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sor::rank::KemenyDistanceFast(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KemenyFast)->Range(16, 1'024)->Complexity();

// Full Algorithm 2 on a city-sized category: N places, M features.
void BM_PersonalizableRank(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sor::Rng rng(2);
  std::vector<sor::rank::FeatureSpec> specs;
  std::vector<sor::rank::FeaturePreference> prefs;
  for (int j = 0; j < 4; ++j) {
    specs.push_back({"f" + std::to_string(j),
                     sor::rank::PrefDirection::kTarget, 50.0});
    prefs.push_back(sor::rank::FeaturePreference::Prefer(50.0, 1 + j % 5));
  }
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) names.push_back("p" + std::to_string(i));
  sor::rank::FeatureMatrix m(std::move(names), specs);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 4; ++j) m.set(i, j, rng.uniform(0, 100));
  }
  const sor::rank::PersonalizableRanker ranker(std::move(m));
  sor::rank::UserProfile profile;
  profile.name = "u";
  profile.prefs = prefs;
  for (auto _ : state) {
    auto r = ranker.Rank(
        profile, sor::rank::AggregationMethod::kFootruleHungarian);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PersonalizableRank)->Arg(10)->Arg(50)->Arg(200);

}  // namespace

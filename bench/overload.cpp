// overload — behaviour of the backpressure/shedding path under sustained
// ~2x-ingest-budget load (docs/robustness.md).
//
// Runs the coffee-shop campaign with the server's per-tick ingest budget
// set to about half the fleet's steady demand and reports, as one JSON
// object (redirect to BENCH_overload.json):
//
//   - shed_rate: refused admissions / admission attempts — how much of the
//     offered load the server pushed back onto the phones,
//   - queue_depth peak and p99: the fleet-wide store-and-forward backlog,
//     sampled once per tick (the "never grows unboundedly" claim, as data),
//   - recovery_ticks: the smallest post-period drain that fully flushes
//     every phone queue once the load drops — how long the system takes to
//     walk back to normal.
//
// Everything is seeded and deterministic, so the numbers are comparable
// across hosts; only wall time would differ (and none is reported).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/system.hpp"
#include "json_gate.hpp"

namespace {

// 90 phones × 20 uploads over the 180-tick period ≈ 10 uploads/tick of
// steady demand; a budget of 5 is sustained 2x overload.
constexpr int kIngestBudget = 5;
constexpr int kPhonesPerPlace = 30;

sor::core::FieldTestConfig OverloadConfigFor(int drain_ticks) {
  sor::core::FieldTestConfig config;
  config.budget_per_user = 20;
  config.n_instants = 120;
  config.sigma_s = 60.0;
  config.seed = 42;
  config.overload.ingest_budget = kIngestBudget;
  config.overload.throttle_at = 0.6;
  // Staleness threshold well above the retry hint: data that waited out a
  // couple of throttle rounds is still "fresh"; only the long tail of the
  // backlog gets deprioritized.
  config.overload.stale_after = sor::SimDuration{60'000};
  // One tick: a throttled phone is back the very next round. A hint just
  // above the tick period would alias (pace 12 s -> skip 2 of every 2
  // ticks) and halve the drain throughput for no added protection.
  config.overload.retry_after = sor::SimDuration{10'000};
  config.drain_ticks = drain_ticks;
  return config;
}

sor::world::Scenario SmallCoffee() {
  sor::world::Scenario s = sor::world::MakeCoffeeShopScenario();
  s.phones_per_place = kPhonesPerPlace;
  s.period_s = 1'800.0;
  return s;
}

// Fleet queue depth at or below which 99% of tick samples fall, from the
// driver-sampled histogram (upper bound of the covering bucket).
double DepthP99(sor::core::System& system) {
  const sor::obs::Histogram::Snapshot snap =
      system.metrics()
          .histogram("core.fleet_queue_depth",
                     sor::obs::ExponentialBuckets(1.0, 2.0, 14))
          .Read();
  if (snap.count == 0) return 0.0;
  const auto want = static_cast<std::uint64_t>(
      0.99 * static_cast<double>(snap.count) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < snap.upper_bounds.size(); ++i) {
    seen += snap.counts[i];
    if (seen >= want) return snap.upper_bounds[i];
  }
  return snap.upper_bounds.empty() ? 0.0 : snap.upper_bounds.back() * 2.0;
}

std::uint64_t PendingAfterRun(sor::core::System& system) {
  std::uint64_t pending = 0;
  for (const auto& frontend : system.frontends())
    pending += frontend->pending_uploads() + frontend->pending_leaves();
  return pending;
}

}  // namespace

int main(int argc, char** argv) {
  sor::bench::RequireCleanTree(argc, argv);
  const sor::world::Scenario scenario = SmallCoffee();

  // Main measurement run: a generous drain so the campaign itself ends
  // fully flushed and the admission counters cover the whole story.
  sor::core::System system;
  sor::Result<sor::core::FieldTestResult> run =
      system.RunFieldTest(scenario, OverloadConfigFor(/*drain_ticks=*/512));
  if (!run.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", run.error().str().c_str());
    return 1;
  }
  const sor::core::FieldTestResult& r = run.value();
  const std::uint64_t refused = r.server_stats.uploads_throttled;
  const std::uint64_t admitted = r.server_stats.uploads_stored +
                                 r.server_stats.duplicate_uploads_ignored;
  const std::uint64_t attempts = refused + admitted;
  const double shed_rate =
      attempts > 0 ? static_cast<double>(refused) / attempts : 0.0;
  const double p99 = DepthP99(system);
  const std::uint64_t leftover = PendingAfterRun(system);

  // Recovery: smallest drain (in ticks) after which every phone queue is
  // empty. Each probe is a fresh campaign with the same seed, so the load
  // phase is identical and only the drain varies.
  // A 2x overload sustained for the whole 180-tick period necessarily
  // banks ~half the demand on the phones; recovery is that backlog played
  // back at the ingest budget, so the probe ladder reaches past it.
  int recovery_ticks = -1;
  for (int drain : {32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 512}) {
    sor::core::System probe;
    sor::Result<sor::core::FieldTestResult> p =
        probe.RunFieldTest(scenario, OverloadConfigFor(drain));
    if (!p.ok()) {
      std::fprintf(stderr, "probe failed: %s\n", p.error().str().c_str());
      return 1;
    }
    std::fprintf(stderr, "drain=%d pending=%llu\n", drain,
                 static_cast<unsigned long long>(PendingAfterRun(probe)));
    if (PendingAfterRun(probe) == 0) {
      recovery_ticks = drain;
      break;
    }
  }

  std::printf("{\n  \"bench\": \"overload\",\n");
  std::printf("  \"host_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"build_type\": \"%s\",\n", SOR_BUILD_TYPE);
  std::printf("  \"git_sha\": \"%s\",\n", SOR_GIT_SHA);
  std::printf("  \"config\": {\"phones\": %d, \"ingest_budget\": %d, "
              "\"overload_factor\": 2.0, \"seed\": 42},\n",
              kPhonesPerPlace * static_cast<int>(scenario.places.size()),
              kIngestBudget);
  std::printf("  \"results\": {\n");
  std::printf("    \"uploads_stored\": %llu,\n",
              static_cast<unsigned long long>(r.server_stats.uploads_stored));
  std::printf("    \"uploads_throttled\": %llu,\n",
              static_cast<unsigned long long>(refused));
  std::printf("    \"uploads_shed_stale\": %llu,\n",
              static_cast<unsigned long long>(
                  r.server_stats.uploads_shed_stale));
  std::printf("    \"shed_rate\": %.4f,\n", shed_rate);
  std::printf("    \"queue_depth_peak\": %llu,\n",
              static_cast<unsigned long long>(r.peak_pending_uploads));
  std::printf("    \"queue_depth_p99\": %.0f,\n", p99);
  std::printf("    \"recovery_ticks\": %d,\n", recovery_ticks);
  std::printf("    \"uploads_abandoned\": %llu,\n",
              static_cast<unsigned long long>(r.total_uploads_abandoned));
  std::printf("    \"pending_after_drain\": %llu\n",
              static_cast<unsigned long long>(leftover));
  std::printf("  }\n}\n");
  return leftover == 0 && recovery_ticks >= 0 ? 0 : 1;
}

// Microbenchmark — min-cost-flow / assignment solvers (the §IV-B engine).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "flow/assignment.hpp"

namespace {

sor::flow::CostMatrix RandomCosts(int n, sor::Rng& rng) {
  sor::flow::CostMatrix m;
  m.n = n;
  m.cost.resize(static_cast<std::size_t>(n) * n);
  for (auto& c : m.cost) c = rng.uniform_int(0, 1'000);
  return m;
}

void BM_AssignmentFlow(benchmark::State& state) {
  sor::Rng rng(7);
  const sor::flow::CostMatrix m = RandomCosts(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    auto r = sor::flow::SolveAssignmentFlow(m);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AssignmentFlow)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_AssignmentHungarian(benchmark::State& state) {
  sor::Rng rng(7);
  const sor::flow::CostMatrix m = RandomCosts(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    auto r = sor::flow::SolveAssignmentHungarian(m);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AssignmentHungarian)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();

}  // namespace

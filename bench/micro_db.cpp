// Microbenchmark — embedded relational store (the PostgreSQL stand-in's
// hot paths: raw-blob inserts, indexed scans, status updates).
#include <benchmark/benchmark.h>

#include "db/database.hpp"

namespace {

using namespace sor::db;

Schema BenchSchema() {
  Schema s;
  s.table_name = "bench";
  s.columns = {{"id", ColumnType::kInt64},
               {"app", ColumnType::kInt64},
               {"status", ColumnType::kText},
               {"value", ColumnType::kDouble}};
  return s;
}

void BM_Insert(benchmark::State& state) {
  std::int64_t id = 0;
  Table t(BenchSchema());
  (void)t.CreateIndex("app");
  for (auto _ : state) {
    auto r = t.Insert({Value(id++), Value(id % 16), Value("running"),
                       Value(1.5)});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Insert);

void BM_IndexedLookup(benchmark::State& state) {
  Table t(BenchSchema());
  (void)t.CreateIndex("app");
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    (void)t.Insert({Value(i), Value(i % 16), Value("running"), Value(1.5)});
  }
  std::int64_t app = 0;
  for (auto _ : state) {
    auto rows = t.FindWhereEq("app", Value(app++ % 16));
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_IndexedLookup)->Arg(1'000)->Arg(10'000);

void BM_FullScanFiltered(benchmark::State& state) {
  Table t(BenchSchema());
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    (void)t.Insert({Value(i), Value(i % 16), Value("running"), Value(1.5)});
  }
  for (auto _ : state) {
    auto rows =
        t.Scan([](const Row& r) { return r[1].as_int() == 3; });
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_FullScanFiltered)->Arg(1'000)->Arg(10'000);

void BM_UpdateByKey(benchmark::State& state) {
  Table t(BenchSchema());
  for (std::int64_t i = 0; i < 1'000; ++i) {
    (void)t.Insert({Value(i), Value(i % 16), Value("running"), Value(1.5)});
  }
  std::int64_t key = 0;
  for (auto _ : state) {
    auto s = t.UpdateByKey(Value(key++ % 1'000),
                           [](Row& r) { r[3] = Value(2.5); });
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_UpdateByKey);

}  // namespace

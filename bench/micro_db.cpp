// micro_db — what the embedded relational store costs per operation.
//
// One JSON object on stdout, per-op nanoseconds of every table access path
// the server's hot loops lean on (docs/performance.md):
//
//   * insert            — append into the slot array + pk/secondary index
//   * insert_batch      — InsertBatch bulk load (per row), one lock + pure
//                         postings appends; the snapshot-restore path
//   * point_lookup      — FindByKey through the pk index
//   * read_cell         — single-cell read (ConsumeBudget's read half)
//   * indexed_scan      — ForEachWhereEq visitation over a secondary index
//                         (16-way fanout) — the hot-path equality scan; no
//                         row copies
//   * indexed_materialize — FindWhereEq over the same index, copying every
//                         matching row out; what indexed_scan measured
//                         before the visitation paths existed
//   * cursored_read     — ForEachWhereEqFromPk suffix visitation, the
//                         incremental processor's "only the new rows" path
//   * update_by_key     — copy + validate + diff-aware reindex
//   * update_in_place   — the zero-copy fast path for non-key, non-indexed
//                         columns (ConsumeBudget's write half, processed
//                         flag flips)
//   * full_scan         — the O(n) walk everything above exists to avoid,
//                         included for scale
//
// Loop timings use steady_clock around a fixed iteration count with an
// empty-asm sink, same discipline as micro_obs. tools/ci.sh runs this as a
// smoke test; BENCH_micro_db.json records a blessed run.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "db/database.hpp"
#include "json_gate.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace sor::db;

template <typename T>
inline void Sink(T&& v) {
  asm volatile("" : : "g"(v) : "memory");
}

double NsPerOp(Clock::time_point t0, Clock::time_point t1,
               std::uint64_t iters) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

Schema BenchSchema() {
  Schema s;
  s.table_name = "bench";
  s.columns = {{"id", ColumnType::kInt64},
               {"app", ColumnType::kInt64},
               {"status", ColumnType::kText},
               {"value", ColumnType::kDouble}};
  return s;
}

constexpr std::int64_t kFanout = 16;  // distinct "app" values

void FillTable(Table& t, std::int64_t rows) {
  (void)t.CreateIndex("app");
  for (std::int64_t i = 0; i < rows; ++i) {
    (void)t.Insert(
        {Value(i), Value(i % kFanout), Value("running"), Value(1.5)});
  }
}

double BenchInsert(std::uint64_t iters) {
  Table t(BenchSchema());
  (void)t.CreateIndex("app");
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    auto r = t.Insert({Value(static_cast<std::int64_t>(i)),
                       Value(static_cast<std::int64_t>(i) % kFanout),
                       Value("running"), Value(1.5)});
    Sink(r.ok());
  }
  const auto t1 = Clock::now();
  return NsPerOp(t0, t1, iters);
}

double BenchInsertBatch(std::int64_t rows, std::int64_t batch) {
  Table t(BenchSchema());
  (void)t.CreateIndex("app");
  const auto t0 = Clock::now();
  for (std::int64_t base = 0; base < rows; base += batch) {
    std::vector<Row> chunk;
    chunk.reserve(static_cast<std::size_t>(batch));
    for (std::int64_t i = base; i < base + batch; ++i) {
      chunk.push_back(
          {Value(i), Value(i % kFanout), Value("running"), Value(1.5)});
    }
    auto r = t.InsertBatch(std::move(chunk));
    Sink(r.ok());
  }
  const auto t1 = Clock::now();
  return NsPerOp(t0, t1, static_cast<std::uint64_t>(rows));
}

double BenchPointLookup(const Table& t, std::int64_t rows,
                        std::uint64_t iters) {
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    auto row = t.FindByKey(Value(static_cast<std::int64_t>(i) % rows));
    Sink(row.has_value());
  }
  const auto t1 = Clock::now();
  return NsPerOp(t0, t1, iters);
}

double BenchReadCell(const Table& t, std::int64_t rows,
                     std::uint64_t iters) {
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    auto cell = t.ReadCell(Value(static_cast<std::int64_t>(i) % rows), 3);
    Sink(cell.ok());
  }
  const auto t1 = Clock::now();
  return NsPerOp(t0, t1, iters);
}

// The equality scan the server's hot loops actually run: visit every row in
// the postings list, read a cell, copy nothing.
double BenchIndexedScan(const Table& t, std::uint64_t iters) {
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    double sum = 0.0;
    t.ForEachWhereEq("app", Value(static_cast<std::int64_t>(i) % kFanout),
                     [&](const Row& r) {
                       sum += r[3].as_double();
                       return true;
                     });
    Sink(sum);
  }
  const auto t1 = Clock::now();
  return NsPerOp(t0, t1, iters);
}

// The materializing variant: same row set, but every row (string status
// column included) is copied out. Kept as its own metric so the cost of
// reaching for FindWhereEq on a hot path stays visible.
double BenchIndexedMaterialize(const Table& t, std::uint64_t iters) {
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    auto rows =
        t.FindWhereEq("app", Value(static_cast<std::int64_t>(i) % kFanout));
    Sink(rows.size());
  }
  const auto t1 = Clock::now();
  return NsPerOp(t0, t1, iters);
}

// The incremental processor's shape: everything before the cursor is old
// news; only the suffix (here: the last 8 matching rows) is visited.
double BenchCursoredRead(const Table& t, std::int64_t rows,
                         std::uint64_t iters) {
  const Value cursor(rows - 8 * kFanout);
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    std::size_t seen = 0;
    t.ForEachWhereEqFromPk("app",
                           Value(static_cast<std::int64_t>(i) % kFanout),
                           cursor, [&](const Row&) {
                             ++seen;
                             return true;
                           });
    Sink(seen);
  }
  const auto t1 = Clock::now();
  return NsPerOp(t0, t1, iters);
}

double BenchUpdateByKey(Table& t, std::int64_t rows, std::uint64_t iters) {
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    auto s = t.UpdateByKey(Value(static_cast<std::int64_t>(i) % rows),
                           [](Row& r) { r[3] = Value(2.5); });
    Sink(s.ok());
  }
  const auto t1 = Clock::now();
  return NsPerOp(t0, t1, iters);
}

double BenchUpdateInPlace(Table& t, std::int64_t rows,
                          std::uint64_t iters) {
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    auto s = t.UpdateInPlace(Value(static_cast<std::int64_t>(i) % rows), 3,
                             Value(3.5));
    Sink(s.ok());
  }
  const auto t1 = Clock::now();
  return NsPerOp(t0, t1, iters);
}

double BenchFullScan(const Table& t, std::uint64_t iters) {
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    auto rows = t.Scan([](const Row& r) { return r[1].as_int() == 3; });
    Sink(rows.size());
  }
  const auto t1 = Clock::now();
  return NsPerOp(t0, t1, iters);
}

}  // namespace

int main(int argc, char** argv) {
  sor::bench::RequireCleanTree(argc, argv);
  constexpr std::int64_t kRows = 100'000;
  constexpr std::int64_t kBatch = 1'000;
  constexpr std::uint64_t kPointIters = 2'000'000;
  constexpr std::uint64_t kScanIters = 20'000;
  constexpr std::uint64_t kMaterializeIters = 2'000;
  constexpr std::uint64_t kFullScanIters = 200;

  const double insert_ns = BenchInsert(kRows);
  const double insert_batch_ns = BenchInsertBatch(kRows, kBatch);
  Table t(BenchSchema());
  FillTable(t, kRows);
  const double point_lookup_ns = BenchPointLookup(t, kRows, kPointIters);
  const double read_cell_ns = BenchReadCell(t, kRows, kPointIters);
  const double indexed_scan_ns = BenchIndexedScan(t, kScanIters);
  const double indexed_materialize_ns =
      BenchIndexedMaterialize(t, kMaterializeIters);
  const double cursored_read_ns = BenchCursoredRead(t, kRows, kScanIters);
  const double update_by_key_ns = BenchUpdateByKey(t, kRows, kPointIters);
  const double update_in_place_ns = BenchUpdateInPlace(t, kRows, kPointIters);
  const double full_scan_ns = BenchFullScan(t, kFullScanIters);

  std::printf("{\n  \"bench\": \"micro_db\",\n");
  std::printf("  \"host_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"build_type\": \"%s\",\n", SOR_BUILD_TYPE);
  std::printf("  \"git_sha\": \"%s\",\n", SOR_GIT_SHA);
  std::printf("  \"rows\": %lld,\n", static_cast<long long>(kRows));
  std::printf("  \"per_op_ns\": {\n");
  std::printf("    \"insert\": %.1f,\n", insert_ns);
  std::printf("    \"insert_batch\": %.1f,\n", insert_batch_ns);
  std::printf("    \"point_lookup\": %.1f,\n", point_lookup_ns);
  std::printf("    \"read_cell\": %.1f,\n", read_cell_ns);
  std::printf("    \"indexed_scan\": %.1f,\n", indexed_scan_ns);
  std::printf("    \"indexed_materialize\": %.1f,\n", indexed_materialize_ns);
  std::printf("    \"cursored_read\": %.1f,\n", cursored_read_ns);
  std::printf("    \"update_by_key\": %.1f,\n", update_by_key_ns);
  std::printf("    \"update_in_place\": %.1f,\n", update_in_place_ns);
  std::printf("    \"full_scan\": %.1f\n", full_scan_ns);
  std::printf("  }\n}\n");
  return 0;
}

// Fig. 6 regenerator — "Feature data for hiking trails".
//
// Reruns the §V-A field test (3 trails around Syracuse, 7 phones each,
// 11:00AM–2:00PM) in the simulated world and prints the five per-trail
// feature series: temperature, humidity, roughness of road surface,
// curvature, altitude change. Reference values are the ground truths the
// world was built to produce (chosen to match the paper's qualitative
// plot: Cliff rocky/twisty/steep, Green Lake flat/humid/cooler).
#include "bench_util.hpp"

int main() {
  using namespace sor;
  bench::PrintHeader("Fig. 6", "feature data for hiking trails");

  const world::Scenario scenario = world::MakeHikingTrailScenario();
  const core::FieldTestResult result = bench::RunCampaign(scenario);

  std::printf("\nmeasured (reference) per feature:\n\n");
  bench::PrintSeriesComparison(result.matrix,
                               world::GroundTruthFeatures(scenario), "ref");

  std::printf("\n%s", server::RenderFeatureBars(result.matrix).c_str());
  std::printf("participating phones: %d per trail; uploads: %llu\n",
              scenario.phones_per_place,
              static_cast<unsigned long long>(result.total_uploads));
  std::printf("shape check: Cliff > Long > Green Lake on roughness/"
              "curvature/altitude; Green Lake most humid & coolest\n");
  return 0;
}

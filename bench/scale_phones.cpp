// scale_phones — throughput of the sharded runtime vs phone count.
//
// Runs the coffee-shop campaign at ~50/200/1000 phones on 1/2/4/8 threads
// (plus ~5k/~10k tiers behind --large and a ~100k tier behind --xlarge) and
// emits one JSON object per line-printer run: campaign wall time, tick
// throughput, the measured speedup_vs_serial, and the scheduler's work
// counters (gain_evaluations / schedules_sent per join — the numbers that
// must stay flat-ish per join for incremental replanning to be O(delta))
// per (phones, threads) cell. Deferred setup reschedules
// keep the join storm O(P) so the measurement is dominated by the tick
// loop, which is what the epoch runtime parallelizes (phase A overlaps the
// per-phone compute; phase B is one serial merge per tick).
//
// Output is JSON on stdout (redirect to BENCH_scale_phones.json). The
// speedup a given host shows is bounded by "hardware_concurrency": on a
// single-core container every thread count measures the same serial
// machine plus coordination overhead.
#include <chrono>
#include <cstdlib>
#include <string_view>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/system.hpp"
#include "json_gate.hpp"

namespace {

struct Cell {
  int phones = 0;
  int threads = 0;
  int ticks = 0;
  double wall_ms = 0.0;
  double ticks_per_sec = 0.0;
  // Scheduler work accounting (docs/performance.md): with incremental
  // replanning both totals grow O(phones · support), so the per-join
  // ratios should be flat-ish across tiers instead of growing O(phones).
  std::uint64_t joins = 0;
  std::uint64_t gain_evaluations = 0;
  std::uint64_t schedules_distributed = 0;
  std::uint64_t schedule_rows = 0;   // one per task under plan-delta rows
  std::uint64_t db_full_scans = 0;   // queries that degraded to O(table)
};

Cell RunCell(int phones_per_place, int threads) {
  sor::world::Scenario scenario = sor::world::MakeCoffeeShopScenario();
  scenario.phones_per_place = phones_per_place;
  scenario.period_s = 600.0;

  sor::core::FieldTestConfig config;
  config.budget_per_user = 10;
  config.n_instants = 60;
  config.sigma_s = 60.0;
  config.threads = threads;
  config.defer_setup_reschedules = true;

  sor::core::System system;
  const auto t0 = std::chrono::steady_clock::now();
  sor::Result<sor::core::FieldTestResult> run =
      system.RunFieldTest(scenario, config);
  const auto t1 = std::chrono::steady_clock::now();
  if (!run.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", run.error().str().c_str());
    std::exit(1);
  }

  Cell cell;
  cell.phones =
      phones_per_place * static_cast<int>(scenario.places.size());
  cell.threads = threads;
  cell.ticks = static_cast<int>(
      (sor::SimTime::FromSeconds(scenario.period_s).ms + config.tick.ms - 1) /
      config.tick.ms);
  cell.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  cell.ticks_per_sec = cell.wall_ms > 0.0
                           ? 1000.0 * cell.ticks / cell.wall_ms
                           : 0.0;
  const sor::core::FieldTestResult& result = run.value();
  cell.joins = result.server_stats.participations_accepted;
  const sor::server::SchedulerStats& sched = system.server().scheduler().stats();
  cell.gain_evaluations = sched.gain_evaluations;
  cell.schedules_distributed = sched.schedules_distributed;
  if (const sor::db::Table* schedules =
          system.server().database().table("schedules");
      schedules != nullptr) {
    cell.schedule_rows = schedules->size();
  }
  cell.db_full_scans = system.metrics().counter("db.full_scans").value();
  return cell;
}

void PrintCellJson(const Cell& c, const char* indent, bool with_speedup,
                   double speedup) {
  const double joins = c.joins > 0 ? static_cast<double>(c.joins) : 1.0;
  std::printf(
      "%s{\"phones\": %d, \"threads\": %d, \"ticks\": %d, "
      "\"wall_ms\": %.1f, \"ticks_per_sec\": %.2f",
      indent, c.phones, c.threads, c.ticks, c.wall_ms, c.ticks_per_sec);
  if (with_speedup) std::printf(", \"speedup_vs_serial\": %.3f", speedup);
  std::printf(
      ", \"joins\": %llu, \"gain_evaluations\": %llu, "
      "\"gain_evaluations_per_join\": %.1f, "
      "\"schedules_distributed\": %llu, \"schedules_sent_per_join\": %.3f, "
      "\"schedule_rows\": %llu, \"db_full_scans\": %llu}",
      static_cast<unsigned long long>(c.joins),
      static_cast<unsigned long long>(c.gain_evaluations),
      static_cast<double>(c.gain_evaluations) / joins,
      static_cast<unsigned long long>(c.schedules_distributed),
      static_cast<double>(c.schedules_distributed) / joins,
      static_cast<unsigned long long>(c.schedule_rows),
      static_cast<unsigned long long>(c.db_full_scans));
}

}  // namespace

int main(int argc, char** argv) {
  // `scale_phones --cell PPP THREADS` runs one cell and prints its wall
  // time only — the shape profilers and quick A/B comparisons want.
  if (argc >= 4 && std::string_view(argv[1]) == "--cell") {
    const Cell c = RunCell(std::atoi(argv[2]), std::atoi(argv[3]));
    PrintCellJson(c, "", /*with_speedup=*/false, 0.0);
    std::printf("\n");
    return 0;
  }
  sor::bench::RequireCleanTree(argc, argv);
  bool large = false;
  bool xlarge = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--large") large = true;
    if (std::string_view(argv[i]) == "--xlarge") xlarge = true;
  }
  // ×3 places ≈ 50/200/1000 phones; --large adds ~5k and ~10k tiers,
  // --xlarge a ~100k tier (the ROADMAP's target scale — incremental
  // replanning + plan-delta distribution is what makes it reachable; far
  // too slow for every CI run).
  std::vector<int> per_place = {17, 67, 334};
  if (large || xlarge) {
    per_place.push_back(1667);
    per_place.push_back(3334);
  }
  if (xlarge) per_place.push_back(33334);
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::printf("{\n  \"bench\": \"scale_phones\",\n");
  const unsigned host_threads = std::thread::hardware_concurrency();
  std::printf("  \"host_threads\": %u,\n", host_threads);
  std::printf("  \"hardware_concurrency\": %u,\n", host_threads);
  std::printf("  \"build_type\": \"%s\",\n", SOR_BUILD_TYPE);
  std::printf("  \"git_sha\": \"%s\",\n", SOR_GIT_SHA);
  // On a single-core host every thread count measures the same serial
  // machine plus coordination overhead — flag that in the data itself so a
  // flat speedup curve is not misread as a scaling regression.
  std::printf("  \"single_core_host\": %s,\n",
              host_threads <= 1 ? "true" : "false");
  std::printf("  \"results\": [\n");
  bool first = true;
  for (int ppp : per_place) {
    double serial_wall_ms = 0.0;  // threads==1 baseline of this phone tier
    for (int threads : thread_counts) {
      const Cell c = RunCell(ppp, threads);
      if (threads == 1) serial_wall_ms = c.wall_ms;
      // Explicit speedup so the bench is interpretable off-host: >1.0
      // means this thread count beat the serial run of the same tier.
      const double speedup =
          c.wall_ms > 0.0 ? serial_wall_ms / c.wall_ms : 0.0;
      if (!first) std::printf(",\n");
      PrintCellJson(c, "    ", /*with_speedup=*/true, speedup);
      first = false;
      std::fflush(stdout);
      std::fprintf(stderr, "phones=%d threads=%d wall=%.0fms speedup=%.2f\n",
                   c.phones, c.threads, c.wall_ms, speedup);
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}

// Microbenchmark — wire-message encode/decode (per-upload cost on both
// ends of the §II-A binary HTTP-body protocol).
#include <benchmark/benchmark.h>

#include "codec/barcode.hpp"
#include "codec/messages.hpp"

namespace {

sor::Message MakeUpload(int batches, int values) {
  sor::SensedDataUpload up;
  up.task = sor::TaskId{9};
  up.user = sor::UserId{42};
  for (int b = 0; b < batches; ++b) {
    sor::ReadingTuple t;
    t.kind = sor::SensorKind::kDroneTemperature;
    t.t = sor::SimTime{b * 5'000};
    t.dt = sor::SimDuration{5'000};
    for (int v = 0; v < values; ++v)
      t.values.push_back(68.0 + 0.01 * v);
    up.batches.push_back(std::move(t));
  }
  return up;
}

void BM_EncodeUpload(benchmark::State& state) {
  const sor::Message m =
      MakeUpload(static_cast<int>(state.range(0)), 10);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const sor::Bytes frame = sor::EncodeFrame(m);
    bytes = frame.size();
    benchmark::DoNotOptimize(frame);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_EncodeUpload)->Arg(1)->Arg(10)->Arg(100);

void BM_DecodeUpload(benchmark::State& state) {
  const sor::Bytes frame =
      sor::EncodeFrame(MakeUpload(static_cast<int>(state.range(0)), 10));
  for (auto _ : state) {
    auto m = sor::DecodeFrame(frame);
    benchmark::DoNotOptimize(m);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_DecodeUpload)->Arg(1)->Arg(10)->Arg(100);

void BM_BarcodeRenderScan(benchmark::State& state) {
  sor::BarcodePayload p;
  p.app = sor::AppId{7};
  p.place = sor::PlaceId{101};
  p.place_name = "B&N Cafe";
  p.location = sor::GeoPoint{43.045, -76.073, 130.0};
  p.server = "server";
  for (auto _ : state) {
    const sor::BitMatrix m = sor::RenderBarcodeMatrix(p);
    auto decoded = sor::ScanBarcodeMatrix(m);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_BarcodeRenderScan);

}  // namespace

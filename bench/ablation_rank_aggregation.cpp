// Ablation — rank-aggregation algorithms (§IV-B design choice).
//
// The paper chooses weighted-footrule aggregation solved by min-cost flow
// because exact weighted-Kemeny aggregation is NP-hard [7], and Eq. (10)
// bounds the loss by 2x. This ablation *measures* that loss on random
// profiles: for every method, the achieved weighted Kemeny distance
// relative to the exact optimum (N small enough to brute-force), plus
// runtimes at larger N where exact search is infeasible.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>

#include "common/rng.hpp"
#include "rank/aggregate.hpp"

using namespace sor;
using rank::Ranking;

namespace {

Ranking RandomRanking(int n, Rng& rng) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());
  return Ranking::FromOrder(std::move(order)).value();
}

}  // namespace

int main() {
  std::printf("rank-aggregation ablation: weighted Kemeny distance ratio "
              "to exact optimum (100 random instances per n)\n\n");
  std::printf("%4s %20s %14s %14s %14s\n", "n", "method", "mean_ratio",
              "worst_ratio", "exact_rate");

  Rng rng(2'718);
  for (int n : {4, 6, 8}) {
    struct Tally {
      const char* name;
      double sum = 0.0;
      double worst = 1.0;
      int exact = 0;
    };
    Tally tallies[3] = {{"footrule-mcmf"}, {"footrule-hungarian"}, {"borda"}};
    const int instances = 100;
    for (int inst = 0; inst < instances; ++inst) {
      const int m = 3 + inst % 4;
      std::vector<Ranking> omega;
      std::vector<double> weights;
      for (int j = 0; j < m; ++j) {
        omega.push_back(RandomRanking(n, rng));
        weights.push_back(static_cast<double>(rng.uniform_int(1, 5)));
      }
      const Ranking kemeny =
          rank::ExactKemenyAggregate(omega, weights).value();
      const double best = rank::WeightedKemeny(kemeny, omega, weights);

      const Ranking results[3] = {
          rank::FootruleMcmfAggregate(omega, weights).value(),
          rank::FootruleHungarianAggregate(omega, weights).value(),
          rank::BordaAggregate(omega, weights).value(),
      };
      for (int v = 0; v < 3; ++v) {
        const double got = rank::WeightedKemeny(results[v], omega, weights);
        const double ratio = best > 0 ? got / best : 1.0;
        tallies[v].sum += ratio;
        tallies[v].worst = std::max(tallies[v].worst, ratio);
        if (ratio <= 1.0 + 1e-12) ++tallies[v].exact;
      }
    }
    for (const auto& t : tallies) {
      std::printf("%4d %20s %14.4f %14.4f %13.0f%%\n", n, t.name,
                  t.sum / instances, t.worst,
                  100.0 * t.exact / instances);
    }
  }

  std::printf("\nruntime at scale (single instance, M = 6 rankings):\n");
  std::printf("%6s %20s %12s\n", "n", "method", "ms");
  for (int n : {50, 100, 200}) {
    std::vector<Ranking> omega;
    std::vector<double> weights;
    for (int j = 0; j < 6; ++j) {
      omega.push_back(RandomRanking(n, rng));
      weights.push_back(static_cast<double>(rng.uniform_int(1, 5)));
    }
    struct Method {
      const char* name;
      Result<Ranking> (*run)(std::span<const Ranking>,
                             std::span<const double>);
    };
    const Method methods[] = {
        {"footrule-mcmf", rank::FootruleMcmfAggregate},
        {"footrule-hungarian", rank::FootruleHungarianAggregate},
        {"borda", rank::BordaAggregate},
    };
    for (const Method& m : methods) {
      const auto t0 = std::chrono::steady_clock::now();
      const Result<Ranking> r = m.run(omega, weights);
      const auto t1 = std::chrono::steady_clock::now();
      if (!r.ok()) return 1;
      std::printf("%6d %20s %12.2f\n", n, m.name,
                  std::chrono::duration<double, std::milli>(t1 - t0)
                      .count());
    }
  }
  std::printf("\nexpected: footrule methods stay well under the 2x bound "
              "(usually exact); borda is cheaper but weaker on adversarial "
              "instances\n");
  return 0;
}

// Ablation — implementations of Algorithm 1.
//
// The paper analyzes Algorithm 1 at O(N²) with an O(1) independence
// oracle. This ablation compares three implementations that produce
// (near-)identical schedules:
//   naive        — re-evaluate every candidate's marginal gain each round
//                  (the literal Algorithm 1);
//   incremental  — only gains within 2× the kernel support of the last
//                  pick are refreshed (exact, same picks);
//   lazy         — Minoux lazy evaluation on a max-heap of stale gains.
// Reported: objective, number of marginal-gain evaluations, wall time,
// across instance sizes, confirming the O(N²)-ish scaling of the naive
// variant and the large constant-factor win of the others.
#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "sched/greedy.hpp"
#include "world/arrivals.hpp"

int main() {
  using namespace sor;
  using Clock = std::chrono::steady_clock;

  std::printf("Algorithm 1 implementation ablation (sigma = 10 s)\n\n");
  std::printf("%6s %6s %14s %12s %12s %10s\n", "N", "users", "variant",
              "objective", "gain_evals", "ms");

  for (int n : {270, 540, 1'080, 2'160}) {
    Rng rng(42 + n);
    world::ArrivalConfig cfg;
    cfg.num_users = 30;
    cfg.budget = 17;
    cfg.period_s = 10'800.0;
    sched::Problem p =
        sched::Problem::UniformGrid(10'800.0, n, 10.0);
    p.users = world::GenerateArrivals(cfg, rng);

    struct Variant {
      const char* name;
      Result<sched::ScheduleResult> (*run)(const sched::Problem&);
    };
    const Variant variants[] = {
        {"naive", sched::GreedyScheduleNaive},
        {"incremental", sched::GreedySchedule},
        {"lazy", sched::LazyGreedySchedule},
    };
    for (const Variant& v : variants) {
      const auto t0 = Clock::now();
      Result<sched::ScheduleResult> r = v.run(p);
      const auto t1 = Clock::now();
      if (!r.ok()) {
        std::fprintf(stderr, "%s failed\n", v.name);
        return 1;
      }
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      std::printf("%6d %6d %14s %12.3f %12llu %10.2f\n", n, cfg.num_users,
                  v.name, r.value().objective,
                  static_cast<unsigned long long>(r.value().gain_evaluations),
                  ms);
    }
  }
  std::printf("\nexpected: identical objectives per row group; naive evals "
              "grow ~quadratically, lazy stays near the number of picks\n");
  return 0;
}

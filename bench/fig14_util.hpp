// Shared sweep machinery for the Fig. 14 regenerators (§V-C setup):
// 3-hour scheduling period divided into 1080 instants, Gaussian coverage
// kernel with σ = 10 s, uniform random arrivals and leaves, average
// coverage probability as the metric, every point averaged over 10 runs.
#pragma once

#include <cstdio>

#include "common/stats.hpp"
#include "sched/baseline.hpp"
#include "sched/greedy.hpp"
#include "world/arrivals.hpp"

namespace sor::bench {

struct SweepPoint {
  double greedy_mean = 0.0;
  double greedy_stddev = 0.0;
  double baseline_mean = 0.0;
  double baseline_stddev = 0.0;
};

inline SweepPoint RunPoint(int users, int budget, int runs,
                           std::uint64_t seed_base,
                           world::ArrivalModel model =
                               world::ArrivalModel::kUniform) {
  RunningStats greedy_stats;
  RunningStats baseline_stats;
  for (int run = 0; run < runs; ++run) {
    // Common random numbers: the seed depends only on the run index, so a
    // sweep over budget reuses the same arrival/leave draws at every point
    // (and a sweep over user count gets nested prefixes of one population)
    // — parameter effects are not confounded with instance noise.
    Rng rng(seed_base + static_cast<std::uint64_t>(run) * 7919);
    world::ArrivalConfig cfg;
    cfg.num_users = users;
    cfg.budget = budget;
    cfg.period_s = 10'800.0;
    cfg.model = model;

    sched::Problem p = sched::Problem::UniformGrid(10'800.0, 1'080, 10.0);
    p.users = world::GenerateArrivals(cfg, rng);

    const Result<sched::ScheduleResult> greedy = sched::GreedySchedule(p);
    const Result<sched::ScheduleResult> base =
        sched::PeriodicBaselineSchedule(p);
    if (!greedy.ok() || !base.ok()) {
      std::fprintf(stderr, "scheduling failed\n");
      std::exit(1);
    }
    const sched::CoverageEvaluator eval(p);
    greedy_stats.add(eval.AverageCoverage(greedy.value().schedule));
    baseline_stats.add(eval.AverageCoverage(base.value().schedule));
  }
  return {greedy_stats.mean(), greedy_stats.stddev(), baseline_stats.mean(),
          baseline_stats.stddev()};
}

}  // namespace sor::bench

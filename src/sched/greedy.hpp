// Algorithm 1 — the online greedy sensing scheduler (§III) — plus a lazy
// (Minoux) variant used as an efficiency ablation.
//
// All variants maximize the combined coverage objective (Eq. 4) over the
// budget matroid and therefore inherit the 1/2-approximation guarantee of
// greedy submodular maximization over a matroid [Gargano & Hammar / Fisher
// et al.]. They differ only in how marginal gains are (re)computed:
//
//   * GreedyScheduleNaive — the literal Algorithm 1: every iteration
//     re-evaluates f(Ψ ∪ {x}) − f(Ψ) for every candidate. O(N²) per the
//     paper's analysis (with the truncated kernel, O(N·S) per iteration).
//   * GreedySchedule — identical output; exploits that adding a measurement
//     at t_i only changes `q` (the uncovered probability) within the kernel
//     support, so only gains within 2·support of the pick are recomputed.
//   * LazyGreedySchedule — Minoux lazy evaluation with a max-heap of stale
//     gains; valid because marginal gains only shrink as the schedule grows
//     (submodularity). Identical objective value, far fewer evaluations.
//
// Determinism: ties in gain break toward the lower instant index, and the
// user charged for a pick is BudgetMatroid::PickUserFor's deterministic
// choice (excluding users already sensing at that instant).
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "sched/coverage.hpp"

namespace sor::sched {

struct ScheduleResult {
  Schedule schedule;
  double objective = 0.0;          // combined objective f (Eq. 4)
  std::uint64_t gain_evaluations = 0;  // marginal-gain computations performed
  std::vector<Assignment> insertion_order;
};

[[nodiscard]] Result<ScheduleResult> GreedySchedule(const Problem& p);
[[nodiscard]] Result<ScheduleResult> GreedyScheduleNaive(const Problem& p);
[[nodiscard]] Result<ScheduleResult> LazyGreedySchedule(const Problem& p);

// Warm-start placement for incremental replanning (docs/performance.md):
// place ONLY `p.users` (the delta members — e.g. the users who joined since
// the last reschedule) against an externally maintained residual-uncoverage
// vector `q` = Π(1−p) over every previously committed measurement. `q` must
// have one entry per grid instant; it is updated in place with the new
// commits, so the caller can carry it into the next delta round. The
// reported objective is the coverage the new picks add on top of `q`.
//
// `full_grid_candidates` selects how the lazy heap is seeded: true evaluates
// every instant (the cold-replan oracle shape), false only instants some
// delta user can still take (O(delta) work). The committed picks are
// identical either way — instants outside every delta window never have a
// feasible user, so the oracle pops and drops them — which is exactly the
// incremental-vs-oracle parity contract; only gain_evaluations differ.
[[nodiscard]] Result<ScheduleResult> LazyGreedyPlaceDelta(
    const Problem& p, std::vector<double>& q, bool full_grid_candidates);

// Eager variant of the same warm start (for --scheduler greedy): identical
// picks, more gain evaluations.
[[nodiscard]] Result<ScheduleResult> GreedyPlaceDelta(const Problem& p,
                                                      std::vector<double>& q);

}  // namespace sor::sched

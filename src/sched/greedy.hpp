// Algorithm 1 — the online greedy sensing scheduler (§III) — plus a lazy
// (Minoux) variant used as an efficiency ablation.
//
// All variants maximize the combined coverage objective (Eq. 4) over the
// budget matroid and therefore inherit the 1/2-approximation guarantee of
// greedy submodular maximization over a matroid [Gargano & Hammar / Fisher
// et al.]. They differ only in how marginal gains are (re)computed:
//
//   * GreedyScheduleNaive — the literal Algorithm 1: every iteration
//     re-evaluates f(Ψ ∪ {x}) − f(Ψ) for every candidate. O(N²) per the
//     paper's analysis (with the truncated kernel, O(N·S) per iteration).
//   * GreedySchedule — identical output; exploits that adding a measurement
//     at t_i only changes `q` (the uncovered probability) within the kernel
//     support, so only gains within 2·support of the pick are recomputed.
//   * LazyGreedySchedule — Minoux lazy evaluation with a max-heap of stale
//     gains; valid because marginal gains only shrink as the schedule grows
//     (submodularity). Identical objective value, far fewer evaluations.
//
// Determinism: ties in gain break toward the lower instant index, and the
// user charged for a pick is BudgetMatroid::PickUserFor's deterministic
// choice (excluding users already sensing at that instant).
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "sched/coverage.hpp"

namespace sor::sched {

struct ScheduleResult {
  Schedule schedule;
  double objective = 0.0;          // combined objective f (Eq. 4)
  std::uint64_t gain_evaluations = 0;  // marginal-gain computations performed
  std::vector<Assignment> insertion_order;
};

[[nodiscard]] Result<ScheduleResult> GreedySchedule(const Problem& p);
[[nodiscard]] Result<ScheduleResult> GreedyScheduleNaive(const Problem& p);
[[nodiscard]] Result<ScheduleResult> LazyGreedySchedule(const Problem& p);

}  // namespace sor::sched

#include "sched/coverage.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <mutex>
#include <tuple>

namespace sor::sched {

Problem Problem::UniformGrid(double period_s, int n_instants, double sigma_s) {
  Problem p;
  p.grid = MakeInstantGrid(
      SimInterval{SimTime{0}, SimTime::FromSeconds(period_s)}, n_instants);
  p.sigma_s = sigma_s;
  return p;
}

std::vector<int> Problem::UserInstants(int k) const {
  assert(k >= 0 && k < num_users());
  const SimInterval& w = users[static_cast<std::size_t>(k)].presence;
  std::vector<int> out;
  // Grid is sorted: binary-search the window boundaries.
  const auto lo = std::lower_bound(grid.begin(), grid.end(), w.begin);
  const auto hi = std::upper_bound(grid.begin(), grid.end(), w.end);
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it)
    out.push_back(static_cast<int>(it - grid.begin()));
  return out;
}

Status Problem::Validate() const {
  if (grid.empty()) return Status(Errc::kInvalidArgument, "empty grid");
  if (sigma_s <= 0.0) return Status(Errc::kInvalidArgument, "sigma <= 0");
  if (support_sigmas <= 0.0)
    return Status(Errc::kInvalidArgument, "support_sigmas <= 0");
  for (std::size_t i = 1; i < grid.size(); ++i) {
    if (grid[i] <= grid[i - 1])
      return Status(Errc::kInvalidArgument, "grid not strictly increasing");
  }
  for (const UserWindow& u : users) {
    if (u.budget < 0) return Status(Errc::kInvalidArgument, "negative budget");
    if (u.presence.empty())
      return Status(Errc::kInvalidArgument, "empty presence window");
  }
  return Status::Ok();
}

std::vector<int> Schedule::AllInstants() const {
  std::vector<int> all;
  for (const auto& v : per_user) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  return all;
}

CoverageKernel::CoverageKernel(double sigma_s, double spacing_s,
                               double support_sigmas) {
  assert(sigma_s > 0.0 && spacing_s > 0.0);
  const int support =
      std::max(0, static_cast<int>(std::ceil(support_sigmas * sigma_s /
                                             spacing_s)));
  values_.resize(static_cast<std::size_t>(support) + 1);
  for (int d = 0; d <= support; ++d) {
    const double dt = static_cast<double>(d) * spacing_s;
    values_[static_cast<std::size_t>(d)] =
        std::exp(-dt * dt / (2.0 * sigma_s * sigma_s));
  }
}

std::shared_ptr<const CoverageKernel> CoverageKernel::Shared(
    double sigma_s, double spacing_s, double support_sigmas) {
  using Key = std::tuple<double, double, double>;
  static std::mutex mu;
  static std::map<Key, std::shared_ptr<const CoverageKernel>> cache;
  const Key key{sigma_s, spacing_s, support_sigmas};
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_shared<const CoverageKernel>(
                                sigma_s, spacing_s, support_sigmas))
             .first;
  }
  return it->second;
}

namespace {
double GridSpacingSeconds(const Problem& p) {
  assert(p.grid.size() >= 1);
  if (p.grid.size() == 1) return 1.0;
  return (p.grid[1] - p.grid[0]).seconds();
}
}  // namespace

CoverageEvaluator::CoverageEvaluator(const Problem& p)
    : n_(p.num_instants()),
      kernel_(CoverageKernel::Shared(p.sigma_s, GridSpacingSeconds(p),
                                     p.support_sigmas)) {}

namespace {
void ApplyMeasurement(std::vector<double>& q, const CoverageKernel& kernel,
                      int n, int i) {
  const int sup = kernel.support();
  const int lo = std::max(0, i - sup);
  const int hi = std::min(n - 1, i + sup);
  for (int j = lo; j <= hi; ++j)
    q[static_cast<std::size_t>(j)] *= 1.0 - kernel.at(std::abs(j - i));
}
}  // namespace

double CoverageEvaluator::CombinedObjective(const Schedule& s) const {
  // q[j] = Π (1 − p) over every scheduled measurement; objective = Σ (1−q).
  std::vector<double> q(static_cast<std::size_t>(n_), 1.0);
  for (const auto& phi : s.per_user) {
    for (int i : phi) ApplyMeasurement(q, *kernel_, n_, i);
  }
  double total = 0.0;
  for (double qj : q) total += 1.0 - qj;
  return total;
}

double CoverageEvaluator::CombinedObjectiveWithExisting(
    const Problem& p, const Schedule& s) const {
  std::vector<double> q = UncoveredAfter(p.existing_measurements);
  for (const auto& phi : s.per_user) {
    for (int i : phi) ApplyMeasurement(q, *kernel_, n_, i);
  }
  double total = 0.0;
  for (double qj : q) total += 1.0 - qj;
  return total;
}

std::vector<double> CoverageEvaluator::UncoveredAfter(
    std::span<const int> instants) const {
  std::vector<double> q(static_cast<std::size_t>(n_), 1.0);
  for (int i : instants) {
    if (i < 0 || i >= n_) continue;  // tolerate off-grid snaps
    ApplyMeasurement(q, *kernel_, n_, i);
  }
  return q;
}

double CoverageEvaluator::PerUserSumObjective(const Schedule& s) const {
  const int sup = kernel_->support();
  double total = 0.0;
  for (const auto& phi : s.per_user) {
    std::vector<double> q(static_cast<std::size_t>(n_), 1.0);
    for (int i : phi) {
      const int lo = std::max(0, i - sup);
      const int hi = std::min(n_ - 1, i + sup);
      for (int j = lo; j <= hi; ++j)
        q[static_cast<std::size_t>(j)] *= 1.0 - kernel_->at(std::abs(j - i));
    }
    for (double qj : q) total += 1.0 - qj;
  }
  return total;
}

}  // namespace sor::sched

// Budget (partition) matroid over (user, instant) sensing assignments.
//
// Theorem 1 of the paper shows the feasible schedules form a matroid; the
// executable form is: ground set E = {(k, t) : t ∈ T_k}, independent sets =
// those with at most N^B_k elements of each user k. The independence oracle
// is O(1) per query "by maintaining a counter for each mobile user and
// checking if its value exceeds the given budget", exactly as §III describes
// — this is what makes Algorithm 1 run in O(N²) overall.
#pragma once

#include <vector>

#include "sched/coverage.hpp"

namespace sor::sched {

class BudgetMatroid {
 public:
  explicit BudgetMatroid(const Problem& p);

  // Is (user, instant) a ground-set element at all? (instant within the
  // user's presence window)
  [[nodiscard]] bool InGroundSet(const Assignment& a) const;

  // Independence oracle: may `a` be added to the current set? O(1).
  [[nodiscard]] bool CanAdd(const Assignment& a) const;

  // Add (must be CanAdd) / remove (must be present via your own bookkeeping;
  // the matroid only tracks counters).
  void Add(const Assignment& a);
  void Remove(const Assignment& a);
  void Reset();

  [[nodiscard]] int used(int user) const {
    return used_[static_cast<std::size_t>(user)];
  }
  [[nodiscard]] int budget(int user) const {
    return budget_[static_cast<std::size_t>(user)];
  }
  [[nodiscard]] int remaining(int user) const {
    return budget(user) - used(user);
  }
  [[nodiscard]] int num_users() const {
    return static_cast<int>(budget_.size());
  }

  // Whether any element at this instant can still be added (some user whose
  // window covers it has remaining budget). Used by greedy candidate pruning.
  [[nodiscard]] bool InstantFeasible(int instant) const;

  // A deterministic choice of user to charge for a measurement at `instant`:
  // among users with remaining budget whose window covers it, the one with
  // the most remaining budget (ties → lowest user index). Any choice keeps
  // the 1/2 guarantee; this one spreads load for fairness ("preventing
  // certain mobile users from being abused", §III).
  [[nodiscard]] int PickUserFor(int instant) const;

 private:
  std::vector<int> budget_;
  std::vector<int> used_;
  // users_at_[instant] = user indices whose window covers that instant.
  std::vector<std::vector<int>> users_at_;
};

}  // namespace sor::sched

// Budget (partition) matroid over (user, instant) sensing assignments.
//
// Theorem 1 of the paper shows the feasible schedules form a matroid; the
// executable form is: ground set E = {(k, t) : t ∈ T_k}, independent sets =
// those with at most N^B_k elements of each user k. The independence oracle
// is O(1) per query "by maintaining a counter for each mobile user and
// checking if its value exceeds the given budget", exactly as §III describes
// — this is what makes Algorithm 1 run in O(N²) overall.
//
// Ground-set membership is O(1) too: the grid is sorted and each user's
// presence window is an interval, so T_k is a contiguous index range
// [win_lo, win_hi]. On top of that the matroid keeps a feasible-user index —
// users bucketed by remaining budget plus a per-instant count of unexhausted
// covering users — so "which user takes this instant" queries resolve
// without scanning the whole fleet (the 10k-phone hot path).
#pragma once

#include <set>
#include <vector>

#include "sched/coverage.hpp"

namespace sor::sched {

class BudgetMatroid {
 public:
  explicit BudgetMatroid(const Problem& p);

  // Is (user, instant) a ground-set element at all? (instant within the
  // user's presence window) O(1).
  [[nodiscard]] bool InGroundSet(const Assignment& a) const {
    if (a.user < 0 || a.user >= num_users()) return false;
    const auto u = static_cast<std::size_t>(a.user);
    return a.instant >= win_lo_[u] && a.instant <= win_hi_[u];
  }

  // Independence oracle: may `a` be added to the current set? O(1).
  [[nodiscard]] bool CanAdd(const Assignment& a) const {
    return InGroundSet(a) && remaining(a.user) > 0;
  }

  // Add (must be CanAdd) / remove (must be present via your own bookkeeping;
  // the matroid only tracks counters).
  void Add(const Assignment& a);
  void Remove(const Assignment& a);
  void Reset();

  [[nodiscard]] int used(int user) const {
    return used_[static_cast<std::size_t>(user)];
  }
  [[nodiscard]] int budget(int user) const {
    return budget_[static_cast<std::size_t>(user)];
  }
  [[nodiscard]] int remaining(int user) const {
    return budget(user) - used(user);
  }
  [[nodiscard]] int num_users() const {
    return static_cast<int>(budget_.size());
  }

  // Whether any element at this instant can still be added (some user whose
  // window covers it has remaining budget). O(1) via the per-instant count
  // of unexhausted covering users.
  [[nodiscard]] bool InstantFeasible(int instant) const {
    return instant >= 0 && instant < static_cast<int>(active_cover_.size()) &&
           active_cover_[static_cast<std::size_t>(instant)] > 0;
  }

  // A deterministic choice of user to charge for a measurement at `instant`:
  // among users with remaining budget whose window covers it, the one with
  // the most remaining budget (ties → lowest user index). Any choice keeps
  // the 1/2 guarantee; this one spreads load for fairness ("preventing
  // certain mobile users from being abused", §III).
  [[nodiscard]] int PickUserFor(int instant) const {
    return FirstFeasibleUserAt(instant, [](int) { return true; });
  }

  // Generalized PickUserFor: visits candidates in the same deterministic
  // charge order (most remaining budget first, ties toward lower index) and
  // returns the first one `accept` admits, or -1. Callers use `accept` to
  // exclude users already sensing at the instant. Amortized O(1) when the
  // top budget bucket has a covering user; the full-bucket walk only happens
  // in the saturated tail.
  template <typename Accept>
  [[nodiscard]] int FirstFeasibleUserAt(int instant, Accept&& accept) const {
    if (!InstantFeasible(instant)) return -1;
    for (int r = max_remaining_; r >= 1; --r) {
      for (int u : buckets_[static_cast<std::size_t>(r)]) {
        const auto s = static_cast<std::size_t>(u);
        if (instant < win_lo_[s] || instant > win_hi_[s]) continue;
        if (accept(u)) return u;
      }
    }
    return -1;
  }

 private:
  void MoveBucket(int user, int from, int to);
  void AdjustCover(int user, int delta);

  std::vector<int> budget_;
  std::vector<int> used_;
  // Contiguous grid-index range of each user's presence window; empty
  // windows store lo > hi.
  std::vector<int> win_lo_;
  std::vector<int> win_hi_;
  // buckets_[r] = users with exactly r remaining budget, ascending index.
  std::vector<std::set<int>> buckets_;
  int max_remaining_ = 0;  // highest non-empty bucket (0 when none)
  // Per instant: number of users with remaining budget whose window covers
  // it. Zero ⇒ the instant is exhausted and candidate pruning can skip it.
  std::vector<int> active_cover_;
};

}  // namespace sor::sched

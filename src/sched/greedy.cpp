#include "sched/greedy.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "sched/matroid.hpp"

namespace sor::sched {

namespace {

// Shared mutable state for all greedy variants. `q` binds either to internal
// storage seeded from the problem's existing measurements (the classic full
// plans) or to a caller-owned residual vector that outlives the run (the
// warm-start delta placements).
struct GreedyState {
  explicit GreedyState(const Problem& p)
      : n(p.num_instants()),
        k(p.num_users()),
        eval(p),
        matroid(p),
        q_storage(eval.UncoveredAfter(p.existing_measurements)),
        q(q_storage),
        taken(static_cast<std::size_t>(n) * std::max(k, 1), 0),
        result{Schedule::Empty(p.num_users()), 0.0, 0, {}} {
    // Baseline coverage already locked in by past measurements; the
    // reported objective is the ADDITIONAL coverage this schedule adds.
    for (double qj : q) preexisting_coverage += 1.0 - qj;
  }

  GreedyState(const Problem& p, std::vector<double>& shared_q)
      : n(p.num_instants()),
        k(p.num_users()),
        eval(p),
        matroid(p),
        q(shared_q),
        taken(static_cast<std::size_t>(n) * std::max(k, 1), 0),
        result{Schedule::Empty(p.num_users()), 0.0, 0, {}} {
    assert(static_cast<int>(q.size()) == n);
    for (double qj : q) preexisting_coverage += 1.0 - qj;
  }

  double preexisting_coverage = 0.0;

  int n;
  int k;
  CoverageEvaluator eval;
  BudgetMatroid matroid;
  std::vector<double> q_storage;  // empty when q binds caller storage
  std::vector<double>& q;         // Π(1 − p) per instant, current schedule
  std::vector<std::uint8_t> taken;  // (instant, user) already scheduled?
  ScheduleResult result;

  [[nodiscard]] bool Taken(int instant, int user) const {
    return taken[static_cast<std::size_t>(instant) * k + user] != 0;
  }

  // Marginal gain of one more measurement at `instant` (independent of which
  // user takes it): Σ_j q[j] · p(t_i, t_j) over the kernel support.
  [[nodiscard]] double Gain(int instant) {
    ++result.gain_evaluations;
    const CoverageKernel& kern = eval.kernel();
    const int sup = kern.support();
    const int lo = std::max(0, instant - sup);
    const int hi = std::min(n - 1, instant + sup);
    double g = 0.0;
    for (int j = lo; j <= hi; ++j)
      g += q[static_cast<std::size_t>(j)] * kern.at(std::abs(j - instant));
    return g;
  }

  // A user that can take `instant` now: positive remaining budget, window
  // covers it, not already sensing at it. -1 if none. Deterministic: most
  // remaining budget, ties toward lower index (fairness, §III). The matroid's
  // budget-bucket index answers this without scanning the fleet.
  [[nodiscard]] int FeasibleUserAt(int instant) const {
    return matroid.FirstFeasibleUserAt(
        instant, [&](int u) { return !Taken(instant, u); });
  }

  // Commit the pick and update q within the kernel support.
  void Commit(int instant, int user) {
    assert(user >= 0);
    matroid.Add({user, instant});
    taken[static_cast<std::size_t>(instant) * k + user] = 1;
    result.schedule.per_user[static_cast<std::size_t>(user)].push_back(
        instant);
    result.insertion_order.push_back({user, instant});
    const CoverageKernel& kern = eval.kernel();
    const int sup = kern.support();
    const int lo = std::max(0, instant - sup);
    const int hi = std::min(n - 1, instant + sup);
    for (int j = lo; j <= hi; ++j)
      q[static_cast<std::size_t>(j)] *= 1.0 - kern.at(std::abs(j - instant));
  }

  ScheduleResult Finish() {
    for (auto& phi : result.schedule.per_user)
      std::sort(phi.begin(), phi.end());
    // Additional coverage achieved by the new schedule on top of whatever
    // already existed: Σ(1 − q_final) − Σ(1 − q_initial). With no existing
    // measurements this is exactly CombinedObjective(schedule).
    double covered = 0.0;
    for (double qj : q) covered += 1.0 - qj;
    result.objective = covered - preexisting_coverage;
    return std::move(result);
  }
};

// The Minoux lazy loop over a pre-seeded heap; shared by the full plan and
// the warm-start delta placement.
ScheduleResult RunLazy(GreedyState& st, bool full_grid_candidates) {
  // Max-heap of (possibly stale gain, instant). Staleness is resolved by
  // re-evaluating the popped candidate and re-inserting if it no longer
  // dominates; submodularity guarantees gains never grow, so a fresh value
  // that still tops the heap is the true argmax. Tie-break toward the lower
  // instant index to match the eager variants.
  using Item = std::pair<double, int>;
  auto cmp = [](const Item& a, const Item& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap(cmp);
  for (int i = 0; i < st.n; ++i) {
    // Skipping exhausted instants changes which candidates get evaluated but
    // never which get committed: budgets only shrink during a run, so an
    // instant with no feasible user now never gains one later.
    if (!full_grid_candidates && !st.matroid.InstantFeasible(i)) continue;
    heap.emplace(st.Gain(i), i);
  }

  while (!heap.empty()) {
    auto [stale_gain, i] = heap.top();
    heap.pop();
    if (st.FeasibleUserAt(i) < 0) continue;  // exhausted instant: drop
    const double fresh = st.Gain(i);
    // Re-insert unless the fresh value still tops the heap under the SAME
    // ordering the heap uses — including the lower-instant tie-break. On an
    // exact gain tie the eager variants commit the lower instant, so
    // committing a higher-index pop here would break pick parity.
    if (!heap.empty() && cmp(Item{fresh, i}, heap.top())) {
      heap.emplace(fresh, i);
      continue;
    }
    // Fresh value still dominates (or heap empty): this is the greedy pick.
    st.Commit(i, st.FeasibleUserAt(i));
    heap.emplace(st.Gain(i), i);  // the instant may be picked again (other users)
  }
  return st.Finish();
}

// The eager loop with a gain cache; entries within 2·support of a committed
// pick are recomputed, everything else is still exact.
ScheduleResult RunEager(GreedyState& st) {
  std::vector<double> gain(static_cast<std::size_t>(st.n));
  for (int i = 0; i < st.n; ++i) gain[static_cast<std::size_t>(i)] = st.Gain(i);

  const int sup = st.eval.kernel().support();
  while (true) {
    double best_gain = -1.0;
    int best_instant = -1;
    for (int i = 0; i < st.n; ++i) {
      if (gain[static_cast<std::size_t>(i)] <= best_gain) continue;
      if (st.FeasibleUserAt(i) < 0) continue;
      best_gain = gain[static_cast<std::size_t>(i)];
      best_instant = i;
    }
    if (best_instant < 0) break;
    st.Commit(best_instant, st.FeasibleUserAt(best_instant));
    const int lo = std::max(0, best_instant - 2 * sup);
    const int hi = std::min(st.n - 1, best_instant + 2 * sup);
    for (int i = lo; i <= hi; ++i)
      gain[static_cast<std::size_t>(i)] = st.Gain(i);
  }
  return st.Finish();
}

Status ValidateDelta(const Problem& p, const std::vector<double>& q) {
  if (Status s = p.Validate(); !s.ok()) return s;
  if (static_cast<int>(q.size()) != p.num_instants())
    return Status(Errc::kInvalidArgument,
                  "residual vector does not match the grid");
  return Status::Ok();
}

}  // namespace

Result<ScheduleResult> GreedyScheduleNaive(const Problem& p) {
  if (Status s = p.Validate(); !s.ok()) return s.error();
  GreedyState st(p);
  while (true) {
    double best_gain = -1.0;
    int best_instant = -1;
    for (int i = 0; i < st.n; ++i) {
      if (st.FeasibleUserAt(i) < 0) continue;
      const double g = st.Gain(i);
      if (g > best_gain) {
        best_gain = g;
        best_instant = i;
      }
    }
    if (best_instant < 0) break;  // no feasible element left
    st.Commit(best_instant, st.FeasibleUserAt(best_instant));
  }
  return st.Finish();
}

Result<ScheduleResult> GreedySchedule(const Problem& p) {
  if (Status s = p.Validate(); !s.ok()) return s.error();
  GreedyState st(p);
  return RunEager(st);
}

Result<ScheduleResult> LazyGreedySchedule(const Problem& p) {
  if (Status s = p.Validate(); !s.ok()) return s.error();
  GreedyState st(p);
  return RunLazy(st, /*full_grid_candidates=*/true);
}

Result<ScheduleResult> LazyGreedyPlaceDelta(const Problem& p,
                                            std::vector<double>& q,
                                            bool full_grid_candidates) {
  if (Status s = ValidateDelta(p, q); !s.ok()) return s.error();
  GreedyState st(p, q);
  return RunLazy(st, full_grid_candidates);
}

Result<ScheduleResult> GreedyPlaceDelta(const Problem& p,
                                        std::vector<double>& q) {
  if (Status s = ValidateDelta(p, q); !s.ok()) return s.error();
  GreedyState st(p, q);
  return RunEager(st);
}

}  // namespace sor::sched

// The comparison baseline of §V-C: "a mobile phone starts to sense every
// 10 s since its arrival for N^B_k times". No coordination across users and
// no spreading — exactly the clustered behaviour the greedy is designed to
// avoid.
#pragma once

#include "common/result.hpp"
#include "sched/coverage.hpp"
#include "sched/greedy.hpp"

namespace sor::sched {

struct PeriodicBaselineOptions {
  double interval_s = 10.0;  // sensing cadence from arrival
};

[[nodiscard]] Result<ScheduleResult> PeriodicBaselineSchedule(
    const Problem& p, const PeriodicBaselineOptions& opts = {});

}  // namespace sor::sched

#include "sched/incremental.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sched/baseline.hpp"
#include "sched/greedy.hpp"

namespace sor::sched {

namespace {
double SpacingSeconds(const std::vector<SimTime>& grid) {
  if (grid.size() <= 1) return 1.0;
  return (grid[1] - grid[0]).seconds();
}
}  // namespace

IncrementalPlanner::IncrementalPlanner(std::vector<SimTime> grid, Options opts)
    : grid_(std::move(grid)),
      opts_(opts),
      kernel_(CoverageKernel::Shared(opts.sigma_s, SpacingSeconds(grid_),
                                     opts.support_sigmas)),
      q_(grid_.size(), 1.0),
      commits_at_(grid_.size()) {
  assert(!grid_.empty());
}

double IncrementalPlanner::spacing_s() const { return SpacingSeconds(grid_); }

void IncrementalPlanner::RebuildCommitIndexes() {
  for (auto& lst : commits_at_) lst.clear();
  for (auto& [member, positions] : member_commits_) positions.clear();
  for (std::size_t pos = 0; pos < log_.size(); ++pos) {
    const Commit& c = log_[pos];
    if (!c.alive) continue;
    commits_at_[static_cast<std::size_t>(c.instant)].push_back(pos);
    // Only registered (active) members index their commits; commits of
    // departed members stay in the log as ownerless sunk coverage.
    if (auto it = member_commits_.find(c.member); it != member_commits_.end())
      it->second.push_back(pos);
  }
}

void IncrementalPlanner::ReplayQ() {
  // Compact first: dead entries never matter again, and dropping them keeps
  // the log proportional to alive picks rather than campaign history.
  if (dead_commits_ > 0) {
    std::vector<Commit> alive;
    alive.reserve(log_.size() - dead_commits_);
    for (const Commit& c : log_) {
      if (c.alive) alive.push_back(c);
    }
    log_ = std::move(alive);
    dead_commits_ = 0;
    RebuildCommitIndexes();
  }
  std::fill(q_.begin(), q_.end(), 1.0);
  const int n = num_instants();
  const int sup = kernel_->support();
  for (const Commit& c : log_) {
    const int lo = std::max(0, c.instant - sup);
    const int hi = std::min(n - 1, c.instant + sup);
    for (int j = lo; j <= hi; ++j)
      q_[static_cast<std::size_t>(j)] *=
          1.0 - kernel_->at(std::abs(j - c.instant));
  }
}

void IncrementalPlanner::RepairQAround(const std::vector<int>& instants) {
  // Instants whose q is stale: everything within kernel support of a killed
  // pick.
  const int n = num_instants();
  const int sup = kernel_->support();
  std::vector<std::uint8_t> affected(static_cast<std::size_t>(n), 0);
  int affected_count = 0;
  for (int i : instants) {
    const int lo = std::max(0, i - sup);
    const int hi = std::min(n - 1, i + sup);
    for (int j = lo; j <= hi; ++j) {
      if (affected[static_cast<std::size_t>(j)] == 0) {
        affected[static_cast<std::size_t>(j)] = 1;
        ++affected_count;
      }
    }
  }
  // Support-local exact replay: q[j] becomes the product of the SURVIVING
  // factors applied in global seq order — bitwise what a full replay
  // produces, because factors beyond the truncated support are exactly 1.0.
  std::vector<std::pair<std::uint64_t, int>> factors;  // (seq, |i − j|)
  for (int j = 0; j < n; ++j) {
    if (affected[static_cast<std::size_t>(j)] == 0) continue;
    factors.clear();
    const int lo = std::max(0, j - sup);
    const int hi = std::min(n - 1, j + sup);
    for (int i = lo; i <= hi; ++i) {
      for (std::size_t pos : commits_at_[static_cast<std::size_t>(i)])
        factors.emplace_back(log_[pos].seq, std::abs(i - j));
    }
    std::sort(factors.begin(), factors.end());
    double qj = 1.0;
    for (const auto& [seq, d] : factors) qj *= 1.0 - kernel_->at(d);
    q_[static_cast<std::size_t>(j)] = qj;
  }
}

Result<IncrementalPlanner::DeltaResult> IncrementalPlanner::ApplyDelta(
    const std::vector<Leave>& leaves, const std::vector<Join>& joins) {
  DeltaResult out;

  // --- leaves first: reclaim the coverage their unexecuted picks held ----
  std::vector<int> killed_instants;
  for (const Leave& l : leaves) {
    auto it = member_commits_.find(l.member);
    if (it == member_commits_.end()) continue;  // unknown member: no-op
    std::vector<Pick>& survivors = out.pruned[l.member];
    for (std::size_t pos : it->second) {
      Commit& c = log_[pos];
      if (!c.alive) continue;
      if (grid_[static_cast<std::size_t>(c.instant)] <= l.cutoff) {
        // Executed before departure: the data was uploaded, the coverage is
        // sunk. The commit stays alive but becomes ownerless.
        survivors.push_back({c.instant, c.seq});
        continue;
      }
      c.alive = false;
      ++dead_commits_;
      killed_instants.push_back(c.instant);
      auto& lst = commits_at_[static_cast<std::size_t>(c.instant)];
      lst.erase(std::find(lst.begin(), lst.end(), pos));
    }
    member_commits_.erase(it);
  }

  if (opts_.incremental && !killed_instants.empty()) {
    const int sup = kernel_->support();
    const double affected_bound = static_cast<double>(killed_instants.size()) *
                                  static_cast<double>(2 * sup + 1);
    if (affected_bound >
        opts_.rebuild_fraction * static_cast<double>(num_instants())) {
      ReplayQ();
      out.rebuilt_q = true;
    } else {
      RepairQAround(killed_instants);
    }
  }
  // Oracle mode rebuilds ALL derived state on every delta — this is the
  // cold replan the incremental path is held byte-identical to.
  if (!opts_.incremental) {
    ReplayQ();
    out.rebuilt_q = true;
  }

  // --- then joins: one greedy run over just the arriving members ---------
  if (joins.empty()) return out;
  for (const Join& j : joins) {
    if (member_commits_.contains(j.member))
      return Error{Errc::kAlreadyExists,
                   "member " + std::to_string(j.member) + " already planned"};
  }

  Problem prob;
  prob.grid = grid_;
  prob.sigma_s = opts_.sigma_s;
  prob.support_sigmas = opts_.support_sigmas;
  prob.users.reserve(joins.size());
  bool plannable = false;
  for (const Join& j : joins) {
    UserWindow w;
    if (j.window.empty() || j.budget <= 0) {
      // Window already in the past (or no budget): keep the member with a
      // valid zero-budget sentinel window so indices line up.
      w.presence = SimInterval{grid_.back(), grid_.back()};
      w.budget = 0;
    } else {
      w.presence = j.window;
      w.budget = j.budget;
      plannable = true;
    }
    prob.users.push_back(w);
  }

  // Register every join (even pickless ones) so the diff on the next delta
  // knows them.
  for (const Join& j : joins) member_commits_.try_emplace(j.member);
  if (!plannable) return out;

  double before = 0.0;
  for (double qj : q_) before += 1.0 - qj;

  Result<ScheduleResult> placed = [&]() {
    switch (opts_.algorithm) {
      case PlacementAlgorithm::kGreedy:
        return GreedyPlaceDelta(prob, q_);
      case PlacementAlgorithm::kLazyGreedy:
        return LazyGreedyPlaceDelta(prob, q_,
                                    /*full_grid_candidates=*/!opts_.incremental);
      case PlacementAlgorithm::kPeriodic: {
        // The baseline ignores coverage; its per-member picks depend only on
        // the member's own window, so placing deltas is exact.
        Result<ScheduleResult> r = PeriodicBaselineSchedule(prob);
        if (r.ok()) {
          const int n = num_instants();
          const int sup = kernel_->support();
          for (const Assignment& a : r.value().insertion_order) {
            const int lo = std::max(0, a.instant - sup);
            const int hi = std::min(n - 1, a.instant + sup);
            for (int j = lo; j <= hi; ++j)
              q_[static_cast<std::size_t>(j)] *=
                  1.0 - kernel_->at(std::abs(j - a.instant));
          }
        }
        return r;
      }
    }
    return Result<ScheduleResult>(
        Error{Errc::kInvalidArgument, "unknown placement algorithm"});
  }();
  if (!placed.ok()) return placed.error();
  out.gain_evaluations = placed.value().gain_evaluations;

  // Append the picks to the log in greedy commit order — that order IS the
  // global seq order every replay reproduces.
  for (const Assignment& a : placed.value().insertion_order) {
    const std::int64_t member =
        joins[static_cast<std::size_t>(a.user)].member;
    const std::size_t pos = log_.size();
    log_.push_back(Commit{next_seq_++, member, a.instant, true});
    member_commits_[member].push_back(pos);
    commits_at_[static_cast<std::size_t>(a.instant)].push_back(pos);
  }

  double after = 0.0;
  for (double qj : q_) after += 1.0 - qj;
  out.objective = after - before;
  return out;
}

std::vector<int> IncrementalPlanner::PlanOf(std::int64_t member) const {
  std::vector<int> instants;
  auto it = member_commits_.find(member);
  if (it == member_commits_.end()) return instants;
  instants.reserve(it->second.size());
  for (std::size_t pos : it->second) {
    if (log_[pos].alive) instants.push_back(log_[pos].instant);
  }
  std::sort(instants.begin(), instants.end());
  return instants;
}

std::vector<IncrementalPlanner::Pick> IncrementalPlanner::PicksOf(
    std::int64_t member) const {
  std::vector<Pick> picks;
  auto it = member_commits_.find(member);
  if (it == member_commits_.end()) return picks;
  picks.reserve(it->second.size());
  for (std::size_t pos : it->second) {
    if (log_[pos].alive) picks.push_back({log_[pos].instant, log_[pos].seq});
  }
  std::sort(picks.begin(), picks.end(),
            [](const Pick& a, const Pick& b) { return a.instant < b.instant; });
  return picks;
}

double IncrementalPlanner::total_coverage() const {
  double covered = 0.0;
  for (double qj : q_) covered += 1.0 - qj;
  return covered;
}

void IncrementalPlanner::RestoreMember(std::int64_t member) {
  member_commits_.try_emplace(member);
}

void IncrementalPlanner::RestoreCommit(std::int64_t member, int instant,
                                       std::uint64_t seq) {
  if (instant < 0 || instant >= num_instants()) return;  // tolerate corrupt rows
  log_.push_back(Commit{seq, member, instant, true});
}

void IncrementalPlanner::FinishRestore() {
  std::sort(log_.begin(), log_.end(),
            [](const Commit& a, const Commit& b) { return a.seq < b.seq; });
  dead_commits_ = 0;
  RebuildCommitIndexes();
  ReplayQ();
  next_seq_ = 1;
  for (const Commit& c : log_) next_seq_ = std::max(next_seq_, c.seq + 1);
}

}  // namespace sor::sched

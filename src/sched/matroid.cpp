#include "sched/matroid.hpp"

#include <cassert>

namespace sor::sched {

BudgetMatroid::BudgetMatroid(const Problem& p) {
  const int k = p.num_users();
  budget_.reserve(static_cast<std::size_t>(k));
  for (const UserWindow& u : p.users) budget_.push_back(u.budget);
  used_.assign(static_cast<std::size_t>(k), 0);
  users_at_.assign(static_cast<std::size_t>(p.num_instants()), {});
  for (int u = 0; u < k; ++u) {
    for (int i : p.UserInstants(u))
      users_at_[static_cast<std::size_t>(i)].push_back(u);
  }
}

bool BudgetMatroid::InGroundSet(const Assignment& a) const {
  if (a.instant < 0 || a.instant >= static_cast<int>(users_at_.size()))
    return false;
  if (a.user < 0 || a.user >= num_users()) return false;
  for (int u : users_at_[static_cast<std::size_t>(a.instant)]) {
    if (u == a.user) return true;
  }
  return false;
}

bool BudgetMatroid::CanAdd(const Assignment& a) const {
  return InGroundSet(a) && remaining(a.user) > 0;
}

void BudgetMatroid::Add(const Assignment& a) {
  assert(CanAdd(a));
  ++used_[static_cast<std::size_t>(a.user)];
}

void BudgetMatroid::Remove(const Assignment& a) {
  assert(used_[static_cast<std::size_t>(a.user)] > 0);
  --used_[static_cast<std::size_t>(a.user)];
}

void BudgetMatroid::Reset() {
  std::fill(used_.begin(), used_.end(), 0);
}

bool BudgetMatroid::InstantFeasible(int instant) const {
  if (instant < 0 || instant >= static_cast<int>(users_at_.size()))
    return false;
  for (int u : users_at_[static_cast<std::size_t>(instant)]) {
    if (remaining(u) > 0) return true;
  }
  return false;
}

int BudgetMatroid::PickUserFor(int instant) const {
  int best = -1;
  int best_remaining = 0;
  for (int u : users_at_[static_cast<std::size_t>(instant)]) {
    const int r = remaining(u);
    if (r > best_remaining) {
      best_remaining = r;
      best = u;
    }
  }
  return best;
}

}  // namespace sor::sched

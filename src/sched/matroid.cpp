#include "sched/matroid.hpp"

#include <algorithm>
#include <cassert>

namespace sor::sched {

BudgetMatroid::BudgetMatroid(const Problem& p) {
  const int k = p.num_users();
  budget_.reserve(static_cast<std::size_t>(k));
  int max_budget = 0;
  for (const UserWindow& u : p.users) {
    budget_.push_back(u.budget);
    max_budget = std::max(max_budget, u.budget);
  }
  used_.assign(static_cast<std::size_t>(k), 0);
  active_cover_.assign(static_cast<std::size_t>(p.num_instants()), 0);
  buckets_.assign(static_cast<std::size_t>(max_budget) + 1, {});

  win_lo_.reserve(static_cast<std::size_t>(k));
  win_hi_.reserve(static_cast<std::size_t>(k));
  for (int u = 0; u < k; ++u) {
    // The grid is sorted, so T_u is the contiguous index range between the
    // window boundaries (same arithmetic as Problem::UserInstants without
    // materializing the vector).
    const SimInterval& w = p.users[static_cast<std::size_t>(u)].presence;
    const auto lo = std::lower_bound(p.grid.begin(), p.grid.end(), w.begin);
    const auto hi = std::upper_bound(p.grid.begin(), p.grid.end(), w.end);
    win_lo_.push_back(static_cast<int>(lo - p.grid.begin()));
    win_hi_.push_back(static_cast<int>(hi - p.grid.begin()) - 1);
    if (remaining(u) > 0) {
      buckets_[static_cast<std::size_t>(remaining(u))].insert(u);
      max_remaining_ = std::max(max_remaining_, remaining(u));
      AdjustCover(u, +1);
    }
  }
}

void BudgetMatroid::MoveBucket(int user, int from, int to) {
  if (from > 0) buckets_[static_cast<std::size_t>(from)].erase(user);
  if (to > 0) {
    buckets_[static_cast<std::size_t>(to)].insert(user);
    max_remaining_ = std::max(max_remaining_, to);
  }
  while (max_remaining_ > 0 &&
         buckets_[static_cast<std::size_t>(max_remaining_)].empty())
    --max_remaining_;
}

void BudgetMatroid::AdjustCover(int user, int delta) {
  const auto s = static_cast<std::size_t>(user);
  const int lo = std::max(0, win_lo_[s]);
  const int hi = std::min(static_cast<int>(active_cover_.size()) - 1,
                          win_hi_[s]);
  for (int i = lo; i <= hi; ++i)
    active_cover_[static_cast<std::size_t>(i)] += delta;
}

void BudgetMatroid::Add(const Assignment& a) {
  assert(CanAdd(a));
  const int before = remaining(a.user);
  ++used_[static_cast<std::size_t>(a.user)];
  MoveBucket(a.user, before, before - 1);
  if (before == 1) AdjustCover(a.user, -1);  // just exhausted
}

void BudgetMatroid::Remove(const Assignment& a) {
  assert(used_[static_cast<std::size_t>(a.user)] > 0);
  const int before = remaining(a.user);
  --used_[static_cast<std::size_t>(a.user)];
  MoveBucket(a.user, before, before + 1);
  if (before == 0) AdjustCover(a.user, +1);  // no longer exhausted
}

void BudgetMatroid::Reset() {
  for (auto& b : buckets_) b.clear();
  std::fill(active_cover_.begin(), active_cover_.end(), 0);
  std::fill(used_.begin(), used_.end(), 0);
  max_remaining_ = 0;
  for (int u = 0; u < num_users(); ++u) {
    if (remaining(u) > 0) {
      buckets_[static_cast<std::size_t>(remaining(u))].insert(u);
      max_remaining_ = std::max(max_remaining_, remaining(u));
      AdjustCover(u, +1);
    }
  }
}

}  // namespace sor::sched

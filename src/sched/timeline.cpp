#include "sched/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sor::sched {

std::string RenderScheduleTimeline(const Problem& problem,
                                   const Schedule& schedule,
                                   const TimelineOptions& opts) {
  const int n = problem.num_instants();
  const int width = std::max(8, opts.width);
  if (n == 0) return "(empty grid)\n";

  auto bucket_of = [&](int instant) {
    return std::min(width - 1, instant * width / n);
  };

  std::ostringstream out;
  for (int k = 0; k < problem.num_users(); ++k) {
    std::string row(static_cast<std::size_t>(width), '-');
    for (int i : problem.UserInstants(k))
      row[static_cast<std::size_t>(bucket_of(i))] = '.';
    if (k < static_cast<int>(schedule.per_user.size())) {
      for (int i : schedule.per_user[static_cast<std::size_t>(k)])
        row[static_cast<std::size_t>(bucket_of(i))] = '#';
    }
    char label[32];
    std::snprintf(label, sizeof(label), "user %-3d |", k);
    out << label << row << "|\n";
  }

  // Coverage footer: decile digit per bucket.
  const CoverageEvaluator eval(problem);
  std::vector<double> q = eval.UncoveredAfter(problem.existing_measurements);
  const CoverageKernel& kern = eval.kernel();
  for (const auto& phi : schedule.per_user) {
    for (int i : phi) {
      const int lo = std::max(0, i - kern.support());
      const int hi = std::min(n - 1, i + kern.support());
      for (int j = lo; j <= hi; ++j)
        q[static_cast<std::size_t>(j)] *= 1.0 - kern.at(std::abs(j - i));
    }
  }
  std::vector<double> bucket_cov(static_cast<std::size_t>(width), 0.0);
  std::vector<int> bucket_n(static_cast<std::size_t>(width), 0);
  for (int i = 0; i < n; ++i) {
    bucket_cov[static_cast<std::size_t>(bucket_of(i))] +=
        1.0 - q[static_cast<std::size_t>(i)];
    ++bucket_n[static_cast<std::size_t>(bucket_of(i))];
  }
  out << "coverage |";
  for (int b = 0; b < width; ++b) {
    const double avg =
        bucket_n[static_cast<std::size_t>(b)]
            ? bucket_cov[static_cast<std::size_t>(b)] /
                  bucket_n[static_cast<std::size_t>(b)]
            : 0.0;
    const int decile =
        std::min(9, static_cast<int>(std::floor(avg * 10.0)));
    out << static_cast<char>('0' + decile);
  }
  out << "|\n";
  return out.str();
}

}  // namespace sor::sched

// Multi-feature sensing scheduling.
//
// §III prescribes per-feature kernel widths: "A large σ is used for those
// sensing features whose readings do not change drastically over time
// (such as temperature, humidity, etc), while a small σ is used for those
// whose readings may change quickly (such as acceleration, orientation)".
// A real application senses several features at once — one sensing event
// reads all of the app's sensors — so the natural objective is the
// weighted sum of per-feature coverages, each under its own kernel:
//
//     F(Φ) = Σ_f w_f · Σ_j [ 1 − Π_{t_i ∈ Φ} (1 − p_f(t_i, t_j)) ]
//
// Each term is non-negative, monotone and submodular; a non-negative
// weighted sum of submodular functions is submodular, so the greedy over
// the same budget matroid keeps the 1/2 guarantee. This module implements
// that greedy plus an evaluator so alternative schedules (single-kernel
// greedy, the periodic baseline) can be scored on the same multi-feature
// objective.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "sched/coverage.hpp"

namespace sor::sched {

struct FeatureKernelSpec {
  std::string name;
  double sigma_s = 10.0;
  double weight = 1.0;  // user/application emphasis, >= 0
};

struct MultiFeatureProblem {
  std::vector<SimTime> grid;
  std::vector<UserWindow> users;
  std::vector<FeatureKernelSpec> features;
  double support_sigmas = 5.0;

  [[nodiscard]] Status Validate() const;
  // View as a single-feature Problem (for matroid construction).
  [[nodiscard]] Problem Base() const;
};

struct MultiFeatureResult {
  Schedule schedule;
  double objective = 0.0;                    // F(Φ) as defined above
  std::vector<double> per_feature_coverage;  // avg coverage ∈ [0,1] per f
};

// Score an arbitrary schedule on the multi-feature objective.
[[nodiscard]] Result<MultiFeatureResult> EvaluateMultiFeature(
    const MultiFeatureProblem& p, const Schedule& schedule);

// Greedy maximization of F over the budget matroid.
[[nodiscard]] Result<MultiFeatureResult> MultiFeatureGreedySchedule(
    const MultiFeatureProblem& p);

}  // namespace sor::sched

// Time-domain sensing-coverage model (§III).
//
// A scheduling period [tS, tE] is divided into N equally spaced instants T.
// A measurement at t_i covers instant t_j with probability
//     p(t_i, t_j) = exp(−(t_j − t_i)² / 2σ²)            (bell-shaped, μ = 0)
// — the probability that the reading taken at t_i is still valid at t_j.
// σ is a per-feature constant: large for slowly varying features
// (temperature, humidity), small for fast ones (acceleration, orientation).
// A set Φ of measurement instants covers t_j with probability
//     p(t_j, Φ) = 1 − Π_{t_i ∈ Φ} (1 − p(t_i, t_j))      (Eq. 1)
//
// Problem (Eqs. 2–3): choose per-user schedules Φ_k ⊆ T_k (the instants
// inside user k's presence window) with |Φ_k| ≤ N^B_k maximizing total
// coverage. The ground set is the set of (user, instant) pairs; budgets form
// a partition matroid over it (the executable form of the paper's (T, Λ),
// Theorem 1), and both objectives below are monotone submodular, giving the
// greedy its 1/2 guarantee.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "common/sim_time.hpp"

namespace sor::sched {

// One participating mobile user k: presence window [tS_k, tE_k] and sensing
// budget N^B_k.
struct UserWindow {
  SimInterval presence;
  int budget = 0;
};

// A scheduling-problem instance.
struct Problem {
  std::vector<SimTime> grid;      // T, sorted ascending, uniform spacing
  std::vector<UserWindow> users;  // K users
  double sigma_s = 10.0;          // coverage kernel σ, seconds
  // Kernel truncation: p is treated as 0 beyond this many σ (error < 4e-6
  // at the default). Makes marginal-gain evaluation O(support) not O(N).
  double support_sigmas = 5.0;
  // Online re-planning: measurements that already happened in this period
  // (grid indices, possibly repeated). The schedulers treat their coverage
  // as sunk — new measurements are placed to maximize the *additional*
  // coverage, so mid-period reschedules never waste budget re-covering
  // instants that are already well covered.
  std::vector<int> existing_measurements;

  // Convenience constructor for the paper's simulation setup: a period of
  // `period_s` seconds divided into `n_instants` instants.
  [[nodiscard]] static Problem UniformGrid(double period_s, int n_instants,
                                           double sigma_s);

  [[nodiscard]] int num_instants() const {
    return static_cast<int>(grid.size());
  }
  [[nodiscard]] int num_users() const { return static_cast<int>(users.size()); }

  // Indices of grid instants inside user k's window (T_k).
  [[nodiscard]] std::vector<int> UserInstants(int k) const;

  // Basic well-formedness (sorted grid, positive sigma, budgets >= 0).
  [[nodiscard]] Status Validate() const;
};

// One scheduled measurement: user k senses at grid[instant].
struct Assignment {
  int user = -1;
  int instant = -1;
  friend bool operator==(const Assignment&, const Assignment&) = default;
};

// A full sensing schedule {Φ_1, ..., Φ_K}.
struct Schedule {
  std::vector<std::vector<int>> per_user;  // Φ_k as grid indices, sorted

  [[nodiscard]] static Schedule Empty(int num_users) {
    Schedule s;
    s.per_user.assign(static_cast<std::size_t>(num_users), {});
    return s;
  }
  [[nodiscard]] int total_measurements() const {
    std::size_t n = 0;
    for (const auto& v : per_user) n += v.size();
    return static_cast<int>(n);
  }
  // All scheduled instants across users (multiset, sorted).
  [[nodiscard]] std::vector<int> AllInstants() const;
};

// Precomputed coverage kernel on a uniform grid: value depends only on the
// index distance |i − j|.
class CoverageKernel {
 public:
  // spacing_s: grid spacing in seconds.
  CoverageKernel(double sigma_s, double spacing_s, double support_sigmas);

  // Process-wide cache keyed on (sigma_s, spacing_s, support_sigmas).
  // Every PlanApp used to rebuild the identical Gaussian table — thousands
  // of exp() calls per reschedule at fleet scale; the table is immutable
  // once built, so all evaluators share one copy. Thread-safe.
  [[nodiscard]] static std::shared_ptr<const CoverageKernel> Shared(
      double sigma_s, double spacing_s, double support_sigmas);

  // p(t_i, t_j) for |i − j| = d; 0 beyond the truncated support.
  [[nodiscard]] double at(int d) const {
    return d < static_cast<int>(values_.size()) ? values_[d] : 0.0;
  }
  // Largest index distance with non-zero kernel value.
  [[nodiscard]] int support() const {
    return static_cast<int>(values_.size()) - 1;
  }

 private:
  std::vector<double> values_;
};

// Evaluates coverage objectives for a fixed problem. Also used incrementally
// by the greedy schedulers via the `uncovered` vector.
class CoverageEvaluator {
 public:
  explicit CoverageEvaluator(const Problem& p);

  // Combined objective (Eq. 4 over the union of all users' measurements):
  //   f(Φ) = Σ_j [ 1 − Π_{(k,t_i) scheduled} (1 − p(t_i, t_j)) ].
  // This is what §V-C's "average coverage probability" normalizes by N.
  // Does NOT include the problem's existing_measurements.
  [[nodiscard]] double CombinedObjective(const Schedule& s) const;

  // Total coverage of existing measurements plus the schedule — the
  // quantity an online reschedule actually maximizes.
  [[nodiscard]] double CombinedObjectiveWithExisting(
      const Problem& p, const Schedule& s) const;

  // Π(1 − p) per instant induced by `instants` alone (used to seed the
  // greedy state with the already-executed measurements).
  [[nodiscard]] std::vector<double> UncoveredAfter(
      std::span<const int> instants) const;

  // Per-user-sum objective (Eq. 2 literally): Σ_j Σ_k p(t_j, Φ_k).
  [[nodiscard]] double PerUserSumObjective(const Schedule& s) const;

  // §V-C metric: CombinedObjective / N  ∈ [0, 1].
  [[nodiscard]] double AverageCoverage(const Schedule& s) const {
    return CombinedObjective(s) / static_cast<double>(n_);
  }

  [[nodiscard]] const CoverageKernel& kernel() const { return *kernel_; }

 private:
  int n_;
  std::shared_ptr<const CoverageKernel> kernel_;  // cache-shared, immutable
};

}  // namespace sor::sched

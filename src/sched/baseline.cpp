#include "sched/baseline.hpp"

#include <algorithm>

namespace sor::sched {

Result<ScheduleResult> PeriodicBaselineSchedule(
    const Problem& p, const PeriodicBaselineOptions& opts) {
  if (Status s = p.Validate(); !s.ok()) return s.error();
  if (opts.interval_s <= 0.0)
    return Error{Errc::kInvalidArgument, "interval must be positive"};

  ScheduleResult out;
  out.schedule = Schedule::Empty(p.num_users());
  const SimDuration step = SimDuration::FromSeconds(opts.interval_s);

  for (int k = 0; k < p.num_users(); ++k) {
    const UserWindow& u = p.users[static_cast<std::size_t>(k)];
    auto& phi = out.schedule.per_user[static_cast<std::size_t>(k)];
    SimTime t = u.presence.begin;
    int prev_index = -1;
    for (int m = 0; m < u.budget && u.presence.contains(t); ++m, t = t + step) {
      // Snap to the nearest grid instant at or after t (measurements only
      // happen at instants of T in the coverage model).
      const auto it = std::lower_bound(p.grid.begin(), p.grid.end(), t);
      if (it == p.grid.end()) break;
      int idx = static_cast<int>(it - p.grid.begin());
      if (p.grid[static_cast<std::size_t>(idx)] > u.presence.end) break;
      if (idx == prev_index) continue;  // sub-spacing cadence: dedupe
      phi.push_back(idx);
      prev_index = idx;
      out.insertion_order.push_back({k, idx});
    }
  }

  // Report the same quantity the greedy reports: additional coverage on
  // top of any existing measurements (identical to CombinedObjective when
  // the problem has none).
  const CoverageEvaluator eval(p);
  double preexisting = 0.0;
  for (double qj : eval.UncoveredAfter(p.existing_measurements))
    preexisting += 1.0 - qj;
  out.objective =
      eval.CombinedObjectiveWithExisting(p, out.schedule) - preexisting;
  return out;
}

}  // namespace sor::sched

// ASCII timeline rendering for sensing schedules — the scheduling
// counterpart of the server's Visualization module. One row per user:
// '-' outside the presence window, '.' present but idle, '#' sensing.
// A footer row shows combined coverage per bucket (0–9 deciles).
#pragma once

#include <string>

#include "sched/coverage.hpp"

namespace sor::sched {

struct TimelineOptions {
  int width = 72;  // character buckets across the scheduling period
};

[[nodiscard]] std::string RenderScheduleTimeline(
    const Problem& problem, const Schedule& schedule,
    const TimelineOptions& opts = {});

}  // namespace sor::sched

#include "sched/brute_force.hpp"

#include <algorithm>

#include "sched/matroid.hpp"

namespace sor::sched {

namespace {

struct Search {
  const Problem& p;
  const CoverageEvaluator eval;
  std::vector<Assignment> elements;  // ground set
  std::vector<int> used;             // per-user budget consumption
  Schedule current;
  double best_objective = -1.0;
  Schedule best;

  double preexisting_coverage = 0.0;

  explicit Search(const Problem& prob)
      : p(prob), eval(prob), used(prob.users.size(), 0),
        current(Schedule::Empty(prob.num_users())),
        best(Schedule::Empty(prob.num_users())) {
    for (double qj : eval.UncoveredAfter(p.existing_measurements))
      preexisting_coverage += 1.0 - qj;
  }

  void Recurse(std::size_t idx) {
    if (idx == elements.size()) {
      // Same semantics as the greedy: additional coverage on top of any
      // existing measurements.
      const double obj = eval.CombinedObjectiveWithExisting(p, current) -
                         preexisting_coverage;
      if (obj > best_objective) {
        best_objective = obj;
        best = current;
      }
      return;
    }
    // Skip element idx.
    Recurse(idx + 1);
    // Take element idx if the budget allows.
    const Assignment& a = elements[idx];
    if (used[static_cast<std::size_t>(a.user)] <
        p.users[static_cast<std::size_t>(a.user)].budget) {
      ++used[static_cast<std::size_t>(a.user)];
      current.per_user[static_cast<std::size_t>(a.user)].push_back(a.instant);
      Recurse(idx + 1);
      current.per_user[static_cast<std::size_t>(a.user)].pop_back();
      --used[static_cast<std::size_t>(a.user)];
    }
  }
};

}  // namespace

Result<ScheduleResult> BruteForceOptimalSchedule(const Problem& p,
                                                 int max_elements) {
  if (Status s = p.Validate(); !s.ok()) return s.error();

  Search search(p);
  for (int k = 0; k < p.num_users(); ++k) {
    for (int i : p.UserInstants(k)) search.elements.push_back({k, i});
  }
  if (static_cast<int>(search.elements.size()) > max_elements)
    return Error{Errc::kInvalidArgument,
                 "ground set too large for brute force: " +
                     std::to_string(search.elements.size())};

  search.Recurse(0);

  ScheduleResult out;
  out.schedule = search.best;
  for (auto& phi : out.schedule.per_user) std::sort(phi.begin(), phi.end());
  out.objective = search.best_objective;
  out.gain_evaluations = 1ULL << search.elements.size();
  return out;
}

}  // namespace sor::sched

// Incremental commit-log planner: the O(delta) replanning core.
//
// The paper's online scheduler (§III) replans an application from scratch on
// every join/leave — O(fleet · budget) greedy commits per event, O(fleet²)
// over a campaign. This class keeps the planning state ALIVE between events
// instead:
//
//   * The durable plan is an append-only log of commits (member, instant),
//     each stamped with a globally increasing sequence number. A member's
//     schedule is simply its alive log entries; placed picks never move.
//   * The residual-uncoverage vector q[j] = Π(1 − p) over alive commits is
//     the only derived state. A join warm-starts the lazy-greedy heap
//     against q and places just the new members' budgets; a leave kills the
//     departed member's unexecuted picks and repairs q locally.
//
// Numerics contract (why leaves REPLAY instead of divide): q is maintained
// as the product of (1 − p) factors applied in global seq order. Dividing a
// factor back out is not the inverse of multiplying it in under IEEE-754
// (and is 0/0 at the pick's own instant, where p = 1), and a one-ulp drift
// can flip a greedy tie — breaking the byte-identical parity contract. So a
// leave recomputes each affected q[j] as the product of the SURVIVING
// factors in seq order, which is bitwise identical to a full replay: factors
// outside the truncated kernel support are exactly 1.0 and multiplying by
// 1.0 is exact. When the affected region exceeds `rebuild_fraction` of the
// grid, one full replay is cheaper than per-instant gathering — same bits,
// different cost.
//
// Oracle mode (`Options::incremental = false`, PR-5 style): every ApplyDelta
// rebuilds q by replaying the whole log and seeds the placement heap over
// the full grid. Identical picks, objectives and plans by construction;
// only gain_evaluations (and wall time) differ. tests/test_determinism.cpp
// holds the two modes byte-identical across the chaos/churn matrices.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "sched/coverage.hpp"

namespace sor::sched {

enum class PlacementAlgorithm {
  kGreedy,      // eager gain cache (Algorithm 1 shape)
  kLazyGreedy,  // Minoux heap — the default
  kPeriodic,    // §V-C baseline: fixed cadence from arrival, ignores q
};

class IncrementalPlanner {
 public:
  struct Options {
    double sigma_s = 10.0;
    double support_sigmas = 5.0;
    PlacementAlgorithm algorithm = PlacementAlgorithm::kLazyGreedy;
    // false = cold-replan oracle: rebuild all derived state per delta.
    bool incremental = true;
    // Leave repair: above this fraction of affected grid instants, rebuild
    // q from the full log instead of gathering per-instant factor lists.
    double rebuild_fraction = 0.25;
  };

  // A member joining the plan: its presence window (already clipped to the
  // scheduling period and to "now" by the caller) and sensing budget.
  struct Join {
    std::int64_t member = 0;
    SimInterval window;
    int budget = 0;
  };

  // A member leaving: picks at instants strictly after `cutoff` die (they
  // were never executed); earlier picks stay as sunk coverage — the data
  // was already uploaded.
  struct Leave {
    std::int64_t member = 0;
    SimTime cutoff;
  };

  struct Pick {
    int instant = 0;
    std::uint64_t seq = 0;
  };

  struct DeltaResult {
    // Coverage added by this delta's placements (leaves not subtracted).
    double objective = 0.0;
    std::uint64_t gain_evaluations = 0;
    bool rebuilt_q = false;  // a full log replay happened this call
    // Per departed member: the picks that SURVIVED the leave (executed
    // before the cutoff). The caller rewrites the member's durable schedule
    // row to exactly these, so a restore replays only sunk coverage.
    std::map<std::int64_t, std::vector<Pick>> pruned;
  };

  IncrementalPlanner(std::vector<SimTime> grid, Options opts);

  // Process one batch of departures and arrivals. Leaves are applied first
  // (in input order), then all joins are placed in ONE greedy run (matroid
  // over the joining members only) — callers pass joins sorted by member
  // for determinism. Members re-joining (already known) are rejected.
  Result<DeltaResult> ApplyDelta(const std::vector<Leave>& leaves,
                                 const std::vector<Join>& joins);

  [[nodiscard]] bool HasMember(std::int64_t member) const {
    return member_commits_.contains(member);
  }
  [[nodiscard]] std::size_t num_members() const {
    return member_commits_.size();
  }
  // Registered members, ascending — the scheduler diffs this against the
  // currently active participation set to detect leaves.
  [[nodiscard]] std::vector<std::int64_t> Members() const {
    std::vector<std::int64_t> out;
    out.reserve(member_commits_.size());
    for (const auto& [m, positions] : member_commits_) out.push_back(m);
    return out;
  }

  // Alive picks of one member, sorted by instant (a schedule), or with their
  // commit seqs (for durable storage / restore).
  [[nodiscard]] std::vector<int> PlanOf(std::int64_t member) const;
  [[nodiscard]] std::vector<Pick> PicksOf(std::int64_t member) const;

  [[nodiscard]] const std::vector<SimTime>& grid() const { return grid_; }
  // Σ(1 − q): total coverage locked in by all alive commits.
  [[nodiscard]] double total_coverage() const;

  // Restore path (post-snapshot): re-register members and their surviving
  // commits in any order, then FinishRestore() sorts by seq, replays q and
  // advances the seq source — bitwise the state an uninterrupted run holds.
  void RestoreMember(std::int64_t member);
  void RestoreCommit(std::int64_t member, int instant, std::uint64_t seq);
  void FinishRestore();

 private:
  struct Commit {
    std::uint64_t seq = 0;
    std::int64_t member = 0;
    int instant = 0;
    bool alive = true;
  };

  [[nodiscard]] int num_instants() const {
    return static_cast<int>(grid_.size());
  }
  [[nodiscard]] double spacing_s() const;
  // Rebuild q (and compact dead log entries) by full seq-order replay.
  void ReplayQ();
  void RebuildCommitIndexes();
  // Recompute q at every instant within kernel support of `instants` from
  // the surviving per-instant factor lists, in seq order.
  void RepairQAround(const std::vector<int>& instants);

  std::vector<SimTime> grid_;
  Options opts_;
  std::shared_ptr<const CoverageKernel> kernel_;
  std::vector<double> q_;
  std::vector<Commit> log_;  // seq-ascending
  // member → positions into log_ (ascending). Presence in this map is what
  // makes a member "known", even with zero picks.
  std::map<std::int64_t, std::vector<std::size_t>> member_commits_;
  // instant → alive log positions (ascending == seq-ascending).
  std::vector<std::vector<std::size_t>> commits_at_;
  std::size_t dead_commits_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace sor::sched

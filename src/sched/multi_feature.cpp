#include "sched/multi_feature.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sched/matroid.hpp"

namespace sor::sched {

namespace {

double GridSpacingSeconds(const std::vector<SimTime>& grid) {
  if (grid.size() < 2) return 1.0;
  return (grid[1] - grid[0]).seconds();
}

}  // namespace

Status MultiFeatureProblem::Validate() const {
  if (features.empty())
    return Status(Errc::kInvalidArgument, "no features to schedule for");
  for (const FeatureKernelSpec& f : features) {
    if (f.sigma_s <= 0.0)
      return Status(Errc::kInvalidArgument, f.name + ": sigma <= 0");
    if (f.weight < 0.0)
      return Status(Errc::kInvalidArgument, f.name + ": negative weight");
  }
  return Base().Validate();
}

Problem MultiFeatureProblem::Base() const {
  Problem p;
  p.grid = grid;
  p.users = users;
  p.sigma_s = features.empty() ? 10.0 : features[0].sigma_s;
  p.support_sigmas = support_sigmas;
  return p;
}

Result<MultiFeatureResult> EvaluateMultiFeature(const MultiFeatureProblem& p,
                                                const Schedule& schedule) {
  if (Status s = p.Validate(); !s.ok()) return s.error();
  const int n = static_cast<int>(p.grid.size());
  const double spacing = GridSpacingSeconds(p.grid);

  MultiFeatureResult out;
  out.schedule = schedule;
  out.per_feature_coverage.reserve(p.features.size());
  for (const FeatureKernelSpec& f : p.features) {
    const CoverageKernel kernel(f.sigma_s, spacing, p.support_sigmas);
    std::vector<double> q(static_cast<std::size_t>(n), 1.0);
    const int sup = kernel.support();
    for (const auto& phi : schedule.per_user) {
      for (int i : phi) {
        const int lo = std::max(0, i - sup);
        const int hi = std::min(n - 1, i + sup);
        for (int j = lo; j <= hi; ++j)
          q[static_cast<std::size_t>(j)] *= 1.0 - kernel.at(std::abs(j - i));
      }
    }
    double covered = 0.0;
    for (double qj : q) covered += 1.0 - qj;
    out.per_feature_coverage.push_back(covered / n);
    out.objective += f.weight * covered;
  }
  return out;
}

Result<MultiFeatureResult> MultiFeatureGreedySchedule(
    const MultiFeatureProblem& p) {
  if (Status s = p.Validate(); !s.ok()) return s.error();
  const int n = static_cast<int>(p.grid.size());
  const int k = static_cast<int>(p.users.size());
  const double spacing = GridSpacingSeconds(p.grid);
  const Problem base = p.Base();
  BudgetMatroid matroid(base);

  // Per-feature kernels and uncovered vectors.
  std::vector<CoverageKernel> kernels;
  kernels.reserve(p.features.size());
  int max_support = 0;
  for (const FeatureKernelSpec& f : p.features) {
    kernels.emplace_back(f.sigma_s, spacing, p.support_sigmas);
    max_support = std::max(max_support, kernels.back().support());
  }
  std::vector<std::vector<double>> q(
      p.features.size(), std::vector<double>(static_cast<std::size_t>(n), 1.0));

  std::vector<std::uint8_t> taken(
      static_cast<std::size_t>(n) * std::max(k, 1), 0);
  Schedule schedule = Schedule::Empty(k);

  auto gain = [&](int instant) {
    double g = 0.0;
    for (std::size_t f = 0; f < p.features.size(); ++f) {
      const CoverageKernel& kern = kernels[f];
      const int sup = kern.support();
      const int lo = std::max(0, instant - sup);
      const int hi = std::min(n - 1, instant + sup);
      double gf = 0.0;
      for (int j = lo; j <= hi; ++j)
        gf += q[f][static_cast<std::size_t>(j)] *
              kern.at(std::abs(j - instant));
      g += p.features[f].weight * gf;
    }
    return g;
  };

  auto feasible_user = [&](int instant) {
    int best = -1;
    int best_remaining = 0;
    for (int u = 0; u < k; ++u) {
      if (taken[static_cast<std::size_t>(instant) * k + u]) continue;
      if (!matroid.InGroundSet({u, instant})) continue;
      const int r = matroid.remaining(u);
      if (r > best_remaining) {
        best_remaining = r;
        best = u;
      }
    }
    return best;
  };

  // Incremental greedy with a gain cache (same structure as the
  // single-kernel implementation; refresh radius is the widest kernel).
  std::vector<double> cache(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) cache[static_cast<std::size_t>(i)] = gain(i);

  while (true) {
    double best_gain = -1.0;
    int best_instant = -1;
    for (int i = 0; i < n; ++i) {
      if (cache[static_cast<std::size_t>(i)] <= best_gain) continue;
      if (feasible_user(i) < 0) continue;
      best_gain = cache[static_cast<std::size_t>(i)];
      best_instant = i;
    }
    if (best_instant < 0) break;
    const int user = feasible_user(best_instant);
    matroid.Add({user, best_instant});
    taken[static_cast<std::size_t>(best_instant) * k + user] = 1;
    schedule.per_user[static_cast<std::size_t>(user)].push_back(best_instant);
    for (std::size_t f = 0; f < p.features.size(); ++f) {
      const CoverageKernel& kern = kernels[f];
      const int sup = kern.support();
      const int lo = std::max(0, best_instant - sup);
      const int hi = std::min(n - 1, best_instant + sup);
      for (int j = lo; j <= hi; ++j)
        q[f][static_cast<std::size_t>(j)] *=
            1.0 - kern.at(std::abs(j - best_instant));
    }
    const int lo = std::max(0, best_instant - 2 * max_support);
    const int hi = std::min(n - 1, best_instant + 2 * max_support);
    for (int i = lo; i <= hi; ++i) cache[static_cast<std::size_t>(i)] = gain(i);
  }

  for (auto& phi : schedule.per_user) std::sort(phi.begin(), phi.end());
  return EvaluateMultiFeature(p, schedule);
}

}  // namespace sor::sched

// Exact optimum by exhaustive search over independent sets.
//
// Exponential — usable only on toy instances (ground set ≤ ~20 elements).
// Exists so the test suite can verify Algorithm 1's 1/2-approximation bound
// empirically: greedy objective ≥ 0.5 · brute-force objective on every
// enumerable instance.
#pragma once

#include "common/result.hpp"
#include "sched/coverage.hpp"
#include "sched/greedy.hpp"

namespace sor::sched {

// Fails with kInvalidArgument when the ground set exceeds `max_elements`.
[[nodiscard]] Result<ScheduleResult> BruteForceOptimalSchedule(
    const Problem& p, int max_elements = 22);

}  // namespace sor::sched

#include "rank/distances.hpp"

#include <algorithm>
#include <vector>
#include <cassert>
#include <cstdlib>

namespace sor::rank {

std::int64_t KemenyDistance(const Ranking& a, const Ranking& b) {
  assert(a.size() == b.size());
  const int n = a.size();
  std::int64_t violations = 0;
  // O(n^2) pair scan; n = number of target places, small in practice. For
  // large n this could be an O(n log n) inversion count, but clarity wins
  // at this scale.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const int da = a.position_of(i) - a.position_of(j);
      const int db = b.position_of(i) - b.position_of(j);
      if (static_cast<std::int64_t>(da) * db < 0) ++violations;
    }
  }
  return violations;
}

namespace {

// Counts inversions in xs[lo, hi) with a scratch buffer; standard
// merge-sort inversion counting.
std::int64_t CountInversions(std::vector<int>& xs, std::vector<int>& tmp,
                             std::size_t lo, std::size_t hi) {
  if (hi - lo <= 1) return 0;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::int64_t inv = CountInversions(xs, tmp, lo, mid) +
                     CountInversions(xs, tmp, mid, hi);
  std::size_t i = lo;
  std::size_t j = mid;
  std::size_t k = lo;
  while (i < mid && j < hi) {
    if (xs[i] <= xs[j]) {
      tmp[k++] = xs[i++];
    } else {
      inv += static_cast<std::int64_t>(mid - i);
      tmp[k++] = xs[j++];
    }
  }
  while (i < mid) tmp[k++] = xs[i++];
  while (j < hi) tmp[k++] = xs[j++];
  std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
            tmp.begin() + static_cast<std::ptrdiff_t>(hi),
            xs.begin() + static_cast<std::ptrdiff_t>(lo));
  return inv;
}

}  // namespace

std::int64_t KemenyDistanceFast(const Ranking& a, const Ranking& b) {
  assert(a.size() == b.size());
  // Walk b's order, mapping each item to its position in a: the Kemeny
  // distance is exactly the number of inversions in that sequence.
  std::vector<int> mapped(static_cast<std::size_t>(b.size()));
  for (int pos = 0; pos < b.size(); ++pos)
    mapped[static_cast<std::size_t>(pos)] = a.position_of(b.item_at(pos));
  std::vector<int> tmp(mapped.size());
  return CountInversions(mapped, tmp, 0, mapped.size());
}

std::int64_t FootruleDistance(const Ranking& a, const Ranking& b) {
  assert(a.size() == b.size());
  std::int64_t sum = 0;
  for (int i = 0; i < a.size(); ++i)
    sum += std::abs(a.position_of(i) - b.position_of(i));
  return sum;
}

double WeightedKemeny(const Ranking& r, std::span<const Ranking> omega,
                      std::span<const double> weights) {
  assert(omega.size() == weights.size());
  double total = 0.0;
  for (std::size_t j = 0; j < omega.size(); ++j)
    total += weights[j] * static_cast<double>(KemenyDistance(r, omega[j]));
  return total;
}

double WeightedFootrule(const Ranking& r, std::span<const Ranking> omega,
                        std::span<const double> weights) {
  assert(omega.size() == weights.size());
  double total = 0.0;
  for (std::size_t j = 0; j < omega.size(); ++j)
    total += weights[j] * static_cast<double>(FootruleDistance(r, omega[j]));
  return total;
}

}  // namespace sor::rank

// Ranking: an ordered permutation of item (target-place) indices.
//
// order()[0] is the item ranked No. 1. position_of(i) is the paper's index
// function π(i, R): where item i sits in the ranking (0-based here).
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"

namespace sor::rank {

class Ranking {
 public:
  Ranking() = default;

  // `order` must be a permutation of {0, ..., n-1}; checked by FromOrder.
  [[nodiscard]] static Result<Ranking> FromOrder(std::vector<int> order);

  // Identity ranking 0,1,...,n-1.
  [[nodiscard]] static Ranking Identity(int n);

  [[nodiscard]] int size() const { return static_cast<int>(order_.size()); }
  [[nodiscard]] const std::vector<int>& order() const { return order_; }
  [[nodiscard]] int item_at(int pos) const { return order_[pos]; }
  // π(i, R): the 0-based position of item i.
  [[nodiscard]] int position_of(int item) const { return position_[item]; }

  friend bool operator==(const Ranking&, const Ranking&) = default;

  [[nodiscard]] std::string str() const;

 private:
  std::vector<int> order_;     // position -> item
  std::vector<int> position_;  // item -> position (the π function)
};

}  // namespace sor::rank

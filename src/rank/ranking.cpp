#include "rank/ranking.hpp"

#include <numeric>

namespace sor::rank {

Result<Ranking> Ranking::FromOrder(std::vector<int> order) {
  const int n = static_cast<int>(order.size());
  std::vector<int> position(n, -1);
  for (int pos = 0; pos < n; ++pos) {
    const int item = order[pos];
    if (item < 0 || item >= n)
      return Error{Errc::kInvalidArgument,
                   "item index out of range: " + std::to_string(item)};
    if (position[item] != -1)
      return Error{Errc::kInvalidArgument,
                   "duplicate item: " + std::to_string(item)};
    position[item] = pos;
  }
  Ranking r;
  r.order_ = std::move(order);
  r.position_ = std::move(position);
  return r;
}

Ranking Ranking::Identity(int n) {
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  Ranking r;
  r.order_ = order;
  r.position_ = std::move(order);
  return r;
}

std::string Ranking::str() const {
  std::string s = "[";
  for (int i = 0; i < size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(order_[i]);
  }
  s += "]";
  return s;
}

}  // namespace sor::rank

// Personalizable ranking — Algorithm 2 of the paper, end to end:
//
//   Step 1: Γ_ij = |h_ij − u_j| — distance of each place's feature value to
//           the value the user prefers (with system defaults, e.g. 73 °F
//           for temperature, and ±MAX sentinels for monotone features such
//           as WiFi signal strength where larger/smaller is always better).
//   Step 2: per-feature individual rankings R_j = places sorted ascending
//           by Γ_ij (stable; ties toward lower place index).
//   Step 3: aggregate {R_j} under the user's weights W via the weighted-
//           footrule min-cost-flow algorithm (or a pluggable alternative).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "rank/aggregate.hpp"
#include "rank/ranking.hpp"

namespace sor::rank {

// How a feature behaves when the user expresses no explicit target value.
enum class PrefDirection {
  kTarget,    // meaningful target value exists (temperature → 73 °F default)
  kMaximize,  // always the larger the better (WiFi signal strength)
  kMinimize,  // always the smaller the better (background noise)
};

struct FeatureSpec {
  std::string name;
  PrefDirection direction = PrefDirection::kTarget;
  double default_preference = 0.0;  // used for kTarget when user is silent
};

// One user's stance on one feature (a row of the Fig. 7 / Fig. 11 profile
// forms). Weight is the paper's 0..5 emphasis integer: 0 = "doesn't care",
// 5 = "really cares".
struct FeaturePreference {
  enum class Kind {
    kDefault,  // fall back to the feature's direction/default
    kValue,    // explicit preferred value u_j
    kMax,      // the paper's MAX sentinel ("prefers difficult trails")
    kMin,      // symmetric MIN sentinel
  };
  Kind kind = Kind::kDefault;
  double value = 0.0;  // only meaningful when kind == kValue
  int weight = 0;

  static FeaturePreference Prefer(double v, int weight) {
    return {Kind::kValue, v, weight};
  }
  static FeaturePreference PreferMax(int weight) {
    return {Kind::kMax, 0.0, weight};
  }
  static FeaturePreference PreferMin(int weight) {
    return {Kind::kMin, 0.0, weight};
  }
  static FeaturePreference DontCare() { return {Kind::kDefault, 0.0, 0}; }
};

struct UserProfile {
  std::string name;
  std::vector<FeaturePreference> prefs;  // one per feature, same order as H
};

// H: N target places × M features, the matrix the ranker reads from the
// database (§IV-A). One instance covers one place category.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  FeatureMatrix(std::vector<std::string> place_names,
                std::vector<FeatureSpec> features);

  [[nodiscard]] int num_places() const {
    return static_cast<int>(place_names_.size());
  }
  [[nodiscard]] int num_features() const {
    return static_cast<int>(features_.size());
  }
  [[nodiscard]] const std::vector<std::string>& place_names() const {
    return place_names_;
  }
  [[nodiscard]] const std::vector<FeatureSpec>& features() const {
    return features_;
  }
  [[nodiscard]] int feature_index(std::string_view name) const;

  [[nodiscard]] double at(int place, int feature) const {
    return h_[static_cast<std::size_t>(place) * num_features() + feature];
  }
  void set(int place, int feature, double v) {
    h_[static_cast<std::size_t>(place) * num_features() + feature] = v;
  }

 private:
  std::vector<std::string> place_names_;
  std::vector<FeatureSpec> features_;
  std::vector<double> h_;  // row-major N×M
};

struct RankingOutcome {
  Ranking final_ranking;
  std::vector<Ranking> individual;  // R_j per feature (Step 2)
  std::vector<double> gamma;        // Γ, row-major N×M (Step 1)
  std::vector<double> weights;      // resolved W

  // Place names of the final ranking, best first.
  [[nodiscard]] std::vector<std::string> OrderedNames(
      const FeatureMatrix& m) const;
};

enum class AggregationMethod {
  kFootruleMcmf,       // the paper's algorithm (default)
  kFootruleHungarian,  // same objective, different solver
  kExactKemeny,        // brute force, small N only
  kBorda,              // positional baseline
};

class PersonalizableRanker {
 public:
  explicit PersonalizableRanker(FeatureMatrix matrix)
      : matrix_(std::move(matrix)) {}

  [[nodiscard]] const FeatureMatrix& matrix() const { return matrix_; }

  // Runs Algorithm 2 for one user. The profile must have exactly one
  // preference per feature.
  [[nodiscard]] Result<RankingOutcome> Rank(
      const UserProfile& profile,
      AggregationMethod method = AggregationMethod::kFootruleMcmf) const;

  // The paper's "relatively large integer pre-configured in SOR".
  static constexpr double kMaxSentinel = 1e9;

 private:
  FeatureMatrix matrix_;
};

}  // namespace sor::rank

#include "rank/personalizable_ranker.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sor::rank {

FeatureMatrix::FeatureMatrix(std::vector<std::string> place_names,
                             std::vector<FeatureSpec> features)
    : place_names_(std::move(place_names)), features_(std::move(features)) {
  h_.assign(place_names_.size() * features_.size(), 0.0);
}

int FeatureMatrix::feature_index(std::string_view name) const {
  for (int j = 0; j < num_features(); ++j) {
    if (features_[static_cast<std::size_t>(j)].name == name) return j;
  }
  return -1;
}

std::vector<std::string> RankingOutcome::OrderedNames(
    const FeatureMatrix& m) const {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(final_ranking.size()));
  for (int pos = 0; pos < final_ranking.size(); ++pos)
    names.push_back(m.place_names()[static_cast<std::size_t>(
        final_ranking.item_at(pos))]);
  return names;
}

Result<RankingOutcome> PersonalizableRanker::Rank(
    const UserProfile& profile, AggregationMethod method) const {
  const int n = matrix_.num_places();
  const int m = matrix_.num_features();
  if (n < 1) return Error{Errc::kInvalidArgument, "no places to rank"};
  if (m < 1) return Error{Errc::kInvalidArgument, "no features"};
  if (static_cast<int>(profile.prefs.size()) != m)
    return Error{Errc::kInvalidArgument,
                 "profile has " + std::to_string(profile.prefs.size()) +
                     " preferences, matrix has " + std::to_string(m) +
                     " features"};

  RankingOutcome out;
  out.gamma.assign(static_cast<std::size_t>(n) * m, 0.0);
  out.weights.resize(static_cast<std::size_t>(m));

  // Step 1: resolve u_j per feature and fill Γ_ij = |h_ij − u_j|.
  for (int j = 0; j < m; ++j) {
    const FeaturePreference& pref = profile.prefs[static_cast<std::size_t>(j)];
    const FeatureSpec& spec = matrix_.features()[static_cast<std::size_t>(j)];
    if (pref.weight < 0 || pref.weight > 5)
      return Error{Errc::kInvalidArgument,
                   "weight must be in [0,5] for feature " + spec.name};
    double u = 0.0;
    switch (pref.kind) {
      case FeaturePreference::Kind::kValue:
        u = pref.value;
        break;
      case FeaturePreference::Kind::kMax:
        u = kMaxSentinel;
        break;
      case FeaturePreference::Kind::kMin:
        u = -kMaxSentinel;
        break;
      case FeaturePreference::Kind::kDefault:
        switch (spec.direction) {
          case PrefDirection::kTarget: u = spec.default_preference; break;
          case PrefDirection::kMaximize: u = kMaxSentinel; break;
          case PrefDirection::kMinimize: u = -kMaxSentinel; break;
        }
        break;
    }
    out.weights[static_cast<std::size_t>(j)] =
        static_cast<double>(pref.weight);
    for (int i = 0; i < n; ++i) {
      out.gamma[static_cast<std::size_t>(i) * m + j] =
          std::fabs(matrix_.at(i, j) - u);
    }
  }

  // Step 2: individual ranking R_j = places sorted ascending by Γ_ij.
  out.individual.reserve(static_cast<std::size_t>(m));
  for (int j = 0; j < m; ++j) {
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      const double ga = out.gamma[static_cast<std::size_t>(a) * m + j];
      const double gb = out.gamma[static_cast<std::size_t>(b) * m + j];
      if (ga != gb) return ga < gb;
      return a < b;
    });
    Result<Ranking> rj = Ranking::FromOrder(std::move(order));
    if (!rj.ok()) return rj.error();
    out.individual.push_back(std::move(rj).value());
  }

  // Step 3: weighted aggregation.
  Result<Ranking> final = [&]() -> Result<Ranking> {
    switch (method) {
      case AggregationMethod::kFootruleMcmf:
        return FootruleMcmfAggregate(out.individual, out.weights);
      case AggregationMethod::kFootruleHungarian:
        return FootruleHungarianAggregate(out.individual, out.weights);
      case AggregationMethod::kExactKemeny:
        return ExactKemenyAggregate(out.individual, out.weights);
      case AggregationMethod::kBorda:
        return BordaAggregate(out.individual, out.weights);
    }
    return Error{Errc::kInvalidArgument, "unknown aggregation method"};
  }();
  if (!final.ok()) return final.error();
  out.final_ranking = std::move(final).value();
  return out;
}

}  // namespace sor::rank

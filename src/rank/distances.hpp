// Rank distances (§IV-B).
//
// * Kemeny distance (Definition 2): the number of pairwise order violations
//   between two rankings. The paper's worked example (R1 = A,B,C versus
//   R2 = B,C,A has distance 2) counts each unordered pair once, so we sum
//   over i < i'.
// * Spearman's footrule (Eq. 9): Σ_i |π(i,R1) − π(i,R2)|, with the
//   Diaconis–Graham sandwich d_K ≤ d_f ≤ 2·d_K (Eq. 10).
// * Weighted K-/f-ranking distances to a collection Ω of per-feature
//   rankings (Eqs. 7 and 11).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rank/ranking.hpp"

namespace sor::rank {

// O(n²) pair scan — the reference implementation, clearest to audit.
[[nodiscard]] std::int64_t KemenyDistance(const Ranking& a, const Ranking& b);

// O(n log n) merge-sort inversion count — identical result; use when
// ranking hundreds of places (e.g. a whole city's restaurants).
[[nodiscard]] std::int64_t KemenyDistanceFast(const Ranking& a,
                                              const Ranking& b);

[[nodiscard]] std::int64_t FootruleDistance(const Ranking& a,
                                            const Ranking& b);

// Weighted distance from `r` to the collection Ω with weights w (Eq. 7/11).
// weights.size() must equal rankings.size().
[[nodiscard]] double WeightedKemeny(const Ranking& r,
                                    std::span<const Ranking> omega,
                                    std::span<const double> weights);
[[nodiscard]] double WeightedFootrule(const Ranking& r,
                                      std::span<const Ranking> omega,
                                      std::span<const double> weights);

}  // namespace sor::rank

// Rank aggregation: combine per-feature rankings Ω with user weights W into
// one final ranking (Step 3 of Algorithm 2).
//
// * FootruleMcmfAggregate — the paper's algorithm: minimize the weighted
//   f-ranking distance (Eq. 11) by a min-cost flow on the auxiliary
//   assignment graph. Exact for the footrule objective; a 2-approximation
//   for the weighted Kemeny objective by Eq. (10). (The paper calls this a
//   "1/2-approximate solution", i.e. the same multiplicative bound stated
//   from the other side.)
// * FootruleHungarianAggregate — same objective solved with Kuhn–Munkres;
//   ablation/cross-check.
// * ExactKemenyAggregate — brute force over all N! rankings; feasible for
//   the small N of the field tests and used by tests/benches to *measure*
//   the approximation factor. NP-hard in general [7], hence the cutoff.
// * BordaAggregate — classic positional baseline for the ablation bench.
//
// Ties inside an aggregator are broken toward lower item index so results
// are deterministic.
#pragma once

#include <span>

#include "common/result.hpp"
#include "rank/distances.hpp"
#include "rank/ranking.hpp"

namespace sor::rank {

// Weights must be non-negative; rankings must all have equal size >= 1.
[[nodiscard]] Status ValidateAggregationInput(std::span<const Ranking> omega,
                                              std::span<const double> weights);

[[nodiscard]] Result<Ranking> FootruleMcmfAggregate(
    std::span<const Ranking> omega, std::span<const double> weights);

[[nodiscard]] Result<Ranking> FootruleHungarianAggregate(
    std::span<const Ranking> omega, std::span<const double> weights);

// max_n guards the factorial blow-up; > max_n returns kInvalidArgument.
[[nodiscard]] Result<Ranking> ExactKemenyAggregate(
    std::span<const Ranking> omega, std::span<const double> weights,
    int max_n = 9);

[[nodiscard]] Result<Ranking> BordaAggregate(std::span<const Ranking> omega,
                                             std::span<const double> weights);

}  // namespace sor::rank

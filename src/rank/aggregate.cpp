#include "rank/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "flow/assignment.hpp"

namespace sor::rank {

namespace {

// Weighted footrule costs are w_j * |π − i'| with real-valued weights;
// scale to integers for the flow/Hungarian solvers. 10^6 preserves six
// decimal digits of weight precision, far beyond the 0..5 integer weights
// user profiles actually use.
constexpr double kCostScale = 1e6;

flow::CostMatrix BuildFootruleCosts(std::span<const Ranking> omega,
                                    std::span<const double> weights) {
  const int n = omega.empty() ? 0 : omega[0].size();
  flow::CostMatrix m;
  m.n = n;
  m.cost.assign(static_cast<std::size_t>(n) * n, 0);
  for (int i = 0; i < n; ++i) {
    for (int ip = 0; ip < n; ++ip) {
      double c = 0.0;
      for (std::size_t j = 0; j < omega.size(); ++j)
        c += weights[j] * std::abs(omega[j].position_of(i) - ip);
      m.at(i, ip) = static_cast<std::int64_t>(std::llround(c * kCostScale));
    }
  }
  return m;
}

Result<Ranking> RankingFromAssignment(const flow::AssignmentResult& a) {
  // column_of_row[i] = final position of item i; invert to an order.
  const int n = static_cast<int>(a.column_of_row.size());
  std::vector<int> order(n, -1);
  for (int i = 0; i < n; ++i) order[a.column_of_row[i]] = i;
  return Ranking::FromOrder(std::move(order));
}

}  // namespace

Status ValidateAggregationInput(std::span<const Ranking> omega,
                                std::span<const double> weights) {
  if (omega.empty())
    return Status(Errc::kInvalidArgument, "no rankings to aggregate");
  if (omega.size() != weights.size())
    return Status(Errc::kInvalidArgument, "weights/rankings size mismatch");
  const int n = omega[0].size();
  if (n < 1) return Status(Errc::kInvalidArgument, "empty ranking");
  for (const Ranking& r : omega) {
    if (r.size() != n)
      return Status(Errc::kInvalidArgument, "ranking sizes differ");
  }
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w))
      return Status(Errc::kInvalidArgument, "weights must be >= 0 and finite");
  }
  return Status::Ok();
}

Result<Ranking> FootruleMcmfAggregate(std::span<const Ranking> omega,
                                      std::span<const double> weights) {
  if (Status s = ValidateAggregationInput(omega, weights); !s.ok())
    return s.error();
  const flow::CostMatrix costs = BuildFootruleCosts(omega, weights);
  Result<flow::AssignmentResult> a = flow::SolveAssignmentFlow(costs);
  if (!a.ok()) return a.error();
  return RankingFromAssignment(a.value());
}

Result<Ranking> FootruleHungarianAggregate(std::span<const Ranking> omega,
                                           std::span<const double> weights) {
  if (Status s = ValidateAggregationInput(omega, weights); !s.ok())
    return s.error();
  const flow::CostMatrix costs = BuildFootruleCosts(omega, weights);
  Result<flow::AssignmentResult> a = flow::SolveAssignmentHungarian(costs);
  if (!a.ok()) return a.error();
  return RankingFromAssignment(a.value());
}

Result<Ranking> ExactKemenyAggregate(std::span<const Ranking> omega,
                                     std::span<const double> weights,
                                     int max_n) {
  if (Status s = ValidateAggregationInput(omega, weights); !s.ok())
    return s.error();
  const int n = omega[0].size();
  if (n > max_n)
    return Error{Errc::kInvalidArgument,
                 "exact Kemeny limited to n <= " + std::to_string(max_n)};

  // Precompute weighted pairwise preference: pref[i][j] = total weight of
  // rankings placing i before j. A candidate ranking's weighted Kemeny
  // distance is the sum of pref[j][i] over pairs it orders i before j —
  // O(n^2) per permutation instead of O(n^2 * M).
  std::vector<std::vector<double>> pref(n, std::vector<double>(n, 0.0));
  for (std::size_t m = 0; m < omega.size(); ++m) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j && omega[m].position_of(i) < omega[m].position_of(j))
          pref[i][j] += weights[m];
      }
    }
  }

  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<int> best = perm;
  double best_cost = std::numeric_limits<double>::infinity();
  do {
    double cost = 0.0;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        // perm puts perm[a] before perm[b]; rankings that disagree pay.
        cost += pref[perm[b]][perm[a]];
      }
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return Ranking::FromOrder(std::move(best));
}

Result<Ranking> BordaAggregate(std::span<const Ranking> omega,
                               std::span<const double> weights) {
  if (Status s = ValidateAggregationInput(omega, weights); !s.ok())
    return s.error();
  const int n = omega[0].size();
  // Weighted mean position; lower is better.
  std::vector<double> score(n, 0.0);
  for (std::size_t j = 0; j < omega.size(); ++j) {
    for (int i = 0; i < n; ++i)
      score[i] += weights[j] * omega[j].position_of(i);
  }
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (score[a] != score[b]) return score[a] < score[b];
    return a < b;
  });
  return Ranking::FromOrder(std::move(order));
}

}  // namespace sor::rank

#include "rank/hybrid.hpp"

#include <algorithm>
#include <numeric>

namespace sor::rank {

Result<Ranking> SubjectiveRatings::ToRanking() const {
  const int n = static_cast<int>(stars.size());
  if (n == 0) return Error{Errc::kInvalidArgument, "no ratings"};
  if (!review_counts.empty() &&
      review_counts.size() != stars.size()) {
    return Error{Errc::kInvalidArgument,
                 "review_counts/stars size mismatch"};
  }
  for (double s : stars) {
    if (s < 0.0 || s > 5.0)
      return Error{Errc::kInvalidArgument, "stars must be in [0, 5]"};
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const auto sa = stars[static_cast<std::size_t>(a)];
    const auto sb = stars[static_cast<std::size_t>(b)];
    if (sa != sb) return sa > sb;  // more stars ranks higher
    if (!review_counts.empty()) {
      const int ra = review_counts[static_cast<std::size_t>(a)];
      const int rb = review_counts[static_cast<std::size_t>(b)];
      if (ra != rb) return ra > rb;  // more reviews = more confidence
    }
    return a < b;
  });
  return Ranking::FromOrder(std::move(order));
}

Result<RankingOutcome> HybridRank(const PersonalizableRanker& ranker,
                                  const UserProfile& profile,
                                  const SubjectiveRatings& ratings,
                                  double subjective_weight,
                                  AggregationMethod method) {
  if (subjective_weight < 0.0)
    return Error{Errc::kInvalidArgument, "subjective weight must be >= 0"};
  if (static_cast<int>(ratings.stars.size()) !=
      ranker.matrix().num_places()) {
    return Error{Errc::kInvalidArgument,
                 "ratings cover " + std::to_string(ratings.stars.size()) +
                     " places, matrix has " +
                     std::to_string(ranker.matrix().num_places())};
  }

  // Steps 1–2 of Algorithm 2 via the objective ranker (its aggregation
  // result is discarded; only the individual rankings and weights matter).
  Result<RankingOutcome> objective = ranker.Rank(profile, method);
  if (!objective.ok()) return objective;
  RankingOutcome out = std::move(objective).value();

  Result<Ranking> subjective = ratings.ToRanking();
  if (!subjective.ok()) return subjective.error();
  out.individual.push_back(std::move(subjective).value());
  out.weights.push_back(subjective_weight);

  // Step 3 over the extended Ω.
  Result<Ranking> final = [&]() -> Result<Ranking> {
    switch (method) {
      case AggregationMethod::kFootruleMcmf:
        return FootruleMcmfAggregate(out.individual, out.weights);
      case AggregationMethod::kFootruleHungarian:
        return FootruleHungarianAggregate(out.individual, out.weights);
      case AggregationMethod::kExactKemeny:
        return ExactKemenyAggregate(out.individual, out.weights);
      case AggregationMethod::kBorda:
        return BordaAggregate(out.individual, out.weights);
    }
    return Error{Errc::kInvalidArgument, "unknown aggregation method"};
  }();
  if (!final.ok()) return final.error();
  out.final_ranking = std::move(final).value();
  return out;
}

}  // namespace sor::rank

// Hybrid objective + subjective ranking.
//
// The paper positions SOR as a complement: "Our objective is not to
// replace the current ranking/recommendation systems that are based on
// subjective user ratings but to enhance them ... the proposed system,
// ranking algorithm and sensed data can be integrated into existing
// subjective ranking and recommendation systems" (§I). This module does
// that integration: the community's star ratings become one more
// individual ranking in Ω, weighted like any feature, and the same
// weighted-footrule aggregation produces the blended result.
#pragma once

#include "rank/personalizable_ranker.hpp"

namespace sor::rank {

// Community ratings for the same places (same order as the matrix).
struct SubjectiveRatings {
  std::vector<double> stars;        // e.g. Yelp 1.0–5.0
  std::vector<int> review_counts;   // optional; empty = equal confidence

  // Ranking by stars descending; ties broken by review count then index.
  [[nodiscard]] Result<Ranking> ToRanking() const;
};

// Algorithm 2 with the subjective ranking appended to Ω.
// `subjective_weight` plays the role of the paper's 0–5 feature weights;
// 0 reduces to the purely objective ranking.
[[nodiscard]] Result<RankingOutcome> HybridRank(
    const PersonalizableRanker& ranker, const UserProfile& profile,
    const SubjectiveRatings& ratings, double subjective_weight,
    AggregationMethod method = AggregationMethod::kFootruleMcmf);

}  // namespace sor::rank

// Reed–Solomon error correction over GF(2^8).
//
// Real 2D barcodes survive physical damage because their payload carries
// Reed–Solomon parity; this module gives the SOR barcode the same
// resilience (§II: the barcode is a physical object deployed in a public
// place — smudges happen). Classic RS(n, k) with the QR-code field
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d):
//
//   RsEncode  — append `nsym` parity bytes (message length + nsym ≤ 255);
//   RsDecode  — correct up to nsym/2 byte errors in place, or fail.
//
// Decoding is syndrome → Berlekamp–Massey → Chien search → Forney.
#pragma once

#include <cstdint>

#include "codec/bytes.hpp"
#include "common/result.hpp"

namespace sor {

inline constexpr int kRsMaxBlock = 255;

// data + nsym parity bytes. Fails if data.size() + nsym > 255 or nsym < 2.
[[nodiscard]] Result<Bytes> RsEncode(std::span<const std::uint8_t> data,
                                     int nsym);

// Returns the corrected message (parity stripped). Fails when more than
// nsym/2 byte errors are present (detected via non-converging locator or
// inconsistent syndromes).
[[nodiscard]] Result<Bytes> RsDecode(std::span<const std::uint8_t> codeword,
                                     int nsym);

}  // namespace sor

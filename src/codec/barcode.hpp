// 2D-barcode codec.
//
// In SOR, "a 2D barcode needs to be deployed in a target place to trigger a
// sensing procedure" (§I): scanning it yields the identity of the sensing
// application / target place plus where to reach the sensing server. This
// module reproduces that trigger end to end:
//
//   BarcodePayload  --encode-->  bytes (+CRC-32)  --render-->  BitMatrix
//                                            \--render-->  base32 text
//
// The BitMatrix is a QR-inspired square grid with three corner finder
// patterns and a module count derived from the payload size; it is what a
// simulated phone camera "scans". Damaged codes (flipped modules corrupting
// the payload, missing finder patterns) are detected and rejected, which the
// integration tests use for failure injection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codec/bytes.hpp"
#include "common/geo.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"

namespace sor {

struct BarcodePayload {
  AppId app;
  PlaceId place;
  std::string place_name;
  GeoPoint location;       // canonical location of the target place
  std::string server;      // endpoint name of the sensing server
  double radius_m = 75.0;  // participation radius used for verification

  friend bool operator==(const BarcodePayload&,
                         const BarcodePayload&) = default;
};

// Byte-level codec (payload | crc32).
[[nodiscard]] Bytes EncodeBarcodeBytes(const BarcodePayload& p);
[[nodiscard]] Result<BarcodePayload> DecodeBarcodeBytes(
    std::span<const std::uint8_t> data);

// Human-transportable text rendering (RFC-4648 base32, no padding), the kind
// of string a barcode app would hand to the SOR frontend.
[[nodiscard]] std::string EncodeBarcodeText(const BarcodePayload& p);
[[nodiscard]] Result<BarcodePayload> DecodeBarcodeText(const std::string& s);

// Square module grid (row-major), the simulated physical barcode.
class BitMatrix {
 public:
  BitMatrix() = default;
  explicit BitMatrix(int size) : size_(size), bits_(size * size, false) {}

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] bool get(int r, int c) const {
    return bits_[static_cast<std::size_t>(r) * size_ + c];
  }
  void set(int r, int c, bool v) {
    bits_[static_cast<std::size_t>(r) * size_ + c] = v;
  }

  // Flip one module — used by tests to simulate scan damage.
  void flip(int r, int c) { set(r, c, !get(r, c)); }

  // ASCII-art dump ("##" per dark module) for the Visualization module.
  [[nodiscard]] std::string ascii() const;

 private:
  int size_ = 0;
  std::vector<bool> bits_;
};

[[nodiscard]] BitMatrix RenderBarcodeMatrix(const BarcodePayload& p);
[[nodiscard]] Result<BarcodePayload> ScanBarcodeMatrix(const BitMatrix& m);

}  // namespace sor

// Binary (de)serialization primitives.
//
// SOR transmits everything as "binary data ... stored in the message body of
// an HTTP message" (§II-A) — partly to minimize traffic, partly as security
// by opacity. This is the single encode/decode layer used by wire messages,
// the barcode codec, and the raw-blob column in the database.
//
// Wire format conventions:
//  * unsigned integers: LEB128-style varint (7 bits per byte, little-endian)
//  * signed integers:   zigzag-mapped varint
//  * doubles:           8-byte IEEE-754 little-endian
//  * strings/blobs:     varint length prefix + raw bytes
// Decoding is non-throwing: ByteReader sticks at the first malformed field
// and reports failure, so a corrupted message can never crash the server.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace sor {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32_fixed(std::uint32_t v);
  void u64_fixed(std::uint64_t v);
  void varint(std::uint64_t v);
  void svarint(std::int64_t v);  // zigzag
  void f64(double v);
  void str(std::string_view s);
  void blob(std::span<const std::uint8_t> b);
  void boolean(bool b) { u8(b ? 1 : 0); }

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

// Reads sequentially from a byte span. After any failed read, ok() is false
// and every subsequent read returns a zero value; callers check ok() once at
// the end of a decode (monadic-style error sticking).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32_fixed();
  [[nodiscard]] std::uint64_t u64_fixed();
  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::int64_t svarint();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] Bytes blob();
  [[nodiscard]] bool boolean() { return u8() != 0; }

  // Mark the stream malformed (e.g. a field decoded to an out-of-range
  // enum value); all subsequent reads return zero and finish() fails.
  void invalidate() { ok_ = false; }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  // Finish a decode: success only if no read failed *and* no bytes trail.
  [[nodiscard]] Status finish() const {
    if (!ok_) return Status(Errc::kDecodeError, "truncated or malformed");
    if (!at_end()) return Status(Errc::kDecodeError, "trailing bytes");
    return Status::Ok();
  }

 private:
  void fail() { ok_ = false; }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sor

#include "codec/messages.hpp"

#include <cassert>

#include "codec/crc32.hpp"

namespace sor {

namespace {

// "SOR5" little-endian. Bumped from "SOR1" (0x31524F53) when seq fields were
// added to SensedDataUpload and Ack, from "SOR2" (0x32524F53) when
// ScheduleDistribution grew the required-sensor manifest, from "SOR3"
// (0x33524F53) when ThrottleReply and ParticipationRequest::incarnation were
// added for overload control, and from "SOR4" (0x34524F53) when
// ScheduleDistribution grew the information-flow manifest; old frames fail
// the magic check rather than being mis-decoded positionally.
constexpr std::uint32_t kMagic = 0x35524F53;  // "SOR5"

void EncodeGeo(const GeoPoint& p, ByteWriter& w) {
  w.f64(p.lat_deg);
  w.f64(p.lon_deg);
  w.f64(p.alt_m);
}

GeoPoint DecodeGeo(ByteReader& r) {
  GeoPoint p;
  p.lat_deg = r.f64();
  p.lon_deg = r.f64();
  p.alt_m = r.f64();
  return p;
}

void EncodeTime(SimTime t, ByteWriter& w) { w.svarint(t.ms); }
SimTime DecodeTime(ByteReader& r) { return SimTime{r.svarint()}; }

}  // namespace

void EncodeReadingTuple(const ReadingTuple& t, ByteWriter& w) {
  w.u8(static_cast<std::uint8_t>(t.kind));
  EncodeTime(t.t, w);
  w.svarint(t.dt.ms);
  w.varint(t.values.size());
  for (double v : t.values) w.f64(v);
  w.varint(t.locations.size());
  for (const GeoPoint& p : t.locations) EncodeGeo(p, w);
}

ReadingTuple DecodeReadingTuple(ByteReader& r) {
  ReadingTuple t;
  const std::uint8_t kind = r.u8();
  if (kind >= static_cast<std::uint8_t>(SensorKind::kCount)) {
    // Unknown sensor kinds must fail the whole decode rather than be
    // silently coerced to a valid one.
    r.invalidate();
    return t;
  }
  t.kind = static_cast<SensorKind>(kind);
  t.t = DecodeTime(r);
  t.dt = SimDuration{r.svarint()};
  const std::uint64_t nv = r.varint();
  if (nv > r.remaining() / 8 + 1) return t;  // length sanity: avoid huge alloc
  t.values.reserve(static_cast<std::size_t>(nv));
  for (std::uint64_t i = 0; i < nv && r.ok(); ++i) t.values.push_back(r.f64());
  const std::uint64_t nl = r.varint();
  if (nl > r.remaining() / 24 + 1) return t;
  t.locations.reserve(static_cast<std::size_t>(nl));
  for (std::uint64_t i = 0; i < nl && r.ok(); ++i)
    t.locations.push_back(DecodeGeo(r));
  return t;
}

MessageType TypeOf(const Message& m) {
  struct Visitor {
    MessageType operator()(const ParticipationRequest&) const {
      return MessageType::kParticipationRequest;
    }
    MessageType operator()(const ParticipationReply&) const {
      return MessageType::kParticipationReply;
    }
    MessageType operator()(const ScheduleDistribution&) const {
      return MessageType::kScheduleDistribution;
    }
    MessageType operator()(const SensedDataUpload&) const {
      return MessageType::kSensedDataUpload;
    }
    MessageType operator()(const LeaveNotification&) const {
      return MessageType::kLeaveNotification;
    }
    MessageType operator()(const Ping&) const { return MessageType::kPing; }
    MessageType operator()(const PingReply&) const {
      return MessageType::kPingReply;
    }
    MessageType operator()(const Ack&) const { return MessageType::kAck; }
    MessageType operator()(const ErrorReply&) const {
      return MessageType::kErrorReply;
    }
    MessageType operator()(const ThrottleReply&) const {
      return MessageType::kThrottleReply;
    }
  };
  return std::visit(Visitor{}, m);
}

const char* to_string(MessageType t) {
  switch (t) {
    case MessageType::kParticipationRequest: return "participation_request";
    case MessageType::kParticipationReply: return "participation_reply";
    case MessageType::kScheduleDistribution: return "schedule_distribution";
    case MessageType::kSensedDataUpload: return "sensed_data_upload";
    case MessageType::kLeaveNotification: return "leave_notification";
    case MessageType::kPing: return "ping";
    case MessageType::kPingReply: return "ping_reply";
    case MessageType::kAck: return "ack";
    case MessageType::kErrorReply: return "error_reply";
    case MessageType::kThrottleReply: return "throttle_reply";
  }
  return "unknown";
}

void EncodeBody(const Message& m, ByteWriter& w) {
  struct Visitor {
    ByteWriter& w;
    void operator()(const ParticipationRequest& r) const {
      w.varint(r.user.value());
      w.str(r.token.value);
      w.varint(r.app.value());
      EncodeGeo(r.location, w);
      w.svarint(r.budget);
      EncodeTime(r.scan_time, w);
      w.varint(r.incarnation);
    }
    void operator()(const ParticipationReply& r) const {
      w.varint(r.task.value());
      w.boolean(r.accepted);
      w.str(r.reason);
    }
    void operator()(const ScheduleDistribution& s) const {
      w.varint(s.task.value());
      w.varint(s.app.value());
      w.str(s.script);
      w.varint(s.instants.size());
      // Delta-encode instants: schedules are sorted, deltas are small.
      std::int64_t prev = 0;
      for (SimTime t : s.instants) {
        w.svarint(t.ms - prev);
        prev = t.ms;
      }
      w.svarint(s.sample_window.ms);
      w.svarint(s.samples_per_window);
      w.varint(s.required_sensors.size());
      for (SensorKind k : s.required_sensors)
        w.u8(static_cast<std::uint8_t>(k));
      w.str(s.flow_manifest);
    }
    void operator()(const SensedDataUpload& u) const {
      w.varint(u.task.value());
      w.varint(u.user.value());
      w.varint(u.seq);
      w.varint(u.batches.size());
      for (const ReadingTuple& b : u.batches) EncodeReadingTuple(b, w);
    }
    void operator()(const LeaveNotification& l) const {
      w.varint(l.task.value());
      w.varint(l.user.value());
      EncodeTime(l.time, w);
    }
    void operator()(const Ping& p) const { w.varint(p.phone.value()); }
    void operator()(const PingReply& p) const {
      w.varint(p.phone.value());
      EncodeGeo(p.location, w);
      EncodeTime(p.time, w);
    }
    void operator()(const Ack& a) const {
      w.varint(a.in_reply_to);
      w.varint(a.seq);
    }
    void operator()(const ErrorReply& e) const {
      w.u8(e.code);
      w.str(e.message);
    }
    void operator()(const ThrottleReply& t) const {
      w.varint(t.in_reply_to);
      w.varint(t.seq);
      w.svarint(t.retry_after.ms);
      w.u8(t.mode);
    }
  };
  std::visit(Visitor{w}, m);
}

Result<Message> DecodeBody(MessageType type,
                           std::span<const std::uint8_t> body) {
  ByteReader r(body);
  Message out = Ack{};
  switch (type) {
    case MessageType::kParticipationRequest: {
      ParticipationRequest m;
      m.user = UserId{r.varint()};
      m.token = Token{r.str()};
      m.app = AppId{r.varint()};
      m.location = DecodeGeo(r);
      m.budget = static_cast<int>(r.svarint());
      m.scan_time = DecodeTime(r);
      m.incarnation = static_cast<std::uint32_t>(r.varint());
      out = m;
      break;
    }
    case MessageType::kParticipationReply: {
      ParticipationReply m;
      m.task = TaskId{r.varint()};
      m.accepted = r.boolean();
      m.reason = r.str();
      out = m;
      break;
    }
    case MessageType::kScheduleDistribution: {
      ScheduleDistribution m;
      m.task = TaskId{r.varint()};
      m.app = AppId{r.varint()};
      m.script = r.str();
      const std::uint64_t n = r.varint();
      if (n > r.remaining() + 1) return Error{Errc::kDecodeError, "bad count"};
      std::int64_t prev = 0;
      for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        prev += r.svarint();
        m.instants.push_back(SimTime{prev});
      }
      m.sample_window = SimDuration{r.svarint()};
      m.samples_per_window = static_cast<int>(r.svarint());
      const std::uint64_t n_sensors = r.varint();
      if (n_sensors > r.remaining() + 1)
        return Error{Errc::kDecodeError, "bad count"};
      for (std::uint64_t i = 0; i < n_sensors && r.ok(); ++i) {
        const std::uint8_t raw = r.u8();
        if (raw >= static_cast<std::uint8_t>(SensorKind::kCount))
          return Error{Errc::kDecodeError, "unknown sensor kind"};
        m.required_sensors.push_back(static_cast<SensorKind>(raw));
      }
      m.flow_manifest = r.str();
      out = m;
      break;
    }
    case MessageType::kSensedDataUpload: {
      SensedDataUpload m;
      m.task = TaskId{r.varint()};
      m.user = UserId{r.varint()};
      m.seq = r.varint();
      const std::uint64_t n = r.varint();
      if (n > r.remaining() + 1) return Error{Errc::kDecodeError, "bad count"};
      for (std::uint64_t i = 0; i < n && r.ok(); ++i)
        m.batches.push_back(DecodeReadingTuple(r));
      out = m;
      break;
    }
    case MessageType::kLeaveNotification: {
      LeaveNotification m;
      m.task = TaskId{r.varint()};
      m.user = UserId{r.varint()};
      m.time = DecodeTime(r);
      out = m;
      break;
    }
    case MessageType::kPing: {
      out = Ping{PhoneId{r.varint()}};
      break;
    }
    case MessageType::kPingReply: {
      PingReply m;
      m.phone = PhoneId{r.varint()};
      m.location = DecodeGeo(r);
      m.time = DecodeTime(r);
      out = m;
      break;
    }
    case MessageType::kAck: {
      Ack m;
      m.in_reply_to = r.varint();
      m.seq = r.varint();
      out = m;
      break;
    }
    case MessageType::kErrorReply: {
      ErrorReply m;
      m.code = r.u8();
      m.message = r.str();
      out = m;
      break;
    }
    case MessageType::kThrottleReply: {
      ThrottleReply m;
      m.in_reply_to = r.varint();
      m.seq = r.varint();
      m.retry_after = SimDuration{r.svarint()};
      m.mode = r.u8();
      out = m;
      break;
    }
    default:
      return Error{Errc::kDecodeError, "unknown message type"};
  }
  if (Status s = r.finish(); !s.ok()) return s.error();
  return out;
}

Bytes EncodeFrame(const Message& m) {
  ByteWriter body;
  EncodeBody(m, body);

  ByteWriter frame;
  frame.u32_fixed(kMagic);
  frame.u8(static_cast<std::uint8_t>(TypeOf(m)));
  frame.blob(body.bytes());
  frame.u32_fixed(Crc32(frame.bytes()));
  return frame.take();
}

Result<Message> DecodeFrame(std::span<const std::uint8_t> frame) {
  if (frame.size() < 9) return Error{Errc::kDecodeError, "frame too short"};
  // CRC covers everything except the trailing 4 bytes.
  const auto payload = frame.first(frame.size() - 4);
  ByteReader tail(frame.subspan(frame.size() - 4));
  const std::uint32_t want = tail.u32_fixed();
  if (Crc32(payload) != want)
    return Error{Errc::kDecodeError, "crc mismatch"};

  ByteReader r(payload);
  if (r.u32_fixed() != kMagic)
    return Error{Errc::kDecodeError, "bad magic"};
  const std::uint8_t type_raw = r.u8();
  const Bytes body = r.blob();
  if (!r.ok() || !r.at_end())
    return Error{Errc::kDecodeError, "malformed frame"};
  if (type_raw < 1 ||
      type_raw > static_cast<std::uint8_t>(MessageType::kThrottleReply))
    return Error{Errc::kDecodeError, "unknown message type"};
  return DecodeBody(static_cast<MessageType>(type_raw), body);
}

}  // namespace sor

#include "codec/frame_stream.hpp"

#include "codec/crc32.hpp"

namespace sor::codec {

namespace {

constexpr std::size_t kHeaderSize = 4;   // u32 payload length
constexpr std::size_t kTrailerSize = 4;  // u32 crc32(payload)

std::uint32_t ReadU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void PutU32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

}  // namespace

void AppendFrame(Bytes& out, std::span<const std::uint8_t> payload) {
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  PutU32(out, Crc32(payload));
}

void FrameStreamReader::Feed(std::span<const std::uint8_t> bytes) {
  if (bad_) return;  // poisoned: don't grow an unusable buffer
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state streaming is append-only.
  if (pos_ > 0 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

FrameStreamReader::Next FrameStreamReader::Pop(Bytes* out) {
  if (bad_) return Next::kBad;
  const std::size_t have = buf_.size() - pos_;
  if (have < kHeaderSize) return Next::kNeedMore;
  const std::uint32_t len = ReadU32(buf_.data() + pos_);
  if (len > max_payload_) {
    bad_ = true;
    error_ = "oversized record (" + std::to_string(len) + " bytes)";
    return Next::kBad;
  }
  const std::size_t total = kHeaderSize + len + kTrailerSize;
  if (have < total) return Next::kNeedMore;
  const std::uint8_t* payload = buf_.data() + pos_ + kHeaderSize;
  const std::uint32_t want = ReadU32(payload + len);
  if (Crc32(std::span<const std::uint8_t>(payload, len)) != want) {
    bad_ = true;
    error_ = "record crc mismatch";
    return Next::kBad;
  }
  out->assign(payload, payload + len);
  pos_ += total;
  ++frames_;
  return Next::kFrame;
}

void FrameStreamReader::Reset() {
  buf_.clear();
  pos_ = 0;
  bad_ = false;
  error_.clear();
}

}  // namespace sor::codec

// SOR wire messages.
//
// The paper (§II) describes five interactions between the mobile frontend
// and the sensing server, all carried as opaque binary HTTP bodies:
//   1. participation request (triggered by a 2D-barcode scan),
//   2. schedule + Lua-script distribution to the phone,
//   3. sensed-data upload (stored as a raw blob, decoded later by the
//      Data Processor),
//   4. leave notification (Participation Manager flips status to finished),
//   5. ping via a Google Cloud Messaging server when the server loses track
//      of a phone.
// Each message type below has a deterministic binary encoding built on
// ByteWriter/ByteReader, plus a framed envelope with magic, version and a
// CRC-32 so transport corruption is detected before dispatch.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "codec/bytes.hpp"
#include "common/geo.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/sensor_kind.hpp"
#include "common/sim_time.hpp"

namespace sor {

// One raw-data record: the 3-tuple (t, Δt, d) of §IV-A. SOR takes multiple
// readings within [t, t+Δt] "to ensure high sensing quality"; `values` holds
// them. GPS batches additionally carry full fixes in `locations`.
struct ReadingTuple {
  SensorKind kind = SensorKind::kAccelerometer;
  SimTime t;
  SimDuration dt;
  std::vector<double> values;
  std::vector<GeoPoint> locations;  // non-empty only for kGps

  friend bool operator==(const ReadingTuple&, const ReadingTuple&) = default;
};

struct ParticipationRequest {
  UserId user;
  Token token;
  AppId app;
  GeoPoint location;   // where the phone claims to be (for verification)
  int budget = 0;      // N^B_k: max acquisitions this user is willing to do
  SimTime scan_time;   // when the barcode was scanned
  // Install generation of the requesting phone. A crashed phone that
  // restarts rejoins with the SAME incarnation and gets its existing task
  // back (seq space continues, the dedup index stays valid). An
  // uninstall/reinstall bumps the incarnation: the server must finish the
  // old participation and issue a FRESH task, because the reinstalled phone
  // restarts its upload seq at 1 and the old task's dedup index would
  // silently swallow every new upload.
  std::uint32_t incarnation = 1;

  friend bool operator==(const ParticipationRequest&,
                         const ParticipationRequest&) = default;
};

struct ParticipationReply {
  TaskId task;          // valid only if accepted
  bool accepted = false;
  std::string reason;   // human-readable rejection reason

  friend bool operator==(const ParticipationReply&,
                         const ParticipationReply&) = default;
};

struct ScheduleDistribution {
  TaskId task;
  AppId app;
  std::string script;              // SenseScript source (the paper's Lua)
  std::vector<SimTime> instants;   // Φ_k: when this phone should sense
  SimDuration sample_window;       // Δt per acquisition
  int samples_per_window = 1;      // readings taken within [t, t+Δt]
  // The script's statically derived sensor manifest. A phone missing any of
  // these refuses the task up front (ErrorReply kUnsupported) instead of
  // discovering mid-campaign that every acquisition comes back empty.
  std::vector<SensorKind> required_sensors;
  // Encoded information-flow manifest (analysis::EncodeFlowManifest): for
  // every acquisition/print/return site, the sensor kinds whose data flows
  // into the value leaving the phone there. Empty = no sites (or a server
  // predating the flow pass).
  std::string flow_manifest;

  friend bool operator==(const ScheduleDistribution&,
                         const ScheduleDistribution&) = default;
};

struct SensedDataUpload {
  TaskId task;
  UserId user;
  std::vector<ReadingTuple> batches;
  // Monotonically increasing per-phone sequence number. Retries after a
  // lost Ack re-send the same seq; the server deduplicates on (task, seq)
  // so at-least-once delivery never double-inserts raw rows or
  // double-consumes budget. 0 means "no seq" (legacy sender, not deduped).
  std::uint64_t seq = 0;

  friend bool operator==(const SensedDataUpload&,
                         const SensedDataUpload&) = default;
};

struct LeaveNotification {
  TaskId task;
  UserId user;
  SimTime time;
  friend bool operator==(const LeaveNotification&,
                         const LeaveNotification&) = default;
};

struct Ping {
  PhoneId phone;
  friend bool operator==(const Ping&, const Ping&) = default;
};

struct PingReply {
  PhoneId phone;
  GeoPoint location;
  SimTime time;
  friend bool operator==(const PingReply&, const PingReply&) = default;
};

struct Ack {
  std::uint64_t in_reply_to = 0;
  // Echo of SensedDataUpload::seq. A phone treats an upload as settled only
  // when the Ack echoes the seq it sent; 0 acknowledges a legacy (unseq'd)
  // message.
  std::uint64_t seq = 0;
  friend bool operator==(const Ack&, const Ack&) = default;
};

struct ErrorReply {
  std::uint8_t code = 0;  // Errc numeric value
  std::string message;
  friend bool operator==(const ErrorReply&, const ErrorReply&) = default;
};

// Backpressure hint (docs/robustness.md): the server shed this upload
// instead of storing it. Unlike an ErrorReply, a throttle is not a failure
// — the phone keeps the upload queued and re-attempts it no sooner than
// `retry_after` from receipt, without consuming its retry budget. `mode`
// carries the server's degradation-ladder mode (server::ServerMode) so the
// phone can pace ALL traffic, not just the shed upload, when the server is
// deep in overload.
struct ThrottleReply {
  std::uint64_t in_reply_to = 0;  // task id of the shed upload
  std::uint64_t seq = 0;          // echo of the shed upload's seq
  SimDuration retry_after{0};
  std::uint8_t mode = 0;
  friend bool operator==(const ThrottleReply&, const ThrottleReply&) = default;
};

using Message =
    std::variant<ParticipationRequest, ParticipationReply,
                 ScheduleDistribution, SensedDataUpload, LeaveNotification,
                 Ping, PingReply, Ack, ErrorReply, ThrottleReply>;

enum class MessageType : std::uint8_t {
  kParticipationRequest = 1,
  kParticipationReply = 2,
  kScheduleDistribution = 3,
  kSensedDataUpload = 4,
  kLeaveNotification = 5,
  kPing = 6,
  kPingReply = 7,
  kAck = 8,
  kErrorReply = 9,
  kThrottleReply = 10,
};

[[nodiscard]] MessageType TypeOf(const Message& m);
[[nodiscard]] const char* to_string(MessageType t);

// Body-only encoders (used by the envelope and by the database raw-blob
// column, which stores upload bodies exactly as received — §II-B).
void EncodeBody(const Message& m, ByteWriter& w);
[[nodiscard]] Result<Message> DecodeBody(MessageType type,
                                         std::span<const std::uint8_t> body);

// Framed envelope: magic "SOR5" | type u8 | body varint-len+bytes | crc32 of
// everything before it. This is the unit handed to the transport. The magic
// doubles as the wire version; it was bumped from "SOR1" when seq fields
// were added to SensedDataUpload and Ack, from "SOR2" when
// ScheduleDistribution grew the required-sensor manifest, from "SOR3"
// when ThrottleReply and ParticipationRequest::incarnation were added for
// overload control and churn survival, and from "SOR4" when
// ScheduleDistribution grew the information-flow manifest.
[[nodiscard]] Bytes EncodeFrame(const Message& m);
[[nodiscard]] Result<Message> DecodeFrame(std::span<const std::uint8_t> frame);

// Reading-batch (de)serialization is also used standalone by the Data
// Processor when decoding blobs pulled back out of the database.
void EncodeReadingTuple(const ReadingTuple& r, ByteWriter& w);
[[nodiscard]] ReadingTuple DecodeReadingTuple(ByteReader& r);

}  // namespace sor

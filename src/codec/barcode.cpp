#include "codec/barcode.hpp"

#include <cmath>

#include "codec/crc32.hpp"
#include "codec/reed_solomon.hpp"

namespace sor {

namespace {

constexpr std::uint8_t kBarcodeVersion = 1;

// Reed–Solomon armor: every barcode carries nsym parity bytes per block,
// so up to nsym/2 damaged bytes per block are *corrected*, not just
// detected (the CRC inside the payload still guards against miscorrection).
constexpr int kBarcodeNsym = 16;
constexpr int kBarcodeBlockData = kRsMaxBlock - kBarcodeNsym;  // 239

// Layout: u8 block-count, then per block: u8 codeword-length, codeword.
Bytes ArmorBytes(const Bytes& payload) {
  const std::size_t blocks =
      (payload.size() + kBarcodeBlockData - 1) / kBarcodeBlockData;
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(blocks));
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * kBarcodeBlockData;
    const std::size_t hi =
        std::min(payload.size(), lo + kBarcodeBlockData);
    const Result<Bytes> block = RsEncode(
        std::span<const std::uint8_t>(payload.data() + lo, hi - lo),
        kBarcodeNsym);
    // Block size is bounded by construction; encode cannot fail.
    out.push_back(static_cast<std::uint8_t>(block.value().size()));
    out.insert(out.end(), block.value().begin(), block.value().end());
  }
  return out;
}

Result<Bytes> DearmorBytes(std::span<const std::uint8_t> armored) {
  if (armored.empty())
    return Error{Errc::kDecodeError, "empty barcode"};
  const int blocks = armored[0];
  if (blocks < 1 || blocks > 16)
    return Error{Errc::kDecodeError, "bad barcode block count"};
  std::size_t pos = 1;
  Bytes payload;
  for (int b = 0; b < blocks; ++b) {
    if (pos >= armored.size())
      return Error{Errc::kDecodeError, "truncated barcode block"};
    const std::size_t len = armored[pos++];
    if (pos + len > armored.size())
      return Error{Errc::kDecodeError, "truncated barcode block"};
    Result<Bytes> data =
        RsDecode(armored.subspan(pos, len), kBarcodeNsym);
    if (!data.ok()) return data.error();
    payload.insert(payload.end(), data.value().begin(),
                   data.value().end());
    pos += len;
  }
  if (pos != armored.size())
    return Error{Errc::kDecodeError, "trailing bytes after barcode blocks"};
  return payload;
}

// --- finder pattern geometry -------------------------------------------
// A 5x5 finder block (dark ring, light ring, dark center) is stamped in
// three corners, as in QR codes; the scanner requires all three before it
// trusts the data region.
constexpr int kFinder = 5;

bool FinderModule(int r, int c) {
  // ring structure within the 5x5 block
  const int ring = std::max(std::abs(r - 2), std::abs(c - 2));
  return ring != 1;  // dark outer ring + dark center, light middle ring
}

struct Corner {
  int r0, c0;
};

std::vector<Corner> FinderCorners(int size) {
  return {{0, 0}, {0, size - kFinder}, {size - kFinder, 0}};
}

bool InFinder(int size, int r, int c) {
  for (const Corner& k : FinderCorners(size)) {
    if (r >= k.r0 && r < k.r0 + kFinder && c >= k.c0 && c < k.c0 + kFinder)
      return true;
  }
  return false;
}

constexpr char kBase32Alphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567";

int Base32Value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a';
  if (c >= '2' && c <= '7') return c - '2' + 26;
  return -1;
}

}  // namespace

Bytes EncodeBarcodeBytes(const BarcodePayload& p) {
  ByteWriter w;
  w.u8(kBarcodeVersion);
  w.varint(p.app.value());
  w.varint(p.place.value());
  w.str(p.place_name);
  w.f64(p.location.lat_deg);
  w.f64(p.location.lon_deg);
  w.f64(p.location.alt_m);
  w.str(p.server);
  w.f64(p.radius_m);
  w.u32_fixed(Crc32(w.bytes()));
  return ArmorBytes(w.bytes());
}

Result<BarcodePayload> DecodeBarcodeBytes(std::span<const std::uint8_t> raw) {
  Result<Bytes> dearmored = DearmorBytes(raw);
  if (!dearmored.ok()) return dearmored.error();
  const Bytes& data = dearmored.value();
  if (data.size() < 5) return Error{Errc::kDecodeError, "barcode too short"};
  const auto payload =
      std::span<const std::uint8_t>(data).first(data.size() - 4);
  ByteReader tail(
      std::span<const std::uint8_t>(data).subspan(data.size() - 4));
  if (Crc32(payload) != tail.u32_fixed())
    return Error{Errc::kDecodeError, "barcode crc mismatch"};

  ByteReader r(payload);
  if (r.u8() != kBarcodeVersion)
    return Error{Errc::kDecodeError, "unsupported barcode version"};
  BarcodePayload p;
  p.app = AppId{r.varint()};
  p.place = PlaceId{r.varint()};
  p.place_name = r.str();
  p.location.lat_deg = r.f64();
  p.location.lon_deg = r.f64();
  p.location.alt_m = r.f64();
  p.server = r.str();
  p.radius_m = r.f64();
  if (Status s = r.finish(); !s.ok()) return s.error();
  return p;
}

std::string EncodeBarcodeText(const BarcodePayload& p) {
  const Bytes data = EncodeBarcodeBytes(p);
  std::string out;
  out.reserve((data.size() * 8 + 4) / 5);
  std::uint32_t acc = 0;
  int bits = 0;
  for (std::uint8_t b : data) {
    acc = (acc << 8) | b;
    bits += 8;
    while (bits >= 5) {
      out.push_back(kBase32Alphabet[(acc >> (bits - 5)) & 0x1f]);
      bits -= 5;
    }
  }
  if (bits > 0) out.push_back(kBase32Alphabet[(acc << (5 - bits)) & 0x1f]);
  return out;
}

Result<BarcodePayload> DecodeBarcodeText(const std::string& s) {
  Bytes data;
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : s) {
    const int v = Base32Value(c);
    if (v < 0) return Error{Errc::kDecodeError, "invalid base32 character"};
    acc = (acc << 5) | static_cast<std::uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      data.push_back(static_cast<std::uint8_t>((acc >> (bits - 8)) & 0xff));
      bits -= 8;
    }
  }
  return DecodeBarcodeBytes(data);
}

std::string BitMatrix::ascii() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(size_) * (2 * size_ + 1));
  for (int r = 0; r < size_; ++r) {
    for (int c = 0; c < size_; ++c) out += get(r, c) ? "##" : "  ";
    out += '\n';
  }
  return out;
}

BitMatrix RenderBarcodeMatrix(const BarcodePayload& p) {
  const Bytes data = EncodeBarcodeBytes(p);
  // Capacity: every non-finder module carries one bit. 16 header bits carry
  // the payload bit-length. Grow the grid until everything fits.
  const int payload_bits = static_cast<int>(data.size()) * 8;
  int size = kFinder * 2 + 2;
  while (size * size - 3 * kFinder * kFinder < payload_bits + 16) ++size;

  BitMatrix m(size);
  for (const Corner& k : FinderCorners(size)) {
    for (int r = 0; r < kFinder; ++r)
      for (int c = 0; c < kFinder; ++c)
        m.set(k.r0 + r, k.c0 + c, FinderModule(r, c));
  }

  auto bit_at = [&](int i) -> bool {
    if (i < 16) return ((payload_bits >> (15 - i)) & 1) != 0;
    const int j = i - 16;
    return ((data[static_cast<std::size_t>(j / 8)] >> (7 - j % 8)) & 1) != 0;
  };

  int idx = 0;
  const int total = payload_bits + 16;
  for (int r = 0; r < size && idx < total; ++r) {
    for (int c = 0; c < size && idx < total; ++c) {
      if (InFinder(size, r, c)) continue;
      m.set(r, c, bit_at(idx++));
    }
  }
  return m;
}

Result<BarcodePayload> ScanBarcodeMatrix(const BitMatrix& m) {
  const int size = m.size();
  if (size < kFinder * 2 + 2)
    return Error{Errc::kDecodeError, "matrix too small"};
  // Verify the three finder patterns; a real scanner locates the code by
  // them, we reject the scan if any module is damaged.
  for (const Corner& k : FinderCorners(size)) {
    for (int r = 0; r < kFinder; ++r) {
      for (int c = 0; c < kFinder; ++c) {
        if (m.get(k.r0 + r, k.c0 + c) != FinderModule(r, c))
          return Error{Errc::kDecodeError, "finder pattern damaged"};
      }
    }
  }

  // Read the 16-bit length header, then the payload bits.
  std::vector<bool> stream;
  stream.reserve(static_cast<std::size_t>(size) * size);
  for (int r = 0; r < size; ++r) {
    for (int c = 0; c < size; ++c) {
      if (InFinder(size, r, c)) continue;
      stream.push_back(m.get(r, c));
    }
  }
  if (stream.size() < 16)
    return Error{Errc::kDecodeError, "no length header"};
  int payload_bits = 0;
  for (int i = 0; i < 16; ++i)
    payload_bits = (payload_bits << 1) | (stream[i] ? 1 : 0);
  if (payload_bits % 8 != 0 ||
      static_cast<std::size_t>(payload_bits) > stream.size() - 16)
    return Error{Errc::kDecodeError, "bad payload length"};

  Bytes data(static_cast<std::size_t>(payload_bits / 8), 0);
  for (int i = 0; i < payload_bits; ++i) {
    if (stream[static_cast<std::size_t>(16 + i)])
      data[static_cast<std::size_t>(i / 8)] |=
          static_cast<std::uint8_t>(1u << (7 - i % 8));
  }
  return DecodeBarcodeBytes(data);
}

}  // namespace sor

#include "codec/bytes.hpp"

#include <cstring>

namespace sor {

void ByteWriter::u32_fixed(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void ByteWriter::u64_fixed(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::svarint(std::int64_t v) {
  // Zigzag: small magnitudes (positive or negative) stay small on the wire.
  const auto u = static_cast<std::uint64_t>(v);
  varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64_fixed(bits);
}

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::blob(std::span<const std::uint8_t> b) {
  varint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

std::uint8_t ByteReader::u8() {
  if (!ok_ || pos_ >= data_.size()) {
    fail();
    return 0;
  }
  return data_[pos_++];
}

std::uint32_t ByteReader::u32_fixed() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
  return ok_ ? v : 0;
}

std::uint64_t ByteReader::u64_fixed() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
  return ok_ ? v : 0;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (shift >= 64) {  // overlong encoding
      fail();
      return 0;
    }
    const std::uint8_t b = u8();
    if (!ok_) return 0;
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::int64_t ByteReader::svarint() {
  const std::uint64_t u = varint();
  if (!ok_) return 0;
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

double ByteReader::f64() {
  const std::uint64_t bits = u64_fixed();
  if (!ok_) return 0.0;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const std::uint64_t len = varint();
  if (!ok_ || len > remaining()) {
    fail();
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

Bytes ByteReader::blob() {
  const std::uint64_t len = varint();
  if (!ok_ || len > remaining()) {
    fail();
    return {};
  }
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += static_cast<std::size_t>(len);
  return b;
}

}  // namespace sor

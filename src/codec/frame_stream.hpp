// Length-prefixed frame streaming over byte-stream transports.
//
// A LoopbackNetwork delivery hands the receiver exactly one SOR5 frame, so
// framing is implicit there; a socket hands the receiver an arbitrary run
// of bytes. This module is the single place that turns discrete frames
// into a byte stream and back:
//
//   record := u32 length (LE, payload bytes)
//           | payload (the SOR5 envelope, or a transport record)
//           | u32 CRC-32 of the payload (LE)
//
// The CRC is deliberately redundant with the SOR5 envelope's own CRC: the
// stream layer must reject a mangled record *before* trusting its length
// field to resynchronize, and transport records (channel.hpp) carry
// headers the envelope CRC does not cover.
//
// The reader is incremental — feed it whatever chunk sizes the socket
// produces and pop whole validated payloads. Framing errors (oversized
// length, CRC mismatch) poison the stream: once byte alignment is lost
// there is no way to find the next record boundary, so the connection must
// be dropped. Both the socket transports and LoopbackNetwork route every
// frame through this codec, so the two paths cannot drift.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "codec/bytes.hpp"

namespace sor::codec {

// Upper bound on one record's payload. Generous — the largest legitimate
// frame is a schedule for a huge app — while still rejecting a corrupt
// length field before it turns into a multi-gigabyte allocation.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;  // 16 MiB

// Append one framed record carrying `payload` to `out`.
void AppendFrame(Bytes& out, std::span<const std::uint8_t> payload);

// Incremental reader over a stream of AppendFrame records.
class FrameStreamReader {
 public:
  explicit FrameStreamReader(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  // Buffer the next chunk of stream bytes (any size, including empty).
  void Feed(std::span<const std::uint8_t> bytes);

  enum class Next {
    kFrame,     // *out holds the next validated payload
    kNeedMore,  // no complete record buffered yet
    kBad,       // framing lost (oversized or corrupt); stream unusable
  };

  // Extract the next payload. After kBad every further Pop returns kBad:
  // the record boundary is gone and the connection must be dropped.
  [[nodiscard]] Next Pop(Bytes* out);

  [[nodiscard]] bool bad() const { return bad_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint64_t frames_popped() const { return frames_; }
  // Bytes buffered but not yet consumed by a popped record.
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

  // Forget all buffered bytes and clear the poison flag (new connection).
  void Reset();

 private:
  Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::size_t max_payload_;
  std::uint64_t frames_ = 0;
  bool bad_ = false;
  std::string error_;
};

}  // namespace sor::codec

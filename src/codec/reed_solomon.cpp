#include "codec/reed_solomon.hpp"

#include <array>
#include <vector>

namespace sor {

namespace {

// GF(2^8) arithmetic with exp/log tables (generator α = 2, poly 0x11d).
struct Gf {
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint8_t, 256> log{};

  Gf() {
    int x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i)
      exp[static_cast<std::size_t>(i)] =
          exp[static_cast<std::size_t>(i - 255)];
  }

  [[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp[static_cast<std::size_t>(log[a]) + log[b]];
  }
  [[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b) const {
    // b must be non-zero; callers guarantee it.
    if (a == 0) return 0;
    return exp[(static_cast<std::size_t>(log[a]) + 255 -
                log[b]) % 255];
  }
  [[nodiscard]] std::uint8_t pow(std::uint8_t a, int e) const {
    if (a == 0) return 0;
    const int l = (log[a] * e) % 255;
    return exp[static_cast<std::size_t>(l < 0 ? l + 255 : l)];
  }
  [[nodiscard]] std::uint8_t inverse(std::uint8_t a) const {
    return exp[static_cast<std::size_t>(255 - log[a])];
  }
};

const Gf& Field() {
  static const Gf gf;
  return gf;
}

// Polynomials are coefficient vectors, highest degree first.
using Poly = std::vector<std::uint8_t>;

Poly PolyMul(const Poly& a, const Poly& b) {
  const Gf& gf = Field();
  Poly out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j)
      out[i + j] = static_cast<std::uint8_t>(out[i + j] ^
                                             gf.mul(a[i], b[j]));
  }
  return out;
}

std::uint8_t PolyEval(const Poly& p, std::uint8_t x) {
  const Gf& gf = Field();
  std::uint8_t y = p.empty() ? 0 : p[0];
  for (std::size_t i = 1; i < p.size(); ++i)
    y = static_cast<std::uint8_t>(gf.mul(y, x) ^ p[i]);
  return y;
}

// Generator polynomial Π_{i=0}^{nsym-1} (x − α^i).
Poly Generator(int nsym) {
  const Gf& gf = Field();
  Poly g = {1};
  for (int i = 0; i < nsym; ++i) g = PolyMul(g, Poly{1, gf.pow(2, i)});
  return g;
}

}  // namespace

Result<Bytes> RsEncode(std::span<const std::uint8_t> data, int nsym) {
  if (nsym < 2 || nsym >= kRsMaxBlock)
    return Error{Errc::kInvalidArgument, "nsym out of range"};
  if (static_cast<int>(data.size()) + nsym > kRsMaxBlock)
    return Error{Errc::kInvalidArgument,
                 "message too long for one RS block"};
  const Gf& gf = Field();
  const Poly gen = Generator(nsym);

  // Systematic encoding: remainder of data·x^nsym divided by gen.
  Bytes out(data.begin(), data.end());
  out.resize(data.size() + static_cast<std::size_t>(nsym), 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint8_t coef = out[i];
    if (coef == 0) continue;
    for (std::size_t j = 1; j < gen.size(); ++j)
      out[i + j] = static_cast<std::uint8_t>(out[i + j] ^
                                             gf.mul(gen[j], coef));
  }
  // Restore the message bytes (the division destroyed them in place).
  std::copy(data.begin(), data.end(), out.begin());
  return out;
}

Result<Bytes> RsDecode(std::span<const std::uint8_t> codeword, int nsym) {
  if (nsym < 2 || nsym >= kRsMaxBlock)
    return Error{Errc::kInvalidArgument, "nsym out of range"};
  const int n = static_cast<int>(codeword.size());
  if (n <= nsym || n > kRsMaxBlock)
    return Error{Errc::kDecodeError, "bad codeword length"};
  const Gf& gf = Field();

  // Syndromes S_i = C(α^i), i = 0..nsym-1.
  Poly poly(codeword.begin(), codeword.end());
  std::vector<std::uint8_t> synd(static_cast<std::size_t>(nsym));
  bool all_zero = true;
  for (int i = 0; i < nsym; ++i) {
    synd[static_cast<std::size_t>(i)] = PolyEval(poly, gf.pow(2, i));
    if (synd[static_cast<std::size_t>(i)] != 0) all_zero = false;
  }
  if (all_zero) {
    return Bytes(codeword.begin(),
                 codeword.end() - static_cast<std::ptrdiff_t>(nsym));
  }

  // Berlekamp–Massey: error locator sigma (lowest degree first here).
  std::vector<std::uint8_t> sigma = {1};
  std::vector<std::uint8_t> prev = {1};
  std::uint8_t b = 1;
  int L = 0;
  int m = 1;
  for (int i = 0; i < nsym; ++i) {
    // Discrepancy.
    std::uint8_t delta = synd[static_cast<std::size_t>(i)];
    for (int j = 1; j <= L; ++j) {
      if (j < static_cast<int>(sigma.size())) {
        delta = static_cast<std::uint8_t>(
            delta ^ gf.mul(sigma[static_cast<std::size_t>(j)],
                           synd[static_cast<std::size_t>(i - j)]));
      }
    }
    if (delta == 0) {
      ++m;
      continue;
    }
    if (2 * L <= i) {
      std::vector<std::uint8_t> t = sigma;
      // sigma = sigma − (delta/b)·x^m·prev
      const std::uint8_t coef = gf.div(delta, b);
      std::vector<std::uint8_t> shifted(prev.size() +
                                        static_cast<std::size_t>(m));
      for (std::size_t j = 0; j < prev.size(); ++j)
        shifted[j + static_cast<std::size_t>(m)] = gf.mul(prev[j], coef);
      if (sigma.size() < shifted.size()) sigma.resize(shifted.size(), 0);
      for (std::size_t j = 0; j < shifted.size(); ++j)
        sigma[j] = static_cast<std::uint8_t>(sigma[j] ^ shifted[j]);
      L = i + 1 - L;
      prev = std::move(t);
      b = delta;
      m = 1;
    } else {
      const std::uint8_t coef = gf.div(delta, b);
      std::vector<std::uint8_t> shifted(prev.size() +
                                        static_cast<std::size_t>(m));
      for (std::size_t j = 0; j < prev.size(); ++j)
        shifted[j + static_cast<std::size_t>(m)] = gf.mul(prev[j], coef);
      if (sigma.size() < shifted.size()) sigma.resize(shifted.size(), 0);
      for (std::size_t j = 0; j < shifted.size(); ++j)
        sigma[j] = static_cast<std::uint8_t>(sigma[j] ^ shifted[j]);
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const int num_errors = static_cast<int>(sigma.size()) - 1;
  if (num_errors * 2 > nsym)
    return Error{Errc::kDecodeError, "too many errors to correct"};

  // Chien search: roots of sigma give error positions.
  std::vector<int> positions;
  for (int pos = 0; pos < n; ++pos) {
    // x = α^{-pos} evaluated against lowest-first sigma.
    const std::uint8_t x = gf.pow(2, 255 - ((n - 1 - pos) % 255));
    // Evaluate sigma (lowest degree first) at x_inv... Use direct eval:
    std::uint8_t acc = 0;
    std::uint8_t xp = 1;
    for (std::size_t j = 0; j < sigma.size(); ++j) {
      acc = static_cast<std::uint8_t>(acc ^ gf.mul(sigma[j], xp));
      xp = gf.mul(xp, x);
    }
    if (acc == 0) positions.push_back(pos);
  }
  if (static_cast<int>(positions.size()) != num_errors)
    return Error{Errc::kDecodeError, "error locator is inconsistent"};

  // Forney: error magnitudes. Error evaluator omega = (synd·sigma) mod
  // x^nsym, with synd as a lowest-first polynomial.
  std::vector<std::uint8_t> omega(static_cast<std::size_t>(nsym), 0);
  for (std::size_t i = 0; i < static_cast<std::size_t>(nsym); ++i) {
    std::uint8_t acc = 0;
    for (std::size_t j = 0; j <= i && j < sigma.size(); ++j)
      acc = static_cast<std::uint8_t>(acc ^
                                      gf.mul(sigma[j], synd[i - j]));
    omega[i] = acc;
  }

  Bytes corrected(codeword.begin(), codeword.end());
  for (int pos : positions) {
    const std::uint8_t x_inv =
        gf.pow(2, 255 - ((n - 1 - pos) % 255));
    // omega(x_inv)
    std::uint8_t num = 0;
    std::uint8_t xp = 1;
    for (std::size_t j = 0; j < omega.size(); ++j) {
      num = static_cast<std::uint8_t>(num ^ gf.mul(omega[j], xp));
      xp = gf.mul(xp, x_inv);
    }
    // sigma'(x_inv): formal derivative keeps odd-power terms.
    std::uint8_t den = 0;
    xp = 1;
    for (std::size_t j = 1; j < sigma.size(); j += 2) {
      den = static_cast<std::uint8_t>(den ^ gf.mul(sigma[j], xp));
      xp = gf.mul(xp, gf.mul(x_inv, x_inv));
    }
    if (den == 0)
      return Error{Errc::kDecodeError, "Forney denominator vanished"};
    const std::uint8_t magnitude =
        gf.mul(gf.pow(2, (n - 1 - pos) % 255), gf.div(num, den));
    corrected[static_cast<std::size_t>(pos)] = static_cast<std::uint8_t>(
        corrected[static_cast<std::size_t>(pos)] ^ magnitude);
  }

  // Verify: all syndromes of the corrected word must vanish.
  Poly check(corrected.begin(), corrected.end());
  for (int i = 0; i < nsym; ++i) {
    if (PolyEval(check, gf.pow(2, i)) != 0)
      return Error{Errc::kDecodeError, "correction failed verification"};
  }
  corrected.resize(corrected.size() - static_cast<std::size_t>(nsym));
  return corrected;
}

}  // namespace sor

// CRC-32 (IEEE 802.3 polynomial, reflected).
//
// Used to detect corruption in barcode payloads and framed wire messages.
#pragma once

#include <cstdint>
#include <span>

namespace sor {

[[nodiscard]] std::uint32_t Crc32(std::span<const std::uint8_t> data);

}  // namespace sor

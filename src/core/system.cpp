#include "core/system.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"
#include "core/fleet.hpp"
#include "sensors/energy.hpp"
#include "server/feature_def.hpp"

namespace sor::core {

std::string DefaultScript(world::PlaceCategory category) {
  if (category == world::PlaceCategory::kHikingTrail) {
    // The trail task (cf. Fig. 4): environmental channels in the standard
    // Δt window; the GPS track with a wide window so consecutive fixes are
    // tens of meters apart (curvature needs geometry, not jitter).
    return R"(-- SOR hiking-trail sensing task
local temp = get_temperature_readings(5)
local hum = get_humidity_readings(5)
local accel = get_accelerometer_readings(12)
local alt = get_altitude_readings(6)
local track = get_location(15, 300)
-- quality gate: flag an empty acquisition so the server can see it
if len(temp) == 0 and len(accel) == 0 then
  print("no sensors available")
end
)";
  }
  return R"(-- SOR coffee-shop sensing task
local temp = get_temperature_readings(5)
local light = get_light_readings(5)
local noise = get_noise_readings(8)
local wifi = get_wifi_readings(5)
if len(noise) == 0 and len(light) == 0 then
  print("no sensors available")
end
)";
}

System::System() {
  network_.set_clock(&clock_);  // partition windows run on simulated time
  network_.set_metrics(&registry_);  // transport counters live here too
  server_ = std::make_unique<server::SensingServer>(
      server::ServerConfig{}, network_, clock_);
  server_->AttachObservability(&registry_, nullptr);
}

System::~System() = default;

void System::ApplyNodeEvents() {
  if (churn_ == nullptr) return;
  net::FaultInjector& faults = network_.faults();
  const SimTime now = clock_.now();

  // Server stall first: a stalled server makes this whole tick's uploads
  // fail, which is the point. The down-window is timed and lifts itself.
  if (churn_->server_can_stall &&
      !faults.NodeDown(server_->endpoint_name(), now)) {
    const net::NodeEvent ev =
        faults.DecideNodeEvent(server_->endpoint_name(), now);
    if (ev.kind == net::NodeEvent::Kind::kStall) {
      faults.SetNodeDown(server_->endpoint_name(), now + ev.down_for);
      ++churn_->stall_ticks;
      SOR_LOG(kWarn, "system",
              "server stalled until t=" << (now + ev.down_for).ms << "ms");
    }
  }

  for (std::size_t k = 0; k < frontends_.size(); ++k) {
    phone::MobileFrontend& phone = *frontends_[k];
    ChurnContext::PhoneState& st = churn_->phones[k];
    const std::string endpoint = phone.EndpointName();
    switch (st.phase) {
      case ChurnContext::Phase::kUp: {
        const net::NodeEvent ev = faults.DecideNodeEvent(endpoint, now);
        if (ev.kind == net::NodeEvent::Kind::kCrash) {
          // Down until the rejoin completes, not merely until `due`: a
          // crashed phone that cannot reach the server stays dark.
          phone.Crash();
          faults.SetNodeDown(endpoint);
          st.phase = ChurnContext::Phase::kCrashed;
          st.due = now + ev.down_for;
          ++churn_->crashes;
        } else if (ev.kind == net::NodeEvent::Kind::kUninstall) {
          phone.Uninstall();
          faults.SetNodeDown(endpoint);
          st.phase = ChurnContext::Phase::kUninstalled;
          st.due = now + ev.down_for;
        }
        break;
      }
      case ChurnContext::Phase::kCrashed: {
        if (now < st.due) break;
        faults.SetNodeUp(endpoint);
        // Same incarnation: the server resumes the existing participation
        // and re-pushes the schedule (admitted — we are between rounds).
        if (phone.Restart().ok()) {
          st.phase = ChurnContext::Phase::kUp;
          ++churn_->restarts;
        }
        // else: keep retrying every tick; the server may itself be down.
        break;
      }
      case ChurnContext::Phase::kUninstalled: {
        if (now < st.due) break;
        faults.SetNodeUp(endpoint);
        // Fresh install: re-scan the deployed barcode with a bumped
        // incarnation; the server retires the old task and issues a new
        // one whose seq space starts over.
        const BitMatrix matrix = RenderBarcodeMatrix(churn_->barcodes[k]);
        if (phone.ScanBarcodeMatrix(matrix, churn_->budget).ok()) {
          st.phase = ChurnContext::Phase::kUp;
          ++churn_->reinstalls;
        }
        break;
      }
    }
  }
}

void System::RunTicks(int n, SimDuration tick) {
  if (n <= 0) return;
  // Fleet backlog, sampled once per tick by the driver thread: the peak
  // feeds FieldTestResult, the histogram gives benches/operators a depth
  // distribution (p99 etc.) without any per-phone bookkeeping.
  obs::Histogram& depth_hist = registry_.histogram(
      "core.fleet_queue_depth", obs::ExponentialBuckets(1.0, 2.0, 14));
  const auto note_depth = [this, &depth_hist] {
    std::uint64_t depth = 0;
    for (const auto& frontend : frontends_) depth += frontend->pending_uploads();
    peak_pending_ = std::max(peak_pending_, depth);
    depth_hist.Observe(static_cast<double>(depth));
  };
  // Merge overhead, sampled per tick in wall-clock nanoseconds (registry
  // contents are never fingerprinted, so a wall-clock metric cannot break
  // the determinism contract). 1µs .. ~4s exponential range.
  obs::Histogram& merge_wait = registry_.histogram(
      "core.merge_wait_ns", obs::ExponentialBuckets(1000.0, 4.0, 12));

  // Every campaign tick — serial or parallel — is one epoch round
  // (docs/runtime.md): phase A runs the phones wait-free, collecting their
  // sends into per-sender outboxes; phase B is one deterministic merge on
  // this (the driver) thread, delivering in (rank, send order) — the exact
  // serial interleaving. Running threads==1 through the SAME path is what
  // makes every thread count byte-identical by construction. Node events
  // run between rounds, with outboxes empty and phones idle, so crash /
  // rejoin pushes never race a collect phase.
  std::vector<std::string> names;
  names.reserve(frontends_.size());
  for (const auto& frontend : frontends_)
    names.push_back(frontend->EndpointName());
  network_.BeginEpoch(std::move(names));
  const bool parallel = executor_ != nullptr && executor_->threads() > 1;
  for (int i = 0; i < n; ++i) {
    clock_.advance(tick);
    // Driver-thread heartbeat: lets the overload ladder decay on quiet
    // ticks. Runs before the phones, so it is ordered before every
    // admission of this tick at any thread count.
    server_->health().ObserveTick(clock_.now());
    ApplyNodeEvents();
    if (parallel) {
      // Phase A: no locks, no gates — the executor's barrier is the only
      // synchronization in the entire tick.
      executor_->ParallelFor(frontends_.size(),
                             [&](std::size_t k) { frontends_[k]->Tick(); });
    } else {
      for (auto& frontend : frontends_) frontend->Tick();
    }
    // Phase B: deliver the epoch's outboxes and run the phones' completion
    // callbacks (acks, backoff re-queues, throttle pacing).
    // Wall-clock telemetry only: the observed nanoseconds feed a histogram
    // excluded from trace fingerprints, never simulation state.
    const auto merge_start = std::chrono::steady_clock::now();  // det-lint: allow
    network_.MergeEpoch();
    merge_wait.Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - merge_start)  // det-lint: allow
            .count()));
    note_depth();
  }
  network_.EndEpoch();
}

Result<FieldTestResult> System::RunFieldTest(const world::Scenario& scenario,
                                             const FieldTestConfig& config) {
  if (scenario.places.empty())
    return Error{Errc::kInvalidArgument, "scenario has no places"};
  if (config.budget_per_user <= 0)
    return Error{Errc::kInvalidArgument, "budget must be positive"};

  clock_.reset();
  agents_.clear();
  frontends_.clear();
  churn_.reset();
  peak_pending_ = 0;
  storage_faults_.Clear();
  server_->database().AttachStorageFaults(nullptr);
  server_->set_overload(config.overload);
  server_->scheduler().set_algorithm(config.scheduler_algorithm);
  {
    server::SchedulerOptions opts;
    opts.incremental = config.incremental_scheduling;
    server_->scheduler().set_options(opts);
  }
  {
    server::DataProcessorOptions opts =
        server_->data_processor().options();
    opts.incremental = config.incremental_processing;
    server_->data_processor().set_options(opts);
  }

  // Telemetry: one trace per campaign. Clearing invalidates stream ids, so
  // every component re-registers: the server here (stream 0), the system
  // stream next (1), phones in spawn order, then the transport's per-link
  // lookups and the data processor's per-app streams — the same serial
  // order at any thread count.
  tracer_.Clear();
  tracer_.set_capacity(config.trace_ring_capacity);
  tracer_.set_enabled(config.trace);
  obs::Tracer* tracer = config.trace ? &tracer_ : nullptr;
  network_.set_tracer(tracer);
  server_->AttachObservability(&registry_, tracer);
  system_stream_ = config.trace ? tracer_.RegisterStream("system") : 0;

  // Stand up the worker pool for this campaign (threads==1 → pure serial
  // paths everywhere; see docs/runtime.md for the determinism contract).
  const int threads = config.threads > 1 ? config.threads : 1;
  if (threads > 1) {
    executor_ = std::make_unique<ShardedExecutor>(threads);
    server_->set_executor(executor_.get());
  } else {
    executor_.reset();
    server_->set_executor(nullptr);
  }

  const SimInterval period{SimTime{0},
                           SimTime::FromSeconds(scenario.period_s)};

  FieldTestResult result;

  // The shared fleet derivation (core/fleet.hpp): app specs, join order,
  // names/tokens and per-phone seeds — identical for this System, the
  // `sor serve` daemon and `sor loadgen`, which is what makes their
  // campaigns comparable byte-for-byte.
  FleetPlanParams plan_params;
  plan_params.seed = config.seed;
  plan_params.n_instants = config.n_instants;
  plan_params.sigma_s = config.sigma_s;
  plan_params.first_phone = next_phone_;
  plan_params.server_endpoint = server_->endpoint_name();
  const FleetPlan plan = PlanFleet(scenario, plan_params);

  // 1. Deploy one application per target place; print the barcode. The
  // ACTUAL barcodes are used (not plan.barcodes): a reused System numbers
  // apps across campaigns.
  std::vector<BarcodePayload> barcodes;
  for (const server::ApplicationSpec& spec : plan.app_specs) {
    Result<BarcodePayload> barcode = server_->DeployApplication(spec);
    if (!barcode.ok()) return barcode.error();
    result.app_ids.push_back(barcode.value().app);
    barcodes.push_back(std::move(barcode).value());
  }

  // 2. Spawn phones: register users, then trigger participation through
  // the real barcode scan (render to the 2D matrix and scan it back).
  // Every scan triggers a reschedule of the whole app; deferred mode
  // batches that storm into one plan per app after the last scan.
  if (config.defer_setup_reschedules)
    server_->scheduler().set_deferred(true);
  for (const PhonePlan& ph : plan.phones) {
    const world::PlaceModel& place = scenario.places[ph.place_index];
    Result<UserId> user =
        server_->users().RegisterUser(ph.user_name, ph.token);
    if (!user.ok()) return user.error();

    world::PhoneAgentConfig agent_cfg;
    agent_cfg.id = PhoneId{ph.seq};
    agent_cfg.mobility =
        scenario.category == world::PlaceCategory::kHikingTrail
            ? world::Mobility::kTrailWalk
            : world::Mobility::kStatic;
    agent_cfg.enter_time = SimTime{0};
    agent_cfg.seed = ph.agent_seed;
    agents_.push_back(std::make_unique<world::PhoneAgent>(place, agent_cfg));

    phone::FrontendConfig phone_cfg;
    phone_cfg.phone_id = agent_cfg.id;
    phone_cfg.user_id = user.value();
    phone_cfg.user_name = ph.user_name;
    phone_cfg.token = ph.token;
    phone_cfg.retry_budget = config.phone_retry_budget;
    frontends_.push_back(std::make_unique<phone::MobileFrontend>(
        phone_cfg, network_, *agents_.back(), clock_));
    frontends_.back()->AttachObservability(
        &registry_, config.trace ? &tracer_ : nullptr);

    const BitMatrix matrix = RenderBarcodeMatrix(barcodes[ph.place_index]);
    Result<TaskId> task = frontends_.back()->ScanBarcodeMatrix(
        matrix, config.budget_per_user);
    if (!task.ok()) return task.error();
  }
  next_phone_ += plan.phones.size();
  if (config.defer_setup_reschedules) {
    server_->scheduler().set_deferred(false);
    if (Status s = server_->FlushReschedules(); !s.ok()) {
      SOR_LOG(kWarn, "system", "deferred reschedule flush: " << s.str());
    }
  }

  // 3. Arm the chaos rules now that deployment and participation are done —
  // the campaign exists; everything after this point must survive faults.
  if (!config.chaos_rules.empty()) {
    network_.faults().set_seed(config.chaos_seed);
    for (const net::FaultRule& rule : config.chaos_rules)
      network_.faults().AddRule(rule);
  }
  if (!config.node_rules.empty()) {
    network_.faults().set_node_seed(config.node_seed);
    for (const net::NodeFaultRule& rule : config.node_rules)
      network_.faults().AddNodeRule(rule);
    churn_ = std::make_unique<ChurnContext>();
    churn_->phones.resize(frontends_.size());
    churn_->budget = config.budget_per_user;
    // Phone k joined place k / phones_per_place; keep its barcode so a
    // reinstall can re-scan it.
    for (std::size_t k = 0; k < frontends_.size(); ++k)
      churn_->barcodes.push_back(
          barcodes[k / static_cast<std::size_t>(scenario.phones_per_place)]);
    for (const net::NodeFaultRule& rule : config.node_rules) {
      if (net::FaultInjector::Matches(rule.endpoint,
                                      server_->endpoint_name()))
        churn_->server_can_stall = true;
    }
  }
  if (!config.storage_rules.empty()) {
    storage_faults_.set_seed(config.storage_seed);
    for (const db::StorageFaultRule& rule : config.storage_rules)
      storage_faults_.AddRule(rule);
    server_->database().AttachStorageFaults(&storage_faults_);
  }
  // Overload is not a fault, but a budgeted run still needs the drain: the
  // post-period ticks are the "load drops" phase in which paced queues
  // flush and the server steps back down the ladder.
  const bool chaos_armed = !config.chaos_rules.empty() ||
                           !config.node_rules.empty() ||
                           !config.storage_rules.empty() ||
                           config.overload.ingest_budget > 0;

  // Advance simulated time across the scheduling period; every tick the
  // phones execute due sensing activities and upload.
  const std::int64_t remaining = period.end.ms - clock_.now().ms;
  const int main_ticks = static_cast<int>(
      (remaining + config.tick.ms - 1) / config.tick.ms);
  RunTicks(main_ticks, config.tick);

  // Drain: clear the faults and give the phones fault-free ticks so
  // store-and-forward queues and pending leaves flush before evaluation.
  // Node RULES are cleared (no new crashes) but the churn context stays:
  // phones still down keep retrying their rejoin during the drain. The
  // overload policy is not a fault and stays armed — recovery back to
  // normal mode under a drained load is part of what runs exercise.
  if (chaos_armed) {
    network_.faults().Clear();
    network_.faults().ClearNodeRules();
    storage_faults_.Clear();
    RunTicks(config.drain_ticks, config.tick);
    // Lift any down-state that outlived the drain (a phone whose rejoin
    // never landed): later campaigns and the leave sweep below should see
    // a reachable fleet.
    for (const auto& frontend : frontends_)
      network_.faults().SetNodeUp(frontend->EndpointName());
    network_.faults().SetNodeUp(server_->endpoint_name());
  }

  // 4. Users leave; the Participation Manager flips their tasks to
  // "finished".
  if (config.leave_at_end) {
    for (auto& frontend : frontends_) {
      if (Status s = frontend->LeavePlace(); !s.ok()) {
        SOR_LOG(kWarn, "system", "leave failed: " << s.str());
      }
    }
  }

  // 5. Data processing: raw blobs → feature data.
  if (Result<int> n = server_->ProcessAllData(); !n.ok()) return n.error();

  // 6. Assemble H and produce one personalizable ranking per profile.
  std::vector<server::ApplicationRecord> records;
  for (AppId id : result.app_ids) {
    Result<server::ApplicationRecord> rec = server_->applications().Get(id);
    if (!rec.ok()) return rec.error();
    records.push_back(std::move(rec).value());
  }
  Result<rank::FeatureMatrix> matrix =
      server_->data_processor().BuildFeatureMatrix(records,
                                                   scenario.features);
  if (!matrix.ok()) return matrix.error();
  result.matrix = std::move(matrix).value();

  const rank::PersonalizableRanker ranker(result.matrix);
  for (const rank::UserProfile& profile : scenario.profiles) {
    Result<rank::RankingOutcome> outcome =
        ranker.Rank(profile, config.aggregation);
    if (!outcome.ok()) return outcome.error();
    result.rankings.emplace_back(profile.name, std::move(outcome).value());
  }
  // The end of every upload span: each place's final ranking exists.
  if (config.trace) {
    for (AppId id : result.app_ids)
      tracer_.Emit(system_stream_, clock_.now(),
                   obs::EventKind::kRankingDone, id.value());
  }

  // 7. Statistics snapshot.
  result.server_stats = server_->stats();
  result.processor_stats = server_->data_processor().stats();
  result.transport_stats = network_.stats();
  for (const auto& frontend : frontends_) {
    result.total_uploads += frontend->stats().uploads_sent;
    result.total_upload_failures += frontend->stats().upload_failures;
    result.total_uploads_retried += frontend->stats().uploads_retried;
    result.total_uploads_dropped += frontend->stats().uploads_dropped;
    result.total_leaves_retried += frontend->stats().leaves_retried;
    result.total_uploads_throttled += frontend->stats().uploads_throttled;
    result.total_uploads_abandoned += frontend->stats().uploads_abandoned;
    const sensors::EnergyReport energy =
        sensors::EnergyOf(frontend->sensor_manager());
    result.energy_spent_mj += energy.spent_mj;
    result.energy_saved_mj += energy.saved_mj;
  }
  if (churn_ != nullptr) {
    result.total_crashes = churn_->crashes;
    result.total_restarts = churn_->restarts;
    result.total_reinstalls = churn_->reinstalls;
    result.server_stall_ticks = churn_->stall_ticks;
  }
  result.peak_pending_uploads = peak_pending_;
  result.trace_fingerprint = tracer_.Fingerprint();
  return result;
}

}  // namespace sor::core

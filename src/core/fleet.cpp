#include "core/fleet.hpp"

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "core/system.hpp"
#include "server/feature_def.hpp"

namespace sor::core {

FleetPlan PlanFleet(const world::Scenario& scenario,
                    const FleetPlanParams& params) {
  FleetPlan plan;
  const SimInterval period{SimTime{0},
                           SimTime::FromSeconds(scenario.period_s)};
  const std::vector<server::FeatureDef> feature_defs =
      scenario.category == world::PlaceCategory::kHikingTrail
          ? server::HikingTrailFeatures()
          : server::CoffeeShopFeatures();

  for (std::size_t p = 0; p < scenario.places.size(); ++p) {
    const world::PlaceModel& place = scenario.places[p];
    server::ApplicationSpec spec;
    spec.creator = "operator:" + place.name;
    spec.place = place.id;
    spec.place_name = place.name;
    spec.location = place.center;
    spec.radius_m = place.radius_m;
    spec.script = DefaultScript(scenario.category);
    spec.features = feature_defs;
    spec.period = period;
    spec.n_instants = params.n_instants;
    spec.sigma_s = params.sigma_s;
    plan.app_specs.push_back(std::move(spec));

    BarcodePayload barcode;
    barcode.app = AppId{static_cast<std::uint64_t>(p + 1)};
    barcode.place = place.id;
    barcode.place_name = place.name;
    barcode.location = place.center;
    barcode.server = params.server_endpoint;
    barcode.radius_m = place.radius_m;
    plan.barcodes.push_back(std::move(barcode));
  }

  // Seed stream: one fork per phone, consumed in join order — the exact
  // sequence System::RunFieldTest has always drawn, so refactoring spawn
  // through this plan changed no campaign.
  Rng rng(params.seed);
  std::uint64_t seq = params.first_phone;
  for (std::size_t p = 0; p < scenario.places.size(); ++p) {
    for (int i = 0; i < scenario.phones_per_place; ++i, ++seq) {
      PhonePlan phone;
      phone.seq = seq;
      phone.place_index = p;
      phone.user_name = "user_" + std::to_string(seq);
      phone.token = Token{"tok-" + std::to_string(seq)};
      phone.agent_seed = rng.fork().engine()();
      plan.phones.push_back(std::move(phone));
    }
  }
  return plan;
}

std::string RenderRankingsText(
    const rank::FeatureMatrix& matrix,
    const std::vector<std::pair<std::string, rank::RankingOutcome>>&
        rankings) {
  std::string out;
  for (const auto& [profile, outcome] : rankings) {
    out += profile;
    out += ":";
    const std::vector<std::string> names = outcome.OrderedNames(matrix);
    for (std::size_t i = 0; i < names.size(); ++i) {
      out += i == 0 ? " " : " > ";
      out += names[i];
    }
    out += "\n";
  }
  return out;
}

}  // namespace sor::core

// Fleet planning: the deterministic derivation every SOR host shares.
//
// An in-process campaign (core::System), the out-of-process daemon
// (`sor serve`) and the load generator (`sor loadgen`) must all agree —
// down to the byte — on what a campaign for a given (scenario, seed)
// looks like: which application specs get deployed (and therefore which
// app ids and barcodes exist), which users join in which order under
// which names and tokens, and which per-phone seed drives each simulated
// agent. The equivalence guarantee of docs/deployment.md ("a loadgen
// campaign against a live daemon ranks identically to the in-process run
// of the same seed") rests on this file being the only source of those
// derivations.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "codec/barcode.hpp"
#include "common/ids.hpp"
#include "rank/personalizable_ranker.hpp"
#include "server/managers.hpp"
#include "world/scenarios.hpp"

namespace sor::core {

struct FleetPlanParams {
  std::uint64_t seed = 42;   // FieldTestConfig::seed
  int n_instants = 1080;     // schedule grid density per app
  double sigma_s = 60.0;     // coverage kernel σ
  // First phone number to allocate. core::System numbers phones across
  // campaigns (next_phone_); fresh hosts (daemon, loadgen) start at 1.
  std::uint64_t first_phone = 1;
  std::string server_endpoint = "server";
};

// One phone of the fleet, in global join order (place-major: every phone
// of places[0], then places[1], ...). Join ORDER is part of the campaign's
// identity — the scheduler plans online, so permuting joins changes every
// subsequent schedule.
struct PhonePlan {
  std::uint64_t seq = 0;        // phone number ("user_<seq>" / "tok-<seq>")
  std::size_t place_index = 0;  // index into Scenario::places
  std::string user_name;
  Token token;
  std::uint64_t agent_seed = 0;  // world::PhoneAgentConfig::seed
};

struct FleetPlan {
  // One application per place, in place order (app ids follow deployment
  // order on the server).
  std::vector<server::ApplicationSpec> app_specs;
  // The barcodes those deployments produce on a FRESH server, where app
  // ids run first..P (IdGenerator starts at 1). core::System reuses one
  // server across campaigns and must take the barcodes DeployApplication
  // actually returns; fresh hosts (daemon startup, loadgen) can predict
  // them from here.
  std::vector<BarcodePayload> barcodes;
  std::vector<PhonePlan> phones;  // global join order
};

[[nodiscard]] FleetPlan PlanFleet(const world::Scenario& scenario,
                                  const FleetPlanParams& params);

// Canonical rankings rendering, one line per profile:
//
//   Alice: Cliff Trail > Long Trail > Green Lake Trail
//
// This text is the campaign-equivalence artifact: `sor fieldtest
// --rankings-out`, the daemon's finalize step and the daemon tests all
// write it, and CI compares the files byte-for-byte.
[[nodiscard]] std::string RenderRankingsText(
    const rank::FeatureMatrix& matrix,
    const std::vector<std::pair<std::string, rank::RankingOutcome>>&
        rankings);

}  // namespace sor::core

// sor::core::System — the whole SOR deployment in one object.
//
// This is the top of the public API: it stands up a sensing server, builds
// the simulated world (places + phones) for a Scenario, runs the complete
// §II workflow — barcode scan → participation → online scheduling →
// script-driven sensing → binary upload → data processing → personalizable
// ranking — on the simulated clock, and returns the feature matrix and the
// per-profile rankings (the paper's Fig. 6/10 data and Table I/II).
//
// Examples and benches drive everything through this facade; tests also
// reach into the exposed components for white-box checks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/sharded_executor.hpp"
#include "common/sim_time.hpp"
#include "db/storage_faults.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phone/frontend.hpp"
#include "rank/personalizable_ranker.hpp"
#include "server/server.hpp"
#include "server/visualization.hpp"
#include "world/phone_agent.hpp"
#include "world/scenarios.hpp"

namespace sor::core {

struct FieldTestConfig {
  int budget_per_user = 40;            // N^B_k for every participant
  SimDuration tick = SimDuration{10'000};  // simulation step
  int n_instants = 1080;               // N (matches §V-C's grid density)
  double sigma_s = 60.0;               // coverage σ for the app's schedule
  std::uint64_t seed = 42;
  rank::AggregationMethod aggregation =
      rank::AggregationMethod::kFootruleMcmf;
  server::SchedulerAlgorithm scheduler_algorithm =
      server::SchedulerAlgorithm::kLazyGreedy;
  bool leave_at_end = true;            // send LeaveNotifications at tE
  // Incremental replanning (docs/performance.md): joins/leaves are planned
  // as deltas against per-app residual-coverage state and only changed
  // schedules are distributed. false selects the cold-replan oracle —
  // byte-identical plans rebuilt from the commit log every reschedule; the
  // determinism tests hold the two modes bitwise equal.
  bool incremental_scheduling = true;

  // --- sharded runtime (docs/runtime.md) ---------------------------------
  // Worker threads for the tick loop and server-side batch stages. Any
  // value yields byte-identical results: every campaign tick is one
  // two-phase epoch — phones sense and encode wait-free in phase A, then
  // one merge pass on the driver thread delivers all sends in (rank, send
  // order) in phase B. Serial and parallel runs share that path, so the
  // handler order is identical by construction; threads only overlap the
  // pure per-phone compute (scripts, sensors, frame encoding).
  int threads = 1;
  // Batch the per-join reschedule storm during setup: joins mark apps dirty
  // and one plan per app is flushed after the last scan. O(P) instead of
  // O(P²) scheduler work — results differ from eager per-join replanning
  // (fewer intermediate schedules), so it is opt-in; large benches use it.
  bool defer_setup_reschedules = false;
  // Streaming feature extraction (docs/performance.md): per-app
  // accumulators fed only by new uploads. false selects the
  // decode-everything recompute — bit-identical results, the equivalence
  // tests rely on it as the oracle.
  bool incremental_processing = true;

  // --- chaos harness -----------------------------------------------------
  // Fault rules armed AFTER deployment + participation succeed (the
  // campaign must start; the paper's field test assumes the scan worked)
  // and cleared again before the drain phase, so queued retries can flush.
  std::vector<net::FaultRule> chaos_rules;
  std::uint64_t chaos_seed = 0;       // seed for the fault-decision stream
  int drain_ticks = 8;                // fault-free ticks after the period

  // --- node + storage fault domains (docs/robustness.md) ------------------
  // Churn rules: seeded phone crash/restart and uninstall/reinstall, plus
  // server stall ticks. Decisions are pure hashes of (node_seed, endpoint,
  // tick), so arming them never shifts the link-fault schedule. Applied by
  // the driver thread between epoch rounds (outboxes empty, phones idle);
  // cleared (like chaos_rules) before the drain so downed nodes can rejoin
  // and queues can flush.
  std::vector<net::NodeFaultRule> node_rules;
  std::uint64_t node_seed = 0;
  // Storage rules: seeded raw_data write failures + scripted fail-next.
  // Determinism contract (db/storage_faults.hpp): arm only tables whose
  // writes happen inside the merge pass (raw_data), never "*".
  std::vector<db::StorageFaultRule> storage_rules;
  std::uint64_t storage_seed = 0;
  // Server overload policy; the default (budget 0) admits everything.
  server::OverloadConfig overload;
  // Per-campaign retry budget handed to every phone (0 = unlimited).
  int phone_retry_budget = 0;

  // --- telemetry (src/obs, docs/observability.md) --------------------------
  // Record the deterministic event trace of the campaign. The trace (and
  // its fingerprint in FieldTestResult) is byte-identical across `threads`
  // values; read it back via System::tracer() after the run.
  bool trace = false;
  std::size_t trace_ring_capacity = 1 << 16;  // events retained per stream
};

struct FieldTestResult {
  std::vector<AppId> app_ids;          // one application per place
  rank::FeatureMatrix matrix;          // H, as read back from the database
  // One outcome per scenario profile, in profile order.
  std::vector<std::pair<std::string, rank::RankingOutcome>> rankings;

  // System-level statistics for reporting.
  server::ServerStats server_stats;
  server::DataProcessorStats processor_stats;
  net::TransportStats transport_stats;
  std::uint64_t total_uploads = 0;
  std::uint64_t total_upload_failures = 0;
  // Aggregated robustness counters across all phones (chaos reporting).
  std::uint64_t total_uploads_retried = 0;
  std::uint64_t total_uploads_dropped = 0;
  std::uint64_t total_leaves_retried = 0;
  // Overload + churn accounting (docs/robustness.md).
  std::uint64_t total_uploads_throttled = 0;  // ThrottleReplies phones saw
  std::uint64_t total_uploads_abandoned = 0;  // retry budgets exhausted
  std::uint64_t total_crashes = 0;            // phone crash events
  std::uint64_t total_restarts = 0;           // successful crash rejoins
  std::uint64_t total_reinstalls = 0;         // successful reinstall rejoins
  std::uint64_t server_stall_ticks = 0;       // ticks the server was stalled
  std::uint64_t peak_pending_uploads = 0;     // fleet-wide queue-depth peak
  // Sensing energy across all phones (mJ): what was spent on physical
  // acquisitions and what the shared provider buffers saved.
  double energy_spent_mj = 0.0;
  double energy_saved_mj = 0.0;

  // FNV-1a over the campaign's merged trace (0-events hash when tracing is
  // off): the value the determinism tests compare across thread counts.
  std::uint64_t trace_fingerprint = 0;

  // Place names in final order for a given profile index.
  [[nodiscard]] std::vector<std::string> RankedNames(std::size_t profile) const {
    return rankings[profile].second.OrderedNames(matrix);
  }
};

// The per-category default sensing-task script (the paper's Fig. 4 Lua,
// in SenseScript).
[[nodiscard]] std::string DefaultScript(world::PlaceCategory category);

class System {
 public:
  System();
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // Run one complete sensing campaign over the scenario.
  [[nodiscard]] Result<FieldTestResult> RunFieldTest(
      const world::Scenario& scenario, const FieldTestConfig& config = {});

  // --- component access (white-box tests, examples) ---------------------
  [[nodiscard]] SimClock& clock() { return clock_; }
  [[nodiscard]] net::LoopbackNetwork& network() { return network_; }
  [[nodiscard]] server::SensingServer& server() { return *server_; }
  [[nodiscard]] std::vector<std::unique_ptr<phone::MobileFrontend>>&
  frontends() {
    return frontends_;
  }
  // The system-wide telemetry: every component (transport links, phones,
  // server, scheduler, data processor) reports into this one registry, and
  // — with FieldTestConfig::trace — into this one tracer.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return registry_; }
  [[nodiscard]] obs::Tracer& tracer() { return tracer_; }

 private:
  // Advance the clock `n` ticks, ticking every frontend each step. Each
  // tick is one delivery epoch: phones tick (in parallel shards when an
  // executor is up), collecting sends wait-free; then the driver thread
  // merges and delivers the epoch's outboxes in rank order.
  void RunTicks(int n, SimDuration tick);

  // Churn driver state for one campaign (null when node_rules are empty).
  struct ChurnContext {
    enum class Phase : std::uint8_t { kUp, kCrashed, kUninstalled };
    struct PhoneState {
      Phase phase = Phase::kUp;
      SimTime due;  // earliest restart/reinstall time while down
    };
    std::vector<PhoneState> phones;   // parallel to frontends_
    std::vector<BarcodePayload> barcodes;  // per phone, for reinstalls
    int budget = 0;                   // budget_per_user, for rejoins
    bool server_can_stall = false;    // some rule matches the server
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t reinstalls = 0;
    std::uint64_t stall_ticks = 0;
  };

  // Apply node-lifecycle events for the current tick: crash/uninstall live
  // phones, stall the server, and rejoin downed phones whose downtime has
  // elapsed. Runs on the driver thread BETWEEN epoch rounds — outboxes are
  // empty and no shard is running, so a crash never orphans queued sends
  // and a rejoin's schedule push lands on an idle phone — making the event
  // sequence identical at every thread count.
  void ApplyNodeEvents();

  SimClock clock_;
  obs::MetricsRegistry registry_;
  obs::Tracer tracer_;
  obs::StreamId system_stream_ = 0;  // campaign-level events (ranking_done)
  net::LoopbackNetwork network_;
  std::unique_ptr<ShardedExecutor> executor_;  // non-null while threads > 1
  std::unique_ptr<ChurnContext> churn_;        // non-null while churn is armed
  db::StorageFaultInjector storage_faults_;
  std::uint64_t peak_pending_ = 0;  // fleet queue-depth peak, this campaign
  std::unique_ptr<server::SensingServer> server_;
  std::vector<std::unique_ptr<world::PhoneAgent>> agents_;
  std::vector<std::unique_ptr<phone::MobileFrontend>> frontends_;
  // Phones/tokens are numbered across campaigns so one System can host
  // several consecutive field tests (multi-category deployments: "SOR can
  // certainly deal with multiple categories", §IV-A).
  std::uint64_t next_phone_ = 1;
};

}  // namespace sor::core

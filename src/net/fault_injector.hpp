// Seeded, deterministic fault injection for the loopback transport.
//
// The SOR field tests (§V) ran over real cellular links where dropped
// requests, lost Acks and flaky phones are the norm. This module models
// that wire: per-link rules — matched on source/destination endpoint name —
// carry independent probabilities for dropping, corrupting or duplicating a
// frame, added latency, and hard partition windows over simulated time.
// Rules apply to the request and/or the response leg of a round trip, so a
// lost *Ack* (handler executed, reply gone — the trigger for every
// duplicate-upload bug) is a first-class, reproducible event.
//
// All randomness comes from one seeded stream: the same seed, rules and
// message sequence replay the exact same fault schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace sor::net {

// Which leg of the synchronous round trip a rule applies to.
enum class Direction : std::uint8_t {
  kRequest,   // sender → receiver (the frame carrying the Message)
  kResponse,  // receiver → sender (the reply frame)
};

struct FaultRule {
  // Endpoint-name matchers. "*" matches everything; a trailing '*' is a
  // prefix wildcard ("phone:*" matches every phone). The anonymous sender
  // (two-argument Send) has the empty name, matched only by "*".
  std::string from = "*";
  std::string to = "*";

  bool on_request = true;
  bool on_response = true;

  double drop = 0.0;       // P(frame lost in transit)
  double corrupt = 0.0;    // P(one byte flipped mid-frame)
  double duplicate = 0.0;  // P(frame delivered twice); request leg only
  SimDuration latency{0};  // added to every matching traversal

  // Hard partition: while now ∈ [partition.begin, partition.end] every
  // matching traversal is lost. Default-empty interval = no partition.
  SimInterval partition{SimTime{1}, SimTime{0}};
};

// The fate of one frame traversal, decided before delivery.
struct FaultDecision {
  bool drop = false;
  bool corrupt = false;
  bool duplicate = false;
  bool partitioned = false;  // drop was caused by a partition window
  SimDuration latency{0};
};

class FaultInjector {
 public:
  // One-shot global counters (request leg, any link): drop/corrupt the next
  // N sends. Tests use these to script exact fault sequences; they take
  // precedence over the probabilistic rules and consume no randomness.
  int drop_next = 0;
  int corrupt_next = 0;

  // Reset the random stream. Decisions are a pure function of (seed, rule
  // set, traversal sequence), which is what makes chaos runs replayable.
  void set_seed(std::uint64_t seed) { rng_ = Rng(seed); }

  void AddRule(FaultRule rule) { rules_.push_back(std::move(rule)); }
  void Clear() {
    rules_.clear();
    drop_next = 0;
    corrupt_next = 0;
  }
  [[nodiscard]] const std::vector<FaultRule>& rules() const { return rules_; }
  [[nodiscard]] bool empty() const {
    return rules_.empty() && drop_next == 0 && corrupt_next == 0;
  }

  // Decide the fate of one traversal. Consumes the seeded stream, so the
  // caller must invoke it in a deterministic order.
  [[nodiscard]] FaultDecision Decide(const std::string& from,
                                     const std::string& to,
                                     Direction direction, SimTime now);

  // "*" wildcard / "prefix*" match helper (exposed for tests).
  [[nodiscard]] static bool Matches(const std::string& pattern,
                                    const std::string& name);

 private:
  std::vector<FaultRule> rules_;
  Rng rng_;
};

}  // namespace sor::net

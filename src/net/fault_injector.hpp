// Seeded, deterministic fault injection for the loopback transport.
//
// The SOR field tests (§V) ran over real cellular links where dropped
// requests, lost Acks and flaky phones are the norm. This module models
// that wire: per-link rules — matched on source/destination endpoint name —
// carry independent probabilities for dropping, corrupting or duplicating a
// frame, added latency, and hard partition windows over simulated time.
// Rules apply to the request and/or the response leg of a round trip, so a
// lost *Ack* (handler executed, reply gone — the trigger for every
// duplicate-upload bug) is a first-class, reproducible event.
//
// All randomness comes from one seeded stream: the same seed, rules and
// message sequence replay the exact same fault schedule.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace sor::net {

// Which leg of the synchronous round trip a rule applies to.
enum class Direction : std::uint8_t {
  kRequest,   // sender → receiver (the frame carrying the Message)
  kResponse,  // receiver → sender (the reply frame)
};

struct FaultRule {
  // Endpoint-name matchers. "*" matches everything; a trailing '*' is a
  // prefix wildcard ("phone:*" matches every phone). The anonymous sender
  // (two-argument Send) has the empty name, matched only by "*".
  std::string from = "*";
  std::string to = "*";

  bool on_request = true;
  bool on_response = true;

  double drop = 0.0;       // P(frame lost in transit)
  double corrupt = 0.0;    // P(one byte flipped mid-frame)
  double duplicate = 0.0;  // P(frame delivered twice); request leg only
  SimDuration latency{0};  // added to every matching traversal

  // Hard partition: while now ∈ [partition.begin, partition.end] every
  // matching traversal is lost. Default-empty interval = no partition.
  SimInterval partition{SimTime{1}, SimTime{0}};
};

// The fate of one frame traversal, decided before delivery.
struct FaultDecision {
  bool drop = false;
  bool corrupt = false;
  bool duplicate = false;
  bool partitioned = false;  // drop was caused by a partition window
  SimDuration latency{0};
};

// --- node fault domain (docs/robustness.md) --------------------------------
//
// Where FaultRule models the wire, NodeFaultRule models the *parties*:
// phones crash (volatile task state lost, persisted dedup seqs survive),
// get uninstalled and reinstalled (everything lost, new install
// generation), and the server stalls for whole ticks. The transport only
// enforces the resulting down-state (NodeDown below) — deciding WHEN a node
// fails, and resurrecting it, is the simulation driver's job, because a
// crash is a node-lifecycle event, not a per-frame one.

struct NodeFaultRule {
  // Endpoint-name matcher; same grammar as FaultRule ("phone:*", "server").
  std::string endpoint = "phone:*";
  double crash = 0.0;               // P(crash at a given decision tick)
  SimDuration restart_after{30'000};
  double uninstall = 0.0;           // P(uninstall at a given decision tick)
  SimDuration reinstall_after{60'000};
  double stall = 0.0;               // P(stall; meant for the server endpoint)
  SimDuration stall_for{10'000};
};

struct NodeEvent {
  enum class Kind : std::uint8_t { kNone, kCrash, kUninstall, kStall };
  Kind kind = Kind::kNone;
  SimDuration down_for{0};  // restart_after / reinstall_after / stall_for
};

class FaultInjector {
 public:
  // One-shot global counters (request leg, any link): drop/corrupt the next
  // N sends. Tests use these to script exact fault sequences; they take
  // precedence over the probabilistic rules and consume no randomness.
  int drop_next = 0;
  int corrupt_next = 0;

  // Reset the random stream. Decisions are a pure function of (seed, rule
  // set, traversal sequence), which is what makes chaos runs replayable.
  void set_seed(std::uint64_t seed) { rng_ = Rng(seed); }

  void AddRule(FaultRule rule) { rules_.push_back(std::move(rule)); }
  void Clear() {
    rules_.clear();
    drop_next = 0;
    corrupt_next = 0;
  }
  [[nodiscard]] const std::vector<FaultRule>& rules() const { return rules_; }
  [[nodiscard]] bool empty() const {
    return rules_.empty() && drop_next == 0 && corrupt_next == 0;
  }

  // Decide the fate of one traversal. Consumes the seeded stream, so the
  // caller must invoke it in a deterministic order.
  [[nodiscard]] FaultDecision Decide(const std::string& from,
                                     const std::string& to,
                                     Direction direction, SimTime now);

  // "*" wildcard / "prefix*" match helper (exposed for tests).
  [[nodiscard]] static bool Matches(const std::string& pattern,
                                    const std::string& name);

  // --- node domain ---------------------------------------------------------

  void set_node_seed(std::uint64_t seed) { node_seed_ = seed; }
  void AddNodeRule(NodeFaultRule rule) {
    node_rules_.push_back(std::move(rule));
  }
  void ClearNodeRules() { node_rules_.clear(); }
  [[nodiscard]] const std::vector<NodeFaultRule>& node_rules() const {
    return node_rules_;
  }

  // Decide whether `endpoint` suffers a node event at `now`. Unlike
  // Decide(), this is a PURE function of (node_seed, endpoint, now) — no
  // stream is consumed — so the driver can evaluate nodes in any order, or
  // not at all, without shifting the link-fault schedule. The first
  // matching rule whose hash fires wins; crash beats uninstall beats stall
  // within one rule.
  [[nodiscard]] NodeEvent DecideNodeEvent(const std::string& endpoint,
                                          SimTime now) const;

  // Down-state registry, enforced by LoopbackNetwork::Send: a frame to a
  // down node is lost before its handler runs (Errc::kUnavailable). The
  // default `until` (SimTime{}) means "down until SetNodeUp" — phone
  // crashes use that form, because coming back requires a rejoin, not just
  // the clock passing; server stalls pass an expiry and lift themselves.
  void SetNodeDown(const std::string& endpoint, SimTime until = SimTime{});
  void SetNodeUp(const std::string& endpoint);
  [[nodiscard]] bool NodeDown(const std::string& endpoint, SimTime now) const;
  [[nodiscard]] bool any_node_down() const { return !down_.empty(); }

 private:
  std::vector<FaultRule> rules_;
  Rng rng_;
  std::vector<NodeFaultRule> node_rules_;
  std::uint64_t node_seed_ = 0;
  // endpoint -> expiry (indefinite entries store SimTime::max-like expiry).
  std::map<std::string, SimTime> down_;
};

}  // namespace sor::net

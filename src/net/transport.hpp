// In-process request/response transport.
//
// The SOR prototype speaks HTTP with opaque binary bodies between phones
// and sensing servers (§II-A), plus a Google-Cloud-Messaging detour when a
// server loses track of a phone. This module reproduces the messaging
// boundary without sockets: every participant registers an Endpoint under
// a name; Send() encodes the typed Message into a framed byte buffer,
// "transmits" it (optionally injecting faults), and hands the raw frame to
// the receiver, which decodes, dispatches, and returns a response frame.
//
// Everything crosses this boundary as bytes — no object sneaks through —
// so codec bugs, truncation, and corruption behave exactly as they would
// on a real wire. Faults (see net/fault_injector.hpp) can hit both legs of
// the round trip: a request lost before the handler runs, or a response
// lost *after* it ran — the at-least-once case every endpoint must survive.
//
// Observability: all delivery accounting lives in an obs::MetricsRegistry
// (one labeled counter family per link); TransportStats is a *view* over
// those counters, kept for ergonomic assertions. An optional obs::Tracer
// records a typed event per delivery outcome on the sender's stream.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "codec/frame_stream.hpp"
#include "codec/messages.hpp"
#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "net/fault_injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sor::net {

// One addressable party (a sensing server or a phone's message handler).
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  // Handle one request frame; return the response frame. Implementations
  // decode with DecodeFrame, dispatch, and encode their reply (an ErrorReply
  // frame when decoding/handling fails) — mirroring an HTTP handler.
  [[nodiscard]] virtual Bytes HandleFrame(
      std::span<const std::uint8_t> frame) = 0;
};

// Read-out view over one link's (or the whole network's) delivery counters.
// The registry owns the live values; this struct is what reads return.
struct TransportStats {
  std::uint64_t delivered = 0;   // request reached the handler intact
  std::uint64_t dropped = 0;     // request lost in transit (never handled)
  std::uint64_t corrupted = 0;   // request delivered with a flipped byte
  std::uint64_t duplicated = 0;  // request delivered twice (handler ran 2×)
  std::uint64_t partitioned = 0; // loss caused by a partition window
  std::uint64_t responses_dropped = 0;    // handler ran, reply lost (lost Ack)
  std::uint64_t responses_corrupted = 0;  // handler ran, reply mangled
  std::uint64_t node_unreachable = 0;     // destination node was down
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t latency_injected_ms = 0;

  friend bool operator==(const TransportStats&,
                         const TransportStats&) = default;
};

// Completion of one asynchronous send: the decoded response, or the error
// the sender would have seen from a synchronous Send().
using SendCallback = std::function<void(Result<Message>)>;

class LoopbackNetwork {
 public:
  LoopbackNetwork();

  // Register/replace the endpoint reachable under `name`.
  void Register(const std::string& name, Endpoint* endpoint);
  void Unregister(const std::string& name);

  // Synchronous round trip: encode, deliver, decode the response. The
  // three-argument form names the sender so per-link fault rules and stats
  // can see who is talking; the two-argument form sends anonymously (empty
  // source name, matched only by the "*" wildcard).
  [[nodiscard]] Result<Message> Send(const std::string& from,
                                     const std::string& to, const Message& m);
  [[nodiscard]] Result<Message> Send(const std::string& to, const Message& m) {
    return Send(std::string(), to, m);
  }

  // Asynchronous send. Outside an epoch (or from an unranked sender, or
  // during the merge pass itself) this is Send() plus an inline callback —
  // unit tests and serial call sites keep request/response semantics.
  // Inside an epoch's collect phase, a ranked sender's message is encoded
  // NOW (pure per-message CPU, overlapped across shards) and appended to
  // that sender's outbox; delivery, fault decisions, and the callback all
  // happen later, inside MergeEpoch(), in deterministic rank order.
  void SendAsync(const std::string& from, const std::string& to,
                 const Message& m, SendCallback done);

  // Aggregate view over every link, summed from the registry's counters.
  [[nodiscard]] TransportStats stats() const;
  // One link = one (source, destination) endpoint-name pair. Zero-valued
  // stats for links that never carried a frame.
  [[nodiscard]] TransportStats link_stats(const std::string& from,
                                          const std::string& to) const;
  [[nodiscard]] std::map<std::pair<std::string, std::string>, TransportStats>
  all_link_stats() const;

  FaultInjector& faults() { return faults_; }

  // Clock for time-windowed fault rules (partitions). Without one, rules
  // see time frozen at the epoch. Not owned.
  void set_clock(const SimClock* clock) { clock_ = clock; }

  // Metrics sink. The network owns a private registry by default so
  // standalone use keeps full accounting; pass a shared registry (System
  // does) to fold transport counters into the system-wide export, or
  // nullptr to fall back to the private one. Swapping resets per-link
  // counter caches; prior counts stay in whichever registry received them.
  void set_metrics(obs::MetricsRegistry* registry);
  [[nodiscard]] obs::MetricsRegistry& metrics() { return *registry_; }

  // Event sink; nullptr (default) disables transport tracing. Streams are
  // registered per endpoint name on first use from a deterministic context
  // (the merge pass or serial code), so ids are deterministic whenever
  // senders are deterministic.
  void set_tracer(obs::Tracer* tracer);

  // --- epoch-based two-phase delivery (docs/runtime.md) -------------------
  // A tick is two phases. Phase A (collect): every shard runs its phones
  // wait-free; a ranked sender's SendAsync() encodes the frame and appends
  // it to a per-sender outbox — no locks, no gates, no cross-shard waits.
  // Phase B (merge): after the executor's barrier, the driver thread calls
  // MergeEpoch(), which delivers every collected message in (sender rank,
  // send order) — exactly the order a serial loop interleaves them — and
  // runs each send's completion callback right after its delivery. Fault
  // decisions, handler invocations, metrics, and trace emits all happen
  // inside the merge, so the whole decision stream is single-writer and
  // byte-identical at any thread count *by construction*.
  //
  //   BeginEpoch(names);              // rank i = names[i]
  //   for each tick:
  //     ... shards tick phones; SendAsync appends to outboxes ...
  //     MergeEpoch();                 // driver thread, after the barrier
  //   EndEpoch();
  //
  // Between merges only the driver thread runs, so synchronous Send() —
  // server pushes into phones, churn rejoins — is always safe there.
  void BeginEpoch(std::vector<std::string> senders);
  void MergeEpoch();
  void EndEpoch();
  [[nodiscard]] bool epoch_active() const { return epoch_.active; }

 private:
  // Cached registry handles + trace stream ids for one (from, to) link.
  // Created in the merge pass (or from serial code), so creation order —
  // and with it metric names and stream ids — is deterministic.
  struct LinkCells {
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* corrupted = nullptr;
    obs::Counter* duplicated = nullptr;
    obs::Counter* partitioned = nullptr;
    obs::Counter* responses_dropped = nullptr;
    obs::Counter* responses_corrupted = nullptr;
    obs::Counter* node_unreachable = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* latency_injected_ms = nullptr;
    obs::StreamId from_stream = 0;
    obs::StreamId to_stream = 0;
    bool have_streams = false;
  };

  // One message waiting in an epoch outbox for the merge pass.
  struct EpochEntry {
    std::string to;
    Bytes frame;       // encoded in phase A, on the sender's shard
    MessageType type;  // for the kMsgSend trace emit
    SendCallback done;
  };

  LinkCells& Cells(const std::string& from, const std::string& to);
  static TransportStats ReadCells(const LinkCells& c);

  // The transport.* counter family shared (by name) with the socket
  // transports in src/transport: every loopback delivery is framed through
  // codec::FrameStream exactly like a socket write, so byte/frame counts
  // mean the same thing in-process and out-of-process. The family is
  // registered whole (including the daemon-only connection/timeout
  // counters, which stay zero here) so `sor metrics` always exports the
  // complete transport surface.
  struct StreamCells {
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* frames_in = nullptr;
    obs::Counter* frames_out = nullptr;
    obs::Counter* frame_errors = nullptr;
  };
  void BindStreamCells();
  // Frame → stream record → validated frame. Lossless by construction; a
  // failure means a framing bug, counted and surfaced as kInternal.
  [[nodiscard]] bool RoundTripFrame(Bytes& frame);

  // The post-encode half of Send(): fault decisions, handler invocation,
  // response leg, accounting. Must run from a deterministic single-writer
  // context (the merge pass or serial code).
  [[nodiscard]] Result<Message> Deliver(const std::string& from,
                                        const std::string& to, Bytes frame,
                                        MessageType type);

  std::map<std::string, Endpoint*> endpoints_;
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::MetricsRegistry* registry_ = nullptr;  // never null
  obs::Tracer* tracer_ = nullptr;             // null = no tracing
  std::map<std::pair<std::string, std::string>, LinkCells> links_;
  FaultInjector faults_;
  const SimClock* clock_ = nullptr;

  struct Epoch {
    bool active = false;
    bool merging = false;  // callbacks/handlers may nest immediate sends
    std::map<std::string, std::size_t> rank_of;
    std::vector<std::string> names;  // names[rank] — merge-time sender lookup
    // outbox[rank] is written only by the shard that owns sender `rank`
    // during phase A and read only by the driver during phase B; the
    // executor's barrier orders the two, so no locking is needed anywhere.
    std::vector<std::vector<EpochEntry>> outbox;
  };
  Epoch epoch_;
  obs::Gauge* outbox_depth_ = nullptr;    // messages merged, last epoch
  obs::Counter* epoch_merges_ = nullptr;  // MergeEpoch calls
  StreamCells stream_;
  codec::FrameStreamReader frame_reader_;  // reused across deliveries
  Bytes wire_buf_;                         // framed-record scratch
};

}  // namespace sor::net

// In-process request/response transport.
//
// The SOR prototype speaks HTTP with opaque binary bodies between phones
// and sensing servers (§II-A), plus a Google-Cloud-Messaging detour when a
// server loses track of a phone. This module reproduces the messaging
// boundary without sockets: every participant registers an Endpoint under
// a name; Send() encodes the typed Message into a framed byte buffer,
// "transmits" it (optionally injecting faults), and hands the raw frame to
// the receiver, which decodes, dispatches, and returns a response frame.
//
// Everything crosses this boundary as bytes — no object sneaks through —
// so codec bugs, truncation, and corruption behave exactly as they would
// on a real wire. Faults (see net/fault_injector.hpp) can hit both legs of
// the round trip: a request lost before the handler runs, or a response
// lost *after* it ran — the at-least-once case every endpoint must survive.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "codec/messages.hpp"
#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "net/fault_injector.hpp"

namespace sor::net {

// One addressable party (a sensing server or a phone's message handler).
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  // Handle one request frame; return the response frame. Implementations
  // decode with DecodeFrame, dispatch, and encode their reply (an ErrorReply
  // frame when decoding/handling fails) — mirroring an HTTP handler.
  [[nodiscard]] virtual Bytes HandleFrame(
      std::span<const std::uint8_t> frame) = 0;
};

struct TransportStats {
  std::uint64_t delivered = 0;   // request reached the handler intact
  std::uint64_t dropped = 0;     // request lost in transit (never handled)
  std::uint64_t corrupted = 0;   // request delivered with a flipped byte
  std::uint64_t duplicated = 0;  // request delivered twice (handler ran 2×)
  std::uint64_t partitioned = 0; // loss caused by a partition window
  std::uint64_t responses_dropped = 0;    // handler ran, reply lost (lost Ack)
  std::uint64_t responses_corrupted = 0;  // handler ran, reply mangled
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t latency_injected_ms = 0;

  friend bool operator==(const TransportStats&,
                         const TransportStats&) = default;
};

class LoopbackNetwork {
 public:
  // Register/replace the endpoint reachable under `name`.
  void Register(const std::string& name, Endpoint* endpoint);
  void Unregister(const std::string& name);

  // Synchronous round trip: encode, deliver, decode the response. The
  // three-argument form names the sender so per-link fault rules and stats
  // can see who is talking; the two-argument form sends anonymously (empty
  // source name, matched only by the "*" wildcard).
  [[nodiscard]] Result<Message> Send(const std::string& from,
                                     const std::string& to, const Message& m);
  [[nodiscard]] Result<Message> Send(const std::string& to, const Message& m) {
    return Send(std::string(), to, m);
  }

  // Aggregate over every link.
  [[nodiscard]] const TransportStats& stats() const { return stats_; }
  // One link = one (source, destination) endpoint-name pair. Zero-valued
  // stats for links that never carried a frame.
  [[nodiscard]] TransportStats link_stats(const std::string& from,
                                          const std::string& to) const;
  [[nodiscard]] const std::map<std::pair<std::string, std::string>,
                               TransportStats>&
  all_link_stats() const {
    return link_stats_;
  }

  FaultInjector& faults() { return faults_; }

  // Clock for time-windowed fault rules (partitions). Without one, rules
  // see time frozen at the epoch. Not owned.
  void set_clock(const SimClock* clock) { clock_ = clock; }

  // --- deterministic parallel delivery (docs/runtime.md) ------------------
  // During a parallel tick round, concurrent senders must not race into a
  // shared receiver: each registered sender owns an inbox slot with a fixed
  // rank, and its frames are admitted only after every lower-ranked sender
  // has completed the round — so the server handles messages in exactly the
  // order a serial loop would produce, and the fault-decision stream stays
  // replayable. A phase brackets a sequence of rounds (ticks):
  //
  //   BeginOrderedPhase(names);          // rank i = names[i]
  //   for each tick: StartRound();       // reset completion state
  //     ... senders call Send() concurrently; the executor calls
  //     CompleteSender(rank) after sender `rank` finished its tick ...
  //   EndOrderedPhase();
  //
  // While a phase is active, a Send() *to* a ranked endpoint (a push into a
  // phone that may be mid-tick) fails deterministically with kUnavailable
  // instead of racing into its handler.
  void BeginOrderedPhase(std::vector<std::string> senders);
  void StartRound();
  void CompleteSender(std::size_t rank);
  void EndOrderedPhase();

 private:
  // Block until every sender ranked below `rank` completed this round.
  void AwaitTurn(std::size_t rank);

  std::map<std::string, Endpoint*> endpoints_;
  TransportStats stats_;
  std::map<std::pair<std::string, std::string>, TransportStats> link_stats_;
  FaultInjector faults_;
  const SimClock* clock_ = nullptr;

  struct OrderedPhase {
    bool active = false;
    std::unordered_map<std::string, std::size_t> rank_of;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::uint8_t> done;  // per-rank completion, this round
    std::size_t low = 0;             // all ranks < low are complete
  };
  OrderedPhase ordered_;
};

}  // namespace sor::net

// In-process request/response transport.
//
// The SOR prototype speaks HTTP with opaque binary bodies between phones
// and sensing servers (§II-A), plus a Google-Cloud-Messaging detour when a
// server loses track of a phone. This module reproduces the messaging
// boundary without sockets: every participant registers an Endpoint under
// a name; Send() encodes the typed Message into a framed byte buffer,
// "transmits" it (optionally injecting faults), and hands the raw frame to
// the receiver, which decodes, dispatches, and returns a response frame.
//
// Everything crosses this boundary as bytes — no object sneaks through —
// so codec bugs, truncation, and corruption behave exactly as they would
// on a real wire. Faults (see net/fault_injector.hpp) can hit both legs of
// the round trip: a request lost before the handler runs, or a response
// lost *after* it ran — the at-least-once case every endpoint must survive.
//
// Observability: all delivery accounting lives in an obs::MetricsRegistry
// (one labeled counter family per link); TransportStats is a *view* over
// those counters, kept for ergonomic assertions. An optional obs::Tracer
// records a typed event per delivery outcome on the sender's stream.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "codec/messages.hpp"
#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "net/fault_injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sor::net {

// One addressable party (a sensing server or a phone's message handler).
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  // Handle one request frame; return the response frame. Implementations
  // decode with DecodeFrame, dispatch, and encode their reply (an ErrorReply
  // frame when decoding/handling fails) — mirroring an HTTP handler.
  [[nodiscard]] virtual Bytes HandleFrame(
      std::span<const std::uint8_t> frame) = 0;
};

// Read-out view over one link's (or the whole network's) delivery counters.
// The registry owns the live values; this struct is what reads return.
struct TransportStats {
  std::uint64_t delivered = 0;   // request reached the handler intact
  std::uint64_t dropped = 0;     // request lost in transit (never handled)
  std::uint64_t corrupted = 0;   // request delivered with a flipped byte
  std::uint64_t duplicated = 0;  // request delivered twice (handler ran 2×)
  std::uint64_t partitioned = 0; // loss caused by a partition window
  std::uint64_t responses_dropped = 0;    // handler ran, reply lost (lost Ack)
  std::uint64_t responses_corrupted = 0;  // handler ran, reply mangled
  std::uint64_t node_unreachable = 0;     // destination node was down
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t latency_injected_ms = 0;

  friend bool operator==(const TransportStats&,
                         const TransportStats&) = default;
};

class LoopbackNetwork {
 public:
  LoopbackNetwork();

  // Register/replace the endpoint reachable under `name`.
  void Register(const std::string& name, Endpoint* endpoint);
  void Unregister(const std::string& name);

  // Synchronous round trip: encode, deliver, decode the response. The
  // three-argument form names the sender so per-link fault rules and stats
  // can see who is talking; the two-argument form sends anonymously (empty
  // source name, matched only by the "*" wildcard).
  [[nodiscard]] Result<Message> Send(const std::string& from,
                                     const std::string& to, const Message& m);
  [[nodiscard]] Result<Message> Send(const std::string& to, const Message& m) {
    return Send(std::string(), to, m);
  }

  // Aggregate view over every link, summed from the registry's counters.
  [[nodiscard]] TransportStats stats() const;
  // One link = one (source, destination) endpoint-name pair. Zero-valued
  // stats for links that never carried a frame.
  [[nodiscard]] TransportStats link_stats(const std::string& from,
                                          const std::string& to) const;
  [[nodiscard]] std::map<std::pair<std::string, std::string>, TransportStats>
  all_link_stats() const;

  FaultInjector& faults() { return faults_; }

  // Clock for time-windowed fault rules (partitions). Without one, rules
  // see time frozen at the epoch. Not owned.
  void set_clock(const SimClock* clock) { clock_ = clock; }

  // Metrics sink. The network owns a private registry by default so
  // standalone use keeps full accounting; pass a shared registry (System
  // does) to fold transport counters into the system-wide export, or
  // nullptr to fall back to the private one. Swapping resets per-link
  // counter caches; prior counts stay in whichever registry received them.
  void set_metrics(obs::MetricsRegistry* registry);
  [[nodiscard]] obs::MetricsRegistry& metrics() { return *registry_; }

  // Event sink; nullptr (default) disables transport tracing. Streams are
  // registered per endpoint name on first post-gate use, so ids are
  // deterministic whenever senders are deterministic.
  void set_tracer(obs::Tracer* tracer);

  // --- deterministic parallel delivery (docs/runtime.md) ------------------
  // During a parallel tick round, concurrent senders must not race into a
  // shared receiver: each registered sender owns an inbox slot with a fixed
  // rank, and its frames are admitted only after every lower-ranked sender
  // has completed the round — so the server handles messages in exactly the
  // order a serial loop would produce, and the fault-decision stream stays
  // replayable. A phase brackets a sequence of rounds (ticks):
  //
  //   BeginOrderedPhase(names);          // rank i = names[i]
  //   for each tick: StartRound();       // reset completion state
  //     ... senders call Send() concurrently; the executor calls
  //     CompleteSender(rank) after sender `rank` finished its tick ...
  //   EndOrderedPhase();
  //
  // While a ROUND is in progress, a Send() *to* a ranked endpoint (a push
  // into a phone that may be mid-tick) fails deterministically with
  // kUnavailable instead of racing into its handler. BETWEEN rounds (before
  // the first StartRound, or after every sender completed the current one)
  // only the driver thread runs, so pushes into ranked endpoints are safe
  // and allowed — that is how churn rejoins trigger schedule distribution
  // mid-phase without diverging from the serial run.
  void BeginOrderedPhase(std::vector<std::string> senders);
  void StartRound();
  void CompleteSender(std::size_t rank);
  void EndOrderedPhase();

 private:
  // Cached registry handles + trace stream ids for one (from, to) link.
  // Created behind the ordered gate (or from serial code), so creation
  // order — and with it metric names and stream ids — is deterministic.
  struct LinkCells {
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* corrupted = nullptr;
    obs::Counter* duplicated = nullptr;
    obs::Counter* partitioned = nullptr;
    obs::Counter* responses_dropped = nullptr;
    obs::Counter* responses_corrupted = nullptr;
    obs::Counter* node_unreachable = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* latency_injected_ms = nullptr;
    obs::StreamId from_stream = 0;
    obs::StreamId to_stream = 0;
    bool have_streams = false;
  };

  LinkCells& Cells(const std::string& from, const std::string& to);
  static TransportStats ReadCells(const LinkCells& c);

  // Block until every sender ranked below `rank` completed this round.
  void AwaitTurn(std::size_t rank);

  std::map<std::string, Endpoint*> endpoints_;
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::MetricsRegistry* registry_ = nullptr;  // never null
  obs::Tracer* tracer_ = nullptr;             // null = no tracing
  std::map<std::pair<std::string, std::string>, LinkCells> links_;
  FaultInjector faults_;
  const SimClock* clock_ = nullptr;

  struct OrderedPhase {
    bool active = false;
    std::unordered_map<std::string, std::size_t> rank_of;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::uint8_t> done;  // per-rank completion, this round
    std::size_t low = 0;             // all ranks < low are complete
  };
  OrderedPhase ordered_;
};

}  // namespace sor::net

// In-process request/response transport.
//
// The SOR prototype speaks HTTP with opaque binary bodies between phones
// and sensing servers (§II-A), plus a Google-Cloud-Messaging detour when a
// server loses track of a phone. This module reproduces the messaging
// boundary without sockets: every participant registers an Endpoint under
// a name; Send() encodes the typed Message into a framed byte buffer,
// "transmits" it (optionally injecting faults), and hands the raw frame to
// the receiver, which decodes, dispatches, and returns a response frame.
//
// Everything crosses this boundary as bytes — no object sneaks through —
// so codec bugs, truncation, and corruption behave exactly as they would
// on a real wire.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "codec/messages.hpp"
#include "common/result.hpp"

namespace sor::net {

// One addressable party (a sensing server or a phone's message handler).
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  // Handle one request frame; return the response frame. Implementations
  // decode with DecodeFrame, dispatch, and encode their reply (an ErrorReply
  // frame when decoding/handling fails) — mirroring an HTTP handler.
  [[nodiscard]] virtual Bytes HandleFrame(
      std::span<const std::uint8_t> frame) = 0;
};

struct TransportStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

// Fault injection knobs (used by the failure-injection tests).
struct FaultPlan {
  int drop_next = 0;     // drop this many upcoming sends
  int corrupt_next = 0;  // flip a byte in this many upcoming sends
};

class LoopbackNetwork {
 public:
  // Register/replace the endpoint reachable under `name`.
  void Register(const std::string& name, Endpoint* endpoint);
  void Unregister(const std::string& name);

  // Synchronous round trip: encode, deliver, decode the response.
  [[nodiscard]] Result<Message> Send(const std::string& to, const Message& m);

  [[nodiscard]] const TransportStats& stats() const { return stats_; }
  FaultPlan& faults() { return faults_; }

 private:
  std::map<std::string, Endpoint*> endpoints_;
  TransportStats stats_;
  FaultPlan faults_;
};

}  // namespace sor::net

#include "net/transport.hpp"

namespace sor::net {

void LoopbackNetwork::Register(const std::string& name, Endpoint* endpoint) {
  endpoints_[name] = endpoint;
}

void LoopbackNetwork::Unregister(const std::string& name) {
  endpoints_.erase(name);
}

Result<Message> LoopbackNetwork::Send(const std::string& to,
                                      const Message& m) {
  auto it = endpoints_.find(to);
  if (it == endpoints_.end() || it->second == nullptr)
    return Error{Errc::kUnavailable, "no endpoint '" + to + "'"};

  Bytes frame = EncodeFrame(m);
  stats_.bytes_sent += frame.size();

  if (faults_.drop_next > 0) {
    --faults_.drop_next;
    ++stats_.dropped;
    return Error{Errc::kTimeout, "request to '" + to + "' lost in transit"};
  }
  if (faults_.corrupt_next > 0 && !frame.empty()) {
    --faults_.corrupt_next;
    ++stats_.corrupted;
    frame[frame.size() / 2] ^= 0x5a;  // flip bits mid-frame
  }

  const Bytes response = it->second->HandleFrame(frame);
  ++stats_.delivered;
  stats_.bytes_received += response.size();

  Result<Message> decoded = DecodeFrame(response);
  if (!decoded.ok()) return decoded.error();
  // Surface remote errors as local errors for ergonomic call sites.
  if (const auto* err = std::get_if<ErrorReply>(&decoded.value())) {
    return Error{static_cast<Errc>(err->code), err->message};
  }
  return decoded;
}

}  // namespace sor::net

#include "net/transport.hpp"

namespace sor::net {

void LoopbackNetwork::Register(const std::string& name, Endpoint* endpoint) {
  endpoints_[name] = endpoint;
}

void LoopbackNetwork::Unregister(const std::string& name) {
  endpoints_.erase(name);
}

TransportStats LoopbackNetwork::link_stats(const std::string& from,
                                           const std::string& to) const {
  const auto it = link_stats_.find({from, to});
  return it == link_stats_.end() ? TransportStats{} : it->second;
}

void LoopbackNetwork::BeginOrderedPhase(std::vector<std::string> senders) {
  ordered_.rank_of.clear();
  for (std::size_t i = 0; i < senders.size(); ++i)
    ordered_.rank_of.emplace(std::move(senders[i]), i);
  ordered_.done.assign(ordered_.rank_of.size(), 0);
  ordered_.low = 0;
  ordered_.active = true;
}

void LoopbackNetwork::StartRound() {
  // Runs on the driver thread between rounds; the executor's barrier
  // orders it against every worker of the previous and the next round.
  ordered_.done.assign(ordered_.done.size(), 0);
  ordered_.low = 0;
}

void LoopbackNetwork::CompleteSender(std::size_t rank) {
  std::lock_guard lock(ordered_.mu);
  ordered_.done[rank] = 1;
  while (ordered_.low < ordered_.done.size() &&
         ordered_.done[ordered_.low] != 0) {
    ++ordered_.low;
  }
  ordered_.cv.notify_all();
}

void LoopbackNetwork::EndOrderedPhase() {
  ordered_.active = false;
  ordered_.rank_of.clear();
  ordered_.done.clear();
}

void LoopbackNetwork::AwaitTurn(std::size_t rank) {
  std::unique_lock lock(ordered_.mu);
  ordered_.cv.wait(lock, [&] { return ordered_.low >= rank; });
  // From here until CompleteSender(rank), this sender is the only ranked
  // sender past the gate: every lower rank is done for the round, and every
  // higher rank is still waiting on this one.
}

Result<Message> LoopbackNetwork::Send(const std::string& from,
                                      const std::string& to,
                                      const Message& m) {
  constexpr std::size_t kUnranked = static_cast<std::size_t>(-1);
  std::size_t rank = kUnranked;
  if (ordered_.active) {
    if (auto r = ordered_.rank_of.find(from); r != ordered_.rank_of.end()) {
      rank = r->second;
    } else if (ordered_.rank_of.contains(to)) {
      // A push into an endpoint that may be mid-tick on another shard.
      // Refusing is deterministic; racing into its handler is not.
      return Error{Errc::kUnavailable,
                   "endpoint '" + to + "' is ticking in a parallel round"};
    }
  }

  auto it = endpoints_.find(to);
  if (it == endpoints_.end() || it->second == nullptr)
    return Error{Errc::kUnavailable, "no endpoint '" + to + "'"};

  // Encoding is pure per-message work: do it before taking the turn so
  // shards overlap the CPU cost and serialize only the delivery itself.
  Bytes frame = EncodeFrame(m);
  if (rank != kUnranked) AwaitTurn(rank);

  TransportStats& link = link_stats_[{from, to}];
  stats_.bytes_sent += frame.size();
  link.bytes_sent += frame.size();

  const SimTime now = clock_ != nullptr ? clock_->now() : SimTime{};

  // --- request leg ---------------------------------------------------------
  const FaultDecision req =
      faults_.Decide(from, to, Direction::kRequest, now);
  if (req.latency.ms > 0) {
    stats_.latency_injected_ms += static_cast<std::uint64_t>(req.latency.ms);
    link.latency_injected_ms += static_cast<std::uint64_t>(req.latency.ms);
  }
  if (req.drop) {
    ++stats_.dropped;
    ++link.dropped;
    if (req.partitioned) {
      ++stats_.partitioned;
      ++link.partitioned;
      return Error{Errc::kUnavailable,
                   "link to '" + to + "' is partitioned"};
    }
    return Error{Errc::kTimeout, "request to '" + to + "' lost in transit"};
  }
  if (req.corrupt && !frame.empty()) {
    // A corrupted request reaches the handler but fails its CRC there; the
    // send is accounted as corrupted, *not* delivered.
    ++stats_.corrupted;
    ++link.corrupted;
    frame[frame.size() / 2] ^= 0x5a;  // flip bits mid-frame
  } else {
    ++stats_.delivered;
    ++link.delivered;
  }

  // Duplicate delivery: the handler runs twice on the same frame — the
  // at-least-once case idempotent endpoints must absorb. The reply to the
  // *last* delivery is what travels back.
  Bytes response = it->second->HandleFrame(frame);
  if (req.duplicate) {
    ++stats_.duplicated;
    ++link.duplicated;
    response = it->second->HandleFrame(frame);
  }

  // --- response leg --------------------------------------------------------
  const FaultDecision resp =
      faults_.Decide(from, to, Direction::kResponse, now);
  if (resp.latency.ms > 0) {
    stats_.latency_injected_ms += static_cast<std::uint64_t>(resp.latency.ms);
    link.latency_injected_ms += static_cast<std::uint64_t>(resp.latency.ms);
  }
  if (resp.drop) {
    // The handler DID run; only the reply is gone. To the sender this is
    // indistinguishable from a dropped request — exactly the lost-Ack
    // ambiguity that forces retries to be idempotent.
    ++stats_.responses_dropped;
    ++link.responses_dropped;
    if (resp.partitioned) {
      ++stats_.partitioned;
      ++link.partitioned;
      return Error{Errc::kUnavailable,
                   "link to '" + to + "' is partitioned"};
    }
    return Error{Errc::kTimeout,
                 "reply from '" + to + "' lost in transit"};
  }
  if (resp.corrupt && !response.empty()) {
    ++stats_.responses_corrupted;
    ++link.responses_corrupted;
    response[response.size() / 2] ^= 0x5a;
  }
  stats_.bytes_received += response.size();
  link.bytes_received += response.size();

  Result<Message> decoded = DecodeFrame(response);
  if (!decoded.ok()) return decoded.error();
  // Surface remote errors as local errors for ergonomic call sites.
  if (const auto* err = std::get_if<ErrorReply>(&decoded.value())) {
    return Error{static_cast<Errc>(err->code), err->message};
  }
  return decoded;
}

}  // namespace sor::net

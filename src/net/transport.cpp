#include "net/transport.hpp"

#include <utility>

namespace sor::net {

namespace {

// Endpoint names double as trace stream names; the anonymous sender gets a
// stable placeholder so its events still land on a stream.
const std::string& StreamNameFor(const std::string& endpoint) {
  static const std::string kAnon = "client";
  return endpoint.empty() ? kAnon : endpoint;
}

}  // namespace

LoopbackNetwork::LoopbackNetwork()
    : own_registry_(std::make_unique<obs::MetricsRegistry>()),
      registry_(own_registry_.get()) {
  BindStreamCells();
}

void LoopbackNetwork::BindStreamCells() {
  stream_.bytes_in = &registry_->counter("transport.bytes_in");
  stream_.bytes_out = &registry_->counter("transport.bytes_out");
  stream_.frames_in = &registry_->counter("transport.frames_in");
  stream_.frames_out = &registry_->counter("transport.frames_out");
  stream_.frame_errors = &registry_->counter("transport.frame_errors");
  // Daemon-only counters, registered here too (at zero) so every metrics
  // export carries the full transport family under one naming scheme.
  (void)registry_->counter("transport.connections");
  (void)registry_->counter("transport.accept_timeouts");
  (void)registry_->counter("transport.read_timeouts");
  (void)registry_->counter("transport.write_timeouts");
}

bool LoopbackNetwork::RoundTripFrame(Bytes& frame) {
  // Serialize onto the "wire" exactly as a socket write would (length
  // prefix + payload + CRC trailer), then read it back through the shared
  // incremental reader. Lossless for any payload, so simulation behaviour
  // is untouched; what it buys is that the loopback and socket paths
  // exercise the SAME framing code, and that byte counters mean
  // bytes-on-the-wire in both.
  wire_buf_.clear();
  codec::AppendFrame(wire_buf_, frame);
  stream_.bytes_out->Inc(wire_buf_.size());
  stream_.frames_out->Inc();
  frame_reader_.Reset();
  frame_reader_.Feed(wire_buf_);
  Bytes payload;
  if (frame_reader_.Pop(&payload) != codec::FrameStreamReader::Next::kFrame) {
    stream_.frame_errors->Inc();
    return false;
  }
  stream_.bytes_in->Inc(wire_buf_.size());
  stream_.frames_in->Inc();
  frame = std::move(payload);
  return true;
}

void LoopbackNetwork::Register(const std::string& name, Endpoint* endpoint) {
  endpoints_[name] = endpoint;
}

void LoopbackNetwork::Unregister(const std::string& name) {
  endpoints_.erase(name);
}

void LoopbackNetwork::set_metrics(obs::MetricsRegistry* registry) {
  registry_ = registry != nullptr ? registry : own_registry_.get();
  links_.clear();  // cached handles point into the old registry
  outbox_depth_ = nullptr;
  epoch_merges_ = nullptr;
  BindStreamCells();
}

void LoopbackNetwork::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& [key, cells] : links_) cells.have_streams = false;
}

LoopbackNetwork::LinkCells& LoopbackNetwork::Cells(const std::string& from,
                                                   const std::string& to) {
  auto [it, inserted] = links_.try_emplace({from, to});
  LinkCells& c = it->second;
  if (inserted) {
    auto counter = [this, &from, &to](std::string_view base) {
      return &registry_->counter(
          obs::LabeledName(base, {{"from", from}, {"to", to}}));
    };
    c.delivered = counter("net.delivered");
    c.dropped = counter("net.dropped");
    c.corrupted = counter("net.corrupted");
    c.duplicated = counter("net.duplicated");
    c.partitioned = counter("net.partitioned");
    c.responses_dropped = counter("net.responses_dropped");
    c.responses_corrupted = counter("net.responses_corrupted");
    c.node_unreachable = counter("net.node_unreachable");
    c.bytes_sent = counter("net.bytes_sent");
    c.bytes_received = counter("net.bytes_received");
    c.latency_injected_ms = counter("net.latency_injected_ms");
  }
  if (!c.have_streams && tracer_ != nullptr) {
    c.from_stream = tracer_->RegisterStream(StreamNameFor(from));
    c.to_stream = tracer_->RegisterStream(StreamNameFor(to));
    c.have_streams = true;
  }
  return c;
}

TransportStats LoopbackNetwork::ReadCells(const LinkCells& c) {
  TransportStats s;
  s.delivered = c.delivered->value();
  s.dropped = c.dropped->value();
  s.corrupted = c.corrupted->value();
  s.duplicated = c.duplicated->value();
  s.partitioned = c.partitioned->value();
  s.responses_dropped = c.responses_dropped->value();
  s.responses_corrupted = c.responses_corrupted->value();
  s.node_unreachable = c.node_unreachable->value();
  s.bytes_sent = c.bytes_sent->value();
  s.bytes_received = c.bytes_received->value();
  s.latency_injected_ms = c.latency_injected_ms->value();
  return s;
}

TransportStats LoopbackNetwork::stats() const {
  TransportStats total;
  for (const auto& [key, cells] : links_) {
    const TransportStats s = ReadCells(cells);
    total.delivered += s.delivered;
    total.dropped += s.dropped;
    total.corrupted += s.corrupted;
    total.duplicated += s.duplicated;
    total.partitioned += s.partitioned;
    total.responses_dropped += s.responses_dropped;
    total.responses_corrupted += s.responses_corrupted;
    total.node_unreachable += s.node_unreachable;
    total.bytes_sent += s.bytes_sent;
    total.bytes_received += s.bytes_received;
    total.latency_injected_ms += s.latency_injected_ms;
  }
  return total;
}

TransportStats LoopbackNetwork::link_stats(const std::string& from,
                                           const std::string& to) const {
  const auto it = links_.find({from, to});
  return it == links_.end() ? TransportStats{} : ReadCells(it->second);
}

std::map<std::pair<std::string, std::string>, TransportStats>
LoopbackNetwork::all_link_stats() const {
  std::map<std::pair<std::string, std::string>, TransportStats> out;
  for (const auto& [key, cells] : links_) out.emplace(key, ReadCells(cells));
  return out;
}

void LoopbackNetwork::BeginEpoch(std::vector<std::string> senders) {
  epoch_.names = std::move(senders);
  epoch_.rank_of.clear();
  for (std::size_t i = 0; i < epoch_.names.size(); ++i)
    epoch_.rank_of.emplace(epoch_.names[i], i);
  epoch_.outbox.assign(epoch_.names.size(), {});
  epoch_.merging = false;
  epoch_.active = true;
  outbox_depth_ = &registry_->gauge("net.outbox_depth");
  epoch_merges_ = &registry_->counter("net.epoch_merges");
}

void LoopbackNetwork::MergeEpoch() {
  // Driver thread only, after the executor's barrier: every shard's phase-A
  // appends happen-before this read. Deliveries run in (sender rank, send
  // order) — the exact interleaving a serial loop over the senders
  // produces — and each callback fires right after its own delivery, so a
  // sender observes outcome i before outcome i+1, just as it would have
  // synchronously.
  epoch_.merging = true;
  std::uint64_t depth = 0;
  for (std::size_t rank = 0; rank < epoch_.outbox.size(); ++rank) {
    std::vector<EpochEntry>& slot = epoch_.outbox[rank];
    depth += slot.size();
    const std::string& from = epoch_.names[rank];
    for (EpochEntry& entry : slot) {
      Result<Message> outcome =
          Deliver(from, entry.to, std::move(entry.frame), entry.type);
      if (entry.done) entry.done(std::move(outcome));
    }
    slot.clear();
  }
  if (outbox_depth_ != nullptr)
    outbox_depth_->Set(static_cast<double>(depth));
  if (epoch_merges_ != nullptr) epoch_merges_->Inc();
  epoch_.merging = false;
}

void LoopbackNetwork::EndEpoch() {
  epoch_.active = false;
  epoch_.merging = false;
  epoch_.rank_of.clear();
  epoch_.names.clear();
  epoch_.outbox.clear();
}

void LoopbackNetwork::SendAsync(const std::string& from, const std::string& to,
                                const Message& m, SendCallback done) {
  if (epoch_.active && !epoch_.merging) {
    if (auto r = epoch_.rank_of.find(from); r != epoch_.rank_of.end()) {
      // Phase A: encode on the sender's shard (the only CPU this path
      // spends), park the frame, return immediately. Only the owning shard
      // touches outbox[rank] until the barrier.
      epoch_.outbox[r->second].push_back(
          EpochEntry{to, EncodeFrame(m), TypeOf(m), std::move(done)});
      return;
    }
  }
  // No epoch, unranked sender, or nested send from inside the merge pass:
  // synchronous semantics, callback inline.
  Result<Message> outcome = Send(from, to, m);
  if (done) done(std::move(outcome));
}

Result<Message> LoopbackNetwork::Send(const std::string& from,
                                      const std::string& to,
                                      const Message& m) {
  return Deliver(from, to, EncodeFrame(m), TypeOf(m));
}

Result<Message> LoopbackNetwork::Deliver(const std::string& from,
                                         const std::string& to, Bytes frame,
                                         MessageType type) {
  auto it = endpoints_.find(to);
  if (it == endpoints_.end() || it->second == nullptr)
    return Error{Errc::kUnavailable, "no endpoint '" + to + "'"};

  // Single-writer context (the merge pass, or serial code): all bookkeeping
  // below — counter cache creation, stream registration, fault decisions,
  // trace emits — happens in a globally deterministic order.
  LinkCells& link = Cells(from, to);
  link.bytes_sent->Inc(frame.size());

  // Request leg crosses the shared stream framing BEFORE fault injection:
  // the clean frame is framed and re-validated (the socket path's exact
  // codec); corruption below then mangles the SOR5 envelope, as a flipped
  // byte inside a validated record would.
  if (!RoundTripFrame(frame)) {
    return Error{Errc::kInternal,
                 "loopback stream framing failed: " + frame_reader_.error()};
  }

  const SimTime now = clock_ != nullptr ? clock_->now() : SimTime{};
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  auto trace = [&](obs::EventKind kind, std::uint64_t b = 0,
                   std::uint64_t c = 0) {
    if (tracing) tracer_->Emit(link.from_stream, now, kind, link.to_stream, b, c);
  };
  trace(obs::EventKind::kMsgSend, frame.size(),
        static_cast<std::uint64_t>(type));

  // Node fault domain: a down destination loses the frame before its
  // handler runs. A pure state check — no randomness consumed — so arming
  // node faults never shifts the link-fault schedule.
  if (faults_.NodeDown(to, now)) {
    link.node_unreachable->Inc();
    trace(obs::EventKind::kNodeUnreachable);
    return Error{Errc::kUnavailable, "node '" + to + "' is down"};
  }

  // --- request leg ---------------------------------------------------------
  const FaultDecision req =
      faults_.Decide(from, to, Direction::kRequest, now);
  if (req.latency.ms > 0) {
    link.latency_injected_ms->Inc(static_cast<std::uint64_t>(req.latency.ms));
    trace(obs::EventKind::kFaultLatency,
          static_cast<std::uint64_t>(req.latency.ms), 0);
  }
  if (req.drop) {
    link.dropped->Inc();
    trace(obs::EventKind::kMsgDropped, req.partitioned ? 1 : 0);
    if (req.partitioned) {
      link.partitioned->Inc();
      return Error{Errc::kUnavailable,
                   "link to '" + to + "' is partitioned"};
    }
    return Error{Errc::kTimeout, "request to '" + to + "' lost in transit"};
  }
  if (req.corrupt && !frame.empty()) {
    // A corrupted request reaches the handler but fails its CRC there; the
    // send is accounted as corrupted, *not* delivered.
    link.corrupted->Inc();
    trace(obs::EventKind::kMsgCorrupted);
    frame[frame.size() / 2] ^= 0x5a;  // flip bits mid-frame
  } else {
    link.delivered->Inc();
    trace(obs::EventKind::kMsgDelivered);
  }

  // Duplicate delivery: the handler runs twice on the same frame — the
  // at-least-once case idempotent endpoints must absorb. The reply to the
  // *last* delivery is what travels back.
  Bytes response = it->second->HandleFrame(frame);
  if (req.duplicate) {
    link.duplicated->Inc();
    trace(obs::EventKind::kMsgDuplicated);
    response = it->second->HandleFrame(frame);
  }

  // Response leg: same framing round trip on the handler's clean reply.
  if (!RoundTripFrame(response)) {
    return Error{Errc::kInternal,
                 "loopback stream framing failed: " + frame_reader_.error()};
  }

  // --- response leg --------------------------------------------------------
  const FaultDecision resp =
      faults_.Decide(from, to, Direction::kResponse, now);
  if (resp.latency.ms > 0) {
    link.latency_injected_ms->Inc(static_cast<std::uint64_t>(resp.latency.ms));
    trace(obs::EventKind::kFaultLatency,
          static_cast<std::uint64_t>(resp.latency.ms), 1);
  }
  if (resp.drop) {
    // The handler DID run; only the reply is gone. To the sender this is
    // indistinguishable from a dropped request — exactly the lost-Ack
    // ambiguity that forces retries to be idempotent.
    link.responses_dropped->Inc();
    trace(obs::EventKind::kMsgRespDropped, resp.partitioned ? 1 : 0);
    if (resp.partitioned) {
      link.partitioned->Inc();
      return Error{Errc::kUnavailable,
                   "link to '" + to + "' is partitioned"};
    }
    return Error{Errc::kTimeout,
                 "reply from '" + to + "' lost in transit"};
  }
  if (resp.corrupt && !response.empty()) {
    link.responses_corrupted->Inc();
    trace(obs::EventKind::kMsgRespCorrupted);
    response[response.size() / 2] ^= 0x5a;
  }
  link.bytes_received->Inc(response.size());

  Result<Message> decoded = DecodeFrame(response);
  if (!decoded.ok()) return decoded.error();
  // Surface remote errors as local errors for ergonomic call sites.
  if (const auto* err = std::get_if<ErrorReply>(&decoded.value())) {
    return Error{static_cast<Errc>(err->code), err->message};
  }
  return decoded;
}

}  // namespace sor::net

#include "net/transport.hpp"

namespace sor::net {

namespace {

// Endpoint names double as trace stream names; the anonymous sender gets a
// stable placeholder so its events still land on a stream.
const std::string& StreamNameFor(const std::string& endpoint) {
  static const std::string kAnon = "client";
  return endpoint.empty() ? kAnon : endpoint;
}

}  // namespace

LoopbackNetwork::LoopbackNetwork()
    : own_registry_(std::make_unique<obs::MetricsRegistry>()),
      registry_(own_registry_.get()) {}

void LoopbackNetwork::Register(const std::string& name, Endpoint* endpoint) {
  endpoints_[name] = endpoint;
}

void LoopbackNetwork::Unregister(const std::string& name) {
  endpoints_.erase(name);
}

void LoopbackNetwork::set_metrics(obs::MetricsRegistry* registry) {
  registry_ = registry != nullptr ? registry : own_registry_.get();
  links_.clear();  // cached handles point into the old registry
}

void LoopbackNetwork::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& [key, cells] : links_) cells.have_streams = false;
}

LoopbackNetwork::LinkCells& LoopbackNetwork::Cells(const std::string& from,
                                                   const std::string& to) {
  auto [it, inserted] = links_.try_emplace({from, to});
  LinkCells& c = it->second;
  if (inserted) {
    auto counter = [this, &from, &to](std::string_view base) {
      return &registry_->counter(
          obs::LabeledName(base, {{"from", from}, {"to", to}}));
    };
    c.delivered = counter("net.delivered");
    c.dropped = counter("net.dropped");
    c.corrupted = counter("net.corrupted");
    c.duplicated = counter("net.duplicated");
    c.partitioned = counter("net.partitioned");
    c.responses_dropped = counter("net.responses_dropped");
    c.responses_corrupted = counter("net.responses_corrupted");
    c.node_unreachable = counter("net.node_unreachable");
    c.bytes_sent = counter("net.bytes_sent");
    c.bytes_received = counter("net.bytes_received");
    c.latency_injected_ms = counter("net.latency_injected_ms");
  }
  if (!c.have_streams && tracer_ != nullptr) {
    c.from_stream = tracer_->RegisterStream(StreamNameFor(from));
    c.to_stream = tracer_->RegisterStream(StreamNameFor(to));
    c.have_streams = true;
  }
  return c;
}

TransportStats LoopbackNetwork::ReadCells(const LinkCells& c) {
  TransportStats s;
  s.delivered = c.delivered->value();
  s.dropped = c.dropped->value();
  s.corrupted = c.corrupted->value();
  s.duplicated = c.duplicated->value();
  s.partitioned = c.partitioned->value();
  s.responses_dropped = c.responses_dropped->value();
  s.responses_corrupted = c.responses_corrupted->value();
  s.node_unreachable = c.node_unreachable->value();
  s.bytes_sent = c.bytes_sent->value();
  s.bytes_received = c.bytes_received->value();
  s.latency_injected_ms = c.latency_injected_ms->value();
  return s;
}

TransportStats LoopbackNetwork::stats() const {
  TransportStats total;
  for (const auto& [key, cells] : links_) {
    const TransportStats s = ReadCells(cells);
    total.delivered += s.delivered;
    total.dropped += s.dropped;
    total.corrupted += s.corrupted;
    total.duplicated += s.duplicated;
    total.partitioned += s.partitioned;
    total.responses_dropped += s.responses_dropped;
    total.responses_corrupted += s.responses_corrupted;
    total.node_unreachable += s.node_unreachable;
    total.bytes_sent += s.bytes_sent;
    total.bytes_received += s.bytes_received;
    total.latency_injected_ms += s.latency_injected_ms;
  }
  return total;
}

TransportStats LoopbackNetwork::link_stats(const std::string& from,
                                           const std::string& to) const {
  const auto it = links_.find({from, to});
  return it == links_.end() ? TransportStats{} : ReadCells(it->second);
}

std::map<std::pair<std::string, std::string>, TransportStats>
LoopbackNetwork::all_link_stats() const {
  std::map<std::pair<std::string, std::string>, TransportStats> out;
  for (const auto& [key, cells] : links_) out.emplace(key, ReadCells(cells));
  return out;
}

void LoopbackNetwork::BeginOrderedPhase(std::vector<std::string> senders) {
  ordered_.rank_of.clear();
  for (std::size_t i = 0; i < senders.size(); ++i)
    ordered_.rank_of.emplace(std::move(senders[i]), i);
  ordered_.done.assign(ordered_.rank_of.size(), 0);
  // No round in progress until StartRound: low at the end means "everyone
  // completed", which both lets driver-thread pushes through and lets a
  // ranked sender pass AwaitTurn for its own between-round sends.
  ordered_.low = ordered_.done.size();
  ordered_.active = true;
}

void LoopbackNetwork::StartRound() {
  // Runs on the driver thread between rounds; the executor's barrier
  // orders it against every worker of the previous and the next round.
  ordered_.done.assign(ordered_.done.size(), 0);
  ordered_.low = 0;
}

void LoopbackNetwork::CompleteSender(std::size_t rank) {
  std::lock_guard lock(ordered_.mu);
  ordered_.done[rank] = 1;
  while (ordered_.low < ordered_.done.size() &&
         ordered_.done[ordered_.low] != 0) {
    ++ordered_.low;
  }
  ordered_.cv.notify_all();
}

void LoopbackNetwork::EndOrderedPhase() {
  ordered_.active = false;
  ordered_.rank_of.clear();
  ordered_.done.clear();
}

void LoopbackNetwork::AwaitTurn(std::size_t rank) {
  std::unique_lock lock(ordered_.mu);
  ordered_.cv.wait(lock, [&] { return ordered_.low >= rank; });
  // From here until CompleteSender(rank), this sender is the only ranked
  // sender past the gate: every lower rank is done for the round, and every
  // higher rank is still waiting on this one.
}

Result<Message> LoopbackNetwork::Send(const std::string& from,
                                      const std::string& to,
                                      const Message& m) {
  constexpr std::size_t kUnranked = static_cast<std::size_t>(-1);
  std::size_t rank = kUnranked;
  if (ordered_.active) {
    if (auto r = ordered_.rank_of.find(from); r != ordered_.rank_of.end()) {
      rank = r->second;
    } else if (ordered_.rank_of.contains(to)) {
      // A push into a ranked endpoint. Mid-round the target may be
      // mid-tick on another shard: refusing is deterministic; racing into
      // its handler is not. Between rounds only the driver thread runs, so
      // the push is admitted.
      std::lock_guard lock(ordered_.mu);
      if (ordered_.low < ordered_.done.size())
        return Error{Errc::kUnavailable,
                     "endpoint '" + to + "' is ticking in a parallel round"};
    }
  }

  auto it = endpoints_.find(to);
  if (it == endpoints_.end() || it->second == nullptr)
    return Error{Errc::kUnavailable, "no endpoint '" + to + "'"};

  // Encoding is pure per-message work: do it before taking the turn so
  // shards overlap the CPU cost and serialize only the delivery itself.
  Bytes frame = EncodeFrame(m);
  if (rank != kUnranked) AwaitTurn(rank);

  // Behind the gate (or in serial code): all bookkeeping below — counter
  // cache creation, stream registration, fault decisions, trace emits —
  // happens in a globally deterministic order.
  LinkCells& link = Cells(from, to);
  link.bytes_sent->Inc(frame.size());

  const SimTime now = clock_ != nullptr ? clock_->now() : SimTime{};
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  auto trace = [&](obs::EventKind kind, std::uint64_t b = 0,
                   std::uint64_t c = 0) {
    if (tracing) tracer_->Emit(link.from_stream, now, kind, link.to_stream, b, c);
  };
  trace(obs::EventKind::kMsgSend, frame.size(),
        static_cast<std::uint64_t>(TypeOf(m)));

  // Node fault domain: a down destination loses the frame before its
  // handler runs. A pure state check — no randomness consumed — so arming
  // node faults never shifts the link-fault schedule.
  if (faults_.NodeDown(to, now)) {
    link.node_unreachable->Inc();
    trace(obs::EventKind::kNodeUnreachable);
    return Error{Errc::kUnavailable, "node '" + to + "' is down"};
  }

  // --- request leg ---------------------------------------------------------
  const FaultDecision req =
      faults_.Decide(from, to, Direction::kRequest, now);
  if (req.latency.ms > 0) {
    link.latency_injected_ms->Inc(static_cast<std::uint64_t>(req.latency.ms));
    trace(obs::EventKind::kFaultLatency,
          static_cast<std::uint64_t>(req.latency.ms), 0);
  }
  if (req.drop) {
    link.dropped->Inc();
    trace(obs::EventKind::kMsgDropped, req.partitioned ? 1 : 0);
    if (req.partitioned) {
      link.partitioned->Inc();
      return Error{Errc::kUnavailable,
                   "link to '" + to + "' is partitioned"};
    }
    return Error{Errc::kTimeout, "request to '" + to + "' lost in transit"};
  }
  if (req.corrupt && !frame.empty()) {
    // A corrupted request reaches the handler but fails its CRC there; the
    // send is accounted as corrupted, *not* delivered.
    link.corrupted->Inc();
    trace(obs::EventKind::kMsgCorrupted);
    frame[frame.size() / 2] ^= 0x5a;  // flip bits mid-frame
  } else {
    link.delivered->Inc();
    trace(obs::EventKind::kMsgDelivered);
  }

  // Duplicate delivery: the handler runs twice on the same frame — the
  // at-least-once case idempotent endpoints must absorb. The reply to the
  // *last* delivery is what travels back.
  Bytes response = it->second->HandleFrame(frame);
  if (req.duplicate) {
    link.duplicated->Inc();
    trace(obs::EventKind::kMsgDuplicated);
    response = it->second->HandleFrame(frame);
  }

  // --- response leg --------------------------------------------------------
  const FaultDecision resp =
      faults_.Decide(from, to, Direction::kResponse, now);
  if (resp.latency.ms > 0) {
    link.latency_injected_ms->Inc(static_cast<std::uint64_t>(resp.latency.ms));
    trace(obs::EventKind::kFaultLatency,
          static_cast<std::uint64_t>(resp.latency.ms), 1);
  }
  if (resp.drop) {
    // The handler DID run; only the reply is gone. To the sender this is
    // indistinguishable from a dropped request — exactly the lost-Ack
    // ambiguity that forces retries to be idempotent.
    link.responses_dropped->Inc();
    trace(obs::EventKind::kMsgRespDropped, resp.partitioned ? 1 : 0);
    if (resp.partitioned) {
      link.partitioned->Inc();
      return Error{Errc::kUnavailable,
                   "link to '" + to + "' is partitioned"};
    }
    return Error{Errc::kTimeout,
                 "reply from '" + to + "' lost in transit"};
  }
  if (resp.corrupt && !response.empty()) {
    link.responses_corrupted->Inc();
    trace(obs::EventKind::kMsgRespCorrupted);
    response[response.size() / 2] ^= 0x5a;
  }
  link.bytes_received->Inc(response.size());

  Result<Message> decoded = DecodeFrame(response);
  if (!decoded.ok()) return decoded.error();
  // Surface remote errors as local errors for ergonomic call sites.
  if (const auto* err = std::get_if<ErrorReply>(&decoded.value())) {
    return Error{static_cast<Errc>(err->code), err->message};
  }
  return decoded;
}

}  // namespace sor::net

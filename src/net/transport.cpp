#include "net/transport.hpp"

namespace sor::net {

void LoopbackNetwork::Register(const std::string& name, Endpoint* endpoint) {
  endpoints_[name] = endpoint;
}

void LoopbackNetwork::Unregister(const std::string& name) {
  endpoints_.erase(name);
}

TransportStats LoopbackNetwork::link_stats(const std::string& from,
                                           const std::string& to) const {
  const auto it = link_stats_.find({from, to});
  return it == link_stats_.end() ? TransportStats{} : it->second;
}

Result<Message> LoopbackNetwork::Send(const std::string& from,
                                      const std::string& to,
                                      const Message& m) {
  auto it = endpoints_.find(to);
  if (it == endpoints_.end() || it->second == nullptr)
    return Error{Errc::kUnavailable, "no endpoint '" + to + "'"};

  TransportStats& link = link_stats_[{from, to}];
  Bytes frame = EncodeFrame(m);
  stats_.bytes_sent += frame.size();
  link.bytes_sent += frame.size();

  const SimTime now = clock_ != nullptr ? clock_->now() : SimTime{};

  // --- request leg ---------------------------------------------------------
  const FaultDecision req =
      faults_.Decide(from, to, Direction::kRequest, now);
  if (req.latency.ms > 0) {
    stats_.latency_injected_ms += static_cast<std::uint64_t>(req.latency.ms);
    link.latency_injected_ms += static_cast<std::uint64_t>(req.latency.ms);
  }
  if (req.drop) {
    ++stats_.dropped;
    ++link.dropped;
    if (req.partitioned) {
      ++stats_.partitioned;
      ++link.partitioned;
      return Error{Errc::kUnavailable,
                   "link to '" + to + "' is partitioned"};
    }
    return Error{Errc::kTimeout, "request to '" + to + "' lost in transit"};
  }
  if (req.corrupt && !frame.empty()) {
    // A corrupted request reaches the handler but fails its CRC there; the
    // send is accounted as corrupted, *not* delivered.
    ++stats_.corrupted;
    ++link.corrupted;
    frame[frame.size() / 2] ^= 0x5a;  // flip bits mid-frame
  } else {
    ++stats_.delivered;
    ++link.delivered;
  }

  // Duplicate delivery: the handler runs twice on the same frame — the
  // at-least-once case idempotent endpoints must absorb. The reply to the
  // *last* delivery is what travels back.
  Bytes response = it->second->HandleFrame(frame);
  if (req.duplicate) {
    ++stats_.duplicated;
    ++link.duplicated;
    response = it->second->HandleFrame(frame);
  }

  // --- response leg --------------------------------------------------------
  const FaultDecision resp =
      faults_.Decide(from, to, Direction::kResponse, now);
  if (resp.latency.ms > 0) {
    stats_.latency_injected_ms += static_cast<std::uint64_t>(resp.latency.ms);
    link.latency_injected_ms += static_cast<std::uint64_t>(resp.latency.ms);
  }
  if (resp.drop) {
    // The handler DID run; only the reply is gone. To the sender this is
    // indistinguishable from a dropped request — exactly the lost-Ack
    // ambiguity that forces retries to be idempotent.
    ++stats_.responses_dropped;
    ++link.responses_dropped;
    if (resp.partitioned) {
      ++stats_.partitioned;
      ++link.partitioned;
      return Error{Errc::kUnavailable,
                   "link to '" + to + "' is partitioned"};
    }
    return Error{Errc::kTimeout,
                 "reply from '" + to + "' lost in transit"};
  }
  if (resp.corrupt && !response.empty()) {
    ++stats_.responses_corrupted;
    ++link.responses_corrupted;
    response[response.size() / 2] ^= 0x5a;
  }
  stats_.bytes_received += response.size();
  link.bytes_received += response.size();

  Result<Message> decoded = DecodeFrame(response);
  if (!decoded.ok()) return decoded.error();
  // Surface remote errors as local errors for ergonomic call sites.
  if (const auto* err = std::get_if<ErrorReply>(&decoded.value())) {
    return Error{static_cast<Errc>(err->code), err->message};
  }
  return decoded;
}

}  // namespace sor::net

#include "net/fault_injector.hpp"

namespace sor::net {

bool FaultInjector::Matches(const std::string& pattern,
                            const std::string& name) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*')
    return name.compare(0, pattern.size() - 1, pattern, 0,
                        pattern.size() - 1) == 0;
  return pattern == name;
}

FaultDecision FaultInjector::Decide(const std::string& from,
                                    const std::string& to,
                                    Direction direction, SimTime now) {
  FaultDecision d;

  // Scripted one-shot counters first: exact, randomness-free.
  if (direction == Direction::kRequest) {
    if (drop_next > 0) {
      --drop_next;
      d.drop = true;
      return d;
    }
    if (corrupt_next > 0) {
      --corrupt_next;
      d.corrupt = true;
    }
  }

  for (const FaultRule& rule : rules_) {
    if (direction == Direction::kRequest && !rule.on_request) continue;
    if (direction == Direction::kResponse && !rule.on_response) continue;
    if (!Matches(rule.from, from) || !Matches(rule.to, to)) continue;

    if (!rule.partition.empty() && rule.partition.contains(now)) {
      d.drop = true;
      d.partitioned = true;
      // A partition beats every probabilistic outcome, but the stream must
      // still advance identically to a run where the window is closed —
      // otherwise two runs with the same seed diverge after the partition.
    }
    if (rule.drop > 0.0 && rng_.chance(rule.drop)) d.drop = true;
    if (rule.corrupt > 0.0 && rng_.chance(rule.corrupt)) d.corrupt = true;
    if (rule.duplicate > 0.0 && rng_.chance(rule.duplicate) &&
        direction == Direction::kRequest) {
      d.duplicate = true;
    }
    d.latency = d.latency + rule.latency;
  }
  if (d.drop) {
    d.corrupt = false;
    d.duplicate = false;
  }
  return d;
}

}  // namespace sor::net

#include "net/fault_injector.hpp"

#include <limits>

namespace sor::net {

namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Uniform in [0, 1) from the top 53 bits of a hash.
double UnitFromHash(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultInjector::Matches(const std::string& pattern,
                            const std::string& name) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*')
    return name.compare(0, pattern.size() - 1, pattern, 0,
                        pattern.size() - 1) == 0;
  return pattern == name;
}

FaultDecision FaultInjector::Decide(const std::string& from,
                                    const std::string& to,
                                    Direction direction, SimTime now) {
  FaultDecision d;

  // Scripted one-shot counters first: exact, randomness-free.
  if (direction == Direction::kRequest) {
    if (drop_next > 0) {
      --drop_next;
      d.drop = true;
      return d;
    }
    if (corrupt_next > 0) {
      --corrupt_next;
      d.corrupt = true;
    }
  }

  for (const FaultRule& rule : rules_) {
    if (direction == Direction::kRequest && !rule.on_request) continue;
    if (direction == Direction::kResponse && !rule.on_response) continue;
    if (!Matches(rule.from, from) || !Matches(rule.to, to)) continue;

    if (!rule.partition.empty() && rule.partition.contains(now)) {
      d.drop = true;
      d.partitioned = true;
      // A partition beats every probabilistic outcome, but the stream must
      // still advance identically to a run where the window is closed —
      // otherwise two runs with the same seed diverge after the partition.
    }
    if (rule.drop > 0.0 && rng_.chance(rule.drop)) d.drop = true;
    if (rule.corrupt > 0.0 && rng_.chance(rule.corrupt)) d.corrupt = true;
    if (rule.duplicate > 0.0 && rng_.chance(rule.duplicate) &&
        direction == Direction::kRequest) {
      d.duplicate = true;
    }
    d.latency = d.latency + rule.latency;
  }
  if (d.drop) {
    d.corrupt = false;
    d.duplicate = false;
  }
  return d;
}

NodeEvent FaultInjector::DecideNodeEvent(const std::string& endpoint,
                                         SimTime now) const {
  NodeEvent ev;
  if (node_rules_.empty()) return ev;
  // Pure hash, no stream: (node_seed, endpoint, now, rule index) fully
  // determine the outcome, independent of evaluation order.
  const std::uint64_t base =
      SplitMix64(node_seed_ ^ Fnv1a(endpoint)) ^
      SplitMix64(static_cast<std::uint64_t>(now.ms));
  for (std::size_t i = 0; i < node_rules_.size(); ++i) {
    const NodeFaultRule& rule = node_rules_[i];
    if (!Matches(rule.endpoint, endpoint)) continue;
    const std::uint64_t h = SplitMix64(base + 0x632BE59BD9B4E019ull * (i + 1));
    if (rule.crash > 0.0 &&
        UnitFromHash(SplitMix64(h ^ 0xC1)) < rule.crash) {
      ev.kind = NodeEvent::Kind::kCrash;
      ev.down_for = rule.restart_after;
      return ev;
    }
    if (rule.uninstall > 0.0 &&
        UnitFromHash(SplitMix64(h ^ 0xC2)) < rule.uninstall) {
      ev.kind = NodeEvent::Kind::kUninstall;
      ev.down_for = rule.reinstall_after;
      return ev;
    }
    if (rule.stall > 0.0 &&
        UnitFromHash(SplitMix64(h ^ 0xC3)) < rule.stall) {
      ev.kind = NodeEvent::Kind::kStall;
      ev.down_for = rule.stall_for;
      return ev;
    }
  }
  return ev;
}

void FaultInjector::SetNodeDown(const std::string& endpoint, SimTime until) {
  down_[endpoint] = until.ms == 0
                        ? SimTime{std::numeric_limits<std::int64_t>::max()}
                        : until;
}

void FaultInjector::SetNodeUp(const std::string& endpoint) {
  down_.erase(endpoint);
}

bool FaultInjector::NodeDown(const std::string& endpoint, SimTime now) const {
  const auto it = down_.find(endpoint);
  return it != down_.end() && now.ms < it->second.ms;
}

}  // namespace sor::net

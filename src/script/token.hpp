// Token model for SenseScript.
//
// SenseScript is this reproduction's stand-in for the Lua scripts SOR uses
// to describe sensing tasks (§II-A, Fig. 4): "How to sense, i.e., what data
// to acquire, is described using the Lua scripting language". The grammar is
// a compact Lua subset — enough to express every acquisition loop in the
// paper (calls like get_light_readings()/get_location(), local variables,
// numeric for, while, if/elseif/else, functions, lists) while remaining
// fully sandboxed: scripts can only touch the host through a whitelist.
#pragma once

#include <cstdint>
#include <string>

namespace sor::script {

enum class TokenType : std::uint8_t {
  // literals / identifiers
  kNumber, kString, kName,
  // keywords
  kLocal, kIf, kThen, kElse, kElseif, kEnd, kWhile, kDo, kFor, kFunction,
  kReturn, kBreak, kTrue, kFalse, kNil, kAnd, kOr, kNot,
  // symbols
  kPlus, kMinus, kStar, kSlash, kPercent, kAssign, kEq, kNe, kLt, kLe, kGt,
  kGe, kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace, kComma,
  kConcat, kHash,
  kEof,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     // raw lexeme (unescaped payload for strings)
  double number = 0.0;  // valid for kNumber
  int line = 1;         // 1-based source line, for diagnostics
};

[[nodiscard]] const char* to_string(TokenType t);

}  // namespace sor::script

#include "script/value.hpp"

#include <cmath>
#include <sstream>

namespace sor::script {

bool Value::Equals(const Value& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::kNil: return true;
    case Kind::kBool: return boolean_ == o.boolean_;
    case Kind::kNumber: return number_ == o.number_;
    case Kind::kString: return string_ == o.string_;
    case Kind::kList: {
      if (list_ == o.list_) return true;
      if (!list_ || !o.list_) return false;
      if (list_->size() != o.list_->size()) return false;
      for (std::size_t i = 0; i < list_->size(); ++i) {
        if (!(*list_)[i].Equals((*o.list_)[i])) return false;
      }
      return true;
    }
  }
  return false;
}

std::string Value::ToDisplayString() const {
  switch (kind_) {
    case Kind::kNil: return "nil";
    case Kind::kBool: return boolean_ ? "true" : "false";
    case Kind::kNumber: {
      // Integral numbers print without a trailing ".0", like Lua 5.2.
      if (std::floor(number_) == number_ && std::fabs(number_) < 1e15) {
        std::ostringstream oss;
        oss << static_cast<long long>(number_);
        return oss.str();
      }
      std::ostringstream oss;
      oss << number_;
      return oss.str();
    }
    case Kind::kString: return string_;
    case Kind::kList: {
      std::string out = "{";
      if (list_) {
        for (std::size_t i = 0; i < list_->size(); ++i) {
          if (i) out += ", ";
          out += (*list_)[i].ToDisplayString();
        }
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

const char* Value::TypeName() const {
  switch (kind_) {
    case Kind::kNil: return "nil";
    case Kind::kBool: return "boolean";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kList: return "list";
  }
  return "?";
}

}  // namespace sor::script

#include "script/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace sor::script {

const char* to_string(TokenType t) {
  switch (t) {
    case TokenType::kNumber: return "number";
    case TokenType::kString: return "string";
    case TokenType::kName: return "name";
    case TokenType::kLocal: return "local";
    case TokenType::kIf: return "if";
    case TokenType::kThen: return "then";
    case TokenType::kElse: return "else";
    case TokenType::kElseif: return "elseif";
    case TokenType::kEnd: return "end";
    case TokenType::kWhile: return "while";
    case TokenType::kDo: return "do";
    case TokenType::kFor: return "for";
    case TokenType::kFunction: return "function";
    case TokenType::kReturn: return "return";
    case TokenType::kBreak: return "break";
    case TokenType::kTrue: return "true";
    case TokenType::kFalse: return "false";
    case TokenType::kNil: return "nil";
    case TokenType::kAnd: return "and";
    case TokenType::kOr: return "or";
    case TokenType::kNot: return "not";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kStar: return "*";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kAssign: return "=";
    case TokenType::kEq: return "==";
    case TokenType::kNe: return "~=";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kLBracket: return "[";
    case TokenType::kRBracket: return "]";
    case TokenType::kLBrace: return "{";
    case TokenType::kRBrace: return "}";
    case TokenType::kComma: return ",";
    case TokenType::kConcat: return "..";
    case TokenType::kHash: return "#";
    case TokenType::kEof: return "<eof>";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokenType>& Keywords() {
  static const std::unordered_map<std::string_view, TokenType> kw = {
      {"local", TokenType::kLocal},       {"if", TokenType::kIf},
      {"then", TokenType::kThen},         {"else", TokenType::kElse},
      {"elseif", TokenType::kElseif},     {"end", TokenType::kEnd},
      {"while", TokenType::kWhile},       {"do", TokenType::kDo},
      {"for", TokenType::kFor},           {"function", TokenType::kFunction},
      {"return", TokenType::kReturn},     {"break", TokenType::kBreak},
      {"true", TokenType::kTrue},         {"false", TokenType::kFalse},
      {"nil", TokenType::kNil},           {"and", TokenType::kAnd},
      {"or", TokenType::kOr},             {"not", TokenType::kNot},
  };
  return kw;
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;

  auto make = [&](TokenType t, std::string text = {}) {
    out.push_back(Token{t, std::move(text), 0.0, line});
  };
  auto error = [&](const std::string& msg) {
    // The line rides both in the rendered message and in the structured
    // field, so analyzer diagnostics (SA001) and registration replies can
    // address it without re-parsing the string.
    return Error{Errc::kScriptError,
                 "lex error at line " + std::to_string(line) + ": " + msg,
                 line};
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comment: "--" to end of line (Lua style, as in Fig. 4's scripts).
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '-') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i;
      while (j < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[j])) ||
              src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
              ((src[j] == '+' || src[j] == '-') && j > i &&
               (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      const std::string text(src.substr(i, j - i));
      char* endp = nullptr;
      const double v = std::strtod(text.c_str(), &endp);
      if (endp != text.c_str() + text.size())
        return error("malformed number '" + text + "'");
      Token t{TokenType::kNumber, text, v, line};
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) ||
              src[j] == '_')) {
        ++j;
      }
      const std::string_view word = src.substr(i, j - i);
      if (auto it = Keywords().find(word); it != Keywords().end()) {
        make(it->second, std::string(word));
      } else {
        make(TokenType::kName, std::string(word));
      }
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string text;
      std::size_t j = i + 1;
      bool closed = false;
      while (j < src.size()) {
        if (src[j] == '\\' && j + 1 < src.size()) {
          const char esc = src[j + 1];
          switch (esc) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            case '\'': text += '\''; break;
            default: return error(std::string("bad escape '\\") + esc + "'");
          }
          j += 2;
          continue;
        }
        if (src[j] == quote) {
          closed = true;
          ++j;
          break;
        }
        if (src[j] == '\n') return error("newline in string literal");
        text += src[j++];
      }
      if (!closed) return error("unterminated string literal");
      make(TokenType::kString, std::move(text));
      i = j;
      continue;
    }
    // Symbols.
    auto two = [&](char next) {
      return i + 1 < src.size() && src[i + 1] == next;
    };
    switch (c) {
      case '+': make(TokenType::kPlus); ++i; break;
      case '-': make(TokenType::kMinus); ++i; break;
      case '*': make(TokenType::kStar); ++i; break;
      case '/': make(TokenType::kSlash); ++i; break;
      case '%': make(TokenType::kPercent); ++i; break;
      case '#': make(TokenType::kHash); ++i; break;
      case '(': make(TokenType::kLParen); ++i; break;
      case ')': make(TokenType::kRParen); ++i; break;
      case '[': make(TokenType::kLBracket); ++i; break;
      case ']': make(TokenType::kRBracket); ++i; break;
      case '{': make(TokenType::kLBrace); ++i; break;
      case '}': make(TokenType::kRBrace); ++i; break;
      case ',': make(TokenType::kComma); ++i; break;
      case '=':
        if (two('=')) {
          make(TokenType::kEq);
          i += 2;
        } else {
          make(TokenType::kAssign);
          ++i;
        }
        break;
      case '~':
        if (two('=')) {
          make(TokenType::kNe);
          i += 2;
        } else {
          return error("unexpected '~'");
        }
        break;
      case '<':
        if (two('=')) {
          make(TokenType::kLe);
          i += 2;
        } else {
          make(TokenType::kLt);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          make(TokenType::kGe);
          i += 2;
        } else {
          make(TokenType::kGt);
          ++i;
        }
        break;
      case '.':
        if (two('.')) {
          make(TokenType::kConcat);
          i += 2;
        } else {
          return error("unexpected '.'");
        }
        break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }
  make(TokenType::kEof);
  return out;
}

}  // namespace sor::script

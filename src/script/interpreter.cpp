#include "script/interpreter.hpp"

#include <cmath>

#include "script/ir/exec.hpp"
#include "script/ir/lower.hpp"
#include "script/parser.hpp"

namespace sor::script {

void HostRegistry::Register(const std::string& name, HostFn fn) {
  fns_[name] = std::move(fn);
}

const HostFn* HostRegistry::Find(const std::string& name) const {
  auto it = fns_.find(name);
  return it == fns_.end() ? nullptr : &it->second;
}

std::vector<std::string> HostRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(fns_.size());
  for (const auto& [name, _] : fns_) names.push_back(name);
  return names;
}

namespace {

// Control-flow signal raised by break/return while executing a block.
enum class Flow { kNormal, kBreak, kReturn };

struct Scope {
  std::map<std::string, Value> vars;
};

}  // namespace

class Interpreter::Impl {
 public:
  Impl(const HostRegistry& host, const InterpreterOptions& opts)
      : host_(host), opts_(opts) {}

  Result<ExecutionResult> Execute(const Program& program) {
    scopes_.clear();
    scopes_.emplace_back();  // global scope
    functions_.clear();
    result_ = ExecutionResult{};

    Flow flow = Flow::kNormal;
    Value ret;
    if (Status s = RunBlock(program.statements, flow, ret); !s.ok())
      return s.error();
    result_.return_value = std::move(ret);
    result_.steps = steps_;
    return std::move(result_);
  }

 private:
  Status Tick(int line) {
    if (++steps_ > opts_.max_steps) {
      return Status(Errc::kScriptError,
                    "instruction budget exhausted at line " +
                        std::to_string(line));
    }
    return Status::Ok();
  }

  // Line in the message and in the structured field — same contract as the
  // lexer/parser error paths.
  static Error RuntimeError(int line, const std::string& msg) {
    return Error{Errc::kScriptError,
                 "runtime error at line " + std::to_string(line) + ": " + msg,
                 line};
  }

  // --- variable lookup ---------------------------------------------------

  Value* FindVar(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (auto v = it->vars.find(name); v != it->vars.end()) return &v->second;
    }
    return nullptr;
  }

  // --- statements ----------------------------------------------------------

  Status RunBlock(const std::vector<StmtPtr>& body, Flow& flow, Value& ret) {
    for (const StmtPtr& stmt : body) {
      if (Status s = RunStmt(*stmt, flow, ret); !s.ok()) return s;
      if (flow != Flow::kNormal) return Status::Ok();
    }
    return Status::Ok();
  }

  Status RunStmt(const Stmt& st, Flow& flow, Value& ret) {
    if (Status s = Tick(st.line); !s.ok()) return s;
    switch (st.kind) {
      case Stmt::Kind::kLocal: {
        Result<Value> v = Eval(*st.expr);
        if (!v.ok()) return v.error();
        scopes_.back().vars[st.name] = std::move(v).value();
        return Status::Ok();
      }
      case Stmt::Kind::kAssign: {
        Result<Value> v = Eval(*st.expr);
        if (!v.ok()) return v.error();
        if (st.target_index) {
          // list[i] = v
          Result<Value> listv = Eval(*st.target_index->lhs);
          if (!listv.ok()) return listv.error();
          if (!listv.value().is_list())
            return RuntimeError(st.line, "cannot index a " +
                                             std::string(
                                                 listv.value().TypeName()));
          Result<Value> idxv = Eval(*st.target_index->rhs);
          if (!idxv.ok()) return idxv.error();
          if (!idxv.value().is_number())
            return RuntimeError(st.line, "list index must be a number");
          List& list = *listv.value().as_list();
          const auto idx = static_cast<long long>(idxv.value().as_number());
          if (idx < 1 || idx > static_cast<long long>(list.size()) + 1)
            return RuntimeError(st.line,
                                "list index " + std::to_string(idx) +
                                    " out of range (size " +
                                    std::to_string(list.size()) + ")");
          if (idx == static_cast<long long>(list.size()) + 1) {
            list.push_back(std::move(v).value());  // Lua-style append
          } else {
            list[static_cast<std::size_t>(idx - 1)] = std::move(v).value();
          }
          return Status::Ok();
        }
        if (Value* slot = FindVar(st.name)) {
          *slot = std::move(v).value();
        } else {
          // Assignment to an undeclared name creates a global (Lua-like).
          scopes_.front().vars[st.name] = std::move(v).value();
        }
        return Status::Ok();
      }
      case Stmt::Kind::kExpr: {
        Result<Value> v = Eval(*st.expr);
        if (!v.ok()) return v.error();
        return Status::Ok();
      }
      case Stmt::Kind::kIf: {
        Result<Value> cond = Eval(*st.expr);
        if (!cond.ok()) return cond.error();
        scopes_.emplace_back();
        Status s = cond.value().truthy() ? RunBlock(st.body, flow, ret)
                                         : RunBlock(st.else_body, flow, ret);
        scopes_.pop_back();
        return s;
      }
      case Stmt::Kind::kWhile: {
        while (true) {
          if (Status s = Tick(st.line); !s.ok()) return s;
          Result<Value> cond = Eval(*st.expr);
          if (!cond.ok()) return cond.error();
          if (!cond.value().truthy()) break;
          scopes_.emplace_back();
          Status s = RunBlock(st.body, flow, ret);
          scopes_.pop_back();
          if (!s.ok()) return s;
          if (flow == Flow::kBreak) {
            flow = Flow::kNormal;
            break;
          }
          if (flow == Flow::kReturn) return Status::Ok();
        }
        return Status::Ok();
      }
      case Stmt::Kind::kNumericFor: {
        Result<Value> start = Eval(*st.for_start);
        if (!start.ok()) return start.error();
        Result<Value> stop = Eval(*st.for_stop);
        if (!stop.ok()) return stop.error();
        double step = 1.0;
        if (st.for_step) {
          Result<Value> sv = Eval(*st.for_step);
          if (!sv.ok()) return sv.error();
          if (!sv.value().is_number())
            return RuntimeError(st.line, "for step must be a number");
          step = sv.value().as_number();
        }
        if (!start.value().is_number() || !stop.value().is_number())
          return RuntimeError(st.line, "for bounds must be numbers");
        if (step == 0.0) return RuntimeError(st.line, "for step is zero");
        const double stop_v = stop.value().as_number();
        for (double i = start.value().as_number();
             step > 0 ? i <= stop_v : i >= stop_v; i += step) {
          if (Status s = Tick(st.line); !s.ok()) return s;
          scopes_.emplace_back();
          scopes_.back().vars[st.name] = Value(i);
          Status s = RunBlock(st.body, flow, ret);
          scopes_.pop_back();
          if (!s.ok()) return s;
          if (flow == Flow::kBreak) {
            flow = Flow::kNormal;
            break;
          }
          if (flow == Flow::kReturn) return Status::Ok();
        }
        return Status::Ok();
      }
      case Stmt::Kind::kFunction: {
        if (host_.Find(st.name) != nullptr) {
          return Status(Errc::kScriptError,
                        "line " + std::to_string(st.line) +
                            ": cannot shadow host function '" + st.name + "'");
        }
        functions_[st.name] = &st;
        return Status::Ok();
      }
      case Stmt::Kind::kReturn: {
        if (st.expr) {
          Result<Value> v = Eval(*st.expr);
          if (!v.ok()) return v.error();
          ret = std::move(v).value();
        } else {
          ret = Value();
        }
        flow = Flow::kReturn;
        return Status::Ok();
      }
      case Stmt::Kind::kBreak:
        flow = Flow::kBreak;
        return Status::Ok();
    }
    return Status(Errc::kInternal, "unknown statement kind");
  }

  // --- expressions -----------------------------------------------------

  Result<Value> Eval(const Expr& e) {
    if (Status s = Tick(e.line); !s.ok()) return s.error();
    switch (e.kind) {
      case Expr::Kind::kNumber: return Value(e.number);
      case Expr::Kind::kString: return Value(e.text);
      case Expr::Kind::kBool: return Value(e.boolean);
      case Expr::Kind::kNil: return Value();
      case Expr::Kind::kName: {
        if (Value* v = FindVar(e.text)) return *v;
        return RuntimeError(e.line, "undefined variable '" + e.text + "'");
      }
      case Expr::Kind::kUnary: return EvalUnary(e);
      case Expr::Kind::kBinary: return EvalBinary(e);
      case Expr::Kind::kCall: return EvalCall(e);
      case Expr::Kind::kIndex: {
        Result<Value> list = Eval(*e.lhs);
        if (!list.ok()) return list;
        if (!list.value().is_list())
          return RuntimeError(
              e.line,
              "cannot index a " + std::string(list.value().TypeName()));
        Result<Value> idx = Eval(*e.rhs);
        if (!idx.ok()) return idx;
        if (!idx.value().is_number())
          return RuntimeError(e.line, "list index must be a number");
        const List& l = *list.value().as_list();
        const auto i = static_cast<long long>(idx.value().as_number());
        if (i < 1 || i > static_cast<long long>(l.size()))
          return RuntimeError(e.line, "list index " + std::to_string(i) +
                                          " out of range (size " +
                                          std::to_string(l.size()) + ")");
        return l[static_cast<std::size_t>(i - 1)];
      }
      case Expr::Kind::kListLiteral: {
        List elems;
        elems.reserve(e.args.size());
        for (const ExprPtr& arg : e.args) {
          Result<Value> v = Eval(*arg);
          if (!v.ok()) return v;
          elems.push_back(std::move(v).value());
        }
        return Value::MakeList(std::move(elems));
      }
    }
    return Error{Errc::kInternal, "unknown expression kind"};
  }

  Result<Value> EvalUnary(const Expr& e) {
    Result<Value> v = Eval(*e.lhs);
    if (!v.ok()) return v;
    switch (e.un_op) {
      case UnOp::kNeg:
        if (!v.value().is_number())
          return RuntimeError(e.line, "cannot negate a " +
                                          std::string(v.value().TypeName()));
        return Value(-v.value().as_number());
      case UnOp::kNot:
        return Value(!v.value().truthy());
      case UnOp::kLen:
        if (v.value().is_list())
          return Value(static_cast<double>(v.value().as_list()->size()));
        if (v.value().is_string())
          return Value(static_cast<double>(v.value().as_string().size()));
        return RuntimeError(e.line, "cannot take length of a " +
                                        std::string(v.value().TypeName()));
    }
    return Error{Errc::kInternal, "unknown unary op"};
  }

  Result<Value> EvalBinary(const Expr& e) {
    // Short-circuit and/or evaluate the rhs lazily (Lua semantics: the
    // result is one of the operands, not coerced to boolean).
    if (e.bin_op == BinOp::kAnd) {
      Result<Value> lhs = Eval(*e.lhs);
      if (!lhs.ok()) return lhs;
      if (!lhs.value().truthy()) return lhs;
      return Eval(*e.rhs);
    }
    if (e.bin_op == BinOp::kOr) {
      Result<Value> lhs = Eval(*e.lhs);
      if (!lhs.ok()) return lhs;
      if (lhs.value().truthy()) return lhs;
      return Eval(*e.rhs);
    }

    Result<Value> lhs = Eval(*e.lhs);
    if (!lhs.ok()) return lhs;
    Result<Value> rhs = Eval(*e.rhs);
    if (!rhs.ok()) return rhs;
    const Value& a = lhs.value();
    const Value& b = rhs.value();

    auto arith = [&](auto f) -> Result<Value> {
      if (!a.is_number() || !b.is_number())
        return RuntimeError(e.line, std::string("arithmetic on ") +
                                        a.TypeName() + " and " + b.TypeName());
      return Value(f(a.as_number(), b.as_number()));
    };
    auto compare = [&](auto f) -> Result<Value> {
      if (a.is_number() && b.is_number())
        return Value(f(a.as_number(), b.as_number()));
      if (a.is_string() && b.is_string())
        return Value(f(a.as_string().compare(b.as_string()), 0));
      return RuntimeError(e.line, std::string("cannot compare ") +
                                      a.TypeName() + " and " + b.TypeName());
    };

    switch (e.bin_op) {
      case BinOp::kAdd: return arith([](double x, double y) { return x + y; });
      case BinOp::kSub: return arith([](double x, double y) { return x - y; });
      case BinOp::kMul: return arith([](double x, double y) { return x * y; });
      case BinOp::kDiv:
        return arith([](double x, double y) { return x / y; });
      case BinOp::kMod:
        return arith([](double x, double y) { return std::fmod(x, y); });
      case BinOp::kConcat: {
        auto str = [](const Value& v) { return v.ToDisplayString(); };
        if (a.is_list() || b.is_list())
          return RuntimeError(e.line, "cannot concatenate lists");
        return Value(str(a) + str(b));
      }
      case BinOp::kEq: return Value(a.Equals(b));
      case BinOp::kNe: return Value(!a.Equals(b));
      case BinOp::kLt:
        return compare([](auto x, auto y) { return x < y; });
      case BinOp::kLe:
        return compare([](auto x, auto y) { return x <= y; });
      case BinOp::kGt:
        return compare([](auto x, auto y) { return x > y; });
      case BinOp::kGe:
        return compare([](auto x, auto y) { return x >= y; });
      case BinOp::kAnd:
      case BinOp::kOr:
        break;  // handled above
    }
    return Error{Errc::kInternal, "unknown binary op"};
  }

  Result<Value> EvalCall(const Expr& e) {
    std::vector<Value> args;
    args.reserve(e.args.size());
    for (const ExprPtr& arg : e.args) {
      Result<Value> v = Eval(*arg);
      if (!v.ok()) return v;
      args.push_back(std::move(v).value());
    }

    // print is interpreter-internal so output lands in ExecutionResult.
    if (e.text == "print") {
      std::string line;
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) line += "\t";
        line += args[i].ToDisplayString();
      }
      result_.output += line;
      result_.output += '\n';
      return Value();
    }

    // Script-defined functions take precedence over nothing — host
    // functions cannot be shadowed (enforced at definition time).
    if (auto it = functions_.find(e.text); it != functions_.end()) {
      const Stmt& fn = *it->second;
      if (args.size() != fn.params.size())
        return RuntimeError(e.line, "'" + e.text + "' expects " +
                                        std::to_string(fn.params.size()) +
                                        " args, got " +
                                        std::to_string(args.size()));
      if (++call_depth_ > opts_.max_call_depth) {
        --call_depth_;
        return RuntimeError(e.line, "call depth limit exceeded");
      }
      // Function scope: globals visible, caller locals are NOT (preserve
      // the scope count and restore after the call).
      std::vector<Scope> saved(std::make_move_iterator(scopes_.begin() + 1),
                               std::make_move_iterator(scopes_.end()));
      scopes_.resize(1);
      scopes_.emplace_back();
      for (std::size_t i = 0; i < args.size(); ++i)
        scopes_.back().vars[fn.params[i]] = std::move(args[i]);

      Flow flow = Flow::kNormal;
      Value ret;
      Status s = RunBlock(fn.body, flow, ret);

      scopes_.resize(1);
      for (Scope& sc : saved) scopes_.push_back(std::move(sc));
      --call_depth_;
      if (!s.ok()) return s.error();
      return ret;
    }

    // Host whitelist: only registered functions are reachable.
    if (const HostFn* fn = host_.Find(e.text)) {
      Result<Value> r = (*fn)(args);
      if (!r.ok()) {
        Error err = r.error();
        err.message = "in " + e.text + "(): " + err.message;
        return err;
      }
      return r;
    }
    return Error{Errc::kPermissionDenied,
                 "line " + std::to_string(e.line) + ": function '" + e.text +
                     "' is not in the allowed function whitelist",
                 e.line};
  }

  const HostRegistry& host_;
  const InterpreterOptions& opts_;
  std::vector<Scope> scopes_;
  std::map<std::string, const Stmt*> functions_;
  ExecutionResult result_;
  std::uint64_t steps_ = 0;
  int call_depth_ = 0;
};

Interpreter::Interpreter(const HostRegistry& host, InterpreterOptions opts)
    : host_(host), opts_(opts) {}

Result<ExecutionResult> Interpreter::Run(std::string_view source) {
  Result<Program> program = Parse(source);
  if (!program.ok()) return program.error();
  return Execute(program.value());
}

Result<ExecutionResult> Interpreter::Execute(const Program& program) {
  if (opts_.use_ir) {
    const ir::Module mod = ir::Lower(program);
    return ir::Execute(mod, host_, opts_);
  }
  Impl impl(host_, opts_);
  return impl.Execute(program);
}

}  // namespace sor::script

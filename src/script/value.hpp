// SenseScript runtime values.
//
// nil / boolean / number / string / list. Lists have shared (reference)
// semantics like Lua tables: assigning a list to another variable aliases
// it, which the acquisition scripts rely on when accumulating readings.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace sor::script {

class Value;
using List = std::vector<Value>;
using ListPtr = std::shared_ptr<List>;

class Value {
 public:
  Value() = default;  // nil
  Value(bool b) : kind_(Kind::kBool), boolean_(b) {}
  Value(double n) : kind_(Kind::kNumber), number_(n) {}
  Value(int n) : kind_(Kind::kNumber), number_(n) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(ListPtr l) : kind_(Kind::kList), list_(std::move(l)) {}

  enum class Kind { kNil, kBool, kNumber, kString, kList };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_nil() const { return kind_ == Kind::kNil; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_list() const { return kind_ == Kind::kList; }

  [[nodiscard]] bool as_bool() const { return boolean_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const ListPtr& as_list() const { return list_; }

  // Lua truthiness: only nil and false are falsy.
  [[nodiscard]] bool truthy() const {
    if (kind_ == Kind::kNil) return false;
    if (kind_ == Kind::kBool) return boolean_;
    return true;
  }

  // Structural equality (lists compare by contents, unlike Lua, which is
  // more useful for assertions in task scripts).
  [[nodiscard]] bool Equals(const Value& o) const;

  [[nodiscard]] std::string ToDisplayString() const;
  [[nodiscard]] const char* TypeName() const;

  [[nodiscard]] static Value MakeList(List elements = {}) {
    return Value(std::make_shared<List>(std::move(elements)));
  }

 private:
  Kind kind_ = Kind::kNil;
  bool boolean_ = false;
  double number_ = 0.0;
  std::string string_;
  ListPtr list_;
};

}  // namespace sor::script

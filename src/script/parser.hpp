// SenseScript recursive-descent parser: tokens → AST.
#pragma once

#include <string_view>

#include "common/result.hpp"
#include "script/ast.hpp"

namespace sor::script {

// Convenience: lex + parse. Errors carry line numbers.
[[nodiscard]] Result<Program> Parse(std::string_view source);

}  // namespace sor::script

// SenseScript interpreter.
//
// §II-A: "The script interpreter tells the task instance which Java
// function to call to obtain data from sensors ... security can be enforced
// here by only allowing a white list of unharmful functions to be called."
// Here the host functions are C++ callbacks registered in a HostRegistry —
// the registry IS the whitelist: a script calling anything unregistered
// fails with kPermissionDenied (exercised by the failure-injection tests).
//
// Scripts also run under an instruction budget so a buggy or malicious
// task description distributed by a server cannot spin a phone forever.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "script/ast.hpp"
#include "script/value.hpp"

namespace sor::script {

// A host (native) function callable from scripts.
using HostFn = std::function<Result<Value>(std::span<const Value>)>;

class HostRegistry {
 public:
  // Register a callable under `name`. Re-registration replaces (used by
  // tests to stub sensors).
  void Register(const std::string& name, HostFn fn);

  [[nodiscard]] const HostFn* Find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> Names() const;

 private:
  std::map<std::string, HostFn> fns_;
};

struct InterpreterOptions {
  // Maximum number of AST-node evaluations before the script is killed.
  std::uint64_t max_steps = 2'000'000;
  // Maximum call depth (scripts can define and call functions).
  int max_call_depth = 64;
  // Execute through the basic-block IR (script/ir/) instead of the AST
  // walker. Observable behaviour is bit-identical (differential-tested in
  // test_ir); only ExecutionResult::steps counts IR instructions instead
  // of AST evaluations. The analysis layer can additionally run
  // OptimizeModule over a lowered module before ir::Execute.
  bool use_ir = false;
};

struct ExecutionResult {
  Value return_value;        // value of a top-level `return`, else nil
  std::uint64_t steps = 0;   // AST evaluations consumed
  std::string output;        // everything print() emitted
};

class Interpreter {
 public:
  explicit Interpreter(const HostRegistry& host,
                       InterpreterOptions opts = {});

  // Parse + execute in one go.
  [[nodiscard]] Result<ExecutionResult> Run(std::string_view source);

  // Execute an already-parsed program (reusable across phones).
  [[nodiscard]] Result<ExecutionResult> Execute(const Program& program);

 private:
  class Impl;
  const HostRegistry& host_;
  InterpreterOptions opts_;
};

// Installs the pure builtin library (print, len, push, abs, floor, min,
// max, tostring, tonumber, mean, stddev) into a registry. `print` appends
// to ExecutionResult::output via an interpreter-internal hook, so it is
// registered by the interpreter itself; this installs everything else.
void InstallStdlib(HostRegistry& registry);

}  // namespace sor::script

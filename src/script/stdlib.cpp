// SenseScript builtin library.
//
// Pure helpers available to every sensing script: list manipulation,
// numeric utilities, and the statistics the paper's data-processing
// pipeline expects scripts to be able to compute on-device (e.g. averaging
// multiple readings taken within one Δt window before upload).
#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "script/interpreter.hpp"

namespace sor::script {

namespace {

Error WrongArgs(const std::string& what) {
  return Error{Errc::kScriptError, what};
}

Result<double> NumberArg(std::span<const Value> args, std::size_t i,
                         const char* fn) {
  if (i >= args.size() || !args[i].is_number())
    return WrongArgs(std::string(fn) + ": argument " + std::to_string(i + 1) +
                     " must be a number");
  return args[i].as_number();
}

Result<ListPtr> ListArg(std::span<const Value> args, std::size_t i,
                        const char* fn) {
  if (i >= args.size() || !args[i].is_list())
    return WrongArgs(std::string(fn) + ": argument " + std::to_string(i + 1) +
                     " must be a list");
  return args[i].as_list();
}

std::vector<double> NumericElements(const List& list) {
  std::vector<double> xs;
  xs.reserve(list.size());
  for (const Value& v : list) {
    if (v.is_number()) xs.push_back(v.as_number());
  }
  return xs;
}

}  // namespace

void InstallStdlib(HostRegistry& reg) {
  reg.Register("len", [](std::span<const Value> args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("len: expects 1 argument");
    if (args[0].is_list())
      return Value(static_cast<double>(args[0].as_list()->size()));
    if (args[0].is_string())
      return Value(static_cast<double>(args[0].as_string().size()));
    return WrongArgs("len: expects a list or string");
  });

  reg.Register("push", [](std::span<const Value> args) -> Result<Value> {
    if (args.size() != 2) return WrongArgs("push: expects (list, value)");
    Result<ListPtr> list = ListArg(args, 0, "push");
    if (!list.ok()) return list.error();
    list.value()->push_back(args[1]);
    return Value(static_cast<double>(list.value()->size()));
  });

  reg.Register("abs", [](std::span<const Value> args) -> Result<Value> {
    Result<double> x = NumberArg(args, 0, "abs");
    if (!x.ok()) return x.error();
    return Value(std::fabs(x.value()));
  });

  reg.Register("floor", [](std::span<const Value> args) -> Result<Value> {
    Result<double> x = NumberArg(args, 0, "floor");
    if (!x.ok()) return x.error();
    return Value(std::floor(x.value()));
  });

  reg.Register("ceil", [](std::span<const Value> args) -> Result<Value> {
    Result<double> x = NumberArg(args, 0, "ceil");
    if (!x.ok()) return x.error();
    return Value(std::ceil(x.value()));
  });

  reg.Register("sqrt", [](std::span<const Value> args) -> Result<Value> {
    Result<double> x = NumberArg(args, 0, "sqrt");
    if (!x.ok()) return x.error();
    if (x.value() < 0) return WrongArgs("sqrt: negative argument");
    return Value(std::sqrt(x.value()));
  });

  reg.Register("min", [](std::span<const Value> args) -> Result<Value> {
    if (args.empty()) return WrongArgs("min: expects at least 1 argument");
    double best = 0.0;
    bool first = true;
    for (std::size_t i = 0; i < args.size(); ++i) {
      Result<double> x = NumberArg(args, i, "min");
      if (!x.ok()) return x.error();
      if (first || x.value() < best) best = x.value();
      first = false;
    }
    return Value(best);
  });

  reg.Register("max", [](std::span<const Value> args) -> Result<Value> {
    if (args.empty()) return WrongArgs("max: expects at least 1 argument");
    double best = 0.0;
    bool first = true;
    for (std::size_t i = 0; i < args.size(); ++i) {
      Result<double> x = NumberArg(args, i, "max");
      if (!x.ok()) return x.error();
      if (first || x.value() > best) best = x.value();
      first = false;
    }
    return Value(best);
  });

  reg.Register("tostring", [](std::span<const Value> args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("tostring: expects 1 argument");
    return Value(args[0].ToDisplayString());
  });

  reg.Register("tonumber", [](std::span<const Value> args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("tonumber: expects 1 argument");
    if (args[0].is_number()) return args[0];
    if (args[0].is_string()) {
      char* end = nullptr;
      const std::string& s = args[0].as_string();
      const double v = std::strtod(s.c_str(), &end);
      if (end == s.c_str() + s.size() && !s.empty()) return Value(v);
    }
    return Value();  // nil, like Lua
  });

  // On-device statistics over numeric lists (raw readings within Δt).
  reg.Register("mean", [](std::span<const Value> args) -> Result<Value> {
    Result<ListPtr> list = ListArg(args, 0, "mean");
    if (!list.ok()) return list.error();
    return Value(Mean(NumericElements(*list.value())));
  });

  reg.Register("stddev", [](std::span<const Value> args) -> Result<Value> {
    Result<ListPtr> list = ListArg(args, 0, "stddev");
    if (!list.ok()) return list.error();
    return Value(StdDev(NumericElements(*list.value())));
  });

  reg.Register("variance", [](std::span<const Value> args) -> Result<Value> {
    Result<ListPtr> list = ListArg(args, 0, "variance");
    if (!list.ok()) return list.error();
    return Value(Variance(NumericElements(*list.value())));
  });
}

}  // namespace sor::script

#include "script/ir/ir.hpp"

#include <algorithm>

#include "script/ast.hpp"

namespace sor::script::ir {

const char* to_string(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kMove: return "move";
    case Op::kCheckDef: return "checkdef";
    case Op::kClearSlots: return "clearslots";
    case Op::kLoadGlobal: return "loadglobal";
    case Op::kStoreGlobal: return "storeglobal";
    case Op::kUnOp: return "unop";
    case Op::kBinOp: return "binop";
    case Op::kCheckList: return "checklist";
    case Op::kIndexGet: return "indexget";
    case Op::kIndexSet: return "indexset";
    case Op::kListNew: return "listnew";
    case Op::kCall: return "call";
    case Op::kDefineFn: return "definefn";
    case Op::kForCheck: return "forcheck";
    case Op::kForLoop: return "forloop";
    case Op::kForStep: return "forstep";
    case Op::kJump: return "jump";
    case Op::kBranch: return "branch";
    case Op::kReturn: return "return";
  }
  return "?";
}

namespace {

const char* BinOpName(std::uint8_t sub) {
  switch (static_cast<BinOp>(sub)) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kConcat: return "..";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "~=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
  }
  return "?";
}

const char* UnOpName(std::uint8_t sub) {
  switch (static_cast<UnOp>(sub)) {
    case UnOp::kNeg: return "-";
    case UnOp::kNot: return "not";
    case UnOp::kLen: return "#";
  }
  return "?";
}

std::string RegName(Reg r) {
  if (r == kNoReg) return "_";
  return "r" + std::to_string(r);
}

}  // namespace

void RebuildEdges(Function& fn) {
  for (BasicBlock& b : fn.blocks) {
    b.succs.clear();
    b.preds.clear();
  }
  for (std::size_t i = 0; i < fn.blocks.size(); ++i) {
    BasicBlock& b = fn.blocks[i];
    if (b.insts.empty()) continue;
    const Inst& last = b.insts.back();
    switch (last.op) {
      case Op::kJump:
        b.succs.push_back(last.then_block);
        break;
      case Op::kBranch:
      case Op::kForLoop:
        b.succs.push_back(last.then_block);
        if (last.else_block != last.then_block)
          b.succs.push_back(last.else_block);
        break;
      case Op::kReturn:
        break;
      default:
        // Non-terminated blocks only exist transiently inside passes.
        break;
    }
  }
  for (std::size_t i = 0; i < fn.blocks.size(); ++i) {
    for (const int s : fn.blocks[i].succs) {
      if (s >= 0 && static_cast<std::size_t>(s) < fn.blocks.size())
        fn.blocks[static_cast<std::size_t>(s)].preds.push_back(
            static_cast<int>(i));
    }
  }
}

std::string Dump(const Module& m) {
  std::string out;
  auto name_of = [&m](std::uint32_t idx) -> std::string {
    return idx < m.names.size() ? m.names[idx] : "?";
  };
  for (std::size_t f = 0; f < m.functions.size(); ++f) {
    const Function& fn = m.functions[f];
    out += "function ";
    out += (f == 0 ? "<main>" : fn.name);
    out += " (params=" + std::to_string(fn.num_params) +
           " named=" + std::to_string(fn.num_named) +
           " regs=" + std::to_string(fn.num_regs) + ")\n";
    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      const BasicBlock& b = fn.blocks[bi];
      out += "  b" + std::to_string(bi) + ":";
      if (!b.preds.empty()) {
        out += "  ; preds";
        for (const int p : b.preds) out += " b" + std::to_string(p);
      }
      out += "\n";
      for (const Inst& inst : b.insts) {
        out += "    ";
        switch (inst.op) {
          case Op::kConst: {
            const Value& cv = m.consts[inst.imm];
            out += RegName(inst.dst) + " = const ";
            if (cv.is_string()) {
              out += "\"" + cv.as_string() + "\"";
            } else {
              out += cv.ToDisplayString();
            }
            break;
          }
          case Op::kMove:
            out += RegName(inst.dst) + " = " + RegName(inst.a);
            if ((inst.sub & kStoreUser) != 0)
              out += "  ; store '" + name_of(inst.imm) + "'";
            break;
          case Op::kCheckDef:
            out += "checkdef " + RegName(inst.a) + " '" + name_of(inst.imm) +
                   "'";
            break;
          case Op::kClearSlots:
            out += "clearslots [" + std::to_string(inst.a) + ", " +
                   std::to_string(inst.a + inst.b) + ")";
            break;
          case Op::kLoadGlobal:
            out += RegName(inst.dst) + " = global '" +
                   name_of(m.global_names[inst.a]) + "'";
            break;
          case Op::kStoreGlobal:
            out += "global '" + name_of(m.global_names[inst.a]) +
                   "' = " + RegName(inst.b);
            break;
          case Op::kUnOp:
            out += RegName(inst.dst) + " = " + UnOpName(inst.sub) + " " +
                   RegName(inst.a);
            break;
          case Op::kBinOp:
            out += RegName(inst.dst) + " = " + RegName(inst.a) + " " +
                   BinOpName(inst.sub) + " " + RegName(inst.b);
            break;
          case Op::kCheckList:
            out += "checklist " + RegName(inst.a);
            break;
          case Op::kIndexGet:
            out += RegName(inst.dst) + " = " + RegName(inst.a) + "[" +
                   RegName(inst.b) + "]";
            break;
          case Op::kIndexSet:
            out += RegName(inst.a) + "[" + RegName(inst.b) +
                   "] = " + RegName(inst.c);
            break;
          case Op::kListNew:
            out += RegName(inst.dst) + " = list(" + RegName(inst.a) + " x" +
                   std::to_string(inst.b) + ")";
            break;
          case Op::kCall:
            out += RegName(inst.dst) + " = " + name_of(inst.imm) + "(" +
                   RegName(inst.a) + " x" + std::to_string(inst.b) + ")";
            break;
          case Op::kDefineFn:
            out += "definefn '" + name_of(inst.a) + "' -> f" +
                   std::to_string(inst.b);
            break;
          case Op::kForCheck:
            out += "forcheck " + RegName(inst.a) + ", " + RegName(inst.b) +
                   ", " + RegName(inst.c);
            break;
          case Op::kForLoop:
            out += "forloop " + RegName(inst.a) + " to " + RegName(inst.b) +
                   " step " + RegName(inst.c) + " -> b" +
                   std::to_string(inst.then_block) + " else b" +
                   std::to_string(inst.else_block);
            break;
          case Op::kForStep:
            out += "forstep " + RegName(inst.a) + " += " + RegName(inst.c);
            break;
          case Op::kJump:
            out += "jump b" + std::to_string(inst.then_block);
            break;
          case Op::kBranch:
            out += "branch " + RegName(inst.a) + " -> b" +
                   std::to_string(inst.then_block) + " else b" +
                   std::to_string(inst.else_block);
            break;
          case Op::kReturn:
            out += "return " + RegName(inst.a);
            break;
        }
        out += "  ; line " + std::to_string(inst.line) + "\n";
      }
    }
  }
  return out;
}

}  // namespace sor::script::ir

// AST → IR lowering.
#pragma once

#include "script/ast.hpp"
#include "script/ir/ir.hpp"

namespace sor::script::ir {

// Lower a parsed program to a CFG module. Never fails on a parseable
// program: scripts with scope/type errors lower to IR whose execution
// raises the same runtime errors the AST interpreter would.
[[nodiscard]] Module Lower(const Program& program);

}  // namespace sor::script::ir

// IR executor: runs a lowered (optionally optimized) module with the same
// observable behaviour as the AST interpreter — return value, print output,
// and error text are bit-identical; only ExecutionResult::steps differs
// (IR instructions retired instead of AST evaluations).
#pragma once

#include "common/result.hpp"
#include "script/interpreter.hpp"
#include "script/ir/ir.hpp"

namespace sor::script::ir {

[[nodiscard]] Result<ExecutionResult> Execute(const Module& m,
                                              const HostRegistry& host,
                                              const InterpreterOptions& opts);

}  // namespace sor::script::ir

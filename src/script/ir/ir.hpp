// SenseScript dataflow IR.
//
// A parsed Program lowers (src/script/ir/lower.cpp) into one ir::Function
// per script function plus a main function, each a control-flow graph of
// basic blocks over a flat frame of value slots. Named variables are
// resolved to frame slots at lowering time — the IR has no name lookups on
// the hot path — and every instruction carries the source line of the AST
// node it came from so runtime errors and analysis diagnostics stay
// line-addressed.
//
// The IR serves two consumers:
//   * the analysis passes in src/script/analysis/ (worklist dataflow over
//     the CFG: definite assignment, constant propagation, liveness,
//     intervals, sensor taint), which annotate and optimize it, and
//   * the IR executor (src/script/ir/exec.cpp), an interpreter over the
//     instruction stream that reproduces the AST interpreter's observable
//     behaviour — values, print output, and error messages — bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "script/value.hpp"

namespace sor::script::ir {

// Frame-slot index. Slots [0, num_named) hold named locals/params (one per
// lexically distinct declaration); the rest are expression temporaries.
using Reg = std::uint32_t;
inline constexpr Reg kNoReg = 0xffffffffu;

enum class Op : std::uint8_t {
  kConst,        // dst = consts[imm]
  kMove,         // dst = reg[a]
  kCheckDef,     // error "undefined variable" unless reg[a] was assigned
  kClearSlots,   // mark slots [a, a+b) unassigned (fresh block scope)
  kLoadGlobal,   // dst = globals[a]; error if unassigned
  kStoreGlobal,  // globals[a] = reg[b]
  kUnOp,         // dst = un_op reg[a]
  kBinOp,        // dst = reg[a] bin_op reg[b]
  kCheckList,    // error "cannot index a <type>" unless reg[a] is a list
  kIndexGet,     // dst = reg[a][reg[b]]        (1-based, bounds-checked)
  kIndexSet,     // reg[a][reg[b]] = reg[c]     (index size+1 appends)
  kListNew,      // dst = {reg[a], ..., reg[a+b-1]}
  kCall,         // dst = name(reg[a]..reg[a+b-1]); print/script/host order
  kDefineFn,     // bind function name_idx a to ir function index b
  kForCheck,     // validate for-loop start/stop/step regs (a, b, c)
  kForLoop,      // if (reg[c]>0 ? reg[a]<=reg[b] : reg[a]>=reg[b]) goto then
  kForStep,      // reg[a] = reg[a] + reg[c]  (numeric, no type checks)
  kJump,         // goto then_block
  kBranch,       // if truthy(reg[a]) goto then_block else else_block
  kReturn,       // return reg[a] (kNoReg = nil) from the current frame
};

[[nodiscard]] const char* to_string(Op op);

// `sub` for kMove / kStoreGlobal marks stores that implement a source-level
// assignment (for the dead-store diagnostic); for kUnOp / kBinOp it holds
// the operator enum, and for kBranch it is 1 when the condition came from a
// source `if`/`while` (0 for compiler-introduced and/or branches).
inline constexpr std::uint8_t kStoreUser = 1;  // source assignment
inline constexpr std::uint8_t kStorePure = 2;  // RHS had no calls
inline constexpr std::uint8_t kStoreDecl = 4;  // came from a `local`

struct Inst {
  Op op;
  std::uint8_t sub = 0;   // BinOp / UnOp enum value for kBinOp / kUnOp
  std::int32_t line = 0;  // source line of the originating AST node
  Reg dst = kNoReg;
  Reg a = kNoReg;
  Reg b = kNoReg;
  Reg c = kNoReg;
  std::uint32_t imm = 0;       // const index / name index / arg count
  std::int32_t then_block = -1;
  std::int32_t else_block = -1;
};

struct BasicBlock {
  std::vector<Inst> insts;
  // Successor block ids, derived from the terminator (empty for return
  // blocks). Kept alongside for the dataflow engine's worklist.
  std::vector<int> succs;
  std::vector<int> preds;
  // Control context: the (block, cond reg) pairs of every structured
  // branch this block is control-dependent on, innermost last. Recorded at
  // lowering (the lowerer knows the structure) and consumed by the taint
  // pass for implicit-flow tracking.
  struct CtrlDep {
    int block;
    Reg cond;
  };
  std::vector<CtrlDep> ctrl_deps;
};

// Loop metadata recorded at lowering so interval analysis can derive trip
// bounds without re-discovering loop structure from the CFG.
struct LoopInfo {
  enum class Kind : std::uint8_t { kWhile, kNumericFor };
  Kind kind = Kind::kWhile;
  int line = 0;           // loop statement line
  int prehead_block = -1;  // block executed once before the first test
  int head_block = -1;     // condition / ForLoop test block
  int body_block = -1;     // first body block
  int exit_block = -1;     // block control reaches when the loop ends
  // Numeric for: hidden counter and bound registers (evaluated pre-loop,
  // loop-invariant by construction).
  Reg counter = kNoReg;
  Reg stop = kNoReg;
  Reg step = kNoReg;
  // While: the head's condition register, when the condition is a single
  // comparison `var <op> limit` — var/limit regs for induction detection.
  Reg while_cond = kNoReg;
};

struct Function {
  std::string name;           // "" for main
  std::uint32_t num_params = 0;
  std::uint32_t num_named = 0;  // named slots (params first)
  std::uint32_t num_regs = 0;   // total frame size incl. temporaries
  std::vector<BasicBlock> blocks;  // block 0 is the entry
  std::vector<LoopInfo> loops;
  int def_line = 0;  // line of the `function` statement (0 for main)
};

struct Module {
  std::vector<Function> functions;  // [0] = main
  std::vector<Value> consts;
  // Interned names: global variables, called functions, defined functions.
  std::vector<std::string> names;
  // Global slot name indices: globals[i] is named names[global_names[i]].
  std::vector<std::uint32_t> global_names;
};

// Recompute succs/preds from terminators (used after passes edit the CFG).
void RebuildEdges(Function& fn);

// Human-readable CFG dump (sor lint --ir-dump).
[[nodiscard]] std::string Dump(const Module& m);

}  // namespace sor::script::ir

#include "script/ir/exec.hpp"

#include <cmath>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace sor::script::ir {
namespace {

Error RuntimeError(int line, const std::string& msg) {
  return Error{Errc::kScriptError,
               "runtime error at line " + std::to_string(line) + ": " + msg,
               line};
}

class Executor {
 public:
  Executor(const Module& m, const HostRegistry& host,
           const InterpreterOptions& opts)
      : m_(m), host_(host), opts_(opts) {
    globals_.resize(m_.global_names.size());
    gdef_.assign(m_.global_names.size(), 0);
    bindings_.assign(m_.names.size(), -1);
    host_fns_.resize(m_.names.size(), nullptr);
    for (std::size_t i = 0; i < m_.names.size(); ++i) {
      if (m_.names[i] == "print") print_name_ = static_cast<std::uint32_t>(i);
      host_fns_[i] = host_.Find(m_.names[i]);
    }
  }

  Result<ExecutionResult> Run() {
    if (m_.functions.empty()) return result_;
    Result<Value> ret = RunFunction(0, {});
    if (!ret.ok()) return ret.error();
    result_.return_value = std::move(ret).value();
    result_.steps = steps_;
    return std::move(result_);
  }

 private:
  Result<Value> RunFunction(std::uint32_t fn_idx, std::span<const Value> args) {
    const Function& fn = m_.functions[fn_idx];
    std::vector<Value> regs(fn.num_regs);
    std::vector<std::uint8_t> defined(fn.num_named, 0);
    for (std::size_t i = 0; i < args.size() && i < fn.num_named; ++i) {
      regs[i] = args[i];
      defined[i] = 1;
    }

    int block = 0;
    while (true) {
      const BasicBlock& b = fn.blocks[static_cast<std::size_t>(block)];
      for (std::size_t ip = 0; ip < b.insts.size(); ++ip) {
        const Inst& inst = b.insts[ip];
        if (++steps_ > opts_.max_steps) {
          return Error{Errc::kScriptError,
                       "instruction budget exhausted at line " +
                           std::to_string(inst.line)};
        }
        switch (inst.op) {
          case Op::kConst:
            regs[inst.dst] = m_.consts[inst.imm];
            if (inst.dst < fn.num_named) defined[inst.dst] = 1;
            break;
          case Op::kMove:
            regs[inst.dst] = regs[inst.a];
            if (inst.dst < fn.num_named) defined[inst.dst] = 1;
            break;
          case Op::kCheckDef:
            if (!defined[inst.a]) {
              return RuntimeError(
                  inst.line,
                  "undefined variable '" + m_.names[inst.imm] + "'");
            }
            break;
          case Op::kClearSlots:
            for (Reg r = inst.a; r < inst.a + inst.b; ++r) {
              defined[r] = 0;
              regs[r] = Value();
            }
            break;
          case Op::kLoadGlobal:
            if (!gdef_[inst.a]) {
              return RuntimeError(
                  inst.line, "undefined variable '" +
                                 m_.names[m_.global_names[inst.a]] + "'");
            }
            regs[inst.dst] = globals_[inst.a];
            break;
          case Op::kStoreGlobal:
            globals_[inst.a] = regs[inst.b];
            gdef_[inst.a] = 1;
            break;
          case Op::kUnOp: {
            const Value& v = regs[inst.a];
            switch (static_cast<UnOp>(inst.sub)) {
              case UnOp::kNeg:
                if (!v.is_number()) {
                  return RuntimeError(
                      inst.line,
                      "cannot negate a " + std::string(v.TypeName()));
                }
                regs[inst.dst] = Value(-v.as_number());
                break;
              case UnOp::kNot:
                regs[inst.dst] = Value(!v.truthy());
                break;
              case UnOp::kLen:
                if (v.is_list()) {
                  regs[inst.dst] =
                      Value(static_cast<double>(v.as_list()->size()));
                } else if (v.is_string()) {
                  regs[inst.dst] =
                      Value(static_cast<double>(v.as_string().size()));
                } else {
                  return RuntimeError(inst.line,
                                      "cannot take length of a " +
                                          std::string(v.TypeName()));
                }
                break;
            }
            break;
          }
          case Op::kBinOp: {
            Result<Value> r = EvalBinOp(inst, regs);
            if (!r.ok()) return r;
            regs[inst.dst] = std::move(r).value();
            break;
          }
          case Op::kCheckList:
            if (!regs[inst.a].is_list()) {
              return RuntimeError(inst.line,
                                  "cannot index a " +
                                      std::string(regs[inst.a].TypeName()));
            }
            break;
          case Op::kIndexGet: {
            const Value& idx = regs[inst.b];
            if (!idx.is_number())
              return RuntimeError(inst.line, "list index must be a number");
            const List& list = *regs[inst.a].as_list();
            const auto i = static_cast<long long>(idx.as_number());
            if (i < 1 || i > static_cast<long long>(list.size())) {
              return RuntimeError(inst.line,
                                  "list index " + std::to_string(i) +
                                      " out of range (size " +
                                      std::to_string(list.size()) + ")");
            }
            regs[inst.dst] = list[static_cast<std::size_t>(i - 1)];
            break;
          }
          case Op::kIndexSet: {
            const Value& idx = regs[inst.b];
            if (!idx.is_number())
              return RuntimeError(inst.line, "list index must be a number");
            List& list = *regs[inst.a].as_list();
            const auto i = static_cast<long long>(idx.as_number());
            if (i < 1 || i > static_cast<long long>(list.size()) + 1) {
              return RuntimeError(inst.line,
                                  "list index " + std::to_string(i) +
                                      " out of range (size " +
                                      std::to_string(list.size()) + ")");
            }
            if (i == static_cast<long long>(list.size()) + 1) {
              list.push_back(regs[inst.c]);  // Lua-style append
            } else {
              list[static_cast<std::size_t>(i - 1)] = regs[inst.c];
            }
            break;
          }
          case Op::kListNew: {
            List elems;
            elems.reserve(inst.b);
            for (std::uint32_t i = 0; i < inst.b; ++i)
              elems.push_back(regs[inst.a + i]);
            regs[inst.dst] = Value::MakeList(std::move(elems));
            break;
          }
          case Op::kCall: {
            Result<Value> r = DoCall(inst, regs);
            if (!r.ok()) return r;
            regs[inst.dst] = std::move(r).value();
            break;
          }
          case Op::kDefineFn: {
            const std::string& name = m_.names[inst.a];
            if (host_fns_[inst.a] != nullptr) {
              return Error{Errc::kScriptError,
                           "line " + std::to_string(inst.line) +
                               ": cannot shadow host function '" + name + "'"};
            }
            bindings_[inst.a] = static_cast<std::int32_t>(inst.b);
            break;
          }
          case Op::kForCheck: {
            const Value& start = regs[inst.a];
            const Value& stop = regs[inst.b];
            const Value& step = regs[inst.c];
            if ((inst.imm & 1u) != 0 && !step.is_number())
              return RuntimeError(inst.line, "for step must be a number");
            if (!start.is_number() || !stop.is_number())
              return RuntimeError(inst.line, "for bounds must be numbers");
            if (step.as_number() == 0.0)
              return RuntimeError(inst.line, "for step is zero");
            break;
          }
          case Op::kForLoop: {
            const double i = regs[inst.a].as_number();
            const double stop = regs[inst.b].as_number();
            const double step = regs[inst.c].as_number();
            block = (step > 0 ? i <= stop : i >= stop) ? inst.then_block
                                                       : inst.else_block;
            goto next_block;
          }
          case Op::kForStep:
            regs[inst.a] =
                Value(regs[inst.a].as_number() + regs[inst.c].as_number());
            break;
          case Op::kJump:
            block = inst.then_block;
            goto next_block;
          case Op::kBranch:
            block = regs[inst.a].truthy() ? inst.then_block : inst.else_block;
            goto next_block;
          case Op::kReturn:
            return inst.a == kNoReg ? Value() : regs[inst.a];
        }
      }
      // Blocks always end in a terminator; reaching here is a lowering bug.
      return Error{Errc::kInternal, "ir block fell through"};
    next_block:;
    }
  }

  Result<Value> EvalBinOp(const Inst& inst, std::vector<Value>& regs) {
    const Value& a = regs[inst.a];
    const Value& b = regs[inst.b];
    const int line = inst.line;
    auto arith = [&](auto f) -> Result<Value> {
      if (!a.is_number() || !b.is_number()) {
        return RuntimeError(line, std::string("arithmetic on ") + a.TypeName() +
                                      " and " + b.TypeName());
      }
      return Value(f(a.as_number(), b.as_number()));
    };
    auto compare = [&](auto f) -> Result<Value> {
      if (a.is_number() && b.is_number())
        return Value(f(a.as_number(), b.as_number()));
      if (a.is_string() && b.is_string())
        return Value(f(a.as_string().compare(b.as_string()), 0));
      return RuntimeError(line, std::string("cannot compare ") + a.TypeName() +
                                    " and " + b.TypeName());
    };
    switch (static_cast<BinOp>(inst.sub)) {
      case BinOp::kAdd: return arith([](double x, double y) { return x + y; });
      case BinOp::kSub: return arith([](double x, double y) { return x - y; });
      case BinOp::kMul: return arith([](double x, double y) { return x * y; });
      case BinOp::kDiv: return arith([](double x, double y) { return x / y; });
      case BinOp::kMod:
        return arith([](double x, double y) { return std::fmod(x, y); });
      case BinOp::kConcat:
        if (a.is_list() || b.is_list())
          return RuntimeError(line, "cannot concatenate lists");
        return Value(a.ToDisplayString() + b.ToDisplayString());
      case BinOp::kEq: return Value(a.Equals(b));
      case BinOp::kNe: return Value(!a.Equals(b));
      case BinOp::kLt: return compare([](auto x, auto y) { return x < y; });
      case BinOp::kLe: return compare([](auto x, auto y) { return x <= y; });
      case BinOp::kGt: return compare([](auto x, auto y) { return x > y; });
      case BinOp::kGe: return compare([](auto x, auto y) { return x >= y; });
      case BinOp::kAnd:
      case BinOp::kOr: break;  // lowered to branches, never reach the IR
    }
    return Error{Errc::kInternal, "unknown binary op"};
  }

  Result<Value> DoCall(const Inst& inst, std::vector<Value>& regs) {
    const std::span<const Value> args =
        inst.b == 0 ? std::span<const Value>{}
                    : std::span<const Value>{regs.data() + inst.a, inst.b};

    // print is executor-internal so output lands in ExecutionResult.
    if (inst.imm == print_name_) {
      std::string line;
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) line += "\t";
        line += args[i].ToDisplayString();
      }
      result_.output += line;
      result_.output += '\n';
      return Value();
    }

    const std::string& name = m_.names[inst.imm];
    if (const std::int32_t target = bindings_[inst.imm]; target >= 0) {
      const Function& fn = m_.functions[static_cast<std::size_t>(target)];
      if (args.size() != fn.num_params) {
        return RuntimeError(inst.line,
                            "'" + name + "' expects " +
                                std::to_string(fn.num_params) + " args, got " +
                                std::to_string(args.size()));
      }
      if (++call_depth_ > opts_.max_call_depth) {
        --call_depth_;
        return RuntimeError(inst.line, "call depth limit exceeded");
      }
      Result<Value> r = RunFunction(static_cast<std::uint32_t>(target), args);
      --call_depth_;
      return r;
    }

    if (const HostFn* fn = host_fns_[inst.imm]) {
      Result<Value> r = (*fn)(args);
      if (!r.ok()) {
        Error err = r.error();
        err.message = "in " + name + "(): " + err.message;
        return err;
      }
      return r;
    }
    return Error{Errc::kPermissionDenied,
                 "line " + std::to_string(inst.line) + ": function '" + name +
                     "' is not in the allowed function whitelist",
                 inst.line};
  }

  const Module& m_;
  const HostRegistry& host_;
  const InterpreterOptions& opts_;
  std::vector<Value> globals_;
  std::vector<std::uint8_t> gdef_;
  std::vector<std::int32_t> bindings_;   // name idx -> bound function idx
  std::vector<const HostFn*> host_fns_;  // name idx -> host fn (whitelist)
  std::uint32_t print_name_ = 0xffffffffu;
  ExecutionResult result_;
  std::uint64_t steps_ = 0;
  int call_depth_ = 0;
};

}  // namespace

Result<ExecutionResult> Execute(const Module& m, const HostRegistry& host,
                                const InterpreterOptions& opts) {
  Executor exec(m, host, opts);
  return exec.Run();
}

}  // namespace sor::script::ir

#include "script/ir/lower.hpp"

#include <cstring>
#include <map>
#include <utility>

namespace sor::script::ir {
namespace {

// Temporaries are allocated in a shadow index space during lowering (named
// slots and temps interleave in source order) and remapped to the top of the
// frame once the function's named-slot count is final.
constexpr Reg kTempBase = 1u << 20;

// The AST interpreter resolves names dynamically, but because SenseScript
// has no closures and function bodies only ever see [globals, own scope],
// in-order lexical resolution visits bindings in exactly the order the
// dynamic scope stack would: a name is a frame slot if a `local` (or param)
// for it has been walked in a still-open scope, and a global otherwise.
class Lowerer {
 public:
  Module Run(const Program& program) {
    m_.functions.emplace_back();  // reserve slot 0 for main
    FnCtx main;
    main.is_main = true;
    main.fn.name = "";
    fns_.push_back(&main);
    StartFunction(main);
    LowerBlockScope(program.statements, /*fresh_scope=*/false);
    Emit(Inst{.op = Op::kReturn, .line = 0});
    FinishFunction(main, /*slot=*/0);
    fns_.pop_back();
    return std::move(m_);
  }

 private:
  struct ScopeInfo {
    std::map<std::string, Reg> names;  // lexical binding -> named slot
    Reg base = 0;                      // first named slot of this scope
  };
  struct LoopCtx {
    int exit_block;
  };
  struct FnCtx {
    Function fn;
    std::vector<ScopeInfo> scopes;
    std::vector<LoopCtx> loop_stack;
    std::vector<BasicBlock::CtrlDep> ctrl;
    Reg named = 0;
    Reg temp = 0;       // next temp (shadow space)
    Reg max_temp = 0;   // high-water mark
    int cur = 0;        // current block id
    bool is_main = false;
  };

  FnCtx& ctx() { return *fns_.back(); }

  // --- module-level interning --------------------------------------------

  std::uint32_t NameIdx(const std::string& name) {
    auto it = name_idx_.find(name);
    if (it != name_idx_.end()) return it->second;
    const auto idx = static_cast<std::uint32_t>(m_.names.size());
    m_.names.push_back(name);
    name_idx_.emplace(name, idx);
    return idx;
  }

  std::uint32_t GlobalSlot(const std::string& name) {
    auto it = global_slot_.find(name);
    if (it != global_slot_.end()) return it->second;
    const auto idx = static_cast<std::uint32_t>(m_.global_names.size());
    m_.global_names.push_back(NameIdx(name));
    global_slot_.emplace(name, idx);
    return idx;
  }

  std::uint32_t ConstIdx(Value v) {
    std::string key;
    switch (v.kind()) {
      case Value::Kind::kNil: key = "n"; break;
      case Value::Kind::kBool: key = v.as_bool() ? "b1" : "b0"; break;
      case Value::Kind::kNumber: {
        // Key on the bit pattern so 0.0 and -0.0 stay distinct constants.
        const double d = v.as_number();
        char bits[sizeof(double)];
        std::memcpy(bits, &d, sizeof(double));
        key.assign(1, 'd');
        key.append(bits, sizeof(double));
        break;
      }
      case Value::Kind::kString: key = "s" + v.as_string(); break;
      case Value::Kind::kList: key = "?"; break;  // never interned
    }
    auto it = const_idx_.find(key);
    if (it != const_idx_.end()) return it->second;
    const auto idx = static_cast<std::uint32_t>(m_.consts.size());
    m_.consts.push_back(std::move(v));
    const_idx_.emplace(std::move(key), idx);
    return idx;
  }

  // --- block plumbing ----------------------------------------------------

  int NewBlock() {
    FnCtx& c = ctx();
    const int id = static_cast<int>(c.fn.blocks.size());
    c.fn.blocks.emplace_back();
    c.fn.blocks.back().ctrl_deps = c.ctrl;
    return id;
  }

  void SetBlock(int id) { ctx().cur = id; }

  Inst& Emit(Inst inst) {
    FnCtx& c = ctx();
    c.fn.blocks[static_cast<std::size_t>(c.cur)].insts.push_back(inst);
    return c.fn.blocks[static_cast<std::size_t>(c.cur)].insts.back();
  }

  Reg NewTemp() {
    FnCtx& c = ctx();
    const Reg t = kTempBase + c.temp++;
    if (c.temp > c.max_temp) c.max_temp = c.temp;
    return t;
  }

  static bool IsNamed(Reg r) { return r != kNoReg && r < kTempBase; }

  // Snapshot a register the current statement may later observe: named
  // slots are live storage, so their value must be captured at evaluation
  // time (the AST interpreter copies on Eval).
  Reg Snapshot(Reg r, int line) {
    if (!IsNamed(r)) return r;
    const Reg t = NewTemp();
    Emit(Inst{.op = Op::kMove, .line = line, .dst = t, .a = r});
    return t;
  }

  // --- name resolution ---------------------------------------------------

  // Returns the named slot for `name`, or kNoReg if it resolves to a global.
  Reg ResolveLocal(const std::string& name) {
    FnCtx& c = ctx();
    for (auto it = c.scopes.rbegin(); it != c.scopes.rend(); ++it) {
      if (auto v = it->names.find(name); v != it->names.end())
        return v->second;
    }
    return kNoReg;
  }

  Reg DeclareLocal(const std::string& name) {
    FnCtx& c = ctx();
    const Reg slot = c.named++;
    c.scopes.back().names[name] = slot;
    return slot;
  }

  // --- expressions -------------------------------------------------------

  Reg EvalExpr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kNumber: return EmitConst(Value(e.number), e.line);
      case Expr::Kind::kString: return EmitConst(Value(e.text), e.line);
      case Expr::Kind::kBool: return EmitConst(Value(e.boolean), e.line);
      case Expr::Kind::kNil: return EmitConst(Value(), e.line);
      case Expr::Kind::kName: return EvalName(e.text, e.line);
      case Expr::Kind::kUnary: {
        const Reg a = EvalExpr(*e.lhs);
        const Reg t = NewTemp();
        Emit(Inst{.op = Op::kUnOp,
                  .sub = static_cast<std::uint8_t>(e.un_op),
                  .line = e.line,
                  .dst = t,
                  .a = a});
        return t;
      }
      case Expr::Kind::kBinary:
        if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr)
          return EvalShortCircuit(e);
        return EvalBinary(e);
      case Expr::Kind::kCall: return EvalCall(e);
      case Expr::Kind::kIndex: {
        const Reg list = EvalExpr(*e.lhs);
        Emit(Inst{.op = Op::kCheckList, .line = e.line, .a = list});
        const Reg idx = EvalExpr(*e.rhs);
        const Reg t = NewTemp();
        Emit(Inst{.op = Op::kIndexGet,
                  .line = e.line,
                  .dst = t,
                  .a = list,
                  .b = idx});
        return t;
      }
      case Expr::Kind::kListLiteral: {
        const auto [base, count] = EvalArgList(e.args, e.line);
        const Reg t = NewTemp();
        Emit(Inst{.op = Op::kListNew,
                  .line = e.line,
                  .dst = t,
                  .a = base,
                  .b = count});
        return t;
      }
    }
    return kNoReg;  // unreachable for well-formed ASTs
  }

  Reg EmitConst(Value v, int line) {
    const Reg t = NewTemp();
    Emit(Inst{.op = Op::kConst,
              .line = line,
              .dst = t,
              .imm = ConstIdx(std::move(v))});
    return t;
  }

  Reg EvalName(const std::string& name, int line) {
    if (const Reg slot = ResolveLocal(name); slot != kNoReg) {
      Emit(Inst{.op = Op::kCheckDef,
                .line = line,
                .a = slot,
                .imm = NameIdx(name)});
      return slot;
    }
    const Reg t = NewTemp();
    Emit(Inst{.op = Op::kLoadGlobal,
              .line = line,
              .dst = t,
              .a = GlobalSlot(name)});
    return t;
  }

  Reg EvalBinary(const Expr& e) {
    const Reg a = Snapshot(EvalExpr(*e.lhs), e.line);
    const Reg b = EvalExpr(*e.rhs);
    const Reg t = NewTemp();
    Emit(Inst{.op = Op::kBinOp,
              .sub = static_cast<std::uint8_t>(e.bin_op),
              .line = e.line,
              .dst = t,
              .a = a,
              .b = b});
    return t;
  }

  // and/or lower to a branch: the result is one of the operands (Lua
  // semantics), carried in a dedicated temp so both paths write one reg.
  Reg EvalShortCircuit(const Expr& e) {
    const Reg lhs = EvalExpr(*e.lhs);
    const Reg t = NewTemp();
    Emit(Inst{.op = Op::kMove, .line = e.line, .dst = t, .a = lhs});
    Inst& br = Emit(
        Inst{.op = Op::kBranch, .sub = 0, .line = e.line, .a = t});
    const int branch_block = ctx().cur;

    ctx().ctrl.push_back({branch_block, t});
    const int rhs_block = NewBlock();
    SetBlock(rhs_block);
    const Reg rhs = EvalExpr(*e.rhs);
    Emit(Inst{.op = Op::kMove, .line = e.line, .dst = t, .a = rhs});
    Inst& rhs_jump = Emit(Inst{.op = Op::kJump, .line = e.line});
    const int rhs_end = ctx().cur;
    ctx().ctrl.pop_back();

    const int merge = NewBlock();
    ctx().fn.blocks[static_cast<std::size_t>(rhs_end)]
        .insts.back()
        .then_block = merge;
    (void)rhs_jump;
    // `and` evaluates the rhs when the lhs is truthy; `or` when falsy.
    Inst& branch =
        ctx().fn.blocks[static_cast<std::size_t>(branch_block)].insts.back();
    (void)br;
    if (e.bin_op == BinOp::kAnd) {
      branch.then_block = rhs_block;
      branch.else_block = merge;
    } else {
      branch.then_block = merge;
      branch.else_block = rhs_block;
    }
    SetBlock(merge);
    return t;
  }

  // Evaluate expressions left to right, snapshotting each value as the AST
  // interpreter does, then pack them into a contiguous temp range.
  std::pair<Reg, std::uint32_t> EvalArgList(const std::vector<ExprPtr>& args,
                                            int line) {
    std::vector<Reg> vals;
    vals.reserve(args.size());
    for (const ExprPtr& arg : args) vals.push_back(Snapshot(EvalExpr(*arg), line));
    // Already-contiguous temps (the common case) need no extra moves.
    bool contiguous = true;
    for (std::size_t i = 1; i < vals.size(); ++i) {
      if (vals[i] != vals[i - 1] + 1) contiguous = false;
    }
    if (!vals.empty() && contiguous)
      return {vals[0], static_cast<std::uint32_t>(vals.size())};
    const Reg base = ctx().temp + kTempBase;
    for (const Reg v : vals) {
      const Reg t = NewTemp();
      Emit(Inst{.op = Op::kMove, .line = line, .dst = t, .a = v});
    }
    return {vals.empty() ? kNoReg : base,
            static_cast<std::uint32_t>(vals.size())};
  }

  Reg EvalCall(const Expr& e) {
    const auto [base, count] = EvalArgList(e.args, e.line);
    const Reg t = NewTemp();
    Emit(Inst{.op = Op::kCall,
              .line = e.line,
              .dst = t,
              .a = base,
              .b = count,
              .imm = NameIdx(e.text)});
    had_call_ = true;
    return t;
  }

  // --- statements --------------------------------------------------------

  // Lowers a statement list inside a fresh block scope (if/while/for body).
  // Emits a kClearSlots covering every slot the scope (transitively)
  // declares so loop re-entry sees iteration-fresh locals, exactly like the
  // AST interpreter's per-iteration scope push.
  void LowerBlockScope(const std::vector<StmtPtr>& body, bool fresh_scope) {
    FnCtx& c = ctx();
    int clear_block = -1;
    std::size_t clear_idx = 0;
    const Reg base = c.named;
    if (fresh_scope) {
      clear_block = c.cur;
      clear_idx = c.fn.blocks[static_cast<std::size_t>(c.cur)].insts.size();
      Emit(Inst{.op = Op::kClearSlots, .line = 0, .a = base, .b = 0});
      c.scopes.push_back(ScopeInfo{{}, base});
    } else if (c.scopes.empty()) {
      // Main's outermost scope: `local` here lives in the interpreter's
      // global scope, so keep an empty sentinel that never binds slots.
      c.scopes.push_back(ScopeInfo{{}, base});
    }

    for (const StmtPtr& stmt : body) {
      const Reg temp_mark = c.temp;
      LowerStmt(*stmt);
      c.temp = temp_mark;
    }

    if (fresh_scope) {
      c.scopes.pop_back();
      Inst& clear = c.fn.blocks[static_cast<std::size_t>(clear_block)]
                        .insts[clear_idx];
      clear.b = c.named - base;
    }
  }

  bool AtMainTopLevel() const {
    const FnCtx& c = *fns_.back();
    return c.is_main && c.scopes.size() == 1;
  }

  void LowerStmt(const Stmt& st) {
    switch (st.kind) {
      case Stmt::Kind::kLocal: {
        had_call_ = false;
        const Reg v = EvalExpr(*st.expr);
        const std::uint8_t store =
            kStoreUser | kStoreDecl | (had_call_ ? 0 : kStorePure);
        if (AtMainTopLevel()) {
          // Top-level locals live in the interpreter's global scope.
          Emit(Inst{.op = Op::kStoreGlobal,
                    .sub = store,
                    .line = st.line,
                    .a = GlobalSlot(st.name),
                    .b = v});
        } else {
          const Reg slot = DeclareLocal(st.name);
          Emit(Inst{.op = Op::kMove,
                    .sub = store,
                    .line = st.line,
                    .dst = slot,
                    .a = v,
                    .imm = NameIdx(st.name)});
        }
        return;
      }
      case Stmt::Kind::kAssign: {
        had_call_ = false;
        const Reg v = EvalExpr(*st.expr);
        if (st.target_index) {
          // list[i] = v evaluates value, list, then index — and checks the
          // list between the last two (AST interpreter order).
          const Reg vv = Snapshot(v, st.line);
          const Reg list = EvalExpr(*st.target_index->lhs);
          Emit(Inst{.op = Op::kCheckList, .line = st.line, .a = list});
          const Reg idx = EvalExpr(*st.target_index->rhs);
          Emit(Inst{.op = Op::kIndexSet,
                    .line = st.line,
                    .a = list,
                    .b = idx,
                    .c = vv});
          return;
        }
        const std::uint8_t store =
            kStoreUser | (had_call_ ? 0 : kStorePure);
        if (const Reg slot = ResolveLocal(st.name); slot != kNoReg) {
          Emit(Inst{.op = Op::kMove,
                    .sub = store,
                    .line = st.line,
                    .dst = slot,
                    .a = v,
                    .imm = NameIdx(st.name)});
        } else {
          Emit(Inst{.op = Op::kStoreGlobal,
                    .sub = store,
                    .line = st.line,
                    .a = GlobalSlot(st.name),
                    .b = v});
        }
        return;
      }
      case Stmt::Kind::kExpr:
        EvalExpr(*st.expr);
        return;
      case Stmt::Kind::kIf: {
        const Reg cond = EvalExpr(*st.expr);
        Emit(Inst{.op = Op::kBranch, .sub = 1, .line = st.line, .a = cond});
        const int branch_block = ctx().cur;

        ctx().ctrl.push_back({branch_block, cond});
        const int then_block = NewBlock();
        SetBlock(then_block);
        LowerBlockScope(st.body, /*fresh_scope=*/true);
        Inst& then_jump = Emit(Inst{.op = Op::kJump, .line = st.line});
        (void)then_jump;
        const int then_end = ctx().cur;

        int else_block = -1;
        int else_end = -1;
        if (!st.else_body.empty()) {
          else_block = NewBlock();
          SetBlock(else_block);
          LowerBlockScope(st.else_body, /*fresh_scope=*/true);
          Emit(Inst{.op = Op::kJump, .line = st.line});
          else_end = ctx().cur;
        }
        ctx().ctrl.pop_back();

        const int merge = NewBlock();
        auto& blocks = ctx().fn.blocks;
        blocks[static_cast<std::size_t>(then_end)].insts.back().then_block =
            merge;
        if (else_block >= 0) {
          blocks[static_cast<std::size_t>(else_end)]
              .insts.back()
              .then_block = merge;
        }
        Inst& branch =
            blocks[static_cast<std::size_t>(branch_block)].insts.back();
        branch.then_block = then_block;
        branch.else_block = else_block >= 0 ? else_block : merge;
        SetBlock(merge);
        return;
      }
      case Stmt::Kind::kWhile: {
        const int prehead = ctx().cur;
        Inst& entry_jump = Emit(Inst{.op = Op::kJump, .line = st.line});
        (void)entry_jump;
        const int head = NewBlock();
        ctx().fn.blocks[static_cast<std::size_t>(prehead)]
            .insts.back()
            .then_block = head;
        SetBlock(head);
        const Reg cond = EvalExpr(*st.expr);
        Emit(Inst{.op = Op::kBranch, .sub = 1, .line = st.line, .a = cond});
        const int cond_end = ctx().cur;

        ctx().ctrl.push_back({cond_end, cond});
        const int body = NewBlock();
        const std::size_t loop_idx = ctx().fn.loops.size();
        ctx().fn.loops.push_back(LoopInfo{.kind = LoopInfo::Kind::kWhile,
                                          .line = st.line,
                                          .prehead_block = prehead,
                                          .head_block = head,
                                          .body_block = body,
                                          .while_cond = cond});
        ctx().loop_stack.push_back(LoopCtx{-1});
        const std::size_t loop_stack_idx = ctx().loop_stack.size() - 1;
        SetBlock(body);
        LowerBlockScope(st.body, /*fresh_scope=*/true);
        Emit(Inst{.op = Op::kJump, .line = st.line, .then_block = head});
        ctx().ctrl.pop_back();

        const int exit = NewBlock();
        ctx().fn.loops[loop_idx].exit_block = exit;
        // Patch break jumps recorded while lowering the body.
        PatchBreaks(loop_stack_idx, exit);
        ctx().loop_stack.pop_back();
        ctx().fn.blocks[static_cast<std::size_t>(cond_end)]
            .insts.back()
            .then_block = body;
        ctx().fn.blocks[static_cast<std::size_t>(cond_end)]
            .insts.back()
            .else_block = exit;
        SetBlock(exit);
        return;
      }
      case Stmt::Kind::kNumericFor: {
        // start / stop / step evaluate once, in that order, before any
        // checks; the hidden counter is distinct from the loop variable so
        // body writes to the variable cannot perturb iteration.
        const Reg start = Snapshot(EvalExpr(*st.for_start), st.line);
        const Reg stop = Snapshot(EvalExpr(*st.for_stop), st.line);
        Reg step = kNoReg;
        const bool explicit_step = st.for_step != nullptr;
        if (explicit_step) {
          step = Snapshot(EvalExpr(*st.for_step), st.line);
        } else {
          step = EmitConst(Value(1.0), st.line);
        }
        Emit(Inst{.op = Op::kForCheck,
                  .line = st.line,
                  .a = start,
                  .b = stop,
                  .c = step,
                  .imm = explicit_step ? 1u : 0u});
        const Reg counter = NewTemp();
        Emit(Inst{.op = Op::kMove, .line = st.line, .dst = counter, .a = start});
        const int prehead = ctx().cur;
        Emit(Inst{.op = Op::kJump, .line = st.line});

        const int head = NewBlock();
        ctx().fn.blocks[static_cast<std::size_t>(prehead)]
            .insts.back()
            .then_block = head;
        SetBlock(head);
        Emit(Inst{.op = Op::kForLoop,
                  .line = st.line,
                  .a = counter,
                  .b = stop,
                  .c = step});

        ctx().ctrl.push_back({head, counter});
        ctx().ctrl.push_back({head, stop});
        ctx().ctrl.push_back({head, step});
        const int body = NewBlock();
        const std::size_t loop_idx = ctx().fn.loops.size();
        ctx().fn.loops.push_back(LoopInfo{.kind = LoopInfo::Kind::kNumericFor,
                                          .line = st.line,
                                          .prehead_block = prehead,
                                          .head_block = head,
                                          .body_block = body,
                                          .counter = counter,
                                          .stop = stop,
                                          .step = step});
        ctx().loop_stack.push_back(LoopCtx{-1});
        const std::size_t loop_stack_idx = ctx().loop_stack.size() - 1;
        SetBlock(body);
        // The visible loop variable is a fresh block-scope local bound to
        // the counter at each iteration entry.
        FnCtx& c = ctx();
        const Reg scope_base = c.named;
        const int clear_block = c.cur;
        const std::size_t clear_idx =
            c.fn.blocks[static_cast<std::size_t>(c.cur)].insts.size();
        Emit(Inst{.op = Op::kClearSlots, .line = 0, .a = scope_base, .b = 0});
        c.scopes.push_back(ScopeInfo{{}, scope_base});
        const Reg var = DeclareLocal(st.name);
        Emit(Inst{.op = Op::kMove, .line = st.line, .dst = var, .a = counter});
        for (const StmtPtr& stmt : st.body) {
          const Reg temp_mark = c.temp;
          LowerStmt(*stmt);
          c.temp = temp_mark;
        }
        c.scopes.pop_back();
        c.fn.blocks[static_cast<std::size_t>(clear_block)]
            .insts[clear_idx]
            .b = c.named - scope_base;
        Emit(Inst{.op = Op::kJump, .line = st.line});
        const int body_end = ctx().cur;

        const int latch = NewBlock();
        ctx().fn.blocks[static_cast<std::size_t>(body_end)]
            .insts.back()
            .then_block = latch;
        SetBlock(latch);
        Emit(Inst{.op = Op::kForStep, .line = st.line, .a = counter, .c = step});
        Emit(Inst{.op = Op::kJump, .line = st.line, .then_block = head});
        ctx().ctrl.pop_back();
        ctx().ctrl.pop_back();
        ctx().ctrl.pop_back();

        const int exit = NewBlock();
        ctx().fn.loops[loop_idx].exit_block = exit;
        PatchBreaks(loop_stack_idx, exit);
        ctx().loop_stack.pop_back();
        Inst& test =
            ctx().fn.blocks[static_cast<std::size_t>(head)].insts.back();
        test.then_block = body;
        test.else_block = exit;
        SetBlock(exit);
        return;
      }
      case Stmt::Kind::kFunction: {
        const std::uint32_t fn_idx = LowerFunction(st);
        Emit(Inst{.op = Op::kDefineFn,
                  .line = st.line,
                  .a = NameIdx(st.name),
                  .b = fn_idx});
        return;
      }
      case Stmt::Kind::kReturn: {
        Reg v = kNoReg;
        if (st.expr) v = EvalExpr(*st.expr);
        Emit(Inst{.op = Op::kReturn, .line = st.line, .a = v});
        SetBlock(NewBlock());  // unreachable continuation
        return;
      }
      case Stmt::Kind::kBreak: {
        if (ctx().loop_stack.empty()) {
          // The AST interpreter unwinds a loop-less break out of the whole
          // block, leaving the return value nil — same as `return`.
          Emit(Inst{.op = Op::kReturn, .line = st.line});
        } else {
          // Exit block doesn't exist yet; record for patching.
          Emit(Inst{.op = Op::kJump, .line = st.line, .then_block = -2});
          break_sites_.push_back({fns_.size() - 1,
                                  ctx().loop_stack.size() - 1, ctx().cur});
        }
        SetBlock(NewBlock());
        return;
      }
    }
  }

  void PatchBreaks(std::size_t loop_stack_idx, int exit) {
    auto& sites = break_sites_;
    for (std::size_t i = sites.size(); i > 0; --i) {
      const BreakSite& s = sites[i - 1];
      if (s.fn_depth != fns_.size() - 1 || s.loop_idx != loop_stack_idx)
        continue;
      ctx()
          .fn.blocks[static_cast<std::size_t>(s.block)]
          .insts.back()
          .then_block = exit;
      sites.erase(sites.begin() + static_cast<std::ptrdiff_t>(i - 1));
    }
  }

  // --- function lowering -------------------------------------------------

  std::uint32_t LowerFunction(const Stmt& st) {
    FnCtx fc;
    fc.fn.name = st.name;
    fc.fn.def_line = st.line;
    fc.fn.num_params = static_cast<std::uint32_t>(st.params.size());
    fns_.push_back(&fc);
    StartFunction(fc);
    // Params bind in order; a duplicated name rebinds to the later slot,
    // matching the interpreter's map-overwrite behaviour.
    fc.scopes.push_back(ScopeInfo{{}, 0});
    for (const std::string& p : st.params) DeclareLocal(p);
    for (const StmtPtr& stmt : st.body) {
      const Reg temp_mark = fc.temp;
      LowerStmt(*stmt);
      fc.temp = temp_mark;
    }
    Emit(Inst{.op = Op::kReturn, .line = st.line});
    fns_.pop_back();

    const auto slot = static_cast<std::uint32_t>(m_.functions.size());
    m_.functions.emplace_back();
    FinishFunction(fc, slot);
    return slot;
  }

  void StartFunction(FnCtx& fc) {
    fc.fn.blocks.emplace_back();  // entry block
    fc.cur = 0;
  }

  void FinishFunction(FnCtx& fc, std::uint32_t slot) {
    // Remap shadow temp indices to the top of the frame.
    const Reg named = fc.named;
    auto remap = [named](Reg& r) {
      if (r != kNoReg && r >= kTempBase) r = named + (r - kTempBase);
    };
    for (BasicBlock& b : fc.fn.blocks) {
      for (Inst& inst : b.insts) {
        remap(inst.dst);
        switch (inst.op) {
          case Op::kStoreGlobal:
            remap(inst.b);
            break;
          case Op::kLoadGlobal:
          case Op::kDefineFn:
          case Op::kClearSlots:
            break;  // a (and b) are slot/index operands, not regs
          case Op::kCall:
          case Op::kListNew:
            remap(inst.a);  // b is the arg count
            break;
          default:
            remap(inst.a);
            remap(inst.b);
            remap(inst.c);
            break;
        }
      }
      for (BasicBlock::CtrlDep& dep : b.ctrl_deps) remap(dep.cond);
    }
    for (LoopInfo& loop : fc.fn.loops) {
      remap(loop.counter);
      remap(loop.stop);
      remap(loop.step);
      remap(loop.while_cond);
    }
    fc.fn.num_named = named;
    fc.fn.num_regs = named + fc.max_temp;
    RebuildEdges(fc.fn);
    m_.functions[slot] = std::move(fc.fn);
  }

  struct BreakSite {
    std::size_t fn_depth;
    std::size_t loop_idx;
    int block;
  };

  Module m_;
  std::vector<FnCtx*> fns_;  // lowering stack (nested function defs)
  std::vector<BreakSite> break_sites_;
  std::map<std::string, std::uint32_t> name_idx_;
  std::map<std::string, std::uint32_t> global_slot_;
  std::map<std::string, std::uint32_t> const_idx_;
  bool had_call_ = false;
};

}  // namespace

Module Lower(const Program& program) {
  Lowerer lowerer;
  return lowerer.Run(program);
}

}  // namespace sor::script::ir

// SenseScript lexer: source text → token stream.
#pragma once

#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "script/token.hpp"

namespace sor::script {

// Tokenizes the whole input (trailing kEof token included). Fails with
// kScriptError on unterminated strings or unexpected characters.
[[nodiscard]] Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace sor::script

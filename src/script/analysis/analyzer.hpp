// SenseScript static analyzer.
//
// Walks a parsed Program (no execution) and produces the diagnostics
// catalogued in diagnostics.hpp plus a ScriptManifest describing what the
// script needs from a device. Four passes share one walk where possible:
//
//   1. scope & flow   — undefined names, use-before-assignment, shadowing,
//                       dead code after return/break, break placement,
//                       host-function shadowing, call-before-definition
//   2. types          — abstract interpretation over the nil/bool/number/
//                       string/list lattice; operator and host-signature
//                       argument mismatches
//   3. capability     — acquisition calls resolved against the host API
//                       table; required-sensor manifest; unknown functions;
//                       sensors absent from the target device
//   4. cost           — static loop bounds via interval folding, worst-case
//                       step/acquisition/energy estimates priced with
//                       sensors::AcquisitionEnergyMj; rejects unboundable
//                       loops, recursion, and over-budget scripts
//
// The analyzer is deliberately conservative in both directions: it only
// *errors* on programs that are guaranteed wrong if the flagged code runs
// (or whose cost it cannot bound, which the registration contract treats
// as wrong), and it uses warnings where execution may still succeed.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/sensor_kind.hpp"
#include "script/analysis/diagnostics.hpp"
#include "script/ast.hpp"

namespace sor::script::analysis {

struct AnalyzerOptions {
  // Samples assumed for an acquisition call whose sample-count argument is
  // absent; mirrors TaskInstance's samples_per_window fallback.
  int default_samples_per_window = 5;
  // Interpreter instruction budget the worst-case step estimate is checked
  // against (SA404). Matches InterpreterOptions::max_steps.
  double max_steps = 2'000'000;
  // Per-run energy budget in millijoules (SA403). <= 0 disables the check.
  double energy_budget_mj = 0.0;
  // When set, acquisition calls whose sensor is not in this list get SA302.
  // Unset = analyze against the full provider vocabulary.
  std::optional<std::vector<SensorKind>> available_sensors;
  // Extra host functions to accept (variadic, untyped). Lets embedders that
  // register bespoke helpers keep their scripts lint-clean.
  std::vector<std::string> extra_host_fns;
  // Lower to the dataflow IR and run the flow-sensitive passes (SA5xx,
  // interval loop-bound tightening, the information-flow manifest). Off
  // yields the purely syntactic analysis; tests use it to assert the IR
  // bounds never exceed the syntactic ones.
  bool ir_passes = true;
};

// Analyze a parsed program.
[[nodiscard]] AnalysisReport Analyze(const Program& program,
                                     const AnalyzerOptions& options = {});

// Parse + analyze. Lex/parse failures come back as a single SA001
// diagnostic (carrying the parser's line number) instead of a Result error,
// so every caller renders failures through one channel.
[[nodiscard]] AnalysisReport AnalyzeSource(std::string_view source,
                                           const AnalyzerOptions& options = {});

}  // namespace sor::script::analysis

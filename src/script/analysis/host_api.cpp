#include "script/analysis/host_api.hpp"

namespace sor::script::analysis {

namespace {

using enum ArgType;

constexpr HostSignature kSignatures[] = {
    // --- interpreter-internal ------------------------------------------
    {"print", 0, -1, {kAny, kAny}, kAny, SType::kNil, std::nullopt},

    // --- pure stdlib (script/stdlib.cpp) -------------------------------
    {"len", 1, 1, {kListOrString, kAny}, kAny, SType::kNumber, std::nullopt},
    {"push", 2, 2, {kList, kAny}, kAny, SType::kNumber, std::nullopt},
    {"abs", 1, 1, {kNumber, kAny}, kAny, SType::kNumber, std::nullopt},
    {"floor", 1, 1, {kNumber, kAny}, kAny, SType::kNumber, std::nullopt},
    {"ceil", 1, 1, {kNumber, kAny}, kAny, SType::kNumber, std::nullopt},
    {"sqrt", 1, 1, {kNumber, kAny}, kAny, SType::kNumber, std::nullopt},
    {"min", 1, -1, {kNumber, kNumber}, kNumber, SType::kNumber, std::nullopt},
    {"max", 1, -1, {kNumber, kNumber}, kNumber, SType::kNumber, std::nullopt},
    {"tostring", 1, 1, {kAny, kAny}, kAny, SType::kString, std::nullopt},
    // tonumber returns number-or-nil, so its static type is `any`.
    {"tonumber", 1, 1, {kAny, kAny}, kAny, SType::kAny, std::nullopt},
    {"mean", 1, 1, {kList, kAny}, kAny, SType::kNumber, std::nullopt},
    {"stddev", 1, 1, {kList, kAny}, kAny, SType::kNumber, std::nullopt},
    {"variance", 1, 1, {kList, kAny}, kAny, SType::kNumber, std::nullopt},

    // --- per-execution introspection (phone/task_instance.cpp) ---------
    {"get_time_s", 0, 0, {kAny, kAny}, kAny, SType::kNumber, std::nullopt},
    {"get_sample_window_s", 0, 0, {kAny, kAny}, kAny, SType::kNumber,
     std::nullopt},
    {"get_remaining_instants", 0, 0, {kAny, kAny}, kAny, SType::kNumber,
     std::nullopt},

    // --- data acquisition (one per supported sensor) --------------------
    // Signature: get_*(samples?, window_s?) -> list of readings. Names
    // follow the paper's Lua samples (get_light_readings, get_location).
    {"get_accelerometer_readings", 0, 2, {kNumber, kNumber}, kAny,
     SType::kList, SensorKind::kAccelerometer},
    {"get_gyroscope_readings", 0, 2, {kNumber, kNumber}, kAny, SType::kList,
     SensorKind::kGyroscope},
    {"get_compass_readings", 0, 2, {kNumber, kNumber}, kAny, SType::kList,
     SensorKind::kCompass},
    {"get_location", 0, 2, {kNumber, kNumber}, kAny, SType::kList,
     SensorKind::kGps},
    {"get_noise_readings", 0, 2, {kNumber, kNumber}, kAny, SType::kList,
     SensorKind::kMicrophone},
    {"get_light_readings", 0, 2, {kNumber, kNumber}, kAny, SType::kList,
     SensorKind::kDroneLight},
    {"get_ambient_light_readings", 0, 2, {kNumber, kNumber}, kAny,
     SType::kList, SensorKind::kLight},
    {"get_wifi_readings", 0, 2, {kNumber, kNumber}, kAny, SType::kList,
     SensorKind::kWifi},
    {"get_altitude_readings", 0, 2, {kNumber, kNumber}, kAny, SType::kList,
     SensorKind::kBarometer},
    {"get_temperature_readings", 0, 2, {kNumber, kNumber}, kAny, SType::kList,
     SensorKind::kDroneTemperature},
    {"get_humidity_readings", 0, 2, {kNumber, kNumber}, kAny, SType::kList,
     SensorKind::kDroneHumidity},
    {"get_pressure_readings", 0, 2, {kNumber, kNumber}, kAny, SType::kList,
     SensorKind::kDronePressure},
    {"get_gas_co_readings", 0, 2, {kNumber, kNumber}, kAny, SType::kList,
     SensorKind::kDroneGasCo},
    {"get_color_readings", 0, 2, {kNumber, kNumber}, kAny, SType::kList,
     SensorKind::kDroneColor},
};

}  // namespace

std::span<const HostSignature> HostSignatures() { return kSignatures; }

const HostSignature* FindHostSignature(std::string_view name) {
  for (const HostSignature& s : kSignatures) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::optional<SensorKind> AcquisitionSensor(std::string_view fn_name) {
  const HostSignature* s = FindHostSignature(fn_name);
  if (s == nullptr) return std::nullopt;
  return s->sensor;
}

}  // namespace sor::script::analysis

// Sensor information-flow manifest.
//
// Where the capability manifest (ScriptManifest) says which sensors a
// script MAY acquire, the flow manifest says where that data GOES: for
// every upload site — a raw acquisition, a print(), or a top-level
// return — the set of sensor kinds whose data (directly or via control
// flow) influences the uploaded value. Computed by the IR taint pass,
// persisted next to the capability manifest, and carried to phones in
// ScheduleDistribution so a device can see not just "this task reads the
// microphone" but "microphone data leaves the phone through the feature
// printed at line 12".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/sensor_kind.hpp"

namespace sor::script::analysis {

struct FlowSite {
  enum class Kind : std::uint8_t { kAcquire, kPrint, kReturn };
  Kind kind = Kind::kPrint;
  int line = 0;
  std::vector<SensorKind> sensors;  // sorted, unique

  friend bool operator==(const FlowSite&, const FlowSite&) = default;
};

[[nodiscard]] constexpr const char* to_string(FlowSite::Kind k) {
  switch (k) {
    case FlowSite::Kind::kAcquire: return "acquire";
    case FlowSite::Kind::kPrint: return "print";
    case FlowSite::Kind::kReturn: return "return";
  }
  return "?";
}

struct FlowManifest {
  std::vector<FlowSite> sites;  // sorted by (line, kind, sensors)

  friend bool operator==(const FlowManifest&, const FlowManifest&) = default;
};

// Canonicalize: sort sites by (line, kind), merge duplicates, sort and
// dedupe each sensor list. Encode/analysis output is always canonical.
void Canonicalize(FlowManifest& m);

// Wire/database encoding: ';'-joined sites, each "kind@line=a,b" with "-"
// for an empty sensor set, e.g. "acquire@3=microphone;print@7=-".
// Empty string == no sites.
[[nodiscard]] std::string EncodeFlowManifest(const FlowManifest& m);
[[nodiscard]] Result<FlowManifest> DecodeFlowManifest(std::string_view text);

}  // namespace sor::script::analysis

// Generic worklist dataflow engine over the SenseScript IR CFG.
//
// A pass supplies a lattice through a Domain type:
//
//   struct Domain {
//     using State = ...;                       // per-block-entry fact
//     State Boundary(const ir::Function&);     // entry fact (forward) or
//                                              // exit fact (backward)
//     State Bottom(const ir::Function&);       // identity for join
//     // Merge `from` into `into` (the entry fact of `target_block`);
//     // return true if `into` changed. Widening decisions key off
//     // target_block (loop heads see repeated changing joins).
//     bool Join(State& into, const State& from, int target_block);
//     void Transfer(const ir::Function&, int block, State&);  // in place
//   };
//
// Solve() iterates blocks in a deterministic round-robin worklist until a
// fixpoint, returning the entry (forward) or exit (backward) state of every
// block. Widening, when a pass needs it (intervals), lives inside Join.
#pragma once

#include <vector>

#include "script/ir/ir.hpp"

namespace sor::script::analysis {

enum class Direction { kForward, kBackward };

template <typename Domain>
struct DataflowResult {
  // in[b]: state at block entry (forward) / block exit (backward).
  std::vector<typename Domain::State> in;
};

template <typename Domain>
DataflowResult<Domain> Solve(const ir::Function& fn, Domain& domain,
                             Direction dir) {
  const std::size_t n = fn.blocks.size();
  DataflowResult<Domain> result;
  result.in.reserve(n);
  for (std::size_t b = 0; b < n; ++b) result.in.push_back(domain.Bottom(fn));

  // Deterministic worklist: a boolean dirty set scanned in block order
  // (forward) or reverse block order (backward). Lowering emits blocks
  // roughly in reverse post-order, so this converges quickly on the
  // reducible CFGs structured lowering produces.
  std::vector<char> dirty(n, 1);
  if (dir == Direction::kForward) {
    if (n > 0) domain.Join(result.in[0], domain.Boundary(fn), 0);
  } else {
    for (std::size_t b = 0; b < n; ++b) {
      if (fn.blocks[b].succs.empty())
        domain.Join(result.in[b], domain.Boundary(fn), static_cast<int>(b));
    }
  }

  bool any = true;
  while (any) {
    any = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t b = dir == Direction::kForward ? i : n - 1 - i;
      if (!dirty[b]) continue;
      dirty[b] = 0;
      typename Domain::State out = result.in[b];
      domain.Transfer(fn, static_cast<int>(b), out);
      const std::vector<int>& next = dir == Direction::kForward
                                         ? fn.blocks[b].succs
                                         : fn.blocks[b].preds;
      for (const int s : next) {
        if (s < 0 || static_cast<std::size_t>(s) >= n) continue;
        if (domain.Join(result.in[static_cast<std::size_t>(s)], out, s)) {
          dirty[static_cast<std::size_t>(s)] = 1;
          any = true;
        }
      }
    }
  }
  return result;
}

}  // namespace sor::script::analysis

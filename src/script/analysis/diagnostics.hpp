// Diagnostics emitted by the SenseScript static analyzer.
//
// Every rule has a stable code (SAxxx) so registration replies, logs and
// tests can match on it without parsing prose. The full catalog with
// examples lives in docs/sensescript.md; the one-line summary:
//
//   SA001 error    script does not lex/parse
//   SA101 error    undefined name (never assigned anywhere)
//   SA102 warning  use of a possibly-unassigned variable
//   SA103 warning  declaration shadows an outer variable
//   SA104 warning  unreachable statement (after return/break)
//   SA105 error    break outside any loop
//   SA106 error    function definition shadows a host function
//   SA107 warning  top-level call before the function is defined
//   SA201 error    operator applied to incompatible types
//   SA202 error    host-function argument mismatch (arity or type)
//   SA203 error    script-function called with wrong argument count
//   SA301 error    call to a function outside the whitelist
//   SA302 error    required sensor not available on the target device
//   SA401 error    loop without a derivable static bound
//   SA402 error    recursive function (unbounded cost)
//   SA403 error    worst-case energy estimate exceeds the app budget
//   SA404 error    worst-case step count exceeds the interpreter budget
//   SA405 warning  acquisition sample count not statically derivable
//   SA501 error    use no assignment can reach (flow-sensitive, on the IR)
//   SA502 warning  assigned value is never read (dead store)
//   SA503 warning  if/while condition is constant
//   SA504 warning  statement unreachable due to a constant condition
//   SA505 warning  sensors are acquired but no output depends on them
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/sensor_kind.hpp"
#include "script/analysis/flow_manifest.hpp"

namespace sor::script::analysis {

enum class Severity { kWarning, kError };

[[nodiscard]] constexpr const char* to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

struct Diagnostic {
  std::string code;   // "SA101"
  Severity severity = Severity::kError;
  int line = 0;       // 1-based script line
  std::string message;
  int col = 0;        // 1-based column; 0 = not tracked for this rule

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

// "error SA101 at line 3: undefined name 'foo'" — uniform with the parser's
// "parse error at line 3: ..." rendering.
[[nodiscard]] std::string Render(const Diagnostic& d);
// One diagnostic per line, deterministic order (callers sort first).
[[nodiscard]] std::string Render(std::span<const Diagnostic> ds);

// Convert a lexer/parser Error (which carries Error::line) into the SA001
// diagnostic so parse and analysis failures render through one channel.
[[nodiscard]] Diagnostic FromError(const Error& err);

// Deterministic report order: by line, then column, then code, then
// message; exact duplicates collapse to one.
void SortAndDedupe(std::vector<Diagnostic>& ds);

// What the analyzer proved about the script, shipped with the schedule so
// the phone can refuse tasks its hardware cannot serve (§II-A's provider
// registry, checked before the task ever runs).
struct ScriptManifest {
  std::vector<SensorKind> required_sensors;  // sorted, unique
  double worst_case_acquisitions = 0.0;  // physical samples per run (bound)
  double worst_case_energy_mj = 0.0;     // per run, via AcquisitionEnergyMj
  double worst_case_steps = 0.0;         // interpreter ticks per run (bound)
  bool cost_bounded = true;              // false => SA401/SA402 was emitted
};

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  ScriptManifest manifest;
  // Where acquired sensor data flows: one site per acquisition/print/
  // top-level return, with the sensors influencing the value there.
  FlowManifest flow;

  [[nodiscard]] bool ok() const;  // no error-severity diagnostics
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::vector<Diagnostic> errors() const;
  [[nodiscard]] bool Has(std::string_view code) const;
  [[nodiscard]] std::string RenderErrors() const;
};

// Database/wire encoding of the required-sensor manifest: comma-joined
// sensor names ("drone_temperature,gps"). Empty string == no sensors.
[[nodiscard]] std::string EncodeSensorList(std::span<const SensorKind> kinds);
[[nodiscard]] Result<std::vector<SensorKind>> DecodeSensorList(
    std::string_view text);

}  // namespace sor::script::analysis

// IR analysis and optimization passes.
//
// Built on the worklist engine in dataflow.hpp, these passes give the
// analyzer flow-sensitive facts the PR 3 syntactic walk cannot see:
//
//   constant propagation / folding    SA503 (constant conditions), branch
//                                     folding, and the groundwork for DCE
//   definite assignment               SA501 (no assignment reaches a use),
//                                     CheckDef elision for execution
//   liveness + DCE                    SA502 (dead stores)
//   reachability diff                 SA504 (code killed by constant
//                                     branches)
//   interval analysis                 per-loop trip bounds that tighten
//                                     the syntactic cost/energy estimates
//   sensor taint                      the information-flow manifest and
//                                     SA505 (sensor-free output)
//
// OptimizeModule is semantics-preserving and is what the interpreter's IR
// execution mode runs; AnalyzeModule additionally derives diagnostics,
// trip bounds, and the flow manifest from the optimized module.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "script/analysis/diagnostics.hpp"
#include "script/analysis/flow_manifest.hpp"
#include "script/ir/ir.hpp"

namespace sor::script::analysis {

// Facts recorded while optimizing, for diagnostic synthesis.
struct OptimizeReport {
  struct FoldedBranch {
    int line = 0;
    bool value = false;      // condition constant-truthiness
    bool user_cond = false;  // came from a source if/while condition
    bool while_head = false; // the branch was a while-loop test
  };
  std::vector<FoldedBranch> folded_branches;

  struct NamedUse {
    int line = 0;
    std::string name;
  };
  std::vector<NamedUse> undef_uses;   // reachable uses no assignment reaches
  std::vector<NamedUse> dead_stores;  // pure user stores never read
  std::vector<int> unreachable_lines; // lines made unreachable by folding
};

// Semantics-preserving optimization pipeline: constant propagation and
// folding, constant-branch folding, definite-assignment CheckDef elision,
// and dead-code elimination. Observable behaviour (values, output, error
// text) is untouched. With `report`, records the facts behind SA501-SA504.
void OptimizeModule(ir::Module& m, OptimizeReport* report = nullptr);

struct IrAnalysisOptions {
  // Samples assumed when an acquisition call's sample-count argument is not
  // a compile-time constant; mirrors AnalyzerOptions.
  int default_samples_per_window = 5;
};

// Loop identity as the cost pass sees it: (source line, kind) with kind
// 0 = while, 1 = numeric for.
using LoopKey = std::pair<int, int>;

struct IrAnalysis {
  std::vector<Diagnostic> diagnostics;  // SA501..SA505
  // Interval-derived upper bound on body executions per loop. Absent key =
  // the pass could not bound the loop (the syntactic estimate stands).
  std::map<LoopKey, double> trip_bounds;
  FlowManifest flow;
};

// Optimizes `m` in place, then derives diagnostics, trip bounds, and the
// information-flow manifest from the optimized module.
[[nodiscard]] IrAnalysis AnalyzeModule(ir::Module& m,
                                       const IrAnalysisOptions& opts = {});

}  // namespace sor::script::analysis
